// Package repro's root benchmark harness regenerates every table and
// figure of the paper (reported via b.ReportMetric so `go test
// -bench=. -benchmem` prints the reproduced numbers) and benchmarks
// the real execution engines — FFTs, transposes, the in-process MPI
// runtime, and the synchronous vs asynchronous transform pipelines —
// at laptop scale.
package repro_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/fft"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/simnet"
	"repro/internal/spectral"
	"repro/internal/transpose"
)

// --- Paper artifact benchmarks (model evaluation) ----------------------

// BenchmarkTable1MemoryModel regenerates Table 1 and reports the
// 18432³ row's memory occupancy and pencil count.
func BenchmarkTable1MemoryModel(b *testing.B) {
	m := hw.Summit()
	var rows []hw.Table1Row
	for i := 0; i < b.N; i++ {
		rows = m.Table1()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.MemPerNode, "GiB/node@18432")
	b.ReportMetric(float64(last.Pencils), "pencils@18432")
}

// BenchmarkTable2Alltoall regenerates Table 2 and reports the
// configuration C bandwidth at 3072 nodes (paper: 17.6 GB/s).
func BenchmarkTable2Alltoall(b *testing.B) {
	net := simnet.SummitA2A()
	var rows []simnet.Table2Row
	for i := 0; i < b.N; i++ {
		rows = net.Table2()
	}
	b.ReportMetric(rows[len(rows)-1].BW/1e9, "GB/s@C3072")
	b.ReportMetric(rows[len(rows)-3].BW/1e9, "GB/s@A3072")
}

// BenchmarkTable3TimePerStep regenerates Table 3 and reports the
// headline cells: 18432³ cfg C time (paper: 14.24 s) and the 12288³
// speedup (paper: 4.7×).
func BenchmarkTable3TimePerStep(b *testing.B) {
	var rows []core.Table3Row
	for i := 0; i < b.N; i++ {
		rows = core.Table3()
	}
	b.ReportMetric(rows[3].C, "s/step@18432-C")
	b.ReportMetric(rows[2].SpeedupC, "speedup@12288")
	b.ReportMetric(rows[3].SpeedupC, "speedup@18432")
}

// BenchmarkTable4WeakScaling regenerates Table 4 and reports the
// 18432³ weak-scaling percentage (paper: 52.9%).
func BenchmarkTable4WeakScaling(b *testing.B) {
	var rows []core.Table4Row
	for i := 0; i < b.N; i++ {
		rows = core.Table4()
	}
	b.ReportMetric(rows[3].WeakScaling, "%WS@18432")
}

// BenchmarkFig7StridedCopy regenerates the Fig 7 sweep and reports the
// many-memcpy : memcpy2D slowdown at the paper's 8.8 KB chunk size.
func BenchmarkFig7StridedCopy(b *testing.B) {
	cost := cuda.SummitCopyCost()
	var pts []cuda.Fig7Point
	for i := 0; i < b.N; i++ {
		pts = cost.Fig7()
	}
	var ratio float64
	for _, p := range pts {
		if p.ChunkBytes >= 8.8e3 && ratio == 0 {
			ratio = p.ManyMemcpy / p.Memcpy2D
		}
	}
	b.ReportMetric(ratio, "slowdown@8.8KB")
}

// BenchmarkFig8ZeroCopy regenerates the Fig 8 sweep and reports the
// fraction of peak reached with 16 thread blocks (paper: "close to
// maximum").
func BenchmarkFig8ZeroCopy(b *testing.B) {
	cost := cuda.SummitCopyCost()
	var pts []cuda.Fig8Point
	for i := 0; i < b.N; i++ {
		pts = cost.Fig8()
	}
	var bw16, bwMax float64
	for _, p := range pts {
		if p.Blocks == 16 {
			bw16 = p.H2DBW
		}
		if p.H2DBW > bwMax {
			bwMax = p.H2DBW
		}
	}
	b.ReportMetric(bw16/bwMax*100, "%ofPeak@16blocks")
}

// BenchmarkFig9Sweep regenerates the Fig 9 curves and reports the gap
// between the DNS and the MPI-only lower bound at 3072 nodes.
func BenchmarkFig9Sweep(b *testing.B) {
	var series []core.Fig9Series
	for i := 0; i < b.N; i++ {
		series = core.Fig9()
	}
	dns := series[2].Times[3]
	mpiOnly := series[3].Times[3]
	b.ReportMetric(dns-mpiOnly, "nonMPI-s@3072")
}

// BenchmarkFig10Timelines builds the four Fig 10 timelines.
func BenchmarkFig10Timelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tls := core.Fig10(); len(tls) != 4 {
			b.Fatal("timeline count")
		}
	}
}

// BenchmarkStrongScaling reproduces the §5.3 strong-scaling run.
func BenchmarkStrongScaling(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		_, _, pct = core.StrongScaling18432()
	}
	b.ReportMetric(pct, "%strong")
}

// --- Real-execution benchmarks -----------------------------------------

func benchFFT(b *testing.B, n int) {
	p := fft.NewPlan(n)
	x := make([]complex128, n)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := make([]complex128, n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(y, x)
	}
}

func BenchmarkFFT1D(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096, 1000, 729} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) { benchFFT(b, n) })
	}
}

func BenchmarkRealFFT1D(b *testing.B) {
	n := 1024
	p := fft.NewRealPlan(n)
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]complex128, p.HalfLen())
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(y, x)
	}
}

func BenchmarkPackYZ(b *testing.B) {
	nxh, ny, mz, p := 33, 64, 16, 4
	src := make([]complex128, mz*ny*nxh)
	dst := make([]complex128, mz*ny*nxh)
	b.SetBytes(int64(16 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transpose.PackYZ(dst, src, nxh, ny, mz, p)
	}
}

func BenchmarkAlltoallInProcess(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			bs := 1 << 12
			b.SetBytes(int64(16 * p * bs))
			mpi.Run(p, func(c *mpi.Comm) {
				send := make([]complex128, p*bs)
				recv := make([]complex128, p*bs)
				c.Barrier()
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					mpi.Alltoall(c, send, recv)
				}
			})
		})
	}
}

func benchTransform(b *testing.B, makeTr func(c *mpi.Comm) spectral.Transform, n, ranks int) {
	mpi.Run(ranks, func(c *mpi.Comm) {
		tr := makeTr(c)
		if closer, ok := tr.(interface{ Close() }); ok {
			defer closer.Close()
		}
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		phys := make([]float64, tr.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		four := make([]complex128, tr.FourierLen())
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			tr.PhysicalToFourier(four, phys)
			tr.FourierToPhysical(phys, four)
		}
	})
}

// BenchmarkDistributed3DFFT compares the synchronous reference against
// the asynchronous pipeline in both granularities — the real-execution
// analogue of Table 3's configuration comparison.
func BenchmarkDistributed3DFFT(b *testing.B) {
	const n, ranks = 32, 2
	b.Run("sync", func(b *testing.B) {
		benchTransform(b, func(c *mpi.Comm) spectral.Transform {
			return pfft.NewSlabReal(c, n)
		}, n, ranks)
	})
	b.Run("asyncPencil", func(b *testing.B) {
		benchTransform(b, func(c *mpi.Comm) spectral.Transform {
			return core.NewAsyncSlabReal(c, n, core.Options{NP: 4, Granularity: core.PerPencil})
		}, n, ranks)
	})
	b.Run("asyncSlab", func(b *testing.B) {
		benchTransform(b, func(c *mpi.Comm) spectral.Transform {
			return core.NewAsyncSlabReal(c, n, core.Options{NP: 4, Granularity: core.PerSlab})
		}, n, ranks)
	})
}

// BenchmarkRK2Step times one full Navier–Stokes RK2 step (18 3D
// transforms) at laptop scale.
func BenchmarkRK2Step(b *testing.B) {
	const n, ranks = 32, 2
	mpi.Run(ranks, func(c *mpi.Comm) {
		s := spectral.NewSolver(c, spectral.Config{N: n, Nu: 0.01, Scheme: spectral.RK2, Dealias: spectral.Dealias23})
		s.SetRandomIsotropic(3, 0.5, 1)
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.Step(1e-4)
		}
	})
}

// BenchmarkStridedCopyReal measures the actual strided-copy kernel at
// two granularities — the real-hardware analogue of Fig 7's effect.
func BenchmarkStridedCopyReal(b *testing.B) {
	total := 1 << 22 // elements
	src := make([]float64, total)
	dst := make([]float64, total)
	for _, chunk := range []int{64, 4096} {
		b.Run(fmt.Sprintf("chunk%d", chunk*8), func(b *testing.B) {
			rows := total / (2 * chunk)
			b.SetBytes(int64(8 * rows * chunk))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				transpose.CopyStrided(dst, 2*chunk, src, 2*chunk, chunk, rows)
			}
		})
	}
}

// --- Ablation benchmarks (design choices DESIGN.md calls out) ----------

// BenchmarkAblateDecomposition quantifies the §3.1 choice of a 1D slab
// decomposition over a 2D pencil layout for the GPU code.
func BenchmarkAblateDecomposition(b *testing.B) {
	var rows []core.DecompositionAblation
	for i := 0; i < b.N; i++ {
		rows = core.AblateDecomposition()
	}
	b.ReportMetric(rows[len(rows)-1].SlabWinPct, "%slabWin@18432")
}

// BenchmarkAblateContention quantifies the §5.2 host-memory contention
// penalty on overlapped exchanges.
func BenchmarkAblateContention(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, without = core.AblateContention(12288, 1024)
	}
	b.ReportMetric((with-without)/with*100, "%penalty")
}

// BenchmarkAblatePencilCount sweeps the batching granularity of §3.5.
func BenchmarkAblatePencilCount(b *testing.B) {
	var times []float64
	for i := 0; i < b.N; i++ {
		times = core.AblatePencilCount(18432, 3072, []int{4, 16})
	}
	b.ReportMetric((times[1]/times[0]-1)*100, "%np16-over-np4")
}

// BenchmarkBestConfigAutotune times the per-scale configuration search.
func BenchmarkBestConfigAutotune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tpn, _, _ := core.BestConfig(18432, 3072); tpn != 2 {
			b.Fatal("unexpected best config")
		}
	}
}

// BenchmarkRK2StepWithScalar times the coupled velocity+scalar step
// (the paper's turbulent-mixing companion workload).
func BenchmarkRK2StepWithScalar(b *testing.B) {
	const n, ranks = 32, 2
	mpi.Run(ranks, func(c *mpi.Comm) {
		s := spectral.NewSolver(c, spectral.Config{N: n, Nu: 0.01, Scheme: spectral.RK2, Dealias: spectral.Dealias23})
		s.SetRandomIsotropic(3, 0.5, 1)
		sc := s.NewScalar(0.01)
		s.SetScalarBlob(sc, 3, 0.5, 2)
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.StepWithScalar(sc, 1e-4)
		}
	})
}

// BenchmarkCheckpointWrite measures checkpoint serialization.
func BenchmarkCheckpointWrite(b *testing.B) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := spectral.NewSolver(c, spectral.Config{N: 32, Nu: 0.01})
		s.SetRandomIsotropic(3, 0.5, 1)
		var buf bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := s.WriteCheckpointTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
}

// BenchmarkThreadedTransform measures the hybrid MPI+OpenMP-style
// transform at several team sizes (on multi-core hosts larger teams
// speed the plane loops; semantics are identical regardless).
func BenchmarkThreadedTransform(b *testing.B) {
	const n, ranks = 32, 2
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			benchTransform(b, func(c *mpi.Comm) spectral.Transform {
				return pfft.NewSlabRealThreaded(c, n, threads)
			}, n, ranks)
		})
	}
}

// BenchmarkSingleCommTransform compares wire precisions through the
// asynchronous engine (single precision halves all-to-all bytes).
func BenchmarkSingleCommTransform(b *testing.B) {
	const n, ranks = 32, 2
	for _, single := range []bool{false, true} {
		b.Run(fmt.Sprintf("single=%v", single), func(b *testing.B) {
			benchTransform(b, func(c *mpi.Comm) spectral.Transform {
				return core.NewAsyncSlabReal(c, n, core.Options{
					NP: 4, Granularity: core.PerSlab, SingleComm: single,
				})
			}, n, ranks)
		})
	}
}

// BenchmarkParticleStep measures Lagrangian tracking per step.
func BenchmarkParticleStep(b *testing.B) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := spectral.NewSolver(c, spectral.Config{N: 32, Nu: 0.01})
		s.SetRandomIsotropic(3, 0.5, 1)
		parts := s.NewParticles(1024, 7)
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.StepParticles(parts, 1e-4)
		}
	})
}
