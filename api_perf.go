package repro

import (
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hw"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// --- Performance model ------------------------------------------------------

// Machine is a hardware description; Summit returns the paper's target.
type Machine = hw.Machine

// Summit returns the calibrated Summit (IBM AC922) description.
func Summit() Machine { return hw.Summit() }

// A2AModel predicts all-to-all bandwidth; SummitA2A is calibrated to
// the paper's Table 2.
type A2AModel = simnet.A2AModel

// SummitA2A returns the calibrated network model.
func SummitA2A() *A2AModel { return simnet.SummitA2A() }

// CopyCost models strided host↔device copies (Figs 7–8).
type CopyCost = cuda.CopyCost

// SummitCopyCost returns the calibrated copy cost model.
func SummitCopyCost() CopyCost { return cuda.SummitCopyCost() }

// PerfConfig describes one deployment for the step-time model.
type PerfConfig = core.PerfConfig

// StepResult is a simulated step (time, schedule spans, class totals).
type StepResult = core.StepResult

// DefaultPerf returns the calibrated configuration for a paper case.
func DefaultPerf(n, nodes, tpn int, gran Granularity) PerfConfig {
	return core.DefaultPerf(n, nodes, tpn, gran)
}

// SimulateGPUStep predicts one RK2 step of the asynchronous GPU code.
func SimulateGPUStep(c PerfConfig) StepResult { return core.SimulateGPUStep(c) }

// Paper artifacts.
var (
	Table3             = core.Table3
	Table4             = core.Table4
	Fig9               = core.Fig9
	Fig10              = core.Fig10
	StrongScaling18432 = core.StrongScaling18432
	BestConfig         = core.BestConfig
)

// Timeline rendering (Fig 10 style).
type Timeline = trace.Timeline

// RenderTimelines draws several schedules on a shared normalized axis.
func RenderTimelines(tls []Timeline, width int) string {
	return trace.RenderComparison(tls, width)
}
