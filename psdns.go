// Package repro is the public face of the library: a Go reproduction
// of "GPU acceleration of extreme scale pseudo-spectral simulations of
// turbulence using asynchronism" (Ravikumar, Appelhans & Yeung,
// SC '19). It re-exports the curated API from the internal packages so
// downstream users never import internal paths.
//
// A minimal simulation using the asynchronous engine and functional
// options:
//
//	repro.Run(4, func(c *repro.Comm) {
//	    tr := repro.NewAsync(c, 64,
//	        repro.WithNP(4),
//	        repro.WithGranularity(repro.PerPencil),
//	    )
//	    defer tr.Close()
//	    s := repro.NewSolver(c, 64,
//	        repro.WithNu(0.01),
//	        repro.WithScheme(repro.RK2),
//	        repro.WithDealias(repro.Dealias23),
//	        repro.WithTransform(tr),
//	    )
//	    s.SetRandomIsotropic(3, 0.5, 1)
//	    for i := 0; i < 100; i++ {
//	        s.Step(0.004)
//	    }
//	})
//
// Runtime observability lives behind EnableMetrics/MetricsSnapshot
// (api_metrics.go): per-phase step breakdowns, all-to-all byte and
// wait accounting, GPU transfer volumes. The performance-model side
// (Summit machine description, all-to-all network model, step-time
// simulation, every paper table and figure) is exported from
// api_perf.go; see Table3, Fig9 and friends.
//
// The API surface is split by concern:
//
//   - psdns.go (this file): message passing — ranks, communicators,
//     error recovery.
//   - api_solver.go: the solver, its functional options, and the
//     pluggable equation-set registry (Systems, WithSystem).
//   - api_async.go: transform engines and their functional options.
//   - api_metrics.go: the runtime metrics registry and snapshots.
//   - api_perf.go: the calibrated performance model and paper
//     artifacts.
package repro

import (
	"repro/internal/mpi"
)

// --- Message passing ----------------------------------------------------

// Comm is one rank's communicator handle; ranks are goroutines.
type Comm = mpi.Comm

// Request tracks a non-blocking collective.
type Request = mpi.Request

// RankError reports the first rank whose function panicked under
// TryRun, with the recovered value as the wrapped cause.
type RankError = mpi.RankError

// StallError reports a watchdog-detected deadlock or stall: the
// blocked rank, the operation it was stuck in, and the peer and tag it
// was waiting on. TryRun returns it when the world stops making
// progress instead of hanging forever.
type StallError = mpi.StallError

// CrashError is the typed panic value of a scheduled rank crash
// (Faults.Crash); it reaches the caller wrapped in a *RankError.
type CrashError = mpi.CrashError

// Watchdog configures the runtime's stall watchdog (on by default with
// deadlock detection only). Pass it through WithWatchdog.
type Watchdog = mpi.Watchdog

// Faults is a deterministic fault-injection plan: seeded per-(src,dst,
// tag) message drops, duplicates and delays, plus scheduled rank
// crashes. Pass it through WithFaults.
type Faults = mpi.Faults

// FaultRule describes one class of injected message pathology.
type FaultRule = mpi.FaultRule

// Fault-rule traffic scopes.
const (
	FaultScopeAll  = mpi.ScopeAll
	FaultScopeP2P  = mpi.ScopeP2P
	FaultScopeColl = mpi.ScopeColl
)

// Wildcards for FaultRule rank and tag filters.
const (
	AnyRank = mpi.AnyRank
	AnyTag  = mpi.AnyTag
)

// RunOption customizes Run/TryRun (watchdog configuration, fault
// injection).
type RunOption = mpi.RunOption

// WithWatchdog customizes the world's stall watchdog: per-operation
// deadlines, the deadlock quiescence window, or Off to disable it.
func WithWatchdog(wd Watchdog) RunOption { return mpi.WithWatchdog(wd) }

// WithFaults installs a deterministic fault-injection plan on the
// world for chaos testing.
func WithFaults(f *Faults) RunOption { return mpi.WithFaults(f) }

// Run executes fn on p in-process ranks and returns when all finish.
// A panic on any rank aborts the world and re-panics on the caller;
// use TryRun to receive the failure as an error instead.
func Run(p int, fn func(*Comm), opts ...RunOption) { mpi.Run(p, fn, opts...) }

// TryRun executes fn on p in-process ranks, recovering a panic on any
// rank into a *RankError naming the rank that misbehaved. A
// watchdog-detected deadlock or stall is returned as a *StallError
// naming the blocked rank, peer and tag. A clean run returns nil.
func TryRun(p int, fn func(*Comm), opts ...RunOption) error { return mpi.TryRun(p, fn, opts...) }
