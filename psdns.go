// Package repro is the public face of the library: a Go reproduction
// of "GPU acceleration of extreme scale pseudo-spectral simulations of
// turbulence using asynchronism" (Ravikumar, Appelhans & Yeung,
// SC '19). It re-exports the curated API from the internal packages so
// downstream users never import internal paths.
//
// A minimal simulation using the asynchronous engine and functional
// options:
//
//	repro.Run(4, func(c *repro.Comm) {
//	    tr := repro.NewAsync(c, 64,
//	        repro.WithNP(4),
//	        repro.WithGranularity(repro.PerPencil),
//	    )
//	    defer tr.Close()
//	    s := repro.NewSolverWithTransform(c, repro.SolverConfig{
//	        N: 64, Nu: 0.01, Scheme: repro.RK2, Dealias: repro.Dealias23,
//	    }, tr)
//	    s.SetRandomIsotropic(3, 0.5, 1)
//	    for i := 0; i < 100; i++ {
//	        s.Step(0.004)
//	    }
//	})
//
// Runtime observability lives behind EnableMetrics/MetricsSnapshot
// (api_metrics.go): per-phase step breakdowns, all-to-all byte and
// wait accounting, GPU transfer volumes. The performance-model side
// (Summit machine description, all-to-all network model, step-time
// simulation, every paper table and figure) is exported from
// api_perf.go; see Table3, Fig9 and friends.
//
// The API surface is split by concern:
//
//   - psdns.go (this file): message passing — ranks, communicators,
//     error recovery.
//   - api_solver.go: the Navier–Stokes solver and its configuration.
//   - api_async.go: transform engines and their functional options.
//   - api_metrics.go: the runtime metrics registry and snapshots.
//   - api_perf.go: the calibrated performance model and paper
//     artifacts.
package repro

import (
	"repro/internal/mpi"
)

// --- Message passing ----------------------------------------------------

// Comm is one rank's communicator handle; ranks are goroutines.
type Comm = mpi.Comm

// Request tracks a non-blocking collective.
type Request = mpi.Request

// RankError reports the first rank whose function panicked under
// TryRun, with the recovered value as the wrapped cause.
type RankError = mpi.RankError

// Run executes fn on p in-process ranks and returns when all finish.
// A panic on any rank aborts the world and re-panics on the caller;
// use TryRun to receive the failure as an error instead.
func Run(p int, fn func(*Comm)) { mpi.Run(p, fn) }

// TryRun executes fn on p in-process ranks, recovering a panic on any
// rank into a *RankError naming the rank that misbehaved. A clean run
// returns nil.
func TryRun(p int, fn func(*Comm)) error { return mpi.TryRun(p, fn) }
