// Package repro is the public face of the library: a Go reproduction
// of "GPU acceleration of extreme scale pseudo-spectral simulations of
// turbulence using asynchronism" (Ravikumar, Appelhans & Yeung,
// SC '19). It re-exports the curated API from the internal packages so
// downstream users never import internal paths.
//
// A minimal simulation:
//
//	repro.Run(4, func(c *repro.Comm) {
//	    tr := repro.NewAsyncTransform(c, 64, repro.AsyncOptions{
//	        NP: 4, Granularity: repro.PerPencil,
//	    })
//	    defer tr.Close()
//	    s := repro.NewSolverWithTransform(c, repro.SolverConfig{
//	        N: 64, Nu: 0.01, Scheme: repro.RK2, Dealias: repro.Dealias23,
//	    }, tr)
//	    s.SetRandomIsotropic(3, 0.5, 1)
//	    for i := 0; i < 100; i++ {
//	        s.Step(0.004)
//	    }
//	})
//
// The performance-model side (Summit machine description, all-to-all
// network model, step-time simulation, every paper table and figure)
// is exported as well; see Table3, Fig9 and friends.
package repro

import (
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/simnet"
	"repro/internal/spectral"
	"repro/internal/trace"
)

// --- Message passing ----------------------------------------------------

// Comm is one rank's communicator handle; ranks are goroutines.
type Comm = mpi.Comm

// Request tracks a non-blocking collective.
type Request = mpi.Request

// Run executes fn on p in-process ranks and returns when all finish.
func Run(p int, fn func(*Comm)) { mpi.Run(p, fn) }

// --- Solver ---------------------------------------------------------------

// SolverConfig configures a simulation (grid size, viscosity, scheme,
// dealiasing, optional forcing).
type SolverConfig = spectral.Config

// Solver advances the incompressible Navier–Stokes equations
// pseudo-spectrally on a slab-decomposed periodic cube.
type Solver = spectral.Solver

// Scalar is a passive scalar advected by the solver's velocity field.
type Scalar = spectral.Scalar

// Forcing sustains statistically stationary turbulence.
type Forcing = spectral.Forcing

// Stats bundles single-time turbulence statistics.
type Stats = spectral.Stats

// GradientStats holds one-point velocity-gradient moments.
type GradientStats = spectral.GradientStats

// Particles is a set of Lagrangian fluid tracers.
type Particles = spectral.Particles

// Transform is the distributed 3D FFT engine contract; both the
// synchronous reference and the asynchronous pipeline satisfy it.
type Transform = spectral.Transform

// Time-integration schemes.
const (
	RK2 = spectral.RK2
	RK4 = spectral.RK4
)

// Dealiasing modes.
const (
	DealiasNone    = spectral.DealiasNone
	Dealias23      = spectral.Dealias23
	Dealias23Shift = spectral.Dealias23Shift
)

// NewSolver builds a solver on the synchronous reference transform.
func NewSolver(c *Comm, cfg SolverConfig) *Solver { return spectral.NewSolver(c, cfg) }

// NewSolverWithTransform builds a solver on a caller-chosen engine.
func NewSolverWithTransform(c *Comm, cfg SolverConfig, tr Transform) *Solver {
	return spectral.NewSolverWithTransform(c, cfg, tr)
}

// NewForcing creates low-wavenumber band forcing over shells 1…kf.
func NewForcing(kf int) *Forcing { return spectral.NewForcing(kf) }

// Regrid spectrally transfers src's velocity field onto dst (larger or
// smaller grid, same communicator).
func Regrid(dst, src *Solver) { spectral.Regrid(dst, src) }

// WriteSlicePNG renders a gathered plane with a diverging colormap.
var WriteSlicePNG = spectral.WriteSlicePNG

// --- The paper's asynchronous engine ---------------------------------------

// AsyncOptions configures the batched asynchronous pipeline (pencil
// count, exchange granularity, devices per rank).
type AsyncOptions = core.Options

// AsyncTransform is the Fig 4 batched asynchronous out-of-core engine.
type AsyncTransform = core.AsyncSlabReal

// Exchange granularities (paper configurations A/B vs C).
const (
	PerPencil = core.PerPencil
	PerSlab   = core.PerSlab
)

// NewAsyncTransform builds the asynchronous engine for an N³ transform.
func NewAsyncTransform(c *Comm, n int, opt AsyncOptions) *AsyncTransform {
	return core.NewAsyncSlabReal(c, n, opt)
}

// NewSyncGPUTransform is the Fig 2 synchronous baseline (NP=1).
func NewSyncGPUTransform(c *Comm, n int) *AsyncTransform { return core.NewSyncGPU(c, n) }

// NewSlabTransform is the plain synchronous host transform.
func NewSlabTransform(c *Comm, n int) *pfft.SlabReal { return pfft.NewSlabReal(c, n) }

// NewThreadedSlabTransform is the hybrid MPI+OpenMP-style transform
// with a worker team per rank.
func NewThreadedSlabTransform(c *Comm, n, threads int) *pfft.SlabRealThreaded {
	return pfft.NewSlabRealThreaded(c, n, threads)
}

// Slab describes a rank's 1D-decomposition geometry.
type Slab = grid.Slab

// --- Performance model ------------------------------------------------------

// Machine is a hardware description; Summit returns the paper's target.
type Machine = hw.Machine

// Summit returns the calibrated Summit (IBM AC922) description.
func Summit() Machine { return hw.Summit() }

// A2AModel predicts all-to-all bandwidth; SummitA2A is calibrated to
// the paper's Table 2.
type A2AModel = simnet.A2AModel

// SummitA2A returns the calibrated network model.
func SummitA2A() *A2AModel { return simnet.SummitA2A() }

// CopyCost models strided host↔device copies (Figs 7–8).
type CopyCost = cuda.CopyCost

// SummitCopyCost returns the calibrated copy cost model.
func SummitCopyCost() CopyCost { return cuda.SummitCopyCost() }

// PerfConfig describes one deployment for the step-time model.
type PerfConfig = core.PerfConfig

// StepResult is a simulated step (time, schedule spans, class totals).
type StepResult = core.StepResult

// DefaultPerf returns the calibrated configuration for a paper case.
func DefaultPerf(n, nodes, tpn int, gran core.Granularity) PerfConfig {
	return core.DefaultPerf(n, nodes, tpn, gran)
}

// SimulateGPUStep predicts one RK2 step of the asynchronous GPU code.
func SimulateGPUStep(c PerfConfig) StepResult { return core.SimulateGPUStep(c) }

// Paper artifacts.
var (
	Table3             = core.Table3
	Table4             = core.Table4
	Fig9               = core.Fig9
	Fig10              = core.Fig10
	StrongScaling18432 = core.StrongScaling18432
	BestConfig         = core.BestConfig
)

// Timeline rendering (Fig 10 style).
type Timeline = trace.Timeline

// RenderTimelines draws several schedules on a shared normalized axis.
func RenderTimelines(tls []Timeline, width int) string {
	return trace.RenderComparison(tls, width)
}
