// Command campaign drives a multi-stage DNS campaign from a JSON
// config: develop at one resolution, spectrally regrid to the next,
// continue — the workflow behind record-resolution runs like the
// paper's 18432³, which are seeded from smaller developed fields. Each
// stage can add a passive scalar, Lagrangian particles, checkpoints
// and slice images.
//
// Example config:
//
//	{
//	  "ranks": 4, "nu": 0.01, "seed": 7, "k0": 2.5, "e0": 0.5,
//	  "engine": "async", "np": 4, "gran": "slab", "singleComm": true,
//	  "forcingShells": 2,
//	  "stages": [
//	    {"n": 32, "steps": 20, "cfl": 0.4},
//	    {"n": 64, "steps": 10, "cfl": 0.4, "scalar": true,
//	     "particles": 64, "checkpoint": "ckpt-final", "png": "u.png"}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// Stage is one resolution segment of the campaign.
type Stage struct {
	N          int     `json:"n"`
	Steps      int     `json:"steps"`
	CFL        float64 `json:"cfl"`        // target Courant number (0 → fixed dt)
	Dt         float64 `json:"dt"`         // fixed step when CFL is 0
	Scalar     bool    `json:"scalar"`     // co-advance a passive scalar (mean gradient 1)
	Particles  int     `json:"particles"`  // Lagrangian tracer count (0 = none)
	Checkpoint string  `json:"checkpoint"` // directory to write at stage end
	PNG        string  `json:"png"`        // z-midplane image of u at stage end
}

// Config is the whole campaign description.
type Config struct {
	Ranks         int     `json:"ranks"`
	Nu            float64 `json:"nu"`
	Seed          int64   `json:"seed"`
	K0            float64 `json:"k0"`
	E0            float64 `json:"e0"`
	Engine        string  `json:"engine"` // sync | async | threaded
	NP            int     `json:"np"`
	Gran          string  `json:"gran"` // pencil | slab
	SingleComm    bool    `json:"singleComm"`
	Threads       int     `json:"threads"`
	ForcingShells int     `json:"forcingShells"`
	Stages        []Stage `json:"stages"`
}

func main() {
	cfgPath := flag.String("config", "", "campaign JSON (required)")
	flag.Parse()
	if *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		log.Fatalf("config: %v", err)
	}
	if cfg.Ranks < 1 || len(cfg.Stages) == 0 {
		log.Fatal("config needs ranks ≥ 1 and at least one stage")
	}
	fmt.Printf("campaign: %d stages on %d ranks, ν=%g, engine=%s\n",
		len(cfg.Stages), cfg.Ranks, cfg.Nu, cfg.Engine)

	mpi.Run(cfg.Ranks, func(c *mpi.Comm) {
		root := c.Rank() == 0
		var prev *spectral.Solver
		for si, st := range cfg.Stages {
			solver := buildSolver(c, cfg, st.N)
			if prev == nil {
				solver.SetRandomIsotropic(cfg.K0, cfg.E0, cfg.Seed)
			} else {
				spectral.Regrid(solver, prev)
				if root {
					fmt.Printf("stage %d: regridded %d³ → %d³ (E=%.5f preserved)\n",
						si, prev.N(), st.N, solver.Energy())
				} else {
					solver.Energy()
				}
				// The coarse stage's state now lives in the new
				// solver; release the old engine's plans (collective).
				prev.Close()
			}
			var th *spectral.Scalar
			if st.Scalar {
				th = solver.NewScalar(cfg.Nu)
				th.MeanGrad = 1
			}
			var parts *spectral.Particles
			if st.Particles > 0 {
				parts = solver.NewParticles(st.Particles, cfg.Seed+int64(si))
			}

			timer := stats.NewStepTimer(c)
			for i := 0; i < st.Steps; i++ {
				dt := st.Dt
				if st.CFL > 0 {
					dt = solver.SuggestDt(st.CFL)
				}
				if dt <= 0 {
					log.Fatalf("stage %d: invalid dt %g", si, dt)
				}
				timer.Begin()
				if parts != nil {
					solver.StepParticles(parts, dt)
				}
				if th != nil {
					solver.StepWithScalar(th, dt)
				} else {
					solver.Step(dt)
				}
				timer.End()
			}
			stt := solver.Statistics()
			div := solver.DivergenceMax()
			if root {
				fmt.Printf("stage %d done: %d³, %d steps, t=%.4f, %.3fs/step\n",
					si, st.N, st.Steps, solver.Time(), timer.MeanMax())
				fmt.Printf("  E=%.5f ε=%.5f Re_λ=%.1f kmaxη=%.2f div=%.1e\n",
					stt.Energy, stt.Dissipation, stt.ReLambda, stt.KMaxEta, div)
				if th != nil {
					fmt.Printf("  scalar ⟨θ²⟩=%.5g χ=%.5g\n",
						solver.ScalarVariance(th), solver.ScalarDissipation(th))
				}
				if parts != nil {
					fmt.Printf("  particle dispersion %.5g\n", parts.Dispersion())
				}
			} else {
				if th != nil {
					solver.ScalarVariance(th)
					solver.ScalarDissipation(th)
				}
			}
			if st.Checkpoint != "" {
				var err error
				if th != nil {
					err = solver.SaveCheckpoint(st.Checkpoint, th)
				} else {
					err = solver.SaveCheckpoint(st.Checkpoint)
				}
				if err != nil {
					log.Fatalf("rank %d: checkpoint: %v", c.Rank(), err)
				}
				if root {
					fmt.Printf("  checkpoint → %s\n", st.Checkpoint)
				}
			}
			if st.PNG != "" {
				plane := solver.SliceZ(0, st.N/2)
				if root {
					f, err := os.Create(st.PNG)
					if err != nil {
						log.Fatal(err)
					}
					if err := spectral.WriteSlicePNG(f, plane, st.N, st.N); err != nil {
						log.Fatal(err)
					}
					f.Close()
					fmt.Printf("  slice → %s\n", st.PNG)
				}
			}
			prev = solver
		}
		if prev != nil {
			prev.Close()
		}
	})
}

// buildSolver assembles the configured transform engine and solver.
func buildSolver(c *mpi.Comm, cfg Config, n int) *spectral.Solver {
	scfg := spectral.Config{N: n, Nu: cfg.Nu, Scheme: spectral.RK2, Dealias: spectral.Dealias23}
	if cfg.ForcingShells > 0 {
		scfg.Forcing = spectral.NewForcing(cfg.ForcingShells)
	}
	switch cfg.Engine {
	case "async":
		gran := core.PerSlab
		if cfg.Gran == "pencil" {
			gran = core.PerPencil
		}
		np := cfg.NP
		if np == 0 {
			np = 3
		}
		tr := core.NewAsyncSlabReal(c, n, core.Options{
			NP: np, Granularity: gran, SingleComm: cfg.SingleComm,
		})
		s := spectral.NewSolverWithTransform(c, scfg, tr)
		s.OwnTransform()
		return s
	case "threaded":
		threads := cfg.Threads
		if threads == 0 {
			threads = 2
		}
		s := spectral.NewSolverWithTransform(c, scfg,
			pfftThreaded(c, n, threads))
		s.OwnTransform()
		return s
	default:
		return spectral.NewSolver(c, scfg)
	}
}

// pfftThreaded isolates the pfft import for the threaded engine.
func pfftThreaded(c *mpi.Comm, n, threads int) spectral.Transform {
	return pfft.NewSlabRealThreaded(c, n, threads)
}
