// Command a2abench is the standalone MPI all-to-all kernel of §4.1:
// it performs blocking exchanges that mimic the DNS transposes without
// computing or moving data between CPU and GPU. Two modes:
//
//   - -mode real: measure the in-process runtime's all-to-all at small
//     rank counts (wall-clock on this machine);
//   - -mode model: evaluate the calibrated Summit network model,
//     regenerating the paper's Table 2.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func main() {
	var (
		mode  = flag.String("mode", "model", "real or model")
		ranks = flag.Int("ranks", 4, "ranks for -mode real")
		bytes = flag.Int("bytes", 1<<20, "per-destination message bytes for -mode real")
		iters = flag.Int("iters", 5, "iterations for -mode real")
		metOn = flag.Bool("metrics", false, "print the runtime's collective metrics after -mode real")
	)
	flag.Parse()

	switch *mode {
	case "model":
		fmt.Println("Effective all-to-all bandwidth per node (calibrated Summit model, Table 2):")
		fmt.Printf("%-6s %-4s %12s %12s\n", "Nodes", "Cfg", "P2P (MB)", "BW (GB/s)")
		for _, r := range simnet.SummitA2A().Table2() {
			fmt.Printf("%-6d %-4s %12.3f %12.1f\n", r.Nodes, r.Cfg, r.P2P/(1<<20), r.BW/1e9)
		}
	case "real":
		words := *bytes / 8
		if words < 1 {
			log.Fatal("message too small")
		}
		fmt.Printf("in-process blocking all-to-all: %d ranks × %d B per destination\n", *ranks, *bytes)
		if *metOn {
			metrics.Enable()
		}
		var agg stats.Running
		mpi.Run(*ranks, func(c *mpi.Comm) {
			send := make([]float64, c.Size()*words)
			recv := make([]float64, c.Size()*words)
			for i := range send {
				send[i] = float64(i)
			}
			c.Barrier()
			for it := 0; it < *iters; it++ {
				start := time.Now()
				mpi.Alltoall(c, send, recv)
				c.Barrier()
				el := time.Since(start).Seconds()
				if c.Rank() == 0 {
					agg.Add(el)
				}
			}
		})
		vol := float64(2 * *ranks * *ranks * *bytes)
		fmt.Printf("time: %s\n", agg.String())
		fmt.Printf("aggregate copy rate: %.2f GB/s\n", vol/agg.Mean()/1e9)
		if *metOn {
			metrics.Disable()
			snap := metrics.Default().Snapshot().Filter("mpi.")
			fmt.Println("collective metrics (max over ranks):")
			fmt.Print(snap.MaxOverRanks().Text())
			fmt.Println("collective metrics (summed over ranks):")
			fmt.Print(snap.SumOverRanks().Text())
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
