// Command psdnslint runs the internal/analysis suite (hotalloc,
// poolpair, mpireq, lockorder, metricname, collsym, planfree,
// atsite) over Go packages.
//
// It speaks cmd/go's vettool protocol, so the canonical invocation is
//
//	go build -o bin/psdnslint ./cmd/psdnslint
//	go vet -vettool=$PWD/bin/psdnslint ./...
//
// Run standalone with package patterns it re-executes itself under
// go vet, so `psdnslint ./...` works too. The protocol (the -V=full
// handshake, the -flags query, and the JSON .cfg unit description)
// is implemented directly on the standard library; see
// internal/analysis for why the repo does not depend on
// golang.org/x/tools.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// No tool-specific flags: report an empty JSON flag list.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	case len(args) >= 1 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help" || args[0] == "help"):
		usage()
	default:
		os.Exit(standalone(args))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: psdnslint [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with `//psdns:allow <analyzer> <reason>` on or above its line.\n")
}

// printVersion answers cmd/go's `-V=full` handshake. The reported
// build ID doubles as vet's cache key for this tool, so it must
// change whenever the binary does: hash the executable itself.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
			f.Close()
		}
	}
	fmt.Printf("psdnslint version devel buildID=%s\n", id)
}

// standalone re-executes the binary through go vet so cmd/go handles
// package loading, export data, and caching.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdnslint: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "psdnslint: %v\n", err)
		return 2
	}
	return 0
}

// config is the JSON unit description cmd/go hands a vettool, one
// compilation unit per invocation (the same schema x/tools'
// unitchecker consumes).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdnslint: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "psdnslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput == "" {
		fmt.Fprintf(os.Stderr, "psdnslint: %s: no VetxOutput\n", cfgPath)
		return 1
	}
	// This tool exports no facts, but cmd/go requires the facts file
	// to exist on success.
	writeVetx := func() bool {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "psdnslint: %v\n", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants facts, and there are none.
		if !writeVetx() {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				if !writeVetx() {
					return 1
				}
				return 0
			}
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via Check's return
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 1
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}

	diags := analysis.Run(fset, files, pkg, info, analysis.All())
	if !writeVetx() {
		return 1
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", posn, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
