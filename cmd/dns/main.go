// Command dns runs a real pseudo-spectral direct numerical simulation
// of isotropic turbulence at laptop scale, using either the
// synchronous slab transform or the paper's batched asynchronous GPU
// pipeline for every 3D FFT. It prints per-step timings (max over
// ranks, as the paper reports) and the standard physics diagnostics.
//
// Example:
//
//	dns -n 64 -ranks 4 -steps 10 -engine async -np 4 -gran pencil -forced
//
// The equation set is pluggable: -system picks a registered system by
// name (ns, forced-ns, rotating-scalar), or is inferred from -forced,
// -force-eps and -rotation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/tuning"
)

func main() {
	var (
		n        = flag.Int("n", 32, "grid points per direction (even, divisible by ranks)")
		ranks    = flag.Int("ranks", 2, "MPI ranks (in-process)")
		steps    = flag.Int("steps", 5, "time steps")
		dt       = flag.Float64("dt", 0.005, "time step size")
		nu       = flag.Float64("nu", 0.01, "kinematic viscosity")
		scheme   = flag.String("scheme", "rk2", "time scheme: rk2 or rk4")
		engine   = flag.String("engine", "sync", "transform engine: sync or async")
		np       = flag.Int("np", 3, "pencils per slab (async engine)")
		gran     = flag.String("gran", "slab", "all-to-all granularity: pencil or slab (async)")
		exch     = flag.String("exchange", "auto", "transpose-exchange strategy: auto, staged, fused, chunked or at (auto microbenchmarks at startup and pins the winner; at needs -at-stale)")
		decomp   = flag.String("decomp", "slab", "field decomposition: slab, auto, or a PRxPC pencil grid such as 2x4 (non-slab selects the transform drive loop — one forward+inverse transform pair per step — which also runs at ranks > N, past the slab scaling wall)")
		autotune = flag.Bool("autotune", false, "whole-step autotuning: search exchange strategy and engine knobs together at startup and pin the collectively-agreed winner")
		tuneDir  = flag.String("tunecache", "", "persist autotuner decisions as JSON under this directory (implies -autotune; a warm cache skips the startup trials)")
		atStale  = flag.Int("at-stale", -1, "asynchrony-tolerant stepping: bounded-staleness exchanges with this staleness bound in exchange epochs (-1 = off; implies -exchange at)")
		atDL     = flag.Duration("at-deadline", 50*time.Millisecond, "asynchrony-tolerant stepping: soft wait for peers within the staleness bound (0 = never wait past the hard bound)")
		ngpu     = flag.Int("ngpu", 1, "devices per rank (async engine)")
		workers  = flag.Int("workers", 1, "worker-team size per rank (FFT batch + pack/unpack parallelism; results identical for any value)")
		system   = flag.String("system", "", "equation set by registered name (default: inferred from the physics flags)")
		forced   = flag.Bool("forced", false, "sustain stationary turbulence (stochastic large-scale forcing)")
		forceKF  = flag.Int("force-kf", 2, "highest forced shell for -forced / -force-eps")
		forceEps = flag.Float64("force-eps", 0, "energy injection rate (0 with -forced picks a default)")
		rotation = flag.Float64("rotation", 0, "frame rotation rate Ω about ẑ (Coriolis)")
		k0       = flag.Float64("k0", 3, "initial spectrum peak wavenumber")
		e0       = flag.Float64("e0", 0.5, "initial kinetic energy")
		seed     = flag.Int64("seed", 2025, "initial condition seed")
		scalar   = flag.Bool("scalar", false, "co-advance a passive scalar with mean gradient")
		schmidt  = flag.Float64("sc", 1.0, "Schmidt number ν/κ for -scalar")
		pngOut   = flag.String("png", "", "write a z-midplane PNG of u to this path at the end")
		ckptDir  = flag.String("ckpt", "", "write a checkpoint directory at the end (for cmd/postproc)")
		metOn    = flag.Bool("metrics", false, "record runtime metrics over the step loop and print the per-phase breakdown")
		metJSON  = flag.String("metrics-json", "", "also dump the full metrics snapshot as JSON to this path (implies -metrics)")

		watchOn      = flag.Bool("watchdog", true, "run the MPI stall watchdog (deadlock detection)")
		deadlockWin  = flag.Duration("deadlock-after", 0, "declare a deadlock after this quiescent window (0 = runtime default 2s)")
		opDeadline   = flag.Duration("op-deadline", 0, "abort if any single blocking MPI operation exceeds this (0 = off)")
		waitDeadline = flag.Duration("wait-deadline", 0, "async engine: bound each all-to-all wait; blown deadline aborts with a StallError (0 = off)")
		faultSeed    = flag.Int64("fault-seed", 1, "fault injection: RNG seed (deterministic per seed)")
		faultDrop    = flag.Float64("fault-drop", 0, "fault injection: per-message drop probability in [0,1]")
		faultDup     = flag.Float64("fault-dup", 0, "fault injection: per-message duplication probability in [0,1]")
		faultDelay   = flag.Duration("fault-delay", 0, "fault injection: fixed extra latency per message")
		faultCrash   = flag.String("fault-crash", "", "fault injection: crash schedule as rank:op (1-based operation index)")
	)
	flag.Parse()
	if *metJSON != "" {
		*metOn = true
	}

	dec, err := tuning.ParseDecomp(*decomp)
	if err != nil {
		log.Fatalf("-decomp: %v", err)
	}
	if dec.IsSlab() && *n%*ranks != 0 {
		log.Fatalf("ranks must divide N: %d %% %d != 0 (a pencil -decomp lifts this constraint)", *n, *ranks)
	}
	if dec.IsPencil() && !dec.Valid(*n, *ranks) {
		log.Fatalf("-decomp %s invalid for N=%d ranks=%d (need Pr·Pc=ranks, Pr|N, Pc|N, Pc ≤ N/2+1)", dec, *n, *ranks)
	}
	if *system != "" && spectral.SystemCode(*system) < 0 {
		log.Fatalf("-system: unknown equation set %q; registered systems: %s",
			*system, strings.Join(spectral.Systems(), ", "))
	}
	if *forced && *forceEps == 0 {
		*forceEps = 0.1
	}
	sch := spectral.RK2
	if *scheme == "rk4" {
		sch = spectral.RK4
	}
	granularity := core.PerSlab
	if *gran == "pencil" {
		granularity = core.PerPencil
	}
	strategy, err := exchange.Parse(*exch)
	if err != nil {
		log.Fatalf("-exchange: %v", err)
	}
	if *atStale >= 0 && strategy != exchange.AT {
		if strategy != exchange.Auto {
			log.Fatalf("-at-stale combines only with -exchange at (or auto), not %s", strategy)
		}
		strategy = exchange.AT
	}
	if strategy == exchange.AT && *atStale < 0 {
		log.Fatalf("-exchange at needs a staleness bound: set -at-stale (0 waits for every peer, k lets peers lag k exchange epochs)")
	}
	if *tuneDir != "" {
		*autotune = true
	}
	if *autotune && strategy != exchange.Auto {
		log.Fatalf("-autotune searches the strategy itself; it combines only with -exchange auto, not %s", strategy)
	}

	runOpts := []mpi.RunOption{mpi.WithWatchdog(mpi.Watchdog{
		Off:           !*watchOn,
		Deadline:      *opDeadline,
		DeadlockAfter: *deadlockWin,
	})}
	if *faultDrop > 0 || *faultDup > 0 || *faultDelay > 0 || *faultCrash != "" {
		f := &mpi.Faults{Seed: *faultSeed}
		if *faultDrop > 0 || *faultDup > 0 || *faultDelay > 0 {
			rule := mpi.MatchAll()
			rule.DropProb = *faultDrop
			rule.DupProb = *faultDup
			rule.Delay = *faultDelay
			f.Rules = []mpi.FaultRule{rule}
		}
		if *faultCrash != "" {
			var rank, op int
			if _, err := fmt.Sscanf(*faultCrash, "%d:%d", &rank, &op); err != nil {
				log.Fatalf("-fault-crash must be rank:op, got %q", *faultCrash)
			}
			f.Crash = map[int]int{rank: op}
		}
		runOpts = append(runOpts, mpi.WithFaults(f))
	}

	if !dec.IsSlab() {
		// Non-slab decompositions are a transform-level feature: the
		// solver's state lives on the slab layout, so -decomp pencil/auto
		// drives the tuned transform directly — one forward+inverse pair
		// per step — which is also the only mode that runs at ranks > N.
		if *engine == "async" {
			log.Fatalf("-decomp %s: the asynchronous engine is slab-only; drop -engine async", dec)
		}
		if strategy == exchange.AT {
			log.Fatalf("-decomp %s combines with a concrete or auto -exchange, not at", dec)
		}
		if err := runTransformDrive(dec, strategy, *n, *ranks, *steps, *workers, *tuneDir, *metOn, runOpts); err != nil {
			log.Fatalf("run failed: %v", err)
		}
		if *metOn {
			fft.PublishMetrics(metrics.Default())
			snap := metrics.Default().Snapshot()
			printPhaseBreakdown(snap, *steps)
			fmt.Println("runtime metrics (max over ranks):")
			fmt.Print(snap.MaxOverRanks().Text())
		}
		os.Exit(0)
	}

	fmt.Printf("DNS %d³ on %d ranks, %s, engine=%s ν=%g dt=%g\n",
		*n, *ranks, *scheme, *engine, *nu, *dt)

	err = mpi.TryRun(*ranks, func(c *mpi.Comm) {
		opts := []spectral.Option{
			spectral.WithNu(*nu),
			spectral.WithScheme(sch),
			spectral.WithDealias(spectral.Dealias23),
		}
		if *forceEps > 0 {
			opts = append(opts, spectral.WithForcing(*forceKF, *forceEps))
		}
		if *rotation != 0 {
			opts = append(opts, spectral.WithRotation(*rotation))
		}
		if *system != "" {
			opts = append(opts, spectral.WithSystem(*system))
		}
		if strategy == exchange.AT {
			opts = append(opts, spectral.WithAsyncTolerance(*atStale), spectral.WithAsyncDeadline(*atDL))
		}
		var pinned exchange.Strategy
		if *engine == "async" {
			tr := core.NewAsyncSlabReal(c, *n, core.Options{
				NP: *np, Granularity: granularity, NGPU: *ngpu,
				Workers:      *workers,
				WaitDeadline: *waitDeadline,
				Exchange:     strategy,
				ATMaxStale:   max(*atStale, 0),
				ATDeadline:   *atDL,
				Autotune:     *autotune,
				TuneCacheDir: *tuneDir,
			})
			defer tr.Close()
			pinned = tr.Strategy()
			opts = append(opts, spectral.WithTransform(tr))
		} else if strategy == exchange.AT {
			tr := pfft.NewSlabRealAT(c, *n, *workers, *atStale, *atDL)
			defer tr.Close()
			pinned = tr.Strategy()
			opts = append(opts, spectral.WithTransform(tr))
		} else if *autotune {
			var cfg tuning.Config
			if *tuneDir != "" {
				cfg.Cache = tuning.Open(*tuneDir)
			}
			tr := pfft.NewSlabRealTuned(c, *n, *workers, cfg)
			defer tr.Close()
			pinned = tr.Strategy()
			opts = append(opts, spectral.WithTransform(tr))
		} else {
			tr := pfft.NewSlabRealStrategy(c, *n, *workers, strategy)
			defer tr.Close()
			pinned = tr.Strategy()
			opts = append(opts, spectral.WithTransform(tr))
		}
		solver := spectral.New(c, *n, opts...)
		defer solver.Close()
		if c.Rank() == 0 {
			fmt.Printf("transpose-exchange strategy: %s\n", pinned)
			fmt.Printf("equation set: %s (%d fields)\n", solver.System().Name(), solver.Fields())
		}
		solver.SetRandomIsotropic(*k0, *e0, *seed)
		var th *spectral.Scalar
		if *scalar {
			if solver.Fields() != 3 {
				log.Fatalf("-scalar uses the legacy coupled stepper and needs a 3-field system; use -system rotating-scalar (WithScalars) instead")
			}
			th = solver.NewScalar(*nu / *schmidt)
			th.MeanGrad = 1.0
		}

		timer := stats.NewStepTimer(c)
		root := c.Rank() == 0
		if root {
			st := solver.Statistics()
			fmt.Printf("t=%.4f  E=%.5f  ε=%.5f  Re_λ=%.1f  kmaxη=%.2f  div=%.2e\n",
				solver.Time(), st.Energy, st.Dissipation, st.ReLambda, st.KMaxEta, solver.DivergenceMax())
		} else {
			solver.Statistics()
			solver.DivergenceMax()
		}
		if *metOn {
			// Record only the step loop, so the phase histograms
			// measure steps rather than setup and diagnostics.
			c.Barrier()
			metrics.Enable()
			// The engine pins its strategy gauge and the solver its
			// system gauge at construction, while the registry is still
			// off; restate both now that it is on.
			c.Metrics().GaugeRank("exchange.strategy", c.Rank()).Set(pinned.Code())
			c.Metrics().GaugeRank("solver.system", c.Rank()).
				Set(float64(spectral.SystemCode(solver.System().Name())))
		}
		for i := 0; i < *steps; i++ {
			timer.Begin()
			if th != nil {
				solver.StepWithScalar(th, *dt)
			} else {
				solver.Step(*dt)
			}
			wall := timer.End()
			e := solver.Energy()
			if root {
				fmt.Printf("step %3d  t=%.4f  E=%.5f  wall=%.3fs\n",
					solver.StepCount(), solver.Time(), e, wall)
			}
		}
		if *metOn {
			c.Barrier()
			metrics.Disable()
		}
		st := solver.Statistics()
		div := solver.DivergenceMax()
		cfl := solver.CFL(*dt)
		if root {
			fmt.Printf("final: E=%.5f ε=%.5f Ω=%.4f u'=%.4f λ=%.4f Re_λ=%.1f η=%.4g kmaxη=%.2f\n",
				st.Energy, st.Dissipation, st.Enstrophy, st.URMS, st.TaylorScale, st.ReLambda, st.Kolmogorov, st.KMaxEta)
			fmt.Printf("invariants: max|k·û|=%.2e  CFL=%.3f\n", div, cfl)
			if strategy == exchange.AT {
				fmt.Printf("asynchrony-tolerant: %d of %d steps staleness-corrected on rank 0 (bound %d epochs, deadline %v)\n",
					solver.ATCorrections(), *steps, *atStale, *atDL)
			}
			fmt.Printf("time/step (max over ranks, averaged): %.3fs over %d steps\n",
				timer.MeanMax(), timer.Steps())
			spec := solver.Spectrum()
			fmt.Println("energy spectrum E(k):")
			for k := 1; k < len(spec) && k <= 12; k++ {
				fmt.Printf("  k=%2d  %.4e\n", k, spec[k])
			}
		} else {
			solver.Spectrum()
		}
		diags := solver.SystemDiagnostics()
		if root && len(diags) > 0 {
			fmt.Printf("system diagnostics (%s):\n", solver.System().Name())
			for _, d := range diags {
				fmt.Printf("  %-18s %.6g\n", d.Name, d.Value)
			}
		}
		if th != nil {
			v := solver.ScalarVariance(th)
			chi := solver.ScalarDissipation(th)
			if root {
				fmt.Printf("scalar: ⟨θ²⟩=%.5g  χ=%.5g  (Sc=%g)\n", v, chi, *schmidt)
			}
		}
		if *ckptDir != "" {
			var err error
			if th != nil {
				err = solver.SaveCheckpoint(*ckptDir, th)
			} else {
				err = solver.SaveCheckpoint(*ckptDir)
			}
			if err != nil {
				log.Fatalf("rank %d: checkpoint: %v", c.Rank(), err)
			}
			if root {
				fmt.Printf("checkpoint written to %s\n", *ckptDir)
			}
		}
		if *pngOut != "" {
			plane := solver.SliceZ(0, *n/2)
			if root {
				f, err := os.Create(*pngOut)
				if err != nil {
					log.Fatal(err)
				}
				if err := spectral.WriteSlicePNG(f, plane, *n, *n); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Printf("wrote %s\n", *pngOut)
			}
		}
	}, runOpts...)
	if err != nil {
		var st *mpi.StallError
		var se *spectral.StepStallError
		switch {
		case errors.As(err, &se):
			log.Fatalf("stall during time stepping: %v", se)
		case errors.As(err, &st):
			log.Fatalf("watchdog: %v", st)
		default:
			log.Fatalf("run failed: %v", err)
		}
	}

	if *metOn {
		fft.PublishMetrics(metrics.Default())
		snap := metrics.Default().Snapshot()
		printPhaseBreakdown(snap, *steps)
		fmt.Println("runtime metrics (max over ranks):")
		fmt.Print(snap.MaxOverRanks().Text())
		if *metJSON != "" {
			f, err := os.Create(*metJSON)
			if err != nil {
				log.Fatal(err)
			}
			if err := snap.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote metrics snapshot to %s\n", *metJSON)
		}
	}
	os.Exit(0)
}

// phaseLeaves are the disjoint wall sections of one time step: the
// solver's own arithmetic plus the transform engine's phases (the
// synchronous slab records fft/pack/a2a/unpack; the asynchronous
// pipeline records pipeline/a2a/unpack).
var phaseLeaves = []string{
	"phase.fft", "phase.pack", "phase.a2a", "phase.unpack",
	"phase.pipeline", "phase.compute",
}

// printPhaseBreakdown reports the per-phase step decomposition of the
// slowest rank — the rank with the largest total step time, matching
// the paper's max-over-ranks reporting — and how much of that rank's
// measured wall time the phases account for.
func printPhaseBreakdown(snap metrics.Snapshot, steps int) {
	var wall metrics.Entry
	for _, e := range snap.Entries {
		if e.Name == "phase.step" && e.Value > wall.Value {
			wall = e
		}
	}
	if wall.Count == 0 || steps == 0 {
		fmt.Println("metrics: no step phases recorded")
		return
	}
	fmt.Printf("per-phase step breakdown (slowest rank %d, %d steps):\n", wall.Rank, steps)
	total := 0.0
	for _, name := range phaseLeaves {
		e, ok := snap.Get(name, wall.Rank)
		if !ok || e.Value == 0 {
			continue
		}
		total += e.Value
		fmt.Printf("  %-10s %10.4fs/step  %5.1f%%\n",
			strings.TrimPrefix(name, "phase."), e.Value/float64(steps), 100*e.Value/wall.Value)
	}
	fmt.Printf("  %-10s %10.4fs/step  (phases cover %.1f%% of wall)\n",
		"wall", wall.Value/float64(steps), 100*total/wall.Value)
}

// runTransformDrive is the -decomp pencil/auto mode: build the tuned
// real-field transform for the requested decomposition and drive
// forward+inverse transform pairs, reporting per-step wall times (max
// over ranks) and the round-trip error. This is the path that runs at
// ranks > N, where no slab layout exists.
func runTransformDrive(dec tuning.Decomp, strategy exchange.Strategy, n, ranks, steps, workers int, tuneDir string, metOn bool, runOpts []mpi.RunOption) error {
	fmt.Printf("transform drive %d³ on %d ranks, decomp=%s (forward+inverse pair per step)\n", n, ranks, dec)
	return mpi.TryRun(ranks, func(c *mpi.Comm) {
		var cfg tuning.Config
		if tuneDir != "" {
			cfg.Cache = tuning.Open(tuneDir)
		}
		if strategy != exchange.Auto {
			cfg.Space.Strategies = []exchange.Strategy{strategy}
		}
		tr := pfft.NewRealTuned(c, n, workers, dec, cfg)
		defer tr.Close()
		root := c.Rank() == 0
		if root {
			switch e := tr.(type) {
			case *pfft.PencilReal:
				l := e.Layout()
				fmt.Printf("decomposition: pencil %dx%d\n", l.Pr, l.Pc)
				fmt.Printf("transpose-exchange strategies: yz=%s zy=%s\n", e.Strategy(), e.StrategyZY())
			case *pfft.SlabReal:
				fmt.Println("decomposition: slab")
				fmt.Printf("transpose-exchange strategies: yz=%s zy=%s\n", e.Strategy(), e.StrategyZY())
			}
		}
		phys := make([]float64, tr.PhysicalLen())
		orig := make([]float64, tr.PhysicalLen())
		four := make([]complex128, tr.FourierLen())
		base := c.Rank() * tr.PhysicalLen()
		for i := range phys {
			phys[i] = math.Sin(0.37 * float64(base+i))
		}
		copy(orig, phys)
		timer := stats.NewStepTimer(c)
		if metOn {
			c.Barrier()
			metrics.Enable()
		}
		for i := 0; i < steps; i++ {
			timer.Begin()
			tr.PhysicalToFourier(four, phys)
			tr.FourierToPhysical(phys, four)
			wall := timer.End()
			if root {
				fmt.Printf("step %3d  wall=%.3fs\n", i+1, wall)
			}
		}
		if metOn {
			c.Barrier()
			metrics.Disable()
		}
		diff := []float64{0}
		for i := range phys {
			if d := math.Abs(phys[i] - orig[i]); d > diff[0] {
				diff[0] = d
			}
		}
		mpi.AllreduceMax(c, diff)
		if root {
			fmt.Printf("round-trip max|err| after %d pairs: %.3e\n", steps, diff[0])
			fmt.Printf("time/step (max over ranks, averaged): %.3fs over %d steps\n",
				timer.MeanMax(), timer.Steps())
		}
	}, runOpts...)
}
