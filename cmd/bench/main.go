// Command bench runs the repository's pinned performance workloads and
// emits a machine-readable baseline (BENCH_step.json) with ns/op,
// allocs/op and bytes/op per workload. The committed baseline plus the
// -baseline/-check flags turn it into a regression gate: CI re-runs
// the workloads and fails when a workload slows down beyond the
// tolerance or starts allocating on a previously allocation-free path.
//
// Workloads (fixed geometry so numbers are comparable across commits):
//
//   - slab_fwd_inv_n64_p4 / n128: distributed forward+inverse real
//     transform on the synchronous worker-team slab engine;
//   - dns_rk2_step_n32_p2: one full Navier–Stokes RK2 step;
//   - step_forced_n64 / step_scalar_n64: one RK2 step of the
//     stochastically forced system and of NS + two passive scalars
//     with rotation (the registry's non-trivial equation sets);
//   - mailbox_fanin_p8: point-to-point fan-in through the in-process
//     runtime's mailboxes;
//   - pack_unpack_yz: the host transpose pack/unpack kernel pair;
//   - exchange_{staged,fused,chunked}_n{64,128}: the isolated y→z
//     transpose-exchange at P=4 under each pinned strategy (staged
//     pack → all-to-all → unpack vs the zero-copy fused gathers);
//   - step_at_n64 / exchange_at_n64: the asynchrony-tolerant step and
//     isolated bounded exchange — the epoch-tagged DoBounded path plus
//     the staleness-weighted correction, pinned allocation-free;
//   - slab_f32_fwd_inv_n64_p4 / n128: the slab transform with
//     single-precision transpose-exchanges (complex64 wire format,
//     half the exchanged bytes);
//   - slab_tuned_n64_p4: the slab transform constructed through the
//     whole-step autotuner (trials at construction, outside the timed
//     window), pinning the tuned configuration allocation-free;
//   - pencil_fwd_inv_n64_p4 / p8: the forward+inverse transform on the
//     2D pencil engine (2×2 and 2×4 process grids), pinning the
//     two-transpose dataflow — column and row exchanges through
//     per-sub-communicator plans — allocation-free at steady state.
//
// Besides the -baseline/-check gate, `bench -compare old.json
// new.json` diffs two measurement files row by row (speedup per
// workload) and exits 1 when any shared row regresses beyond
// -tolerance — the CI form of a before/after experiment. A workload
// present in the old file but absent from the new one exits 2 (the
// offending row is printed as FAIL): a silently dropped or renamed
// workload must not read as a pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/exchange"
	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/spectral"
	"repro/internal/transpose"
	"repro/internal/tuning"
)

// Result is one workload's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// File is the BENCH_step.json schema.
type File struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go_version"`
	Quick     bool     `json:"quick"`
	Workers   int      `json:"workers"`
	Results   []Result `json:"results"`
}

// sample is the raw loop measurement a workload reports: wall time and
// the heap allocations attributed to the timed iterations.
type sample struct {
	ns     int64
	allocs int64
	bytes  int64
}

func init() {
	// Record every allocation in the memory profile so timeLoop can
	// attribute the timed window's allocations exactly (see below).
	runtime.MemProfileRate = 1
}

// profPre/profPost are timeLoop's reusable snapshot buffers. They are
// sized before the pre-window snapshot so the snapshots themselves
// never allocate inside the attributed window.
var profPre, profPost []runtime.MemProfileRecord

// timeLoop runs f iters times after warm warmup calls and reports wall
// time plus the allocations attributed to the timed window.
//
// Allocations are measured by diffing memory-profile snapshots (at
// MemProfileRate=1 every allocation is sampled) rather than MemStats
// deltas: process-wide Mallocs counts the runtime's own post-GC
// rebuilds of its per-P sudog/defer/timer caches, a constant ~10
// allocations of background noise in a many-goroutine world that no
// amount of settling removes deterministically. The profile diff sees
// only real allocation sites with Go-level stacks, so a clean hot path
// measures exactly zero and the gate needs no slack. Profile samples
// publish at GC boundaries, hence the forced GCs fencing each snapshot.
func timeLoop(iters, warm int, f func()) sample {
	for i := 0; i < warm; i++ {
		f()
	}
	if n, _ := runtime.MemProfile(nil, true); len(profPre) < n+4096 {
		profPre = make([]runtime.MemProfileRecord, n+8192)
		profPost = make([]runtime.MemProfileRecord, n+8192)
	}
	runtime.GC() // publish samples recorded before the window
	runtime.GC()
	npre, _ := runtime.MemProfile(profPre, true)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	el := time.Since(t0)
	runtime.GC() // publish the window's samples
	runtime.GC()
	npost, ok := runtime.MemProfile(profPost, true)
	if !ok {
		// More new allocation sites than the slack allowed for; grow and
		// retake (the extra sites are still post-window-flushed state).
		profPost = make([]runtime.MemProfileRecord, npost+8192)
		npost, _ = runtime.MemProfile(profPost, true)
	}
	allocs, bytes := profDelta(profPre[:npre], profPost[:npost])
	return sample{ns: el.Nanoseconds(), allocs: allocs, bytes: bytes}
}

// profDelta sums the growth in allocated objects and bytes between two
// memory-profile snapshots, accumulated per call stack (a stack can
// span several size-class buckets).
func profDelta(pre, post []runtime.MemProfileRecord) (objs, bytes int64) {
	type cum struct{ objs, bytes int64 }
	acc := func(recs []runtime.MemProfileRecord) map[[32]uintptr]cum {
		m := make(map[[32]uintptr]cum, len(recs))
		for _, r := range recs {
			c := m[r.Stack0]
			c.objs += r.AllocObjects
			c.bytes += r.AllocBytes
			m[r.Stack0] = c
		}
		return m
	}
	base := acc(pre)
	trace := os.Getenv("BENCH_TRACE_ALLOCS") != ""
	for k, c := range acc(post) {
		b := base[k]
		if d := c.objs - b.objs; d > 0 {
			if runtimeOnlyStack(k) {
				// Background runtime housekeeping (e.g. the scavenger
				// growing its timer heap) — not attributable to any
				// workload code.
				continue
			}
			objs += d
			bytes += c.bytes - b.bytes
			if trace {
				fmt.Printf("-- %d window alloc(s), %d B:\n", d, c.bytes-b.bytes)
				n := 0
				for n < len(k) && k[n] != 0 {
					n++
				}
				frames := runtime.CallersFrames(k[:n])
				for {
					fr, more := frames.Next()
					fmt.Printf("   %s (%s:%d)\n", fr.Function, fr.File, fr.Line)
					if !more {
						break
					}
				}
			}
		}
	}
	return objs, bytes
}

// runtimeOnlyStack reports whether every frame of a profile stack is a
// runtime-internal function: an allocation by one of the runtime's own
// background goroutines rather than by workload code (which always has
// at least one non-runtime frame on its stack).
func runtimeOnlyStack(k [32]uintptr) bool {
	n := 0
	for n < len(k) && k[n] != 0 {
		n++
	}
	frames := runtime.CallersFrames(k[:n])
	for {
		fr, more := frames.Next()
		if fr.Function != "" && !strings.HasPrefix(fr.Function, "runtime.") {
			return false
		}
		if !more {
			return true
		}
	}
}

type workload struct {
	name        string
	full, quick int
	// hotpath marks workloads that drive //psdns:hotpath-annotated
	// code paths. For these, allocs/op beyond the slack fails the run
	// outright — no baseline needed — so the dynamic measurement
	// cross-validates what psdnslint enforces statically.
	hotpath bool
	run     func(iters, workers int) sample
}

// slabTransform measures one forward+inverse cycle of the synchronous
// worker-team slab transform at fixed N and P. Rank 0 samples; peers
// run the same collective loop (their allocations are part of the
// process-wide measurement, which at steady state is zero anyway).
func slabTransform(n, p int) func(iters, workers int) sample {
	return slabTransformWith(p, func(c *mpi.Comm, workers int) *pfft.SlabReal {
		return pfft.NewSlabRealWorkers(c, n, workers)
	})
}

// slabTransformSingle is slabTransform on the single-precision-wire
// engine: FFTs in float64, transpose-exchanges through complex64.
func slabTransformSingle(n, p int) func(iters, workers int) sample {
	return slabTransformWith(p, func(c *mpi.Comm, workers int) *pfft.SlabReal {
		return pfft.NewSlabRealSingle(c, n, workers)
	})
}

// slabTransformTuned is slabTransform on an engine constructed through
// the whole-step autotuner (default numerics-preserving space, no
// cache). The trials run at construction, outside the timed window;
// the row pins the tuned configuration's steady state.
func slabTransformTuned(n, p int) func(iters, workers int) sample {
	return slabTransformWith(p, func(c *mpi.Comm, workers int) *pfft.SlabReal {
		return pfft.NewSlabRealTuned(c, n, workers, tuning.Config{})
	})
}

// pencilTransform measures one forward+inverse cycle of the pencil
// transform engine at fixed N over a Pr×Pc process grid, pinning the
// steady state of the two-transpose dataflow (column and row
// exchanges both on the chunked zero-copy gather). Rank 0 samples;
// peers run the same collective loop.
func pencilTransform(n, pr, pc int) func(iters, workers int) sample {
	return func(iters, workers int) sample {
		var s sample
		mpi.Run(pr*pc, func(c *mpi.Comm) {
			row, col := c.CartGrid(pr, pc)
			f := pfft.NewPencilReal(col, row, n, workers, exchange.Both(exchange.ChunkedFused))
			defer f.Close()
			four := make([]complex128, f.FourierLen())
			phys := make([]float64, f.PhysicalLen())
			for i := range phys {
				phys[i] = float64(i%17) * 0.5
			}
			cycle := func() {
				f.PhysicalToFourier(four, phys)
				f.FourierToPhysical(phys, four)
			}
			c.Barrier()
			if c.Rank() == 0 {
				s = timeLoop(iters, 2, cycle)
			} else {
				for i := 0; i < iters+2; i++ {
					cycle()
				}
			}
			// Hold every rank until measurement ends so teardown
			// allocations can't publish into the window's profile flush.
			c.Barrier()
		})
		return s
	}
}

func slabTransformWith(p int, build func(c *mpi.Comm, workers int) *pfft.SlabReal) func(iters, workers int) sample {
	return func(iters, workers int) sample {
		var s sample
		mpi.Run(p, func(c *mpi.Comm) {
			f := build(c, workers)
			defer f.Close()
			four := make([]complex128, f.FourierLen())
			phys := make([]float64, f.PhysicalLen())
			for i := range phys {
				phys[i] = float64(i%17) * 0.5
			}
			cycle := func() {
				f.PhysicalToFourier(four, phys)
				f.FourierToPhysical(phys, four)
			}
			c.Barrier()
			if c.Rank() == 0 {
				s = timeLoop(iters, 2, cycle)
			} else {
				for i := 0; i < iters+2; i++ {
					cycle()
				}
			}
			// Hold every rank until measurement ends so teardown
			// allocations can't publish into the window's profile flush.
			c.Barrier()
		})
		return s
	}
}

func dnsStep(n, p int) func(iters, workers int) sample {
	return func(iters, workers int) sample {
		var s sample
		mpi.Run(p, func(c *mpi.Comm) {
			tr := pfft.NewSlabRealWorkers(c, n, workers)
			defer tr.Close()
			sol := spectral.NewSolverWithTransform(c, spectral.Config{
				N: n, Nu: 0.01, Scheme: spectral.RK2, Dealias: spectral.Dealias23,
			}, tr)
			defer sol.Close()
			sol.SetRandomIsotropic(3, 0.5, 1)
			step := func() { sol.Step(1e-4) }
			c.Barrier()
			if c.Rank() == 0 {
				s = timeLoop(iters, 2, step)
			} else {
				for i := 0; i < iters+2; i++ {
					step()
				}
			}
			// Hold every rank until measurement ends so teardown
			// allocations can't publish into the window's profile flush.
			c.Barrier()
		})
		return s
	}
}

// dnsStepOpts measures one step of an options-constructed solver, so
// the registry's richer equation sets (forcing controller, scalar
// advection, Coriolis) are pinned against allocation and time
// regressions just like the plain NS step.
func dnsStepOpts(n, p int, opts ...spectral.Option) func(iters, workers int) sample {
	return func(iters, workers int) sample {
		var s sample
		mpi.Run(p, func(c *mpi.Comm) {
			tr := pfft.NewSlabRealWorkers(c, n, workers)
			defer tr.Close()
			all := append([]spectral.Option{
				spectral.WithNu(0.01),
				spectral.WithScheme(spectral.RK2),
				spectral.WithDealias(spectral.Dealias23),
				spectral.WithTransform(tr),
			}, opts...)
			sol := spectral.New(c, n, all...)
			defer sol.Close()
			sol.SetRandomIsotropic(3, 0.5, 1)
			for f := 3; f < sol.Fields(); f++ {
				sol.SetFieldBlob(f, 2.5, 0.5, int64(40+f))
			}
			step := func() { sol.Step(1e-4) }
			c.Barrier()
			if c.Rank() == 0 {
				s = timeLoop(iters, 2, step)
			} else {
				for i := 0; i < iters+2; i++ {
					step()
				}
			}
			// Hold every rank until measurement ends so teardown
			// allocations can't publish into the window's profile flush.
			c.Barrier()
		})
		return s
	}
}

// dnsStepAT measures one asynchrony-tolerant RK2 step: every
// transpose runs through the epoch-tagged bounded exchange and the
// stepper's staleness bookkeeping runs each stage. With no straggler
// the arithmetic is identical to the synchronous step, so this pins
// the pure overhead of the AT machinery — and, being hotpath-marked,
// that DoBounded and the correction stay allocation-free.
func dnsStepAT(n, p, maxStale int) func(iters, workers int) sample {
	return func(iters, workers int) sample {
		var s sample
		mpi.Run(p, func(c *mpi.Comm) {
			tr := pfft.NewSlabRealAT(c, n, workers, maxStale, 2*time.Second)
			defer tr.Close()
			sol := spectral.New(c, n,
				spectral.WithNu(0.01),
				spectral.WithScheme(spectral.RK2),
				spectral.WithDealias(spectral.Dealias23),
				spectral.WithTransform(tr),
				spectral.WithAsyncTolerance(maxStale),
			)
			defer sol.Close()
			sol.SetRandomIsotropic(3, 0.5, 1)
			step := func() { sol.Step(1e-4) }
			c.Barrier()
			if c.Rank() == 0 {
				s = timeLoop(iters, 2, step)
			} else {
				for i := 0; i < iters+2; i++ {
					step()
				}
			}
			// Hold every rank until measurement ends so teardown
			// allocations can't publish into the window's profile flush.
			c.Barrier()
		})
		return s
	}
}

// fanInTag is the message tag of the fan-in workload's point-to-point
// traffic. Tags must be named constants (see the mpireq analyzer) so
// call sites can't silently collide in the mailbox key space.
const fanInTag = 7

// mailboxFanIn drives p−1 tagged sends into rank 0 per op, the fan-in
// pattern the runtime's per-key mailbox signalling exists for.
func mailboxFanIn(p, words int) func(iters, workers int) sample {
	return func(iters, _ int) sample {
		var s sample
		mpi.Run(p, func(c *mpi.Comm) {
			buf := make([]float64, words)
			if c.Rank() == 0 {
				op := func() {
					for src := 1; src < p; src++ {
						mpi.Recv(c, src, fanInTag, buf)
					}
				}
				s = timeLoop(iters, 2, op)
			} else {
				for i := 0; i < iters+2; i++ {
					mpi.Send(c, 0, fanInTag, buf)
				}
			}
		})
		return s
	}
}

// exchangeYZ measures the isolated y→z transpose-exchange of one
// Fourier slab under a pinned strategy: staged is the pack →
// persistent all-to-all → unpack triple, fused and chunked go through
// the zero-copy ExchangePlan gather. Same measurement discipline as
// slabTransform (rank 0 samples, peers run the collective loop).
func exchangeYZ(n, p int, st exchange.Strategy) func(iters, workers int) sample {
	return func(iters, workers int) sample {
		var s sample
		mpi.Run(p, func(c *mpi.Comm) {
			var f *pfft.SlabReal
			if st == exchange.AT {
				f = pfft.NewSlabRealAT(c, n, workers, 1, 2*time.Second)
			} else {
				f = pfft.NewSlabRealStrategy(c, n, workers, st)
			}
			defer f.Close()
			four := make([]complex128, f.FourierLen())
			for i := range four {
				four[i] = complex(float64(i%17)*0.5, 1)
			}
			op := func() { f.ExchangeYZ(four) }
			c.Barrier()
			if c.Rank() == 0 {
				s = timeLoop(iters, 2, op)
			} else {
				for i := 0; i < iters+2; i++ {
					op()
				}
			}
			// Hold every rank until measurement ends so teardown
			// allocations can't publish into the window's profile flush.
			c.Barrier()
		})
		return s
	}
}

func packUnpack(nxh, ny, mz, p int) func(iters, workers int) sample {
	return func(iters, _ int) sample {
		src := make([]complex128, mz*ny*nxh)
		dst := make([]complex128, mz*ny*nxh)
		back := make([]complex128, mz*ny*nxh)
		for i := range src {
			src[i] = complex(float64(i%11), 1)
		}
		my, nz := ny/p, mz*p
		return timeLoop(iters, 2, func() {
			transpose.PackYZ(dst, src, nxh, ny, mz, p)
			transpose.UnpackYZ(back, dst, nxh, my, nz, p)
		})
	}
}

var workloads = []workload{
	{"slab_fwd_inv_n64_p4", 40, 8, true, slabTransform(64, 4)},
	{"slab_fwd_inv_n128_p4", 10, 2, true, slabTransform(128, 4)},
	{"dns_rk2_step_n32_p2", 30, 6, true, dnsStep(32, 2)},
	{"step_forced_n64", 10, 2, true, dnsStepOpts(64, 4,
		spectral.WithForcing(2, 0.05), spectral.WithForcingNoise(0.5, 3))},
	{"step_scalar_n64", 8, 2, true, dnsStepOpts(64, 4,
		spectral.WithRotation(2.0), spectral.WithScalars(2, 1.0, 0.7), spectral.WithScalarGradient(1.0))},
	{"mailbox_fanin_p8", 2000, 400, false, mailboxFanIn(8, 128)},
	{"pack_unpack_yz", 4000, 800, true, packUnpack(33, 64, 16, 4)},
	{"exchange_staged_n64", 400, 80, true, exchangeYZ(64, 4, exchange.Staged)},
	{"exchange_fused_n64", 400, 80, true, exchangeYZ(64, 4, exchange.Fused)},
	{"exchange_chunked_n64", 400, 80, true, exchangeYZ(64, 4, exchange.ChunkedFused)},
	{"exchange_staged_n128", 60, 12, true, exchangeYZ(128, 4, exchange.Staged)},
	{"exchange_fused_n128", 60, 12, true, exchangeYZ(128, 4, exchange.Fused)},
	{"exchange_chunked_n128", 60, 12, true, exchangeYZ(128, 4, exchange.ChunkedFused)},
	{"step_at_n64", 10, 2, true, dnsStepAT(64, 4, 1)},
	{"exchange_at_n64", 400, 80, true, exchangeYZ(64, 4, exchange.AT)},
	{"slab_f32_fwd_inv_n64_p4", 40, 8, true, slabTransformSingle(64, 4)},
	{"slab_f32_fwd_inv_n128_p4", 10, 2, true, slabTransformSingle(128, 4)},
	{"slab_tuned_n64_p4", 40, 8, true, slabTransformTuned(64, 4)},
	{"pencil_fwd_inv_n64_p4", 40, 8, true, pencilTransform(64, 2, 2)},
	{"pencil_fwd_inv_n64_p8", 20, 4, true, pencilTransform(64, 2, 4)},
}

func main() {
	var (
		quick       = flag.Bool("quick", false, "fewer iterations per workload (CI mode)")
		out         = flag.String("out", "BENCH_step.json", "output path for the measurement file")
		baseline    = flag.String("baseline", "", "committed baseline to compare against")
		check       = flag.Bool("check", false, "exit non-zero on regression vs -baseline")
		tolerance   = flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth vs baseline")
		workers     = flag.Int("workers", 1, "worker-team size for transform workloads")
		only        = flag.String("only", "", "run only the named workload")
		compareMode = flag.Bool("compare", false, "compare two measurement files (bench -compare old.json new.json) instead of running workloads")
	)
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			log.Fatal("bench -compare needs exactly two files: old.json new.json")
		}
		failed, missing := compareFiles(flag.Arg(0), flag.Arg(1), *tolerance)
		switch {
		case missing:
			// Distinct status: a disappeared workload is a harness
			// change, not a measured regression.
			os.Exit(2)
		case failed:
			os.Exit(1)
		}
		return
	}

	f := File{Schema: 1, GoVersion: runtime.Version(), Quick: *quick, Workers: *workers}
	for _, w := range workloads {
		if *only != "" && w.name != *only {
			continue
		}
		iters := w.full
		if *quick {
			iters = w.quick
		}
		s := w.run(iters, *workers)
		r := Result{
			Name:        w.name,
			Iters:       iters,
			NsPerOp:     float64(s.ns) / float64(iters),
			AllocsPerOp: float64(s.allocs) / float64(iters),
			BytesPerOp:  float64(s.bytes) / float64(iters),
		}
		f.Results = append(f.Results, r)
		fmt.Printf("%-22s %10d iters %14.0f ns/op %10.1f allocs/op %12.0f B/op\n",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}

	hotFailed := hotpathGate(f.Results, workloads)

	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			log.Fatalf("bench: read baseline: %v", err)
		}
		if compare(f.Results, base, *tolerance) && *check {
			os.Exit(1)
		}
	}
	if hotFailed {
		os.Exit(1)
	}
}

// hotpathGate fails any hotpath-marked workload that reports more
// than allocSlack allocs/op. Unlike compare it needs no baseline: the
// annotated paths are allocation-free at steady state by design, and
// the slack only absorbs process-wide background noise such as the
// stall watchdog's ticker. This is the dynamic cross-check of the
// psdnslint hotalloc analyzer.
func hotpathGate(results []Result, ws []workload) bool {
	hot := map[string]bool{}
	for _, w := range ws {
		hot[w.name] = w.hotpath
	}
	failed := false
	for _, r := range results {
		if !hot[r.Name] || r.AllocsPerOp <= allocSlack {
			continue
		}
		fmt.Printf("%-22s FAIL hotpath workload allocates: %.1f allocs/op (slack %d)\n",
			r.Name, r.AllocsPerOp, allocSlack)
		failed = true
	}
	return failed
}

// compareFiles diffs two measurement files row by row — speedup is
// old/new, so >1 is an improvement — and reports whether any shared
// row regressed beyond the tolerance or grew its allocs/op (failed),
// and whether any workload present in the old file disappeared from
// the new one (missing). A vanished row usually means a renamed or
// dropped workload silently escaping the gate, so the caller exits
// with a distinct status for it. Rows present only in the new file
// are informational.
func compareFiles(oldPath, newPath string, tol float64) (failed, missing bool) {
	old, err := loadBaseline(oldPath)
	if err != nil {
		log.Fatalf("bench: read %s: %v", oldPath, err)
	}
	data, err := os.ReadFile(newPath)
	if err != nil {
		log.Fatalf("bench: read %s: %v", newPath, err)
	}
	var nf File
	if err := json.Unmarshal(data, &nf); err != nil {
		log.Fatalf("bench: parse %s: %v", newPath, err)
	}
	fmt.Printf("%-26s %10s %14s %14s  %s\n", "workload", "speedup", "old ns/op", "new ns/op", "verdict")
	for _, r := range nf.Results {
		b, ok := old[r.Name]
		if !ok {
			fmt.Printf("%-26s %10s %14s %14.0f  new row\n", r.Name, "-", "-", r.NsPerOp)
			continue
		}
		delete(old, r.Name)
		speedup := b.NsPerOp / r.NsPerOp
		verdict := "ok"
		if r.NsPerOp > b.NsPerOp*(1+tol) {
			verdict = fmt.Sprintf("FAIL ns/op regression %.0f%% > %.0f%%", (r.NsPerOp/b.NsPerOp-1)*100, tol*100)
			failed = true
		}
		if r.AllocsPerOp > b.AllocsPerOp+allocSlack {
			verdict = fmt.Sprintf("FAIL allocs/op grew %.1f -> %.1f", b.AllocsPerOp, r.AllocsPerOp)
			failed = true
		}
		fmt.Printf("%-26s %9.2fx %14.0f %14.0f  %s\n", r.Name, speedup, b.NsPerOp, r.NsPerOp, verdict)
	}
	for name := range old {
		r := old[name]
		fmt.Printf("%-26s %10s %14.0f %14s  FAIL workload missing from %s\n",
			name, "-", r.NsPerOp, "-", newPath)
		missing = true
	}
	return failed, missing
}

func loadBaseline(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	m := make(map[string]Result, len(f.Results))
	for _, r := range f.Results {
		m[r.Name] = r
	}
	return m, nil
}

// allocSlack is the absolute allocs/op growth the gate tolerates.
// Zero: timeLoop attributes allocations by memory-profile diff, which
// is immune to the runtime's background cache churn, so a hotpath
// workload that allocates anything at all is a real regression.
const allocSlack = 0

// compare prints a verdict per workload and reports whether any failed
// the gate: ns/op beyond the tolerance, or allocs/op growing by more
// than the absolute slack.
func compare(results []Result, base map[string]Result, tol float64) bool {
	failed := false
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-22s no baseline entry (new workload)\n", r.Name)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+tol {
			verdict = fmt.Sprintf("FAIL ns/op regression %.0f%% > %.0f%%", (ratio-1)*100, tol*100)
			failed = true
		}
		if r.AllocsPerOp > b.AllocsPerOp+allocSlack {
			verdict = fmt.Sprintf("FAIL allocs/op grew %.1f -> %.1f", b.AllocsPerOp, r.AllocsPerOp)
			failed = true
		}
		fmt.Printf("%-22s %6.2fx vs baseline  %s\n", r.Name, ratio, verdict)
	}
	return failed
}
