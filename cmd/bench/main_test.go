package main

import "testing"

// TestHotpathGate pins the allocs/op gate for hotpath-marked
// workloads: allocation within the process-noise slack passes, real
// regressions fail, and workloads not marked hotpath are exempt
// however much they allocate.
func TestHotpathGate(t *testing.T) {
	ws := []workload{
		{name: "hot_clean", hotpath: true},
		{name: "hot_noisy", hotpath: true},
		{name: "hot_leaky", hotpath: true},
		{name: "cold_alloc", hotpath: false},
	}
	results := []Result{
		{Name: "hot_clean", AllocsPerOp: 0},
		{Name: "hot_noisy", AllocsPerOp: allocSlack}, // watchdog ticker noise
		{Name: "cold_alloc", AllocsPerOp: 4096},
	}
	if hotpathGate(results, ws) {
		t.Fatal("gate failed on allocation-free and noise-level hotpath workloads")
	}
	results = append(results, Result{Name: "hot_leaky", AllocsPerOp: allocSlack + 1})
	if !hotpathGate(results, ws) {
		t.Fatal("gate passed a hotpath workload allocating beyond the slack")
	}
}

// TestCompareGate pins the baseline comparison: within tolerance
// passes, ns/op and allocs/op regressions fail independently.
func TestCompareGate(t *testing.T) {
	base := map[string]Result{
		"w": {Name: "w", NsPerOp: 1000, AllocsPerOp: 0},
	}
	if compare([]Result{{Name: "w", NsPerOp: 1100, AllocsPerOp: allocSlack}}, base, 0.25) {
		t.Fatal("compare failed a run within tolerance and slack")
	}
	if !compare([]Result{{Name: "w", NsPerOp: 2000, AllocsPerOp: 0}}, base, 0.25) {
		t.Fatal("compare passed a 2x ns/op regression")
	}
	if !compare([]Result{{Name: "w", NsPerOp: 1000, AllocsPerOp: allocSlack + 1}}, base, 0.25) {
		t.Fatal("compare passed an allocs/op regression beyond the slack")
	}
}

// TestFanInTagNamed is the regression companion to the mpireq raw-tag
// fix: the fan-in workload's tag is a named constant and any future
// raw literal is caught statically by psdnslint in CI. The assertion
// here keeps the constant itself from being removed or shadowed.
func TestFanInTagNamed(t *testing.T) {
	const _ = fanInTag // must remain a compile-time constant
	if fanInTag < 0 {
		t.Fatal("fan-in tag must live in the user (non-negative) tag space")
	}
}
