// Command stridedcopy explores the host↔device strided-copy strategies
// of §4.2. Mode "model" evaluates the calibrated Summit cost model
// (regenerating Figs 7 and 8); mode "real" measures the actual strided
// copy machinery of this repository on host memory, demonstrating the
// same qualitative effect — finer granularity costs more — on real
// hardware, whatever it is. Mode "gather" sweeps the tile depth of the
// cache-blocked fused-gather kernels on the actual slab geometry, the
// measurement transpose.DefaultGatherTile is pinned from.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cuda"
	"repro/internal/transpose"
)

func main() {
	var (
		mode  = flag.String("mode", "model", "model, real or gather")
		total = flag.Int("total", 64<<20, "total bytes to move in -mode real")
		n     = flag.Int("n", 128, "grid points per direction for -mode gather")
		p     = flag.Int("p", 4, "slab count (ranks) for -mode gather")
		reps  = flag.Int("reps", 20, "timed repetitions per tile for -mode gather")
	)
	flag.Parse()

	switch *mode {
	case "model":
		cost := cuda.SummitCopyCost()
		fmt.Println("Fig 7 — time to move 216 MB with strided access (model):")
		fmt.Printf("%-14s %14s %14s %14s\n", "chunk (KB)", "manyMemcpy(ms)", "zeroCopy(ms)", "memcpy2D(ms)")
		for _, p := range cost.Fig7() {
			fmt.Printf("%-14.1f %14.3f %14.3f %14.3f\n",
				p.ChunkBytes/1e3, p.ManyMemcpy*1e3, p.ZeroCopy*1e3, p.Memcpy2D*1e3)
		}
		fmt.Println("\nFig 8 — zero-copy kernel bandwidth vs thread blocks (model):")
		fmt.Printf("%-8s %12s %12s\n", "blocks", "H2D (GB/s)", "D2H (GB/s)")
		for _, p := range cost.Fig8() {
			fmt.Printf("%-8d %12.1f %12.1f\n", p.Blocks, p.H2DBW/1e9, p.D2HBW/1e9)
		}
	case "real":
		elems := *total / 8
		src := make([]float64, elems)
		dst := make([]float64, elems)
		for i := range src {
			src[i] = float64(i)
		}
		fmt.Printf("real strided copies of %d MB on this host:\n", *total>>20)
		fmt.Printf("%-14s %12s %14s\n", "chunk (KB)", "time (ms)", "rate (GB/s)")
		for chunk := 256; chunk <= elems/4; chunk *= 4 {
			rows := elems / (2 * chunk)
			start := time.Now()
			transpose.CopyStrided(dst, 2*chunk, src, 2*chunk, chunk, rows)
			el := time.Since(start).Seconds()
			moved := float64(rows * chunk * 8)
			fmt.Printf("%-14.1f %12.3f %14.2f\n", float64(chunk*8)/1e3, el*1e3, moved/el/1e9)
		}
	case "gather":
		gatherSweep(*n, *p, *reps)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// gatherSweep times one full y→z fused gather (every peer's
// contribution to one rank's slab) per tile depth, on the same
// [Mz][Ny][Nxh] complex128 slab geometry the engines exchange. Tile 0
// is the untiled plain kernel; the table makes the choice of
// transpose.DefaultGatherTile reproducible on any host.
func gatherSweep(n, p, reps int) {
	nxh := n/2 + 1
	l := transpose.NewSlabLayout(nxh, n, n/p, p)
	srcs := make([][]complex128, p)
	for s := range srcs {
		srcs[s] = make([]complex128, l.Total)
		for i := range srcs[s] {
			srcs[s][i] = complex(float64(s), float64(i%13))
		}
	}
	dst := make([]complex128, l.Total)
	bytes := float64(p) * float64(l.Block) * 16
	fmt.Printf("fused y→z gather, N=%d P=%d (slab %d MiB, stride %d KiB, default tile %d):\n",
		n, p, l.Total*16>>20, l.Nz*nxh*16>>10, transpose.DefaultGatherTile)
	fmt.Printf("%-10s %12s %14s\n", "tile", "time (ms)", "rate (GB/s)")
	for _, tile := range []int{0, 1, 2, 4, 8, 16, 32} {
		if tile > l.Mz {
			continue
		}
		run := func() {
			if tile == 0 {
				transpose.GatherYZRange(&l, dst, srcs, 0, 0, l.My)
			} else {
				transpose.GatherYZRangeBlocked(&l, dst, srcs, 0, 0, l.My, tile)
			}
		}
		run() // warm
		start := time.Now()
		for r := 0; r < reps; r++ {
			run()
		}
		el := time.Since(start).Seconds() / float64(reps)
		name := fmt.Sprintf("%d", tile)
		if tile == 0 {
			name = "plain"
		}
		fmt.Printf("%-10s %12.3f %14.2f\n", name, el*1e3, bytes/el/1e9)
	}
}
