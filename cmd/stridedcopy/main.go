// Command stridedcopy explores the host↔device strided-copy strategies
// of §4.2. Mode "model" evaluates the calibrated Summit cost model
// (regenerating Figs 7 and 8); mode "real" measures the actual strided
// copy machinery of this repository on host memory, demonstrating the
// same qualitative effect — finer granularity costs more — on real
// hardware, whatever it is.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cuda"
	"repro/internal/transpose"
)

func main() {
	var (
		mode  = flag.String("mode", "model", "model or real")
		total = flag.Int("total", 64<<20, "total bytes to move in -mode real")
	)
	flag.Parse()

	switch *mode {
	case "model":
		cost := cuda.SummitCopyCost()
		fmt.Println("Fig 7 — time to move 216 MB with strided access (model):")
		fmt.Printf("%-14s %14s %14s %14s\n", "chunk (KB)", "manyMemcpy(ms)", "zeroCopy(ms)", "memcpy2D(ms)")
		for _, p := range cost.Fig7() {
			fmt.Printf("%-14.1f %14.3f %14.3f %14.3f\n",
				p.ChunkBytes/1e3, p.ManyMemcpy*1e3, p.ZeroCopy*1e3, p.Memcpy2D*1e3)
		}
		fmt.Println("\nFig 8 — zero-copy kernel bandwidth vs thread blocks (model):")
		fmt.Printf("%-8s %12s %12s\n", "blocks", "H2D (GB/s)", "D2H (GB/s)")
		for _, p := range cost.Fig8() {
			fmt.Printf("%-8d %12.1f %12.1f\n", p.Blocks, p.H2DBW/1e9, p.D2HBW/1e9)
		}
	case "real":
		elems := *total / 8
		src := make([]float64, elems)
		dst := make([]float64, elems)
		for i := range src {
			src[i] = float64(i)
		}
		fmt.Printf("real strided copies of %d MB on this host:\n", *total>>20)
		fmt.Printf("%-14s %12s %14s\n", "chunk (KB)", "time (ms)", "rate (GB/s)")
		for chunk := 256; chunk <= elems/4; chunk *= 4 {
			rows := elems / (2 * chunk)
			start := time.Now()
			transpose.CopyStrided(dst, 2*chunk, src, 2*chunk, chunk, rows)
			el := time.Since(start).Seconds()
			moved := float64(rows * chunk * 8)
			fmt.Printf("%-14.1f %12.3f %14.2f\n", float64(chunk*8)/1e3, el*1e3, moved/el/1e9)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
