// Command postproc loads a checkpoint directory written by cmd/dns (or
// any Solver.SaveCheckpoint call) and emits the standard turbulence
// post-processing: single-time statistics, spectra, two-point
// correlations and structure functions, gradient moments, and an
// optional velocity-slice PNG — the offline analysis pass of a DNS
// campaign.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/mpi"
	"repro/internal/spectral"
)

func main() {
	var (
		dir    = flag.String("ckpt", "", "checkpoint directory (required)")
		n      = flag.Int("n", 0, "grid size of the checkpoint (required)")
		ranks  = flag.Int("ranks", 0, "rank count of the checkpoint (required)")
		nu     = flag.Float64("nu", 0.01, "viscosity used for dissipation-based statistics")
		pngOut = flag.String("png", "", "write a z-midplane PNG of u to this path")
	)
	flag.Parse()
	if *dir == "" || *n == 0 || *ranks == 0 {
		flag.Usage()
		os.Exit(2)
	}

	mpi.Run(*ranks, func(c *mpi.Comm) {
		s := spectral.NewSolver(c, spectral.Config{N: *n, Nu: *nu, Dealias: spectral.Dealias23})
		defer s.Close()
		if err := s.LoadCheckpoint(*dir); err != nil {
			log.Fatalf("rank %d: %v", c.Rank(), err)
		}
		root := c.Rank() == 0

		st := s.Statistics()
		div := s.DivergenceMax()
		if root {
			fmt.Printf("checkpoint: step %d, t=%.4f, %d³ on %d ranks\n\n",
				s.StepCount(), s.Time(), *n, *ranks)
			fmt.Printf("E=%.5f  ε=%.5f  Ω=%.4f  u'=%.4f  λ=%.4f  Re_λ=%.1f  η=%.4g  kmaxη=%.2f\n",
				st.Energy, st.Dissipation, st.Enstrophy, st.URMS,
				st.TaylorScale, st.ReLambda, st.Kolmogorov, st.KMaxEta)
			fmt.Printf("max|k·û| = %.2e\n\n", div)
		}

		spec := s.Spectrum()
		lint := s.IntegralScale()
		s2 := s.StructureFunction2()
		if root {
			fmt.Println("energy spectrum E(k):")
			for k := 1; k <= *n/3; k++ {
				fmt.Printf("  %3d  %.4e\n", k, spec[k])
			}
			fmt.Printf("\nintegral scale L11 = %.4f\n", lint)
			fmt.Println("\nstructure function S2(r):")
			for r := 1; r <= *n/4; r++ {
				fmt.Printf("  r=%2d  %.4e\n", r, s2[r])
			}
			fmt.Println()
		}

		for comp := 0; comp < 3; comp++ {
			g := s.LongitudinalGradientStats(comp)
			if root {
				fmt.Printf("∂u%c/∂x%c: var=%.4g skew=%.3f flat=%.2f range=[%.3g, %.3g]\n",
					'u'+byte(comp), 'x'+byte(comp), g.Variance, g.Skewness, g.Flatness, g.Min, g.Max)
			}
		}

		if *pngOut != "" {
			plane := s.SliceZ(0, *n/2)
			if root {
				f, err := os.Create(*pngOut)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				if err := spectral.WriteSlicePNG(f, plane, *n, *n); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("\nwrote %s\n", *pngOut)
			}
		}
	})
}
