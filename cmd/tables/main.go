// Command tables regenerates every table and figure of the paper's
// evaluation from the calibrated models:
//
//	tables -table 1      memory model (node counts, pencils)
//	tables -table 2      all-to-all bandwidths
//	tables -table 3      time per step, CPU vs GPU configurations
//	tables -table 4      weak scaling
//	tables -fig 7        strided copy strategies
//	tables -fig 8        zero-copy bandwidth vs thread blocks
//	tables -fig 9        time-per-step sweep + MPI-only bound
//	tables -fig 10       normalized timelines at 12288³/1024 nodes
//	tables -strong       §5.3 strong scaling of 18432³
//	tables -all          everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hw"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func main() {
	var (
		table  = flag.Int("table", 0, "table number (1–4)")
		fig    = flag.Int("fig", 0, "figure number (7–10)")
		strong = flag.Bool("strong", false, "strong scaling (§5.3)")
		ablate = flag.Bool("ablate", false, "design-choice ablations (§3.1, §3.5, §5.2)")
		chrome = flag.String("chrome", "", "also write the Fig 10 timelines as Chrome-tracing JSON to this path")
		all    = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if *all {
		for i := 1; i <= 4; i++ {
			printTable(i)
		}
		for i := 7; i <= 10; i++ {
			printFig(i)
		}
		printStrong()
		printAblations()
		return
	}
	if *table != 0 {
		printTable(*table)
	}
	if *fig != 0 {
		printFig(*fig)
	}
	if *strong {
		printStrong()
	}
	if *ablate {
		printAblations()
	}
	if *chrome != "" {
		writeChrome(*chrome)
	}
	if *table == 0 && *fig == 0 && !*strong && !*ablate && *chrome == "" {
		flag.Usage()
	}
}

func writeChrome(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteChromeTrace(f, core.Fig10()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote Chrome-tracing timelines to %s (open in chrome://tracing or Perfetto)\n", path)
}

func printAblations() {
	fmt.Println("== Ablation: 1D slab vs 2D pencil decomposition for the GPU code (§3.1) ==")
	fmt.Printf("%-8s %-8s %14s %16s %10s\n", "Nodes", "N", "1D slab (s)", "2D pencil (s)", "slab win")
	for _, a := range core.AblateDecomposition() {
		fmt.Printf("%-8d %-8d %14.2f %16.2f %9.0f%%\n", a.Nodes, a.N, a.Slab1D, a.Pencil2D, a.SlabWinPct)
	}
	fmt.Println("\n== Ablation: host-memory contention on overlapped exchanges (§5.2) ==")
	w, wo := core.AblateContention(12288, 1024)
	fmt.Printf("cfg B at 12288³/1024 nodes: %.2f s with contention, %.2f s without\n", w, wo)
	fmt.Println("\n== Ablation: pencils per slab at 18432³/3072 nodes (§3.5) ==")
	nps := []int{4, 6, 8, 12, 16}
	for i, tm := range core.AblatePencilCount(18432, 3072, nps) {
		fmt.Printf("np=%-3d %.2f s\n", nps[i], tm)
	}
	fmt.Println("\n== Autotuned configuration per scale ==")
	for _, cse := range []struct{ n, nodes int }{{3072, 16}, {6144, 128}, {12288, 1024}, {18432, 3072}} {
		tpn, gran, tm := core.BestConfig(cse.n, cse.nodes)
		g := "1 slab/A2A"
		if gran == core.PerPencil {
			g = "1 pencil/A2A"
		}
		fmt.Printf("N=%-6d nodes=%-5d → %d tasks/node, %s  (%.2f s/step)\n", cse.n, cse.nodes, tpn, g, tm)
	}
	fmt.Println()
}

func printTable(i int) {
	switch i {
	case 1:
		fmt.Println("== Table 1: node counts, memory per node, pencils per slab ==")
		fmt.Printf("%-8s %-10s %-16s %-10s %-12s\n", "Nodes", "N", "Mem/node (GiB)", "#pencils", "pencil (GiB)")
		for _, r := range hw.Summit().Table1() {
			fmt.Printf("%-8d %-10d %-16.1f %-10d %-12.2f\n", r.Nodes, r.N, r.MemPerNode, r.Pencils, r.PencilSize)
		}
		m := hw.Summit()
		fmt.Printf("min nodes for 18432³: %d; valid node counts: %v; nominal pencils at 3072 nodes: %.2f\n\n",
			m.MinNodes(18432), m.ValidNodeCounts(18432), m.NominalPencils(18432, 3072))
	case 2:
		fmt.Println("== Table 2: effective all-to-all bandwidth per node ==")
		fmt.Printf("%-6s %-4s %12s %12s\n", "Nodes", "Cfg", "P2P (MB)", "BW (GB/s)")
		for _, r := range simnet.SummitA2A().Table2() {
			fmt.Printf("%-6d %-4s %12.3f %12.1f\n", r.Nodes, r.Cfg, r.P2P/(1<<20), r.BW/1e9)
		}
		fmt.Println()
	case 3:
		fmt.Println("== Table 3: time per RK2 step and GPU:CPU speedups ==")
		fmt.Print(core.FormatTable3(core.Table3()))
		fmt.Println()
	case 4:
		fmt.Println("== Table 4: weak scaling relative to 3072³ on 16 nodes ==")
		fmt.Print(core.FormatTable4(core.Table4()))
		fmt.Println()
	default:
		fmt.Printf("unknown table %d\n", i)
	}
}

func printFig(i int) {
	switch i {
	case 7:
		fmt.Println("== Fig 7: 216 MB strided copy, three strategies ==")
		fmt.Printf("%-14s %14s %14s %14s\n", "chunk (KB)", "manyMemcpy(ms)", "zeroCopy(ms)", "memcpy2D(ms)")
		for _, p := range cuda.SummitCopyCost().Fig7() {
			fmt.Printf("%-14.1f %14.3f %14.3f %14.3f\n",
				p.ChunkBytes/1e3, p.ManyMemcpy*1e3, p.ZeroCopy*1e3, p.Memcpy2D*1e3)
		}
		fmt.Println()
	case 8:
		fmt.Println("== Fig 8: zero-copy kernel bandwidth vs thread blocks ==")
		fmt.Printf("%-8s %12s %12s %16s %16s\n", "blocks", "H2D (GB/s)", "D2H (GB/s)", "memcpy2D H2D", "memcpy2D D2H")
		for _, p := range cuda.SummitCopyCost().Fig8() {
			fmt.Printf("%-8d %12.1f %12.1f %16.1f %16.1f\n",
				p.Blocks, p.H2DBW/1e9, p.D2HBW/1e9, p.Memcpy2DH2D/1e9, p.Memcpy2DD2H/1e9)
		}
		fmt.Println()
	case 9:
		fmt.Println("== Fig 9: time per step vs node count ==")
		fmt.Print(core.FormatFig9(core.Fig9()))
		fmt.Println()
	case 10:
		fmt.Println("== Fig 10: normalized timelines, 12288³ on 1024 nodes ==")
		fmt.Print(trace.RenderComparison(core.Fig10(), 110))
		fmt.Println()
	default:
		fmt.Printf("unknown figure %d\n", i)
	}
}

func printStrong() {
	t1536, t3072, pct := core.StrongScaling18432()
	fmt.Println("== §5.3 strong scaling, 18432³, 6 tasks/node ==")
	fmt.Printf("1536 nodes: %.1f s/step   3072 nodes: %.1f s/step   strong scaling: %.1f%%\n",
		t1536, t3072, pct)
	fmt.Println("(paper: 48.7 s, 25.4 s, 95.7% — the model under-predicts the 1536-node")
	fmt.Println(" time; see EXPERIMENTS.md for the discussion)")
	fmt.Println()
}
