package repro

import (
	"time"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/grid"
	"repro/internal/pfft"
	"repro/internal/tuning"
)

// --- The paper's asynchronous engine ---------------------------------------

// AsyncOptions configures the batched asynchronous pipeline (pencil
// count, exchange granularity, devices per rank). It remains the
// struct-literal form of configuration; NewAsync with functional
// options is the preferred surface.
type AsyncOptions = core.Options

// AsyncTransform is the Fig 4 batched asynchronous out-of-core engine.
type AsyncTransform = core.AsyncSlabReal

// Granularity selects how much data each all-to-all exchange carries.
type Granularity = core.Granularity

// Exchange granularities (paper configurations A/B vs C).
const (
	PerPencil = core.PerPencil
	PerSlab   = core.PerSlab
)

// ExchangeStrategy selects how the y↔z transpose-exchange moves data:
// staged pack → all-to-all → unpack, a zero-copy fused gather reading
// peer slabs in place, its chunked pairwise variant, or plan-time
// autotuning between them.
type ExchangeStrategy = exchange.Strategy

// Transpose-exchange strategies. ExchangeAuto (the zero value)
// microbenchmarks the concrete strategies at plan construction on the
// actual (N, P, workers) and pins the collectively-agreed winner.
const (
	ExchangeAuto    = exchange.Auto
	ExchangeStaged  = exchange.Staged
	ExchangeFused   = exchange.Fused
	ExchangeChunked = exchange.ChunkedFused
	// ExchangeAT is the asynchrony-tolerant fused gather: epoch-tagged
	// publication with a bounded-staleness wait. Opted into explicitly
	// (WithBoundedStaleness) and never autotuned — it changes the
	// answer, not just the speed.
	ExchangeAT = exchange.AT
)

// ParseExchangeStrategy parses "auto", "staged", "fused" or "chunked"
// (the -exchange flag vocabulary of cmd/dns).
func ParseExchangeStrategy(s string) (ExchangeStrategy, error) {
	return exchange.Parse(s)
}

// Decomposition selects how the 3D field is distributed over the P
// ranks: the slab layout (the zero value, P slabs of N/P planes, valid
// while P divides N), an explicit Pr×Pc pencil process grid (lifting
// the slab's P ≤ N scaling wall), or an autotuned choice among every
// valid layout.
type Decomposition = tuning.Decomp

// The named decompositions. DecompSlab is the zero value; DecompAuto
// asks a tuned constructor to measure every valid layout and keep the
// winner.
var (
	DecompSlab = tuning.DecompSlab
	DecompAuto = tuning.DecompAuto
)

// PencilDecomp is the pencil decomposition over a pr×pc process grid:
// pr row groups over y (z in spectral layout) and pc column groups
// over z (x in spectral layout). Valid when pr·pc = P, pr | N, pc | N
// and pc ≤ N/2+1.
func PencilDecomp(pr, pc int) Decomposition { return tuning.Pencil(pr, pc) }

// ParseDecomposition parses "slab", "auto", or an explicit "PRxPC"
// grid such as "2x4" (the -decomp flag vocabulary of cmd/dns).
func ParseDecomposition(s string) (Decomposition, error) {
	return tuning.ParseDecomp(s)
}

// AsyncOption customizes NewAsync.
type AsyncOption func(*AsyncOptions)

// WithNP sets the number of pencils each slab is divided into (Fig 3).
func WithNP(n int) AsyncOption {
	return func(o *AsyncOptions) { o.NP = n }
}

// WithGranularity selects per-pencil (configurations A/B) or per-slab
// (configuration C) exchanges.
func WithGranularity(g Granularity) AsyncOption {
	return func(o *AsyncOptions) { o.Granularity = g }
}

// WithDevices sets the number of devices per MPI rank (Fig 5).
func WithDevices(d int) AsyncOption {
	return func(o *AsyncOptions) { o.NGPU = d }
}

// WithSingleComm stages all-to-all payloads through single-precision
// buffers, the paper's wire format (half the bytes, ~1e-7 relative
// rounding per transform).
func WithSingleComm() AsyncOption {
	return func(o *AsyncOptions) { o.SingleComm = true }
}

// WithWorkers sets the per-rank worker-team size (the paper's OpenMP
// threads per rank): batched FFT loops and host pack/unpack kernels
// split across n persistent workers, with bitwise-identical results
// for any n. Zero or one means serial.
func WithWorkers(n int) AsyncOption {
	return func(o *AsyncOptions) { o.Workers = n }
}

// WithMetrics directs the engine's phase timings and transfer bytes
// into reg instead of the communicator's registry.
func WithMetrics(reg *MetricsRegistry) AsyncOption {
	return func(o *AsyncOptions) { o.Metrics = reg }
}

// WithWaitDeadline bounds each wait on an all-to-all request: a
// fragment that fails to arrive within d aborts the world with a typed
// *StallError instead of hanging the pipeline. Zero waits forever.
func WithWaitDeadline(d time.Duration) AsyncOption {
	return func(o *AsyncOptions) { o.WaitDeadline = d }
}

// WithExchangeStrategy pins the transpose-exchange strategy instead of
// autotuning it at plan construction. Fused strategies are bitwise
// identical to staged; only the data path differs.
func WithExchangeStrategy(s ExchangeStrategy) AsyncOption {
	return func(o *AsyncOptions) { o.Exchange = s }
}

// WithDecomposition declares the engine's field decomposition. The
// asynchronous pipeline is slab-only (its pencils are the within-slab
// batching of Fig 3, not a process-grid axis), so anything but
// DecompSlab panics at construction; the option exists so one
// Decomposition value can thread through solver, async-engine and
// transform construction uniformly. Pencil grids run through
// NewTunedTransform.
func WithDecomposition(d Decomposition) AsyncOption {
	return func(o *AsyncOptions) { o.Decomp = d }
}

// WithBoundedStaleness runs the engine's transpose-exchanges in
// asynchrony-tolerant mode: a rank proceeds on peers' latest
// published slabs once they are within maxStale epochs, waiting at
// most deadline for them to publish the current epoch (deadline ≤ 0
// never waits past the hard bound). Stale slabs are site-matched —
// accepted only when they carry the same quantity from a whole
// number of steps earlier — so a bound below the engine's per-step
// exchange count behaves synchronously. Pair with the solver's
// WithAsyncTolerance so the stepper corrects for the staleness it
// absorbs.
func WithBoundedStaleness(maxStale int, deadline time.Duration) AsyncOption {
	return func(o *AsyncOptions) {
		o.Exchange = exchange.AT
		o.ATMaxStale = maxStale
		o.ATDeadline = deadline
	}
}

// TuneSpace enumerates the candidate whole-step configurations the
// autotuner searches: exchange strategies × transfer granularity ×
// pencil counts × worker-team sizes × wire precision. Empty dimensions
// default to numerics-preserving singletons (the engine's own
// configuration), so the default search only changes the data path,
// never the answer.
type TuneSpace = tuning.Space

// WithAutotune runs the whole-step autotuner at construction: every
// candidate in the tune space is timed with the collective
// barrier-fenced best-of-k trial protocol and the max-over-ranks
// winner is constructed. Without WithTuningCache the trials rerun on
// every construction.
func WithAutotune() AsyncOption {
	return func(o *AsyncOptions) { o.Autotune = true }
}

// WithTuningCache enables whole-step autotuning backed by a
// persistent JSON cache under dir (empty means artifacts/cache): a
// warm cache keyed by (N, P, GOMAXPROCS, machine) skips the trials
// entirely, so production restarts construct the previously-agreed
// winner with zero trial exchanges.
func WithTuningCache(dir string) AsyncOption {
	return func(o *AsyncOptions) {
		o.Autotune = true
		o.TuneCacheDir = dir
	}
}

// WithTuneSpace overrides the autotuner's default candidate space
// (implies WithAutotune). Listing the precision dimension explicitly
// is how single-precision exchanges enter the search — the default
// space never trades accuracy for speed behind the caller's back.
func WithTuneSpace(s TuneSpace) AsyncOption {
	return func(o *AsyncOptions) {
		o.Autotune = true
		o.TuneSpace = &s
	}
}

// NewAsync builds the asynchronous engine for an N³ transform,
// configured by functional options:
//
//	tr := repro.NewAsync(c, 1024,
//	    repro.WithNP(4),
//	    repro.WithGranularity(repro.PerPencil),
//	    repro.WithDevices(2),
//	)
func NewAsync(c *Comm, n int, opts ...AsyncOption) *AsyncTransform {
	var o AsyncOptions
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewAsyncSlabReal(c, n, o)
}

// NewAsyncTransform builds the asynchronous engine from an options
// struct (the pre-options API, kept for compatibility).
func NewAsyncTransform(c *Comm, n int, opt AsyncOptions) *AsyncTransform {
	return core.NewAsyncSlabReal(c, n, opt)
}

// NewSyncGPUTransform is the Fig 2 synchronous baseline (NP=1).
func NewSyncGPUTransform(c *Comm, n int) *AsyncTransform { return core.NewSyncGPU(c, n) }

// NewSlabTransform is the plain synchronous host transform.
func NewSlabTransform(c *Comm, n int) *pfft.SlabReal { return pfft.NewSlabReal(c, n) }

// NewThreadedSlabTransform is the hybrid MPI+OpenMP-style transform
// with a worker team per rank.
func NewThreadedSlabTransform(c *Comm, n, threads int) *pfft.SlabRealThreaded {
	return pfft.NewSlabRealThreaded(c, n, threads)
}

// NewTunedSlabTransform builds the host slab transform through the
// whole-step autotuner. A non-empty cacheDir persists the winning
// configuration so later constructions with the same (N, P,
// GOMAXPROCS, machine) key skip the trials; a nil space searches the
// numerics-preserving default (concrete exchange strategies at the
// given worker count). Collective.
func NewTunedSlabTransform(c *Comm, n, workers int, cacheDir string, space *TuneSpace) *pfft.SlabReal {
	var cfg tuning.Config
	if space != nil {
		cfg.Space = *space
	}
	if cacheDir != "" {
		cfg.Cache = tuning.Open(cacheDir)
	}
	return pfft.NewSlabRealTuned(c, n, workers, cfg)
}

// RealTransform is the decomposition-generic view of the distributed
// real-field transforms: real physical fields in, conjugate-symmetric
// half-spectra out, 1/N³ normalization on the inverse. SlabReal and
// the pencil engine implement it with bitwise-identical results for
// every valid decomposition.
type RealTransform = pfft.Real

// NewTunedTransform builds the real-field transform for decomposition
// d through the whole-step autotuner: DecompSlab searches exchange
// strategies on the slab engine, an explicit Pr×Pc grid searches them
// on that pencil grid, and DecompAuto makes the decomposition itself a
// tune dimension over every valid layout — the constructor that runs
// at P > N, where no slab layout exists. A non-empty cacheDir persists
// the winning configuration so later constructions with the same
// (engine, N, P, GOMAXPROCS, machine) key skip the trials; a nil space
// searches the numerics-preserving default. Collective.
func NewTunedTransform(c *Comm, n, workers int, d Decomposition, cacheDir string, space *TuneSpace) RealTransform {
	var cfg tuning.Config
	if space != nil {
		cfg.Space = *space
	}
	if cacheDir != "" {
		cfg.Cache = tuning.Open(cacheDir)
	}
	return pfft.NewRealTuned(c, n, workers, d, cfg)
}

// NewSingleCommSlabTransform is the host slab transform with
// single-precision transpose-exchanges: FFTs stay float64 while the
// all-to-all wire format narrows to complex64, halving exchanged
// bytes for ~1e-7 relative rounding per transform (the paper's
// asynchronous-engine wire format, on the synchronous engine).
func NewSingleCommSlabTransform(c *Comm, n, workers int) *pfft.SlabReal {
	return pfft.NewSlabRealSingle(c, n, workers)
}

// Slab describes a rank's 1D-decomposition geometry.
type Slab = grid.Slab
