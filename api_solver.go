package repro

import (
	"repro/internal/spectral"
)

// --- Solver ---------------------------------------------------------------

// SolverConfig configures a simulation (grid size, viscosity, scheme,
// dealiasing, optional forcing).
type SolverConfig = spectral.Config

// Solver advances the incompressible Navier–Stokes equations
// pseudo-spectrally on a slab-decomposed periodic cube.
type Solver = spectral.Solver

// Scalar is a passive scalar advected by the solver's velocity field.
type Scalar = spectral.Scalar

// Forcing sustains statistically stationary turbulence.
type Forcing = spectral.Forcing

// Stats bundles single-time turbulence statistics.
type Stats = spectral.Stats

// GradientStats holds one-point velocity-gradient moments.
type GradientStats = spectral.GradientStats

// Particles is a set of Lagrangian fluid tracers.
type Particles = spectral.Particles

// Transform is the distributed 3D FFT engine contract; both the
// synchronous reference and the asynchronous pipeline satisfy it.
type Transform = spectral.Transform

// StepStallError is a communication stall annotated with the solver
// step and simulation time at which it fired; it wraps the underlying
// *StallError and surfaces through TryRun.
type StepStallError = spectral.StepStallError

// Time-integration schemes.
const (
	RK2 = spectral.RK2
	RK4 = spectral.RK4
)

// Dealiasing modes.
const (
	DealiasNone    = spectral.DealiasNone
	Dealias23      = spectral.Dealias23
	Dealias23Shift = spectral.Dealias23Shift
)

// NewSolver builds a solver on the synchronous reference transform.
func NewSolver(c *Comm, cfg SolverConfig) *Solver { return spectral.NewSolver(c, cfg) }

// NewSolverWithTransform builds a solver on a caller-chosen engine.
func NewSolverWithTransform(c *Comm, cfg SolverConfig, tr Transform) *Solver {
	return spectral.NewSolverWithTransform(c, cfg, tr)
}

// NewForcing creates low-wavenumber band forcing over shells 1…kf.
func NewForcing(kf int) *Forcing { return spectral.NewForcing(kf) }

// Regrid spectrally transfers src's velocity field onto dst (larger or
// smaller grid, same communicator).
func Regrid(dst, src *Solver) { spectral.Regrid(dst, src) }

// WriteSlicePNG renders a gathered plane with a diverging colormap.
var WriteSlicePNG = spectral.WriteSlicePNG
