package repro

import (
	"time"

	"repro/internal/spectral"
)

// --- Solver ---------------------------------------------------------------

// SolverConfig configures a simulation (grid size, viscosity, scheme,
// dealiasing, optional forcing).
//
// Deprecated: configure through NewSolver's functional options
// instead.
type SolverConfig = spectral.Config

// Solver advances one equation set (a System) pseudo-spectrally on a
// slab-decomposed periodic cube.
type Solver = spectral.Solver

// Scalar is a passive scalar advected by the solver's velocity field
// through the legacy coupled StepWithScalar path.
//
// Deprecated: use WithScalars, which advances scalars inside Step as
// extra fields of the "rotating-scalar" system.
type Scalar = spectral.Scalar

// Forcing sustains statistically stationary turbulence by freezing
// low-wavenumber shell energies.
//
// Deprecated: use WithForcing, which selects the "forced-ns" system
// with allocation-free energy-injection-rate control.
type Forcing = spectral.Forcing

// Stats bundles single-time turbulence statistics.
type Stats = spectral.Stats

// GradientStats holds one-point velocity-gradient moments.
type GradientStats = spectral.GradientStats

// Particles is a set of Lagrangian fluid tracers.
type Particles = spectral.Particles

// Transform is the distributed 3D FFT engine contract; both the
// synchronous reference and the asynchronous pipeline satisfy it.
type Transform = spectral.Transform

// StepStallError is a communication stall annotated with the solver
// step and simulation time at which it fired; it wraps the underlying
// *StallError and surfaces through TryRun.
type StepStallError = spectral.StepStallError

// Time-integration schemes.
const (
	RK2 = spectral.RK2
	RK4 = spectral.RK4
)

// Dealiasing modes.
const (
	DealiasNone    = spectral.DealiasNone
	Dealias23      = spectral.Dealias23
	Dealias23Shift = spectral.Dealias23Shift
)

// --- Equation-set registry ------------------------------------------------

// System is a pluggable equation set advanced by the solver's generic
// integrating-factor Runge–Kutta stepper: it declares its field count,
// evaluates the nonlinear right-hand side, supplies per-field
// diffusivities, and reports named diagnostics. Three systems ship
// registered: "ns" (decaying Navier–Stokes), "forced-ns"
// (stochastically forced stationary turbulence) and "rotating-scalar"
// (NS + passive scalars + frame rotation).
type System = spectral.System

// SystemSpec carries the physics parameters a system factory builds
// from; factories read the fields they understand.
type SystemSpec = spectral.SystemSpec

// SystemFactory builds a fresh System instance from a spec.
type SystemFactory = spectral.SystemFactory

// ScalarSpec configures one passive scalar (Schmidt number, optional
// imposed mean gradient).
type ScalarSpec = spectral.ScalarSpec

// ForcingSpec configures the stochastic large-scale forcing (band,
// injection rate, phase decorrelation time, seed).
type ForcingSpec = spectral.ForcingSpec

// Diagnostic is one named scalar a System reports.
type Diagnostic = spectral.Diagnostic

// StochasticForcing is the "forced-ns" controller: exact-rate energy
// injection into the large scales plus an optional seeded phase walk.
type StochasticForcing = spectral.StochasticForcing

// RegisterSystem adds an equation set to the registry (typically from
// an init function); registering a duplicate name panics.
func RegisterSystem(name string, f SystemFactory) { spectral.RegisterSystem(name, f) }

// Systems returns the registered equation-set names, sorted.
func Systems() []string { return spectral.Systems() }

// SystemCode returns a system's index in the sorted registry — the
// value of the solver.system gauge — or −1 if the name is unknown.
func SystemCode(name string) int { return spectral.SystemCode(name) }

// NewNamedSystem builds a registered system from a spec; an unknown
// name returns an error listing what is registered.
func NewNamedSystem(name string, spec SystemSpec) (System, error) {
	return spectral.NewNamedSystem(name, spec)
}

// SolverOption configures NewSolver.
type SolverOption = spectral.Option

// WithNu sets the kinematic viscosity.
func WithNu(nu float64) SolverOption { return spectral.WithNu(nu) }

// WithScheme selects the time integrator (RK2 or RK4).
func WithScheme(sch spectral.Scheme) SolverOption { return spectral.WithScheme(sch) }

// WithDealias selects the aliasing control.
func WithDealias(d spectral.Dealias) SolverOption { return spectral.WithDealias(d) }

// WithTransform runs the solver on a caller-chosen transform engine
// (e.g. NewAsync's pipeline) instead of the synchronous slab default.
func WithTransform(tr Transform) SolverOption { return spectral.WithTransform(tr) }

// WithSystem selects a registered equation set by name; construction
// panics on an unknown name, listing the registered ones.
func WithSystem(name string) SolverOption { return spectral.WithSystem(name) }

// WithSystemInstance installs a caller-built System directly,
// bypassing the registry.
func WithSystemInstance(sys System) SolverOption { return spectral.WithSystemInstance(sys) }

// WithForcing enables stochastic forcing over shells k ≤ kf with
// energy injection rate eps (selects "forced-ns" unless a system is
// named explicitly).
func WithForcing(kf int, eps float64) SolverOption { return spectral.WithForcing(kf, eps) }

// WithForcingNoise adds a seeded random phase walk with decorrelation
// time tcorr to the forcing.
func WithForcingNoise(tcorr float64, seed int64) SolverOption {
	return spectral.WithForcingNoise(tcorr, seed)
}

// WithScalars attaches n passive scalars with the given Schmidt
// numbers (selects "rotating-scalar" unless a system is named
// explicitly).
func WithScalars(n int, sc ...float64) SolverOption { return spectral.WithScalars(n, sc...) }

// WithScalarGradient imposes a uniform mean gradient G·ŷ on every
// scalar declared so far.
func WithScalarGradient(g float64) SolverOption { return spectral.WithScalarGradient(g) }

// WithRotation sets the frame rotation rate Ω about ẑ (selects
// "rotating-scalar" unless a system is named explicitly).
func WithRotation(omega float64) SolverOption { return spectral.WithRotation(omega) }

// WithAsyncTolerance enables asynchrony-tolerant stepping with the
// given staleness bound (in exchange epochs): the transposes run
// through bounded exchanges that let a rank proceed on peers' latest
// published slabs when they lag by at most maxStale epochs, and the
// stepper applies a staleness-weighted first-order correction to the
// nonlinear term. Trades bounded accuracy for immunity to stragglers;
// with no stragglers the result is bitwise identical to the
// synchronous scheme.
func WithAsyncTolerance(maxStale int) SolverOption { return spectral.WithAsyncTolerance(maxStale) }

// WithAsyncDeadline bounds how long an asynchrony-tolerant exchange
// still waits for peers that are within the staleness bound before
// gathering their stale slabs (d ≤ 0 never waits past the hard
// bound). Only meaningful together with WithAsyncTolerance.
func WithAsyncDeadline(d time.Duration) SolverOption { return spectral.WithAsyncDeadline(d) }

// --- Constructors ---------------------------------------------------------

// NewSolver builds a solver for an n³ grid with functional options:
//
//	s := repro.NewSolver(c, 64,
//	    repro.WithNu(0.01),
//	    repro.WithScheme(repro.RK2),
//	    repro.WithDealias(repro.Dealias23),
//	    repro.WithForcing(2, 0.5),
//	)
//
// The equation set is chosen with WithSystem/WithSystemInstance or
// inferred from the physics options; the default is decaying NS on the
// synchronous reference transform.
func NewSolver(c *Comm, n int, opts ...SolverOption) *Solver {
	return spectral.New(c, n, opts...)
}

// NewSolverConfig builds a solver from a positional config struct on
// the synchronous reference transform.
//
// Deprecated: use NewSolver with functional options.
func NewSolverConfig(c *Comm, cfg SolverConfig) *Solver { return spectral.NewSolver(c, cfg) }

// NewSolverWithTransform builds a solver on a caller-chosen engine.
//
// Deprecated: use NewSolver with WithTransform.
func NewSolverWithTransform(c *Comm, cfg SolverConfig, tr Transform) *Solver {
	return spectral.NewSolverWithTransform(c, cfg, tr)
}

// NewForcing creates low-wavenumber band forcing over shells 1…kf.
//
// Deprecated: use NewSolver with WithForcing.
func NewForcing(kf int) *Forcing { return spectral.NewForcing(kf) }

// Regrid spectrally transfers src's velocity field onto dst (larger or
// smaller grid, same communicator).
func Regrid(dst, src *Solver) { spectral.Regrid(dst, src) }

// WriteSlicePNG renders a gathered plane with a diverging colormap.
var WriteSlicePNG = spectral.WriteSlicePNG
