package repro_test

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro"
)

// TestPublicAPIQuickstart exercises the documented entry points end to
// end, exactly as the package doc comment advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	repro.Run(2, func(c *repro.Comm) {
		tr := repro.NewAsyncTransform(c, 16, repro.AsyncOptions{
			NP: 3, Granularity: repro.PerPencil,
		})
		defer tr.Close()
		s := repro.NewSolver(c, 16,
			repro.WithNu(0.02),
			repro.WithScheme(repro.RK2),
			repro.WithDealias(repro.Dealias23),
			repro.WithForcing(2, 0.05),
			repro.WithTransform(tr),
		)
		s.SetRandomIsotropic(3, 0.5, 1)
		e0 := s.Energy()
		for i := 0; i < 3; i++ {
			s.Step(0.004)
		}
		if e := s.Energy(); math.IsNaN(e) || e <= 0 || e > 2*e0 {
			t.Errorf("energy %g implausible", e)
		}
		if d := s.DivergenceMax(); d > 1e-10 {
			t.Errorf("divergence %g", d)
		}
	})
}

func TestPublicAPIEngines(t *testing.T) {
	repro.Run(2, func(c *repro.Comm) {
		var engines []repro.Transform
		engines = append(engines, repro.NewSlabTransform(c, 8))
		engines = append(engines, repro.NewThreadedSlabTransform(c, 8, 2))
		engines = append(engines, repro.NewSyncGPUTransform(c, 8))
		for i, tr := range engines {
			if tr.NXH() != 5 || tr.Slab().N != 8 {
				t.Errorf("engine %d geometry wrong", i)
			}
		}
	})
}

func TestPublicAPIPerformanceModel(t *testing.T) {
	if m := repro.Summit(); m.TotalNodes != 4608 {
		t.Error("Summit description")
	}
	res := repro.SimulateGPUStep(repro.DefaultPerf(18432, 3072, 2, repro.PerSlab))
	if res.Time < 10 || res.Time > 20 {
		t.Errorf("18432³ step time %g outside the paper's regime", res.Time)
	}
	rows := repro.Table3()
	if len(rows) != 4 {
		t.Error("Table3 rows")
	}
	tpn, gran, _ := repro.BestConfig(18432, 3072)
	if tpn != 2 || gran != repro.PerSlab {
		t.Error("BestConfig")
	}
	out := repro.RenderTimelines(repro.Fig10(), 80)
	if !strings.Contains(out, "legend") {
		t.Error("timeline rendering")
	}
}

func TestPublicAPIRegridAndSlices(t *testing.T) {
	repro.Run(2, func(c *repro.Comm) {
		small := repro.NewSolver(c, 8, repro.WithNu(0.01))
		small.SetTaylorGreen()
		big := repro.NewSolver(c, 16, repro.WithNu(0.01))
		repro.Regrid(big, small)
		if math.Abs(big.Energy()-0.125) > 1e-12 {
			t.Errorf("regridded TG energy %g", big.Energy())
		}
		plane := big.SliceZ(0, 0)
		if c.Rank() == 0 {
			var buf strings.Builder
			_ = buf
			if len(plane) != 16*16 {
				t.Errorf("plane size %d", len(plane))
			}
		}
	})
}

// TestPublicAPIChaos exercises the robustness surface end to end from
// the facade: fault injection and the watchdog through TryRun options,
// the engine wait deadline through NewAsync options, and the typed
// error chain StepStallError → StallError through errors.As.
func TestPublicAPIChaos(t *testing.T) {
	drop := repro.FaultRule{
		Src: 1, Dst: 0, Tag: repro.AnyTag,
		Scope: repro.FaultScopeColl, MinBytes: 1024, DropProb: 1,
	}
	err := repro.TryRun(2, func(c *repro.Comm) {
		// Pin the staged wire path: the default autotuner would run
		// staged trials at construction and stall there under the
		// 100%-drop rule, before Step gets to wrap the error.
		tr := repro.NewAsync(c, 16,
			repro.WithNP(3),
			repro.WithGranularity(repro.PerPencil),
			repro.WithWaitDeadline(200*time.Millisecond),
			repro.WithExchangeStrategy(repro.ExchangeStaged),
		)
		defer tr.Close()
		s := repro.NewSolver(c, 16,
			repro.WithNu(0.02),
			repro.WithScheme(repro.RK2),
			repro.WithDealias(repro.Dealias23),
			repro.WithTransform(tr),
		)
		s.SetTaylorGreen()
		s.Step(0.004)
	},
		repro.WithFaults(&repro.Faults{Rules: []repro.FaultRule{drop}}),
		repro.WithWatchdog(repro.Watchdog{Off: true}),
	)
	var se *repro.StepStallError
	if !errors.As(err, &se) {
		t.Fatalf("error %T (%v) does not wrap *StepStallError", err, err)
	}
	var st *repro.StallError
	if !errors.As(err, &st) || st.Rank != 0 {
		t.Fatalf("underlying StallError not reachable or wrong: %v", err)
	}
}

// TestPublicAPIWatchdogDeadlock: the default-on watchdog surfaces a
// plain deadlock (no faults involved) as a typed *StallError.
func TestPublicAPIWatchdogDeadlock(t *testing.T) {
	err := repro.TryRun(2, func(c *repro.Comm) {
		if c.Rank() == 0 {
			c.Barrier() // rank 1 never arrives
		}
	}, repro.WithWatchdog(repro.Watchdog{DeadlockAfter: 150 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var st *repro.StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *StallError", err, err)
	}
	if st.Rank != 0 || st.Op != "barrier" || !st.Deadlock {
		t.Fatalf("StallError = %+v", st)
	}
}
