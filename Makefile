# Developer entry points. CI runs the same steps (see
# .github/workflows/ci.yml); keep them in sync.

GO ?= go
PSDNSLINT := bin/psdnslint

.PHONY: all build test lint lint-fix fmt bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint = gofmt (fail on unformatted files) + go vet + the repo's own
# psdnslint analyzer suite, plus staticcheck when it is installed
# (local toolchains may not have it; CI installs it and makes it
# blocking).
lint: $(PSDNSLINT)
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$$PWD/$(PSDNSLINT) ./... ./examples/...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

# lint-fix is the triage form of lint: it runs the whole analyzer
# suite across every package (including examples) without stopping at
# the first failure and prints each finding as a file:line link —
# paste-able into an editor or terminal that hyperlinks them. Always
# exits 0; use `make lint` as the gate.
lint-fix: $(PSDNSLINT)
	@$(GO) vet -vettool=$$PWD/$(PSDNSLINT) ./... ./examples/... 2>&1 \
		| grep -v '^#' | grep -v '^$$' \
		| sed 's|^\./||' || true
	@echo "lint-fix: findings above (if any) as file:line — fix or add //psdns:allow <analyzer> <reason>"

# The vettool must be a prebuilt binary: go vet invokes it once per
# package with the -V/-flags/cfg protocol, which `go run` cannot serve.
$(PSDNSLINT): $(wildcard cmd/psdnslint/*.go) $(wildcard internal/analysis/*.go) go.mod
	$(GO) build -o $@ ./cmd/psdnslint

fmt:
	gofmt -w .

bench:
	$(GO) run ./cmd/bench -quick -out /tmp/BENCH_step.json \
		-baseline BENCH_step.json -check

clean:
	rm -rf bin bench-out
