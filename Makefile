# Developer entry points. CI runs the same steps (see
# .github/workflows/ci.yml); keep them in sync.

GO ?= go
PSDNSLINT := bin/psdnslint

.PHONY: all build test lint fmt bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint = gofmt (fail on unformatted files) + go vet + the repo's own
# psdnslint analyzer suite, plus staticcheck when it is installed
# (local toolchains may not have it; CI installs it and makes it
# blocking).
lint: $(PSDNSLINT)
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$$PWD/$(PSDNSLINT) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

# The vettool must be a prebuilt binary: go vet invokes it once per
# package with the -V/-flags/cfg protocol, which `go run` cannot serve.
$(PSDNSLINT): $(wildcard cmd/psdnslint/*.go) $(wildcard internal/analysis/*.go) go.mod
	$(GO) build -o $@ ./cmd/psdnslint

fmt:
	gofmt -w .

bench:
	$(GO) run ./cmd/bench -quick -out /tmp/BENCH_step.json \
		-baseline BENCH_step.json -check

clean:
	rm -rf bin bench-out
