package core

import (
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/pool"
	"repro/internal/transpose"
	"repro/internal/tuning"
)

// Granularity selects how much data each MPI all-to-all carries.
type Granularity int

const (
	// PerPencil posts one non-blocking all-to-all per pencil as soon
	// as its packed D2H completes (paper configurations A and B).
	PerPencil Granularity = iota
	// PerSlab waits for every pencil and posts one large blocking
	// all-to-all for the whole slab (paper configuration C).
	PerSlab
)

// Options configures the asynchronous pipeline.
type Options struct {
	// NP is the number of pencils each slab is divided into (Fig 3);
	// it must satisfy 1 ≤ NP ≤ N/2+1. Zero means 3, the Table 1 value.
	NP int
	// Granularity selects per-pencil (A/B) or per-slab (C) exchanges.
	Granularity Granularity
	// NGPU is the number of devices per MPI rank (Fig 5); each pencil
	// is split vertically across them. Zero means 1.
	NGPU int
	// Workers is the per-rank worker-team size (the paper's OpenMP
	// threads per rank): the batched FFT loops inside each device's
	// compute launches and the host-side unpack kernels are split
	// across the team. Zero means 1. Results are bitwise identical for
	// any team size.
	Workers int
	// SingleComm stages all-to-all payloads through complex64 buffers,
	// matching the paper's single-precision wire format (half the
	// bytes, ~1e-7 relative rounding per transform).
	SingleComm bool
	// Metrics selects the registry the pipeline records phase timings
	// and transfer bytes into. Nil means the communicator's registry
	// (the one Run/TryRun installed), so instrumentation follows the
	// world by default.
	Metrics *metrics.Registry
	// WaitDeadline, when positive, bounds each wait on a per-pencil
	// all-to-all request: a fragment that fails to arrive within the
	// deadline aborts the world with a typed mpi.StallError instead of
	// hanging the pipeline (the engine-level analogue of the runtime's
	// stall watchdog). Zero waits indefinitely.
	WaitDeadline time.Duration
	// Exchange selects the transpose-exchange strategy: Staged posts
	// MPI all-to-alls and unpacks the received blocks (the wire path of
	// the paper's staged variant), Fused and ChunkedFused gather
	// directly from every peer's packed send buffer into the local
	// destination layout through an mpi.ExchangePlan (the zero-copy
	// variant), and Auto (the zero value) microbenchmarks all three at
	// plan time and pins the collectively-agreed winner. AT runs the
	// fused gather through bounded-staleness plans (DoBounded) and must
	// be selected explicitly — it changes the answer, so the autotuner
	// never picks it.
	Exchange exchange.Strategy
	// ATMaxStale bounds, in exchange epochs, how far behind a peer's
	// published slab may be when Exchange is AT. Zero keeps every
	// exchange effectively synchronous (peers must reach the current
	// epoch before the gather runs).
	ATMaxStale int
	// ATDeadline is how long an AT exchange waits for lagging peers to
	// reach the current epoch before accepting their latest published
	// slabs; ≤ 0 never waits past the hard staleness bound.
	ATDeadline time.Duration
	// Autotune expands plan-time autotuning from the exchange strategy
	// alone to the whole-step tune space (strategy × granularity × np ×
	// workers × precision, per TuneSpace): construction delegates to
	// NewAsyncSlabRealTuned, consulting the persistent tuning cache in
	// TuneCacheDir first and persisting the winner after live trials.
	Autotune bool
	// TuneCacheDir is the tuning-cache directory Autotune uses; empty
	// means no persistence (live trials on every construction).
	TuneCacheDir string
	// TuneSpace overrides the default whole-step search space (nil
	// searches strategies × granularities at the option-given np,
	// workers and precision).
	TuneSpace *tuning.Space
	// Decomp is the field decomposition. The asynchronous pipeline is
	// built on the slab layout (its pencils are the within-slab batching
	// of Fig 3, not a process-grid axis), so only tuning.DecompSlab —
	// the zero value — is accepted; pencil grids and DecompAuto panic,
	// pointing at pfft.NewRealTuned, the decomposition-generic
	// constructor.
	Decomp tuning.Decomp
}

// span is a half-open index range.
type span struct{ lo, hi int }

func (s span) width() int { return s.hi - s.lo }

// splitRange divides [0,total) into n near-equal contiguous spans.
func splitRange(total, n int) []span {
	per, rem := total/n, total%n
	out := make([]span, n)
	lo := 0
	for i := range out {
		w := per
		if i < rem {
			w++
		}
		out[i] = span{lo, lo + w}
		lo += w
	}
	return out
}

// gpuCtx is the per-device execution context: one compute stream and
// one transfer stream (§3.4: a single transfer stream keeps host
// memory traffic unidirectional), plus the plan cache serving the
// device's batched FFTs (the cufftPlanMany handles of §4.1).
type gpuCtx struct {
	dev      *cuda.Device
	transfer *cuda.Stream
	compute  *cuda.Stream
	// Triple-buffered device slots (§3.5's factor of 3 on buffers),
	// checked out of the process buffer arena at construction.
	slots  [3][]complex128
	rslots [3][]float64
	// team splits the batched FFT loops inside this device's compute
	// launches; plans[w] is worker w's plan cache (plans carry scratch
	// and are not concurrency-safe, so each worker owns a full set).
	team  *par.Team
	plans []*fft.BatchCache
}

// asyncMetrics are the per-rank instrumentation handles of the
// asynchronous engine: the three disjoint wall sections of each
// transposing transform (device pipeline, exposed all-to-all,
// host-side unpack) and direction-labelled transfer bytes.
type asyncMetrics struct {
	pipeline *metrics.Histogram
	a2a      *metrics.Histogram
	unpack   *metrics.Histogram
	h2d      *metrics.Counter
	d2h      *metrics.Counter
}

func newAsyncMetrics(reg *metrics.Registry, rank int) *asyncMetrics {
	return &asyncMetrics{
		pipeline: reg.HistogramRank("phase.pipeline", rank),
		a2a:      reg.HistogramRank("phase.a2a", rank),
		unpack:   reg.HistogramRank("phase.unpack", rank),
		h2d:      reg.CounterRank("gpu.h2d.bytes", rank),
		d2h:      reg.CounterRank("gpu.d2h.bytes", rank),
	}
}

// AsyncSlabReal is the batched asynchronous transform engine of Fig 4.
// It implements spectral.Transform. Not safe for concurrent use.
type AsyncSlabReal struct {
	comm *mpi.Comm
	s    grid.Slab
	n    int
	nxh  int
	np   int
	gran Granularity
	// waitDeadline bounds each all-to-all wait (Options.WaitDeadline).
	waitDeadline time.Duration

	gpus []*gpuCtx
	xr   []span // region y/z pencil x-ranges over nxh
	zr   []span // region x pencil z-ranges over n

	mid     []complex128 // [my][nz][nxh] intermediate slab
	sendAll []complex128 // per-slab send buffer [P][·][·][nxh]
	recvAll []complex128
	sendP   [][]complex128 // per-pencil views into sendAll
	recvP   [][]complex128

	// team splits the host-side unpack kernels across workers; it is
	// shared by both transposing regions and reused across steps.
	team *par.Team
	// Per-step pipeline state, hoisted to construction so the hot path
	// does not allocate: one request slot, event record and op record
	// per (pencil, device).
	reqs   []*mpi.Request
	pstate [][]pencilEvs
	pops   [][]pencilOps

	met    *asyncMetrics
	closed bool

	// Single-precision staging (Options.SingleComm).
	single  bool
	send32  []complex64
	recv32  []complex64
	sendP32 [][]complex64
	recvP32 [][]complex64

	// Pinned transpose-exchange strategy (never exchange.Auto) and the
	// fused-exchange plans: one per pencil under PerPencil granularity,
	// a single whole-slab plan under PerSlab. Only the precision
	// matching a.single is populated.
	strat  exchange.Strategy
	exch   []*mpi.ExchangePlan[complex128]
	exch32 []*mpi.ExchangePlan[complex64]
	// Asynchrony-tolerant state (strat == exchange.AT only). The y→z
	// and z→y exchanges are heterogeneous (different packing, opposite
	// direction), so under AT each direction gets its own bounded
	// plan(s) — exch/exch32 carry the y direction, exchZ/exchZ32 the z
	// direction — and a stale slab is always an older publication of
	// the same direction. atSite additionally labels each exchange with
	// the caller's quantity index (SetATSite) so stale slabs only ever
	// substitute for the same quantity.
	exchZ      []*mpi.ExchangePlan[complex128]
	exchZ32    []*mpi.ExchangePlan[complex64]
	atSite     uint32
	atStale    int
	atDeadline time.Duration
}

// NewAsyncSlabReal constructs the pipeline for an N³ real transform
// over the ranks of comm.
func NewAsyncSlabReal(comm *mpi.Comm, n int, opt Options) *AsyncSlabReal {
	if n%2 != 0 {
		panic(fmt.Sprintf("core: N must be even, got %d", n))
	}
	if !opt.Decomp.IsSlab() {
		panic(fmt.Sprintf("core: the asynchronous engine is slab-only, got decomposition %s; use pfft.NewRealTuned for pencil grids", opt.Decomp))
	}
	if opt.Autotune {
		cfg := tuning.Config{}
		if opt.TuneSpace != nil {
			cfg.Space = *opt.TuneSpace
		}
		if opt.TuneCacheDir != "" {
			cfg.Cache = tuning.Open(opt.TuneCacheDir)
		}
		opt.Autotune = false
		return NewAsyncSlabRealTuned(comm, n, opt, cfg)
	}
	if opt.NP == 0 {
		opt.NP = 3
	}
	if opt.NGPU == 0 {
		opt.NGPU = 1
	}
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	nxh := n/2 + 1
	if opt.NP < 1 || opt.NP > nxh || opt.NP > n {
		panic(fmt.Sprintf("core: invalid pencil count %d for N=%d", opt.NP, n))
	}
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	a := &AsyncSlabReal{
		comm:         comm,
		s:            s,
		n:            n,
		nxh:          nxh,
		np:           opt.NP,
		gran:         opt.Granularity,
		waitDeadline: opt.WaitDeadline,
		xr:           splitRange(nxh, opt.NP),
		zr:           splitRange(n, opt.NP),
	}
	mz, my := s.MZ(), s.MY()

	reg := opt.Metrics
	if reg == nil {
		reg = comm.Metrics()
	}
	a.met = newAsyncMetrics(reg, comm.Rank())

	// Device slot sizing: the largest pencil seen by any region.
	wmax := a.xr[0].width()
	zmax := a.zr[0].width()
	slotC := max(mz*n*wmax, max(my*n*wmax, my*zmax*nxh))
	slotR := my * zmax * n

	for g := 0; g < opt.NGPU; g++ {
		dev := cuda.NewDevice(g)
		dev.SetMetrics(reg, comm.Rank())
		ctx := &gpuCtx{
			dev:      dev,
			transfer: dev.NewStream(fmt.Sprintf("gpu%d/transfer", g)),
			compute:  dev.NewStream(fmt.Sprintf("gpu%d/compute", g)),
			team:     par.NewTeam(opt.Workers),
			plans:    make([]*fft.BatchCache, opt.Workers),
		}
		for w := range ctx.plans {
			ctx.plans[w] = fft.NewBatchCache()
		}
		for i := range ctx.slots {
			ctx.slots[i] = pool.GetComplex(slotC)
			ctx.rslots[i] = pool.GetFloat(slotR)
		}
		a.gpus = append(a.gpus, ctx)
	}
	a.team = par.NewTeam(opt.Workers)
	a.reqs = make([]*mpi.Request, a.np)
	a.pstate = make([][]pencilEvs, a.np)
	a.pops = make([][]pencilOps, a.np)
	for ip := range a.pstate {
		a.pstate[ip] = make([]pencilEvs, opt.NGPU)
		a.pops[ip] = make([]pencilOps, opt.NGPU)
	}
	// Pre-build plans for every width that can occur, including the
	// vertical GPU sub-splits of Fig 5, so plan construction stays out
	// of the timed regions (runtime lookups are then all cache hits).
	// Every worker's cache gets the full set: which planes a worker
	// draws depends only on the chunking, but the widths are shared.
	for _, ctx := range a.gpus {
		for _, cache := range ctx.plans {
			for _, xs := range a.xr {
				for _, sub := range splitRange(xs.width(), opt.NGPU) {
					if w := sub.width(); w > 0 {
						cache.Batch(n, w, w, 1, w, 1)
					}
				}
			}
			for _, zs := range a.zr {
				for _, sub := range splitRange(zs.width(), opt.NGPU) {
					if zw := sub.width(); zw > 0 {
						cache.RealBatch(n, zw, 1, n, 1, nxh)
					}
				}
			}
		}
	}

	a.mid = pool.GetComplex(my * n * nxh)
	a.single = opt.SingleComm
	p := comm.Size()
	if a.single {
		a.send32 = pool.GetComplex64(mz * n * nxh)
		a.recv32 = pool.GetComplex64(mz * n * nxh)
		a.sendP32 = make([][]complex64, a.np)
		a.recvP32 = make([][]complex64, a.np)
		off := 0
		for ip, xs := range a.xr {
			size := p * mz * my * xs.width()
			a.sendP32[ip] = a.send32[off : off+size]
			a.recvP32[ip] = a.recv32[off : off+size]
			off += size
		}
	} else {
		a.sendAll = pool.GetComplex(mz * n * nxh)
		a.recvAll = pool.GetComplex(mz * n * nxh)
		a.sendP = make([][]complex128, a.np)
		a.recvP = make([][]complex128, a.np)
		off := 0
		for ip, xs := range a.xr {
			size := p * mz * my * xs.width()
			a.sendP[ip] = a.sendAll[off : off+size]
			a.recvP[ip] = a.recvAll[off : off+size]
			off += size
		}
	}
	// Fused-exchange plans, registered unconditionally (registration is
	// a cheap collective and every rank must stay in the same collective
	// order regardless of the strategy each would pick). Under the
	// asynchrony-tolerant strategy the plans are bounded: publication is
	// epoch-tagged and gathers accept slabs up to ATMaxStale epochs old.
	at := opt.Exchange == exchange.AT
	if at && opt.ATMaxStale < 0 {
		panic(fmt.Sprintf("core: negative staleness bound %d", opt.ATMaxStale))
	}
	a.atStale, a.atDeadline = opt.ATMaxStale, opt.ATDeadline
	newExch := func(size int) *mpi.ExchangePlan[complex128] {
		if at {
			return mpi.NewExchangePlanBounded[complex128](comm, size, opt.ATMaxStale, opt.ATDeadline)
		}
		return mpi.NewExchangePlan[complex128](comm, size)
	}
	newExch32 := func(size int) *mpi.ExchangePlan[complex64] {
		if at {
			return mpi.NewExchangePlanBounded[complex64](comm, size, opt.ATMaxStale, opt.ATDeadline)
		}
		return mpi.NewExchangePlan[complex64](comm, size)
	}
	if a.gran == PerPencil {
		for _, xs := range a.xr {
			size := p * mz * my * xs.width()
			if a.single {
				a.exch32 = append(a.exch32, newExch32(size))
			} else {
				a.exch = append(a.exch, newExch(size))
			}
		}
	} else {
		if a.single {
			a.exch32 = append(a.exch32, newExch32(mz*n*nxh))
		} else {
			a.exch = append(a.exch, newExch(mz*n*nxh))
		}
	}
	// Under AT the z-direction exchanges get their own epoch streams
	// (same sizes and collective order on every rank); synchronous
	// strategies share the plans above for both directions, which the
	// barriers make safe.
	if at {
		if a.gran == PerPencil {
			for _, xs := range a.xr {
				size := p * mz * my * xs.width()
				if a.single {
					a.exchZ32 = append(a.exchZ32, newExch32(size))
				} else {
					a.exchZ = append(a.exchZ, newExch(size))
				}
			}
		} else {
			if a.single {
				a.exchZ32 = append(a.exchZ32, newExch32(mz*n*nxh))
			} else {
				a.exchZ = append(a.exchZ, newExch(mz*n*nxh))
			}
		}
	}
	st := opt.Exchange
	if st == exchange.Auto {
		st = a.autotune()
	}
	a.strat = st
	reg.GaugeRank("exchange.strategy", comm.Rank()).Set(st.Code())
	return a
}

// Strategy reports the pinned transpose-exchange strategy (never
// exchange.Auto: autotuned engines report the winner).
func (a *AsyncSlabReal) Strategy() exchange.Strategy { return a.strat }

// Close releases the device worker goroutines, the worker teams, the
// cached FFT plans and every arena-backed buffer. Idempotent.
func (a *AsyncSlabReal) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for _, g := range a.gpus {
		g.dev.Close()
		g.team.Close()
		for _, cache := range g.plans {
			cache.Release()
		}
		for i := range g.slots {
			pool.PutComplex(g.slots[i])
			pool.PutFloat(g.rslots[i])
			g.slots[i], g.rslots[i] = nil, nil
		}
	}
	a.team.Close()
	for _, pl := range a.exch {
		pl.Free()
	}
	for _, pl := range a.exch32 {
		pl.Free()
	}
	for _, pl := range a.exchZ {
		pl.Free()
	}
	for _, pl := range a.exchZ32 {
		pl.Free()
	}
	pool.PutComplex(a.mid)
	a.mid = nil
	if a.single {
		pool.PutComplex64(a.send32)
		pool.PutComplex64(a.recv32)
		a.send32, a.recv32 = nil, nil
	} else {
		pool.PutComplex(a.sendAll)
		pool.PutComplex(a.recvAll)
		a.sendAll, a.recvAll = nil, nil
	}
}

// Workers reports the per-rank worker-team size.
func (a *AsyncSlabReal) Workers() int { return a.team.Size() }

// Slab reports the decomposition geometry.
func (a *AsyncSlabReal) Slab() grid.Slab { return a.s }

// NXH is the stored x extent of the half-spectrum.
func (a *AsyncSlabReal) NXH() int { return a.nxh }

// FourierLen is the complex element count of the local Fourier slab.
func (a *AsyncSlabReal) FourierLen() int { return a.s.MZ() * a.n * a.nxh }

// PhysicalLen is the real element count of the local physical slab.
func (a *AsyncSlabReal) PhysicalLen() int { return a.s.MY() * a.n * a.n }

// NP reports the pencil count per slab.
func (a *AsyncSlabReal) NP() int { return a.np }

// subRange returns device g's share of a pencil's range (Fig 5
// vertical split).
func subRange(xs span, g, ngpu int) span {
	subs := splitRange(xs.width(), ngpu)
	return span{xs.lo + subs[g].lo, xs.lo + subs[g].hi}
}

// FourierToPhysical runs the Fig 4 pipeline: the y region with fused
// pack + all-to-all, then the z and x regions. four is consumed.
//
//psdns:hotpath
func (a *AsyncSlabReal) FourierToPhysical(phys []float64, four []complex128) {
	if len(four) != a.FourierLen() || len(phys) != a.PhysicalLen() {
		panic(fmt.Sprintf("core: F2P wants %d/%d, got %d/%d",
			a.FourierLen(), a.PhysicalLen(), len(four), len(phys)))
	}
	a.regionYTranspose(four)
	a.regionZ(fft.Inverse)
	a.regionXInverse(phys)
}

// PhysicalToFourier runs the reverse pipeline: the x (r2c) and z
// regions, the reverse all-to-all fused into the z region's D2H, then
// the y region.
//
//psdns:hotpath
func (a *AsyncSlabReal) PhysicalToFourier(four []complex128, phys []float64) {
	if len(four) != a.FourierLen() || len(phys) != a.PhysicalLen() {
		panic(fmt.Sprintf("core: P2F wants %d/%d, got %d/%d",
			a.FourierLen(), a.PhysicalLen(), len(four), len(phys)))
	}
	a.regionXForward(phys)
	a.regionZTranspose(four)
	a.regionY(four, fft.Forward)
}

// regionY streams x-split pencils of the Fourier slab [mz][ny][nxh]
// through the devices, transforming along y in place (no transpose).
func (a *AsyncSlabReal) regionY(four []complex128, dir fft.Direction) {
	n, nxh, mz := a.n, a.nxh, a.s.MZ()
	defer a.met.pipeline.Start()()
	a.pipeline(func(ip, g int) pencilOps {
		xs := subRange(a.xr[ip], g, len(a.gpus))
		w := xs.width()
		if w == 0 {
			return pencilOps{}
		}
		ctx := a.gpus[g]
		return pencilOps{
			h2d: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, ctx.slots[slot], w,
					four[xs.lo:], nxh, w, mz*n)
			},
			compute: a.lineFFT(ctx, w, mz, dir),
			d2h: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, four[xs.lo:], nxh,
					ctx.slots[slot], w, w, mz*n)
			},
			h2dBytes: int64(16 * w * mz * n),
			d2hBytes: int64(16 * w * mz * n),
		}
	}, nil)
}

// regionYTranspose is the first dashed region of Fig 4: inverse y
// transforms with the pack fused into the D2H as strided copies into
// the send buffer, the all-to-all posted per pencil (PerPencil) or
// once for the slab (PerSlab), and the received blocks unpacked into
// the mid slab.
func (a *AsyncSlabReal) regionYTranspose(four []complex128) {
	n, nxh, mz, my, p := a.n, a.nxh, a.s.MZ(), a.s.MY(), a.comm.Size()
	reqs := a.reqs
	var afterD2H func(ip int)
	// Fused strategies skip the wire entirely: no per-pencil all-to-all
	// posts — the gather after the pipeline reads peer send buffers in
	// place.
	if a.gran == PerPencil && a.strat == exchange.Staged {
		afterD2H = func(ip int) {
			if a.single {
				reqs[ip] = mpi.Ialltoall(a.comm, a.sendP32[ip], a.recvP32[ip])
			} else {
				reqs[ip] = mpi.Ialltoall(a.comm, a.sendP[ip], a.recvP[ip])
			}
		}
	}
	wireElem := int64(16)
	if a.single {
		wireElem = 8
	}
	stop := a.met.pipeline.Start()
	a.pipeline(func(ip, g int) pencilOps {
		full := a.xr[ip]
		xs := subRange(full, g, len(a.gpus))
		w := xs.width()
		if w == 0 {
			return pencilOps{}
		}
		ctx := a.gpus[g]
		return pencilOps{
			h2dBytes: int64(16 * w * mz * n),
			d2hBytes: wireElem * int64(w*mz*n),
			h2d: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, ctx.slots[slot], w,
					four[xs.lo:], nxh, w, mz*n)
			},
			compute: a.lineFFT(ctx, w, mz, fft.Inverse),
			d2h: func(slot int) {
				// Fused pack+D2H (§3.4): one strided copy per
				// (destination, plane) — the call count grows with the
				// rank count, the §5.2 effect. With SingleComm the copy
				// also narrows to the wire precision.
				buf := ctx.slots[slot]
				for d := 0; d < p; d++ {
					for iz := 0; iz < mz; iz++ {
						src := buf[(iz*n+d*my)*w:]
						switch {
						case a.gran == PerPencil && a.single:
							wp := full.width()
							dst := a.sendP32[ip][d*mz*my*wp+iz*my*wp+(xs.lo-full.lo):]
							narrow2DAsync(ctx.transfer, dst, wp, src, w, w, my)
						case a.gran == PerPencil:
							wp := full.width()
							dst := a.sendP[ip][d*mz*my*wp+iz*my*wp+(xs.lo-full.lo):]
							cuda.Memcpy2DAsync(ctx.transfer, dst, wp, src, w, w, my)
						case a.single:
							dst := a.send32[d*mz*my*nxh+iz*my*nxh+xs.lo:]
							narrow2DAsync(ctx.transfer, dst, nxh, src, w, w, my)
						default:
							dst := a.sendAll[d*mz*my*nxh+iz*my*nxh+xs.lo:]
							cuda.Memcpy2DAsync(ctx.transfer, dst, nxh, src, w, w, my)
						}
					}
				}
			},
		}
	}, afterD2H)
	stop()

	if a.strat != exchange.Staged {
		stop = a.met.a2a.Start()
		a.fusedExchangeY(a.strat == exchange.ChunkedFused)
		stop()
		return
	}
	if a.gran == PerSlab {
		stop = a.met.a2a.Start()
		if a.single {
			a.wait(mpi.Ialltoall(a.comm, a.send32, a.recv32))
		} else {
			a.wait(mpi.Ialltoall(a.comm, a.sendAll, a.recvAll))
		}
		stop()
		defer a.met.unpack.Start()()
		a.unpackYPerSlab()
		return
	}
	stop = a.met.a2a.Start()
	a.waitAll(reqs)
	stop()
	defer a.met.unpack.Start()()
	a.unpackYPerPencil()
}

// unpackYPerSlab scatters the whole-slab received blocks
// [s][mz][my][nxh] into mid=[my][nz][nxh]. Each (s,iz) unit owns a
// distinct set of destination rows, so the flattened loop splits
// across the worker team conflict-free.
func (a *AsyncSlabReal) unpackYPerSlab() {
	n, nxh, mz, my, p := a.n, a.nxh, a.s.MZ(), a.s.MY(), a.comm.Size()
	a.team.ForWorkers(p*mz, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			s, iz := u/mz, u%mz
			if a.single {
				widenStrided(a.mid[(s*mz+iz)*nxh:], n*nxh,
					a.recv32[s*mz*my*nxh+iz*my*nxh:], nxh, nxh, my)
			} else {
				transpose.CopyStrided(a.mid[(s*mz+iz)*nxh:], n*nxh,
					a.recvAll[s*mz*my*nxh+iz*my*nxh:], nxh, nxh, my)
			}
		}
	})
}

// unpackYPerPencil scatters per-pencil blocks [s][mz][my][wp] into mid
// (on real hardware this is the zero-copy scatter kernel of §4.2).
func (a *AsyncSlabReal) unpackYPerPencil() {
	n, nxh, mz, my, p := a.n, a.nxh, a.s.MZ(), a.s.MY(), a.comm.Size()
	for ip, full := range a.xr {
		ip, wp := ip, full.width()
		base := full.lo
		a.team.ForWorkers(p*mz, func(_, ulo, uhi int) {
			for u := ulo; u < uhi; u++ {
				s, iz := u/mz, u%mz
				if a.single {
					widenStrided(a.mid[(s*mz+iz)*nxh+base:], n*nxh,
						a.recvP32[ip][s*mz*my*wp+iz*my*wp:], wp, wp, my)
				} else {
					transpose.CopyStrided(a.mid[(s*mz+iz)*nxh+base:], n*nxh,
						a.recvP[ip][s*mz*my*wp+iz*my*wp:], wp, wp, my)
				}
			}
		})
	}
}

// gatherYBlocks is the fused y→z gather: every peer's packed send
// block is read in place (srcs or srcs32, whichever precision the
// engine stages) and scattered straight into mid — the wire copy and
// the unpack of the staged path fused into one parallel pass. w is the
// packed row width (nxh whole-slab, the pencil width per-pencil) and
// base the x offset of the pencil in mid. chunked visits peers in
// pairwise-exchange rounds (round r reads (me+r)%P) so each published
// slab is read by one rank's team at a time; fused sweeps all peers in
// one team dispatch.
func (a *AsyncSlabReal) gatherYBlocks(srcs [][]complex128, srcs32 [][]complex64, w, base int, chunked bool) {
	n, nxh, mz, my, p := a.n, a.nxh, a.s.MZ(), a.s.MY(), a.comm.Size()
	me := a.comm.Rank()
	blk := mz * my * w
	unit := func(s, iz int) {
		if srcs32 != nil {
			widenStrided(a.mid[(s*mz+iz)*nxh+base:], n*nxh,
				srcs32[s][me*blk+iz*my*w:], w, w, my)
		} else {
			transpose.CopyStrided(a.mid[(s*mz+iz)*nxh+base:], n*nxh,
				srcs[s][me*blk+iz*my*w:], w, w, my)
		}
	}
	if chunked {
		for r := 0; r < p; r++ {
			s := (me + r) % p
			a.team.ForWorkers(mz, func(_, lo, hi int) {
				for iz := lo; iz < hi; iz++ {
					unit(s, iz)
				}
			})
		}
		return
	}
	a.team.ForWorkers(p*mz, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			unit(u/mz, u%mz)
		}
	})
}

// doExchY runs one y-direction exchange on plan ip: DoBounded on the
// y-direction bounded plan under the asynchrony-tolerant strategy
// (publication is a site-labeled ring copy, lagging peers are
// tolerated up to the staleness bound), Do otherwise.
func (a *AsyncSlabReal) doExchY(ip int, src []complex128, gather func([][]complex128)) {
	if a.strat == exchange.AT {
		pl := a.exch[ip]
		pl.SetSite(a.atSite)
		pl.DoBounded(src, gather, a.atStale)
		return
	}
	a.exch[ip].Do(src, gather)
}

func (a *AsyncSlabReal) doExchY32(ip int, src []complex64, gather func([][]complex64)) {
	if a.strat == exchange.AT {
		pl := a.exch32[ip]
		pl.SetSite(a.atSite)
		pl.DoBounded(src, gather, a.atStale)
		return
	}
	a.exch32[ip].Do(src, gather)
}

// doExchZ is the z-direction analogue: under AT it runs on the
// dedicated z-direction plan so the two transpose directions never
// share an epoch stream; synchronous strategies reuse the y plans
// (their barriers serialize the directions anyway).
func (a *AsyncSlabReal) doExchZ(ip int, src []complex128, gather func([][]complex128)) {
	if a.strat == exchange.AT {
		pl := a.exchZ[ip]
		pl.SetSite(a.atSite)
		pl.DoBounded(src, gather, a.atStale)
		return
	}
	a.exch[ip].Do(src, gather)
}

func (a *AsyncSlabReal) doExchZ32(ip int, src []complex64, gather func([][]complex64)) {
	if a.strat == exchange.AT {
		pl := a.exchZ32[ip]
		pl.SetSite(a.atSite)
		pl.DoBounded(src, gather, a.atStale)
		return
	}
	a.exch32[ip].Do(src, gather)
}

// SetATSite labels the quantity the next bounded exchanges carry (see
// mpi.ExchangePlan.SetSite): callers interleaving several fields or
// stages through one engine set a collectively-consistent site index
// before each transform call, so accepted stale slabs are always the
// same quantity from whole steps earlier. No-op on non-AT engines.
func (a *AsyncSlabReal) SetATSite(site uint32) { a.atSite = site }

// TakeStaleness drains the asynchrony-tolerant staleness window across
// every exchange plan (both directions, both precisions) since the
// previous take: worst accepted slab age (in same-site cycles), summed
// age, stale slab count and bounded-exchange count. All zeros on
// non-AT engines.
func (a *AsyncSlabReal) TakeStaleness() (max int, sum, slabs, calls int64) {
	for _, pl := range a.exch {
		m, s, sl, cl := pl.TakeStaleness()
		if m > max {
			max = m
		}
		sum, slabs, calls = sum+s, slabs+sl, calls+cl
	}
	for _, pl := range a.exch32 {
		m, s, sl, cl := pl.TakeStaleness()
		if m > max {
			max = m
		}
		sum, slabs, calls = sum+s, slabs+sl, calls+cl
	}
	for _, pl := range a.exchZ {
		m, s, sl, cl := pl.TakeStaleness()
		if m > max {
			max = m
		}
		sum, slabs, calls = sum+s, slabs+sl, calls+cl
	}
	for _, pl := range a.exchZ32 {
		m, s, sl, cl := pl.TakeStaleness()
		if m > max {
			max = m
		}
		sum, slabs, calls = sum+s, slabs+sl, calls+cl
	}
	return
}

// fusedExchangeY publishes the packed send buffer(s) through the
// fused-exchange plan(s) and gathers peer blocks directly into mid.
// Collective.
func (a *AsyncSlabReal) fusedExchangeY(chunked bool) {
	if a.gran == PerSlab {
		if a.single {
			a.doExchY32(0, a.send32, func(srcs [][]complex64) {
				a.gatherYBlocks(nil, srcs, a.nxh, 0, chunked)
			})
		} else {
			a.doExchY(0, a.sendAll, func(srcs [][]complex128) {
				a.gatherYBlocks(srcs, nil, a.nxh, 0, chunked)
			})
		}
		return
	}
	for ip, full := range a.xr {
		wp, base := full.width(), full.lo
		if a.single {
			a.doExchY32(ip, a.sendP32[ip], func(srcs [][]complex64) {
				a.gatherYBlocks(nil, srcs, wp, base, chunked)
			})
		} else {
			a.doExchY(ip, a.sendP[ip], func(srcs [][]complex128) {
				a.gatherYBlocks(srcs, nil, wp, base, chunked)
			})
		}
	}
}

// stagedExchangeY runs the staged wire path outside the pipeline —
// post the all-to-all(s), wait, unpack. This is the autotuner's staged
// trial body; the transform path itself posts per-pencil requests from
// the pipeline's afterD2H hook instead.
func (a *AsyncSlabReal) stagedExchangeY() {
	if a.gran == PerSlab {
		if a.single {
			a.wait(mpi.Ialltoall(a.comm, a.send32, a.recv32))
		} else {
			a.wait(mpi.Ialltoall(a.comm, a.sendAll, a.recvAll))
		}
		a.unpackYPerSlab()
		return
	}
	for ip := range a.xr {
		if a.single {
			a.reqs[ip] = mpi.Ialltoall(a.comm, a.sendP32[ip], a.recvP32[ip])
		} else {
			a.reqs[ip] = mpi.Ialltoall(a.comm, a.sendP[ip], a.recvP[ip])
		}
	}
	a.waitAll(a.reqs)
	a.unpackYPerPencil()
}

// autotune times every concrete exchange strategy on the engine's
// actual geometry, granularity and team through the shared trial
// protocol (tuning.TrialBest / tuning.ResolveTimes), and returns the
// collectively-agreed winner: per-rank best-of-k times are allgathered
// and the strategy whose slowest rank is fastest wins (ties to the
// earlier candidate, so Staged never loses to a wash). Collective;
// plan-time only.
func (a *AsyncSlabReal) autotune() exchange.Strategy {
	cands := exchange.Concrete
	mine := make([]float64, len(cands))
	for i, st := range cands {
		st := st
		mine[i] = tuning.TrialBest(a.comm, tuning.Trials, func() { a.runTrial(st) })
	}
	win, _ := tuning.ResolveTimes(a.comm, mine)
	return cands[win]
}

// runTrial executes one y→z exchange under st over the engine's own
// send/recv buffers — contents are irrelevant to timing. Collective;
// this is the trial body both the strategy autotuner above and the
// whole-step tuner (NewAsyncSlabRealTuned) time.
func (a *AsyncSlabReal) runTrial(st exchange.Strategy) {
	switch st {
	case exchange.Staged:
		a.stagedExchangeY()
	case exchange.Fused:
		a.fusedExchangeY(false)
	default:
		a.fusedExchangeY(true)
	}
}

// regionZ streams x-split pencils of the mid slab [my][nz][nxh],
// transforming along z in place.
func (a *AsyncSlabReal) regionZ(dir fft.Direction) {
	n, nxh, my := a.n, a.nxh, a.s.MY()
	defer a.met.pipeline.Start()()
	a.pipeline(func(ip, g int) pencilOps {
		xs := subRange(a.xr[ip], g, len(a.gpus))
		w := xs.width()
		if w == 0 {
			return pencilOps{}
		}
		ctx := a.gpus[g]
		return pencilOps{
			h2d: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, ctx.slots[slot], w,
					a.mid[xs.lo:], nxh, w, my*n)
			},
			compute: a.lineFFT(ctx, w, my, dir),
			d2h: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, a.mid[xs.lo:], nxh,
					ctx.slots[slot], w, w, my*n)
			},
			h2dBytes: int64(16 * w * my * n),
			d2hBytes: int64(16 * w * my * n),
		}
	}, nil)
}

// regionZTranspose is the reverse-direction analogue of
// regionYTranspose: forward z transforms on the mid slab with the
// pack-by-destination-z fused into the D2H, the all-to-all, and the
// unpack into the Fourier slab.
func (a *AsyncSlabReal) regionZTranspose(four []complex128) {
	n, nxh, mz, my, p := a.n, a.nxh, a.s.MZ(), a.s.MY(), a.comm.Size()
	reqs := a.reqs
	var afterD2H func(ip int)
	if a.gran == PerPencil && a.strat == exchange.Staged {
		afterD2H = func(ip int) {
			if a.single {
				reqs[ip] = mpi.Ialltoall(a.comm, a.sendP32[ip], a.recvP32[ip])
			} else {
				reqs[ip] = mpi.Ialltoall(a.comm, a.sendP[ip], a.recvP[ip])
			}
		}
	}
	wireElem := int64(16)
	if a.single {
		wireElem = 8
	}
	stop := a.met.pipeline.Start()
	a.pipeline(func(ip, g int) pencilOps {
		full := a.xr[ip]
		xs := subRange(full, g, len(a.gpus))
		w := xs.width()
		if w == 0 {
			return pencilOps{}
		}
		ctx := a.gpus[g]
		return pencilOps{
			h2dBytes: int64(16 * w * my * n),
			d2hBytes: wireElem * int64(w*my*n),
			h2d: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, ctx.slots[slot], w,
					a.mid[xs.lo:], nxh, w, my*n)
			},
			compute: a.lineFFT(ctx, w, my, fft.Forward),
			d2h: func(slot int) {
				// Pack blocks [d][my][mz][·] by destination z range.
				buf := ctx.slots[slot]
				for d := 0; d < p; d++ {
					for iy := 0; iy < my; iy++ {
						src := buf[(iy*n+d*mz)*w:]
						switch {
						case a.gran == PerPencil && a.single:
							wp := full.width()
							dst := a.sendP32[ip][d*my*mz*wp+iy*mz*wp+(xs.lo-full.lo):]
							narrow2DAsync(ctx.transfer, dst, wp, src, w, w, mz)
						case a.gran == PerPencil:
							wp := full.width()
							dst := a.sendP[ip][d*my*mz*wp+iy*mz*wp+(xs.lo-full.lo):]
							cuda.Memcpy2DAsync(ctx.transfer, dst, wp, src, w, w, mz)
						case a.single:
							dst := a.send32[d*my*mz*nxh+iy*mz*nxh+xs.lo:]
							narrow2DAsync(ctx.transfer, dst, nxh, src, w, w, mz)
						default:
							dst := a.sendAll[d*my*mz*nxh+iy*mz*nxh+xs.lo:]
							cuda.Memcpy2DAsync(ctx.transfer, dst, nxh, src, w, w, mz)
						}
					}
				}
			},
		}
	}, afterD2H)
	stop()

	if a.strat != exchange.Staged {
		stop = a.met.a2a.Start()
		a.fusedExchangeZ(four, a.strat == exchange.ChunkedFused)
		stop()
		return
	}
	if a.gran == PerSlab {
		stop = a.met.a2a.Start()
		if a.single {
			a.wait(mpi.Ialltoall(a.comm, a.send32, a.recv32))
		} else {
			a.wait(mpi.Ialltoall(a.comm, a.sendAll, a.recvAll))
		}
		stop()
		defer a.met.unpack.Start()()
		// Each (s,iy) unit owns distinct rows of four: conflict-free
		// split across the team, mirroring the y-region unpack.
		a.team.ForWorkers(p*my, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				s, iy := u/my, u%my
				if a.single {
					widenStrided(four[(s*my+iy)*nxh:], n*nxh,
						a.recv32[s*my*mz*nxh+iy*mz*nxh:], nxh, nxh, mz)
				} else {
					transpose.CopyStrided(four[(s*my+iy)*nxh:], n*nxh,
						a.recvAll[s*my*mz*nxh+iy*mz*nxh:], nxh, nxh, mz)
				}
			}
		})
		return
	}
	stop = a.met.a2a.Start()
	a.waitAll(reqs)
	stop()
	defer a.met.unpack.Start()()
	for ip, full := range a.xr {
		ip, wp := ip, full.width()
		base := full.lo
		a.team.ForWorkers(p*my, func(_, ulo, uhi int) {
			for u := ulo; u < uhi; u++ {
				s, iy := u/my, u%my
				if a.single {
					widenStrided(four[(s*my+iy)*nxh+base:], n*nxh,
						a.recvP32[ip][s*my*mz*wp+iy*mz*wp:], wp, wp, mz)
				} else {
					transpose.CopyStrided(four[(s*my+iy)*nxh+base:], n*nxh,
						a.recvP[ip][s*my*mz*wp+iy*mz*wp:], wp, wp, mz)
				}
			}
		})
	}
}

// gatherZBlocks is the fused z→y gather of the reverse transpose:
// peer packed blocks [d][my][mz][w] read in place and scattered into
// the Fourier slab four=[mz][ny][nxh]. The exact mirror of
// gatherYBlocks with the (iy, iz) roles swapped.
func (a *AsyncSlabReal) gatherZBlocks(four []complex128, srcs [][]complex128, srcs32 [][]complex64, w, base int, chunked bool) {
	n, nxh, mz, my, p := a.n, a.nxh, a.s.MZ(), a.s.MY(), a.comm.Size()
	me := a.comm.Rank()
	blk := my * mz * w
	unit := func(s, iy int) {
		if srcs32 != nil {
			widenStrided(four[(s*my+iy)*nxh+base:], n*nxh,
				srcs32[s][me*blk+iy*mz*w:], w, w, mz)
		} else {
			transpose.CopyStrided(four[(s*my+iy)*nxh+base:], n*nxh,
				srcs[s][me*blk+iy*mz*w:], w, w, mz)
		}
	}
	if chunked {
		for r := 0; r < p; r++ {
			s := (me + r) % p
			a.team.ForWorkers(my, func(_, lo, hi int) {
				for iy := lo; iy < hi; iy++ {
					unit(s, iy)
				}
			})
		}
		return
	}
	a.team.ForWorkers(p*my, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			unit(u/my, u%my)
		}
	})
}

// fusedExchangeZ publishes the packed send buffer(s) and gathers peer
// blocks directly into the Fourier slab. Collective.
func (a *AsyncSlabReal) fusedExchangeZ(four []complex128, chunked bool) {
	if a.gran == PerSlab {
		if a.single {
			a.doExchZ32(0, a.send32, func(srcs [][]complex64) {
				a.gatherZBlocks(four, nil, srcs, a.nxh, 0, chunked)
			})
		} else {
			a.doExchZ(0, a.sendAll, func(srcs [][]complex128) {
				a.gatherZBlocks(four, srcs, nil, a.nxh, 0, chunked)
			})
		}
		return
	}
	for ip, full := range a.xr {
		wp, base := full.width(), full.lo
		if a.single {
			a.doExchZ32(ip, a.sendP32[ip], func(srcs [][]complex64) {
				a.gatherZBlocks(four, nil, srcs, wp, base, chunked)
			})
		} else {
			a.doExchZ(ip, a.sendP[ip], func(srcs [][]complex128) {
				a.gatherZBlocks(four, srcs, nil, wp, base, chunked)
			})
		}
	}
}

// regionXInverse streams z-split pencils of the mid slab through c2r
// transforms along x into the physical slab [my][nz][nx].
func (a *AsyncSlabReal) regionXInverse(phys []float64) {
	n, nxh, my := a.n, a.nxh, a.s.MY()
	defer a.met.pipeline.Start()()
	a.pipeline(func(ip, g int) pencilOps {
		zs := subRange(a.zr[ip], g, len(a.gpus))
		zw := zs.width()
		if zw == 0 {
			return pencilOps{}
		}
		ctx := a.gpus[g]
		return pencilOps{
			h2d: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, ctx.slots[slot], zw*nxh,
					a.mid[zs.lo*nxh:], n*nxh, zw*nxh, my)
			},
			compute: func(slot int) {
				cbuf, rbuf := ctx.slots[slot], ctx.rslots[slot]
				ctx.compute.Launch("fftx-c2r", func() {
					ctx.team.ForWorkers(my, func(wk, lo, hi int) {
						plan := ctx.plans[wk].RealBatch(n, zw, 1, n, 1, nxh)
						for iy := lo; iy < hi; iy++ {
							plan.Inverse(rbuf[iy*zw*n:(iy+1)*zw*n], cbuf[iy*zw*nxh:(iy+1)*zw*nxh])
						}
					})
				})
			},
			d2h: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, phys[zs.lo*n:], n*n,
					ctx.rslots[slot], zw*n, zw*n, my)
			},
			h2dBytes: int64(16 * my * zw * nxh),
			d2hBytes: int64(8 * my * zw * n),
		}
	}, nil)
}

// regionXForward streams z-split pencils of the physical slab through
// r2c transforms along x into the mid slab.
func (a *AsyncSlabReal) regionXForward(phys []float64) {
	n, nxh, my := a.n, a.nxh, a.s.MY()
	defer a.met.pipeline.Start()()
	a.pipeline(func(ip, g int) pencilOps {
		zs := subRange(a.zr[ip], g, len(a.gpus))
		zw := zs.width()
		if zw == 0 {
			return pencilOps{}
		}
		ctx := a.gpus[g]
		return pencilOps{
			h2d: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, ctx.rslots[slot], zw*n,
					phys[zs.lo*n:], n*n, zw*n, my)
			},
			compute: func(slot int) {
				cbuf, rbuf := ctx.slots[slot], ctx.rslots[slot]
				ctx.compute.Launch("fftx-r2c", func() {
					ctx.team.ForWorkers(my, func(wk, lo, hi int) {
						plan := ctx.plans[wk].RealBatch(n, zw, 1, n, 1, nxh)
						for iy := lo; iy < hi; iy++ {
							plan.Forward(cbuf[iy*zw*nxh:(iy+1)*zw*nxh], rbuf[iy*zw*n:(iy+1)*zw*n])
						}
					})
				})
			},
			d2h: func(slot int) {
				cuda.Memcpy2DAsync(ctx.transfer, a.mid[zs.lo*nxh:], n*nxh,
					ctx.slots[slot], zw*nxh, zw*nxh, my)
			},
			h2dBytes: int64(8 * my * zw * n),
			d2hBytes: int64(16 * my * zw * nxh),
		}
	}, nil)
}

// lineFFT returns a compute launcher running nplanes strided line
// transforms of width w on the slot buffer, split across the device's
// worker team (the hybrid MPI+OpenMP batch loop). Planes are
// independent and every worker runs an identical plan, so the output
// is bitwise invariant under the team size.
func (a *AsyncSlabReal) lineFFT(ctx *gpuCtx, w, nplanes int, dir fft.Direction) func(slot int) {
	n := a.n
	return func(slot int) {
		buf := ctx.slots[slot]
		ctx.compute.Launch("fft-line", func() {
			ctx.team.ForWorkers(nplanes, func(wk, lo, hi int) {
				plan := ctx.plans[wk].Batch(n, w, w, 1, w, 1)
				for pl := lo; pl < hi; pl++ {
					plane := buf[pl*n*w : (pl+1)*n*w]
					if dir == fft.Forward {
						plan.Forward(plane, plane)
					} else {
						plan.Inverse(plane, plane)
					}
				}
			})
		})
	}
}

// pencilOps are the three per-pencil stages a region supplies; any may
// be nil (zero-width sub-pencil on this device). The byte fields carry
// the wire size each transfer stage moves, for direction-labelled
// accounting (gpu.h2d.bytes / gpu.d2h.bytes).
type pencilOps struct {
	h2d      func(slot int)
	compute  func(slot int)
	d2h      func(slot int)
	h2dBytes int64
	d2hBytes int64
}

// pencilEvs are the inter-stream ordering events of one (pencil,
// device) cell of the pipeline; the matrix is hoisted to construction
// and zeroed per region so the hot path does not allocate.
type pencilEvs struct{ h2d, comp, d2h *cuda.Event }

// pipeline drives np pencils through every device with the Fig 4
// launch order: D2H of the previous pencil first (prioritizing copies
// out of the GPU so exchanges can start early), then compute of the
// current pencil, then H2D of the next, with events ordering across
// the two streams and three rotating device slots. afterD2H, when
// non-nil, is invoked on the host once pencil ip's D2H has completed
// on every device — two pencils behind the launch frontier, the
// (ip−2) rule of Fig 4 — and is the hook that posts the per-pencil
// MPI_IALLTOALL.
//
//psdns:hotpath
func (a *AsyncSlabReal) pipeline(ops func(ip, g int) pencilOps, afterD2H func(ip int)) {
	ngpu := len(a.gpus)
	state, pops := a.pstate, a.pops
	for ip := 0; ip < a.np; ip++ {
		for g := 0; g < ngpu; g++ {
			state[ip][g] = pencilEvs{}
			pops[ip][g] = ops(ip, g)
		}
	}
	launchH2D := func(ip int) {
		for g := 0; g < ngpu; g++ {
			if pops[ip][g].h2d == nil {
				continue
			}
			pops[ip][g].h2d(ip % 3)
			a.met.h2d.Add(pops[ip][g].h2dBytes)
			state[ip][g].h2d = a.gpus[g].transfer.Record()
		}
	}
	launchD2H := func(ip int) {
		for g := 0; g < ngpu; g++ {
			if pops[ip][g].d2h == nil {
				continue
			}
			a.gpus[g].transfer.Wait(state[ip][g].comp)
			pops[ip][g].d2h(ip % 3)
			a.met.d2h.Add(pops[ip][g].d2hBytes)
			state[ip][g].d2h = a.gpus[g].transfer.Record()
		}
	}
	waitD2H := func(ip int) {
		for g := 0; g < ngpu; g++ {
			if ev := state[ip][g].d2h; ev != nil {
				ev.Synchronize()
			}
		}
	}

	launchH2D(0)
	for ip := 0; ip < a.np; ip++ {
		if ip > 0 {
			launchD2H(ip - 1)
		}
		for g := 0; g < ngpu; g++ {
			if pops[ip][g].compute == nil {
				continue
			}
			a.gpus[g].compute.Wait(state[ip][g].h2d)
			pops[ip][g].compute(ip % 3)
			state[ip][g].comp = a.gpus[g].compute.Record()
		}
		if ip+1 < a.np {
			launchH2D(ip + 1)
		}
		if afterD2H != nil && ip >= 2 {
			waitD2H(ip - 2)
			afterD2H(ip - 2)
		}
	}
	launchD2H(a.np - 1)
	for ip := max(0, a.np-2); ip < a.np; ip++ {
		waitD2H(ip)
		if afterD2H != nil {
			afterD2H(ip)
		}
	}
	// A region ends when both streams of every device have drained.
	for _, g := range a.gpus {
		g.transfer.Synchronize()
		g.compute.Synchronize()
	}
}

// wait blocks on one all-to-all request, bounding the block by the
// engine's wait deadline when one is configured.
//
//psdns:hotpath
func (a *AsyncSlabReal) wait(r *mpi.Request) {
	if a.waitDeadline > 0 {
		r.WaitWithin(a.waitDeadline)
		return
	}
	r.Wait()
}

// waitAll waits on every per-pencil request in order, each under the
// engine's wait deadline.
//
//psdns:hotpath
func (a *AsyncSlabReal) waitAll(reqs []*mpi.Request) {
	for _, r := range reqs {
		a.wait(r)
	}
}
