package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exchange"
	"repro/internal/mpi"
)

// The fused and chunked-fused exchanges must be bitwise identical to
// the staged wire path on the async engine — for both granularities:
// the gather reads the same packed send blocks the all-to-all would
// have moved, so not a single bit may differ.
func TestAsyncExchangeStrategiesBitwiseIdentity(t *testing.T) {
	const n, p = 16, 4
	for _, gran := range []Granularity{PerPencil, PerSlab} {
		gran := gran
		name := "perpencil"
		if gran == PerSlab {
			name = "perslab"
		}
		t.Run(name, func(t *testing.T) {
			if err := mpi.TryRun(p, func(c *mpi.Comm) {
				mk := func(st exchange.Strategy) *AsyncSlabReal {
					return NewAsyncSlabReal(c, n, Options{
						NP: 3, Granularity: gran, Workers: 2, Exchange: st,
					})
				}
				ref := mk(exchange.Staged)
				defer ref.Close()
				rng := rand.New(rand.NewSource(int64(7 + c.Rank())))
				phys0 := make([]float64, ref.PhysicalLen())
				for i := range phys0 {
					phys0[i] = rng.NormFloat64()
				}
				refFour := make([]complex128, ref.FourierLen())
				ref.PhysicalToFourier(refFour, phys0)
				refPhys := make([]float64, ref.PhysicalLen())
				fourCopy := make([]complex128, len(refFour))
				copy(fourCopy, refFour)
				ref.FourierToPhysical(refPhys, fourCopy)

				for _, st := range []exchange.Strategy{exchange.Fused, exchange.ChunkedFused} {
					a := mk(st)
					four := make([]complex128, a.FourierLen())
					a.PhysicalToFourier(four, phys0)
					for i := range four {
						if four[i] != refFour[i] {
							panic(fmt.Sprintf("rank %d %s %s: forward differs at %d: %v vs %v",
								c.Rank(), name, st, i, four[i], refFour[i]))
						}
					}
					phys := make([]float64, a.PhysicalLen())
					copy(fourCopy, refFour)
					a.FourierToPhysical(phys, fourCopy)
					for i := range phys {
						if phys[i] != refPhys[i] {
							panic(fmt.Sprintf("rank %d %s %s: inverse differs at %d: %v vs %v",
								c.Rank(), name, st, i, phys[i], refPhys[i]))
						}
					}
					a.Close()
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Single-precision wire staging must behave identically under fused
// exchanges: the gather widens the same complex64 blocks the staged
// unpack would have widened, so fused and staged SingleComm engines
// agree bitwise (both quantize once, at pack time).
func TestAsyncExchangeFusedSingleCommIdentity(t *testing.T) {
	const n, p = 16, 2
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		mk := func(st exchange.Strategy) *AsyncSlabReal {
			return NewAsyncSlabReal(c, n, Options{
				NP: 3, Granularity: PerPencil, SingleComm: true, Exchange: st,
			})
		}
		ref := mk(exchange.Staged)
		defer ref.Close()
		rng := rand.New(rand.NewSource(int64(13 + c.Rank())))
		phys0 := make([]float64, ref.PhysicalLen())
		for i := range phys0 {
			phys0[i] = rng.NormFloat64()
		}
		refFour := make([]complex128, ref.FourierLen())
		ref.PhysicalToFourier(refFour, phys0)

		for _, st := range []exchange.Strategy{exchange.Fused, exchange.ChunkedFused} {
			a := mk(st)
			four := make([]complex128, a.FourierLen())
			a.PhysicalToFourier(four, phys0)
			for i := range four {
				if four[i] != refFour[i] {
					panic(fmt.Sprintf("rank %d %s: single-comm forward differs at %d",
						c.Rank(), st, i))
				}
			}
			a.Close()
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Autotuned async engines must pin the same concrete strategy on every
// rank.
func TestAsyncAutotuneAgreesAcrossRanks(t *testing.T) {
	const n, p = 16, 4
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		a := NewAsyncSlabReal(c, n, Options{NP: 3, Granularity: PerSlab})
		defer a.Close()
		st := a.Strategy()
		if st == exchange.Auto {
			panic("autotune left strategy at Auto")
		}
		codes := make([]float64, p)
		mpi.Allgather(c, []float64{st.Code()}, codes)
		for r, code := range codes {
			if code != st.Code() {
				panic(fmt.Sprintf("rank %d pinned %v, rank %d pinned code %v",
					c.Rank(), st, r, code))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
