package core

import (
	"fmt"

	"repro/internal/sched"
)

// This file holds the design-choice ablations DESIGN.md calls out:
// §3.1's adoption of the 1D slab decomposition for the GPU code (vs
// the traditional 2D pencil decomposition), and the automatic choice
// of MPI configuration per scale.

// SimulateGPU2DPencilStep models the hypothetical alternative the
// paper argues against in §3.1: the same GPU pipeline on a 2D pencil
// decomposition with pr ranks/node × pc node-groups (pr·pc ranks
// total across tpn·nodes... precisely pr = TPN so the row transpose is
// intra-node, pc = Nodes). Each transform group needs TWO all-to-alls
// (row and column) with correspondingly smaller messages, plus an
// extra unpack pass — the cost the slab design avoids.
func SimulateGPU2DPencilStep(c PerfConfig) StepResult {
	sim := sched.NewSim()
	xfer := sched.NewResource("transfer")
	gpu := sched.NewResource("compute")
	net := sched.NewResource("network")

	pr := c.TPN   // row communicator: intra-node
	pc := c.Nodes // column communicator: one rank per node and row
	p := pr * pc

	slab := c.slabBytes() // per-rank volume of one group (same formula)
	pencil := slab / float64(c.NP)
	h2dT := pencil / c.xferRate()
	fftT := pencil / c.gpuRate()
	packT := pencil/c.xferRate() + float64(p)*c.PackCall
	unpackT := slab / (c.Machine.GPUPackRate * float64(c.Machine.GPUsPerNode()) / float64(c.TPN))

	// Row all-to-all: node-local, bounded by host memory streaming.
	const nodeLocalBW = 100e9
	rowT := 2 * slab * float64(c.TPN) / nodeLocalBW
	// Column all-to-all: across nodes; the TPN per-node flows to the
	// same destination node coalesce for the network model.
	colP2P := slab / float64(pc) * float64(c.TPN)
	colT := 2 * slab * float64(c.TPN) / c.Net.NodeBandwidth(colP2P, c.Nodes)

	var prevGroup *sched.Task
	for g := 0; g < c.Groups; g++ {
		// Region 1 pipeline ending in the row exchange.
		var d2hs []*sched.Task
		var prevComp *sched.Task
		for ip := 0; ip < c.NP; ip++ {
			deps := []*sched.Task{}
			if prevGroup != nil {
				deps = append(deps, prevGroup)
			}
			h2d := sim.NewTask(fmt.Sprintf("g%d r1 h2d:%d", g, ip), "h2d", xfer, h2dT, deps...)
			cdeps := []*sched.Task{h2d}
			if prevComp != nil {
				cdeps = append(cdeps, prevComp)
			}
			comp := sim.NewTask(fmt.Sprintf("g%d r1 fft:%d", g, ip), "fft", gpu, fftT, cdeps...)
			prevComp = comp
			d2hs = append(d2hs, sim.NewTask(fmt.Sprintf("g%d r1 pack:%d", g, ip), "d2h", xfer, packT, comp))
		}
		row := sim.NewTask(fmt.Sprintf("g%d row a2a", g), "a2a", net, rowT, d2hs...)
		unpack1 := sim.NewTask(fmt.Sprintf("g%d unpack1", g), "unpack", gpu, unpackT, row)
		// Region 2 pipeline ending in the column exchange.
		var d2hs2 []*sched.Task
		prevComp = nil
		for ip := 0; ip < c.NP; ip++ {
			h2d := sim.NewTask(fmt.Sprintf("g%d r2 h2d:%d", g, ip), "h2d", xfer, h2dT, unpack1)
			cdeps := []*sched.Task{h2d}
			if prevComp != nil {
				cdeps = append(cdeps, prevComp)
			}
			comp := sim.NewTask(fmt.Sprintf("g%d r2 fft:%d", g, ip), "fft", gpu, fftT, cdeps...)
			prevComp = comp
			d2hs2 = append(d2hs2, sim.NewTask(fmt.Sprintf("g%d r2 pack:%d", g, ip), "d2h", xfer, packT, comp))
		}
		col := sim.NewTask(fmt.Sprintf("g%d col a2a", g), "a2a", net, colT, d2hs2...)
		unpack2 := sim.NewTask(fmt.Sprintf("g%d unpack2", g), "unpack", gpu, unpackT, col)
		// Region 3: final transform direction.
		gate := unpack2
		var lastD2H *sched.Task
		prevComp = nil
		for ip := 0; ip < c.NP; ip++ {
			h2d := sim.NewTask(fmt.Sprintf("g%d r3 h2d:%d", g, ip), "h2d", xfer, h2dT, gate)
			cdeps := []*sched.Task{h2d}
			if prevComp != nil {
				cdeps = append(cdeps, prevComp)
			}
			comp := sim.NewTask(fmt.Sprintf("g%d r3 fft:%d", g, ip), "fft", gpu, fftT, cdeps...)
			prevComp = comp
			lastD2H = sim.NewTask(fmt.Sprintf("g%d r3 d2h:%d", g, ip), "d2h", xfer, h2dT, comp)
		}
		prevGroup = lastD2H
	}
	t := sim.Run()
	return StepResult{Time: t, Spans: sim.Spans(), Totals: sim.ClassTotals()}
}

// DecompositionAblation compares the adopted 1D slab design against
// the 2D pencil alternative at one scale, for the paper's §3.1
// argument: "we have accordingly adopted the 1D (slabs) decomposition".
type DecompositionAblation struct {
	Nodes, N   int
	Slab1D     float64 // best slab configuration (cfg C)
	Pencil2D   float64 // hypothetical 2D GPU code
	SlabWinPct float64 // (Pencil2D/Slab1D − 1)·100
}

// AblateDecomposition runs the comparison over the standard sweep.
func AblateDecomposition() []DecompositionAblation {
	out := make([]DecompositionAblation, 0, len(standardCases))
	for _, cse := range standardCases {
		slab := SimulateGPUStep(DefaultPerf(cse.N, cse.Nodes, 2, PerSlab)).Time
		pencil := SimulateGPU2DPencilStep(DefaultPerf(cse.N, cse.Nodes, 6, PerSlab)).Time
		out = append(out, DecompositionAblation{
			Nodes: cse.Nodes, N: cse.N,
			Slab1D: slab, Pencil2D: pencil,
			SlabWinPct: (pencil/slab - 1) * 100,
		})
	}
	return out
}

// BestConfig evaluates the three MPI configurations of the paper at
// one scale and returns the fastest (the per-size choice Table 4
// makes).
func BestConfig(n, nodes int) (tpn int, gran Granularity, time float64) {
	type cand struct {
		tpn  int
		gran Granularity
	}
	best := -1.0
	for _, c := range []cand{{6, PerPencil}, {2, PerPencil}, {2, PerSlab}} {
		t := SimulateGPUStep(DefaultPerf(n, nodes, c.tpn, c.gran)).Time
		if best < 0 || t < best {
			best, tpn, gran = t, c.tpn, c.gran
		}
	}
	return tpn, gran, best
}

// AblateContention quantifies the §5.2 host-memory contention effect:
// the config-B step time with and without the derating.
func AblateContention(n, nodes int) (with, without float64) {
	cfg := DefaultPerf(n, nodes, 2, PerPencil)
	with = SimulateGPUStep(cfg).Time
	cfg.Contention = 1
	without = SimulateGPUStep(cfg).Time
	return with, without
}

// AblatePencilCount sweeps np at fixed configuration, the batching-
// granularity trade §3.5 discusses (more pencils = less GPU memory but
// more per-pencil overheads).
func AblatePencilCount(n, nodes int, nps []int) []float64 {
	out := make([]float64, 0, len(nps))
	for _, np := range nps {
		cfg := DefaultPerf(n, nodes, 2, PerSlab)
		cfg.NP = np
		out = append(out, SimulateGPUStep(cfg).Time)
	}
	return out
}
