package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// PerfConfig describes one DNS deployment whose time per RK2 step the
// discrete-event model predicts. The model replays the Fig 4 schedule
// of the executor — same pencil cycles, same stream assignment, same
// event dependencies — with durations drawn from the calibrated
// machine description and network model.
type PerfConfig struct {
	Machine hw.Machine
	Net     *simnet.A2AModel

	N     int // linear problem size
	Nodes int
	TPN   int // MPI ranks per node (6 = cfg A, 2 = cfg B/C)
	NP    int // pencils per slab
	Gran  Granularity

	// NV is the number of variables moved per transpose group and
	// Groups the number of transpose groups per RK2 step. The DNS
	// exchanges its three velocity components (and later the three
	// nonlinear-term components) together, twice per RK substage:
	// 4 groups of 3 variables = 12 variable-transforms per step.
	NV     int
	Groups int

	// Contention derates the network bandwidth of exchanges that are
	// overlapped with GPU transfer traffic (the §5.2 observation that
	// NVLink and NIC compete for host memory bandwidth). Applied to
	// PerPencil exchanges at 2 tasks/node only — with 6 tasks/node
	// each rank drives a single dedicated GPU and the paper observed
	// the eager path compensating; 1 disables it.
	Contention float64

	// PackCall is the host/API overhead of one packing
	// cudaMemcpy2DAsync; the per-pencil call count is proportional to
	// the total rank count (§5.2).
	PackCall float64
}

// DefaultPerf returns the calibrated configuration for one of the
// paper's standard cases. tpn is 6 (cfg A) or 2 (cfg B/C).
func DefaultPerf(n, nodes, tpn int, gran Granularity) PerfConfig {
	m := hw.Summit()
	return PerfConfig{
		Machine:    m,
		Net:        simnet.SummitA2A(),
		N:          n,
		Nodes:      nodes,
		TPN:        tpn,
		NP:         m.PencilsPerSlab(n, nodes),
		Gran:       gran,
		NV:         3,
		Groups:     4,
		Contention: 0.8,
		PackCall:   4e-6,
	}
}

// StepResult is the outcome of one simulated RK2 step.
type StepResult struct {
	Time   float64 // seconds per step
	Spans  []sched.Span
	Totals map[string]float64 // busy seconds per activity class
}

// ranks returns the total MPI rank count.
func (c PerfConfig) ranks() int { return c.TPN * c.Nodes }

// slabBytes is the per-rank volume of one transpose group (nv
// variables, single precision, as the paper counts).
func (c PerfConfig) slabBytes() float64 {
	n3 := float64(c.N) * float64(c.N) * float64(c.N)
	return 4 * float64(c.NV) * n3 / float64(c.ranks())
}

// xferRate is the effective per-rank host↔device transfer bandwidth.
func (c PerfConfig) xferRate() float64 {
	return c.Machine.HostXferRate / float64(c.TPN)
}

// gpuRate is the per-rank FFT pass rate (ranks share the node's GPUs).
func (c PerfConfig) gpuRate() float64 {
	gpusPerRank := float64(c.Machine.GPUsPerNode()) / float64(c.TPN)
	return c.Machine.GPUFFTRate * gpusPerRank
}

// p2pBytes is the point-to-point message size of one exchange at the
// configured granularity.
func (c PerfConfig) p2pBytes() float64 {
	if c.Gran == PerSlab {
		return simnet.P2PSlab(c.N, c.ranks(), c.NV)
	}
	return simnet.P2PPencil(c.N, c.ranks(), c.NV, c.NP)
}

// contentionThreshold is the P2P size below which overlapped 2-task
// exchanges suffer from GPU-transfer contention (§5.2): large streamed
// messages coexist with NVLink traffic, smaller ones lose bandwidth.
const contentionThreshold = 32 << 20

// Effective bandwidth curve of overlapped non-blocking exchanges with
// 6 tasks/node, fitted to the DNS behaviour the paper reports (§5.2's
// observation that case A in the full code beats the blocking
// standalone numbers at scale via the eager path and message-rate
// parallelism of 6 injecting ranks per node).
const (
	overlap6Sat  = 25.4e9
	overlap6Half = 96.5 * 1024
)

// a2aTime is the duration of one exchange at the configured
// granularity, with the §5.2 adjustments for overlapped exchanges.
func (c PerfConfig) a2aTime() float64 {
	p2p := c.p2pBytes()
	if c.Gran == PerPencil && c.TPN >= 6 {
		bw := overlap6Sat * p2p / (p2p + overlap6Half)
		return 2 * p2p * float64(c.ranks()) * float64(c.TPN) / bw
	}
	t := c.Net.Time(p2p, c.ranks(), c.TPN, c.Nodes)
	if c.Gran == PerPencil && p2p < contentionThreshold && c.Contention > 0 {
		t /= c.Contention
	}
	return t
}

// SimulateGPUStep predicts the time per RK2 step of the asynchronous
// GPU code in the given configuration, returning the schedule for
// timeline rendering (Fig 10).
func SimulateGPUStep(c PerfConfig) StepResult {
	sim := sched.NewSim()
	xfer := sched.NewResource("transfer")
	gpu := sched.NewResource("compute")
	net := sched.NewResource("network")

	pencil := c.slabBytes() / float64(c.NP)
	h2dT := pencil / c.xferRate()
	fftT := pencil / c.gpuRate()
	packT := pencil/c.xferRate() + float64(c.ranks())*c.PackCall
	unpackT := c.slabBytes() / (c.Machine.GPUPackRate * float64(c.Machine.GPUsPerNode()) / float64(c.TPN))

	var prevGroup *sched.Task
	for g := 0; g < c.Groups; g++ {
		// Region 1: pencil cycles with fused pack and the exchange.
		var d2hs []*sched.Task
		var a2as []*sched.Task
		var prevComp *sched.Task
		for ip := 0; ip < c.NP; ip++ {
			deps := []*sched.Task{}
			if prevGroup != nil {
				deps = append(deps, prevGroup)
			}
			h2d := sim.NewTask(fmt.Sprintf("g%d r1 h2d:%d", g, ip), "h2d", xfer, h2dT, deps...)
			cdeps := []*sched.Task{h2d}
			if prevComp != nil {
				cdeps = append(cdeps, prevComp)
			}
			comp := sim.NewTask(fmt.Sprintf("g%d r1 fft:%d", g, ip), "fft", gpu, fftT, cdeps...)
			prevComp = comp
			d2h := sim.NewTask(fmt.Sprintf("g%d r1 pack:%d", g, ip), "d2h", xfer, packT, comp)
			d2hs = append(d2hs, d2h)
			if c.Gran == PerPencil {
				a2as = append(a2as, sim.NewTask(fmt.Sprintf("g%d a2a:%d", g, ip), "a2a", net, c.a2aTime(), d2h))
			}
		}
		if c.Gran == PerSlab {
			a2as = append(a2as, sim.NewTask(fmt.Sprintf("g%d a2a", g), "a2a", net, c.a2aTime(), d2hs...))
		}
		// MPI_WAIT + zero-copy unpack gate region 2.
		unpack := sim.NewTask(fmt.Sprintf("g%d unpack", g), "unpack", gpu, unpackT, a2as...)
		// Regions 2 and 3: pure pencil pipelines.
		gate := unpack
		for r := 2; r <= 3; r++ {
			var lastD2H *sched.Task
			prevComp = nil
			for ip := 0; ip < c.NP; ip++ {
				h2d := sim.NewTask(fmt.Sprintf("g%d r%d h2d:%d", g, r, ip), "h2d", xfer, h2dT, gate)
				cdeps := []*sched.Task{h2d}
				if prevComp != nil {
					cdeps = append(cdeps, prevComp)
				}
				comp := sim.NewTask(fmt.Sprintf("g%d r%d fft:%d", g, r, ip), "fft", gpu, fftT, cdeps...)
				prevComp = comp
				lastD2H = sim.NewTask(fmt.Sprintf("g%d r%d d2h:%d", g, r, ip), "d2h", xfer, h2dT, comp)
			}
			gate = lastD2H
		}
		prevGroup = gate
	}
	t := sim.Run()
	return StepResult{Time: t, Spans: sim.Spans(), Totals: sim.ClassTotals()}
}

// SimulateMPIOnly predicts the standalone all-to-all kernel of §4.1
// and Fig 9's dotted line: only the exchanges, full bandwidth, no GPU
// work.
func SimulateMPIOnly(c PerfConfig) StepResult {
	sim := sched.NewSim()
	net := sched.NewResource("network")
	cc := c
	cc.Contention = 1
	var prev *sched.Task
	for g := 0; g < c.Groups; g++ {
		nmsg := 1
		if c.Gran == PerPencil {
			nmsg = c.NP
		}
		for i := 0; i < nmsg; i++ {
			deps := []*sched.Task{}
			if prev != nil {
				deps = append(deps, prev)
			}
			prev = sim.NewTask(fmt.Sprintf("g%d a2a:%d", g, i), "a2a", net, cc.a2aTime(), deps...)
		}
	}
	t := sim.Run()
	return StepResult{Time: t, Spans: sim.Spans(), Totals: sim.ClassTotals()}
}

// CPUPerfConfig describes the synchronous pencil-decomposed CPU
// baseline of Table 3 (the code of Yeung et al. [23]).
type CPUPerfConfig struct {
	Machine hw.Machine
	Net     *simnet.A2AModel
	N       int
	Nodes   int
	TPN     int // ranks (cores) per node; the paper uses 32
	NV      int
	Groups  int
	// NodeLocalBW is the effective bandwidth of the intra-node row
	// all-to-all (through shared memory, not the NIC).
	NodeLocalBW float64
}

// DefaultCPUPerf returns the calibrated CPU baseline configuration.
func DefaultCPUPerf(n, nodes int) CPUPerfConfig {
	return CPUPerfConfig{
		Machine:     hw.Summit(),
		Net:         simnet.SummitA2A(),
		N:           n,
		Nodes:       nodes,
		TPN:         32,
		NV:          3,
		Groups:      4,
		NodeLocalBW: 100e9,
	}
}

// SimulateCPUStep predicts the time per RK2 step of the synchronous
// CPU code: per transpose group, three FFT passes, the intra-node row
// transpose (Pr = ranks/node) and the inter-node column transpose
// (Pc = nodes), plus host packing — all serial, as the code is
// synchronous.
func SimulateCPUStep(c CPUPerfConfig) StepResult {
	sim := sched.NewSim()
	cpu := sched.NewResource("cpu")
	net := sched.NewResource("network")

	p := c.TPN * c.Nodes
	n3 := float64(c.N) * float64(c.N) * float64(c.N)
	rankBytes := 4 * float64(c.NV) * n3 / float64(p)
	nodeBytes := rankBytes * float64(c.TPN)

	fftPass := nodeBytes / c.Machine.CPUFFTRate
	packT := nodeBytes / c.Machine.CPUPackRate
	rowT := 2 * nodeBytes / c.NodeLocalBW
	// Column transpose: Pc = nodes, one rank of each of the TPN column
	// communicators per node. The TPN rank-level messages between a
	// node pair traverse the same links concurrently, so the network
	// model sees their aggregate as the effective message size.
	colP2P := rankBytes / float64(c.Nodes) * float64(c.TPN)
	colT := 2 * nodeBytes / c.Net.NodeBandwidth(colP2P, c.Nodes)

	var prev *sched.Task
	dep := func() []*sched.Task {
		if prev == nil {
			return nil
		}
		return []*sched.Task{prev}
	}
	for g := 0; g < c.Groups; g++ {
		prev = sim.NewTask(fmt.Sprintf("g%d fftx", g), "cpu", cpu, fftPass, dep()...)
		prev = sim.NewTask(fmt.Sprintf("g%d pack-row", g), "pack", cpu, packT, dep()...)
		prev = sim.NewTask(fmt.Sprintf("g%d row a2a", g), "a2a", net, rowT, dep()...)
		prev = sim.NewTask(fmt.Sprintf("g%d ffty", g), "cpu", cpu, fftPass, dep()...)
		prev = sim.NewTask(fmt.Sprintf("g%d pack-col", g), "pack", cpu, packT, dep()...)
		prev = sim.NewTask(fmt.Sprintf("g%d col a2a", g), "a2a", net, colT, dep()...)
		prev = sim.NewTask(fmt.Sprintf("g%d fftz", g), "cpu", cpu, fftPass, dep()...)
	}
	t := sim.Run()
	return StepResult{Time: t, Spans: sim.Spans(), Totals: sim.ClassTotals()}
}
