// Package core implements the paper's primary contribution: the
// batched asynchronous out-of-core GPU algorithm for slab-decomposed
// 3D transforms (Fig 4). Each rank's slab is cycled through limited
// device memory in np pencils on two CUDA streams — one for compute,
// one for transfers — with events enforcing the per-pencil
// H2D → FFT → packed-D2H → all-to-all chain and triple-buffered device
// slots providing the overlap. Three region passes per direction
// mirror the paper's y, z, x transform ordering:
//
//	Fourier→physical: [y FFTs on x-split pencils] → pack/A2A/unpack →
//	                  [z FFTs on x-split pencils] →
//	                  [c2r x FFTs on z-split pencils]
//
// and the reverse for physical→Fourier. The all-to-all granularity is
// selectable: PerPencil posts a non-blocking MPI_IALLTOALL as soon as
// each pencil's packed D2H completes (configurations A and B of the
// paper), PerSlab waits for the whole slab and posts one large
// blocking exchange (configuration C, the winner at scale).
//
// AsyncSlabReal implements spectral.Transform, so the full DNS can run
// on the asynchronous pipeline; its results are bit-compatible with
// the synchronous pfft.SlabReal reference. The companion performance
// model (perfmodel.go) replays the identical schedule on the
// discrete-event simulator with Summit's calibrated rates to reproduce
// the paper's Tables 3–4 and Figs 9–10.
package core
