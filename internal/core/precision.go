package core

import (
	"repro/internal/cuda"
	"repro/internal/transpose"
)

// Single-precision communication staging: the paper's production code
// works entirely in single precision — Table 1's memory model and
// Table 2's message sizes all assume 4-byte words. Our numerics run in
// float64 for verifiable accuracy, but the pipeline can stage its
// all-to-all payloads through complex64 buffers, halving the bytes on
// the wire exactly as the paper's code would, at the cost of ~1e-7
// relative rounding per transform. The strided convert kernels
// themselves live in transpose (NarrowStrided/WidenStrided) so the
// synchronous slab engine's float32 pipeline shares one implementation
// with this engine.

// narrow2DAsync enqueues a strided narrowing copy (complex128 →
// complex64) on the stream — the fused pack+convert+D2H of the
// single-precision path.
func narrow2DAsync(s *cuda.Stream, dst []complex64, dstStride int, src []complex128, srcStride, rowLen, nrows int) {
	s.Launch("narrow2d", func() {
		transpose.NarrowStrided(dst, dstStride, src, srcStride, rowLen, nrows)
	})
}

// widenStrided performs the host-side unpack+convert (complex64 →
// complex128), the zero-copy scatter of the single-precision path.
func widenStrided(dst []complex128, dstStride int, src []complex64, srcStride, rowLen, nrows int) {
	transpose.WidenStrided(dst, dstStride, src, srcStride, rowLen, nrows)
}
