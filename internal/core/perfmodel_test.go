package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// paperTable3 holds the measured values of the paper's Table 3.
var paperTable3 = []struct {
	nodes, n int
	cpu      float64
	a, b, c  float64
}{
	{16, 3072, 34.38, 8.09, 6.70, 7.50},
	{128, 6144, 40.18, 12.17, 8.66, 8.07},
	{1024, 12288, 47.57, 13.63, 12.62, 10.14},
	{3072, 18432, 41.96, 25.44, 22.30, 14.24},
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestTable3WithinTolerance(t *testing.T) {
	rows := Table3()
	if len(rows) != len(paperTable3) {
		t.Fatalf("rows %d", len(rows))
	}
	for i, w := range paperTable3 {
		g := rows[i]
		if g.Nodes != w.nodes || g.N != w.n {
			t.Fatalf("row %d: got %d/%d", i, g.Nodes, g.N)
		}
		if e := relErr(g.CPU, w.cpu); e > 0.25 {
			t.Errorf("%d nodes: CPU %.2f vs paper %.2f (%.0f%%)", w.nodes, g.CPU, w.cpu, e*100)
		}
		if e := relErr(g.A, w.a); e > 0.25 {
			t.Errorf("%d nodes: A %.2f vs paper %.2f (%.0f%%)", w.nodes, g.A, w.a, e*100)
		}
		if e := relErr(g.B, w.b); e > 0.15 {
			t.Errorf("%d nodes: B %.2f vs paper %.2f (%.0f%%)", w.nodes, g.B, w.b, e*100)
		}
		if e := relErr(g.C, w.c); e > 0.15 {
			t.Errorf("%d nodes: C %.2f vs paper %.2f (%.0f%%)", w.nodes, g.C, w.c, e*100)
		}
	}
}

func TestTable3ConfigurationOrderings(t *testing.T) {
	rows := Table3()
	// 16 nodes: B is the best GPU configuration (paper: 6.70 < 7.50 < 8.09).
	if !(rows[0].B < rows[0].C && rows[0].C < rows[0].A) {
		t.Errorf("16 nodes: want B<C<A, got A=%.2f B=%.2f C=%.2f", rows[0].A, rows[0].B, rows[0].C)
	}
	// Beyond 16 nodes, sending the whole slab wins (§5.2's takeaway).
	for _, r := range rows[1:] {
		if !(r.C < r.B && r.C < r.A) {
			t.Errorf("%d nodes: C should win (A=%.2f B=%.2f C=%.2f)", r.Nodes, r.A, r.B, r.C)
		}
	}
	// GPU beats CPU everywhere; the best speedup stays above 2.9 even
	// at 18432³ and reaches ≈5 at small scale.
	for _, r := range rows {
		best := math.Min(r.A, math.Min(r.B, r.C))
		if r.CPU/best < 2.5 {
			t.Errorf("%d nodes: best speedup %.1f below the paper's ≥2.9 ballpark", r.Nodes, r.CPU/best)
		}
	}
	if s := rows[0].CPU / math.Min(rows[0].B, rows[0].C); s < 4.0 || s > 6.5 {
		t.Errorf("16 nodes: best speedup %.1f, paper reports ≈5", s)
	}
	// 12288³ (largest size previously published): speedup in the 3–5×
	// band the abstract quotes (4.7 measured).
	r := rows[2]
	if s := r.CPU / r.C; s < 3.0 || s > 5.5 {
		t.Errorf("12288³ speedup %.1f outside the paper's band (4.7)", s)
	}
	// 18432³: under 15 seconds per step with the best configuration
	// (the headline time-to-solution claim).
	if rows[3].C >= 15.5 {
		t.Errorf("18432³ cfg C %.2f s, paper achieves 14.24 (<15)", rows[3].C)
	}
}

func TestTable4WeakScaling(t *testing.T) {
	rows := Table4()
	// Paper: pencils per A2A are 1, 3, 3, 4 (per-pencil best at 16
	// nodes, whole slab with Table 1's np at scale).
	wantPencils := []int{1, 3, 3, 4}
	for i, w := range wantPencils {
		if rows[i].PencilsPerA2A != w {
			t.Errorf("row %d: pencils/A2A %d want %d", i, rows[i].PencilsPerA2A, w)
		}
	}
	// Weak scaling percentages within 8 points of the paper's
	// 83.0, 66.1, 52.9 and monotonically decreasing.
	paper := []float64{83.0, 66.1, 52.9}
	prev := 100.0
	for i, w := range paper {
		got := rows[i+1].WeakScaling
		if math.Abs(got-w) > 8 {
			t.Errorf("weak scaling row %d: %.1f%% vs paper %.1f%%", i+1, got, w)
		}
		if got >= prev {
			t.Errorf("weak scaling not decreasing at row %d", i+1)
		}
		prev = got
	}
	// §5.3's argument: ≈50% at a 216× increase in problem size is the
	// regime the paper calls "very respectable".
	if ws := rows[3].WeakScaling; ws < 40 || ws > 62 {
		t.Errorf("18432³ weak scaling %.1f%% outside the paper's regime (52.9%%)", ws)
	}
}

func TestEq4WeakScalingFormula(t *testing.T) {
	// Sanity-check Eq 4 against the paper's own arithmetic:
	// 6144³ on 128 nodes at 8.07 s vs 3072³ on 16 at 6.70 s → 83.0%.
	got := WeakScalingPct(3072, 16, 6.70, 6144, 128, 8.07)
	if math.Abs(got-83.0) > 0.2 {
		t.Errorf("Eq 4 gives %.1f%%, paper computes 83.0%%", got)
	}
	got = WeakScalingPct(3072, 16, 6.70, 18432, 3072, 14.24)
	if math.Abs(got-52.9) > 0.3 {
		t.Errorf("Eq 4 gives %.1f%%, paper computes 52.9%%", got)
	}
}

func TestFig9MPIOnlyIsLowerBound(t *testing.T) {
	series := Fig9()
	var mpiOnly, cfgC Fig9Series
	for _, s := range series {
		if strings.Contains(s.Label, "MPI only") {
			mpiOnly = s
		}
		if strings.Contains(s.Label, "slab/A2A") {
			cfgC = s
		}
	}
	if mpiOnly.Label == "" || cfgC.Label == "" {
		t.Fatal("missing series")
	}
	for i := range mpiOnly.Times {
		if mpiOnly.Times[i] >= cfgC.Times[i] {
			t.Errorf("node %d: MPI-only %.2f not below DNS %.2f",
				mpiOnly.Nodes[i], mpiOnly.Times[i], cfgC.Times[i])
		}
		// The gap (GPU kernels + transfers) is small relative to the
		// total at scale: the paper's "less than one-seventh" remark
		// means non-MPI work is a minor fraction at 3072 nodes.
		if i == len(mpiOnly.Times)-1 {
			gap := cfgC.Times[i] - mpiOnly.Times[i]
			if gap/cfgC.Times[i] > 0.35 {
				t.Errorf("non-MPI share %.0f%% at 3072 nodes, paper ≈1/7–1/4", 100*gap/cfgC.Times[i])
			}
		}
	}
}

func TestFig9TimesGrowWithScale(t *testing.T) {
	for _, s := range Fig9() {
		if strings.Contains(s.Label, "6 tasks") {
			// Config A is non-monotone in the paper too (12.17→13.63→25.44
			// after 8.09); only require growth beyond 16 nodes.
			for i := 2; i < len(s.Times); i++ {
				if s.Times[i] < s.Times[i-1] {
					t.Errorf("%s: time fell from %d to %d nodes", s.Label, s.Nodes[i-1], s.Nodes[i])
				}
			}
			continue
		}
		for i := 1; i < len(s.Times); i++ {
			if s.Times[i] < s.Times[i-1] {
				t.Errorf("%s: time fell from %d to %d nodes", s.Label, s.Nodes[i-1], s.Nodes[i])
			}
		}
	}
}

func TestFig10TimelinesRender(t *testing.T) {
	tls := Fig10()
	if len(tls) != 4 {
		t.Fatalf("want 4 timelines, got %d", len(tls))
	}
	out := trace.RenderComparison(tls, 100)
	for _, want := range []string{"MPI only", "cfg B", "cfg C", "cfg A", "M", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered Fig 10", want)
		}
	}
	// The DNS timelines include network plus GPU activity classes.
	for _, tl := range tls[1:] {
		classes := map[string]bool{}
		for _, sp := range tl.Spans {
			classes[sp.Class] = true
		}
		for _, c := range []string{"h2d", "d2h", "fft", "a2a", "unpack"} {
			if !classes[c] {
				t.Errorf("%s: missing %s spans", tl.Title, c)
			}
		}
	}
}

func TestFig10MPIDominatesRuntime(t *testing.T) {
	// §5.2: "the MPI time is immediately seen to be the major user of
	// runtime" at 12288³ on 1024 nodes for the 2-task configurations.
	for _, gran := range []Granularity{PerPencil, PerSlab} {
		res := SimulateGPUStep(DefaultPerf(12288, 1024, 2, gran))
		if share := MPITimeShare(res); share < 0.5 {
			t.Errorf("gran %d: MPI share %.0f%% not dominant", gran, share*100)
		}
	}
}

func TestFig10SlabTransposesFasterThanPencil(t *testing.T) {
	// §5.2: "the same amount of data can be transposed faster when
	// processed as one, larger, message" (timeline 3 vs timeline 2).
	b := SimulateGPUStep(DefaultPerf(12288, 1024, 2, PerPencil))
	c := SimulateGPUStep(DefaultPerf(12288, 1024, 2, PerSlab))
	if ClassTime(c.Spans, "a2a") >= ClassTime(b.Spans, "a2a") {
		t.Errorf("slab a2a %.2fs not faster than pencil a2a %.2fs",
			ClassTime(c.Spans, "a2a"), ClassTime(b.Spans, "a2a"))
	}
}

func TestFig10SixTaskPackingSlower(t *testing.T) {
	// §5.2: the 6 tasks/node case spends longer in the D2H packing
	// cudaMemcpy2DAsync section because the call count triples.
	a := SimulateGPUStep(DefaultPerf(12288, 1024, 6, PerPencil))
	b := SimulateGPUStep(DefaultPerf(12288, 1024, 2, PerPencil))
	// Per-node packing time: config A's per-rank d2h×6 vs B's ×2.
	packA := ClassTime(a.Spans, "d2h") * 6
	packB := ClassTime(b.Spans, "d2h") * 2
	if packA <= packB {
		t.Errorf("6-task node packing %.3fs not above 2-task %.3fs", packA, packB)
	}
}

func TestStrongScaling18432Direction(t *testing.T) {
	// §5.3 reports 48.7 s on 1536 vs 25.4 s on 3072 nodes. The model's
	// absolute 1536-node time under-predicts (documented in
	// EXPERIMENTS.md) but halving nodes must cost well over 1.2×.
	t1536, t3072, _ := StrongScaling18432()
	if t1536 <= 1.2*t3072 {
		t.Errorf("1536 nodes %.1fs vs 3072 %.1fs: no strong-scaling cost", t1536, t3072)
	}
	if relErr(t3072, 25.44) > 0.25 {
		t.Errorf("3072-node cfg A time %.1f vs paper 25.44", t3072)
	}
}

func TestMPIOnlyMatchesEq3Arithmetic(t *testing.T) {
	// The MPI-only simulation of config C must equal Groups × the Eq 3
	// exchange time exactly (no other tasks).
	c := DefaultPerf(3072, 16, 2, PerSlab)
	res := SimulateMPIOnly(c)
	want := float64(c.Groups) * c.Net.Time(c.p2pBytes(), c.ranks(), c.TPN, c.Nodes)
	if math.Abs(res.Time-want) > 1e-9 {
		t.Errorf("MPI-only %.4f want %.4f", res.Time, want)
	}
}

func TestFormattersProduceTables(t *testing.T) {
	t3 := FormatTable3(Table3())
	if !strings.Contains(t3, "18432") || !strings.Contains(t3, "spd") {
		t.Errorf("Table 3 formatting:\n%s", t3)
	}
	t4 := FormatTable4(Table4())
	if !strings.Contains(t4, "WeakScaling") {
		t.Errorf("Table 4 formatting:\n%s", t4)
	}
	f9 := FormatFig9(Fig9())
	if !strings.Contains(f9, "MPI only") {
		t.Errorf("Fig 9 formatting:\n%s", f9)
	}
}
