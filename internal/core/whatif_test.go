package core

import (
	"testing"

	"repro/internal/simnet"
)

// These tests pin the §6 conclusions as model-level what-ifs.

func TestFasterGPUsApproachButCannotBeatMPIOnly(t *testing.T) {
	// Fig 9's argument: "Faster GPUs or optimization to the GPU kernels
	// alone can at best approach the performance of the dotted green
	// line."
	base := DefaultPerf(18432, 3072, 2, PerSlab)
	mpiOnly := SimulateMPIOnly(base).Time
	cfg := base
	cfg.Machine = cfg.Machine.WithGPUScale(100).WithTransferScale(100)
	accelerated := SimulateGPUStep(cfg).Time
	if accelerated < mpiOnly {
		t.Errorf("infinite GPUs beat the MPI bound: %.2f < %.2f", accelerated, mpiOnly)
	}
	normal := SimulateGPUStep(base).Time
	if accelerated >= normal {
		t.Errorf("faster hardware did not help at all: %.2f vs %.2f", accelerated, normal)
	}
	// With absurdly fast GPUs the step is within 10% of the bound.
	if (accelerated-mpiOnly)/mpiOnly > 0.10 {
		t.Errorf("accelerated step %.2f not approaching MPI-only %.2f", accelerated, mpiOnly)
	}
}

func TestFasterNetworkIsTheRealLever(t *testing.T) {
	// §6: further gains depend on all-to-all improvements. A 2× network
	// must cut the 18432³ step time far more than a 2× GPU.
	base := DefaultPerf(18432, 3072, 2, PerSlab)
	baseTime := SimulateGPUStep(base).Time

	gpu2 := base
	gpu2.Machine = gpu2.Machine.WithGPUScale(2).WithTransferScale(2)
	gpuGain := baseTime - SimulateGPUStep(gpu2).Time

	net2 := base
	net2.Net = scaledNet(2)
	netGain := baseTime - SimulateGPUStep(net2).Time

	if netGain <= 2*gpuGain {
		t.Errorf("network lever (%.2fs) not dominant over GPU lever (%.2fs)", netGain, gpuGain)
	}
}

// scaledNet builds a Table-2-calibrated model with all bandwidths
// scaled by f.
func scaledNet(f float64) *simnet.A2AModel {
	return simnet.ScaledSummitA2A(f)
}

func TestHostMemoryGatesTheProblemSize(t *testing.T) {
	// §3.1's dense-node premise: halve the DDR and 18432³ no longer
	// fits on 3072 nodes.
	m := DefaultPerf(18432, 3072, 2, PerSlab).Machine
	if err := m.CheckFit(18432, 3072, 4); err != nil {
		t.Fatalf("baseline should fit: %v", err)
	}
	small := m.WithHostMemory(m.HostMemory / 2)
	if err := small.CheckFit(18432, 3072, 4); err == nil {
		t.Error("half the host memory should not fit 18432³ on 3072 nodes")
	}
}
