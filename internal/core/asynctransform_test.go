package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pfft"
)

// runBoth transforms the same random Fourier slab through the
// synchronous reference and the asynchronous pipeline and returns the
// max abs difference of the physical fields plus the round-trip error.
func runBoth(t *testing.T, n, p int, opt Options) (maxDiff, roundTrip float64) {
	t.Helper()
	var mu sync.Mutex
	var worstDiff, worstRT float64
	mpi.Run(p, func(c *mpi.Comm) {
		ref := pfft.NewSlabReal(c, n)
		async := NewAsyncSlabReal(c, n, opt)
		defer async.Close()

		rng := rand.New(rand.NewSource(int64(c.Rank()) + 101))
		phys0 := make([]float64, ref.PhysicalLen())
		for i := range phys0 {
			phys0[i] = rng.NormFloat64()
		}
		// Build a valid (conjugate-symmetric) spectrum from real data.
		fourRef := make([]complex128, ref.FourierLen())
		ref.PhysicalToFourier(fourRef, phys0)
		fourAsync := make([]complex128, async.FourierLen())
		physAsync := make([]float64, async.PhysicalLen())
		async.PhysicalToFourier(fourAsync, phys0)
		var d float64
		for i := range fourRef {
			if e := cmplx.Abs(fourAsync[i] - fourRef[i]); e > d {
				d = e
			}
		}
		// Forward direction comparison.
		fourCopy := make([]complex128, len(fourRef))
		copy(fourCopy, fourRef)
		physRef := make([]float64, ref.PhysicalLen())
		ref.FourierToPhysical(physRef, fourCopy)
		copy(fourCopy, fourRef)
		async.FourierToPhysical(physAsync, fourCopy)
		for i := range physRef {
			if e := math.Abs(physAsync[i] - physRef[i]); e > d {
				d = e
			}
		}
		// Round trip through the async engine alone.
		copy(fourCopy, fourRef)
		async.FourierToPhysical(physAsync, fourCopy)
		async.PhysicalToFourier(fourCopy, physAsync)
		var rt float64
		for i := range fourCopy {
			if e := cmplx.Abs(fourCopy[i] - fourRef[i]); e > rt {
				rt = e
			}
		}
		mu.Lock()
		if d > worstDiff {
			worstDiff = d
		}
		if rt > worstRT {
			worstRT = rt
		}
		mu.Unlock()
	})
	return worstDiff, worstRT
}

func TestAsyncMatchesSyncPerSlab(t *testing.T) {
	d, rt := runBoth(t, 16, 4, Options{NP: 3, Granularity: PerSlab})
	if d > 1e-10 {
		t.Errorf("async(PerSlab) differs from sync by %g", d)
	}
	if rt > 1e-10 {
		t.Errorf("round trip error %g", rt)
	}
}

func TestAsyncMatchesSyncPerPencil(t *testing.T) {
	d, rt := runBoth(t, 16, 4, Options{NP: 4, Granularity: PerPencil})
	if d > 1e-10 {
		t.Errorf("async(PerPencil) differs from sync by %g", d)
	}
	if rt > 1e-10 {
		t.Errorf("round trip error %g", rt)
	}
}

func TestAsyncManyPencilCounts(t *testing.T) {
	// nxh = 9 for n=16: exercise uneven x splits including np∤nxh.
	for _, np := range []int{1, 2, 3, 5, 7, 9} {
		for _, gran := range []Granularity{PerPencil, PerSlab} {
			d, _ := runBoth(t, 16, 2, Options{NP: np, Granularity: gran})
			if d > 1e-10 {
				t.Errorf("np=%d gran=%d: diff %g", np, gran, d)
			}
		}
	}
}

func TestAsyncMultiGPU(t *testing.T) {
	// Fig 5: pencils split vertically across multiple devices per rank.
	for _, ngpu := range []int{2, 3} {
		d, rt := runBoth(t, 12, 2, Options{NP: 3, Granularity: PerPencil, NGPU: ngpu})
		if d > 1e-10 {
			t.Errorf("ngpu=%d: diff %g", ngpu, d)
		}
		if rt > 1e-10 {
			t.Errorf("ngpu=%d: round trip %g", ngpu, rt)
		}
	}
}

func TestAsyncMoreGPUsThanWidth(t *testing.T) {
	// Degenerate vertical splits (some devices get zero width).
	d, _ := runBoth(t, 8, 2, Options{NP: 5, Granularity: PerSlab, NGPU: 4})
	if d > 1e-10 {
		t.Errorf("diff %g", d)
	}
}

func TestAsyncSingleRank(t *testing.T) {
	d, rt := runBoth(t, 16, 1, Options{NP: 3, Granularity: PerPencil})
	if d > 1e-10 || rt > 1e-10 {
		t.Errorf("single rank: diff %g rt %g", d, rt)
	}
}

func TestAsyncManyRanks(t *testing.T) {
	d, _ := runBoth(t, 16, 8, Options{NP: 3, Granularity: PerSlab})
	if d > 1e-10 {
		t.Errorf("8 ranks: diff %g", d)
	}
}

func TestSyncGPUBaseline(t *testing.T) {
	// The Fig 2 synchronous algorithm is the np=1 PerSlab special case.
	mpi.Run(2, func(c *mpi.Comm) {
		sg := NewSyncGPU(c, 16)
		defer sg.Close()
		if sg.NP() != 1 {
			t.Errorf("sync baseline np=%d", sg.NP())
		}
		ref := pfft.NewSlabReal(c, 16)
		rng := rand.New(rand.NewSource(7))
		phys := make([]float64, ref.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		fr := make([]complex128, ref.FourierLen())
		fs := make([]complex128, sg.FourierLen())
		ref.PhysicalToFourier(fr, phys)
		sg.PhysicalToFourier(fs, phys)
		for i := range fr {
			if cmplx.Abs(fr[i]-fs[i]) > 1e-10 {
				t.Fatalf("sync GPU baseline differs at %d", i)
			}
		}
	})
}

func TestRepeatedTransformsReuseBuffersSafely(t *testing.T) {
	// Many back-to-back transforms through the same engine must not
	// corrupt state (slot rotation, event bookkeeping).
	mpi.Run(2, func(c *mpi.Comm) {
		a := NewAsyncSlabReal(c, 8, Options{NP: 3, Granularity: PerPencil})
		defer a.Close()
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		phys := make([]float64, a.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		orig := make([]float64, len(phys))
		copy(orig, phys)
		four := make([]complex128, a.FourierLen())
		for iter := 0; iter < 5; iter++ {
			a.PhysicalToFourier(four, phys)
			a.FourierToPhysical(phys, four)
			for i := range phys {
				if math.Abs(phys[i]-orig[i]) > 1e-8 {
					t.Fatalf("iter %d: drift %g at %d", iter, phys[i]-orig[i], i)
				}
			}
		}
	})
}

func TestSplitRangeProperties(t *testing.T) {
	for total := 1; total <= 20; total++ {
		for n := 1; n <= total+3; n++ {
			spans := splitRange(total, n)
			if len(spans) != n {
				t.Fatalf("splitRange(%d,%d): %d spans", total, n, len(spans))
			}
			lo := 0
			for _, s := range spans {
				if s.lo != lo || s.hi < s.lo {
					t.Fatalf("splitRange(%d,%d): bad span %+v", total, n, s)
				}
				lo = s.hi
			}
			if lo != total {
				t.Fatalf("splitRange(%d,%d): covers %d", total, n, lo)
			}
			// Widths differ by at most 1.
			minW, maxW := total, 0
			for _, s := range spans {
				if s.width() < minW {
					minW = s.width()
				}
				if s.width() > maxW {
					maxW = s.width()
				}
			}
			if maxW-minW > 1 {
				t.Fatalf("splitRange(%d,%d): uneven widths", total, n)
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for np > nxh")
		}
	}()
	mpi.Run(1, func(c *mpi.Comm) {
		NewAsyncSlabReal(c, 8, Options{NP: 100})
	})
}
