package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mpi"
)

// Worker-team parallelism inside the async engine must be bitwise
// invisible: the per-plane FFT loops and the host unpack kernels
// partition independent work units onto identical plans, so the engine
// must produce bit-identical output for any team size, in every
// granularity and wire-precision configuration.
func TestAsyncWorkersBitwiseIdentity(t *testing.T) {
	const n, p = 16, 2
	configs := []struct {
		name string
		opt  Options
	}{
		{"per-pencil", Options{NP: 3, Granularity: PerPencil}},
		{"per-slab", Options{NP: 3, Granularity: PerSlab}},
		{"per-slab-single", Options{NP: 3, Granularity: PerSlab, SingleComm: true}},
		{"per-pencil-2gpu", Options{NP: 3, Granularity: PerPencil, NGPU: 2}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			mpi.Run(p, func(c *mpi.Comm) {
				refOpt := cfg.opt
				refOpt.Workers = 1
				ref := NewAsyncSlabReal(c, n, refOpt)
				fl, pl := ref.FourierLen(), ref.PhysicalLen()

				rng := rand.New(rand.NewSource(int64(500 + c.Rank())))
				physIn := make([]float64, pl)
				for i := range physIn {
					physIn[i] = rng.NormFloat64()
				}
				refFour := make([]complex128, fl)
				refPhys := make([]float64, pl)
				ref.PhysicalToFourier(refFour, physIn)
				fourScratch := make([]complex128, fl)
				copy(fourScratch, refFour)
				ref.FourierToPhysical(refPhys, fourScratch)
				ref.Close()

				for _, w := range []int{1, 2, 4, 7} {
					opt := cfg.opt
					opt.Workers = w
					eng := NewAsyncSlabReal(c, n, opt)
					four := make([]complex128, fl)
					eng.PhysicalToFourier(four, physIn)
					for i := range four {
						if four[i] != refFour[i] {
							panic(fmt.Sprintf("rank %d %s workers=%d: forward differs at %d: %v vs %v",
								c.Rank(), cfg.name, w, i, four[i], refFour[i]))
						}
					}
					phys := make([]float64, pl)
					eng.FourierToPhysical(phys, four)
					for i := range phys {
						if phys[i] != refPhys[i] {
							panic(fmt.Sprintf("rank %d %s workers=%d: inverse differs at %d: %v vs %v",
								c.Rank(), cfg.name, w, i, phys[i], refPhys[i]))
						}
					}
					eng.Close()
				}
			})
		})
	}
}
