package core

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/spectral"
)

// TestDNSOnAsyncPipelineMatchesSync is the end-to-end validation of
// the paper's claim: the full pseudo-spectral Navier–Stokes solver
// produces the same solution whether its 3D transforms run through the
// synchronous reference path or the batched asynchronous GPU pipeline.
func TestDNSOnAsyncPipelineMatchesSync(t *testing.T) {
	n, p := 16, 2
	cfg := spectral.Config{N: n, Nu: 0.02, Scheme: spectral.RK2, Dealias: spectral.Dealias23}

	type result struct {
		uh     []complex128
		energy float64
	}
	var mu sync.Mutex
	results := map[string]result{}

	run := func(label string, gran Granularity, useAsync bool) {
		mpi.Run(p, func(c *mpi.Comm) {
			var s *spectral.Solver
			if useAsync {
				tr := NewAsyncSlabReal(c, n, Options{NP: 4, Granularity: gran})
				defer tr.Close()
				s = spectral.NewSolverWithTransform(c, cfg, tr)
			} else {
				s = spectral.NewSolver(c, cfg)
			}
			s.SetRandomIsotropic(3, 0.5, 77)
			for i := 0; i < 3; i++ {
				s.Step(0.004)
			}
			e := s.Energy()
			if c.Rank() == 0 {
				mu.Lock()
				cp := make([]complex128, len(s.Uh[0]))
				copy(cp, s.Uh[0])
				results[label] = result{uh: cp, energy: e}
				mu.Unlock()
			}
		})
	}
	run("sync", PerSlab, false)
	run("async-pencil", PerPencil, true)
	run("async-slab", PerSlab, true)

	ref := results["sync"]
	for _, label := range []string{"async-pencil", "async-slab"} {
		got := results[label]
		if math.Abs(got.energy-ref.energy) > 1e-12*ref.energy {
			t.Errorf("%s: energy %.15g vs sync %.15g", label, got.energy, ref.energy)
		}
		var d float64
		for i := range ref.uh {
			if e := cmplx.Abs(got.uh[i] - ref.uh[i]); e > d {
				d = e
			}
		}
		if d > 1e-9 {
			t.Errorf("%s: max field difference %g after 3 RK2 steps", label, d)
		}
	}
}
