package core

import "testing"

func TestSlabBeatsPencil2DEverywhere(t *testing.T) {
	// §3.1: the 1D slab decomposition with few fat ranks beats the
	// traditional 2D pencil layout on dense-node machines — one large
	// exchange instead of two smaller ones.
	for _, a := range AblateDecomposition() {
		if a.Slab1D >= a.Pencil2D {
			t.Errorf("%d nodes: slab %.2f not faster than 2D pencil %.2f",
				a.Nodes, a.Slab1D, a.Pencil2D)
		}
		if a.SlabWinPct < 5 {
			t.Errorf("%d nodes: slab advantage only %.1f%%, expected a clear win",
				a.Nodes, a.SlabWinPct)
		}
	}
}

func TestBestConfigMatchesTable4Choices(t *testing.T) {
	// The autotuner must recover the paper's per-scale choices: B
	// (2 tasks, per-pencil) at 16 nodes, C (2 tasks, per-slab) beyond.
	tpn, gran, _ := BestConfig(3072, 16)
	if tpn != 2 || gran != PerPencil {
		t.Errorf("16 nodes: best = %d tasks/gran %d, want 2/PerPencil", tpn, gran)
	}
	for _, cse := range []struct{ n, nodes int }{{6144, 128}, {12288, 1024}, {18432, 3072}} {
		tpn, gran, _ := BestConfig(cse.n, cse.nodes)
		if tpn != 2 || gran != PerSlab {
			t.Errorf("%d nodes: best = %d tasks/gran %d, want 2/PerSlab", cse.nodes, tpn, gran)
		}
	}
}

func TestContentionAblationDirection(t *testing.T) {
	// Removing the host-memory contention must speed config B up —
	// and by a meaningful amount at scale (§5.2's shared-bandwidth
	// observation).
	with, without := AblateContention(12288, 1024)
	if without >= with {
		t.Errorf("contention off (%.2f) not faster than on (%.2f)", without, with)
	}
	if (with-without)/with < 0.05 {
		t.Errorf("contention effect only %.1f%%, expected noticeable", 100*(with-without)/with)
	}
}

func TestPencilCountAblationMonotone(t *testing.T) {
	// At fixed slab-granularity exchanges, more pencils only add
	// batching overhead (the reason §3.5 picks the minimum np that
	// fits GPU memory).
	times := AblatePencilCount(18432, 3072, []int{4, 6, 8, 12, 16})
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Errorf("np sweep not monotone at index %d: %v", i, times)
		}
	}
	// The penalty stays modest — batching is cheap, which is the
	// paper's point: "the overhead incurred in choosing to batch ... is
	// not significant compared to the total runtime" (§5.2).
	if (times[len(times)-1]-times[0])/times[0] > 0.15 {
		t.Errorf("batching overhead too large: %v", times)
	}
}

func TestPencil2DModelProducesSpans(t *testing.T) {
	res := SimulateGPU2DPencilStep(DefaultPerf(12288, 1024, 6, PerSlab))
	classes := map[string]bool{}
	for _, s := range res.Spans {
		classes[s.Class] = true
	}
	for _, c := range []string{"h2d", "d2h", "fft", "a2a", "unpack"} {
		if !classes[c] {
			t.Errorf("missing %s spans", c)
		}
	}
	// Two exchanges per group.
	var a2as int
	for _, s := range res.Spans {
		if s.Class == "a2a" {
			a2as++
		}
	}
	if a2as != 2*4 {
		t.Errorf("expected 8 exchanges, got %d", a2as)
	}
}
