package core

import (
	"fmt"
	"runtime"

	"repro/internal/exchange"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/tuning"
)

// Whole-step autotuning for the asynchronous engine. The strategy
// autotuner (autotune in asynctransform.go) answers one question —
// which exchange strategy — on a fixed engine; the whole-step tuner
// searches every knob the paper's production runs tune together:
// exchange strategy, transfer granularity (configuration A/B vs C),
// pencil count, worker-team size and wire precision. Each distinct
// (granularity, np, workers, precision) group needs its own engine
// (buffers and plans differ), so the tuner walks the candidate list in
// space order — strategies varying fastest — building one trial engine
// per group, timing its strategies with the shared barrier-fenced
// best-of-k protocol, and closing it before the next group claims the
// pooled buffers.

// NewAsyncSlabRealTuned builds the asynchronous engine by searching
// cfg.Space with the collective trial protocol and constructing the
// collectively-agreed winner. When cfg.Cache holds a decision for this
// (N, P, GOMAXPROCS, machine) key the trials are skipped entirely and
// the cached point is constructed directly — a warm production restart
// performs zero trial exchanges (the tune.trials counter stays flat).
// Empty space dimensions default conservatively: concrete strategies ×
// both granularities at the option-given np, workers and precision, so
// the default search never changes the numerics, only the data path.
// Collective.
func NewAsyncSlabRealTuned(comm *mpi.Comm, n int, opt Options, cfg tuning.Config) *AsyncSlabReal {
	opt.Autotune = false
	if opt.Exchange == exchange.AT {
		panic("core: the asynchrony-tolerant exchange is never autotuned; pin Options explicitly")
	}
	np := opt.NP
	if np == 0 {
		np = 3
	}
	workers := opt.Workers
	if workers == 0 {
		workers = 1
	}
	key := tuning.Key{
		Engine:   "async",
		N:        n,
		P:        comm.Size(),
		Maxprocs: runtime.GOMAXPROCS(0),
		Machine:  hw.Fingerprint(),
	}
	if pt, ok := cfg.Lookup(comm, key); ok {
		return NewAsyncSlabReal(comm, n, applyPoint(opt, pt))
	}
	space := cfg.Space
	if len(space.PerSlab) == 0 {
		// Search both granularities, the option's own first so the
		// tie-break keeps the caller's configuration under a wash.
		cur := opt.Granularity == PerSlab
		space.PerSlab = []bool{cur, !cur}
	}
	if len(space.Single) == 0 {
		// Precision changes the answer (~1e-7 rounding), so it is only
		// searched when the space asks for it explicitly.
		space.Single = []bool{opt.SingleComm}
	}
	pts := asyncPoints(space, np, workers)
	mine := make([]float64, len(pts))
	var (
		eng *AsyncSlabReal
		cur tuning.Point
	)
	for i, pt := range pts {
		if eng == nil || !sameEngineGroup(cur, pt) {
			if eng != nil {
				eng.Close()
			}
			to := applyPoint(opt, pt)
			// Concrete placeholder: the trial engine must not recurse
			// into the strategy autotuner; runTrial times each
			// strategy explicitly.
			to.Exchange = exchange.Staged
			eng = NewAsyncSlabReal(comm, n, to)
			cur = pt
		}
		st := pt.Strategy
		mine[i] = tuning.TrialBest(comm, tuning.Trials, func() { eng.runTrial(st) })
	}
	if eng != nil {
		eng.Close()
	}
	win, cost := tuning.ResolveTimes(comm, mine)
	pt := pts[win]
	cfg.Store(comm, key, pt, cost)
	return NewAsyncSlabReal(comm, n, applyPoint(opt, pt))
}

// asyncPoints enumerates the async engine's sub-space. The engine has
// one exchange knob driving both transpose directions and runs on the
// slab layout only, so the per-direction and decomposition dimensions
// collapse (StrategyZY := Strategy, Pr = Pc = 0) and the collapsed
// list is deduplicated — the trial count stays one per distinct engine
// configuration, not one per foreign-dimension combination. A space
// that asks for pencil grids explicitly is a caller error: the
// decomposition dimension belongs to pfft.NewRealTuned.
func asyncPoints(space tuning.Space, np, workers int) []tuning.Point {
	for _, d := range space.Decomps {
		if !d.IsSlab() {
			panic(fmt.Sprintf("core: the asynchronous engine is slab-only, tune space lists decomposition %s; use pfft.NewRealTuned for pencil grids", d))
		}
	}
	seen := map[tuning.Point]bool{}
	var out []tuning.Point
	for _, pt := range space.Points(np, workers) {
		pt.StrategyZY = pt.Strategy
		pt.Pr, pt.Pc = 0, 0
		if seen[pt] {
			continue
		}
		seen[pt] = true
		out = append(out, pt)
	}
	return out
}

// applyPoint pins every tuned dimension of pt onto opt.
func applyPoint(opt Options, pt tuning.Point) Options {
	opt.Exchange = pt.Strategy
	if pt.PerSlab {
		opt.Granularity = PerSlab
	} else {
		opt.Granularity = PerPencil
	}
	opt.NP = pt.NP
	opt.Workers = pt.Workers
	opt.SingleComm = pt.Single
	opt.Autotune = false
	return opt
}

// sameEngineGroup reports whether two points can share one trial
// engine: every dimension but the strategy must match.
func sameEngineGroup(a, b tuning.Point) bool {
	return a.PerSlab == b.PerSlab && a.NP == b.NP &&
		a.Workers == b.Workers && a.Single == b.Single
}
