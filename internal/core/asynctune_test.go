package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exchange"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/tuning"
)

// The async whole-step tuner's default space (strategies × both
// granularities) contains only float64 points, so a tuned engine must
// be bitwise-identical to a plain engine pinned to whatever the
// trials select.
func TestAsyncTunedBitwiseIdentity(t *testing.T) {
	const n, p = 16, 4
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		opt := Options{NP: 3, Granularity: PerSlab}
		tuned := NewAsyncSlabRealTuned(c, n, opt, tuning.Config{})
		defer tuned.Close()

		// The plain engine with the tuner's own pinned configuration.
		pinned := opt
		pinned.Exchange = tuned.Strategy()
		ref := NewAsyncSlabReal(c, n, pinned)
		defer ref.Close()

		rng := rand.New(rand.NewSource(int64(23 + c.Rank())))
		phys := make([]float64, ref.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		a := make([]complex128, ref.FourierLen())
		b := make([]complex128, tuned.FourierLen())
		ref.PhysicalToFourier(a, phys)
		tuned.PhysicalToFourier(b, phys)
		for i := range a {
			if a[i] != b[i] {
				panic(fmt.Sprintf("rank %d: tuned engine (winner %s) differs at %d", c.Rank(), tuned.Strategy(), i))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Options.Autotune routes through the whole-step tuner and must agree
// on one concrete strategy across ranks.
func TestAsyncAutotuneOptionPinsConcrete(t *testing.T) {
	const n, p = 16, 4
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		tr := NewAsyncSlabReal(c, n, Options{NP: 2, Granularity: PerPencil, Autotune: true})
		defer tr.Close()
		st := tr.Strategy()
		if st == exchange.Auto || st == exchange.AT {
			panic(fmt.Sprintf("autotune pinned %v", st))
		}
		codes := make([]float64, p)
		mpi.Allgather(c, []float64{st.Code()}, codes)
		for r, code := range codes {
			if code != st.Code() {
				panic(fmt.Sprintf("rank %d pinned %v but rank %d pinned code %v", c.Rank(), st, r, code))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// A warm cache skips the async tuner's trials: the second construction
// with the same key performs zero trial exchanges.
func TestAsyncTunedWarmCacheSkipsTrials(t *testing.T) {
	const n, p = 16, 2
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	reg.SetOn(true)
	if err := mpi.RunWith(p, reg, func(c *mpi.Comm) {
		cfg := tuning.Config{Cache: tuning.Open(dir)}
		opt := Options{NP: 2, Granularity: PerSlab}
		trials := c.Metrics().CounterRank("tune.trials", c.Rank())

		cold := NewAsyncSlabRealTuned(c, n, opt, cfg)
		after := trials.Value()
		if after == 0 {
			panic(fmt.Sprintf("rank %d: cold async tuning ran no trials", c.Rank()))
		}

		warm := NewAsyncSlabRealTuned(c, n, opt, cfg)
		if got := trials.Value(); got != after {
			panic(fmt.Sprintf("rank %d: warm async tuning ran %d trial exchanges, want 0", c.Rank(), got-after))
		}
		if warm.Strategy() != cold.Strategy() {
			panic(fmt.Sprintf("rank %d: warm strategy %s != cold %s", c.Rank(), warm.Strategy(), cold.Strategy()))
		}

		// The cached point must reproduce the trial-selected engine
		// bitwise.
		rng := rand.New(rand.NewSource(int64(29 + c.Rank())))
		phys := make([]float64, cold.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		a := make([]complex128, cold.FourierLen())
		b := make([]complex128, warm.FourierLen())
		cold.PhysicalToFourier(a, phys)
		warm.PhysicalToFourier(b, phys)
		for i := range a {
			if a[i] != b[i] {
				panic(fmt.Sprintf("rank %d: cache-hit engine differs at %d", c.Rank(), i))
			}
		}
		cold.Close()
		warm.Close()
	}); err != nil {
		t.Fatal(err)
	}
}

// Tuning the AT exchange is a contradiction the constructor rejects.
func TestAsyncTunedRejectsAT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAsyncSlabRealTuned accepted the AT exchange")
		}
	}()
	mpi.Run(1, func(c *mpi.Comm) {
		NewAsyncSlabRealTuned(c, 8, Options{NP: 1, Exchange: exchange.AT}, tuning.Config{})
	})
}
