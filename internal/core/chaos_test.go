package core

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// transformOnce runs one PhysicalToFourier through the async engine on
// every rank and stores each rank's spectrum into out[rank]. The input
// field is a fixed per-rank pseudo-random pattern so two runs are
// comparable element by element.
func transformOnce(t *testing.T, n, p int, opt Options, out [][]complex128, runOpts ...mpi.RunOption) {
	t.Helper()
	var mu sync.Mutex
	err := mpi.TryRun(p, func(c *mpi.Comm) {
		a := NewAsyncSlabReal(c, n, opt)
		defer a.Close()
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 17))
		phys := make([]float64, a.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		four := make([]complex128, a.FourierLen())
		a.PhysicalToFourier(four, phys)
		mu.Lock()
		out[c.Rank()] = four
		mu.Unlock()
	}, runOpts...)
	if err != nil {
		t.Fatalf("transform under injected faults failed: %v", err)
	}
}

// TestTransformBitwiseCorrectUnderDelays injects multi-window delivery
// delays into every collective fragment and checks the async engine
// still produces bit-identical spectra: delayed messages reorder the
// unpack schedule but must never corrupt it.
func TestTransformBitwiseCorrectUnderDelays(t *testing.T) {
	const n, p = 16, 4
	delayRule := mpi.FaultRule{
		Src: mpi.AnyRank, Dst: mpi.AnyRank, Tag: mpi.AnyTag,
		Scope: mpi.ScopeColl, Delay: 2 * time.Millisecond,
	}
	for _, gran := range []Granularity{PerPencil, PerSlab} {
		opt := Options{NP: 3, Granularity: gran}
		clean := make([][]complex128, p)
		transformOnce(t, n, p, opt, clean)
		faulty := make([][]complex128, p)
		transformOnce(t, n, p, opt, faulty,
			mpi.WithFaults(&mpi.Faults{Seed: 7, Rules: []mpi.FaultRule{delayRule}}),
			mpi.WithWatchdog(mpi.Watchdog{DeadlockAfter: time.Second, Poll: 5 * time.Millisecond}),
		)
		for r := 0; r < p; r++ {
			for i := range clean[r] {
				if clean[r][i] != faulty[r][i] {
					t.Fatalf("gran=%d rank %d: delayed run differs at %d: %v vs %v (|Δ|=%g)",
						gran, r, i, clean[r][i], faulty[r][i], cmplx.Abs(clean[r][i]-faulty[r][i]))
				}
			}
		}
	}
}

// TestWaitDeadlineSurfacesStallError: a dropped bulk all-to-all
// fragment would hang the pipeline forever; with Options.WaitDeadline
// the engine's bounded Wait aborts the world and TryRun surfaces a
// typed StallError instead.
func TestWaitDeadlineSurfacesStallError(t *testing.T) {
	const n, p = 16, 2
	// Drop only bulk engine fragments: small control collectives (and
	// the P2P layer) stay functional so the failure is isolated to the
	// transform's all-to-all.
	drop := mpi.FaultRule{
		Src: 1, Dst: 0, Tag: mpi.AnyTag,
		Scope: mpi.ScopeColl, MinBytes: 1024, DropProb: 1,
	}
	start := time.Now()
	err := mpi.TryRun(p, func(c *mpi.Comm) {
		a := NewAsyncSlabReal(c, n, Options{
			NP: 3, Granularity: PerPencil, WaitDeadline: 200 * time.Millisecond,
		})
		defer a.Close()
		phys := make([]float64, a.PhysicalLen())
		four := make([]complex128, a.FourierLen())
		a.PhysicalToFourier(four, phys)
	},
		mpi.WithFaults(&mpi.Faults{Rules: []mpi.FaultRule{drop}}),
		mpi.WithWatchdog(mpi.Watchdog{Off: true}), // the engine deadline must act alone
	)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("bounded wait took %v to fail", elapsed)
	}
	var st *mpi.StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) does not wrap *mpi.StallError", err, err)
	}
	if st.Rank != 0 || st.Op != "wait" || !st.Coll {
		t.Fatalf("StallError = %+v, want rank 0 stuck in a collective wait", st)
	}
}
