package core

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/spectral"
)

// TestProductionCampaignWorkflow exercises the full production pattern
// the paper's code exists for, at laptop scale, on the asynchronous
// engine with the single-precision wire format:
//
//  1. spin up turbulence at 16³ on the async engine,
//  2. checkpoint, restart into fresh objects,
//  3. spectrally regrid onto 32³ (the record-resolution seeding move),
//  4. continue with a passive scalar and Lagrangian particles,
//  5. verify every invariant along the way.
func TestProductionCampaignWorkflow(t *testing.T) {
	dir := t.TempDir()
	mpi.Run(2, func(c *mpi.Comm) {
		// Stage 1: develop at low resolution on the async pipeline.
		trSmall := NewAsyncSlabReal(c, 16, Options{NP: 3, Granularity: PerPencil, SingleComm: true})
		defer trSmall.Close()
		cfgSmall := spectral.Config{N: 16, Nu: 0.02, Scheme: spectral.RK2,
			Dealias: spectral.Dealias23, Forcing: spectral.NewForcing(2)}
		s1 := spectral.NewSolverWithTransform(c, cfgSmall, trSmall)
		s1.SetRandomIsotropic(2.5, 0.5, 2024)
		for i := 0; i < 6; i++ {
			s1.Step(0.004)
		}
		if d := s1.DivergenceMax(); d > 1e-5 {
			t.Fatalf("stage 1 divergence %g (single-precision wire)", d)
		}

		// Stage 2: checkpoint and restart.
		if err := s1.SaveCheckpoint(dir); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		s2 := spectral.NewSolver(c, cfgSmall) // restart on the sync engine: engines interoperate
		if err := s2.LoadCheckpoint(dir); err != nil {
			t.Fatalf("restart: %v", err)
		}
		if s2.StepCount() != 6 {
			t.Fatalf("restart step count %d", s2.StepCount())
		}
		if math.Abs(s2.Energy()-s1.Energy()) > 1e-12 {
			t.Fatalf("restart energy %g vs %g", s2.Energy(), s1.Energy())
		}

		// Stage 3: regrid to the production resolution.
		trBig := NewAsyncSlabReal(c, 32, Options{NP: 4, Granularity: PerSlab})
		defer trBig.Close()
		cfgBig := spectral.Config{N: 32, Nu: 0.02, Scheme: spectral.RK2,
			Dealias: spectral.Dealias23, Forcing: spectral.NewForcing(2)}
		s3 := spectral.NewSolverWithTransform(c, cfgBig, trBig)
		spectral.Regrid(s3, s2)
		if math.Abs(s3.Energy()-s2.Energy()) > 1e-9 {
			t.Fatalf("regrid energy %g vs %g", s3.Energy(), s2.Energy())
		}

		// Stage 4: production segment with scalar and particles.
		th := s3.NewScalar(0.02)
		th.MeanGrad = 1
		parts := s3.NewParticles(16, 9)
		dt := s3.SuggestDt(0.3)
		if dt <= 0 || math.IsInf(dt, 1) {
			t.Fatalf("SuggestDt gave %g", dt)
		}
		for i := 0; i < 6; i++ {
			s3.StepParticles(parts, dt)
			s3.StepWithScalar(th, dt)
		}

		// Stage 5: invariants and diagnostics all sane.
		if d := s3.DivergenceMax(); d > 1e-9 {
			t.Errorf("final divergence %g", d)
		}
		if v := s3.ScalarVariance(th); v <= 0 || math.IsNaN(v) {
			t.Errorf("scalar variance %g", v)
		}
		if disp := parts.Dispersion(); disp <= 0 {
			t.Errorf("particle dispersion %g", disp)
		}
		st := s3.Statistics()
		if st.ReLambda <= 0 || math.IsNaN(st.ReLambda) {
			t.Errorf("Re_λ %g", st.ReLambda)
		}
		spec := s3.Spectrum()
		var tot float64
		for _, e := range spec {
			tot += e
		}
		if math.Abs(tot-st.Energy) > 1e-9*st.Energy {
			t.Errorf("ΣE(k)=%g vs E=%g", tot, st.Energy)
		}
		// Final checkpoint including the scalar.
		if err := s3.SaveCheckpoint(dir+"/final", th); err != nil {
			t.Errorf("final checkpoint: %v", err)
		}
	})
}
