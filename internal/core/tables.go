package core

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/trace"
)

// standardCases are the four problem-size/node-count pairs of the
// paper's evaluation (§3.5, Tables 1–4).
var standardCases = []struct {
	Nodes, N int
}{
	{16, 3072}, {128, 6144}, {1024, 12288}, {3072, 18432},
}

// Table3Row is one row of the paper's Table 3: time per RK2 step of
// the synchronous CPU baseline and the async GPU code under the three
// MPI configurations, with GPU:CPU speedups.
type Table3Row struct {
	Nodes, N                     int
	CPU                          float64
	A, B, C                      float64 // 6/pencil, 2/pencil, 2/slab
	SpeedupA, SpeedupB, SpeedupC float64
}

// Table3 regenerates the paper's Table 3 from the performance model.
func Table3() []Table3Row {
	rows := make([]Table3Row, 0, len(standardCases))
	for _, cse := range standardCases {
		cpu := SimulateCPUStep(DefaultCPUPerf(cse.N, cse.Nodes)).Time
		a := SimulateGPUStep(DefaultPerf(cse.N, cse.Nodes, 6, PerPencil)).Time
		b := SimulateGPUStep(DefaultPerf(cse.N, cse.Nodes, 2, PerPencil)).Time
		cc := SimulateGPUStep(DefaultPerf(cse.N, cse.Nodes, 2, PerSlab)).Time
		rows = append(rows, Table3Row{
			Nodes: cse.Nodes, N: cse.N,
			CPU: cpu, A: a, B: b, C: cc,
			SpeedupA: cpu / a, SpeedupB: cpu / b, SpeedupC: cpu / cc,
		})
	}
	return rows
}

// Table4Row is one row of the paper's Table 4: weak scaling relative
// to the 3072³/16-node case using each size's best configuration.
type Table4Row struct {
	Nodes, Ntasks, N int
	PencilsPerA2A    int // 1 when the best config exchanges per pencil
	Time             float64
	WeakScaling      float64 // percent; 0 for the reference row
}

// Table4 regenerates the paper's Table 4. The best configuration is
// chosen per problem size, as the paper does (per-pencil wins at 16
// nodes, per-slab at scale).
func Table4() []Table4Row {
	rows := make([]Table4Row, 0, len(standardCases))
	var t1 float64
	var n1, m1 int
	for i, cse := range standardCases {
		b := SimulateGPUStep(DefaultPerf(cse.N, cse.Nodes, 2, PerPencil))
		c := SimulateGPUStep(DefaultPerf(cse.N, cse.Nodes, 2, PerSlab))
		np := DefaultPerf(cse.N, cse.Nodes, 2, PerSlab).NP
		best, pencils := c.Time, np
		if b.Time < c.Time {
			best, pencils = b.Time, 1
		}
		row := Table4Row{
			Nodes: cse.Nodes, Ntasks: 2 * cse.Nodes, N: cse.N,
			PencilsPerA2A: pencils, Time: best,
		}
		if i == 0 {
			t1, n1, m1 = best, cse.N, cse.Nodes
		} else {
			row.WeakScaling = WeakScalingPct(n1, m1, t1, cse.N, cse.Nodes, best)
		}
		rows = append(rows, row)
	}
	return rows
}

// WeakScalingPct evaluates Eq 4 of the paper:
// WS = (N2³/N1³)·(t1/t2)·(M1/M2)·100.
func WeakScalingPct(n1, m1 int, t1 float64, n2, m2 int, t2 float64) float64 {
	r := float64(n2) / float64(n1)
	return r * r * r * (t1 / t2) * float64(m1) / float64(m2) * 100
}

// Fig9Series is one curve of Fig 9: time per step vs node count.
type Fig9Series struct {
	Label string
	Nodes []int
	Times []float64
}

// Fig9 regenerates the sweep of Fig 9: the three DNS configurations
// plus the MPI-only lower bound.
func Fig9() []Fig9Series {
	mk := func(label string, f func(n, nodes int) float64) Fig9Series {
		s := Fig9Series{Label: label}
		for _, cse := range standardCases {
			s.Nodes = append(s.Nodes, cse.Nodes)
			s.Times = append(s.Times, f(cse.N, cse.Nodes))
		}
		return s
	}
	return []Fig9Series{
		mk("6 tasks/node, 1 pencil/A2A", func(n, nodes int) float64 {
			return SimulateGPUStep(DefaultPerf(n, nodes, 6, PerPencil)).Time
		}),
		mk("2 tasks/node, 1 pencil/A2A", func(n, nodes int) float64 {
			return SimulateGPUStep(DefaultPerf(n, nodes, 2, PerPencil)).Time
		}),
		mk("2 tasks/node, 1 slab/A2A", func(n, nodes int) float64 {
			return SimulateGPUStep(DefaultPerf(n, nodes, 2, PerSlab)).Time
		}),
		mk("MPI only (no compute)", func(n, nodes int) float64 {
			return SimulateMPIOnly(DefaultPerf(n, nodes, 2, PerSlab)).Time
		}),
	}
}

// Fig10 regenerates the normalized timeline comparison of Fig 10 at
// the 12288³/1024-node case: the MPI-only schedule, configuration B
// (overlapped pencils), configuration C (one slab message), and
// configuration A (6 tasks/node).
func Fig10() []trace.Timeline {
	n, nodes := 12288, 1024
	cases := []struct {
		title string
		res   StepResult
	}{
		{"MPI only (2 tasks/node, pencil granularity)", SimulateMPIOnly(DefaultPerf(n, nodes, 2, PerPencil))},
		{"DNS, 2 tasks/node, 1 pencil/A2A (cfg B)", SimulateGPUStep(DefaultPerf(n, nodes, 2, PerPencil))},
		{"DNS, 2 tasks/node, 1 slab/A2A (cfg C)", SimulateGPUStep(DefaultPerf(n, nodes, 2, PerSlab))},
		{"DNS, 6 tasks/node, 1 pencil/A2A (cfg A)", SimulateGPUStep(DefaultPerf(n, nodes, 6, PerPencil))},
	}
	out := make([]trace.Timeline, 0, len(cases))
	for _, c := range cases {
		out = append(out, trace.Timeline{Title: c.title, Spans: c.res.Spans})
	}
	return out
}

// StrongScaling18432 reproduces the §5.3 check: the 18432³ problem
// with 6 tasks/node on 1536 vs 3072 nodes, returning the two times and
// the strong-scaling percentage 100·t(3072)·2/t(1536)⁻¹… i.e.
// 100·(t1536/(2·t3072))⁻¹ as the paper reports ≈95.7%.
func StrongScaling18432() (t1536, t3072, pct float64) {
	t1536 = SimulateGPUStep(DefaultPerf(18432, 1536, 6, PerPencil)).Time
	t3072 = SimulateGPUStep(DefaultPerf(18432, 3072, 6, PerPencil)).Time
	pct = 100 * t1536 / (2 * t3072)
	return t1536, t3072, pct
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %10s | %8s %7s | %8s %7s | %8s %7s\n",
		"Nodes", "N", "SyncCPU(s)", "A(s)", "spd", "B(s)", "spd", "C(s)", "spd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-8d %10.2f | %8.2f %7.1f | %8.2f %7.1f | %8.2f %7.1f\n",
			r.Nodes, r.N, r.CPU, r.A, r.SpeedupA, r.B, r.SpeedupB, r.C, r.SpeedupC)
	}
	return b.String()
}

// FormatTable4 renders Table 4 in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-7s %-8s %-12s %-8s %s\n",
		"Nodes", "Ntasks", "N", "#pencils/A2A", "Time(s)", "WeakScaling(%)")
	for _, r := range rows {
		ws := "-"
		if r.WeakScaling > 0 {
			ws = fmt.Sprintf("%.1f", r.WeakScaling)
		}
		fmt.Fprintf(&b, "%-6d %-7d %-8d %-12d %-8.2f %s\n",
			r.Nodes, r.Ntasks, r.N, r.PencilsPerA2A, r.Time, ws)
	}
	return b.String()
}

// FormatFig9 renders the Fig 9 series as aligned columns.
func FormatFig9(series []Fig9Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "Nodes")
	for _, s := range series {
		fmt.Fprintf(&b, " %28s", s.Label)
	}
	b.WriteString("\n")
	for i := range series[0].Nodes {
		fmt.Fprintf(&b, "%-8d", series[0].Nodes[i])
		for _, s := range series {
			fmt.Fprintf(&b, " %28.2f", s.Times[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MPITimeShare returns the fraction of a simulated step's makespan the
// network resource is busy, the §5.2/§6 "bulk of the remaining
// runtime is all-to-all" observation.
func MPITimeShare(r StepResult) float64 {
	var net float64
	for _, s := range r.Spans {
		if s.Class == "a2a" {
			net += s.End - s.Start
		}
	}
	return net / r.Time
}

// Spans re-exported helper: total busy seconds of one class.
func ClassTime(spans []sched.Span, class string) float64 {
	var t float64
	for _, s := range spans {
		if s.Class == class {
			t += s.End - s.Start
		}
	}
	return t
}
