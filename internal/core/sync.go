package core

import "repro/internal/mpi"

// NewSyncGPU returns the basic synchronous GPU algorithm of §3.3
// (Fig 2): the whole slab is copied to the device, transformed,
// packed, exchanged with one blocking all-to-all, and transformed
// again — the NP=1, PerSlab special case of the asynchronous engine,
// valid only when a full slab fits in device memory.
func NewSyncGPU(comm *mpi.Comm, n int) *AsyncSlabReal {
	return NewAsyncSlabReal(comm, n, Options{NP: 1, Granularity: PerSlab})
}
