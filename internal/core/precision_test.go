package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/spectral"
)

func TestSingleCommAccuracy(t *testing.T) {
	// The single-precision wire format must agree with the float64
	// reference to single-precision rounding (~1e-6 relative).
	n, p := 16, 2
	for _, gran := range []Granularity{PerPencil, PerSlab} {
		mpi.Run(p, func(c *mpi.Comm) {
			ref := pfft.NewSlabReal(c, n)
			sgl := NewAsyncSlabReal(c, n, Options{NP: 4, Granularity: gran, SingleComm: true})
			defer sgl.Close()

			rng := rand.New(rand.NewSource(int64(c.Rank()) + 7))
			phys := make([]float64, ref.PhysicalLen())
			var scale float64
			for i := range phys {
				phys[i] = rng.NormFloat64()
				scale = math.Max(scale, math.Abs(phys[i]))
			}
			fr := make([]complex128, ref.FourierLen())
			fs := make([]complex128, sgl.FourierLen())
			ref.PhysicalToFourier(fr, phys)
			sgl.PhysicalToFourier(fs, phys)
			var worst float64
			var norm float64
			for i := range fr {
				worst = math.Max(worst, cmplx.Abs(fr[i]-fs[i]))
				norm = math.Max(norm, cmplx.Abs(fr[i]))
			}
			if worst/norm > 1e-5 {
				t.Errorf("gran=%d: single-comm relative error %g", gran, worst/norm)
			}
			if worst == 0 {
				t.Errorf("gran=%d: exactly zero error — single path not exercised", gran)
			}
		})
	}
}

func TestSingleCommRoundTripStable(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		a := NewAsyncSlabReal(c, 8, Options{NP: 3, Granularity: PerPencil, SingleComm: true})
		defer a.Close()
		rng := rand.New(rand.NewSource(3))
		phys := make([]float64, a.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), phys...)
		four := make([]complex128, a.FourierLen())
		for iter := 0; iter < 4; iter++ {
			a.PhysicalToFourier(four, phys)
			a.FourierToPhysical(phys, four)
		}
		var worst float64
		for i := range phys {
			worst = math.Max(worst, math.Abs(phys[i]-orig[i]))
		}
		// 8 single-precision conversions accumulate to ~1e-5 absolute.
		if worst > 1e-4 {
			t.Errorf("round-trip drift %g after 4 cycles", worst)
		}
	})
}

func TestSingleCommDNSRunsStably(t *testing.T) {
	// The full solver on the single-precision wire stays stable and
	// divergence-free to communication precision.
	mpi.Run(2, func(c *mpi.Comm) {
		tr := NewAsyncSlabReal(c, 16, Options{NP: 3, Granularity: PerSlab, SingleComm: true})
		defer tr.Close()
		s := spectral.NewSolverWithTransform(c, spectral.Config{
			N: 16, Nu: 0.02, Scheme: spectral.RK2, Dealias: spectral.Dealias23,
		}, tr)
		s.SetRandomIsotropic(3, 0.5, 13)
		e0 := s.Energy()
		for i := 0; i < 5; i++ {
			s.Step(0.004)
		}
		e1 := s.Energy()
		if math.IsNaN(e1) || e1 >= e0 || e1 < 0.8*e0 {
			t.Errorf("energy %g → %g not a plausible decay", e0, e1)
		}
	})
}

func TestSingleCommHalvesWireBytes(t *testing.T) {
	// Structural check: staging buffers are complex64, i.e. half the
	// footprint of the double-precision path.
	mpi.Run(1, func(c *mpi.Comm) {
		dbl := NewAsyncSlabReal(c, 8, Options{NP: 2})
		sgl := NewAsyncSlabReal(c, 8, Options{NP: 2, SingleComm: true})
		defer dbl.Close()
		defer sgl.Close()
		if len(sgl.send32) != len(dbl.sendAll) {
			t.Fatalf("element counts differ: %d vs %d", len(sgl.send32), len(dbl.sendAll))
		}
		// complex64 = 8 bytes vs complex128 = 16.
		if 8*len(sgl.send32) != 16*len(dbl.sendAll)/2 {
			t.Error("wire bytes not halved")
		}
		if dbl.send32 != nil || sgl.sendAll != nil {
			t.Error("unused staging buffers allocated")
		}
	})
}
