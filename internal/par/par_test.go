package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIterations(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 10, 100} {
			hits := make([]int32, n)
			p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: iteration %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunkedPartitions(t *testing.T) {
	f := func(seedN uint8, seedW uint8) bool {
		n := int(seedN%50) + 1
		w := int(seedW%6) + 1
		p := NewPool(w)
		covered := make([]int32, n)
		p.ForChunked(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSectionsRunAll(t *testing.T) {
	p := NewPool(3)
	var a, b, c atomic.Bool
	p.Sections(
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Error("not all sections ran")
	}
}

func TestSerialPoolNoGoroutines(t *testing.T) {
	// Team size 1 must preserve iteration order (serial semantics).
	p := NewPool(1)
	var order []int
	p.For(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Errorf("serial order broken: %v", order)
		}
	}
}

func TestPoolPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPool(0)
}

func TestForWorkersDistinctScratch(t *testing.T) {
	p := NewPool(4)
	n := 23
	used := make([]int32, n)
	workerOf := make([]int32, n)
	p.ForWorkers(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&used[i], 1)
			atomic.StoreInt32(&workerOf[i], int32(w))
		}
	})
	for i, u := range used {
		if u != 1 {
			t.Errorf("iteration %d ran %d times", i, u)
		}
	}
	// Chunks are contiguous: worker ids are non-decreasing.
	for i := 1; i < n; i++ {
		if workerOf[i] < workerOf[i-1] {
			t.Errorf("non-contiguous chunks: %v", workerOf)
		}
	}
}
