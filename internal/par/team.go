package par

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Package-level worker occupancy accounting, published to a registry
// on demand (par.workers.busy / par.workers.peak / par.regions). Hot
// counters are package atomics for the same reason as internal/fft's:
// worker dispatch sits inside every transform and must not take a
// registry lock.
var (
	busyWorkers atomic.Int64 // workers currently executing a chunk
	peakBusy    atomic.Int64 // high-water mark of busyWorkers
	regions     atomic.Int64 // parallel regions dispatched
)

func enterChunk() {
	b := busyWorkers.Add(1)
	for {
		p := peakBusy.Load()
		if b <= p || peakBusy.CompareAndSwap(p, b) {
			return
		}
	}
}

func exitChunk() { busyWorkers.Add(-1) }

// PublishMetrics copies the package occupancy totals into reg:
// par.workers.busy (instantaneous), par.workers.peak (high-water mark)
// and par.regions (cumulative parallel regions executed).
func PublishMetrics(reg *metrics.Registry) {
	reg.Gauge("par.workers.busy").Set(float64(busyWorkers.Load()))
	reg.Gauge("par.workers.peak").Set(float64(peakBusy.Load()))
	reg.Counter("par.regions").Store(regions.Load())
}

// Team is a persistent worker team: n−1 long-lived helper goroutines
// plus the caller, dispatched per parallel region with no goroutine
// churn — the analogue of an OMP thread team that outlives individual
// "omp parallel for" regions, which Pool (one goroutine spawn per
// region) is not. Engines hold one Team across their whole lifetime so
// steady-state dispatch performs zero allocations: the region body is
// handed over through a field write and a channel signal, and workers
// park on their channels between regions.
//
// A Team serializes its regions with an internal mutex, so concurrent
// dispatch from different goroutines is safe (regions simply queue);
// a region body must not dispatch onto its own team (self-deadlock).
// Close releases the helper goroutines; using a closed team panics.
type Team struct {
	n int

	mu sync.Mutex // serializes regions; guards the dispatch fields
	wg sync.WaitGroup

	// Dispatch state of the current region, written under mu before
	// the start signals and read by helpers after them.
	body    func(w, lo, hi int)
	total   int // iteration count of the region
	nw      int // workers participating in the region
	grain   int // per-worker chunk for the region
	start   []chan struct{}
	closed  chan struct{}
	isClose atomic.Bool
}

// NewTeam creates a team of n workers (n ≥ 1). n = 1 creates no helper
// goroutines and degenerates to serial execution.
func NewTeam(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("par: invalid team size %d", n))
	}
	t := &Team{n: n, closed: make(chan struct{})}
	t.start = make([]chan struct{}, n-1)
	for i := range t.start {
		t.start[i] = make(chan struct{})
		go t.worker(i + 1)
	}
	return t
}

func (t *Team) worker(w int) {
	ch := t.start[w-1]
	for {
		select {
		case <-t.closed:
			return
		case <-ch:
		}
		t.runChunk(w)
		t.wg.Done()
	}
}

// runChunk executes worker w's static chunk of the current region.
//
//psdns:hotpath
func (t *Team) runChunk(w int) {
	lo := w * t.grain
	hi := lo + t.grain
	if hi > t.total {
		hi = t.total
	}
	if lo >= hi {
		return
	}
	enterChunk()
	t.body(w, lo, hi)
	exitChunk()
}

// Size reports the team size.
func (t *Team) Size() int { return t.n }

// Close releases the helper goroutines. The team must be idle.
func (t *Team) Close() {
	if t.isClose.CompareAndSwap(false, true) {
		close(t.closed)
	}
}

// ForWorkers executes body(w, lo, hi) over static contiguous chunks of
// [0, n), one chunk per worker, blocking until all complete. w is the
// worker index in [0, Size()), for bodies that need per-worker scratch
// (FFT plans carry scratch and are not concurrency-safe). Dispatch is
// allocation-free: pass a precomputed body closure for zero-alloc hot
// paths.
//
//psdns:hotpath
func (t *Team) ForWorkers(n int, body func(w, lo, hi int)) {
	if t.isClose.Load() {
		panic("par: ForWorkers on closed Team")
	}
	if n <= 0 {
		return
	}
	regions.Add(1)
	if t.n == 1 || n == 1 {
		enterChunk()
		body(0, 0, n)
		exitChunk()
		return
	}
	t.mu.Lock()
	workers := t.n
	if workers > n {
		workers = n
	}
	t.body = body
	t.total = n
	t.nw = workers
	t.grain = (n + workers - 1) / workers
	t.wg.Add(workers - 1)
	for i := 0; i < workers-1; i++ {
		t.start[i] <- struct{}{}
	}
	t.runChunk(0)
	t.wg.Wait()
	t.body = nil
	t.mu.Unlock()
}

// For executes body(i) for i in [0, n) across the team ("omp parallel
// for" with static chunking). Iterations must be independent. The
// inner closure wrapping body is created per call; for zero-alloc hot
// paths use ForWorkers with a precomputed body.
func (t *Team) For(n int, body func(i int)) {
	if t.n == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	t.ForWorkers(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked executes body(lo, hi) over static contiguous chunks of
// [0, n), one per worker.
func (t *Team) ForChunked(n int, body func(lo, hi int)) {
	if t.n == 1 || n <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	t.ForWorkers(n, func(_, lo, hi int) { body(lo, hi) })
}
