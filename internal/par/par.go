// Package par provides the OpenMP-style intra-rank worker-thread
// parallelism of the paper's hybrid MPI+OpenMP design (§1, §3.4): with
// 2 MPI tasks per node, "OpenMP threads can be used to launch
// operations to the 3 GPUs per socket" and to parallelize the host
// loops (FFT batches, packing) across cores. Ranks are goroutines
// here, so threads are a worker pool of further goroutines inside a
// rank.
package par

import (
	"fmt"
	"sync"
)

// Pool is a fixed team of workers attached to one rank, the analogue
// of an OMP thread team.
type Pool struct {
	n int
}

// NewPool creates a team of n workers (n ≥ 1). n = 1 degenerates to
// serial execution with no goroutine overhead.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("par: invalid team size %d", n))
	}
	return &Pool{n: n}
}

// Size reports the team size.
func (p *Pool) Size() int { return p.n }

// For executes body(i) for i in [0, n) across the team, blocking until
// all iterations complete ("omp parallel for" with static chunking).
// Iterations must be independent.
func (p *Pool) For(n int, body func(i int)) {
	if p.n == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	workers := p.n
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForChunked executes body(lo, hi) over static contiguous chunks of
// [0, n), one per worker — for bodies that want to amortize per-call
// setup across a range ("omp for schedule(static)").
func (p *Pool) ForChunked(n int, body func(lo, hi int)) {
	if p.n == 1 || n <= 1 {
		body(0, n)
		return
	}
	workers := p.n
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Sections runs the given functions concurrently and waits for all —
// "omp sections", used to drive one GPU per thread (Fig 5).
func (p *Pool) Sections(fns ...func()) {
	if p.n == 1 || len(fns) <= 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for _, f := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

// ForWorkers is ForChunked with the worker index exposed, for bodies
// that need per-thread scratch (e.g. FFT plans, which are not
// concurrency-safe across calls).
func (p *Pool) ForWorkers(n int, body func(w, lo, hi int)) {
	if p.n == 1 || n <= 1 {
		body(0, 0, n)
		return
	}
	workers := p.n
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
