package par

import (
	"sync"
	"testing"
)

func TestTeamForCoversRange(t *testing.T) {
	for _, w := range []int{1, 2, 4, 7} {
		tm := NewTeam(w)
		for _, n := range []int{0, 1, 3, 8, 100, 1000} {
			got := make([]int32, n)
			var mu sync.Mutex
			tm.ForWorkers(n, func(_, lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					got[i]++
				}
				mu.Unlock()
			})
			for i, v := range got {
				if v != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, v)
				}
			}
		}
		tm.Close()
	}
}

func TestTeamForMatchesSerial(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	const n = 257
	out := make([]float64, n)
	tm.For(n, func(i int) { out[i] = float64(i * i) })
	for i := range out {
		if out[i] != float64(i*i) {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
}

func TestTeamWorkerIndexBounds(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	var mu sync.Mutex
	seen := map[int]bool{}
	tm.ForWorkers(100, func(w, lo, hi int) {
		if w < 0 || w >= tm.Size() {
			t.Errorf("worker index %d out of range", w)
		}
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) == 0 {
		t.Fatal("no chunks ran")
	}
}

// Team regions must serialize: concurrent dispatch from many
// goroutines may interleave regions but never corrupt chunk state.
func TestTeamConcurrentDispatch(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				buf := make([]int32, 64)
				tm.ForWorkers(len(buf), func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						buf[i]++
					}
				})
				for i, v := range buf {
					if v != 1 {
						t.Errorf("index %d visited %d times", i, v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestTeamReuseNoGoroutineChurn(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	sink := make([]float64, 1024)
	body := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i] += 1
		}
	}
	tm.ForWorkers(len(sink), body) // warm up
	// Steady-state dispatch with a precomputed body must not allocate
	// (AllocsPerRun pins GOMAXPROCS to 1, but helpers still run).
	avg := testing.AllocsPerRun(100, func() {
		tm.ForWorkers(len(sink), body)
	})
	if avg != 0 {
		t.Fatalf("steady-state ForWorkers allocates %.2f per run", avg)
	}
}

func TestTeamClosePanicsOnUse(t *testing.T) {
	tm := NewTeam(2)
	tm.Close()
	tm.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dispatch after Close")
		}
	}()
	tm.ForWorkers(10, func(_, lo, hi int) {})
}

func TestTeamOccupancyAccounting(t *testing.T) {
	r0 := regions.Load()
	tm := NewTeam(4)
	defer tm.Close()
	var mu sync.Mutex
	maxSeen := 0
	tm.ForWorkers(4, func(_, lo, hi int) {
		b := int(busyWorkers.Load())
		mu.Lock()
		if b > maxSeen {
			maxSeen = b
		}
		mu.Unlock()
	})
	if regions.Load() != r0+1 {
		t.Fatalf("regions = %d, want %d", regions.Load(), r0+1)
	}
	if maxSeen < 1 {
		t.Fatal("busyWorkers never observed ≥1 inside a region")
	}
	if busyWorkers.Load() != 0 {
		t.Fatalf("busyWorkers = %d after region", busyWorkers.Load())
	}
	if peakBusy.Load() < 1 {
		t.Fatal("peakBusy not updated")
	}
}
