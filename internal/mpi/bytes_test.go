package mpi

import (
	"testing"

	"repro/internal/metrics"
)

// TestSenderSideByteConvention pins the accounting convention of
// doc.go: every operation charges sender-side wire bytes, excluding
// loopback copies to self. With p=4 ranks and 6-word (48-byte) blocks
// each collective family has a closed-form expectation per rank.
func TestSenderSideByteConvention(t *testing.T) {
	reg := metrics.NewRegistry()
	const p = 4
	const words = 6
	const blk = words * 8 // float64 block bytes
	if err := RunWith(p, reg, func(c *Comm) {
		buf := make([]float64, words)
		all := make([]float64, p*words)

		Bcast(c, 0, buf)                           // root 0: (p-1)*blk; others: 0
		Allgather(c, buf, all)                     // every rank: (p-1)*blk
		Gather(c, 0, buf, all)                     // non-root: blk; root: 0
		Scatter(c, 0, all, buf)                    // root: (p-1)*blk; others: 0
		Alltoall(c, all, make([]float64, p*words)) // every rank: (p-1)*blk

		counts := make([]int, p)
		displs := make([]int, p)
		for i := range counts {
			counts[i] = words
			displs[i] = i * words
		}
		recv := make([]float64, p*words)
		Alltoallv(c, all, counts, displs, recv, counts, displs) // every rank: (p-1)*blk

		if c.Rank() == 0 {
			Send(c, 1, 1, buf) // sender: blk
		}
		if c.Rank() == 1 {
			Recv(c, 0, 1, buf)
			Send(c, 1, 2, buf) // self-send: 0 wire bytes
			Recv(c, 1, 2, buf)
		}
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	wantColl := func(r int) float64 {
		// Bcast + Allgather + Gather + Scatter contributions.
		if r == 0 {
			return float64((p-1)*blk + (p-1)*blk + 0 + (p-1)*blk)
		}
		return float64(0 + (p-1)*blk + blk + 0)
	}
	for r := 0; r < p; r++ {
		if e, _ := snap.Get("mpi.coll.bytes", r); e.Value != wantColl(r) {
			t.Errorf("rank %d coll bytes = %v, want %v", r, e.Value, wantColl(r))
		}
		// Alltoall + Alltoallv, each (p-1)*blk.
		if e, _ := snap.Get("mpi.a2a.bytes", r); e.Value != float64(2*(p-1)*blk) {
			t.Errorf("rank %d a2a bytes = %v, want %v", r, e.Value, 2*(p-1)*blk)
		}
	}
	if e, _ := snap.Get("mpi.p2p.bytes", 0); e.Value != float64(blk) {
		t.Errorf("rank 0 p2p bytes = %v, want %v", e.Value, blk)
	}
	if e, _ := snap.Get("mpi.p2p.bytes", 1); e.Value != 0 {
		t.Errorf("rank 1 p2p bytes = %v, want 0 (self-send is loopback)", e.Value)
	}
}
