package mpi

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// The fused exchange must reproduce Alltoall's semantics when the
// gather performs the equivalent block moves: after Do, position
// [src*bs:(src+1)*bs] of each rank's destination holds what rank src
// published at [me*bs:(me+1)*bs].
func TestExchangePlanAlltoallSemantics(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		p := p
		TryRunOrFatal(t, p, func(c *Comm) {
			const bs = 3
			src := make([]int, bs*p)
			for i := range src {
				src[i] = c.Rank()*1000 + i
			}
			dst := make([]int, bs*p)
			want := make([]int, bs*p)
			Alltoall(c, src, want)

			me := c.Rank()
			pl := NewExchangePlan[int](c, bs*p)
			defer pl.Free()
			pl.Do(src, func(srcs [][]int) {
				for s := 0; s < p; s++ {
					copy(dst[s*bs:(s+1)*bs], srcs[s][me*bs:(me+1)*bs])
				}
			})
			for i := range want {
				if dst[i] != want[i] {
					panic(fmt.Sprintf("rank %d: fused exchange differs at %d: %d vs %d", me, i, dst[i], want[i]))
				}
			}
		})
	}
}

// TryRunOrFatal runs fn under TryRun and fails the test on error.
func TryRunOrFatal(t *testing.T, p int, fn func(*Comm)) {
	t.Helper()
	if err := TryRun(p, fn); err != nil {
		t.Fatal(err)
	}
}

// Publication must be cycle-accurate: a rank republises a different
// slab each Do and peers must never observe a stale pointer.
func TestExchangePlanRepublishPerCycle(t *testing.T) {
	const p, cycles = 3, 8
	TryRunOrFatal(t, p, func(c *Comm) {
		me := c.Rank()
		pl := NewExchangePlan[float64](c, p)
		defer pl.Free()
		a, b := make([]float64, p), make([]float64, p)
		got := make([]float64, p)
		for cy := 0; cy < cycles; cy++ {
			src := a
			if cy%2 == 1 {
				src = b
			}
			for i := range src {
				src[i] = float64(100*cy + me)
			}
			pl.Do(src, func(srcs [][]float64) {
				for s := 0; s < p; s++ {
					got[s] = srcs[s][me]
				}
			})
			for s := 0; s < p; s++ {
				if got[s] != float64(100*cy+s) {
					panic(fmt.Sprintf("rank %d cycle %d: stale slab from %d: %v", me, cy, s, got[s]))
				}
			}
		}
	})
}

// Steady-state Do must not allocate: the publication is a slice store
// and the barriers reuse the plan's own barrier.
func TestExchangePlanZeroAllocSteadyState(t *testing.T) {
	const p = 4
	TryRunOrFatal(t, p, func(c *Comm) {
		me := c.Rank()
		pl := NewExchangePlan[complex128](c, 64*p)
		defer pl.Free()
		src := make([]complex128, 64*p)
		dst := make([]complex128, 64*p)
		gather := func(srcs [][]complex128) {
			for s := 0; s < p; s++ {
				copy(dst[s*64:(s+1)*64], srcs[s][me*64:(me+1)*64])
			}
		}
		cycle := func() { pl.Do(src, gather) }
		for i := 0; i < 3; i++ {
			cycle()
		}
		if me == 0 {
			avg := testing.AllocsPerRun(10, cycle)
			if avg != 0 {
				panic(fmt.Sprintf("fused exchange allocates %.2f per Do", avg))
			}
		} else {
			for i := 0; i < 11; i++ {
				cycle()
			}
		}
	})
}

// Wire accounting: each Do charges the remote-read share of the slab
// (everything but the local 1/P), mirroring A2APlan's off-diagonal
// convention, plus one exchange.calls tick.
func TestExchangePlanWireAccounting(t *testing.T) {
	const p, slab = 4, 64
	reg := metrics.NewRegistry()
	reg.SetOn(true)
	err := RunWith(p, reg, func(c *Comm) {
		pl := NewExchangePlan[complex128](c, slab)
		defer pl.Free()
		src := make([]complex128, slab)
		pl.Do(src, func([][]complex128) {})
		pl.Do(src, func([][]complex128) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPer := int64(16 * (slab - slab/p) * 2)
	var total int64
	for r := 0; r < p; r++ {
		total += reg.CounterRank("exchange.bytes", r).Value()
	}
	if total != wantPer*p {
		t.Fatalf("exchange.bytes = %d, want %d", total, wantPer*p)
	}
	var calls int64
	for r := 0; r < p; r++ {
		calls += reg.CounterRank("exchange.calls", r).Value()
	}
	if calls != 2*p {
		t.Fatalf("exchange.calls = %d, want %d", calls, 2*p)
	}
}

func TestExchangePlanUseAfterFreePanics(t *testing.T) {
	err := TryRun(1, func(c *Comm) {
		pl := NewExchangePlan[int](c, 1)
		pl.Free()
		pl.Do([]int{0}, func([][]int) {})
	})
	if err == nil {
		t.Fatal("Do after Free did not panic")
	}
}
