package mpi

import (
	"fmt"
	"time"
)

// ExchangePlan is the zero-copy fused transpose-exchange: the
// persistent-collective frame of A2APlan with the data path deleted.
// Where A2APlan moves registered blocks between staging buffers (one
// peer block copy per rank, bracketed by the caller's pack and unpack
// passes), an ExchangePlan moves nothing itself — each Do publishes
// the rank's current source slab and then runs a caller-supplied
// gather that reads **directly from every peer's published slab**
// into the local destination layout. Pack, wire copy and unpack fuse
// into one parallel pass (the in-process analogue of the paper's §4
// zero-copy strided kernels reading pinned host memory in place);
// see transpose.GatherYZRange and friends for the kernels.
//
// Synchronization contract: the entry barrier orders every rank's
// publication before any rank's gather (and keeps a rank from
// publishing the next cycle's slab while a peer still reads the
// previous one); the exit barrier orders every gather before any rank
// returns, so callers may overwrite their source slab the moment Do
// returns. Both barriers are the plan's own, registered with the
// world like A2APlan's: they are watchdog-visible (stall and deadlock
// detection see ranks blocked in them), abortable (a peer's panic or
// a scheduled crash wakes them through the abort cascade), and the
// operation counter advances on every Do so crash schedules fire
// inside fused exchanges exactly as they do for staged ones. Because
// gathered data never crosses the mailbox layer, per-message fault
// injection (drops, duplicates, delays) does not apply — the same
// exemption A2APlan documents.
//
// Collective contract (as for MPI persistent collectives): every rank
// constructs the plan at the same point in its collective order and
// calls Do collectively; the published source slab must not alias the
// gather's destination.
type ExchangePlan[T any] struct {
	c    *Comm
	sh   *exchShared[T]
	wire int64 // wire bytes charged per Do: everything but the local slab's share
	free bool
}

// exchShared is the world-side state of one plan: the per-rank
// published source slabs and the plan's private reusable barrier.
type exchShared[T any] struct {
	srcs [][]T
	bar  *barrier
	refs int
}

// NewExchangePlan registers a fused-exchange plan over c. slabLen is
// the element count of the slab each rank will publish; the rank is
// charged slabLen·(P−1)/P elements of wire traffic per Do (everything
// a zero-copy gather reads from remote slabs — the same accounting
// convention as A2APlan's off-diagonal blocks). Collective: blocks
// until every rank has registered.
func NewExchangePlan[T any](c *Comm, slabLen int) *ExchangePlan[T] {
	p := c.Size()
	if slabLen < 0 || slabLen%p != 0 {
		panic(fmt.Sprintf("mpi: rank %d: exchange plan slab length %d invalid for %d ranks",
			c.rank, slabLen, p))
	}
	seq := c.nextSeq()
	w := c.w
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		panic(errAborted)
	}
	if w.plans == nil {
		w.plans = map[int]any{}
	}
	var sh *exchShared[T]
	if v, ok := w.plans[seq]; ok {
		sh = v.(*exchShared[T])
	} else {
		sh = &exchShared[T]{srcs: make([][]T, p), bar: newBarrier(p)}
		w.plans[seq] = sh
		w.planBars = append(w.planBars, sh.bar)
	}
	sh.refs++
	w.mu.Unlock()
	pl := &ExchangePlan[T]{
		c: c, sh: sh,
		wire: sliceBytes[T](slabLen - slabLen/p),
	}
	// All ranks must have registered before the first Do publishes into
	// a peer-visible slot.
	sh.bar.wait(w, c.rank)
	return pl
}

// Do executes one fused exchange: src is published as this rank's
// source slab, and once every rank has published, gather runs with
// the full table of published slabs (indexed by rank) to perform the
// local strided gathers. After Do returns on every rank, each rank's
// destination holds exactly what the staged pack → all-to-all →
// unpack triple would have produced — in one pass instead of three.
//
// Collective and allocation-free. The gather wall time is recorded in
// exchange.gather.ns (nanoseconds) and wire-equivalent remote-read
// bytes in exchange.bytes / calls in exchange.calls.
//
//psdns:hotpath
func (pl *ExchangePlan[T]) Do(src []T, gather func(srcs [][]T)) {
	if pl.free {
		panic("mpi: ExchangePlan used after Free")
	}
	c := pl.c
	c.maybeCrash()
	m := c.m()
	m.exchCalls.Inc()
	m.exchBytes.Add(pl.wire)
	// Publish, then the entry barrier: every rank's slab is visible
	// (and no rank still reads last cycle's table) before any gather.
	pl.sh.srcs[c.rank] = src
	pl.sh.bar.wait(c.w, c.rank)
	enabled := m.exchGather.Enabled()
	var t0 time.Time
	if enabled {
		t0 = time.Now()
	}
	gather(pl.sh.srcs)
	if enabled {
		m.exchGather.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	// Exit barrier: every rank is done reading peer slabs, so callers
	// may overwrite their source the moment Do returns.
	pl.sh.bar.wait(c.w, c.rank)
	// Plan exchanges bypass mailboxes; mark progress so the deadlock
	// detector's quiescence window stays honest (as A2APlan does).
	c.w.progress.Add(1)
}

// Free releases the plan (collective in effect: after every rank has
// called Free the world drops its reference to the shared state). The
// plan must not be used afterwards.
func (pl *ExchangePlan[T]) Free() {
	if pl.free {
		return
	}
	pl.free = true
	w := pl.c.w
	w.mu.Lock()
	pl.sh.refs--
	if pl.sh.refs == 0 {
		for seq, v := range w.plans {
			if v == any(pl.sh) {
				delete(w.plans, seq)
			}
		}
	}
	w.mu.Unlock()
}
