package mpi

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ExchangePlan is the zero-copy fused transpose-exchange: the
// persistent-collective frame of A2APlan with the data path deleted.
// Where A2APlan moves registered blocks between staging buffers (one
// peer block copy per rank, bracketed by the caller's pack and unpack
// passes), an ExchangePlan moves nothing itself — each Do publishes
// the rank's current source slab and then runs a caller-supplied
// gather that reads **directly from every peer's published slab**
// into the local destination layout. Pack, wire copy and unpack fuse
// into one parallel pass (the in-process analogue of the paper's §4
// zero-copy strided kernels reading pinned host memory in place);
// see transpose.GatherYZRange and friends for the kernels.
//
// Synchronization contract: the entry barrier orders every rank's
// publication before any rank's gather (and keeps a rank from
// publishing the next cycle's slab while a peer still reads the
// previous one); the exit barrier orders every gather before any rank
// returns, so callers may overwrite their source slab the moment Do
// returns. Both barriers are the plan's own, registered with the
// world like A2APlan's: they are watchdog-visible (stall and deadlock
// detection see ranks blocked in them), abortable (a peer's panic or
// a scheduled crash wakes them through the abort cascade), and the
// operation counter advances on every Do so crash schedules fire
// inside fused exchanges exactly as they do for staged ones. Because
// gathered data never crosses the mailbox layer, per-message fault
// injection (drops, duplicates, delays) does not apply — the same
// exemption A2APlan documents.
//
// Collective contract (as for MPI persistent collectives): every rank
// constructs the plan at the same point in its collective order and
// calls Do collectively; the published source slab must not alias the
// gather's destination.
type ExchangePlan[T any] struct {
	c    *Comm
	sh   *exchShared[T]
	wire int64 // wire bytes charged per Do: everything but the local slab's share
	free bool

	// Asynchrony-tolerant per-handle state (DoBounded only).
	epoch int64  // last epoch this rank published
	site  uint32 // quantity label for the next publication (SetSite)
	gsrcs [][]T  // reusable gather table of selected ring slots
	// Staleness window since the last TakeStaleness: worst per-peer
	// slab age, summed age, stale slab count and DoBounded calls. Ages
	// are counted in same-site publications (whole exchange cycles),
	// not raw epochs — see SetSite.
	stMax   int
	stSum   int64
	stSlabs int64
	stCalls int64
}

// exchShared is the world-side state of one plan: the per-rank
// published source slabs, the plan's private reusable barrier, and —
// for asynchrony-tolerant plans — the epoch-tagged publication rings.
type exchShared[T any] struct {
	srcs [][]T
	bar  *barrier
	refs int
	seq  int // collective sequence number keying w.plans / w.planBars

	// Asynchrony-tolerant state (zero on synchronous plans). Each rank
	// publishes by copying its slab into rings[rank][epoch%S] and then
	// release-storing the epoch tag; peers acquire-load the tag, so an
	// observed epoch implies the full slab contents of that epoch. The
	// ring holds S = 2·maxStale+2 slots: a peer gathering at epoch e'
	// reads epochs ≥ e'−maxStale, and the hard bound keeps any two
	// in-flight calls within 2·maxStale+1 epochs of each other, so the
	// slot being overwritten for epoch X (which held X−S) is provably
	// dead.
	at       bool
	maxStale int
	deadline time.Duration
	slabLen  int
	rings    [][][]T
	epochs   []atomic.Int64
	// sites[r][epoch%S] labels what rank r published at that epoch
	// (the caller's SetSite value). Written before the epoch tag's
	// release store, read after a peer's acquire load — same discipline
	// and same slot-retention argument as the rings themselves.
	sites [][]uint32
}

// NewExchangePlan registers a fused-exchange plan over c. slabLen is
// the element count of the slab each rank will publish; the rank is
// charged slabLen·(P−1)/P elements of wire traffic per Do (everything
// a zero-copy gather reads from remote slabs — the same accounting
// convention as A2APlan's off-diagonal blocks). Collective: blocks
// until every rank has registered.
func NewExchangePlan[T any](c *Comm, slabLen int) *ExchangePlan[T] {
	return newExchangePlan[T](c, slabLen, false, 0, 0)
}

// NewExchangePlanBounded registers an asynchrony-tolerant fused
// exchange: Do is replaced by DoBounded, publication is epoch-tagged
// and double-buffered (a ring of 2·maxStale+2 plan-owned slab copies
// per rank), and a rank whose peers lag behind proceeds with their
// latest published slabs once they are within maxStale epochs and the
// per-plan deadline has expired. A deadline ≤ 0 means "never wait past
// the hard bound". Collective: every rank must construct the plan with
// the same mode, slab length, maxStale and deadline — a disagreeing
// rank panics at plan time (collective-contract violation).
func NewExchangePlanBounded[T any](c *Comm, slabLen, maxStale int, deadline time.Duration) *ExchangePlan[T] {
	if maxStale < 0 {
		panic(fmt.Sprintf("mpi: rank %d: negative staleness bound %d", c.rank, maxStale))
	}
	return newExchangePlan[T](c, slabLen, true, maxStale, deadline)
}

func newExchangePlan[T any](c *Comm, slabLen int, at bool, maxStale int, deadline time.Duration) *ExchangePlan[T] {
	p := c.Size()
	if slabLen < 0 || slabLen%p != 0 {
		panic(fmt.Sprintf("mpi: rank %d: exchange plan slab length %d invalid for %d ranks",
			c.rank, slabLen, p))
	}
	seq := c.nextSeq()
	w := c.w
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		panic(errAborted)
	}
	if w.plans == nil {
		w.plans = map[int]any{}
	}
	var sh *exchShared[T]
	if v, ok := w.plans[seq]; ok {
		sh = v.(*exchShared[T])
		if sh.at != at || (at && (sh.maxStale != maxStale || sh.deadline != deadline || sh.slabLen != slabLen)) {
			w.mu.Unlock()
			panic(fmt.Sprintf("mpi: rank %d: exchange plan seq %d mode disagrees with peers "+
				"(collective contract violation: at=%v/%v maxStale=%d/%d deadline=%v/%v)",
				c.rank, seq, at, sh.at, maxStale, sh.maxStale, deadline, sh.deadline))
		}
	} else {
		sh = &exchShared[T]{srcs: make([][]T, p), bar: newBarrier(p), seq: seq,
			at: at, maxStale: maxStale, deadline: deadline, slabLen: slabLen}
		if at {
			slots := 2*maxStale + 2
			sh.rings = make([][][]T, p)
			sh.sites = make([][]uint32, p)
			for r := range sh.rings {
				ring := make([][]T, slots)
				for s := range ring {
					ring[s] = make([]T, slabLen)
				}
				sh.rings[r] = ring
				sh.sites[r] = make([]uint32, slots)
			}
			sh.epochs = make([]atomic.Int64, p)
		}
		w.plans[seq] = sh
		if w.planBars == nil {
			w.planBars = map[int]*barrier{}
		}
		w.planBars[seq] = sh.bar
	}
	sh.refs++
	w.mu.Unlock()
	pl := &ExchangePlan[T]{
		c: c, sh: sh,
		wire: sliceBytes[T](slabLen - slabLen/p),
	}
	if at {
		pl.gsrcs = make([][]T, p)
	}
	// All ranks must have registered before the first Do publishes into
	// a peer-visible slot.
	sh.bar.wait(w, c.rank)
	return pl
}

// Do executes one fused exchange: src is published as this rank's
// source slab, and once every rank has published, gather runs with
// the full table of published slabs (indexed by rank) to perform the
// local strided gathers. After Do returns on every rank, each rank's
// destination holds exactly what the staged pack → all-to-all →
// unpack triple would have produced — in one pass instead of three.
//
// Collective and allocation-free. The gather wall time is recorded in
// exchange.gather.ns (nanoseconds) and wire-equivalent remote-read
// bytes in exchange.bytes / calls in exchange.calls.
//
//psdns:hotpath
func (pl *ExchangePlan[T]) Do(src []T, gather func(srcs [][]T)) {
	if pl.free {
		panic("mpi: ExchangePlan used after Free")
	}
	if pl.sh.at {
		panic("mpi: Do on an asynchrony-tolerant ExchangePlan; use DoBounded")
	}
	c := pl.c
	c.maybeCrash()
	m := c.m()
	m.exchCalls.Inc()
	m.exchBytes.Add(pl.wire)
	// Publish, then the entry barrier: every rank's slab is visible
	// (and no rank still reads last cycle's table) before any gather.
	pl.sh.srcs[c.rank] = src
	pl.sh.bar.wait(c.w, c.rank)
	enabled := m.exchGather.Enabled()
	var t0 time.Time
	if enabled {
		t0 = time.Now()
	}
	gather(pl.sh.srcs)
	if enabled {
		m.exchGather.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	// Exit barrier: every rank is done reading peer slabs, so callers
	// may overwrite their source the moment Do returns.
	pl.sh.bar.wait(c.w, c.rank)
	// Plan exchanges bypass mailboxes; mark progress so the deadlock
	// detector's quiescence window stays honest (as A2APlan does).
	c.w.progress.Add(1)
}

// Free releases the plan (collective in effect: after every rank has
// called Free the world drops its reference to the shared state and
// its barrier, so the abort cascade stops waking it). The plan must
// not be used afterwards.
func (pl *ExchangePlan[T]) Free() {
	if pl.free {
		return
	}
	pl.free = true
	w := pl.c.w
	w.mu.Lock()
	pl.sh.refs--
	if pl.sh.refs == 0 {
		delete(w.plans, pl.sh.seq)
		delete(w.planBars, pl.sh.seq)
	}
	w.mu.Unlock()
}

// boundedPoll is the sleep quantum of DoBounded's epoch waits: short
// enough that abort cascades, deadline expiries and freshly published
// epochs are observed promptly, long enough not to burn a core.
const boundedPoll = 50 * time.Microsecond

// SetSite labels the quantity the next DoBounded publishes. A plan
// whose call sites are heterogeneous — different components, stages or
// transpose directions sharing one epoch stream — must label each call
// with a site ID that is identical across ranks at the same collective
// position (the collective contract makes every rank's epoch→site
// sequence the same, so the local rank's own label history describes
// every peer's). DoBounded then only substitutes a peer's stale slab
// when that slab was published for the *same* site: a lagging peer's
// data is the same quantity from a whole number of exchange cycles
// earlier, never a different quantity read in the wrong layout. On a
// site mismatch the exchange falls back to a (watchdog-visible) full
// wait for that peer. Plans that never call SetSite label every call 0
// and retain plain epoch-lag semantics. Not safe for concurrent use
// with DoBounded on the same handle.
func (pl *ExchangePlan[T]) SetSite(site uint32) {
	pl.site = site
}

// DoBounded executes one asynchrony-tolerant exchange on a plan built
// with NewExchangePlanBounded. The rank's slab is copied into this
// epoch's ring slot and the epoch tag released; the rank then waits —
// hard — until every peer is within maxStale epochs (never past a
// peer's first publication), and after that only up to the plan
// deadline for peers to reach the current epoch. The gather runs on
// each peer's latest published slab, clamped to the current epoch so a
// fast peer's future slab is never delivered early, and accepted only
// if that slab carries the current call's site label (SetSite) — when
// the peer's newest slab was published for a different exchange site,
// the gather falls back to the peer's newest retained same-site slab
// within the bound, and waits for the peer only when none is retained.
// Each accepted slab's age (the number of
// same-site publications it lags, i.e. whole exchange cycles) is
// recorded in the exchange.staleness histogram and each slab with age
// > 0 in exchange.stale.slabs. maxStale may tighten (never exceed) the
// plan's bound per call.
//
// Unlike Do there is no exit barrier: the gather reads plan-owned ring
// copies, so the caller may overwrite src the moment DoBounded returns
// while slower peers keep reading the retained epochs. The hard-bound
// wait is watchdog-visible ("bounded-wait") and abortable; crash
// schedules fire via the operation counter exactly as for Do.
//
//psdns:hotpath
func (pl *ExchangePlan[T]) DoBounded(src []T, gather func(srcs [][]T), maxStale int) {
	if pl.free {
		panic("mpi: ExchangePlan used after Free")
	}
	sh := pl.sh
	if !sh.at {
		panic("mpi: DoBounded on a synchronous ExchangePlan; construct with NewExchangePlanBounded")
	}
	if maxStale < 0 || maxStale > sh.maxStale {
		panic(fmt.Sprintf("mpi: rank %d: DoBounded staleness bound %d outside plan bound [0,%d]",
			pl.c.rank, maxStale, sh.maxStale))
	}
	if len(src) != sh.slabLen {
		panic(fmt.Sprintf("mpi: rank %d: DoBounded src length %d != plan slab length %d",
			pl.c.rank, len(src), sh.slabLen))
	}
	c := pl.c
	c.maybeCrash()
	m := c.m()
	m.exchCalls.Inc()
	m.exchBytes.Add(pl.wire)
	// Publish: copy src into this epoch's ring slot, label the slot
	// with the call's site, then release the epoch tag. The atomic
	// store orders both before any peer's acquire load, so an observed
	// epoch implies that epoch's contents and label.
	e := pl.epoch + 1
	pl.epoch = e
	me := c.rank
	slots := len(sh.rings[me])
	copy(sh.rings[me][int(e%int64(slots))], src)
	sh.sites[me][int(e%int64(slots))] = pl.site
	sh.epochs[me].Store(e)
	c.w.progress.Add(1)

	// Hard bound: no peer may be more than maxStale epochs behind, and
	// epoch 1 always waits for every peer's first publication (there is
	// no older slab to fall back on).
	lo := e - int64(maxStale)
	if lo < 1 {
		lo = 1
	}
	pl.waitPeers(lo, e)

	// Assemble the gather table from each rank's freshest site-matched
	// publication, clamped to e (a stale slab is accepted only if it is
	// this site's publication from an earlier cycle), and account each
	// slab's age in same-site cycles. When the peer's newest slab
	// carries a different site label, the ring still retains its older
	// publications, so fall back to its newest same-site slab within
	// the hard bound — the same quantity from a whole cycle earlier —
	// and only wait when no retained slab qualifies. (The retained
	// slots scanned here are at least maxStale+2 epochs behind any
	// slot the peer can be concurrently overwriting, by the same
	// divergence bound that keeps the ring contents safe.)
	stEnabled := m.staleness.Enabled()
	for r := range pl.gsrcs {
		pe := sh.epochs[r].Load()
		if pe > e {
			pe = e
		}
		if pe < e && sh.sites[r][int(pe%int64(slots))] != pl.site {
			x := pe - 1
			for x >= lo && sh.sites[r][int(x%int64(slots))] != pl.site {
				x--
			}
			if x >= lo {
				pe = x
			} else {
				pe = pl.waitSiteMatch(r, e)
			}
		}
		pl.gsrcs[r] = sh.rings[r][int(pe%int64(slots))]
		if r == me {
			continue
		}
		// Age = how many same-site publications the slab lags. The
		// accepted epoch is within the hard bound, so (pe, e] lies
		// inside the local rank's own retained label history — and by
		// the collective contract that history equals the peer's.
		st := int64(0)
		for x := pe + 1; x <= e; x++ {
			if sh.sites[me][int(x%int64(slots))] == pl.site {
				st++
			}
		}
		if stEnabled {
			m.staleness.Observe(float64(st))
		}
		if st > 0 {
			m.staleSlabs.Inc()
			pl.stSlabs++
			pl.stSum += st
			if int(st) > pl.stMax {
				pl.stMax = int(st)
			}
		}
	}
	pl.stCalls++
	enabled := m.exchGather.Enabled()
	var t0 time.Time
	if enabled {
		t0 = time.Now()
	}
	gather(pl.gsrcs)
	if enabled {
		m.exchGather.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	c.w.progress.Add(1)
}

// waitPeers blocks until every rank's published epoch is at least lo
// (the hard staleness bound), then keeps waiting up to the plan
// deadline for every rank to reach target. The hard phase registers
// with the watchdog like a barrier (stall and deadlock detection see
// it); the deadline phase is bounded by construction and does not.
func (pl *ExchangePlan[T]) waitPeers(lo, target int64) {
	if pl.minEpoch() >= target {
		return // fast path: everyone already published this epoch
	}
	c, sh := pl.c, pl.sh
	w := c.w
	var tok *blockedOp
	defer func() {
		if tok != nil {
			w.watchExit(tok)
		}
	}()
	if pl.minEpoch() < lo {
		tok = w.watchEnter(c.rank, opBounded, -1, sh.seq, true, false)
		for pl.minEpoch() < lo {
			if w.isAborted() {
				panic(errAborted)
			}
			time.Sleep(boundedPoll)
		}
		w.watchExit(tok)
		tok = nil
	}
	if sh.deadline <= 0 {
		return
	}
	deadline := time.Now().Add(sh.deadline)
	for pl.minEpoch() < target {
		if w.isAborted() {
			panic(errAborted)
		}
		if !time.Now().Before(deadline) {
			return
		}
		time.Sleep(boundedPoll)
	}
}

// waitSiteMatch blocks until peer r's latest publication either
// carries the current call's site label or reaches epoch e, and
// returns the epoch to gather from. A stale slab published for a
// different exchange site is a different quantity in a (possibly)
// different layout — substituting it would corrupt the gather rather
// than age it — so a site mismatch falls back to synchronous behavior
// with that peer. The wait is watchdog-visible ("bounded-wait") and
// abortable like the hard-bound phase; it cannot deadlock, because the
// lagging peer never blocks on ranks ahead of it (their epochs already
// satisfy its hard bound) and so keeps publishing until it reaches a
// matching site or the current epoch.
//
//psdns:hotpath
func (pl *ExchangePlan[T]) waitSiteMatch(r int, e int64) int64 {
	c, sh := pl.c, pl.sh
	w := c.w
	slots := int64(len(sh.rings[r]))
	tok := w.watchEnter(c.rank, opBounded, r, sh.seq, true, false)
	defer w.watchExit(tok)
	for {
		pe := sh.epochs[r].Load()
		if pe >= e {
			return e
		}
		if sh.sites[r][int(pe%slots)] == pl.site {
			return pe
		}
		if w.isAborted() {
			panic(errAborted)
		}
		time.Sleep(boundedPoll)
	}
}

// minEpoch returns the lowest published epoch across all ranks.
//
//psdns:hotpath
func (pl *ExchangePlan[T]) minEpoch() int64 {
	sh := pl.sh
	min := int64(1) << 62
	for r := range sh.epochs {
		if e := sh.epochs[r].Load(); e < min {
			min = e
		}
	}
	return min
}

// TakeStaleness returns the worst accepted slab age, the summed age,
// the number of stale peer slabs accepted and the number of DoBounded
// calls since the previous take, then resets the window. Ages are in
// same-site publications (whole exchange cycles — with SetSite labels
// that is whole iterations of the caller's outer loop; without labels
// it degenerates to raw epoch lag). Layers above use it to drive
// staleness-weighted scheme corrections.
func (pl *ExchangePlan[T]) TakeStaleness() (max int, sum, slabs, calls int64) {
	max, sum, slabs, calls = pl.stMax, pl.stSum, pl.stSlabs, pl.stCalls
	pl.stMax, pl.stSum, pl.stSlabs, pl.stCalls = 0, 0, 0, 0
	return
}
