package mpi

import (
	"fmt"
	"time"
)

// A2APlan is a persistent all-to-all: the software analogue of the
// MPI_Alltoall_init persistent collective (and of the paper's
// pre-registered communication buffers — §3.5 allocates every wire
// buffer once at startup and reuses it every step). The send and recv
// buffers are registered once, collectively, at plan time; each Do()
// then exchanges them with zero per-call allocations.
//
// The one-shot Alltoall pays, per call and per destination, a block
// copy into a fresh slice, an interface boxing of that slice, a
// request, a drain goroutine and the mailbox rendezvous. A plan
// instead shares the registered send buffers across ranks (ranks are
// goroutines in one address space) and turns the exchange into
// barrier → direct peer-to-peer copies → barrier. Both barriers are
// watchdog-registered, abortable and reusable, so plans participate in
// the abort cascade and deadlock detection like every other blocking
// operation.
//
// Contract (as for MPI persistent collectives): every rank constructs
// the plan at the same point in its collective order, every rank calls
// Do collectively, the registered buffers must not be replaced (their
// contents are rewritten freely between calls), and send must not
// alias recv. Because data never crosses the mailbox layer, per-message
// fault injection (drops, duplicates, delays) does not apply to plan
// exchanges; crash schedules still fire via the operation counter.
type A2APlan[T any] struct {
	c    *Comm
	sh   *a2aShared[T]
	send []T
	recv []T
	bs   int   // block size in elements
	wire int64 // wire bytes charged per Do: everything but the diagonal
	free bool
}

// a2aShared is the world-side state of one plan: every rank's
// registered send buffer plus the plan's private reusable barrier.
type a2aShared[T any] struct {
	sends [][]T
	bar   *barrier
	refs  int
	seq   int // collective sequence number keying w.plans / w.planBars
}

// NewA2APlan registers send and recv for a persistent all-to-all over
// c. Collective: every rank must construct the plan at the same point
// in its collective-operation order, with equal buffer lengths
// divisible by the communicator size. The call blocks until all ranks
// have registered.
func NewA2APlan[T any](c *Comm, send, recv []T) *A2APlan[T] {
	p := c.Size()
	if len(send)%p != 0 || len(recv) != len(send) {
		panic(fmt.Sprintf("mpi: rank %d: a2a plan buffer sizes %d/%d invalid for %d ranks",
			c.rank, len(send), len(recv), p))
	}
	bs := len(send) / p
	seq := c.nextSeq()
	w := c.w
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		panic(errAborted)
	}
	if w.plans == nil {
		w.plans = map[int]any{}
	}
	var sh *a2aShared[T]
	if v, ok := w.plans[seq]; ok {
		sh = v.(*a2aShared[T])
	} else {
		sh = &a2aShared[T]{sends: make([][]T, p), bar: newBarrier(p), seq: seq}
		w.plans[seq] = sh
		if w.planBars == nil {
			w.planBars = map[int]*barrier{}
		}
		w.planBars[seq] = sh.bar
	}
	if len(sh.sends[c.rank]) != 0 && bs*p != len(sh.sends[0]) {
		w.mu.Unlock()
		panic(fmt.Sprintf("mpi: rank %d: a2a plan length %d disagrees with peers (%d)",
			c.rank, bs*p, len(sh.sends[0])))
	}
	sh.sends[c.rank] = send
	sh.refs++
	w.mu.Unlock()
	pl := &A2APlan[T]{
		c: c, sh: sh, send: send, recv: recv, bs: bs,
		wire: sliceBytes[T](len(send) - bs),
	}
	// All ranks must have registered before the first Do reads a peer's
	// buffer slot.
	sh.bar.wait(w, c.rank)
	return pl
}

// Do executes one exchange of the registered buffers: after it returns
// on every rank, recv[src*bs:(src+1)*bs] holds what rank src had in
// send[me*bs:(me+1)*bs] — exactly Alltoall's semantics. Collective and
// allocation-free; blocked time is recorded in mpi.a2a.wait and wire
// bytes (everything but the diagonal block) in mpi.a2a.bytes.
//
//psdns:hotpath
func (pl *A2APlan[T]) Do() {
	if pl.free {
		panic("mpi: A2APlan used after Free")
	}
	c := pl.c
	c.maybeCrash()
	m := c.m()
	m.a2aMsgs.Inc()
	m.a2aBytes.Add(pl.wire)
	enabled := m.a2aWait.Enabled()
	var t0 time.Time
	if enabled {
		t0 = time.Now()
	}
	// Entry barrier: every rank's send contents are final and no rank is
	// still reading last cycle's recv slices of our send buffer.
	pl.sh.bar.wait(c.w, c.rank)
	bs, me := pl.bs, c.rank
	for src := 0; src < c.w.size; src++ {
		copy(pl.recv[src*bs:(src+1)*bs], pl.sh.sends[src][me*bs:(me+1)*bs])
	}
	// Exit barrier: all ranks are done reading, so callers may overwrite
	// their send buffers the moment Do returns.
	pl.sh.bar.wait(c.w, c.rank)
	if enabled {
		m.a2aWait.ObserveSince(t0)
	}
	// The world's progress marker normally advances on mailbox traffic;
	// plan exchanges bypass mailboxes, so mark progress here to keep the
	// deadlock detector's quiescence window honest.
	c.w.progress.Add(1)
}

// Send returns the registered send buffer.
func (pl *A2APlan[T]) Send() []T { return pl.send }

// Recv returns the registered recv buffer.
func (pl *A2APlan[T]) Recv() []T { return pl.recv }

// Free releases the plan (collective). After every rank has called
// Free the world drops its reference to the shared state and its
// barrier (so the abort cascade stops waking it); the plan must not be
// used afterwards.
func (pl *A2APlan[T]) Free() {
	if pl.free {
		return
	}
	pl.free = true
	w := pl.c.w
	w.mu.Lock()
	pl.sh.refs--
	if pl.sh.refs == 0 {
		delete(w.plans, pl.sh.seq)
		delete(w.planBars, pl.sh.seq)
	}
	w.mu.Unlock()
}
