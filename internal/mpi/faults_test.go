package mpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestCrashScheduleSurfacesTypedError: a scheduled rank crash reaches
// the caller as a *RankError wrapping a *CrashError, instead of
// hanging the peers.
func TestCrashScheduleSurfacesTypedError(t *testing.T) {
	err := TryRun(3, func(c *Comm) {
		c.Barrier()
		c.Barrier() // rank 1 crashes initiating this one
		c.Barrier()
	}, WithFaults(&Faults{Crash: map[int]int{1: 2}}))
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %T (%v) is not *RankError", err, err)
	}
	if re.Rank != 1 {
		t.Fatalf("RankError.Rank = %d, want 1", re.Rank)
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("cause %v is not *CrashError", re.Err)
	}
	if ce.Rank != 1 || ce.Op != 2 {
		t.Fatalf("CrashError = %+v, want rank 1 at op 2", ce)
	}
}

// dropCount runs a fixed send pattern under a probabilistic drop rule
// and returns the total injected-drop count.
func dropCount(t *testing.T, seed int64) float64 {
	t.Helper()
	reg := metrics.NewRegistry()
	err := RunWith(2, reg, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				Send(c, 1, i, []byte{1})
			}
		}
		// Rank 1 never receives: surviving messages just sit in the
		// queue, so drops cannot deadlock the run.
	}, WithFaults(&Faults{
		Seed:  seed,
		Rules: []FaultRule{{Src: 0, Dst: 1, Tag: AnyTag, Scope: ScopeP2P, DropProb: 0.5}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Snapshot().SumOverRanks().Get("mpi.fault.drop", metrics.NoRank)
	if !ok {
		t.Fatal("no mpi.fault.drop counter recorded")
	}
	return e.Value
}

// TestDropDeterminism: the same seed must drop exactly the same
// messages on every run; fault injection is reproducible by contract.
func TestDropDeterminism(t *testing.T) {
	a := dropCount(t, 42)
	b := dropCount(t, 42)
	if a != b {
		t.Fatalf("same seed produced different drop counts: %v vs %v", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("drop count %v not in (0,100): DropProb 0.5 is not being applied per message", a)
	}
}

// TestDelayedDeliveryIsNotADeadlock: a message held on a fault timer
// longer than the deadlock window must not trip the watchdog — the
// pending counter marks the world as still having in-flight traffic.
func TestDelayedDeliveryIsNotADeadlock(t *testing.T) {
	got := make([]float64, 2)
	err := TryRun(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 5, []float64{3.5, 7.25})
			return
		}
		Recv(c, 0, 5, got)
	},
		WithWatchdog(Watchdog{DeadlockAfter: 100 * time.Millisecond, Poll: 5 * time.Millisecond}),
		WithFaults(&Faults{Rules: []FaultRule{{
			Src: AnyRank, Dst: AnyRank, Tag: AnyTag, Scope: ScopeP2P,
			Delay: 300 * time.Millisecond, // 3× the deadlock window
		}}}),
	)
	if err != nil {
		t.Fatalf("delayed delivery was reported as a failure: %v", err)
	}
	if got[0] != 3.5 || got[1] != 7.25 {
		t.Fatalf("delayed message corrupted: %v", got)
	}
}

// TestDuplicateDelivery: DupProb 1 delivers every matching message
// twice; both copies must be receivable and the dup counter must
// record the event.
func TestDuplicateDelivery(t *testing.T) {
	reg := metrics.NewRegistry()
	err := RunWith(2, reg, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 9, []int{11})
			return
		}
		a, b := make([]int, 1), make([]int, 1)
		Recv(c, 0, 9, a)
		Recv(c, 0, 9, b) // the injected duplicate
		if a[0] != 11 || b[0] != 11 {
			panic("duplicate payload mismatch")
		}
	}, WithFaults(&Faults{
		Rules: []FaultRule{{Src: 0, Dst: 1, Tag: 9, Scope: ScopeP2P, DupProb: 1}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := reg.Snapshot().Get("mpi.fault.dup", 0); !ok || e.Value != 1 {
		t.Fatalf("mpi.fault.dup = %+v, want 1 duplication recorded for rank 0", e)
	}
}

// TestFaultValidation: invalid plans are rejected up front as errors,
// not at injection time.
func TestFaultValidation(t *testing.T) {
	cases := []*Faults{
		{Rules: []FaultRule{{Src: AnyRank, Dst: AnyRank, Tag: AnyTag, DropProb: 1.5}}},
		{Rules: []FaultRule{{Src: 7, Dst: AnyRank, Tag: AnyTag}}},
		{Crash: map[int]int{0: 0}},
		{Crash: map[int]int{9: 1}},
	}
	for i, f := range cases {
		if err := TryRun(2, func(c *Comm) {}, WithFaults(f)); err == nil {
			t.Errorf("case %d: invalid fault plan accepted", i)
		}
	}
}

// TestFaultScopeFilters: a collective-only rule must leave
// point-to-point traffic untouched, and MinBytes must exempt small
// messages.
func TestFaultScopeFilters(t *testing.T) {
	err := TryRun(2, func(c *Comm) {
		// Small control allgather survives the MinBytes=1024 drop rule.
		all := make([]float64, 2)
		Allgather(c, []float64{float64(c.Rank())}, all)
		if all[0] != 0 || all[1] != 1 {
			panic("allgather corrupted")
		}
		// P2P traffic is outside ScopeColl entirely.
		buf := make([]byte, 4)
		if c.Rank() == 0 {
			Send(c, 1, 1, []byte{1, 2, 3, 4})
		} else {
			Recv(c, 0, 1, buf)
		}
	},
		fastWatch(),
		WithFaults(&Faults{Rules: []FaultRule{{
			Src: AnyRank, Dst: AnyRank, Tag: AnyTag,
			Scope: ScopeColl, MinBytes: 1024, DropProb: 1,
		}}}),
	)
	if err != nil {
		t.Fatalf("scoped drop rule hit exempt traffic: %v", err)
	}
}
