package mpi

import (
	"errors"
	"testing"

	"repro/internal/metrics"
)

// TestWaitIdempotent: repeated Waits on a completed request must not
// record extra samples into the A2A wait histogram — only the first
// Wait observes the blocked time.
func TestWaitIdempotent(t *testing.T) {
	reg := metrics.NewRegistry()
	const p = 2
	if err := RunWith(p, reg, func(c *Comm) {
		send := make([]float64, p*4)
		recv := make([]float64, p*4)
		req := Ialltoall(c, send, recv)
		req.Wait()
		req.Wait()
		req.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for r := 0; r < p; r++ {
		e, ok := snap.Get("mpi.a2a.wait", r)
		if !ok {
			t.Fatalf("rank %d recorded no wait histogram", r)
		}
		if e.Count != 1 {
			t.Errorf("rank %d wait samples = %d, want 1 (extra Waits must not re-sample)", r, e.Count)
		}
	}
}

// TestDoubleWaitAfterAbort: the first Wait on an aborted request
// re-raises the abort; a second Wait must return silently instead of
// re-panicking (idempotence extends to the failure path).
func TestDoubleWaitAfterAbort(t *testing.T) {
	cause := errors.New("deliberate")
	var first, second any
	err := TryRun(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic(cause) // aborts the world; rank 0's exchange can never finish
		}
		send := make([]float64, 2*4)
		recv := make([]float64, 2*4)
		req := Ialltoall(c, send, recv)
		func() {
			defer func() { first = recover() }()
			req.Wait()
		}()
		func() {
			defer func() { second = recover() }()
			req.Wait()
		}()
		if first != nil && second == nil {
			return // expected shape; fall through to TryRun's error
		}
		panic(errAborted) // keep this rank a silent casualty either way
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("err = %v, want RankError for rank 1", err)
	}
	if first != any(errAborted) {
		t.Fatalf("first Wait recovered %v, want the abort sentinel", first)
	}
	if second != nil {
		t.Fatalf("second Wait re-panicked with %v, want silent return", second)
	}
}

// TestAbortDuringInFlightIAlltoallv: a peer dying while a non-blocking
// variable-count exchange is in flight must surface as that peer's
// RankError, not hang the waiting rank or crash the drain goroutine.
func TestAbortDuringInFlightIAlltoallv(t *testing.T) {
	cause := errors.New("mid-flight failure")
	err := TryRun(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic(cause)
		}
		counts := []int{2, 2}
		displs := []int{0, 2}
		send := make([]float64, 4)
		recv := make([]float64, 4)
		req := IAlltoallv(c, send, counts, displs, recv, counts, displs)
		req.Wait() // peer never participates; abort must wake this
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %T (%v) is not *RankError", err, err)
	}
	if re.Rank != 1 || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want rank 1's original panic", err)
	}
}
