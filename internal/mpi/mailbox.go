package mpi

import "sync"

// matchKey identifies a message class within one (src,dst) pair.
// Collective traffic and point-to-point traffic use disjoint spaces so
// a user tag can never swallow a collective fragment.
type matchKey struct {
	tag  int
	coll bool
}

type message struct {
	key  matchKey
	data any
}

// errAborted is the sentinel panic raised by blocking operations when
// the world has been aborted by a panic on another rank (the MPI_Abort
// analogue). Run treats ranks that die with this value as secondary
// casualties and reports the original panic instead.
type abortError struct{}

func (abortError) Error() string { return "mpi: world aborted by a rank panic" }

var errAborted = abortError{}

// mailbox is the per-(src,dst) delivery queue. Messages with the same
// key are delivered in FIFO order; different keys may be consumed out
// of order (MPI tag matching).
type mailbox struct {
	mu      sync.Mutex
	cv      *sync.Cond
	q       []message
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cv = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.mu.Unlock()
	m.cv.Broadcast()
}

// get blocks until a message with the given key is available, removes
// the first such message and returns its payload. It panics with
// errAborted if the world is aborted while waiting.
func (m *mailbox) get(key matchKey) any {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.q {
			if m.q[i].key == key {
				data := m.q[i].data
				m.q = append(m.q[:i], m.q[i+1:]...)
				return data
			}
		}
		if m.aborted {
			panic(errAborted)
		}
		m.cv.Wait()
	}
}

// abort unblocks all waiters permanently.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cv.Broadcast()
}
