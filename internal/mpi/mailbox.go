package mpi

import (
	"sync"
	"sync/atomic"
	"time"
)

// matchKey identifies a message class within one (src,dst) pair.
// Collective traffic and point-to-point traffic use disjoint spaces so
// a user tag can never swallow a collective fragment.
type matchKey struct {
	tag  int
	coll bool
}

type message struct {
	key  matchKey
	data any
	// bytes is the approximate wire size of the payload, used by the
	// size-dependent fault delay models.
	bytes int64
}

// errAborted is the sentinel panic raised by blocking operations when
// the world has been aborted by a panic on another rank (the MPI_Abort
// analogue). Run treats ranks that die with this value as secondary
// casualties and reports the original panic instead.
type abortError struct{}

func (abortError) Error() string { return "mpi: world aborted by a rank panic" }

var errAborted = abortError{}

// spuriousWakeups counts the times a mailbox waiter woke without its
// message being present. With per-key wakeups this stays near zero
// even under heavy fan-in; BenchmarkMailboxFanIn reports it per op.
var spuriousWakeups atomic.Int64

// waiter tracks the goroutines blocked on one match key of a mailbox,
// each key with its own condition variable so a delivery wakes only
// the waiters that could consume it (at most one key matches any
// message, so the old broadcast woke every other waiter for nothing).
type waiter struct {
	cv *sync.Cond
	n  int
}

// mailbox is the per-(src,dst) delivery queue. Messages with the same
// key are delivered in FIFO order; different keys may be consumed out
// of order (MPI tag matching).
type mailbox struct {
	mu      sync.Mutex
	q       []message
	waiters map[matchKey]*waiter
	aborted bool

	// Immutable identity, set at world construction: the source and
	// destination ranks of this queue plus the owning world, for
	// watchdog progress accounting and fault injection.
	w        *world
	src, dst int
}

func newMailbox(w *world, src, dst int) *mailbox {
	return &mailbox{w: w, src: src, dst: dst, waiters: map[matchKey]*waiter{}}
}

// put delivers msg, first applying any configured fault rules: the
// message may be dropped, duplicated, or held on a timer before it
// becomes visible to get. It is called only from rank src's goroutine,
// which keeps the per-mailbox fault stream deterministic.
func (m *mailbox) put(msg message) {
	f := m.w.faults
	if f == nil {
		m.deliver(msg)
		return
	}
	drop, dup, delay := f.outcome(m.src, m.dst, msg.key, msg.bytes)
	if drop {
		f.drops[m.src].Inc()
		return
	}
	n := 1
	if dup {
		f.dups[m.src].Inc()
		n = 2
	}
	if delay > 0 {
		f.delays[m.src].Inc()
		// In-flight messages count as pending so the deadlock detector
		// does not mistake a delayed world for a dead one.
		m.w.pending.Add(int64(n))
		for i := 0; i < n; i++ {
			time.AfterFunc(delay, func() {
				m.deliver(msg)
				m.w.pending.Add(-1)
			})
		}
		return
	}
	for i := 0; i < n; i++ {
		m.deliver(msg)
	}
}

// deliver enqueues msg and wakes only the waiters interested in its
// key.
func (m *mailbox) deliver(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	wt := m.waiters[msg.key]
	m.mu.Unlock()
	m.w.progress.Add(1)
	if wt != nil {
		wt.cv.Signal()
	}
}

// get blocks until a message with the given key is available, removes
// the first such message and returns its payload. helper marks the
// drain goroutines of non-blocking collectives, whose blocking must
// not count the rank itself as blocked. It panics with errAborted if
// the world is aborted while waiting.
func (m *mailbox) get(key matchKey, helper bool) any {
	m.mu.Lock()
	defer m.mu.Unlock()
	var tok *blockedOp
	defer func() {
		if tok != nil {
			m.w.watchExit(tok)
		}
	}()
	for {
		for i := range m.q {
			if m.q[i].key == key {
				data := m.q[i].data
				// Shift the tail down and zero the vacated slot: a bare
				// append(m.q[:i], m.q[i+1:]...) leaves a duplicate
				// reference to a payload in the backing array, retaining
				// large pencil buffers long past delivery.
				copy(m.q[i:], m.q[i+1:])
				m.q[len(m.q)-1] = message{}
				m.q = m.q[:len(m.q)-1]
				m.w.progress.Add(1)
				return data
			}
		}
		if m.aborted {
			panic(errAborted)
		}
		if tok == nil {
			tok = m.w.watchEnter(m.dst, opRecv, m.src, key.tag, key.coll, helper)
		} else {
			spuriousWakeups.Add(1)
		}
		wt := m.waiters[key]
		if wt == nil {
			wt = &waiter{cv: sync.NewCond(&m.mu)}
			m.waiters[key] = wt
		}
		wt.n++
		wt.cv.Wait()
		wt.n--
		if wt.n == 0 && m.waiters[key] == wt {
			delete(m.waiters, key)
		}
	}
}

// abort unblocks all waiters permanently.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	for _, wt := range m.waiters {
		wt.cv.Broadcast()
	}
	m.mu.Unlock()
}
