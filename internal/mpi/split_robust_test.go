package mpi

import (
	"errors"
	"testing"
	"time"
)

// A deadlock confined to a sub-communicator must surface as a typed
// StallError: Split sub-worlds run their own watchdog under the
// parent's configuration.
func TestSplitInheritsWatchdog(t *testing.T) {
	err := TryRun(4, func(c *Comm) {
		row := c.Split(c.Rank()/2, c.Rank()%2)
		defer func() { _ = row }()
		buf := make([]int, 1)
		if c.Rank() < 2 {
			// Row 0 deadlocks on mismatched tags inside the sub-comm.
			if row.Rank() == 0 {
				Recv(row, 1, 5, buf) // peer sends tag 6
			} else {
				Recv(row, 0, 7, buf) // peer never sends
			}
		} else {
			// Row 1 stays healthy, then blocks in a parent-world
			// barrier it can never pass (row 0 is stuck) — the abort
			// cascade must wake it.
			Send(row, 1-row.Rank(), 9, []int{1})
			buf := make([]int, 1)
			Recv(row, 1-row.Rank(), 9, buf)
			c.Barrier()
		}
	}, fastWatch())
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *StallError", err, err)
	}
	if st.Op != opRecv {
		t.Fatalf("StallError = %+v, want a recv stall inside the sub-communicator", st)
	}
}

// A crash schedule follows the rank into sub-communicators: the
// operation count is per communicator, so ops issued only on the
// sub-communicator still advance toward the scheduled crash.
func TestSplitInheritsCrashSchedule(t *testing.T) {
	// Rank 3 issues only three operations on the world communicator
	// (inside Split itself), so a crash scheduled for operation 5 can
	// only fire through the sub-communicator's inherited schedule.
	err := TryRun(4, func(c *Comm) {
		col := c.Split(c.Rank()%2, c.Rank()/2)
		for i := 0; i < 8; i++ {
			col.Barrier()
		}
	}, fastWatch(), WithFaults(&Faults{Crash: map[int]int{3: 5}}))
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v) is not *CrashError", err, err)
	}
	if ce.Op != 5 {
		t.Fatalf("CrashError = %+v, want crash at sub-communicator op 5", ce)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 3 {
		t.Fatalf("error %v does not name world rank 3", err)
	}
}

// A watchdog-off world must not grow monitors through Split, and a
// healthy split-heavy run must stay clean under the default watchdog.
func TestSplitWatchdogOffAndHealthy(t *testing.T) {
	if err := TryRun(4, func(c *Comm) {
		row := c.Split(c.Rank()/2, c.Rank())
		if row.w.watch != nil || row.w.wdOn {
			panic("split sub-world has a watchdog despite Off")
		}
		row.Barrier()
	}, WithWatchdog(Watchdog{Off: true})); err != nil {
		t.Fatal(err)
	}
	if err := TryRun(4, func(c *Comm) {
		row, col := c.CartGrid(2, 2)
		if row.w.watch == nil || col.w.watch == nil {
			panic("grid sub-worlds missing inherited watchdogs")
		}
		for i := 0; i < 3; i++ {
			row.Barrier()
			time.Sleep(time.Millisecond)
			col.Barrier()
		}
	}, fastWatch()); err != nil {
		t.Fatal(err)
	}
}

// A rank that returns from its function stops counting toward every
// sub-communicator's quiescence check, not just the root world's. The
// deadlock here spans three sub-worlds — rank 1 waits on exited rank
// 3 in their column group, rank 0 waits on stuck rank 1 in their row
// group, rank 2 waits on exited rank 3 in theirs — so no sub-world is
// fully blocked until the exit cascade marks rank 3 done in each
// world it belongs to.
func TestRankExitCascadesIntoSubWorlds(t *testing.T) {
	err := TryRun(4, func(c *Comm) {
		row, col := c.CartGrid(2, 2)
		if c.Rank() == 3 {
			return // never enters the exchanges below
		}
		buf := make([]int, 1)
		if c.Rank() == 1 {
			Recv(col, 1, 4, buf) // col group {1,3}: peer 3 exited
		} else {
			row.Barrier() // row group {0,1}: rank 1 is stuck above
		}
	}, fastWatch())
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *StallError", err, err)
	}
}
