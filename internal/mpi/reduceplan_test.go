package mpi

import (
	"math"
	"testing"
)

func TestReducePlanMatchesAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		Run(p, func(c *Comm) {
			const n = 5
			pl := NewReducePlan(c, n)
			defer pl.Free()
			for iter := 0; iter < 3; iter++ {
				v := make([]float64, n)
				ref := make([]float64, n)
				for i := range v {
					v[i] = float64((c.Rank()+1)*(i+1)) * 0.25 * float64(iter+1)
					ref[i] = v[i]
				}
				pl.Sum(v)
				AllreduceSum(c, ref)
				for i := range v {
					if v[i] != ref[i] {
						t.Errorf("p=%d iter=%d sum[%d]=%g want %g", p, iter, i, v[i], ref[i])
					}
				}
				for i := range v {
					v[i] = math.Sin(float64(c.Rank()*n + i))
					ref[i] = v[i]
				}
				pl.Max(v)
				AllreduceMax(c, ref)
				for i := range v {
					if v[i] != ref[i] {
						t.Errorf("p=%d iter=%d max[%d]=%g want %g", p, iter, i, v[i], ref[i])
					}
				}
			}
		})
	}
}

func TestReducePlanBitwiseIdenticalAcrossRanks(t *testing.T) {
	// The fold walks rank blocks in rank order, so every rank computes
	// the identical float64 — the property per-step controllers depend
	// on for collective agreement.
	Run(4, func(c *Comm) {
		pl := NewReducePlan(c, 3)
		defer pl.Free()
		v := []float64{1e-17 * float64(c.Rank()), 1 + 1e-16*float64(c.Rank()), -0.1}
		pl.Sum(v)
		all := make([]float64, 4*3)
		Allgather(c, v, all)
		for r := 1; r < 4; r++ {
			for i := 0; i < 3; i++ {
				if all[r*3+i] != all[i] {
					t.Fatalf("rank %d element %d differs: %g vs %g", r, i, all[r*3+i], all[i])
				}
			}
		}
	})
}

func TestReducePlanZeroAllocs(t *testing.T) {
	Run(2, func(c *Comm) {
		pl := NewReducePlan(c, 4)
		defer pl.Free()
		v := make([]float64, 4)
		for i := 0; i < 3; i++ {
			pl.Sum(v)
			pl.Max(v)
		}
		if c.Rank() == 0 {
			avg := testing.AllocsPerRun(50, func() {
				pl.Sum(v)
				pl.Max(v)
			})
			if avg != 0 {
				t.Errorf("ReducePlan steady state allocates %.2f per op", avg)
			}
		} else {
			for i := 0; i < 51; i++ {
				pl.Sum(v)
				pl.Max(v)
			}
		}
	})
}

func TestReducePlanLengthMismatchPanics(t *testing.T) {
	err := TryRun(1, func(c *Comm) {
		pl := NewReducePlan(c, 2)
		defer pl.Free()
		pl.Sum(make([]float64, 3))
	})
	if err == nil {
		t.Fatal("expected length-mismatch panic to surface through TryRun")
	}
}
