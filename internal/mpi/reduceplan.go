package mpi

import "fmt"

// ReducePlan is a persistent allreduce for short float64 vectors: the
// zero-allocation counterpart of AllreduceSum/AllreduceMax, built on a
// registered A2APlan. Per-step physics controllers (band forcing's
// shell energies, injection-rate accounting) sit inside the solver's
// hot loop, where the one-shot allreduce's fresh gather buffer and
// mailbox traffic would show up as per-step allocations; a plan
// registers everything once at construction and each Sum/Max is then
// barrier → direct peer copies → local fold, allocation-free.
//
// Contract: collective construction (every rank, same point in the
// collective order, same n), collective Sum/Max calls in the same
// order, and Free when done. The reduction folds rank blocks in rank
// order, so the result is bitwise-identical on every rank and across
// repeated runs (the same guarantee allreduce gives).
type ReducePlan struct {
	pl *A2APlan[float64]
	n  int
	p  int
}

// NewReducePlan registers a persistent allreduce of n-element float64
// vectors over c (collective).
func NewReducePlan(c *Comm, n int) *ReducePlan {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: rank %d: reduce plan needs n > 0, got %d", c.rank, n))
	}
	p := c.Size()
	return &ReducePlan{
		pl: NewA2APlan(c, make([]float64, p*n), make([]float64, p*n)),
		n:  n,
		p:  p,
	}
}

// Sum replaces each element of v by its sum over all ranks, in place
// on every rank (collective, allocation-free). len(v) must be the
// plan's registered length.
//
//psdns:hotpath
func (r *ReducePlan) Sum(v []float64) {
	r.exchange(v)
	recv := r.pl.Recv()
	copy(v, recv[:r.n])
	for src := 1; src < r.p; src++ {
		blk := recv[src*r.n : (src+1)*r.n]
		for i, x := range blk {
			v[i] += x
		}
	}
}

// Max replaces each element of v by its maximum over all ranks, in
// place on every rank (collective, allocation-free).
//
//psdns:hotpath
func (r *ReducePlan) Max(v []float64) {
	r.exchange(v)
	recv := r.pl.Recv()
	copy(v, recv[:r.n])
	for src := 1; src < r.p; src++ {
		blk := recv[src*r.n : (src+1)*r.n]
		for i, x := range blk {
			if x > v[i] {
				v[i] = x
			}
		}
	}
}

// exchange replicates v into every destination block and runs the
// underlying all-to-all, after which recv holds rank i's vector in
// block i.
//
//psdns:hotpath
func (r *ReducePlan) exchange(v []float64) {
	if len(v) != r.n {
		panic(fmt.Sprintf("mpi: reduce plan registered for %d elements, got %d", r.n, len(v)))
	}
	send := r.pl.Send()
	for dst := 0; dst < r.p; dst++ {
		copy(send[dst*r.n:(dst+1)*r.n], v)
	}
	r.pl.Do()
}

// Free releases the plan (collective).
func (r *ReducePlan) Free() { r.pl.Free() }
