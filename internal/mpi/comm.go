package mpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// world owns the shared state of one communicator: the P×P mailbox
// matrix, a reusable barrier, the abort flag raised when any rank
// panics, the metrics registry the ranks record traffic into, and the
// robustness layer (stall watchdog + fault injection) when installed.
type world struct {
	size    int
	boxes   []*mailbox // boxes[src*size+dst]
	barrier *barrier
	reg     *metrics.Registry

	// watch is the stall watchdog's bookkeeping; nil on unmonitored
	// worlds. Split sub-worlds run their own watchState under the
	// parent's configuration (wd/wdOn below), so stalls inside
	// sub-communicator exchanges are detected too.
	watch *watchState
	// wd is the watchdog configuration this world runs under (already
	// defaulted); wdOn records whether monitoring is enabled. Split
	// copies both into sub-worlds.
	wd   Watchdog
	wdOn bool
	// faults is the compiled fault-injection plan; nil when none.
	faults *faultState

	// progress counts mailbox deliveries and removals; the deadlock
	// detector uses it as a quiescence marker.
	progress atomic.Int64
	// pending counts fault-delayed messages still on a timer.
	pending atomic.Int64

	// fromParent maps a parent-world rank to this sub-world's rank for
	// worlds created by Split; nil on the root world. It lets rankDone
	// cascade a rank's exit into every sub-communicator the rank is a
	// member of, so no sub-world's deadlock detector keeps waiting on a
	// rank that can never re-enter it.
	fromParent map[int]int

	mu       sync.Mutex
	children []*world // sub-communicators created by Split
	aborted  bool
	// plans maps a collective sequence number to the shared state of a
	// persistent collective (see A2APlan); planBars maps the same
	// sequence number to the plan's private barrier, kept separately so
	// abortAll can wake it. Both entries are removed when the plan's
	// last reference is Freed, so long-running worlds that build and
	// tear down plans do not accumulate dead barriers.
	plans    map[int]any
	planBars map[int]*barrier
}

func newWorld(p int, reg *metrics.Registry, f *faultState) *world {
	w := &world{size: p, reg: reg, faults: f}
	w.barrier = newBarrier(p)
	w.boxes = make([]*mailbox, p*p)
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			w.boxes[src*p+dst] = newMailbox(w, src, dst)
		}
	}
	return w
}

// abortAll wakes every blocked rank of this world and of every
// sub-communicator derived from it; they panic with errAborted.
func (w *world) abortAll() {
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		return
	}
	w.aborted = true
	children := append([]*world(nil), w.children...)
	planBars := make([]*barrier, 0, len(w.planBars))
	for _, b := range w.planBars {
		planBars = append(planBars, b)
	}
	w.mu.Unlock()
	for _, b := range w.boxes {
		b.abort()
	}
	w.barrier.abort()
	for _, b := range planBars {
		b.abort()
	}
	for _, c := range children {
		c.abortAll()
	}
}

func (w *world) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}

// stopWatches stops this world's watchdog monitor and, recursively,
// every descendant sub-world's. Called once by run after all ranks
// have returned; Split sub-worlds have no teardown of their own, so
// their monitors live until the whole run ends.
func (w *world) stopWatches() {
	if w.watch != nil {
		close(w.watch.stop)
		<-w.watch.done
	}
	w.mu.Lock()
	children := append([]*world(nil), w.children...)
	w.mu.Unlock()
	for _, c := range children {
		c.stopWatches()
	}
}

// deepStallErr returns this world's stall verdict, or the first one
// recorded by a descendant sub-world's watchdog: a stall detected
// inside a sub-communicator exchange aborts the whole run, and the
// parent's ranks then die of the bare cascade, so the sub-world holds
// the only typed account of what happened.
func (w *world) deepStallErr() *StallError {
	if st := w.stallErr(); st != nil {
		return st
	}
	w.mu.Lock()
	children := append([]*world(nil), w.children...)
	w.mu.Unlock()
	for _, c := range children {
		if st := c.deepStallErr(); st != nil {
			return st
		}
	}
	return nil
}

// rankDone records that one of this world's ranks has returned from
// its rank function, here and transitively in every sub-communicator
// the rank belongs to. A returned rank can never re-enter an exchange,
// so leaving it "live" in a sub-world's watchState would let a
// deadlock among the remaining members — e.g. pencil ranks blocked in
// a row-group transpose whose peer exited — sit below the quiescence
// detector forever.
func (w *world) rankDone(rank int) {
	if w == nil {
		return
	}
	w.watch.rankDone(rank)
	w.mu.Lock()
	kids := append([]*world(nil), w.children...)
	w.mu.Unlock()
	for _, ch := range kids {
		if sub, ok := ch.fromParent[rank]; ok {
			ch.rankDone(sub)
		}
	}
}

// adoptChild registers a sub-communicator for cascading aborts.
func (w *world) adoptChild(c *world) {
	w.mu.Lock()
	w.children = append(w.children, c)
	aborted := w.aborted
	w.mu.Unlock()
	if aborted {
		c.abortAll()
	}
}

// Comm is one rank's handle on a communicator, analogous to an
// MPI_Comm plus the implicit rank of MPI_Comm_rank. A Comm is used by
// exactly one goroutine at a time, except that non-blocking collective
// Requests may drain it from their own goroutine until waited on.
type Comm struct {
	w    *world
	rank int
	// seq numbers collective operations. Every rank of a communicator
	// must initiate collectives in the same order (as in MPI), so the
	// rank-local counter agrees across ranks without coordination.
	seq int
	// ops counts operation initiations for the fault layer's crash
	// schedules (see Faults.Crash).
	ops int
	// met caches the rank-labelled metric handles; built lazily by the
	// owning goroutine on first instrumented operation.
	met *commMetrics
}

// commMetrics are the per-rank instrumentation handles of one Comm:
// bytes and message counts per collective family, time blocked waiting
// on all-to-alls, and time spent inside barriers (whose per-rank
// spread is the barrier skew). All handles are nil-safe no-ops when
// the world has no registry.
type commMetrics struct {
	a2aBytes, a2aMsgs    *metrics.Counter
	collBytes, collMsgs  *metrics.Counter
	p2pBytes, p2pMsgs    *metrics.Counter
	exchBytes, exchCalls *metrics.Counter
	a2aWait              *metrics.Histogram
	barrierWait          *metrics.Histogram
	// exchGather records the wall time of each fused-exchange gather
	// pass in nanoseconds (see ExchangePlan.Do).
	exchGather *metrics.Histogram
	// staleness records the per-peer epoch lag each DoBounded gather
	// observed (zero when the peer had published the current epoch);
	// staleSlabs counts the peer slabs accepted with lag > 0.
	staleness  *metrics.Histogram
	staleSlabs *metrics.Counter
}

func (c *Comm) m() *commMetrics {
	if c.met == nil {
		r := c.w.reg
		//psdns:allow hotalloc one-time lazy init of the metric handle block, amortized over every later operation
		c.met = &commMetrics{
			a2aBytes:    r.CounterRank("mpi.a2a.bytes", c.rank),
			a2aMsgs:     r.CounterRank("mpi.a2a.calls", c.rank),
			collBytes:   r.CounterRank("mpi.coll.bytes", c.rank),
			collMsgs:    r.CounterRank("mpi.coll.calls", c.rank),
			p2pBytes:    r.CounterRank("mpi.p2p.bytes", c.rank),
			p2pMsgs:     r.CounterRank("mpi.p2p.calls", c.rank),
			exchBytes:   r.CounterRank("exchange.bytes", c.rank),
			exchCalls:   r.CounterRank("exchange.calls", c.rank),
			a2aWait:     r.HistogramRank("mpi.a2a.wait", c.rank),
			barrierWait: r.HistogramRank("mpi.barrier.wait", c.rank),
			exchGather:  r.HistogramRank("exchange.gather.ns", c.rank),
			staleness:   r.HistogramRank("exchange.staleness", c.rank),
			staleSlabs:  r.CounterRank("exchange.stale.slabs", c.rank),
		}
	}
	return c.met
}

// Metrics returns the registry this communicator's world records into
// (never nil when the world was created by Run/TryRun; RunWith may
// have been given nil). Layers above mpi use it to attach their own
// rank-labelled instrumentation to the same registry.
func (c *Comm) Metrics() *metrics.Registry { return c.w.reg }

// Rank reports the calling rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return c.w.size }

func (c *Comm) nextSeq() int {
	c.seq++
	return c.seq
}

func (c *Comm) box(src, dst int) *mailbox {
	return c.w.boxes[src*c.w.size+dst]
}

// RankError is the typed failure surface of TryRun: the first rank
// whose function panicked, with the recovered value as the cause.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Err)
}

// Unwrap exposes the cause for errors.Is/As chains.
func (e *RankError) Unwrap() error { return e.Err }

// runConfig is the assembled configuration of one world.
type runConfig struct {
	reg    *metrics.Registry
	wd     Watchdog
	faults *Faults
}

// RunOption customizes Run/TryRun.
type RunOption func(*runConfig)

// WithRegistry directs the world's traffic accounting into an explicit
// metrics registry (nil disables instrumentation).
func WithRegistry(reg *metrics.Registry) RunOption {
	return func(c *runConfig) { c.reg = reg }
}

// WithWatchdog customizes the world's stall watchdog (deadlock window,
// per-operation deadline, poll period, or Off to disable). The
// watchdog runs by default with deadlock detection only.
func WithWatchdog(wd Watchdog) RunOption {
	return func(c *runConfig) { c.wd = wd }
}

// WithFaults installs a deterministic fault-injection plan on the
// world: per-(src,dst,tag) message drops, duplicates and delays, plus
// scheduled rank crashes. See Faults.
func WithFaults(f *Faults) RunOption {
	return func(c *runConfig) { c.faults = f }
}

// Run executes fn on p ranks, each on its own goroutine, and returns
// after all ranks finish. A panic on any rank aborts the whole world
// (blocked peers are woken, as with MPI_Abort) and is re-raised on the
// caller with the rank attached, so test failures point at the rank
// that misbehaved rather than deadlocking. A detected deadlock or
// stall likewise aborts the world and re-raises as the watchdog's
// StallError message. Use TryRun to receive the failure as an error
// instead of a panic.
func Run(p int, fn func(*Comm), opts ...RunOption) {
	if err := run(p, fn, metrics.Default(), opts); err != nil {
		panic(err.Error())
	}
}

// TryRun is Run with an error contract: a panic on any rank is
// recovered into a *RankError naming the first rank that misbehaved
// (cascade casualties are not reported), instead of crashing the
// calling process. A watchdog-detected deadlock or stall is returned
// as a *StallError naming the blocked rank, peer and tag. A clean run
// returns nil.
func TryRun(p int, fn func(*Comm), opts ...RunOption) error {
	return run(p, fn, metrics.Default(), opts)
}

// RunWith is TryRun recording traffic into an explicit metrics
// registry (nil disables instrumentation for the world).
func RunWith(p int, reg *metrics.Registry, fn func(*Comm), opts ...RunOption) error {
	return run(p, fn, reg, opts)
}

func run(p int, fn func(*Comm), reg *metrics.Registry, opts []RunOption) error {
	if p < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", p))
	}
	cfg := runConfig{reg: reg}
	for _, o := range opts {
		o(&cfg)
	}
	fs, err := compileFaults(cfg.faults, p, cfg.reg)
	if err != nil {
		return err
	}
	w := newWorld(p, cfg.reg, fs)
	if !cfg.wd.Off {
		w.wd, w.wdOn = cfg.wd.withDefaults(), true
		w.watch = newWatchState(w.wd, p)
		go w.watch.monitor(w)
	}
	var wg sync.WaitGroup
	panics := make([]any, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer w.rankDone(rank)
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
					w.abortAll()
				}
			}()
			fn(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	w.stopWatches()
	// Report the primary panic, skipping ranks that died from the
	// cascade itself.
	for r, e := range panics {
		if e != nil && e != any(errAborted) {
			return &RankError{Rank: r, Err: panicErr(e)}
		}
	}
	// No rank misbehaved on its own: a watchdog stall is the cause —
	// possibly detected by a sub-communicator's watchdog, whose abort
	// cascades up as bare errAborted panics on the parent's ranks.
	if st := w.deepStallErr(); st != nil {
		return st
	}
	for r, e := range panics {
		if e != nil {
			return &RankError{Rank: r, Err: panicErr(e)}
		}
	}
	return nil
}

// panicErr converts a recovered panic value into an error, keeping
// error values intact for errors.Is/As.
func panicErr(e any) error {
	if err, ok := e.(error); ok {
		return err
	}
	return fmt.Errorf("%v", e)
}

// barrier is a reusable counting barrier that can be aborted.
type barrier struct {
	mu      sync.Mutex
	cv      *sync.Cond
	n       int
	count   int
	phase   int
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cv = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait(w *world, rank int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(errAborted)
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cv.Broadcast()
		return
	}
	var tok *blockedOp
	defer func() {
		if tok != nil {
			w.watchExit(tok)
		}
	}()
	tok = w.watchEnter(rank, opBarrier, -1, 0, true, false)
	for b.phase == phase {
		if b.aborted {
			panic(errAborted)
		}
		b.cv.Wait()
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cv.Broadcast()
}

// Barrier blocks until every rank of the communicator has entered it.
// The per-rank time spent inside the barrier is recorded; its spread
// across ranks is the barrier skew.
func (c *Comm) Barrier() {
	c.maybeCrash()
	stop := c.m().barrierWait.Start()
	c.w.barrier.wait(c.w, c.rank)
	stop()
}

// Split partitions the communicator into sub-communicators by color,
// ordering ranks within each new communicator by (key, old rank) as
// MPI_Comm_split does. Every rank must call Split collectively.
//
// Sub-communicators inherit the parent's robustness wiring: the abort
// cascade, the watchdog configuration (each sub-world runs its own
// monitor, so a stall inside a sub-communicator exchange surfaces as
// a typed StallError), and the fault plan's crash schedules (a rank's
// crash follows it into every communicator it joins; the operation
// index counts per communicator, since each Comm keeps its own
// counter). Message-level fault rules stay with the parent world's
// mailboxes: the sub-communicator's traffic is new traffic.
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, rank int }
	mine := entry{color, key, c.rank}
	all := make([]entry, c.Size())
	Allgather(c, []entry{mine}, all)

	var group []entry
	for _, e := range all {
		if e.color == color {
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	newRank := -1
	for i, e := range group {
		if e.rank == c.rank {
			newRank = i
		}
	}

	// The lowest old rank of each color builds the shared world and
	// distributes it to its group members over the parent communicator.
	var nw *world
	if group[0].rank == c.rank {
		parentRanks := make([]int, len(group))
		for i, e := range group {
			parentRanks[i] = e.rank
		}
		nw = newWorld(len(group), c.w.reg, c.w.faults.forSubgroup(parentRanks))
		nw.fromParent = make(map[int]int, len(parentRanks))
		for sub, pr := range parentRanks {
			nw.fromParent[pr] = sub
		}
		if c.w.wdOn {
			nw.wd, nw.wdOn = c.w.wd, true
			nw.watch = newWatchState(nw.wd, len(group))
			go nw.watch.monitor(nw)
		}
		c.w.adoptChild(nw) // cascade aborts into the sub-communicator
		for _, e := range group[1:] {
			Send(c, e.rank, splitTag, []*world{nw})
		}
	} else {
		buf := make([]*world, 1)
		Recv(c, group[0].rank, splitTag, buf)
		nw = buf[0]
	}
	// Keep parent collective ordering consistent across ranks.
	c.Barrier()
	return &Comm{w: nw, rank: newRank}
}

// splitTag is a reserved point-to-point tag used by Split.
const splitTag = -1 << 30

// CartGrid builds the row and column communicators of a Pr×Pc process
// grid (rank = row*Pc + col), the layout used by the 2D pencil
// decomposition. Row communicators group ranks with equal row index;
// column communicators group ranks with equal column index.
func (c *Comm) CartGrid(pr, pc int) (row, col *Comm) {
	if pr*pc != c.Size() {
		panic(fmt.Sprintf("mpi: grid %dx%d does not match world size %d", pr, pc, c.Size()))
	}
	r := c.rank / pc
	k := c.rank % pc
	row = c.Split(r, k)
	col = c.Split(k+pr, r) // disjoint color space unnecessary per split call, but harmless
	return row, col
}
