package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fastWatch is a tight watchdog configuration for tests: deadlocks are
// declared after 150ms of global quiescence.
func fastWatch() RunOption {
	return WithWatchdog(Watchdog{DeadlockAfter: 150 * time.Millisecond, Poll: 5 * time.Millisecond})
}

// TestDroppedMessageReturnsStallError is the acceptance test for the
// watchdog: a run that previously hung forever on a dropped message
// must fail fast with a typed StallError naming the blocked rank, peer
// and tag.
func TestDroppedMessageReturnsStallError(t *testing.T) {
	start := time.Now()
	err := TryRun(2, func(c *Comm) {
		if c.Rank() == 1 {
			Send(c, 0, 7, []float64{1, 2, 3}) // dropped by the fault rule
			return
		}
		buf := make([]float64, 3)
		Recv(c, 1, 7, buf) // would block forever without the watchdog
	},
		fastWatch(),
		WithFaults(&Faults{Rules: []FaultRule{DropAll(1, 0, 7)}}),
	)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall detection took %v, want well under the test timeout", elapsed)
	}
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *StallError", err, err)
	}
	if st.Rank != 0 || st.Peer != 1 || st.Tag != 7 || st.Op != opRecv {
		t.Fatalf("StallError = %+v, want rank 0 blocked in recv from peer 1 tag 7", st)
	}
	if !st.Deadlock {
		t.Fatalf("StallError.Deadlock = false, want true: %+v", st)
	}
	for _, want := range []string{"rank 0", "peer 1", "tag 7", "recv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Error() = %q, missing %q", err.Error(), want)
		}
	}
}

// TestMismatchedTagDeadlock: both ranks block on tags the other never
// sends — a classic tag-mismatch deadlock with no faults involved.
func TestMismatchedTagDeadlock(t *testing.T) {
	err := TryRun(2, func(c *Comm) {
		buf := make([]int, 1)
		if c.Rank() == 0 {
			Send(c, 1, 2, []int{42})
			Recv(c, 1, 1, buf) // rank 1 never sends tag 1
		} else {
			Recv(c, 0, 3, buf) // rank 0 sent tag 2, not 3
		}
	}, fastWatch())
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *StallError", err, err)
	}
	if !st.Deadlock || st.Op != opRecv {
		t.Fatalf("StallError = %+v, want a deadlock in recv", st)
	}
}

// TestPerOpDeadline: a single slow peer trips the per-operation
// deadline even though the world is not deadlocked (the peer is alive
// and computing).
func TestPerOpDeadline(t *testing.T) {
	err := TryRun(2, func(c *Comm) {
		buf := make([]int, 1)
		if c.Rank() == 1 {
			time.Sleep(600 * time.Millisecond) // straggler
			Send(c, 0, 4, []int{1})
			return
		}
		Recv(c, 1, 4, buf)
	}, WithWatchdog(Watchdog{
		Deadline:      100 * time.Millisecond,
		DeadlockAfter: time.Hour, // quiescence detection out of the picture
		Poll:          5 * time.Millisecond,
	}))
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *StallError", err, err)
	}
	if st.Deadlock {
		t.Fatalf("StallError.Deadlock = true, want per-op deadline (false): %+v", st)
	}
	if st.Rank != 0 || st.Peer != 1 || st.Tag != 4 {
		t.Fatalf("StallError = %+v, want rank 0 waiting on peer 1 tag 4", st)
	}
	if st.Waited < 100*time.Millisecond {
		t.Fatalf("StallError.Waited = %v, want >= deadline", st.Waited)
	}
}

// TestWatchdogNoFalsePositive: a healthy world whose ranks alternate
// compute (sleep) and communication must survive a deadlock window
// much shorter than the run.
func TestWatchdogNoFalsePositive(t *testing.T) {
	err := TryRun(4, func(c *Comm) {
		send := make([]float64, 4*8)
		recv := make([]float64, 4*8)
		for it := 0; it < 6; it++ {
			req := Ialltoall(c, send, recv)
			time.Sleep(30 * time.Millisecond) // overlapped compute
			req.Wait()
			c.Barrier()
		}
	}, WithWatchdog(Watchdog{DeadlockAfter: 60 * time.Millisecond, Poll: 5 * time.Millisecond}))
	if err != nil {
		t.Fatalf("healthy run reported %v", err)
	}
}

// TestWatchdogOff: with monitoring disabled the same dropped message
// is only caught by the caller's own patience; verify the option wires
// through by checking a clean run still works and that Off worlds have
// no monitor state.
func TestWatchdogOff(t *testing.T) {
	err := TryRun(2, func(c *Comm) {
		c.Barrier()
	}, WithWatchdog(Watchdog{Off: true}))
	if err != nil {
		t.Fatalf("clean run with watchdog off reported %v", err)
	}
}
