package mpi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// A plan exchange must be element-for-element identical to Alltoall.
func TestA2APlanMatchesAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			const bs = 5
			Run(p, func(c *Comm) {
				send := make([]complex128, p*bs)
				recvPlan := make([]complex128, p*bs)
				recvRef := make([]complex128, p*bs)
				plan := NewA2APlan(c, send, recvPlan)
				for iter := 0; iter < 3; iter++ {
					for i := range send {
						send[i] = complex(float64(c.Rank()*1000+iter*100+i), float64(iter))
					}
					plan.Do()
					Alltoall(c, send, recvRef)
					for i := range recvPlan {
						if recvPlan[i] != recvRef[i] {
							panic(fmt.Sprintf("rank %d iter %d: plan[%d]=%v ref=%v",
								c.Rank(), iter, i, recvPlan[i], recvRef[i]))
						}
					}
				}
				plan.Free()
			})
		})
	}
}

// Two plans on the same communicator must keep separate shared state.
func TestA2APlanTwoPlansIndependent(t *testing.T) {
	const p, bs = 3, 4
	Run(p, func(c *Comm) {
		sa := make([]float64, p*bs)
		ra := make([]float64, p*bs)
		sb := make([]float64, p*bs)
		rb := make([]float64, p*bs)
		pa := NewA2APlan(c, sa, ra)
		pb := NewA2APlan(c, sb, rb)
		for i := range sa {
			sa[i] = float64(c.Rank()*100 + i)
			sb[i] = -sa[i]
		}
		pa.Do()
		pb.Do()
		for src := 0; src < p; src++ {
			for j := 0; j < bs; j++ {
				want := float64(src*100 + c.Rank()*bs + j)
				if ra[src*bs+j] != want {
					panic(fmt.Sprintf("rank %d: plan A got %v want %v", c.Rank(), ra[src*bs+j], want))
				}
				if rb[src*bs+j] != -want {
					panic(fmt.Sprintf("rank %d: plan B got %v want %v", c.Rank(), rb[src*bs+j], -want))
				}
			}
		}
		pa.Free()
		pb.Free()
	})
}

// A rank panicking while peers are blocked inside Do must cascade the
// abort through the plan's private barrier instead of deadlocking.
func TestA2APlanAbortWakesBlockedRanks(t *testing.T) {
	const p = 4
	err := TryRun(p, func(c *Comm) {
		send := make([]float64, p)
		recv := make([]float64, p)
		plan := NewA2APlan(c, send, recv)
		if c.Rank() == 2 {
			panic(errors.New("boom"))
		}
		plan.Do() // ranks 0,1,3 block in the entry barrier forever
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("expected RankError from rank 2, got %v", err)
	}
}

// Steady-state Do must not allocate, even with the default watchdog
// registering every barrier wait.
func TestA2APlanSteadyStateAllocFree(t *testing.T) {
	const p, bs, runs = 4, 64, 200
	Run(p, func(c *Comm) {
		send := make([]complex128, p*bs)
		recv := make([]complex128, p*bs)
		for i := range send {
			send[i] = complex(float64(i), 0)
		}
		plan := NewA2APlan(c, send, recv)
		for w := 0; w < 3; w++ {
			plan.Do() // warm up (metric handles, watchdog freelist)
		}
		if c.Rank() == 0 {
			// AllocsPerRun executes the body runs+1 times; peers must
			// match that call count for the collective to line up.
			avg := testing.AllocsPerRun(runs, func() { plan.Do() })
			if avg > 0.05 {
				panic(fmt.Sprintf("steady-state A2APlan.Do allocates %.3f per call", avg))
			}
		} else {
			for i := 0; i < runs+1; i++ {
				plan.Do()
			}
		}
		plan.Free()
	})
}

// Wire bytes must follow the same convention as Alltoall: everything
// but the diagonal block, charged to the sender.
func TestA2APlanBytesAccounting(t *testing.T) {
	const p, bs = 3, 8
	reg := metrics.NewRegistry()
	err := RunWith(p, reg, func(c *Comm) {
		send := make([]float64, p*bs)
		recv := make([]float64, p*bs)
		plan := NewA2APlan(c, send, recv)
		plan.Do()
		plan.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < p; r++ {
		total += reg.CounterRank("mpi.a2a.bytes", r).Value()
	}
	want := int64(p) * int64(p-1) * int64(bs) * 8
	if total != want {
		t.Fatalf("a2a bytes = %d, want %d", total, want)
	}
}
