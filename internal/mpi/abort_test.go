package mpi

import (
	"strings"
	"testing"
	"time"
)

// These tests pin the MPI_Abort-style semantics added after a real
// deadlock: a panic on one rank must wake every peer blocked in any
// collective and surface the original panic, never hang.

func expectPanicContaining(t *testing.T, substr string, f func()) {
	t.Helper()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		f()
	}()
	select {
	case e := <-done:
		if e == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if s, ok := e.(string); !ok || !strings.Contains(s, substr) {
			t.Fatalf("panic %v does not contain %q", e, substr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung: abort cascade failed")
	}
}

func TestPanicWhilePeersInAlltoall(t *testing.T) {
	expectPanicContaining(t, "rank 2 panicked: boom", func() {
		Run(4, func(c *Comm) {
			if c.rank == 2 {
				panic("boom")
			}
			send := make([]int, 4)
			recv := make([]int, 4)
			Alltoall(c, send, recv) // would block forever without abort
		})
	})
}

func TestPanicWhilePeersInBarrier(t *testing.T) {
	expectPanicContaining(t, "rank 0 panicked", func() {
		Run(3, func(c *Comm) {
			if c.rank == 0 {
				panic("early death")
			}
			c.Barrier()
		})
	})
}

func TestPanicWhilePeersInRecv(t *testing.T) {
	expectPanicContaining(t, "rank 1 panicked", func() {
		Run(2, func(c *Comm) {
			if c.rank == 1 {
				panic("no send for you")
			}
			buf := make([]int, 1)
			Recv(c, 1, 0, buf)
		})
	})
}

func TestPanicWhilePeersWaitOnIalltoall(t *testing.T) {
	expectPanicContaining(t, "rank 0 panicked", func() {
		Run(3, func(c *Comm) {
			if c.rank == 0 {
				panic("dead before posting")
			}
			send := make([]int, 3)
			recv := make([]int, 3)
			req := Ialltoall(c, send, recv)
			req.Wait()
		})
	})
}

func TestPanicCascadesIntoSplitCommunicators(t *testing.T) {
	expectPanicContaining(t, "rank 3 panicked", func() {
		Run(4, func(c *Comm) {
			sub := c.Split(c.rank%2, c.rank)
			if c.rank == 3 {
				panic("after split")
			}
			// Ranks 0..2 block on sub-communicator collectives; rank
			// 3's death must reach them through the cascade.
			v := []float64{1}
			AllreduceSum(sub, v)
			c.Barrier()
		})
	})
}

func TestOriginalPanicReportedNotTheCascade(t *testing.T) {
	// The report must name the root cause, not "world aborted".
	expectPanicContaining(t, "the real bug", func() {
		Run(4, func(c *Comm) {
			if c.rank == 1 {
				panic("the real bug")
			}
			c.Barrier()
		})
	})
}

func TestNoAbortOnCleanRun(t *testing.T) {
	// Sanity: the machinery stays invisible on healthy runs.
	for i := 0; i < 5; i++ {
		Run(4, func(c *Comm) {
			send := make([]int, 4)
			recv := make([]int, 4)
			Alltoall(c, send, recv)
			c.Barrier()
		})
	}
}
