package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Wildcards for FaultRule filters.
const (
	// AnyRank matches every source or destination rank.
	AnyRank = -1
	// AnyTag matches every message tag (and every collective sequence
	// number).
	AnyTag = math.MinInt
)

// Scope selects which traffic class a fault rule applies to.
type Scope int

const (
	// ScopeAll applies to point-to-point and collective traffic.
	ScopeAll Scope = iota
	// ScopeP2P applies only to Send/Recv traffic.
	ScopeP2P
	// ScopeColl applies only to collective fragments.
	ScopeColl
)

// FaultRule describes one class of injected message pathology. A
// message matches when its (src, dst, tag, scope, size) pass every
// filter; the first matching rule in Faults.Rules is applied. Note the
// zero value of Src/Dst filters on rank 0 — use AnyRank (and AnyTag)
// for wildcards, or start from MatchAll().
type FaultRule struct {
	Src, Dst int   // rank filters; AnyRank matches every rank
	Tag      int   // tag filter (user tag or collective seq); AnyTag matches all
	Scope    Scope // point-to-point, collective, or both
	// MinBytes restricts the rule to messages of at least this wire
	// size, e.g. to target bulk all-to-all fragments while leaving
	// small control collectives untouched.
	MinBytes int64

	// DropProb is the probability a matching message is silently lost.
	DropProb float64
	// DupProb is the probability a matching message is delivered twice
	// (the duplicate arrives back to back).
	DupProb float64
	// Delay is a fixed extra latency applied to matching messages.
	Delay time.Duration
	// Bandwidth, when positive, adds bytes/Bandwidth of size-dependent
	// latency (bytes per second).
	Bandwidth float64
	// Model, when non-nil, derives a size-dependent latency from the
	// calibrated Summit all-to-all network model of internal/simnet:
	// bytes / NodeBandwidth(bytes, ModelNodes), scaled by TimeScale so
	// paper-scale seconds compress into test time.
	Model      *simnet.A2AModel
	ModelNodes int
	TimeScale  float64
}

// MatchAll returns a rule whose filters match every message; set the
// fault fields on the result.
func MatchAll() FaultRule {
	return FaultRule{Src: AnyRank, Dst: AnyRank, Tag: AnyTag}
}

// DropAll returns a rule that drops every message from src to dst with
// the given tag.
func DropAll(src, dst, tag int) FaultRule {
	return FaultRule{Src: src, Dst: dst, Tag: tag, DropProb: 1}
}

func (r *FaultRule) matches(src, dst int, key matchKey, bytes int64) bool {
	if r.Scope == ScopeP2P && key.coll {
		return false
	}
	if r.Scope == ScopeColl && !key.coll {
		return false
	}
	if r.Src != AnyRank && r.Src != src {
		return false
	}
	if r.Dst != AnyRank && r.Dst != dst {
		return false
	}
	if r.Tag != AnyTag && r.Tag != key.tag {
		return false
	}
	if bytes < r.MinBytes {
		return false
	}
	return true
}

// Faults is a deterministic fault-injection plan for one world: given
// the same Seed and the same program, the same messages are dropped,
// duplicated and delayed on every run (random draws are made from a
// dedicated stream per (src,dst) mailbox, whose delivery order is
// fixed by the sending rank's program order). Injected events are
// counted into the world's metrics registry as mpi.fault.drop/dup/
// delay, labelled by the sending rank.
type Faults struct {
	Seed  int64
	Rules []FaultRule
	// Crash schedules hard rank failures: rank → the 1-based index of
	// the operation initiation (Send, Recv, Barrier or any collective
	// on the world communicator) at which the rank panics with a
	// *CrashError. The abort cascade then wakes its peers, so the
	// failure surfaces as an error instead of a hang.
	Crash map[int]int
}

// CrashError is the typed panic value of a scheduled rank crash; it
// reaches the caller wrapped in TryRun's *RankError.
type CrashError struct {
	Rank int
	Op   int // the 1-based operation index at which the crash fired
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mpi: injected fault: rank %d crashed at operation %d", e.Rank, e.Op)
}

// faultState is the per-world compiled form of a Faults plan.
type faultState struct {
	p     int
	rules []FaultRule
	crash map[int]int
	// rngs[src*p+dst] is drawn only while delivering messages from src
	// to dst; each mailbox's put calls come exclusively from rank
	// src's goroutine, so the streams need no locking and stay
	// deterministic under goroutine interleaving.
	rngs []*rand.Rand

	drops, dups, delays []*metrics.Counter // per sending rank; nil-safe
}

func compileFaults(f *Faults, p int, reg *metrics.Registry) (*faultState, error) {
	if f == nil {
		return nil, nil
	}
	for i := range f.Rules {
		r := &f.Rules[i]
		if r.DropProb < 0 || r.DropProb > 1 || r.DupProb < 0 || r.DupProb > 1 {
			return nil, fmt.Errorf("mpi: fault rule %d: probabilities must be in [0,1]", i)
		}
		if r.Delay < 0 || r.Bandwidth < 0 || r.MinBytes < 0 || r.TimeScale < 0 {
			return nil, fmt.Errorf("mpi: fault rule %d: negative delay/bandwidth/size/scale", i)
		}
		if (r.Src != AnyRank && (r.Src < 0 || r.Src >= p)) ||
			(r.Dst != AnyRank && (r.Dst < 0 || r.Dst >= p)) {
			return nil, fmt.Errorf("mpi: fault rule %d: rank filter outside world of size %d", i, p)
		}
		if r.Model != nil && r.ModelNodes < 1 {
			return nil, fmt.Errorf("mpi: fault rule %d: Model requires ModelNodes >= 1", i)
		}
	}
	for rank, op := range f.Crash {
		if rank < 0 || rank >= p {
			return nil, fmt.Errorf("mpi: crash schedule names rank %d outside world of size %d", rank, p)
		}
		if op < 1 {
			return nil, fmt.Errorf("mpi: crash schedule for rank %d: operation index %d < 1", rank, op)
		}
	}
	fs := &faultState{
		p:      p,
		rules:  append([]FaultRule(nil), f.Rules...),
		rngs:   make([]*rand.Rand, p*p),
		drops:  make([]*metrics.Counter, p),
		dups:   make([]*metrics.Counter, p),
		delays: make([]*metrics.Counter, p),
	}
	if len(f.Crash) > 0 {
		fs.crash = make(map[int]int, len(f.Crash))
		for k, v := range f.Crash {
			fs.crash[k] = v
		}
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			fs.rngs[s*p+d] = rand.New(rand.NewSource(f.Seed*1000003 + int64(s)*8191 + int64(d)))
		}
		fs.drops[s] = reg.CounterRank("mpi.fault.drop", s)
		fs.dups[s] = reg.CounterRank("mpi.fault.dup", s)
		fs.delays[s] = reg.CounterRank("mpi.fault.delay", s)
	}
	return fs, nil
}

// forSubgroup derives the fault state a Split sub-world inherits:
// crash schedules follow each rank into the sub-communicator (the
// crash map is re-keyed to the sub-world's ranks; the operation index
// counts per communicator because every Comm keeps its own counter),
// while message rules stay with the parent world's mailboxes. Returns
// nil when no group member has a scheduled crash, so rule-only fault
// plans add no per-message overhead to sub-communicators.
func (fs *faultState) forSubgroup(parentRanks []int) *faultState {
	if fs == nil || fs.crash == nil {
		return nil
	}
	crash := make(map[int]int)
	for child, parent := range parentRanks {
		if op, ok := fs.crash[parent]; ok {
			crash[child] = op
		}
	}
	if len(crash) == 0 {
		return nil
	}
	p := len(parentRanks)
	// The rng and counter slices must be sized even though no rules
	// ever draw from them: outcome indexes rngs before consulting the
	// rule list, and nil counters are no-ops.
	return &faultState{
		p:      p,
		crash:  crash,
		rngs:   make([]*rand.Rand, p*p),
		drops:  make([]*metrics.Counter, p),
		dups:   make([]*metrics.Counter, p),
		delays: make([]*metrics.Counter, p),
	}
}

// outcome draws this message's fate from the first matching rule.
func (fs *faultState) outcome(src, dst int, key matchKey, bytes int64) (drop, dup bool, delay time.Duration) {
	rng := fs.rngs[src*fs.p+dst]
	for i := range fs.rules {
		r := &fs.rules[i]
		if !r.matches(src, dst, key, bytes) {
			continue
		}
		if r.DropProb > 0 && rng.Float64() < r.DropProb {
			drop = true
		}
		if r.DupProb > 0 && rng.Float64() < r.DupProb {
			dup = true
		}
		delay = r.Delay
		if r.Bandwidth > 0 {
			delay += time.Duration(float64(bytes) / r.Bandwidth * float64(time.Second))
		}
		if r.Model != nil {
			ts := r.TimeScale
			if ts == 0 {
				ts = 1
			}
			bw := r.Model.NodeBandwidth(math.Max(float64(bytes), 1), r.ModelNodes)
			delay += time.Duration(ts * float64(bytes) / bw * float64(time.Second))
		}
		break // first matching rule wins
	}
	if drop {
		return true, false, 0
	}
	return drop, dup, delay
}

// maybeCrash advances the rank's operation counter and fires a
// scheduled crash. Called at every operation initiation on the world
// communicator (Send, Recv, Barrier, collectives).
func (c *Comm) maybeCrash() {
	f := c.w.faults
	if f == nil || f.crash == nil {
		return
	}
	c.ops++
	if n, ok := f.crash[c.rank]; ok && c.ops == n {
		panic(&CrashError{Rank: c.rank, Op: c.ops})
	}
}
