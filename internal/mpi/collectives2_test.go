package mpi

import "testing"

func TestGatherAtRoot(t *testing.T) {
	p := 4
	Run(p, func(c *Comm) {
		send := []int{c.rank * 2, c.rank*2 + 1}
		var recv []int
		if c.rank == 1 {
			recv = make([]int, p*2)
		}
		Gather(c, 1, send, recv)
		if c.rank == 1 {
			for i := 0; i < p*2; i++ {
				if recv[i] != i {
					t.Errorf("gather[%d] = %d", i, recv[i])
				}
			}
		}
	})
}

func TestScatterFromRoot(t *testing.T) {
	p := 3
	Run(p, func(c *Comm) {
		var send []int
		if c.rank == 2 {
			send = []int{10, 11, 20, 21, 30, 31}
		}
		recv := make([]int, 2)
		Scatter(c, 2, send, recv)
		want0 := (c.rank + 1) * 10
		if recv[0] != want0 || recv[1] != want0+1 {
			t.Errorf("rank %d: scatter %v", c.rank, recv)
		}
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	p := 4
	Run(p, func(c *Comm) {
		var orig, back []float64
		if c.rank == 0 {
			orig = make([]float64, p*3)
			for i := range orig {
				orig[i] = float64(i * i)
			}
			back = make([]float64, p*3)
		}
		mine := make([]float64, 3)
		Scatter(c, 0, orig, mine)
		Gather(c, 0, mine, back)
		if c.rank == 0 {
			for i := range orig {
				if back[i] != orig[i] {
					t.Errorf("element %d: %g vs %g", i, back[i], orig[i])
				}
			}
		}
	})
}

func TestReduceSum(t *testing.T) {
	p := 5
	Run(p, func(c *Comm) {
		v := []float64{float64(c.rank), 1}
		Reduced := v
		ReduceSum(c, 3, Reduced)
		if c.rank == 3 {
			if Reduced[0] != 10 || Reduced[1] != 5 {
				t.Errorf("reduce %v", Reduced)
			}
		} else if Reduced[0] != float64(c.rank) {
			t.Errorf("rank %d: non-root value changed: %v", c.rank, Reduced)
		}
	})
}

func TestExScan(t *testing.T) {
	p := 4
	Run(p, func(c *Comm) {
		v := []int{c.rank + 1} // contributions 1,2,3,4
		ExScan(c, v)
		// Exclusive prefix: 0,1,3,6.
		want := []int{0, 1, 3, 6}[c.rank]
		if v[0] != want {
			t.Errorf("rank %d: exscan %d want %d", c.rank, v[0], want)
		}
	})
}

func TestIAlltoallv(t *testing.T) {
	p := 3
	Run(p, func(c *Comm) {
		// Rank r sends r+1 ints to every destination.
		n := c.rank + 1
		sendcounts := make([]int, p)
		senddispls := make([]int, p)
		for d := 0; d < p; d++ {
			sendcounts[d] = n
			senddispls[d] = d * n
		}
		send := make([]int, p*n)
		for i := range send {
			send[i] = c.rank*100 + i
		}
		recvcounts := make([]int, p)
		recvdispls := make([]int, p)
		total := 0
		for s := 0; s < p; s++ {
			recvcounts[s] = s + 1
			recvdispls[s] = total
			total += s + 1
		}
		recv := make([]int, total)
		req := IAlltoallv(c, send, sendcounts, senddispls, recv, recvcounts, recvdispls)
		req.Wait()
		for s := 0; s < p; s++ {
			base := s*100 + c.rank*(s+1)
			for j := 0; j < s+1; j++ {
				if recv[recvdispls[s]+j] != base+j {
					t.Errorf("rank %d from %d elem %d: got %d want %d",
						c.rank, s, j, recv[recvdispls[s]+j], base+j)
				}
			}
		}
	})
}

func TestIAlltoallvAbort(t *testing.T) {
	expectPanicContaining(t, "rank 0 panicked", func() {
		Run(3, func(c *Comm) {
			if c.rank == 0 {
				panic("dead")
			}
			counts := []int{1, 1, 1}
			displs := []int{0, 1, 2}
			send := make([]int, 3)
			recv := make([]int, 3)
			req := IAlltoallv(c, send, counts, displs, recv, counts, displs)
			req.Wait()
		})
	})
}
