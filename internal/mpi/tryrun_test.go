package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestTryRunCleanReturnsNil(t *testing.T) {
	if err := TryRun(4, func(c *Comm) {
		c.Barrier()
	}); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestTryRunReturnsTypedRankError(t *testing.T) {
	cause := errors.New("boom")
	err := TryRun(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic(cause)
		}
		c.Barrier() // peers block; abort must wake them
	})
	if err == nil {
		t.Fatal("TryRun returned nil for a panicking rank")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *RankError", err)
	}
	if re.Rank != 1 {
		t.Fatalf("RankError.Rank = %d, want 1", re.Rank)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause not reachable via errors.Is: %v", err)
	}
	if want := "mpi: rank 1 panicked: boom"; err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestTryRunWrapsNonErrorPanics(t *testing.T) {
	err := TryRun(2, func(c *Comm) {
		if c.Rank() == 0 {
			panic("string panic")
		}
		c.Barrier()
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *RankError", err)
	}
	if re.Rank != 0 || re.Err == nil || re.Err.Error() != "string panic" {
		t.Fatalf("unexpected RankError: %+v", re)
	}
}

func TestCollectiveSizePanicNamesRankAndCollective(t *testing.T) {
	err := TryRun(2, func(c *Comm) {
		send := make([]float64, 2*c.Size())
		recv := make([]float64, 3) // not divisible by size: invalid
		Alltoall(c, send, recv)
	})
	if err == nil {
		t.Fatal("invalid alltoall buffers did not fail the run")
	}
	msg := err.Error()
	for _, want := range []string{"alltoall", "rank"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestRunWithRecordsIntoExplicitRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	const p = 3
	const words = 8
	if err := RunWith(p, reg, func(c *Comm) {
		send := make([]float64, p*words)
		recv := make([]float64, p*words)
		Alltoall(c, send, recv)
		c.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for r := 0; r < p; r++ {
		e, ok := snap.Get("mpi.a2a.bytes", r)
		if !ok || e.Value == 0 {
			t.Fatalf("rank %d recorded no a2a bytes", r)
		}
		// Sender-side wire bytes: every block except the rank's own
		// diagonal block (loopback is free; see doc.go).
		wantBytes := fmt.Sprintf("%d", (p-1)*words*8)
		if got := fmt.Sprintf("%.0f", e.Value); got != wantBytes {
			t.Errorf("rank %d a2a bytes = %s, want %s", r, got, wantBytes)
		}
	}
	if e, ok := snap.SumOverRanks().Get("mpi.a2a.calls", metrics.NoRank); !ok || e.Value != p {
		t.Fatalf("summed a2a calls = %v, want %d", e.Value, p)
	}
}
