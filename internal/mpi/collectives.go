package mpi

import (
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/metrics"
)

// sliceBytes reports the wire size of n elements of T, the quantity
// every collective accounts into the metrics registry.
func sliceBytes[T any](n int) int64 {
	var z T
	return int64(n) * int64(unsafe.Sizeof(z))
}

// Send delivers a copy of buf to dst with the given tag. It is
// buffered: it returns as soon as the copy is queued, so the caller may
// reuse buf immediately (MPI_Bsend semantics, which is how Spectrum MPI
// behaves below the eager limit). Self-sends are delivered but not
// charged as wire bytes (see the accounting convention in doc.go).
func Send[T any](c *Comm, dst, tag int, buf []T) {
	c.maybeCrash()
	m := c.m()
	m.p2pMsgs.Inc()
	if dst != c.rank {
		m.p2pBytes.Add(sliceBytes[T](len(buf)))
	}
	cp := make([]T, len(buf))
	copy(cp, buf)
	c.box(c.rank, dst).put(message{key: matchKey{tag: tag}, data: cp, bytes: sliceBytes[T](len(cp))})
}

// Recv blocks until a message from src with the given tag arrives and
// copies it into buf, returning the element count received.
func Recv[T any](c *Comm, src, tag int, buf []T) int {
	c.maybeCrash()
	data := c.box(src, c.rank).get(matchKey{tag: tag}, false).([]T)
	if len(data) > len(buf) {
		panic(fmt.Sprintf("mpi: rank %d: recv from %d (tag %d): buffer too small: %d < %d",
			c.rank, src, tag, len(buf), len(data)))
	}
	copy(buf, data)
	return len(data)
}

// Sendrecv performs a simultaneous exchange with a peer.
func Sendrecv[T any](c *Comm, dst, dtag int, sendbuf []T, src, stag int, recvbuf []T) int {
	Send(c, dst, dtag, sendbuf)
	return Recv(c, src, stag, recvbuf)
}

// Bcast copies buf from root to every rank (collective). The root is
// charged (Size-1)×len wire bytes: one copy per remote rank.
func Bcast[T any](c *Comm, root int, buf []T) {
	c.maybeCrash()
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	m := c.m()
	m.collMsgs.Inc()
	if c.rank == root {
		m.collBytes.Add(sliceBytes[T](len(buf)) * int64(c.Size()-1))
		cp := make([]T, len(buf))
		copy(cp, buf)
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.box(c.rank, r).put(message{key: key, data: cp, bytes: sliceBytes[T](len(cp))})
			}
		}
		return
	}
	data := c.box(root, c.rank).get(key, false).([]T)
	copy(buf, data)
}

// Allgather concatenates each rank's equally-sized send block into
// recv on every rank: recv[r*len(send):(r+1)*len(send)] holds rank r's
// contribution. Each rank is charged (Size-1)×len wire bytes; the
// loopback copy to itself is free.
func Allgather[T any](c *Comm, send []T, recv []T) {
	c.maybeCrash()
	p := c.Size()
	if len(recv) != p*len(send) {
		panic(fmt.Sprintf("mpi: rank %d: allgather recv length %d != %d",
			c.rank, len(recv), p*len(send)))
	}
	m := c.m()
	m.collMsgs.Inc()
	m.collBytes.Add(sliceBytes[T](len(send)) * int64(p-1))
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	cp := make([]T, len(send))
	copy(cp, send)
	for r := 0; r < p; r++ {
		c.box(c.rank, r).put(message{key: key, data: cp, bytes: sliceBytes[T](len(cp))})
	}
	n := len(send)
	for r := 0; r < p; r++ {
		data := c.box(r, c.rank).get(key, false).([]T)
		copy(recv[r*n:(r+1)*n], data)
	}
}

// AllreduceSum sums each element of v across all ranks, in place on
// every rank.
func AllreduceSum(c *Comm, v []float64) {
	allreduce(c, v, func(a, b float64) float64 { return a + b })
}

// AllreduceMax replaces each element of v by the maximum over all
// ranks, in place on every rank.
func AllreduceMax(c *Comm, v []float64) {
	allreduce(c, v, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
}

func allreduce(c *Comm, v []float64, op func(a, b float64) float64) {
	all := make([]float64, c.Size()*len(v))
	Allgather(c, v, all)
	n := len(v)
	for i := 0; i < n; i++ {
		acc := all[i]
		for r := 1; r < c.Size(); r++ {
			acc = op(acc, all[r*n+i])
		}
		v[i] = acc
	}
}

// Alltoall transposes equally-sized blocks between all ranks of the
// communicator: the block send[dst*bs:(dst+1)*bs] lands at
// recv[src*bs:(src+1)*bs] on rank dst, where bs = len(send)/P. This is
// the MPI_ALLTOALL at the heart of every distributed transpose in the
// paper. send and recv must not alias.
func Alltoall[T any](c *Comm, send, recv []T) {
	req := Ialltoall(c, send, recv)
	req.Wait()
}

// Ialltoall starts a non-blocking all-to-all (MPI_IALLTOALL) and
// returns a Request. The exchange makes progress on a background
// goroutine; recv must not be read, nor send overwritten, until Wait
// returns. Matching follows initiation order, so ranks must initiate
// collectives in the same order even when some are non-blocking. The
// rank is charged len(send)-bs elements of wire bytes: everything but
// its own diagonal block.
func Ialltoall[T any](c *Comm, send, recv []T) *Request {
	c.maybeCrash()
	p := c.Size()
	if len(send)%p != 0 || len(recv) != len(send) {
		panic(fmt.Sprintf("mpi: rank %d: alltoall buffer sizes %d/%d invalid for %d ranks",
			c.rank, len(send), len(recv), p))
	}
	bs := len(send) / p
	m := c.m()
	m.a2aMsgs.Inc()
	m.a2aBytes.Add(sliceBytes[T](len(send) - bs))
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	// Post all sends eagerly on the caller goroutine so buffered-send
	// semantics hold even if Wait is deferred for a long time.
	for dst := 0; dst < p; dst++ {
		blk := make([]T, bs)
		copy(blk, send[dst*bs:(dst+1)*bs])
		c.box(c.rank, dst).put(message{key: key, data: blk, bytes: sliceBytes[T](bs)})
	}
	req := newRequest(c, seq, m.a2aWait)
	go func() {
		defer close(req.done)
		defer func() {
			// An aborted world must surface on the rank that Waits,
			// not crash the helper goroutine.
			if e := recover(); e != nil {
				if e == any(errAborted) {
					req.aborted = true
					return
				}
				panic(e)
			}
		}()
		for src := 0; src < p; src++ {
			data := c.box(src, c.rank).get(key, true).([]T)
			copy(recv[src*bs:(src+1)*bs], data)
		}
	}()
	return req
}

// Alltoallv is the varying-counts all-to-all: sendcounts[dst] elements
// beginning at senddispls[dst] go to dst; recvcounts[src] elements from
// src land at recvdispls[src]. Wire bytes exclude the rank's own
// diagonal block.
func Alltoallv[T any](c *Comm, send []T, sendcounts, senddispls []int, recv []T, recvcounts, recvdispls []int) {
	c.maybeCrash()
	p := c.Size()
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	m := c.m()
	m.a2aMsgs.Inc()
	total := 0
	for dst := 0; dst < p; dst++ {
		total += sendcounts[dst]
		blk := make([]T, sendcounts[dst])
		copy(blk, send[senddispls[dst]:senddispls[dst]+sendcounts[dst]])
		c.box(c.rank, dst).put(message{key: key, data: blk, bytes: sliceBytes[T](len(blk))})
	}
	m.a2aBytes.Add(sliceBytes[T](total - sendcounts[c.rank]))
	stop := m.a2aWait.Start()
	for src := 0; src < p; src++ {
		data := c.box(src, c.rank).get(key, false).([]T)
		if len(data) != recvcounts[src] {
			panic(fmt.Sprintf("mpi: rank %d: alltoallv count mismatch from %d: got %d want %d",
				c.rank, src, len(data), recvcounts[src]))
		}
		copy(recv[recvdispls[src]:recvdispls[src]+recvcounts[src]], data)
	}
	stop()
}

// Request tracks a non-blocking operation, as MPI_Request does.
type Request struct {
	done    chan struct{}
	aborted bool
	// wait, when recording, observes the seconds the caller spends
	// blocked inside Wait — the exposed (non-overlapped) communication
	// time of the asynchronous pipeline.
	wait *metrics.Histogram

	// waited makes Wait idempotent: only the first Wait records a
	// histogram sample and re-raises an abort; later calls return
	// silently once the operation is done.
	waited atomic.Bool

	// Identity for watchdog registration and StallError attribution.
	w    *world
	rank int
	tag  int
}

func newRequest(c *Comm, tag int, wait *metrics.Histogram) *Request {
	return &Request{done: make(chan struct{}), wait: wait, w: c.w, rank: c.rank, tag: tag}
}

// Wait blocks until the operation completes (MPI_WAIT). It panics with
// the abort sentinel if the world was aborted while in flight. Wait is
// idempotent: calling it again after it has returned (or panicked) is a
// no-op that records no extra histogram sample and does not re-panic.
//
//psdns:hotpath
func (r *Request) Wait() {
	if r.waited.Swap(true) {
		<-r.done
		return
	}
	stop := r.wait.Start()
	tok := r.w.watchEnter(r.rank, opWait, -1, r.tag, true, false)
	<-r.done
	r.w.watchExit(tok)
	stop()
	if r.aborted {
		panic(errAborted)
	}
}

// WaitWithin is Wait with a deadline: if the operation has not
// completed after d, the world is aborted and the call panics with a
// *StallError naming the blocked rank and collective, which TryRun
// recovers into its error return (wrapped in a *RankError). A
// non-positive d means no deadline. Like Wait, it is idempotent.
func (r *Request) WaitWithin(d time.Duration) {
	if d <= 0 {
		r.Wait()
		return
	}
	if r.waited.Swap(true) {
		<-r.done
		return
	}
	stop := r.wait.Start()
	tok := r.w.watchEnter(r.rank, opWait, -1, r.tag, true, false)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.done:
		r.w.watchExit(tok)
		stop()
		if r.aborted {
			panic(errAborted)
		}
	case <-t.C:
		r.w.watchExit(tok)
		stop()
		panic(&StallError{Rank: r.rank, Op: opWait, Peer: -1, Tag: r.tag, Coll: true, Waited: d})
	}
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// WaitAll waits on every request in order.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
