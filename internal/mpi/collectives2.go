package mpi

import "fmt"

// Gather collects each rank's equally-sized block at root:
// on root, recv[r*len(send):(r+1)*len(send)] holds rank r's block;
// on other ranks recv is ignored and may be nil (collective). Each
// non-root rank is charged len(send) wire bytes; the root's loopback
// contribution is free.
func Gather[T any](c *Comm, root int, send []T, recv []T) {
	c.maybeCrash()
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	m := c.m()
	m.collMsgs.Inc()
	if c.rank != root {
		m.collBytes.Add(sliceBytes[T](len(send)))
	}
	cp := make([]T, len(send))
	copy(cp, send)
	c.box(c.rank, root).put(message{key: key, data: cp, bytes: sliceBytes[T](len(cp))})
	if c.rank != root {
		return
	}
	p := c.Size()
	if len(recv) != p*len(send) {
		panic(fmt.Sprintf("mpi: rank %d: gather recv length %d != %d", c.rank, len(recv), p*len(send)))
	}
	n := len(send)
	for r := 0; r < p; r++ {
		data := c.box(r, root).get(key, false).([]T)
		copy(recv[r*n:(r+1)*n], data)
	}
}

// Scatter distributes equally-sized blocks from root: rank r receives
// send[r*len(recv):(r+1)*len(recv)]; on non-root ranks send is ignored
// (collective). The root is charged (Size-1)×len(recv) wire bytes; its
// own block is a free loopback.
func Scatter[T any](c *Comm, root int, send []T, recv []T) {
	c.maybeCrash()
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	p := c.Size()
	m := c.m()
	m.collMsgs.Inc()
	if c.rank == root {
		if len(send) != p*len(recv) {
			panic(fmt.Sprintf("mpi: rank %d: scatter send length %d != %d", c.rank, len(send), p*len(recv)))
		}
		n := len(recv)
		m.collBytes.Add(sliceBytes[T](n) * int64(p-1))
		for r := 0; r < p; r++ {
			blk := make([]T, n)
			copy(blk, send[r*n:(r+1)*n])
			c.box(root, r).put(message{key: key, data: blk, bytes: sliceBytes[T](n)})
		}
	}
	data := c.box(root, c.rank).get(key, false).([]T)
	copy(recv, data)
}

// ReduceSum sums v elementwise onto root; other ranks' v is unchanged
// (collective).
func ReduceSum(c *Comm, root int, v []float64) {
	all := make([]float64, 0)
	if c.rank == root {
		all = make([]float64, c.Size()*len(v))
	}
	Gather(c, root, v, all)
	if c.rank != root {
		return
	}
	n := len(v)
	for i := 0; i < n; i++ {
		acc := 0.0
		for r := 0; r < c.Size(); r++ {
			acc += all[r*n+i]
		}
		v[i] = acc
	}
}

// ExScan computes the exclusive prefix sum over ranks: rank r receives
// Σ_{s<r} contributions; rank 0 receives zeros (collective). Used for
// variable-offset layouts.
func ExScan(c *Comm, v []int) {
	all := make([]int, c.Size()*len(v))
	send := make([]int, len(v))
	copy(send, v)
	Allgather(c, send, all)
	n := len(v)
	for i := 0; i < n; i++ {
		acc := 0
		for r := 0; r < c.rank; r++ {
			acc += all[r*n+i]
		}
		v[i] = acc
	}
}

// IAlltoallv starts a non-blocking variable-count all-to-all and
// returns a Request (the per-pencil exchange variant the paper's
// algorithm would need with y-divided pencils). Wire bytes exclude the
// rank's own diagonal block.
func IAlltoallv[T any](c *Comm, send []T, sendcounts, senddispls []int, recv []T, recvcounts, recvdispls []int) *Request {
	c.maybeCrash()
	p := c.Size()
	seq := c.nextSeq()
	key := matchKey{tag: seq, coll: true}
	m := c.m()
	m.a2aMsgs.Inc()
	total := 0
	for dst := 0; dst < p; dst++ {
		total += sendcounts[dst]
		blk := make([]T, sendcounts[dst])
		copy(blk, send[senddispls[dst]:senddispls[dst]+sendcounts[dst]])
		c.box(c.rank, dst).put(message{key: key, data: blk, bytes: sliceBytes[T](len(blk))})
	}
	m.a2aBytes.Add(sliceBytes[T](total - sendcounts[c.rank]))
	rc := append([]int(nil), recvcounts...)
	rd := append([]int(nil), recvdispls...)
	req := newRequest(c, seq, m.a2aWait)
	rank := c.rank
	go func() {
		defer close(req.done)
		defer func() {
			if e := recover(); e != nil {
				if e == any(errAborted) {
					req.aborted = true
					return
				}
				panic(e)
			}
		}()
		for src := 0; src < p; src++ {
			data := c.box(src, c.rank).get(key, true).([]T)
			if len(data) != rc[src] {
				panic(fmt.Sprintf("mpi: rank %d: ialltoallv count mismatch from %d: got %d want %d",
					rank, src, len(data), rc[src]))
			}
			copy(recv[rd[src]:rd[src]+rc[src]], data)
		}
	}()
	return req
}
