// Package mpi is an in-process message-passing runtime that stands in
// for IBM Spectrum MPI in the paper's code: ranks are goroutines,
// communicators can be split into the row/column communicators of a 2D
// process grid, and the collective set covers exactly what the DNS
// needs — barriers, reductions, gathers, and blocking (MPI_ALLTOALL)
// and non-blocking (MPI_IALLTOALL + MPI_WAIT) all-to-all exchanges.
//
// Semantics follow MPI where it matters to the algorithms under test:
// sends are buffered (a rank may send before the peer has posted its
// receive), collectives must be initiated in the same order on every
// rank of a communicator, and non-blocking collectives complete only
// when their Request is waited on.
//
// # Byte accounting convention
//
// Every operation charges sender-side wire bytes: the bytes a rank
// pushes onto the network, excluding loopback copies to itself.
// Concretely, for a communicator of P ranks:
//
//   - Send charges len(buf) to the sender, except self-sends (0).
//   - Bcast charges the root (P-1)×len; non-roots charge 0.
//   - Allgather charges every rank (P-1)×len(send).
//   - Gather charges each non-root rank len(send); the root charges 0.
//   - Scatter charges the root (P-1)×len(recv); non-roots charge 0.
//   - Alltoall/Ialltoall charge each rank len(send)-len(send)/P: all
//     blocks except its own diagonal block.
//   - Alltoallv/IAlltoallv charge Σ sendcounts minus sendcounts[self].
//
// Summing a counter over ranks therefore gives total traffic offered
// to the interconnect, with no double counting and no phantom loopback
// volume — the quantity the paper's network model (internal/simnet)
// takes as input.
//
// # Failure model
//
// Three failure shapes surface through TryRun as typed errors:
//
//   - A rank panic (its own bug, or an injected *CrashError) aborts
//     the world — every blocked peer is woken, as with MPI_Abort — and
//     returns a *RankError naming the first rank that misbehaved.
//   - A stall or deadlock detected by the watchdog (see Watchdog)
//     aborts the world and returns a *StallError naming the blocked
//     rank, operation, peer and tag. The watchdog is on by default
//     with deadlock detection only; WithWatchdog configures deadlines
//     or disables it.
//   - Request.WaitWithin bounds a single wait; on timeout it panics
//     with a *StallError, which arrives wrapped in a *RankError.
//
// WithFaults injects deterministic message pathologies (drop,
// duplicate, delay, rank crashes) for chaos testing; see Faults.
// Sub-communicators created by Split share the parent's abort cascade,
// run their own watchdog under the parent's configuration, and inherit
// the fault plan's crash schedules (re-keyed to the sub-communicator's
// ranks, operation counts per communicator); message-level fault rules
// apply to the parent world's mailboxes only.
package mpi
