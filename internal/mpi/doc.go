// Package mpi is an in-process message-passing runtime that stands in
// for IBM Spectrum MPI in the paper's code: ranks are goroutines,
// communicators can be split into the row/column communicators of a 2D
// process grid, and the collective set covers exactly what the DNS
// needs — barriers, reductions, gathers, and blocking (MPI_ALLTOALL)
// and non-blocking (MPI_IALLTOALL + MPI_WAIT) all-to-all exchanges.
//
// Semantics follow MPI where it matters to the algorithms under test:
// sends are buffered (a rank may send before the peer has posted its
// receive), collectives must be initiated in the same order on every
// rank of a communicator, and non-blocking collectives complete only
// when their Request is waited on.
package mpi
