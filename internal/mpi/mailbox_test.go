package mpi

import (
	"sync"
	"testing"
	"time"
)

// TestGetClearsDeliveredSlot is the regression test for the mailbox
// removal leak: append(m.q[:i], m.q[i+1:]...) left a duplicate
// reference to the delivered payload in the backing array's vacated
// tail slot, retaining large pencil buffers past delivery.
func TestGetClearsDeliveredSlot(t *testing.T) {
	w := newWorld(2, nil, nil)
	m := w.boxes[0*2+1] // src 0 → dst 1
	first := []float64{1, 2, 3}
	second := []float64{4, 5, 6}
	m.put(message{key: matchKey{tag: 1}, data: first})
	m.put(message{key: matchKey{tag: 2}, data: second})

	// Alias the backing array before removal so the vacated tail slot
	// stays observable after the queue shrinks.
	backing := m.q[:2]

	got := m.get(matchKey{tag: 1}, false)
	if &got.([]float64)[0] != &first[0] {
		t.Fatal("get returned the wrong message")
	}
	if len(m.q) != 1 {
		t.Fatalf("queue length after removal = %d, want 1", len(m.q))
	}
	if backing[1].data != nil {
		t.Fatal("vacated tail slot still references the shifted payload: delivered buffers are retained")
	}
	if backing[0].data == nil {
		t.Fatal("surviving message was clobbered by the slot zeroing")
	}
}

// TestDeliverWakesOnlyMatchingWaiter pins the thundering-herd fix:
// with N goroutines each blocked on a distinct tag, every delivery
// must wake only the goroutine that can consume it. The old
// cv.Broadcast() woke all N waiters per message.
func TestDeliverWakesOnlyMatchingWaiter(t *testing.T) {
	const n = 16
	w := newWorld(2, nil, nil)
	m := w.boxes[0*2+1]

	before := spuriousWakeups.Load()
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			results[tag] = m.get(matchKey{tag: tag}, false)
		}(i)
	}
	// Wait until every consumer has parked on its own condition
	// variable before delivering anything.
	for {
		m.mu.Lock()
		parked := len(m.waiters)
		m.mu.Unlock()
		if parked == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		m.put(message{key: matchKey{tag: i}, data: i})
	}
	wg.Wait()
	for i, r := range results {
		if r != i {
			t.Fatalf("waiter %d got %v", i, r)
		}
	}
	if d := spuriousWakeups.Load() - before; d != 0 {
		t.Errorf("deliveries caused %d spurious wakeups, want 0 (per-key signal should wake only the matching waiter)", d)
	}
}

// BenchmarkMailboxFanIn stresses one mailbox with P consumers on
// distinct tags and reports the spurious wakeups per delivered
// message. With the old broadcast wakeup this is O(P); with per-key
// signalling it is ~0.
func BenchmarkMailboxFanIn(b *testing.B) {
	const consumers = 8
	w := newWorld(2, nil, nil)
	m := w.boxes[0*2+1]

	before := spuriousWakeups.Load()
	var wg sync.WaitGroup
	per := (b.N + consumers - 1) / consumers
	b.ResetTimer()
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				m.get(matchKey{tag: tag}, false)
			}
		}(i)
	}
	for j := 0; j < per; j++ {
		for i := 0; i < consumers; i++ {
			m.put(message{key: matchKey{tag: i}, data: j})
		}
	}
	wg.Wait()
	b.StopTimer()
	total := int64(per) * consumers
	b.ReportMetric(float64(spuriousWakeups.Load()-before)/float64(total), "spurious-wakeups/op")
}
