package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Watchdog configures the stall watchdog of a world. The watchdog
// runs on its own monitor goroutine and watches two failure shapes the
// abort cascade (RankError) is blind to:
//
//   - True deadlock: every live rank is blocked in a receive, wait or
//     barrier, no message has been delivered since the quiescent window
//     began, and no fault-delayed message is still in flight. Nothing
//     can ever make progress again, so the world is aborted after
//     DeadlockAfter with a StallError (Deadlock=true).
//   - Per-operation stall: any single blocking operation has been
//     blocked longer than Deadline. This catches stragglers even while
//     the rest of the world is making progress (Deadlock=false).
//
// The zero value is the default configuration: deadlock detection on
// with a 2s quiescence window, no per-operation deadline.
type Watchdog struct {
	// Off disables monitoring entirely (no monitor goroutine).
	Off bool
	// Deadline, when positive, bounds how long any single blocking
	// operation (Recv, a collective's receive leg, Request.Wait,
	// Barrier) may stay blocked before the world is aborted with a
	// StallError. Zero disables the per-operation deadline.
	Deadline time.Duration
	// DeadlockAfter is how long the world must stay globally quiescent
	// before a deadlock is declared. Zero means 2s.
	DeadlockAfter time.Duration
	// Poll is the monitor's sampling period. Zero means 25ms.
	Poll time.Duration
}

const (
	defaultDeadlockAfter = 2 * time.Second
	defaultPoll          = 25 * time.Millisecond
)

func (wd Watchdog) withDefaults() Watchdog {
	if wd.DeadlockAfter == 0 {
		wd.DeadlockAfter = defaultDeadlockAfter
	}
	if wd.Poll == 0 {
		wd.Poll = defaultPoll
	}
	return wd
}

// Blocking operation kinds reported in StallError.Op.
const (
	opRecv    = "recv"
	opWait    = "wait"
	opBarrier = "barrier"
	// opBounded is the hard-bound phase of an asynchrony-tolerant
	// DoBounded: waiting for a peer that is more than maxStale epochs
	// behind (the deadline-bounded second phase never registers).
	opBounded = "bounded-wait"
)

// StallError is the typed failure the watchdog (or a deadline-aware
// Request.WaitWithin) surfaces through TryRun when the world stops
// making progress: the blocked rank, the operation it is stuck in, the
// peer and tag it is waiting on, and how long it waited.
type StallError struct {
	Rank int    // the blocked rank
	Op   string // "recv", "wait", "barrier" or "bounded-wait"
	Peer int    // message source rank, -1 when not applicable
	Tag  int    // message tag (collective sequence number when Coll)
	Coll bool   // collective-space tag rather than a user tag
	// Waited is how long the operation had been blocked when the
	// stall was declared.
	Waited time.Duration
	// Deadlock reports whether the error came from global quiescence
	// detection (every live rank blocked, nothing in flight) rather
	// than a per-operation deadline.
	Deadlock bool
}

func (e *StallError) Error() string {
	kind := "stalled"
	if e.Deadlock {
		kind = "deadlocked"
	}
	space := "tag"
	if e.Coll {
		space = "collective seq"
	}
	if e.Peer >= 0 {
		return fmt.Sprintf("mpi: %s: rank %d blocked in %s from peer %d (%s %d) for %v",
			kind, e.Rank, e.Op, e.Peer, space, e.Tag, e.Waited.Round(time.Millisecond))
	}
	return fmt.Sprintf("mpi: %s: rank %d blocked in %s (%s %d) for %v",
		kind, e.Rank, e.Op, space, e.Tag, e.Waited.Round(time.Millisecond))
}

// blockedOp is one goroutine blocked in a receive, wait or barrier.
// Helper ops (the drain goroutines of non-blocking collectives) are
// tracked for deadline purposes but do not count a rank as blocked:
// the rank's own goroutine may still be computing.
type blockedOp struct {
	rank      int
	op        string
	peer, tag int
	coll      bool
	helper    bool
	since     time.Time
}

// watchState is the bookkeeping behind one world's watchdog: the set
// of currently blocked operations, per-rank non-helper blocked counts,
// rank liveness, and the quiescence window.
type watchState struct {
	cfg Watchdog

	mu      sync.Mutex
	ops     map[*blockedOp]struct{}
	rankOps []int // non-helper blocked ops per rank
	live    []bool
	nlive   int
	stall   *StallError
	// free recycles blockedOp tokens so steady-state enter/exit (which
	// sits inside every barrier and wait of the watchdog-on-by-default
	// world) does not allocate per blocked operation.
	free []*blockedOp

	quiet    bool
	quietAt  time.Time
	lastProg int64

	stop, done chan struct{}
}

func newWatchState(cfg Watchdog, p int) *watchState {
	ws := &watchState{
		cfg:     cfg,
		ops:     map[*blockedOp]struct{}{},
		rankOps: make([]int, p),
		live:    make([]bool, p),
		nlive:   p,
		// Full freelist capacity up front (8KB of pointers) so the
		// append in exit never grows the backing array mid-operation:
		// enter/exit sits inside every barrier and blocking wait.
		free: make([]*blockedOp, 0, maxFreeOps),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i := range ws.live {
		ws.live[i] = true
	}
	return ws
}

func (ws *watchState) enter(rank int, op string, peer, tag int, coll, helper bool) *blockedOp {
	now := time.Now()
	ws.mu.Lock()
	var b *blockedOp
	if n := len(ws.free); n > 0 {
		b = ws.free[n-1]
		ws.free[n-1] = nil
		ws.free = ws.free[:n-1]
	} else {
		b = new(blockedOp)
	}
	*b = blockedOp{rank: rank, op: op, peer: peer, tag: tag, coll: coll, helper: helper, since: now}
	ws.ops[b] = struct{}{}
	if !helper {
		ws.rankOps[rank]++
	}
	ws.mu.Unlock()
	return b
}

// maxFreeOps bounds the token freelist; beyond it exited tokens fall to
// the GC. The bound only needs to cover the peak number of concurrently
// blocked ops, which is O(ranks + in-flight requests).
const maxFreeOps = 1024

func (ws *watchState) exit(b *blockedOp) {
	ws.mu.Lock()
	delete(ws.ops, b)
	if !b.helper {
		ws.rankOps[b.rank]--
	}
	// A stall verdict may hold a pointer into b (stallFrom copies, so
	// only the ops map references it); safe to recycle once delisted.
	if len(ws.free) < maxFreeOps {
		ws.free = append(ws.free, b)
	}
	ws.mu.Unlock()
}

// rankDone marks a rank's function as returned (or panicked): it no
// longer counts toward the all-live-ranks-blocked deadlock condition.
// Nil-safe so run can defer it unconditionally.
func (ws *watchState) rankDone(rank int) {
	if ws == nil {
		return
	}
	ws.mu.Lock()
	if ws.live[rank] {
		ws.live[rank] = false
		ws.nlive--
	}
	ws.mu.Unlock()
}

func (ws *watchState) stalled() *StallError {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.stall
}

// monitor polls the blocked-op set until the world finishes or a stall
// is declared. It runs on its own goroutine; run closes ws.stop after
// all ranks return and waits on ws.done.
func (ws *watchState) monitor(w *world) {
	defer close(ws.done)
	t := time.NewTicker(ws.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-ws.stop:
			return
		case <-t.C:
		}
		if w.isAborted() {
			return
		}
		if st := ws.check(w, time.Now()); st != nil {
			// Abort outside ws.mu: abortAll takes mailbox locks, which
			// rank goroutines hold while calling enter/exit.
			w.abortAll()
			return
		}
	}
}

// check evaluates both detectors against the current blocked-op set
// and records (and returns) a StallError if one fires.
func (ws *watchState) check(w *world, now time.Time) *StallError {
	prog := w.progress.Load()
	pending := w.pending.Load()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.stall != nil {
		return nil
	}
	// Per-operation deadline: any op blocked too long, even while the
	// rest of the world makes progress.
	if d := ws.cfg.Deadline; d > 0 {
		for b := range ws.ops {
			if wt := now.Sub(b.since); wt >= d {
				ws.stall = stallFrom(b, wt, false)
				return ws.stall
			}
		}
	}
	// Global quiescence: every live rank blocked in a non-helper op,
	// nothing delivered since the window began, nothing still in
	// flight on a fault-injection timer. Under the one-goroutine-per-
	// rank contract no future delivery is possible in that state.
	allBlocked := ws.nlive > 0
	for r, lv := range ws.live {
		if lv && ws.rankOps[r] == 0 {
			allBlocked = false
			break
		}
	}
	if !allBlocked || pending != 0 || (ws.quiet && prog != ws.lastProg) {
		ws.quiet = false
		return nil
	}
	if !ws.quiet {
		ws.quiet = true
		ws.quietAt = now
		ws.lastProg = prog
		return nil
	}
	if now.Sub(ws.quietAt) < ws.cfg.DeadlockAfter {
		return nil
	}
	// Blame the longest-blocked rank-level op (helpers as fallback).
	var oldest *blockedOp
	for b := range ws.ops {
		if b.helper {
			continue
		}
		if oldest == nil || b.since.Before(oldest.since) {
			oldest = b
		}
	}
	if oldest == nil {
		for b := range ws.ops {
			if oldest == nil || b.since.Before(oldest.since) {
				oldest = b
			}
		}
	}
	if oldest == nil {
		ws.quiet = false // raced with the last exit; re-arm
		return nil
	}
	ws.stall = stallFrom(oldest, now.Sub(oldest.since), true)
	return ws.stall
}

func stallFrom(b *blockedOp, waited time.Duration, deadlock bool) *StallError {
	return &StallError{
		Rank: b.rank, Op: b.op, Peer: b.peer, Tag: b.tag, Coll: b.coll,
		Waited: waited, Deadlock: deadlock,
	}
}

// --- nil-safe world-level hooks -----------------------------------------

func (w *world) watchEnter(rank int, op string, peer, tag int, coll, helper bool) *blockedOp {
	if w == nil || w.watch == nil {
		return nil
	}
	return w.watch.enter(rank, op, peer, tag, coll, helper)
}

func (w *world) watchExit(tok *blockedOp) {
	if tok == nil || w == nil || w.watch == nil {
		return
	}
	w.watch.exit(tok)
}

func (w *world) stallErr() *StallError {
	if w.watch == nil {
		return nil
	}
	return w.watch.stalled()
}
