package mpi

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			Send(c, 1, 7, []int{1, 2, 3})
		} else {
			buf := make([]int, 3)
			n := Recv(c, 0, 7, buf)
			if n != 3 || buf[0] != 1 || buf[2] != 3 {
				t.Errorf("recv got %v (n=%d)", buf, n)
			}
		}
	})
}

func TestSendIsBuffered(t *testing.T) {
	// The sender must be able to complete before the receiver posts,
	// and reusing the send buffer must not corrupt the message.
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			buf := []float64{42}
			Send(c, 1, 0, buf)
			buf[0] = -1 // must not affect the in-flight message
			c.Barrier()
		} else {
			c.Barrier()
			got := make([]float64, 1)
			Recv(c, 0, 0, got)
			if got[0] != 42 {
				t.Errorf("buffered send corrupted: got %g", got[0])
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			Send(c, 1, 1, []int{11})
			Send(c, 1, 2, []int{22})
		} else {
			b := make([]int, 1)
			Recv(c, 0, 2, b) // consume tag 2 first
			if b[0] != 22 {
				t.Errorf("tag 2 got %d", b[0])
			}
			Recv(c, 0, 1, b)
			if b[0] != 11 {
				t.Errorf("tag 1 got %d", b[0])
			}
		}
	})
}

func TestSameTagFIFOOrder(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			for i := 0; i < 10; i++ {
				Send(c, 1, 5, []int{i})
			}
		} else {
			b := make([]int, 1)
			for i := 0; i < 10; i++ {
				Recv(c, 0, 5, b)
				if b[0] != i {
					t.Errorf("FIFO violated: got %d want %d", b[0], i)
				}
			}
		}
	})
}

func TestBarrierOrdersRanks(t *testing.T) {
	var before, after int32
	Run(4, func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if n := atomic.LoadInt32(&before); n != 4 {
			t.Errorf("rank %d passed barrier with only %d arrivals", c.rank, n)
		}
		atomic.AddInt32(&after, 1)
	})
	if after != 4 {
		t.Errorf("after=%d", after)
	}
}

func TestBarrierReusable(t *testing.T) {
	Run(3, func(c *Comm) {
		for i := 0; i < 50; i++ {
			c.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	Run(5, func(c *Comm) {
		buf := make([]int, 4)
		if c.rank == 2 {
			buf = []int{9, 8, 7, 6}
		}
		Bcast(c, 2, buf)
		for i, v := range []int{9, 8, 7, 6} {
			if buf[i] != v {
				t.Errorf("rank %d: bcast[%d]=%d", c.rank, i, buf[i])
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	p := 4
	Run(p, func(c *Comm) {
		send := []int{c.rank * 10, c.rank*10 + 1}
		recv := make([]int, p*2)
		Allgather(c, send, recv)
		for r := 0; r < p; r++ {
			if recv[2*r] != r*10 || recv[2*r+1] != r*10+1 {
				t.Errorf("rank %d: allgather %v", c.rank, recv)
			}
		}
	})
}

func TestAllreduceSumAndMax(t *testing.T) {
	p := 6
	Run(p, func(c *Comm) {
		v := []float64{float64(c.rank), float64(-c.rank)}
		AllreduceSum(c, v)
		if v[0] != 15 || v[1] != -15 {
			t.Errorf("rank %d: sum %v", c.rank, v)
		}
		m := []float64{float64(c.rank)}
		AllreduceMax(c, m)
		if m[0] != 5 {
			t.Errorf("rank %d: max %v", c.rank, m)
		}
	})
}

func TestAlltoallBlockPlacement(t *testing.T) {
	p := 4
	bs := 3
	Run(p, func(c *Comm) {
		send := make([]int, p*bs)
		for dst := 0; dst < p; dst++ {
			for j := 0; j < bs; j++ {
				send[dst*bs+j] = c.rank*1000 + dst*10 + j
			}
		}
		recv := make([]int, p*bs)
		Alltoall(c, send, recv)
		for src := 0; src < p; src++ {
			for j := 0; j < bs; j++ {
				want := src*1000 + c.rank*10 + j
				if recv[src*bs+j] != want {
					t.Errorf("rank %d: recv[%d]=%d want %d", c.rank, src*bs+j, recv[src*bs+j], want)
				}
			}
		}
	})
}

func TestAlltoallIsSelfInverse(t *testing.T) {
	// Two successive all-to-alls with symmetric block layout restore the
	// original data (transpose twice = identity on the block matrix).
	p := 3
	bs := 4
	Run(p, func(c *Comm) {
		orig := make([]complex128, p*bs)
		rng := rand.New(rand.NewSource(int64(c.rank)))
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		mid := make([]complex128, p*bs)
		back := make([]complex128, p*bs)
		Alltoall(c, orig, mid)
		Alltoall(c, mid, back)
		for i := range orig {
			if back[i] != orig[i] {
				t.Fatalf("rank %d: element %d not restored", c.rank, i)
			}
		}
	})
}

func TestIalltoallOverlap(t *testing.T) {
	p := 4
	bs := 2
	Run(p, func(c *Comm) {
		send := make([]int, p*bs)
		for i := range send {
			send[i] = c.rank*100 + i
		}
		recv := make([]int, p*bs)
		req := Ialltoall(c, send, recv)
		// Do unrelated work while the exchange progresses.
		acc := 0
		for i := 0; i < 1000; i++ {
			acc += i
		}
		req.Wait()
		if !req.Test() {
			t.Error("Test() false after Wait()")
		}
		for src := 0; src < p; src++ {
			for j := 0; j < bs; j++ {
				want := src*100 + c.rank*bs + j
				if recv[src*bs+j] != want {
					t.Errorf("rank %d: got %d want %d", c.rank, recv[src*bs+j], want)
				}
			}
		}
		_ = acc
	})
}

func TestIalltoallMultipleInFlight(t *testing.T) {
	// Several non-blocking all-to-alls initiated before any completes
	// must not cross-deliver (seq-based matching).
	p := 3
	bs := 1
	Run(p, func(c *Comm) {
		const k = 5
		sends := make([][]int, k)
		recvs := make([][]int, k)
		reqs := make([]*Request, k)
		for op := 0; op < k; op++ {
			sends[op] = make([]int, p*bs)
			for dst := 0; dst < p; dst++ {
				sends[op][dst] = op*10000 + c.rank*100 + dst
			}
			recvs[op] = make([]int, p*bs)
			reqs[op] = Ialltoall(c, sends[op], recvs[op])
		}
		WaitAll(reqs)
		for op := 0; op < k; op++ {
			for src := 0; src < p; src++ {
				want := op*10000 + src*100 + c.rank
				if recvs[op][src] != want {
					t.Errorf("rank %d op %d: got %d want %d", c.rank, op, recvs[op][src], want)
				}
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	p := 3
	Run(p, func(c *Comm) {
		// Rank r sends r+1 copies of its rank to each destination.
		n := c.rank + 1
		sendcounts := make([]int, p)
		senddispls := make([]int, p)
		for d := 0; d < p; d++ {
			sendcounts[d] = n
			senddispls[d] = d * n
		}
		send := make([]int, p*n)
		for i := range send {
			send[i] = c.rank
		}
		recvcounts := make([]int, p)
		recvdispls := make([]int, p)
		total := 0
		for s := 0; s < p; s++ {
			recvcounts[s] = s + 1
			recvdispls[s] = total
			total += s + 1
		}
		recv := make([]int, total)
		Alltoallv(c, send, sendcounts, senddispls, recv, recvcounts, recvdispls)
		for s := 0; s < p; s++ {
			for j := 0; j < s+1; j++ {
				if recv[recvdispls[s]+j] != s {
					t.Errorf("rank %d: from %d got %d", c.rank, s, recv[recvdispls[s]+j])
				}
			}
		}
	})
}

func TestSplitRowCol(t *testing.T) {
	pr, pc := 2, 3
	Run(pr*pc, func(c *Comm) {
		row, col := c.CartGrid(pr, pc)
		if row.Size() != pc || col.Size() != pr {
			t.Errorf("rank %d: row size %d col size %d", c.rank, row.Size(), col.Size())
		}
		wantRowRank := c.rank % pc
		wantColRank := c.rank / pc
		if row.Rank() != wantRowRank {
			t.Errorf("rank %d: row rank %d want %d", c.rank, row.Rank(), wantRowRank)
		}
		if col.Rank() != wantColRank {
			t.Errorf("rank %d: col rank %d want %d", c.rank, col.Rank(), wantColRank)
		}
		// Collectives on the sub-communicators are isolated.
		v := []float64{1}
		AllreduceSum(row, v)
		if v[0] != float64(pc) {
			t.Errorf("rank %d: row reduce %g", c.rank, v[0])
		}
		w := []float64{1}
		AllreduceSum(col, w)
		if w[0] != float64(pr) {
			t.Errorf("rank %d: col reduce %g", c.rank, w[0])
		}
	})
}

func TestSplitRanksOrderedByKey(t *testing.T) {
	Run(4, func(c *Comm) {
		// Reverse ordering via key.
		sub := c.Split(0, -c.rank)
		want := c.Size() - 1 - c.rank
		if sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d want %d", c.rank, sub.Rank(), want)
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected panic")
		}
		if s, ok := e.(string); !ok || s == "" {
			t.Fatalf("unexpected panic payload %v", e)
		}
	}()
	Run(3, func(c *Comm) {
		if c.rank == 1 {
			panic("boom")
		}
	})
}

func TestSendRecvManyPairsConcurrently(t *testing.T) {
	p := 8
	Run(p, func(c *Comm) {
		// Full exchange implemented with raw sends/recvs.
		for d := 0; d < p; d++ {
			Send(c, d, 9, []int{c.rank})
		}
		seen := make(map[int]bool)
		for s := 0; s < p; s++ {
			b := make([]int, 1)
			Recv(c, s, 9, b)
			seen[b[0]] = true
		}
		if len(seen) != p {
			t.Errorf("rank %d saw %d distinct senders", c.rank, len(seen))
		}
	})
}

func TestRecvBufferTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(2, func(c *Comm) {
		if c.rank == 0 {
			Send(c, 1, 0, []int{1, 2, 3})
		} else {
			Recv(c, 0, 0, make([]int, 1))
		}
	})
}

func TestAlltoallLargePayloadStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	p := 4
	bs := 1 << 14
	Run(p, func(c *Comm) {
		send := make([]float64, p*bs)
		for i := range send {
			send[i] = float64(c.rank)
		}
		recv := make([]float64, p*bs)
		start := time.Now()
		for iter := 0; iter < 5; iter++ {
			Alltoall(c, send, recv)
		}
		_ = start
		for src := 0; src < p; src++ {
			if recv[src*bs] != float64(src) {
				t.Errorf("rank %d: wrong block origin", c.rank)
			}
		}
	})
}

func ExampleRun() {
	Run(2, func(c *Comm) {
		v := []float64{float64(c.Rank() + 1)}
		AllreduceSum(c, v)
		if c.Rank() == 0 {
			fmt.Println(v[0])
		}
	})
	// Output: 3
}
