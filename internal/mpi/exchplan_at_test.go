package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Property coverage for the asynchrony-tolerant exchange: with no
// injected delay DoBounded must be bitwise identical to Do, under
// injected stragglers the per-peer staleness must never exceed the
// bound, and the steady state must stay allocation-free.

// With zero injected delay and a generous deadline every rank reaches
// every epoch inside the wait, so DoBounded must produce bitwise the
// same gathered table as the synchronous Do over the same sources.
func TestExchangePlanBoundedMatchesDoZeroDelay(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			TryRunOrFatal(t, p, func(c *Comm) {
				const bs, cycles = 3, 6
				me := c.Rank()
				sync := NewExchangePlan[int](c, bs*p)
				defer sync.Free()
				at := NewExchangePlanBounded[int](c, bs*p, 1, 2*time.Second)
				defer at.Free()
				src := make([]int, bs*p)
				want := make([]int, bs*p)
				got := make([]int, bs*p)
				gatherInto := func(dst []int) func(srcs [][]int) {
					return func(srcs [][]int) {
						for s := 0; s < p; s++ {
							copy(dst[s*bs:(s+1)*bs], srcs[s][me*bs:(me+1)*bs])
						}
					}
				}
				for cy := 0; cy < cycles; cy++ {
					for i := range src {
						src[i] = me*10000 + cy*100 + i
					}
					sync.Do(src, gatherInto(want))
					at.DoBounded(src, gatherInto(got), 1)
					for i := range want {
						if got[i] != want[i] {
							panic(fmt.Sprintf("rank %d cycle %d: AT differs at %d: %d vs %d",
								me, cy, i, got[i], want[i]))
						}
					}
				}
				max, _, slabs, calls := at.TakeStaleness()
				if max != 0 || slabs != 0 {
					panic(fmt.Sprintf("rank %d: zero-delay run observed staleness max=%d slabs=%d", me, max, slabs))
				}
				if calls != cycles {
					panic(fmt.Sprintf("rank %d: TakeStaleness calls=%d want %d", me, calls, cycles))
				}
			})
		})
	}
}

// Under a seeded per-rank delay and a tiny deadline, every slab a rank
// gathers must be at most maxStale epochs old and never from the
// future; TakeStaleness must agree.
func TestExchangePlanBoundedStalenessNeverExceedsBound(t *testing.T) {
	const p, maxStale, cycles = 4, 2, 16
	TryRunOrFatal(t, p, func(c *Comm) {
		me := c.Rank()
		pl := NewExchangePlanBounded[float64](c, p, maxStale, 200*time.Microsecond)
		defer pl.Free()
		src := make([]float64, p)
		for e := 1; e <= cycles; e++ {
			if me == p-1 {
				time.Sleep(2 * time.Millisecond) // deterministic straggler
			}
			for i := range src {
				src[i] = float64(e)
			}
			pl.DoBounded(src, func(srcs [][]float64) {
				for r := 0; r < p; r++ {
					pe := int(srcs[r][0])
					if pe > e || e-pe > maxStale {
						panic(fmt.Sprintf("rank %d epoch %d: slab from rank %d at epoch %d violates bound %d",
							me, e, r, pe, maxStale))
					}
				}
			}, maxStale)
		}
		max, sum, slabs, calls := pl.TakeStaleness()
		if max > maxStale {
			panic(fmt.Sprintf("rank %d: TakeStaleness max=%d exceeds bound %d", me, max, maxStale))
		}
		if calls != cycles {
			panic(fmt.Sprintf("rank %d: calls=%d want %d", me, calls, cycles))
		}
		if slabs > 0 && sum < int64(slabs) {
			panic(fmt.Sprintf("rank %d: sum=%d inconsistent with slabs=%d", me, sum, slabs))
		}
	})
}

// The tentpole trade: a straggler that provably stalls the synchronous
// path (the per-op deadline fires on the plan barrier) is absorbed by
// the bounded path within its staleness budget — same delay schedule,
// no watchdog stall, and the observed staleness stays within bound.
func TestExchangePlanBoundedProgressWhereSyncStalls(t *testing.T) {
	const p, cycles = 3, 3
	wd := Watchdog{Deadline: 50 * time.Millisecond, Poll: 5 * time.Millisecond}
	straggle := func(c *Comm, e int) {
		if c.Rank() == p-1 && e == 2 {
			time.Sleep(150 * time.Millisecond)
		}
	}

	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		src := make([]int, p)
		for e := 1; e <= cycles; e++ {
			straggle(c, e)
			pl.Do(src, func([][]int) {})
		}
	}, WithWatchdog(wd))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("synchronous run: err = %v, want StallError", err)
	}

	err = TryRun(p, func(c *Comm) {
		pl := NewExchangePlanBounded[int](c, p, 2, time.Millisecond)
		defer pl.Free()
		src := make([]int, p)
		for e := 1; e <= cycles; e++ {
			straggle(c, e)
			pl.DoBounded(src, func([][]int) {}, 2)
		}
		if max, _, _, _ := pl.TakeStaleness(); max > 2 {
			panic(fmt.Sprintf("rank %d: staleness %d exceeds bound", c.Rank(), max))
		}
	}, WithWatchdog(wd))
	if err != nil {
		t.Fatalf("bounded run with the same straggler: err = %v, want progress", err)
	}
}

// Steady-state DoBounded must not allocate: publication is a copy into
// a plan-owned ring slot, the waits are sleep-polls, and the gather
// table is a reused slice.
func TestExchangePlanBoundedZeroAllocSteadyState(t *testing.T) {
	const p = 4
	TryRunOrFatal(t, p, func(c *Comm) {
		me := c.Rank()
		pl := NewExchangePlanBounded[complex128](c, 64*p, 1, time.Second)
		defer pl.Free()
		src := make([]complex128, 64*p)
		dst := make([]complex128, 64*p)
		gather := func(srcs [][]complex128) {
			for s := 0; s < p; s++ {
				copy(dst[s*64:(s+1)*64], srcs[s][me*64:(me+1)*64])
			}
		}
		cycle := func() { pl.DoBounded(src, gather, 1) }
		for i := 0; i < 3; i++ {
			cycle()
		}
		if me == 0 {
			avg := testing.AllocsPerRun(10, cycle)
			if avg != 0 {
				panic(fmt.Sprintf("bounded exchange allocates %.2f per DoBounded", avg))
			}
		} else {
			for i := 0; i < 11; i++ {
				cycle()
			}
		}
	})
}

// Freeing a plan must drop both its shared state and its barrier from
// the world's registries: a long-running world that builds and tears
// down plans keeps both maps bounded, and the abort cascade after a
// Free still works (it no longer wakes dead barriers).
func TestPlanRegistriesBoundedAcrossFree(t *testing.T) {
	const p, rounds = 2, 50
	TryRunOrFatal(t, p, func(c *Comm) {
		src := make([]int, p)
		recv := make([]int, p)
		for i := 0; i < rounds; i++ {
			ep := NewExchangePlan[int](c, p)
			ep.Do(src, func([][]int) {})
			ep.Free()
			ap := NewA2APlan(c, src, recv)
			ap.Do()
			ap.Free()
			bp := NewExchangePlanBounded[int](c, p, 1, time.Second)
			bp.DoBounded(src, func([][]int) {}, 1)
			bp.Free()
		}
		c.Barrier() // every rank has Freed round `rounds` before we look
		c.w.mu.Lock()
		nb, np := len(c.w.planBars), len(c.w.plans)
		c.w.mu.Unlock()
		if nb != 0 || np != 0 {
			panic(fmt.Sprintf("rank %d: after %d create/free rounds planBars=%d plans=%d, want 0/0",
				c.Rank(), rounds, nb, np))
		}
	})
}

// Abort after Free: a panic raised once a plan has been freed must
// still cascade to peers blocked elsewhere (nothing dangles on the
// freed barrier, and the live wakeup paths are unaffected).
func TestAbortAfterPlanFree(t *testing.T) {
	const p = 2
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		pl.Do(make([]int, p), func([][]int) {})
		pl.Free()
		if c.Rank() == 0 {
			panic("post-free fault")
		}
		c.Barrier() // would hang forever without the cascade
		c.Barrier()
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("err = %v, want RankError on rank 0", err)
	}
}

// A plan cycling through heterogeneous exchange sites must never
// deliver a slab published for a different site: with the bound equal
// to the cycle length, an accepted slab is either current or the same
// site's publication exactly one cycle earlier. Rank 1 straggles with
// a zero soft deadline so rank 0 runs as far ahead as the hard bound
// allows — the regime where an unlabeled epoch ring would hand out
// the neighbouring site's slab.
func TestDoBoundedSiteConsistency(t *testing.T) {
	const (
		p      = 2
		sites  = 3 // heterogeneous exchange sites per cycle
		cycles = 6
		stale  = 3 // = sites: up to one whole cycle of lag
	)
	TryRunOrFatal(t, p, func(c *Comm) {
		pl := NewExchangePlanBounded[int64](c, p, stale, 0)
		defer pl.Free()
		me := c.Rank()
		src := make([]int64, p)
		epoch := int64(0)
		for cyc := 0; cyc < cycles; cyc++ {
			for sidx := 0; sidx < sites; sidx++ {
				epoch++
				if me == 1 {
					time.Sleep(2 * time.Millisecond)
				}
				for i := range src {
					src[i] = epoch
				}
				pl.SetSite(uint32(sidx))
				e := epoch
				pl.DoBounded(src, func(srcs [][]int64) {
					got := srcs[1-me][0]
					if got != e && got != e-sites {
						panic(fmt.Sprintf("rank %d epoch %d site %d: gathered slab from epoch %d — a different exchange site",
							me, e, sidx, got))
					}
				}, stale)
			}
		}
		if max, _, _, _ := pl.TakeStaleness(); max > 1 {
			panic(fmt.Sprintf("rank %d: accepted age %d exceeds one cycle", me, max))
		}
	})
}

// A bound smaller than the site cycle can never admit stale data:
// every retained slab within the bound was published for a different
// site, so the exchange falls back to a full wait and the gather
// always sees the current epoch — the sub-cycle bound degenerates to
// synchronous behavior rather than corrupting the gather.
func TestDoBoundedSubCycleBoundStaysSynchronous(t *testing.T) {
	const (
		p      = 2
		sites  = 3
		cycles = 5
		stale  = 2 // < sites: no same-site slab inside the bound
	)
	TryRunOrFatal(t, p, func(c *Comm) {
		pl := NewExchangePlanBounded[int64](c, p, stale, 0)
		defer pl.Free()
		me := c.Rank()
		src := make([]int64, p)
		epoch := int64(0)
		for cyc := 0; cyc < cycles; cyc++ {
			for sidx := 0; sidx < sites; sidx++ {
				epoch++
				if me == 1 {
					time.Sleep(time.Millisecond)
				}
				for i := range src {
					src[i] = epoch
				}
				pl.SetSite(uint32(sidx))
				e := epoch
				pl.DoBounded(src, func(srcs [][]int64) {
					if got := srcs[1-me][0]; got != e {
						panic(fmt.Sprintf("rank %d epoch %d site %d: gathered epoch %d, want current",
							me, e, sidx, got))
					}
				}, stale)
			}
		}
		if _, _, slabs, _ := pl.TakeStaleness(); slabs != 0 {
			panic(fmt.Sprintf("rank %d: sub-cycle bound accepted %d stale slabs", me, slabs))
		}
	})
}
