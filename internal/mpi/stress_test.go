package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRandomCollectiveSequences drives every rank through the same
// randomly generated program of collectives and checks each result —
// the property that matters for the DNS: any same-order mixture of
// blocking and non-blocking operations delivers the right data.
func TestRandomCollectiveSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(4) // 2..5 ranks
		nOps := 3 + rng.Intn(8)
		ops := make([]int, nOps)
		sizes := make([]int, nOps)
		for i := range ops {
			ops[i] = rng.Intn(5)
			sizes[i] = 1 + rng.Intn(16)
		}
		ok := true
		Run(p, func(c *Comm) {
			var pending []*Request
			var pendingChecks []func() bool
			for i, op := range ops {
				n := sizes[i]
				switch op {
				case 0: // barrier
					c.Barrier()
				case 1: // allreduce sum
					v := make([]float64, n)
					for j := range v {
						v[j] = float64(c.Rank() + j)
					}
					AllreduceSum(c, v)
					for j := range v {
						want := float64(p*j) + float64(p*(p-1)/2)
						if v[j] != want {
							ok = false
						}
					}
				case 2: // blocking alltoall
					send := make([]int, p*n)
					for d := 0; d < p; d++ {
						for j := 0; j < n; j++ {
							send[d*n+j] = c.Rank()*1000000 + d*1000 + j
						}
					}
					recv := make([]int, p*n)
					Alltoall(c, send, recv)
					for s := 0; s < p; s++ {
						for j := 0; j < n; j++ {
							if recv[s*n+j] != s*1000000+c.Rank()*1000+j {
								ok = false
							}
						}
					}
				case 3: // non-blocking alltoall, deferred wait
					send := make([]int, p*n)
					for d := 0; d < p; d++ {
						send[d*n] = i*100 + c.Rank()
					}
					recv := make([]int, p*n)
					req := Ialltoall(c, send, recv)
					pending = append(pending, req)
					i := i
					pendingChecks = append(pendingChecks, func() bool {
						for s := 0; s < p; s++ {
							if recv[s*n] != i*100+s {
								return false
							}
						}
						return true
					})
				case 4: // bcast from a rotating root
					root := i % p
					buf := make([]int, n)
					if c.Rank() == root {
						for j := range buf {
							buf[j] = i*10 + j
						}
					}
					Bcast(c, root, buf)
					for j := range buf {
						if buf[j] != i*10+j {
							ok = false
						}
					}
				}
			}
			WaitAll(pending)
			for _, chk := range pendingChecks {
				if !chk() {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestManyConcurrentWorlds runs several independent worlds at once —
// the pattern the benchmarks and table tests create — verifying no
// shared-state leakage between Run invocations.
func TestManyConcurrentWorlds(t *testing.T) {
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			okAll := true
			Run(3, func(c *Comm) {
				v := []float64{float64(w)}
				AllreduceSum(c, v)
				if v[0] != float64(3*w) {
					okAll = false
				}
			})
			done <- okAll
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Error("cross-world interference")
		}
	}
}

// TestDeepNonblockingPipelining issues a long chain of Ialltoalls
// before waiting on any — the config-B pattern with many pencils.
func TestDeepNonblockingPipelining(t *testing.T) {
	const depth = 32
	Run(4, func(c *Comm) {
		sends := make([][]int, depth)
		recvs := make([][]int, depth)
		reqs := make([]*Request, depth)
		for i := 0; i < depth; i++ {
			sends[i] = make([]int, 4)
			for d := 0; d < 4; d++ {
				sends[i][d] = i*1000 + c.Rank()*10 + d
			}
			recvs[i] = make([]int, 4)
			reqs[i] = Ialltoall(c, sends[i], recvs[i])
		}
		// Wait in reverse order to stress out-of-order completion.
		for i := depth - 1; i >= 0; i-- {
			reqs[i].Wait()
			for s := 0; s < 4; s++ {
				if recvs[i][s] != i*1000+s*10+c.Rank() {
					t.Errorf("depth %d from %d: got %d", i, s, recvs[i][s])
				}
			}
		}
	})
}
