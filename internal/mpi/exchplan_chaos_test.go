package mpi

import (
	"errors"
	"testing"
	"time"
)

// Chaos coverage for the fused exchange: gathered data bypasses the
// mailbox layer entirely, so the failure model must ride on the
// plan's barriers and the operation counter. These tests pin that the
// watchdog and crash-schedule paths fire inside ExchangePlan.Do just
// as they do for staged exchanges.

// A scheduled rank crash whose operation index lands on a fused Do
// must surface as a typed CrashError, with every peer woken out of
// the plan's entry barrier by the abort cascade rather than hanging.
func TestExchangePlanCrashScheduleFires(t *testing.T) {
	const p = 4
	// Op 1 is the plan-construction collective ordering on rank 2's
	// counter? Construction does not tick the op counter (no
	// maybeCrash); ops tick on Do. Crash on rank 2's second Do.
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		src := make([]int, p)
		for i := 0; i < 3; i++ {
			pl.Do(src, func([][]int) {})
		}
	}, WithFaults(&Faults{Crash: map[int]int{2: 2}}))
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("err = %v, want RankError on rank 2", err)
	}
	var ce *CrashError
	if !errors.As(re.Err, &ce) || ce.Op != 2 {
		t.Fatalf("cause = %v, want CrashError at op 2", re.Err)
	}
}

// A straggler that never reaches Do leaves its peers blocked in the
// plan's entry barrier; the per-operation deadline must see that
// blocked barrier (the plan's barrier is watchdog-registered) and
// abort the world with a typed StallError instead of hanging.
func TestExchangePlanStallDetectedByWatchdog(t *testing.T) {
	const p = 3
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		if c.Rank() == 1 {
			// Straggle far beyond the per-op deadline before joining.
			time.Sleep(400 * time.Millisecond)
		}
		src := make([]int, p)
		pl.Do(src, func([][]int) {})
	}, WithWatchdog(Watchdog{Deadline: 40 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StallError from the blocked plan barrier", err)
	}
	if se.Op != opBarrier {
		t.Fatalf("StallError.Op = %q, want %q", se.Op, opBarrier)
	}
}

// A rank that exits without ever calling Do (collective-order bug)
// leaves the world globally quiescent with peers blocked in the plan
// barrier; deadlock detection must fire.
func TestExchangePlanDeadlockDetected(t *testing.T) {
	const p = 2
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		if c.Rank() == 1 {
			return // never joins the exchange
		}
		src := make([]int, p)
		pl.Do(src, func([][]int) {})
	}, WithWatchdog(Watchdog{DeadlockAfter: 60 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StallError (deadlock)", err)
	}
}

// A peer panicking mid-gather must cascade: ranks blocked in the exit
// barrier are woken and the primary panic is reported.
func TestExchangePlanAbortCascadeFromGatherPanic(t *testing.T) {
	const p = 3
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		src := make([]int, p)
		pl.Do(src, func([][]int) {
			if c.Rank() == 2 {
				panic("gather kernel fault")
			}
		})
		// Survivors would block here forever without the cascade.
		pl.Do(src, func([][]int) {})
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("err = %v, want RankError on rank 2", err)
	}
}
