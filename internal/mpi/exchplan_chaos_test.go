package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// Chaos coverage for the fused exchange: gathered data bypasses the
// mailbox layer entirely, so the failure model must ride on the
// plan's barriers and the operation counter. These tests pin that the
// watchdog and crash-schedule paths fire inside ExchangePlan.Do just
// as they do for staged exchanges.

// A scheduled rank crash whose operation index lands on a fused Do
// must surface as a typed CrashError, with every peer woken out of
// the plan's entry barrier by the abort cascade rather than hanging.
func TestExchangePlanCrashScheduleFires(t *testing.T) {
	const p = 4
	// Op 1 is the plan-construction collective ordering on rank 2's
	// counter? Construction does not tick the op counter (no
	// maybeCrash); ops tick on Do. Crash on rank 2's second Do.
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		src := make([]int, p)
		for i := 0; i < 3; i++ {
			pl.Do(src, func([][]int) {})
		}
	}, WithFaults(&Faults{Crash: map[int]int{2: 2}}))
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("err = %v, want RankError on rank 2", err)
	}
	var ce *CrashError
	if !errors.As(re.Err, &ce) || ce.Op != 2 {
		t.Fatalf("cause = %v, want CrashError at op 2", re.Err)
	}
}

// A straggler that never reaches Do leaves its peers blocked in the
// plan's entry barrier; the per-operation deadline must see that
// blocked barrier (the plan's barrier is watchdog-registered) and
// abort the world with a typed StallError instead of hanging.
func TestExchangePlanStallDetectedByWatchdog(t *testing.T) {
	const p = 3
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		if c.Rank() == 1 {
			// Straggle far beyond the per-op deadline before joining.
			time.Sleep(400 * time.Millisecond)
		}
		src := make([]int, p)
		pl.Do(src, func([][]int) {})
	}, WithWatchdog(Watchdog{Deadline: 40 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StallError from the blocked plan barrier", err)
	}
	if se.Op != opBarrier {
		t.Fatalf("StallError.Op = %q, want %q", se.Op, opBarrier)
	}
}

// A rank that exits without ever calling Do (collective-order bug)
// leaves the world globally quiescent with peers blocked in the plan
// barrier; deadlock detection must fire.
func TestExchangePlanDeadlockDetected(t *testing.T) {
	const p = 2
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		if c.Rank() == 1 {
			return // never joins the exchange
		}
		src := make([]int, p)
		pl.Do(src, func([][]int) {})
	}, WithWatchdog(Watchdog{DeadlockAfter: 60 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StallError (deadlock)", err)
	}
}

// A peer panicking mid-gather must cascade: ranks blocked in the exit
// barrier are woken and the primary panic is reported.
func TestExchangePlanAbortCascadeFromGatherPanic(t *testing.T) {
	const p = 3
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlan[int](c, p)
		defer pl.Free()
		src := make([]int, p)
		pl.Do(src, func([][]int) {
			if c.Rank() == 2 {
				panic("gather kernel fault")
			}
		})
		// Survivors would block here forever without the cascade.
		pl.Do(src, func([][]int) {})
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("err = %v, want RankError on rank 2", err)
	}
}

// A scheduled crash firing while peers sit inside DoBounded's hard
// wait must surface as a typed CrashError: the abort cascade reaches
// the sleep-polling waiters (they check the abort flag each poll), so
// nobody hangs and no stale slab is delivered as live data — the
// gather of the waiting ranks never runs.
func TestExchangePlanBoundedCrashSurfacesCrashError(t *testing.T) {
	const p = 3
	err := TryRun(p, func(c *Comm) {
		// maxStale 0: every DoBounded hard-waits for all peers, so the
		// survivors are provably inside the bounded wait when rank 2's
		// second operation crashes instead of publishing epoch 2.
		pl := NewExchangePlanBounded[int](c, p, 0, 0)
		defer pl.Free()
		src := make([]int, p)
		gathered := 0
		for i := 0; i < 3; i++ {
			pl.DoBounded(src, func([][]int) { gathered++ }, 0)
		}
		if gathered != 3 {
			panic("gather ran a different number of times than DoBounded")
		}
	}, WithFaults(&Faults{Crash: map[int]int{2: 2}}))
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("err = %v, want RankError on rank 2", err)
	}
	var ce *CrashError
	if !errors.As(re.Err, &ce) || ce.Op != 2 {
		t.Fatalf("cause = %v, want CrashError at op 2", re.Err)
	}
}

// A straggler that keeps the hard bound unsatisfied past the per-op
// deadline must be caught by the watchdog as a typed StallError naming
// the bounded wait, exactly as the synchronous barrier path is.
func TestExchangePlanBoundedStallDetectedByWatchdog(t *testing.T) {
	const p = 3
	err := TryRun(p, func(c *Comm) {
		pl := NewExchangePlanBounded[int](c, p, 0, 0)
		defer pl.Free()
		if c.Rank() == 1 {
			time.Sleep(400 * time.Millisecond)
		}
		pl.DoBounded(make([]int, p), func([][]int) {}, 0)
	}, WithWatchdog(Watchdog{Deadline: 40 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StallError from the bounded wait", err)
	}
	if se.Op != opBounded {
		t.Fatalf("StallError.Op = %q, want %q", se.Op, opBounded)
	}
}

// Mixed-mode plans are a collective-contract violation and must be
// rejected at plan time, whichever mode registers first: an exchange
// plan is synchronous or asynchrony-tolerant for every rank or none.
func TestExchangePlanBoundedMixedModeRejected(t *testing.T) {
	cases := []struct {
		name string
		fn   func(c *Comm)
	}{
		{"sync-vs-at", func(c *Comm) {
			if c.Rank() == 0 {
				NewExchangePlan[int](c, 2)
			} else {
				NewExchangePlanBounded[int](c, 2, 1, time.Millisecond)
			}
		}},
		{"at-vs-sync", func(c *Comm) {
			if c.Rank() == 0 {
				NewExchangePlanBounded[int](c, 2, 1, time.Millisecond)
			} else {
				NewExchangePlan[int](c, 2)
			}
		}},
		{"bound-disagrees", func(c *Comm) {
			NewExchangePlanBounded[int](c, 2, 1+c.Rank(), time.Millisecond)
		}},
		{"deadline-disagrees", func(c *Comm) {
			NewExchangePlanBounded[int](c, 2, 1, time.Duration(1+c.Rank())*time.Millisecond)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := TryRun(2, tc.fn)
			var re *RankError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v, want RankError at plan time", err)
			}
			if !strings.Contains(re.Err.Error(), "collective contract violation") {
				t.Fatalf("cause = %v, want collective-contract violation", re.Err)
			}
		})
	}
}
