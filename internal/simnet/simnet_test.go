package simnet

import (
	"math"
	"testing"
)

// paperTable2 holds the measured values from the paper: P2P size (MB)
// and per-node bandwidth (GB/s) for configurations A, B, C.
var paperTable2 = []struct {
	nodes int
	cfg   string
	p2pMB float64
	bwGBs float64
}{
	{16, "A", 12, 36.5}, {16, "B", 108, 43.1}, {16, "C", 324, 43.6},
	{128, "A", 1.5, 24.0}, {128, "B", 13.5, 39.0}, {128, "C", 40.5, 39.0},
	{1024, "A", 0.19, 11.1}, {1024, "B", 1.69, 23.5}, {1024, "C", 5.06, 25.0},
	{3072, "A", 0.053, 13.2}, {3072, "B", 0.47, 12.4}, {3072, "C", 1.90, 17.6},
}

func TestTable2MessageSizesMatchPaper(t *testing.T) {
	rows := SummitA2A().Table2()
	if len(rows) != len(paperTable2) {
		t.Fatalf("rows %d want %d", len(rows), len(paperTable2))
	}
	for i, w := range paperTable2 {
		g := rows[i]
		if g.Nodes != w.nodes || g.Cfg != w.cfg {
			t.Fatalf("row %d: got %d/%s want %d/%s", i, g.Nodes, g.Cfg, w.nodes, w.cfg)
		}
		gotMB := g.P2P / (1 << 20)
		if math.Abs(gotMB-w.p2pMB)/w.p2pMB > 0.02 {
			t.Errorf("%d/%s: P2P %.3f MB want %.3f", w.nodes, w.cfg, gotMB, w.p2pMB)
		}
	}
}

func TestTable2BandwidthsWithinTolerance(t *testing.T) {
	// The calibrated model must land within 12% of every measured cell
	// — tight enough that every qualitative conclusion of §4.1 holds.
	rows := SummitA2A().Table2()
	for i, w := range paperTable2 {
		got := rows[i].BW / 1e9
		rel := math.Abs(got-w.bwGBs) / w.bwGBs
		if rel > 0.12 {
			t.Errorf("%d nodes cfg %s: BW %.1f GB/s want %.1f (rel %.0f%%)",
				w.nodes, w.cfg, got, w.bwGBs, rel*100)
		}
	}
}

func TestQualitativeOrderingsOfSection41(t *testing.T) {
	rows := SummitA2A().Table2()
	get := func(nodes int, cfg string) float64 {
		for _, r := range rows {
			if r.Nodes == nodes && r.Cfg == cfg {
				return r.BW
			}
		}
		t.Fatalf("missing %d/%s", nodes, cfg)
		return 0
	}
	// B beats A up to 1024 nodes (larger messages win).
	for _, nodes := range []int{16, 128, 1024} {
		if get(nodes, "B") <= get(nodes, "A") {
			t.Errorf("%d nodes: B should beat A", nodes)
		}
	}
	// At 3072 nodes A beats B (eager-path anomaly).
	if get(3072, "A") <= get(3072, "B") {
		t.Error("3072 nodes: A should beat B via the eager path")
	}
	// C ≥ B everywhere (bigger messages, fewer calls).
	for _, nodes := range []int{16, 128, 1024, 3072} {
		if get(nodes, "C") < get(nodes, "B")*0.999 {
			t.Errorf("%d nodes: C should not lose to B", nodes)
		}
	}
}

func TestBandwidthMonotonicInMessageSize(t *testing.T) {
	m := SummitA2A()
	for _, nodes := range []int{16, 128, 1024, 3072} {
		prev := 0.0
		for _, msg := range []float64{128 * kib, mib, 16 * mib, 256 * mib} {
			bw := m.NodeBandwidth(msg, nodes)
			if bw < prev {
				t.Errorf("nodes %d: bandwidth not monotone at %g bytes", nodes, msg)
			}
			prev = bw
		}
	}
}

func TestSaturatedBandwidthDegradesWithScale(t *testing.T) {
	// In the large-message limit the per-node bandwidth falls with node
	// count — the Table 2 trend that motivates the paper's "fewer,
	// larger messages" design.
	m := SummitA2A()
	msg := 512 * mib
	prev := math.Inf(1)
	for _, nodes := range []int{16, 128, 1024, 3072} {
		bw := m.NodeBandwidth(msg, nodes)
		if bw > prev {
			t.Errorf("saturated bandwidth grew with node count at %d nodes", nodes)
		}
		prev = bw
	}
}

func TestInterpolationBetweenCalibrationPoints(t *testing.T) {
	m := SummitA2A()
	// 1536 nodes sits between the 1024 and 3072 calibrations.
	bwMid := m.NodeBandwidth(4*mib, 1536)
	bwLo := m.NodeBandwidth(4*mib, 3072)
	bwHi := m.NodeBandwidth(4*mib, 1024)
	if bwMid < bwLo || bwMid > bwHi {
		t.Errorf("interpolated BW %.1f outside [%.1f, %.1f]", bwMid/1e9, bwLo/1e9, bwHi/1e9)
	}
	// Clamping outside the range.
	if m.NodeBandwidth(4*mib, 8) != m.NodeBandwidth(4*mib, 16) {
		t.Error("below-range node count should clamp")
	}
	if m.NodeBandwidth(4*mib, 4608) != m.NodeBandwidth(4*mib, 3072) {
		t.Error("above-range node count should clamp")
	}
}

func TestTimeInvertsEq3(t *testing.T) {
	m := SummitA2A()
	p2p := 1.9 * mib
	p, tpn, nodes := 6144, 2, 3072
	tm := m.Time(p2p, p, tpn, nodes)
	bw := 2 * p2p * float64(p) * float64(tpn) / tm
	if math.Abs(bw-m.NodeBandwidth(p2p, nodes))/bw > 1e-12 {
		t.Error("Time() does not invert Eq 3")
	}
}

func TestP2PFormulas(t *testing.T) {
	// 16 nodes, N=3072: case C (P=32): 324 MB; case A (P=96, np=3): 12 MB.
	if got := P2PSlab(3072, 32, 3) / mib; math.Abs(got-324) > 1 {
		t.Errorf("slab P2P %.1f MB want 324", got)
	}
	if got := P2PPencil(3072, 96, 3, 3) / mib; math.Abs(got-12) > 0.1 {
		t.Errorf("pencil P2P %.2f MB want 12", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SummitA2A().NodeBandwidth(0, 16)
}

// The asynchrony-tolerance study: at full production scale (18432³ on
// 3072 nodes, configuration C) the synchronous schedule pays every
// straggler's delay in full, while a staleness bound of k epochs
// hides up to k exchange intervals of it. The properties pinned here
// generate the EXPERIMENTS.md straggler table.
func TestStragglerStudyProperties(t *testing.T) {
	m := SummitA2A()
	base := StragglerScenario{
		N: 18432, Nodes: 3072, TPN: 2, NV: 3,
		Exchanges: 18, Compute: 0.5,
	}
	// Exchange-dominated step, as the paper reports at scale.
	syncNoDelay, atNoDelay := m.StepTimes(base)
	if syncNoDelay != atNoDelay {
		t.Fatalf("no-delay schedules differ: %g vs %g", syncNoDelay, atNoDelay)
	}
	epoch := syncNoDelay / float64(base.Exchanges)

	for _, delay := range []float64{1, 5, 10} {
		prev := math.Inf(1)
		for _, k := range []int{0, 1, 2, 4, 8} {
			sc := base
			sc.Delay, sc.MaxStale = delay, k
			sync, at := m.StepTimes(sc)
			if sync != syncNoDelay+delay {
				t.Errorf("sync schedule must absorb nothing: %g vs %g", sync, syncNoDelay+delay)
			}
			if at > sync {
				t.Errorf("delay=%g k=%d: AT slower than sync (%g > %g)", delay, k, at, sync)
			}
			if k == 0 && at != sync {
				t.Errorf("delay=%g: bound 0 must match the synchronous schedule", delay)
			}
			if at > prev {
				t.Errorf("delay=%g k=%d: AT time not monotone in the bound", delay, k)
			}
			if float64(k)*epoch >= delay && math.Abs(at-syncNoDelay) > 1e-9 {
				t.Errorf("delay=%g k=%d: delay within pipeline depth not fully hidden (%g vs %g)",
					delay, k, at, syncNoDelay)
			}
			prev = at
		}
	}
}

// TestStragglerStudyTable regenerates the EXPERIMENTS.md numbers so
// the committed table cannot drift from the model.
func TestStragglerStudyTable(t *testing.T) {
	m := SummitA2A()
	base := StragglerScenario{
		N: 18432, Nodes: 3072, TPN: 2, NV: 3,
		Exchanges: 18, Compute: 0.5, Delay: 5,
	}
	speedup := func(k int) float64 {
		sc := base
		sc.MaxStale = k
		sync, at := m.StepTimes(sc)
		return sync / at
	}
	// One exchange interval is ~2.92 s at this geometry: k=1 hides
	// part of the 5 s straggler, k=2 hides it completely.
	if s := speedup(0); s != 1 {
		t.Errorf("k=0 speedup %g, want exactly 1", s)
	}
	if s := speedup(1); math.Abs(s-1.053) > 0.005 {
		t.Errorf("k=1 speedup %0.3f, EXPERIMENTS.md says 1.053", s)
	}
	if s := speedup(2); math.Abs(s-1.095) > 0.005 {
		t.Errorf("k=2 speedup %0.3f, EXPERIMENTS.md says 1.095", s)
	}
}

// TestPencilCrossover18432 regenerates the EXPERIMENTS.md
// slab-vs-pencil table at the paper's largest production geometry
// (18432³, 6 tasks/node) so the committed numbers cannot drift from
// the model, and pins the three regimes the 2D decomposition is built
// for: slab wins while its messages are fat, the crossover lands at
// the P = N wall where slab P2P messages collapse to ~220 KB, and
// past the wall only pencil layouts exist and scaling continues.
func TestPencilCrossover18432(t *testing.T) {
	const n = 18432
	m := SummitA2A()
	ps := []int{1536, 3072, 6144, 12288, 18432, 36864, 73728, 147456}
	rows := m.Crossover(n, 6, 3, ps)
	byP := map[int]CrossoverRow{}
	for _, r := range rows {
		if r.Pr == 0 || r.Pencil <= 0 {
			t.Fatalf("P=%d: no valid pencil grid", r.P)
		}
		byP[r.P] = r
	}
	// Regime 1: while slab messages are fat, the single exchange beats
	// the pencil's two (it moves every byte once, not twice).
	for _, p := range []int{1536, 3072, 6144} {
		r := byP[p]
		if r.Slab <= 0 || r.Slab >= r.Pencil {
			t.Errorf("P=%d: slab %.3fs should beat pencil %.3fs", p, r.Slab, r.Pencil)
		}
	}
	// P=12288 does not divide N: already past the wall despite P < N.
	if r := byP[12288]; r.Slab != 0 {
		t.Errorf("P=12288: slab layout should not exist (12288 ∤ 18432), got %.3fs", r.Slab)
	}
	// Regime 2: at P = N the slab's P2P message has collapsed to
	// 4·nv·N bytes (~221 KB) and its bandwidth with it — the pencil's
	// fatter sub-messages win before the wall is even hit.
	if r := byP[n]; r.Slab <= 0 || r.Pencil >= r.Slab {
		t.Errorf("P=N=%d: pencil %.3fs should beat slab %.3fs", n, r.Pencil, r.Slab)
	}
	// Regime 3: past the wall there is no slab layout and pencil
	// scaling continues monotonically.
	prev := byP[n].Pencil
	for _, p := range []int{36864, 73728, 147456} {
		r := byP[p]
		if r.Slab != 0 {
			t.Errorf("P=%d > N: slab layout should not exist, got %.3fs", p, r.Slab)
		}
		if r.Pencil >= prev {
			t.Errorf("P=%d: pencil %.3fs not faster than previous %.3fs", p, r.Pencil, prev)
		}
		prev = r.Pencil
	}
	// EXPERIMENTS.md pins: the crossover row and the 2× past-the-wall
	// row (seconds per transpose, ±0.5%).
	pin := func(p int, want float64) {
		if got := byP[p].Pencil; math.Abs(got-want)/want > 0.005 {
			t.Errorf("P=%d pencil %.4fs, EXPERIMENTS.md says %.4fs", p, got, want)
		}
	}
	pin(18432, 4.9521)
	pin(36864, 2.5307)
	if got := byP[18432].Slab; math.Abs(got-6.5049)/6.5049 > 0.005 {
		t.Errorf("P=18432 slab %.4fs, EXPERIMENTS.md says 6.5049s", got)
	}
}
