package simnet

import (
	"math"
	"testing"
)

// paperTable2 holds the measured values from the paper: P2P size (MB)
// and per-node bandwidth (GB/s) for configurations A, B, C.
var paperTable2 = []struct {
	nodes int
	cfg   string
	p2pMB float64
	bwGBs float64
}{
	{16, "A", 12, 36.5}, {16, "B", 108, 43.1}, {16, "C", 324, 43.6},
	{128, "A", 1.5, 24.0}, {128, "B", 13.5, 39.0}, {128, "C", 40.5, 39.0},
	{1024, "A", 0.19, 11.1}, {1024, "B", 1.69, 23.5}, {1024, "C", 5.06, 25.0},
	{3072, "A", 0.053, 13.2}, {3072, "B", 0.47, 12.4}, {3072, "C", 1.90, 17.6},
}

func TestTable2MessageSizesMatchPaper(t *testing.T) {
	rows := SummitA2A().Table2()
	if len(rows) != len(paperTable2) {
		t.Fatalf("rows %d want %d", len(rows), len(paperTable2))
	}
	for i, w := range paperTable2 {
		g := rows[i]
		if g.Nodes != w.nodes || g.Cfg != w.cfg {
			t.Fatalf("row %d: got %d/%s want %d/%s", i, g.Nodes, g.Cfg, w.nodes, w.cfg)
		}
		gotMB := g.P2P / (1 << 20)
		if math.Abs(gotMB-w.p2pMB)/w.p2pMB > 0.02 {
			t.Errorf("%d/%s: P2P %.3f MB want %.3f", w.nodes, w.cfg, gotMB, w.p2pMB)
		}
	}
}

func TestTable2BandwidthsWithinTolerance(t *testing.T) {
	// The calibrated model must land within 12% of every measured cell
	// — tight enough that every qualitative conclusion of §4.1 holds.
	rows := SummitA2A().Table2()
	for i, w := range paperTable2 {
		got := rows[i].BW / 1e9
		rel := math.Abs(got-w.bwGBs) / w.bwGBs
		if rel > 0.12 {
			t.Errorf("%d nodes cfg %s: BW %.1f GB/s want %.1f (rel %.0f%%)",
				w.nodes, w.cfg, got, w.bwGBs, rel*100)
		}
	}
}

func TestQualitativeOrderingsOfSection41(t *testing.T) {
	rows := SummitA2A().Table2()
	get := func(nodes int, cfg string) float64 {
		for _, r := range rows {
			if r.Nodes == nodes && r.Cfg == cfg {
				return r.BW
			}
		}
		t.Fatalf("missing %d/%s", nodes, cfg)
		return 0
	}
	// B beats A up to 1024 nodes (larger messages win).
	for _, nodes := range []int{16, 128, 1024} {
		if get(nodes, "B") <= get(nodes, "A") {
			t.Errorf("%d nodes: B should beat A", nodes)
		}
	}
	// At 3072 nodes A beats B (eager-path anomaly).
	if get(3072, "A") <= get(3072, "B") {
		t.Error("3072 nodes: A should beat B via the eager path")
	}
	// C ≥ B everywhere (bigger messages, fewer calls).
	for _, nodes := range []int{16, 128, 1024, 3072} {
		if get(nodes, "C") < get(nodes, "B")*0.999 {
			t.Errorf("%d nodes: C should not lose to B", nodes)
		}
	}
}

func TestBandwidthMonotonicInMessageSize(t *testing.T) {
	m := SummitA2A()
	for _, nodes := range []int{16, 128, 1024, 3072} {
		prev := 0.0
		for _, msg := range []float64{128 * kib, mib, 16 * mib, 256 * mib} {
			bw := m.NodeBandwidth(msg, nodes)
			if bw < prev {
				t.Errorf("nodes %d: bandwidth not monotone at %g bytes", nodes, msg)
			}
			prev = bw
		}
	}
}

func TestSaturatedBandwidthDegradesWithScale(t *testing.T) {
	// In the large-message limit the per-node bandwidth falls with node
	// count — the Table 2 trend that motivates the paper's "fewer,
	// larger messages" design.
	m := SummitA2A()
	msg := 512 * mib
	prev := math.Inf(1)
	for _, nodes := range []int{16, 128, 1024, 3072} {
		bw := m.NodeBandwidth(msg, nodes)
		if bw > prev {
			t.Errorf("saturated bandwidth grew with node count at %d nodes", nodes)
		}
		prev = bw
	}
}

func TestInterpolationBetweenCalibrationPoints(t *testing.T) {
	m := SummitA2A()
	// 1536 nodes sits between the 1024 and 3072 calibrations.
	bwMid := m.NodeBandwidth(4*mib, 1536)
	bwLo := m.NodeBandwidth(4*mib, 3072)
	bwHi := m.NodeBandwidth(4*mib, 1024)
	if bwMid < bwLo || bwMid > bwHi {
		t.Errorf("interpolated BW %.1f outside [%.1f, %.1f]", bwMid/1e9, bwLo/1e9, bwHi/1e9)
	}
	// Clamping outside the range.
	if m.NodeBandwidth(4*mib, 8) != m.NodeBandwidth(4*mib, 16) {
		t.Error("below-range node count should clamp")
	}
	if m.NodeBandwidth(4*mib, 4608) != m.NodeBandwidth(4*mib, 3072) {
		t.Error("above-range node count should clamp")
	}
}

func TestTimeInvertsEq3(t *testing.T) {
	m := SummitA2A()
	p2p := 1.9 * mib
	p, tpn, nodes := 6144, 2, 3072
	tm := m.Time(p2p, p, tpn, nodes)
	bw := 2 * p2p * float64(p) * float64(tpn) / tm
	if math.Abs(bw-m.NodeBandwidth(p2p, nodes))/bw > 1e-12 {
		t.Error("Time() does not invert Eq 3")
	}
}

func TestP2PFormulas(t *testing.T) {
	// 16 nodes, N=3072: case C (P=32): 324 MB; case A (P=96, np=3): 12 MB.
	if got := P2PSlab(3072, 32, 3) / mib; math.Abs(got-324) > 1 {
		t.Errorf("slab P2P %.1f MB want 324", got)
	}
	if got := P2PPencil(3072, 96, 3, 3) / mib; math.Abs(got-12) > 0.1 {
		t.Errorf("pencil P2P %.2f MB want 12", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SummitA2A().NodeBandwidth(0, 16)
}
