// Package simnet models the effective bandwidth of MPI all-to-all
// exchanges on Summit's dual-rail EDR InfiniBand fabric. The model is
// the standard latency-saturation form
//
//	BW_node(msg, nodes) = BWsat(nodes) · msg/(msg + m½(nodes))
//
// with an eager-protocol floor for messages under the eager limit (the
// §4.1 anomaly where 6 tasks/node at 3072 nodes beats 2 tasks/node).
// BWsat and m½ are calibrated to the nine measurements of the paper's
// Table 2 and interpolated log-log in node count between them; the
// paper's Eq 3 converts between per-node bandwidth and exchange time.
package simnet

import (
	"fmt"
	"math"
	"sort"
)

const (
	kib = 1024.0
	mib = 1024.0 * 1024.0
	gb  = 1e9
)

type calibPoint struct {
	nodes float64
	sat   float64 // saturated per-node bandwidth (B/s)
	mHalf float64 // message size of half-saturation (B)
}

// A2AModel predicts all-to-all performance.
type A2AModel struct {
	points     []calibPoint
	eagerLimit float64 // bytes; P2P messages at or below this may use eager path
	eagerBW    float64 // per-node bandwidth floor on the eager path (B/s)
}

// SummitA2A returns the model calibrated to Table 2 of the paper.
func SummitA2A() *A2AModel {
	return &A2AModel{
		points: []calibPoint{
			{16, 44.0 * gb, 2.5 * mib},
			{128, 40.3 * gb, 1.0 * mib},
			{1024, 26.0 * gb, 0.24 * mib},
			{3072, 20.0 * gb, 0.35 * mib},
		},
		eagerLimit: 160 * kib,
		eagerBW:    13.2 * gb,
	}
}

// NodeBandwidth returns the effective per-node all-to-all bandwidth
// (bytes/s, Eq 3 convention: counts both sends and receives) for the
// given P2P message size at the given node count.
func (m *A2AModel) NodeBandwidth(p2pBytes float64, nodes int) float64 {
	if p2pBytes <= 0 || nodes < 1 {
		panic(fmt.Sprintf("simnet: invalid message %g bytes on %d nodes", p2pBytes, nodes))
	}
	sat, mh := m.interp(float64(nodes))
	bw := sat * p2pBytes / (p2pBytes + mh)
	if p2pBytes <= m.eagerLimit {
		// Small messages ride the eager path with hardware tag
		// matching (the §4.1 anomaly, strongest at full scale where
		// adaptive routing and switch offload are best amortized).
		eager := m.eagerBW * math.Log(float64(nodes)) / math.Log(3072)
		if eager > bw {
			bw = eager
		}
	}
	return bw
}

// interp log-log interpolates (sat, m½) at the given node count,
// clamping outside the calibrated range.
func (m *A2AModel) interp(nodes float64) (sat, mh float64) {
	pts := m.points
	if nodes <= pts[0].nodes {
		return pts[0].sat, pts[0].mHalf
	}
	last := pts[len(pts)-1]
	if nodes >= last.nodes {
		return last.sat, last.mHalf
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].nodes >= nodes }) - 1
	a, b := pts[i], pts[i+1]
	t := (math.Log(nodes) - math.Log(a.nodes)) / (math.Log(b.nodes) - math.Log(a.nodes))
	sat = math.Exp(math.Log(a.sat)*(1-t) + math.Log(b.sat)*t)
	mh = math.Exp(math.Log(a.mHalf)*(1-t) + math.Log(b.mHalf)*t)
	return sat, mh
}

// Time returns the wall time of one all-to-all in which every one of
// the P ranks exchanges a p2pBytes block with every rank (Eq 3
// inverted: time = 2·P2P·P·tpn/BW).
func (m *A2AModel) Time(p2pBytes float64, p, tpn, nodes int) float64 {
	bw := m.NodeBandwidth(p2pBytes, nodes)
	return 2 * p2pBytes * float64(p) * float64(tpn) / bw
}

// P2PSlab is the P2P message size when a whole slab of nv variables is
// exchanged in one call (configuration C): 4·nv·N·(N/P)² bytes.
func P2PSlab(n, p, nv int) float64 {
	np2 := float64(n) / float64(p)
	return 4 * float64(nv) * float64(n) * np2 * np2
}

// P2PPencil is the P2P message size when one of np pencils is
// exchanged per call (configurations A and B): 4·nv·(N/np)·(N/P)².
func P2PPencil(n, p, nv, np int) float64 {
	return P2PSlab(n, p, nv) / float64(np)
}

// --- 2D pencil decomposition ----------------------------------------------
//
// The slab layout performs one all-to-all over all P ranks per
// transpose; the pencil layout over a Pr×Pc process grid performs two
// — a column exchange among the Pc ranks sharing a row group and a row
// exchange among the Pr ranks sharing a column group. Each rank owns
// 4·nv·N³/P bytes either way, so the sub-exchange messages are larger
// (divided among pc or pr peers instead of P) but the transpose moves
// every byte twice. Sub-exchanges run concurrently across groups and
// share node bandwidth; the bandwidth lookup keeps the full node count
// (adaptive-routing congestion is fabric-wide, not per-group).

// P2PPencilCol is the P2P message size of the pencil column exchange
// (completes z, splits x within a Pc-group): 4·nv·N³/(P·Pc) bytes.
func P2PPencilCol(n, pr, pc, nv int) float64 {
	own := 4 * float64(nv) * float64(n) * float64(n) * float64(n) / float64(pr*pc)
	return own / float64(pc)
}

// P2PPencilRow is the P2P message size of the pencil row exchange
// (completes y, re-splits z within a Pr-group): 4·nv·N³/(P·Pr) bytes.
func P2PPencilRow(n, pr, pc, nv int) float64 {
	own := 4 * float64(nv) * float64(n) * float64(n) * float64(n) / float64(pr*pc)
	return own / float64(pr)
}

// PencilTime is the wall time of one pencil transpose: the column
// exchange plus the row exchange, each through the Eq 3 model at its
// own message size and sub-exchange fan-out.
func (m *A2AModel) PencilTime(n, pr, pc, tpn, nodes, nv int) float64 {
	return m.Time(P2PPencilCol(n, pr, pc, nv), pc, tpn, nodes) +
		m.Time(P2PPencilRow(n, pr, pc, nv), pr, tpn, nodes)
}

// SlabTime is the corresponding single-exchange slab transpose time.
func (m *A2AModel) SlabTime(n, p, tpn, nodes, nv int) float64 {
	return m.Time(P2PSlab(n, p, nv), p, tpn, nodes)
}

// CrossoverRow is one line of the slab-vs-pencil scaling table: the
// modeled transpose time of the slab layout (0 when no slab layout
// exists — P > N or P ∤ N, the slab scaling wall) and of the fastest
// valid pencil grid at the same rank count.
type CrossoverRow struct {
	P      int
	Nodes  int
	Slab   float64 // seconds; 0 = no valid slab layout
	Pr, Pc int     // fastest pencil grid (0,0 = none valid)
	Pencil float64 // seconds
}

// Crossover builds the slab-vs-pencil table for an n³ field at tpn
// tasks per node over the given rank counts, picking for every P the
// fastest valid pencil grid. Rows where Slab is zero but Pencil is not
// are the regime the 2D decomposition exists for: rank counts past the
// slab wall.
func (m *A2AModel) Crossover(n, tpn, nv int, ps []int) []CrossoverRow {
	var rows []CrossoverRow
	for _, p := range ps {
		nodes := (p + tpn - 1) / tpn
		row := CrossoverRow{P: p, Nodes: nodes}
		if p <= n && n%p == 0 {
			row.Slab = m.SlabTime(n, p, tpn, nodes, nv)
		}
		for pr := 1; pr <= p; pr++ {
			if p%pr != 0 {
				continue
			}
			pc := p / pr
			if n%pr != 0 || n%pc != 0 || pc > n/2+1 {
				continue
			}
			t := m.PencilTime(n, pr, pc, tpn, nodes, nv)
			if row.Pr == 0 || t < row.Pencil {
				row.Pr, row.Pc, row.Pencil = pr, pc, t
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2Row reproduces one measurement cell of the paper's Table 2.
type Table2Row struct {
	Nodes int
	Cfg   string  // "A", "B" or "C"
	P2P   float64 // bytes
	BW    float64 // bytes/s per node
}

// Table2 regenerates the paper's Table 2 grid: configurations
// A (6 tasks/node, 1 pencil/A2A), B (2 tasks/node, 1 pencil/A2A) and
// C (2 tasks/node, 1 slab/A2A) at the four standard scales, for nv=3
// variables. np is the pencil count per slab from Table 1.
func (m *A2AModel) Table2() []Table2Row {
	cases := []struct {
		nodes, n, np int
	}{
		{16, 3072, 3}, {128, 6144, 3}, {1024, 12288, 3}, {3072, 18432, 4},
	}
	var rows []Table2Row
	for _, c := range cases {
		for _, cfg := range []struct {
			name string
			tpn  int
			slab bool
		}{{"A", 6, false}, {"B", 2, false}, {"C", 2, true}} {
			p := cfg.tpn * c.nodes
			var p2p float64
			if cfg.slab {
				p2p = P2PSlab(c.n, p, 3)
			} else {
				p2p = P2PPencil(c.n, p, 3, c.np)
			}
			rows = append(rows, Table2Row{
				Nodes: c.nodes,
				Cfg:   cfg.name,
				P2P:   p2p,
				BW:    m.NodeBandwidth(p2p, c.nodes),
			})
		}
	}
	return rows
}

// StragglerScenario describes one asynchrony-tolerance trade-off
// study: a production step of Exchanges collective transposes plus
// Compute seconds of overlapped arithmetic, on which one straggling
// node injects Delay seconds of excess every step (OS jitter, ECC
// scrub, a slow GPU — the transient noise that at 3072 nodes is
// almost never zero for all nodes simultaneously).
type StragglerScenario struct {
	N, Nodes, TPN, NV int
	Exchanges         int     // collective transposes per step
	Compute           float64 // per-step compute outside exchanges (s)
	Delay             float64 // straggler excess per step (s)
	MaxStale          int     // AT staleness bound in exchange epochs
}

// StepTimes returns the per-step wall time of the synchronous and the
// asynchrony-tolerant schedule for the scenario. Synchronously, every
// exchange is a barrier, so the straggler's delay lands on every
// rank's critical path in full. With a staleness bound of k epochs,
// peers run up to k exchanges ahead on the straggler's last published
// slabs, so up to k exchange intervals of delay are absorbed by the
// pipeline before anyone blocks; the remainder still serializes.
func (m *A2AModel) StepTimes(sc StragglerScenario) (sync, at float64) {
	if sc.Exchanges < 1 || sc.MaxStale < 0 {
		panic(fmt.Sprintf("simnet: invalid scenario: %d exchanges, bound %d", sc.Exchanges, sc.MaxStale))
	}
	p := sc.TPN * sc.Nodes
	tx := m.Time(P2PSlab(sc.N, p, sc.NV), p, sc.TPN, sc.Nodes)
	step := float64(sc.Exchanges)*tx + sc.Compute
	sync = step + sc.Delay
	epoch := step / float64(sc.Exchanges)
	hidden := math.Min(sc.Delay, float64(sc.MaxStale)*epoch)
	at = step + sc.Delay - hidden
	return sync, at
}

// ScaledSummitA2A returns the calibrated model with every bandwidth
// multiplied by f — the "what if the interconnect were f× faster"
// question of the paper's conclusions.
func ScaledSummitA2A(f float64) *A2AModel {
	m := SummitA2A()
	for i := range m.points {
		m.points[i].sat *= f
	}
	m.eagerBW *= f
	return m
}
