package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
)

func TestRunningMomentsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r Running
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		r.Add(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varr float64
	for _, x := range xs {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(xs) - 1)
	if math.Abs(r.Mean()-mean) > 1e-12 {
		t.Errorf("mean %g want %g", r.Mean(), mean)
	}
	if math.Abs(r.Var()-varr) > 1e-10 {
		t.Errorf("var %g want %g", r.Var(), varr)
	}
	if r.N() != 100 {
		t.Errorf("n %d", r.N())
	}
}

func TestRunningMinMax(t *testing.T) {
	var r Running
	for _, x := range []float64{3, -1, 7, 2} {
		r.Add(x)
	}
	if r.Min() != -1 || r.Max() != 7 {
		t.Errorf("min %g max %g", r.Min(), r.Max())
	}
	if r.String() == "" {
		t.Error("empty string")
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(5)
	if r.Mean() != 5 || r.Var() != 0 || r.Std() != 0 {
		t.Errorf("single obs: %g %g", r.Mean(), r.Var())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2, 75: 4, 90: 4.6}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p%g = %g want %g", p, got, want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 1 || xs[4] != 5 {
		t.Error("input mutated")
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		p0, p50, p100 := Percentile(xs, 0), Percentile(xs, 50), Percentile(xs, 100)
		return p0 <= p50 && p50 <= p100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean %g", g)
	}
	if g := GeoMean([]float64{8}); math.Abs(g-8) > 1e-12 {
		t.Errorf("geomean single %g", g)
	}
}

func TestStepTimerMaxOverRanks(t *testing.T) {
	// Rank 1 sleeps longer; every rank must see rank 1's time.
	mpi.Run(2, func(c *mpi.Comm) {
		timer := NewStepTimer(c)
		timer.Begin()
		// Simulate imbalance with busy work on rank 1.
		if c.Rank() == 1 {
			acc := 0.0
			for i := 0; i < 5_000_000; i++ {
				acc += float64(i)
			}
			_ = acc
		}
		v := timer.End()
		if v <= 0 {
			t.Errorf("rank %d: nonpositive step time", c.Rank())
		}
		if timer.Steps() != 1 {
			t.Errorf("steps %d", timer.Steps())
		}
		if timer.MeanMax() != v {
			t.Errorf("mean %g vs %g", timer.MeanMax(), v)
		}
	})
}
