// Package stats provides the small numeric utilities the benchmark
// harness and executables share: running moments, order statistics,
// and the max-over-ranks timing reduction the paper uses ("timings per
// step were obtained by taking the maximum over all MPI ranks,
// averaged over multiple time steps", §5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/mpi"
)

// Running accumulates mean and variance with Welford's algorithm.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
	if x < r.min {
		r.min = x
	}
	if x > r.max {
		r.max = x
	}
}

// N reports the observation count.
func (r *Running) N() int { return r.n }

// Mean reports the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var reports the unbiased sample variance (0 for n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std reports the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min reports the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// String formats mean ± std (min…max).
func (r *Running) String() string {
	return fmt.Sprintf("%.4g ± %.2g (%.4g…%.4g)", r.Mean(), r.Std(), r.Min(), r.Max())
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by linear
// interpolation; xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: invalid percentile %g", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	if lo == len(s)-1 {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// StepTimer measures per-step wall times the way the paper reports
// them: each rank times its own step, the maximum over ranks is taken
// collectively, and the maxima are averaged over steps.
type StepTimer struct {
	comm  *mpi.Comm
	start time.Time
	agg   Running
}

// NewStepTimer creates a timer over comm.
func NewStepTimer(comm *mpi.Comm) *StepTimer { return &StepTimer{comm: comm} }

// Begin marks the start of a step on the calling rank.
func (t *StepTimer) Begin() { t.start = time.Now() }

// End records the step: the rank-local elapsed time is max-reduced
// over all ranks (collective) and folded into the average.
func (t *StepTimer) End() float64 {
	v := []float64{time.Since(t.start).Seconds()}
	mpi.AllreduceMax(t.comm, v)
	t.agg.Add(v[0])
	return v[0]
}

// MeanMax reports the average over steps of the per-step rank maxima.
func (t *StepTimer) MeanMax() float64 { return t.agg.Mean() }

// Steps reports how many steps were recorded.
func (t *StepTimer) Steps() int { return t.agg.N() }

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}
