package metrics_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// TestConcurrentRecordAndSnapshot hammers one registry from many
// goroutines while snapshots are taken concurrently; run under -race
// this is the concurrency-safety contract of the registry.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := reg.CounterRank("test.counter", rank)
			shared := reg.Counter("test.shared")
			h := reg.HistogramRank("test.hist", rank)
			g := reg.GaugeRank("test.gauge", rank)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				shared.Add(2)
				h.Observe(float64(i))
				g.Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	snap := reg.Snapshot()
	if e, ok := snap.Get("test.shared", metrics.NoRank); !ok || e.Value != 2*workers*perWorker {
		t.Fatalf("shared counter = %v, want %d", e.Value, 2*workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if e, ok := snap.Get("test.counter", w); !ok || e.Value != perWorker {
			t.Fatalf("rank %d counter = %v, want %d", w, e.Value, perWorker)
		}
		if e, ok := snap.Get("test.hist", w); !ok || e.Count != perWorker {
			t.Fatalf("rank %d histogram count = %v, want %d", w, e.Count, perWorker)
		}
	}
}

// TestHistogramPercentilesAgainstStats pins the duplicated percentile
// interpolation to internal/stats.Percentile, the canonical
// implementation (metrics must stay a stdlib-only leaf, so the code is
// copied, not imported).
func TestHistogramPercentilesAgainstStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := metrics.NewRegistry()
	h := reg.Histogram("t")
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		xs = append(xs, x)
		h.Observe(x)
	}
	st := h.Stat()
	for _, p := range []struct {
		got float64
		p   float64
	}{{st.P50, 50}, {st.P95, 95}, {st.P99, 99}} {
		want := stats.Percentile(xs, p.p)
		if math.Abs(p.got-want) > 1e-12 {
			t.Errorf("p%g = %v, want %v (stats.Percentile)", p.p, p.got, want)
		}
	}
	// Moments against direct computation.
	mean, m2 := 0.0, 0.0
	for i, x := range xs {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	if math.Abs(st.Mean-mean) > 1e-12 {
		t.Errorf("mean = %v, want %v", st.Mean, mean)
	}
	std := math.Sqrt(m2 / float64(len(xs)-1))
	if math.Abs(st.Std-std) > 1e-12 {
		t.Errorf("std = %v, want %v", st.Std, std)
	}
}

func TestMaxOverRanks(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.CounterRank("bytes", 0).Add(10)
	reg.CounterRank("bytes", 1).Add(30)
	reg.CounterRank("bytes", 2).Add(20)
	reg.Counter("global").Add(5)
	snap := reg.Snapshot().MaxOverRanks()
	if len(snap.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(snap.Entries))
	}
	e, ok := snap.Get("bytes", metrics.NoRank)
	if !ok || e.Value != 30 {
		t.Fatalf("max bytes = %v, want 30", e.Value)
	}
	sum := reg.Snapshot().SumOverRanks()
	if e, ok := sum.Get("bytes", metrics.NoRank); !ok || e.Value != 60 {
		t.Fatalf("summed bytes = %v, want 60", e.Value)
	}
}

// TestNilAndDisabledSafety: every handle operation must be a no-op on
// nil receivers (nil registry) and drop observations while disabled.
func TestNilAndDisabledSafety(t *testing.T) {
	var nilReg *metrics.Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x").Observe(1)
	nilReg.Histogram("x").Start()()
	if nilReg.On() {
		t.Fatal("nil registry reports On")
	}
	if s := nilReg.Snapshot(); len(s.Entries) != 0 {
		t.Fatalf("nil snapshot has %d entries", len(s.Entries))
	}

	reg := metrics.NewRegistry()
	reg.SetOn(false)
	c := reg.Counter("c")
	c.Add(7)
	h := reg.Histogram("h")
	h.Observe(1)
	if h.Enabled() {
		t.Fatal("disabled histogram reports Enabled")
	}
	if c.Value() != 0 {
		t.Fatalf("disabled counter recorded %d", c.Value())
	}
	reg.SetOn(true)
	c.Add(7)
	h.Observe(1)
	if c.Value() != 7 || h.Stat().Count != 1 {
		t.Fatal("re-enabled handles did not record")
	}
}

func TestSnapshotText(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.CounterRank("a.bytes", 1).Add(42)
	reg.Histogram("a.time").Observe(0.5)
	txt := reg.Snapshot().Text()
	for _, want := range []string{"a.bytes{rank=1}", "a.time", "42"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
	var b strings.Builder
	if err := reg.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"name": "a.bytes"`) {
		t.Errorf("JSON missing entry:\n%s", b.String())
	}
}
