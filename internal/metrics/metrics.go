// Package metrics is the always-on instrumentation substrate of the
// runtime: a low-overhead, concurrency-safe registry of counters,
// gauges and histograms that the hot layers (mpi collectives, cuda
// streams, fft plans, the transform pipelines, the solver) record
// into. It is the measurement layer behind the paper's evaluation —
// per-phase step breakdowns (Fig 10's span classes), all-to-all byte
// and wait accounting (Table 2), and the max-over-ranks timing
// reduction the paper uses for Table 3 ("timings per step were
// obtained by taking the maximum over all MPI ranks", §5).
//
// Design rules, in order:
//
//  1. Disabled must be nearly free. Every handle is nil-safe and gated
//     on its registry's atomic on/off flag, so an instrumented hot path
//     costs one atomic load when metrics are off.
//  2. Recording must be cheap. Counters and gauges are single atomic
//     operations; histograms take one short mutex.
//  3. Metrics are identified by (name, rank): in-process MPI ranks are
//     goroutines sharing one registry, so per-rank attribution is a
//     label, and Snapshot.MaxOverRanks applies the paper's reduction.
//
// The package depends only on the standard library so every layer,
// including internal/mpi itself, can import it.
package metrics

import (
	"sync"
	"sync/atomic"
)

// NoRank labels a metric that is not attributed to a single MPI rank.
const NoRank = -1

// key identifies one metric instance inside a registry.
type key struct {
	name string
	rank int
}

// Registry owns a set of named metrics. All methods are safe for
// concurrent use from any number of goroutines (ranks), and all are
// nil-safe: a nil *Registry hands out nil handles whose operations are
// no-ops, so instrumented code never branches on "metrics configured?".
type Registry struct {
	on       atomic.Bool
	mu       sync.RWMutex
	counters map[key]*Counter
	gauges   map[key]*Gauge
	hists    map[key]*Histogram
}

// NewRegistry creates an enabled, empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: map[key]*Counter{},
		gauges:   map[key]*Gauge{},
		hists:    map[key]*Histogram{},
	}
	r.on.Store(true)
	return r
}

// On reports whether the registry is currently recording.
func (r *Registry) On() bool { return r != nil && r.on.Load() }

// SetOn enables or disables recording. Handles stay valid either way;
// they simply drop observations while the registry is off.
func (r *Registry) SetOn(on bool) {
	if r != nil {
		r.on.Store(on)
	}
}

// Counter returns the rank-unlabelled counter with the given name,
// creating it on first use.
func (r *Registry) Counter(name string) *Counter { return r.CounterRank(name, NoRank) }

// CounterRank returns the counter (name, rank), creating it on first use.
func (r *Registry) CounterRank(name string, rank int) *Counter {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{reg: r}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the rank-unlabelled gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeRank(name, NoRank) }

// GaugeRank returns the gauge (name, rank), creating it on first use.
func (r *Registry) GaugeRank(name string, rank int) *Gauge {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{reg: r}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the rank-unlabelled histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram { return r.HistogramRank(name, NoRank) }

// HistogramRank returns the histogram (name, rank), creating it on
// first use.
func (r *Registry) HistogramRank(name string, rank int) *Histogram {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = &Histogram{reg: r}
		r.hists[k] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric with an atomic
// fast path (bytes moved, messages sent, transforms executed).
type Counter struct {
	reg *Registry
	v   atomic.Int64
}

// Add increments the counter by n (no-op on nil or disabled registry).
func (c *Counter) Add(n int64) {
	if c == nil || !c.reg.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Store overwrites the counter value; used to publish externally
// accumulated totals (e.g. package-level atomics in internal/fft) at
// reporting time. Unlike Add, Store works even while the registry is
// disabled: publishing happens after recording has been switched off.
func (c *Counter) Store(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric (occupancy, queue depth).
type Gauge struct {
	reg  *Registry
	bits atomic.Uint64
}

// Set stores v (no-op on nil or disabled registry).
func (g *Gauge) Set(v float64) {
	if g == nil || !g.reg.on.Load() {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value reads the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.bits.Load())
}

// --- Default registry ---------------------------------------------------

// def is the process-wide registry. It always exists so handles can be
// created at construction time anywhere in the stack; it starts
// disabled so un-instrumented runs pay only gated no-ops.
var def = func() *Registry {
	r := NewRegistry()
	r.on.Store(false)
	return r
}()

// Default returns the process-wide registry (never nil; recording only
// after Enable).
func Default() *Registry { return def }

// Enable turns on the process-wide registry and returns it.
func Enable() *Registry {
	def.SetOn(true)
	return def
}

// Disable stops recording into the process-wide registry.
func Disable() { def.SetOn(false) }
