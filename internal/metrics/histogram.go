package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// histCap bounds the per-histogram sample buffer used for percentile
// estimates. Below the cap percentiles are exact (and agree with
// internal/stats.Percentile); beyond it the buffer becomes a ring over
// the most recent observations while the Welford moments stay exact
// over the full stream.
const histCap = 8192

// Histogram accumulates a stream of float64 observations (usually
// seconds): exact running moments via Welford's algorithm plus a
// bounded sample buffer for order statistics. Observe takes one short
// mutex; all methods are nil-safe.
type Histogram struct {
	reg     *Registry
	mu      sync.Mutex
	n       int64
	mean    float64
	m2      float64
	min     float64
	max     float64
	sum     float64
	samples []float64
	next    int // ring cursor once len(samples) == histCap
}

// Observe folds one observation into the histogram.
func (h *Histogram) Observe(x float64) {
	if h == nil || !h.reg.on.Load() {
		return
	}
	h.mu.Lock()
	if h.n == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.n++
	d := x - h.mean
	h.mean += d / float64(h.n)
	h.m2 += d * (x - h.mean)
	h.sum += x
	if h.samples == nil {
		// Reserve the full ring up front so steady-state observation
		// never grows the buffer (append regrowth would put heap
		// allocations inside instrumented hot loops).
		h.samples = make([]float64, 0, histCap)
	}
	if len(h.samples) < histCap {
		h.samples = append(h.samples, x)
	} else {
		h.samples[h.next] = x
		h.next = (h.next + 1) % histCap
	}
	h.mu.Unlock()
}

// ObserveSince observes the seconds elapsed since t0. Unlike Start it
// needs no closure, so instrumented hot paths can time a section with
// zero allocations:
//
//	t0 := time.Now()
//	... section ...
//	h.ObserveSince(t0)
//
// Like all Histogram methods it is nil-safe and a no-op while the
// owning registry is disabled.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if !h.Enabled() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Enabled reports whether observations would currently be recorded;
// use it to skip expensive measurement (time.Now pairs) when off.
func (h *Histogram) Enabled() bool { return h != nil && h.reg.on.Load() }

// nop is the stop function handed out by Start when disabled, shared
// to avoid a closure allocation per call.
var nop = func() {}

// Start begins timing a section and returns the function that stops
// the clock and observes the elapsed seconds:
//
//	stop := h.Start()
//	... section ...
//	stop()
func (h *Histogram) Start() func() {
	if !h.Enabled() {
		return nop
	}
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// Stat is a point-in-time numerical summary of a histogram.
type Stat struct {
	Count          int64
	Sum, Mean, Std float64
	Min, Max       float64
	P50, P95, P99  float64
}

// Stat summarizes the histogram. Percentiles use the same linear
// interpolation as internal/stats.Percentile over the buffered
// samples.
func (h *Histogram) Stat() Stat {
	if h == nil {
		return Stat{}
	}
	h.mu.Lock()
	s := Stat{Count: h.n, Sum: h.sum, Mean: h.mean, Min: h.min, Max: h.max}
	if h.n > 1 {
		s.Std = math.Sqrt(h.m2 / float64(h.n-1))
	}
	buf := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(buf) > 0 {
		sort.Float64s(buf)
		s.P50 = percentileSorted(buf, 50)
		s.P95 = percentileSorted(buf, 95)
		s.P99 = percentileSorted(buf, 99)
	}
	return s
}

// percentileSorted returns the p-th percentile of the ascending slice
// s by linear interpolation — the interpolation rule of
// internal/stats.Percentile, duplicated here so the leaf package stays
// import-free (the agreement is pinned by a test).
func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	if lo == len(s)-1 {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
