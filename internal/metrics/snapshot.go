package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind discriminates snapshot entries.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Entry is one metric frozen at snapshot time. For counters and gauges
// Value carries the reading; for histograms Value carries the sum (the
// natural "total seconds in this phase" quantity) and the distribution
// fields are populated.
type Entry struct {
	Name  string  `json:"name"`
	Rank  int     `json:"rank"`
	Kind  Kind    `json:"kind"`
	Value float64 `json:"value"`
	Count int64   `json:"count,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	Std   float64 `json:"std,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot is a consistent-enough copy of a registry: each metric is
// read atomically (counters, gauges) or under its own lock
// (histograms); the set of metrics is frozen under the registry lock.
type Snapshot struct {
	Entries []Entry `json:"metrics"`
}

// Snapshot freezes the registry's current state, sorted by (name,
// rank). Safe to call while ranks are still recording.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	type ck struct {
		k key
		c *Counter
	}
	type gk struct {
		k key
		g *Gauge
	}
	type hk struct {
		k key
		h *Histogram
	}
	cs := make([]ck, 0, len(r.counters))
	for k, c := range r.counters {
		cs = append(cs, ck{k, c})
	}
	gs := make([]gk, 0, len(r.gauges))
	for k, g := range r.gauges {
		gs = append(gs, gk{k, g})
	}
	hs := make([]hk, 0, len(r.hists))
	for k, h := range r.hists {
		hs = append(hs, hk{k, h})
	}
	r.mu.RUnlock()

	var s Snapshot
	for _, e := range cs {
		s.Entries = append(s.Entries, Entry{
			Name: e.k.name, Rank: e.k.rank, Kind: KindCounter, Value: float64(e.c.Value()),
		})
	}
	for _, e := range gs {
		s.Entries = append(s.Entries, Entry{
			Name: e.k.name, Rank: e.k.rank, Kind: KindGauge, Value: e.g.Value(),
		})
	}
	for _, e := range hs {
		st := e.h.Stat()
		s.Entries = append(s.Entries, Entry{
			Name: e.k.name, Rank: e.k.rank, Kind: KindHistogram,
			Value: st.Sum, Count: st.Count, Mean: st.Mean, Std: st.Std,
			Min: st.Min, Max: st.Max, P50: st.P50, P95: st.P95, P99: st.P99,
		})
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Entries, func(i, j int) bool {
		if s.Entries[i].Name != s.Entries[j].Name {
			return s.Entries[i].Name < s.Entries[j].Name
		}
		return s.Entries[i].Rank < s.Entries[j].Rank
	})
}

// Get returns the entry (name, rank), if present.
func (s Snapshot) Get(name string, rank int) (Entry, bool) {
	for _, e := range s.Entries {
		if e.Name == name && e.Rank == rank {
			return e, true
		}
	}
	return Entry{}, false
}

// Filter returns the entries whose name starts with prefix.
func (s Snapshot) Filter(prefix string) Snapshot {
	var out Snapshot
	for _, e := range s.Entries {
		if strings.HasPrefix(e.Name, prefix) {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// MaxOverRanks applies the paper's reduction: entries sharing a name
// are collapsed to the single rank with the largest Value (counter and
// gauge readings, histogram sums), reported with Rank = NoRank.
// Entries already unlabelled pass through. The result is what
// distributed runs report, mirroring Table 3's max-over-ranks step
// times.
func (s Snapshot) MaxOverRanks() Snapshot {
	best := map[string]Entry{}
	order := []string{}
	for _, e := range s.Entries {
		cur, ok := best[e.Name]
		if !ok {
			order = append(order, e.Name)
		}
		if !ok || e.Value > cur.Value {
			e.Rank = NoRank
			best[e.Name] = e
		}
	}
	var out Snapshot
	for _, name := range order {
		out.Entries = append(out.Entries, best[name])
	}
	out.sort()
	return out
}

// SumOverRanks collapses entries sharing a name by summing counter and
// gauge values and histogram sums/counts (distribution fields are
// dropped) — the aggregate-traffic view (total bytes on the wire).
func (s Snapshot) SumOverRanks() Snapshot {
	acc := map[string]Entry{}
	order := []string{}
	for _, e := range s.Entries {
		cur, ok := acc[e.Name]
		if !ok {
			order = append(order, e.Name)
			e.Rank = NoRank
			e.Mean, e.Std, e.Min, e.Max, e.P50, e.P95, e.P99 = 0, 0, 0, 0, 0, 0, 0
			acc[e.Name] = e
			continue
		}
		cur.Value += e.Value
		cur.Count += e.Count
		acc[e.Name] = cur
	}
	var out Snapshot
	for _, name := range order {
		out.Entries = append(out.Entries, acc[name])
	}
	out.sort()
	return out
}

// Text renders the snapshot as an aligned table, one metric per line.
func (s Snapshot) Text() string {
	var b strings.Builder
	name := len("metric")
	for _, e := range s.Entries {
		if n := len(e.label()); n > name {
			name = n
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %10s  %10s  %10s  %10s\n",
		name, "metric", "value", "count", "mean", "p95", "max")
	for _, e := range s.Entries {
		switch e.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, "%-*s  %12.4g  %10d  %10.4g  %10.4g  %10.4g\n",
				name, e.label(), e.Value, e.Count, e.Mean, e.P95, e.Max)
		default:
			fmt.Fprintf(&b, "%-*s  %12.4g\n", name, e.label(), e.Value)
		}
	}
	return b.String()
}

func (e Entry) label() string {
	if e.Rank == NoRank {
		return e.Name
	}
	return fmt.Sprintf("%s{rank=%d}", e.Name, e.Rank)
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
