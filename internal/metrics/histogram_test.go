package metrics

import (
	"testing"
	"time"
)

func TestObserveSinceRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t.obs")
	t0 := time.Now().Add(-50 * time.Millisecond)
	h.ObserveSince(t0)
	st := h.Stat()
	if st.Count != 1 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Mean < 0.04 || st.Mean > 5 {
		t.Fatalf("mean %v not in a plausible range", st.Mean)
	}
}

func TestObserveSinceDisabledIsNoop(t *testing.T) {
	r := NewRegistry()
	r.SetOn(false)
	h := r.Histogram("t.off")
	h.ObserveSince(time.Now())
	if st := h.Stat(); st.Count != 0 {
		t.Fatalf("disabled registry recorded %d samples", st.Count)
	}
	var nilH *Histogram
	nilH.ObserveSince(time.Now()) // nil-safe
}

// Once the first enabled Observe reserved the ring, further
// observations must not allocate (the samples buffer never regrows).
func TestObserveSteadyStateAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t.alloc")
	h.Observe(1) // reserves the ring
	avg := testing.AllocsPerRun(500, func() { h.Observe(2.5) })
	if avg != 0 {
		t.Fatalf("steady-state Observe allocates %.2f per run", avg)
	}
}
