package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sched"
)

func spans() []sched.Span {
	return []sched.Span{
		{Name: "h2d:1", Class: "h2d", Resource: "transfer", Start: 0, End: 1},
		{Name: "fft:1", Class: "fft", Resource: "compute", Start: 1, End: 3},
		{Name: "a2a:1", Class: "a2a", Resource: "network", Start: 3, End: 10},
	}
}

func TestRenderContainsResourcesAndGlyphs(t *testing.T) {
	out := Render(Timeline{Title: "cfg B", Spans: spans()}, 40)
	for _, want := range []string{"cfg B", "transfer", "compute", "network", ">", "F", "M"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderProportions(t *testing.T) {
	out := Render(Timeline{Title: "x", Spans: spans()}, 100)
	// The a2a span covers 70% of the axis; count its glyphs.
	m := strings.Count(out, "M")
	if m < 60 || m > 80 {
		t.Errorf("a2a glyph count %d, want ≈70:\n%s", m, out)
	}
}

func TestRenderTinySpanStillVisible(t *testing.T) {
	tl := Timeline{Title: "t", Spans: []sched.Span{
		{Name: "big", Class: "a2a", Resource: "net", Start: 0, End: 100},
		{Name: "tiny", Class: "h2d", Resource: "xfer", Start: 0, End: 1e-6},
	}}
	out := Render(tl, 50)
	if !strings.Contains(out, ">") {
		t.Errorf("tiny span invisible:\n%s", out)
	}
}

func TestRenderComparisonSharedAxis(t *testing.T) {
	a := Timeline{Title: "fast", Spans: []sched.Span{
		{Name: "m", Class: "a2a", Resource: "net", Start: 0, End: 5},
	}}
	b := Timeline{Title: "slow", Spans: []sched.Span{
		{Name: "m", Class: "a2a", Resource: "net", Start: 0, End: 10},
	}}
	out := RenderComparison([]Timeline{a, b}, 60)
	lines := strings.Split(out, "\n")
	var counts []int
	for _, l := range lines {
		if !strings.Contains(l, "|") {
			continue // skip titles and the legend
		}
		if c := strings.Count(l, "M"); c > 0 {
			counts = append(counts, c)
		}
	}
	if len(counts) != 2 {
		t.Fatalf("want 2 span rows, got %d:\n%s", len(counts), out)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("fast/slow glyph ratio %.2f want ≈0.5:\n%s", ratio, out)
	}
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
}

func TestClassSummarySortedDescending(t *testing.T) {
	out := ClassSummary(spans())
	ia2a := strings.Index(out, "a2a")
	ifft := strings.Index(out, "fft")
	ih2d := strings.Index(out, "h2d")
	if !(ia2a < ifft && ifft < ih2d) {
		t.Errorf("not sorted by time:\n%s", out)
	}
}

func TestGlyphFallback(t *testing.T) {
	if Glyph("unknown-class") != '#' {
		t.Error("fallback glyph")
	}
	if Glyph("a2a") != 'M' {
		t.Error("a2a glyph")
	}
}

func TestEmptyTimeline(t *testing.T) {
	out := Render(Timeline{Title: "none"}, 40)
	if !strings.Contains(out, "empty") {
		t.Errorf("unexpected: %s", out)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Timeline{{Title: "run", Spans: spans()}}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("events %d", len(decoded.TraceEvents))
	}
	// The a2a span: starts at 3s = 3e6 µs, lasts 7e6 µs.
	var found bool
	for _, e := range decoded.TraceEvents {
		if e.Cat == "a2a" {
			found = true
			if e.TS != 3e6 || e.Dur != 7e6 || e.Phase != "X" {
				t.Errorf("a2a event %+v", e)
			}
		}
	}
	if !found {
		t.Error("a2a event missing")
	}
	// Distinct resources get distinct thread ids.
	tids := map[int]bool{}
	for _, e := range decoded.TraceEvents {
		tids[e.TID] = true
	}
	if len(tids) != 3 {
		t.Errorf("thread ids %v", tids)
	}
}
