// Package trace renders normalized timelines of scheduled spans in the
// style of the paper's Fig 10: one text row per resource, time on the
// horizontal axis, activity classes drawn with distinct glyphs. It is
// the nvprof/nvtx substitute for the discrete-event simulator.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sched"
)

// classGlyphs maps activity classes to timeline glyphs.
var classGlyphs = map[string]rune{
	"h2d":     '>',
	"d2h":     '<',
	"fft":     'F',
	"compute": 'F',
	"pack":    'P',
	"unpack":  'U',
	"a2a":     'M',
	"mpi":     'M',
	"cpu":     'C',
	"wait":    '.',
}

// Glyph returns the timeline glyph of a span class ('#' for unknown).
func Glyph(class string) rune {
	if g, ok := classGlyphs[class]; ok {
		return g
	}
	return '#'
}

// Timeline is one labelled schedule to render.
type Timeline struct {
	Title string
	Spans []sched.Span
	// Makespan scales the axis; zero means use the latest span end.
	Makespan float64
}

// makespan returns the effective horizontal extent.
func (t Timeline) makespan() float64 {
	m := t.Makespan
	for _, s := range t.Spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Render draws the timeline with the given character width. Rows are
// resources in first-appearance order; overlapping spans on one
// resource are drawn in span order (later spans overwrite).
func Render(t Timeline, width int) string {
	if width < 10 {
		width = 10
	}
	total := t.makespan()
	if total <= 0 {
		return t.Title + ": (empty)\n"
	}
	resOrder := []string{}
	rows := map[string][]rune{}
	label := 0
	for _, s := range t.Spans {
		if _, ok := rows[s.Resource]; !ok {
			rows[s.Resource] = blankRow(width)
			resOrder = append(resOrder, s.Resource)
			if len(s.Resource) > label {
				label = len(s.Resource)
			}
		}
		row := rows[s.Resource]
		lo := int(s.Start / total * float64(width))
		hi := int(s.End / total * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		g := Glyph(s.Class)
		for i := lo; i < hi; i++ {
			row[i] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (total %.3gs)\n", t.Title, total)
	for _, r := range resOrder {
		fmt.Fprintf(&b, "  %-*s |%s|\n", label, r, string(rows[r]))
	}
	return b.String()
}

// RenderComparison draws several timelines on a shared normalized axis
// (the Fig 10 layout): every timeline is scaled by the longest
// makespan so relative durations are visually comparable.
func RenderComparison(tls []Timeline, width int) string {
	var longest float64
	for _, t := range tls {
		if m := t.makespan(); m > longest {
			longest = m
		}
	}
	var b strings.Builder
	for i, t := range tls {
		t.Makespan = longest
		b.WriteString(Render(t, width))
		if i < len(tls)-1 {
			b.WriteString("\n")
		}
	}
	b.WriteString("\n  legend: >=H2D  <=D2H  F=FFT/compute  P=pack  U=unpack  M=MPI a2a  C=CPU fft\n")
	return b.String()
}

// ClassSummary returns "class: seconds" lines sorted by descending
// time, the textual counterpart of Fig 10's color totals.
func ClassSummary(spans []sched.Span) string {
	totals := map[string]float64{}
	for _, s := range spans {
		totals[s.Class] += s.End - s.Start
	}
	type kv struct {
		k string
		v float64
	}
	var list []kv
	for k, v := range totals {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	var b strings.Builder
	for _, e := range list {
		fmt.Fprintf(&b, "  %-8s %8.3fs\n", e.k, e.v)
	}
	return b.String()
}

func blankRow(w int) []rune {
	r := make([]rune, w)
	for i := range r {
		r[i] = ' '
	}
	return r
}
