package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// chromeEvent is one entry of the Chrome tracing "traceEvents" format
// (load in chrome://tracing or Perfetto), the modern substitute for
// the NVIDIA visual profiler timelines of §5.2.
type chromeEvent struct {
	Name  string             `json:"name"`
	Cat   string             `json:"cat"`
	Phase string             `json:"ph"`
	TS    float64            `json:"ts"`  // microseconds
	Dur   float64            `json:"dur"` // microseconds
	PID   int                `json:"pid"`
	TID   int                `json:"tid"`
	Args  map[string]float64 `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace serializes one or more timelines as a Chrome
// tracing JSON file: each timeline becomes a process, each resource a
// thread, each span a complete ("X") event.
func WriteChromeTrace(w io.Writer, tls []Timeline) error {
	return writeChrome(w, buildChromeFile(tls))
}

// WriteChromeTraceWithMetrics serializes timelines plus a runtime
// metrics snapshot in one file: counters and gauges become Chrome
// counter ("C") events on a dedicated "metrics" process so they render
// as tracks alongside the spans, and histogram summaries land in the
// otherData metadata block.
func WriteChromeTraceWithMetrics(w io.Writer, tls []Timeline, snap metrics.Snapshot) error {
	f := buildChromeFile(tls)
	pid := len(tls)
	for _, e := range snap.Entries {
		name := e.Name
		if e.Rank != metrics.NoRank {
			name = fmt.Sprintf("%s{rank=%d}", e.Name, e.Rank)
		}
		switch e.Kind {
		case metrics.KindHistogram:
			f.Metadata["metric."+name] = fmt.Sprintf(
				"count=%d sum=%g mean=%g p50=%g p95=%g p99=%g max=%g",
				e.Count, e.Value, e.Mean, e.P50, e.P95, e.P99, e.Max)
		default:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name:  name,
				Cat:   "metric",
				Phase: "C",
				PID:   pid,
				Args:  map[string]float64{"value": e.Value},
			})
		}
	}
	return writeChrome(w, f)
}

func writeChrome(w io.Writer, f *chromeFile) error {
	sort.SliceStable(f.TraceEvents, func(i, j int) bool { return f.TraceEvents[i].TS < f.TraceEvents[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func buildChromeFile(tls []Timeline) *chromeFile {
	f := &chromeFile{}
	f.DisplayTimeUnit = "ms"
	f.Metadata = map[string]string{"source": "psdns-async discrete-event model"}
	for pid, tl := range tls {
		// Stable thread ids per resource, in first-appearance order.
		tids := map[string]int{}
		for _, s := range tl.Spans {
			if _, ok := tids[s.Resource]; !ok {
				tids[s.Resource] = len(tids)
			}
		}
		// Metadata events naming the process and threads.
		for _, s := range tl.Spans {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name:  s.Name,
				Cat:   s.Class,
				Phase: "X",
				TS:    s.Start * 1e6,
				Dur:   (s.End - s.Start) * 1e6,
				PID:   pid,
				TID:   tids[s.Resource],
			})
		}
		_ = tl.Title
	}
	return f
}

// SpansFromResult adapts a schedule to the renderers (re-exported
// convenience for callers holding raw spans).
func SpansFromResult(spans []sched.Span) []sched.Span { return spans }
