package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandomDAG creates a layered random task graph over a few
// resources: dependencies only point to earlier tasks, so it is acyclic
// by construction.
func buildRandomDAG(rng *rand.Rand) (*Sim, []*Task, []*Resource) {
	s := NewSim()
	nres := 1 + rng.Intn(3)
	res := make([]*Resource, nres)
	for i := range res {
		res[i] = NewResource(fmt.Sprintf("r%d", i))
	}
	ntasks := 1 + rng.Intn(25)
	tasks := make([]*Task, 0, ntasks)
	for i := 0; i < ntasks; i++ {
		var deps []*Task
		for _, prev := range tasks {
			if rng.Float64() < 0.15 {
				deps = append(deps, prev)
			}
		}
		dur := rng.Float64() * 5
		tasks = append(tasks, s.NewTask(fmt.Sprintf("t%d", i), "x", res[rng.Intn(nres)], dur, deps...))
	}
	return s, tasks, res
}

func TestScheduleRespectsAllConstraintsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, tasks, res := buildRandomDAG(rng)
		makespan := s.Run()
		// 1) every dependency precedes its dependent
		for _, tk := range tasks {
			for _, d := range tk.Deps {
				if tk.Start() < d.End()-1e-12 {
					return false
				}
			}
			if tk.End() > makespan+1e-12 {
				return false
			}
			if tk.End() < tk.Start() {
				return false
			}
		}
		// 2) tasks on one resource never overlap
		for _, r := range res {
			var mine []*Task
			for _, tk := range tasks {
				if tk.Res == r {
					mine = append(mine, tk)
				}
			}
			for i := 0; i < len(mine); i++ {
				for j := i + 1; j < len(mine); j++ {
					a, b := mine[i], mine[j]
					if a.Start() < b.End()-1e-12 && b.Start() < a.End()-1e-12 &&
						a.Duration > 0 && b.Duration > 0 {
						return false
					}
				}
			}
		}
		// 3) makespan ≥ both lower bounds: longest chain and busiest
		// resource
		for _, r := range res {
			if r.Busy() > makespan+1e-9 {
				return false
			}
		}
		var chain func(tk *Task) float64
		memo := map[*Task]float64{}
		chain = func(tk *Task) float64 {
			if v, ok := memo[tk]; ok {
				return v
			}
			best := 0.0
			for _, d := range tk.Deps {
				if c := chain(d); c > best {
					best = c
				}
			}
			memo[tk] = best + tk.Duration
			return memo[tk]
		}
		for _, tk := range tasks {
			if chain(tk) > makespan+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSpanAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, tasks, _ := buildRandomDAG(rng)
		s.Run()
		spans := s.Spans()
		if len(spans) != len(tasks) {
			return false
		}
		// Spans sorted by start.
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].Start {
				return false
			}
		}
		// Class totals equal summed durations.
		var total float64
		for _, tk := range tasks {
			total += tk.Duration
		}
		got := s.ClassTotals()["x"]
		return abs(got-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
