package sched

import (
	"math"
	"testing"
)

func TestSerialResourceQueues(t *testing.T) {
	s := NewSim()
	r := NewResource("stream")
	a := s.NewTask("a", "x", r, 2)
	b := s.NewTask("b", "x", r, 3)
	mk := s.Run()
	if a.Start() != 0 || a.End() != 2 {
		t.Errorf("a: [%g,%g]", a.Start(), a.End())
	}
	if b.Start() != 2 || b.End() != 5 {
		t.Errorf("b: [%g,%g]", b.Start(), b.End())
	}
	if mk != 5 {
		t.Errorf("makespan %g", mk)
	}
}

func TestIndependentResourcesOverlap(t *testing.T) {
	s := NewSim()
	r1, r2 := NewResource("compute"), NewResource("transfer")
	s.NewTask("fft", "fft", r1, 4)
	s.NewTask("copy", "h2d", r2, 3)
	if mk := s.Run(); mk != 4 {
		t.Errorf("makespan %g want 4 (overlap)", mk)
	}
}

func TestDependencyOrdering(t *testing.T) {
	s := NewSim()
	r1, r2 := NewResource("a"), NewResource("b")
	x := s.NewTask("x", "x", r1, 2)
	y := s.NewTask("y", "y", r2, 1, x) // waits for x despite free resource
	s.Run()
	if y.Start() != 2 {
		t.Errorf("y started at %g want 2", y.Start())
	}
}

func TestDiamondDependency(t *testing.T) {
	s := NewSim()
	r := NewResource("r")
	r2 := NewResource("r2")
	a := s.NewTask("a", "", r, 1)
	b := s.NewTask("b", "", r, 2, a)
	c := s.NewTask("c", "", r2, 5, a)
	d := s.NewTask("d", "", r, 1, b, c)
	mk := s.Run()
	if d.Start() != 6 { // max(b.end=3, c.end=6)
		t.Errorf("d start %g want 6", d.Start())
	}
	if mk != 7 {
		t.Errorf("makespan %g want 7", mk)
	}
}

func TestPipelineOverlapShape(t *testing.T) {
	// Classic 3-stage software pipeline: with k items on 2 alternating
	// resources (copy, compute), makespan = copy + k·compute when
	// compute dominates.
	s := NewSim()
	cp := NewResource("copy")
	cm := NewResource("compute")
	k := 5
	var prevCopy, prevComp *Task
	for i := 0; i < k; i++ {
		deps := []*Task{}
		if prevCopy != nil {
			deps = append(deps, prevCopy)
		}
		c := s.NewTask("h2d", "h2d", cp, 1, deps...)
		cdeps := []*Task{c}
		if prevComp != nil {
			cdeps = append(cdeps, prevComp)
		}
		f := s.NewTask("fft", "fft", cm, 2, cdeps...)
		prevCopy, prevComp = c, f
	}
	mk := s.Run()
	want := 1.0 + float64(k)*2.0
	if math.Abs(mk-want) > 1e-12 {
		t.Errorf("pipelined makespan %g want %g", mk, want)
	}
}

func TestFIFOByReadyTimeOnSharedResource(t *testing.T) {
	s := NewSim()
	r := NewResource("net")
	gate := NewResource("gate")
	g1 := s.NewTask("g1", "", gate, 1)
	g2 := s.NewTask("g2", "", gate, 2, g1)
	// late becomes ready at t=3, early at t=1; early must run first
	// even though late was inserted first.
	late := s.NewTask("late", "", r, 1, g2)
	early := s.NewTask("early", "", r, 5, g1)
	s.Run()
	if early.Start() != 1 {
		t.Errorf("early start %g want 1", early.Start())
	}
	if late.Start() != 6 {
		t.Errorf("late start %g want 6 (queued behind early)", late.Start())
	}
}

func TestSpansSortedAndTotals(t *testing.T) {
	s := NewSim()
	r := NewResource("r")
	s.NewTask("b", "fft", r, 2)
	s.NewTask("a", "h2d", r, 1)
	s.Run()
	spans := s.Spans()
	if len(spans) != 2 || spans[0].Start > spans[1].Start {
		t.Errorf("spans not sorted: %+v", spans)
	}
	tot := s.ClassTotals()
	if tot["fft"] != 2 || tot["h2d"] != 1 {
		t.Errorf("class totals %v", tot)
	}
}

func TestBusyAccounting(t *testing.T) {
	s := NewSim()
	r := NewResource("r")
	s.NewTask("a", "", r, 2)
	s.NewTask("b", "", r, 3)
	s.Run()
	if r.Busy() != 5 {
		t.Errorf("busy %g want 5", r.Busy())
	}
}

func TestZeroDurationTasks(t *testing.T) {
	s := NewSim()
	r := NewResource("r")
	a := s.NewTask("a", "", r, 0)
	b := s.NewTask("b", "", r, 1, a)
	if mk := s.Run(); mk != 1 {
		t.Errorf("makespan %g", mk)
	}
	if b.Start() != 0 {
		t.Errorf("b start %g", b.Start())
	}
}

func TestPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := NewSim()
	s.NewTask("bad", "", NewResource("r"), -1)
}

func TestPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := NewSim()
	r := NewResource("r")
	a := &Task{Name: "a", Res: r, Duration: 1}
	b := &Task{Name: "b", Res: r, Duration: 1, Deps: []*Task{a}}
	a.Deps = []*Task{b}
	s.Add(a)
	s.Add(b)
	s.Run()
}

func TestRunIsRepeatable(t *testing.T) {
	s := NewSim()
	r1, r2 := NewResource("a"), NewResource("b")
	x := s.NewTask("x", "", r1, 2)
	s.NewTask("y", "", r2, 1, x)
	mk1 := s.Run()
	// Rerun after resetting resources should give the same answer.
	r1.nextFree, r2.nextFree = 0, 0
	mk2 := s.Run()
	if mk1 != mk2 {
		t.Errorf("non-deterministic: %g vs %g", mk1, mk2)
	}
}
