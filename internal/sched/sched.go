// Package sched is a small deterministic discrete-event engine used to
// predict the wall-clock behaviour of the paper's pipelines on
// Summit-class hardware. Work is expressed as a DAG of tasks; each
// task occupies one serial resource (a CUDA stream, a copy engine, the
// NIC) for a duration, and may depend on the completion of other tasks
// (CUDA events / MPI_WAIT). The engine computes start and end times by
// FIFO resource arbitration in ready-time order, which is exactly how
// in-order CUDA streams and a single NIC behave.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Resource is a serially-occupied facility (one CUDA stream, the
// host↔device transfer engine, the network interface).
type Resource struct {
	Name     string
	nextFree float64
	busy     float64 // accumulated busy time
}

// NewResource creates a named resource, idle at t=0.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Busy reports the total time the resource was occupied.
func (r *Resource) Busy() float64 { return r.busy }

// Task is one unit of work in the DAG.
type Task struct {
	Name     string
	Class    string // grouping label for traces ("h2d", "fft", "a2a", …)
	Res      *Resource
	Duration float64
	Deps     []*Task

	id        int
	scheduled bool
	start     float64
	end       float64
}

// Start reports the scheduled start time (valid after Sim.Run).
func (t *Task) Start() float64 { return t.start }

// End reports the scheduled end time (valid after Sim.Run).
func (t *Task) End() float64 { return t.end }

// Sim owns a set of tasks to schedule.
type Sim struct {
	tasks []*Task
}

// NewSim creates an empty simulation.
func NewSim() *Sim { return &Sim{} }

// Add registers a task (its Deps must also be registered before Run).
func (s *Sim) Add(t *Task) *Task {
	t.id = len(s.tasks)
	s.tasks = append(s.tasks, t)
	return t
}

// NewTask is shorthand for Add(&Task{…}).
func (s *Sim) NewTask(name, class string, res *Resource, dur float64, deps ...*Task) *Task {
	if dur < 0 || math.IsNaN(dur) {
		panic(fmt.Sprintf("sched: invalid duration %g for %s", dur, name))
	}
	return s.Add(&Task{Name: name, Class: class, Res: res, Duration: dur, Deps: deps})
}

// Run schedules every task and returns the makespan. Tasks on the same
// resource run serially; among ready tasks a resource serves the one
// with the earliest ready time, breaking ties by insertion order (the
// launch order of the code being modelled).
func (s *Sim) Run() float64 {
	for _, t := range s.tasks {
		t.scheduled = false
	}
	remaining := make([]*Task, len(s.tasks))
	copy(remaining, s.tasks)
	var makespan float64
	for len(remaining) > 0 {
		// Find schedulable tasks and their ready times.
		best := -1
		bestReady := math.Inf(1)
		for i, t := range remaining {
			ready := 0.0
			ok := true
			for _, d := range t.Deps {
				if !d.scheduled {
					ok = false
					break
				}
				if d.end > ready {
					ready = d.end
				}
			}
			if !ok {
				continue
			}
			// Effective start considering the resource queue.
			eff := math.Max(ready, t.Res.nextFree)
			if eff < bestReady || (eff == bestReady && best >= 0 && t.id < remaining[best].id) {
				bestReady = eff
				best = i
			}
		}
		if best < 0 {
			panic("sched: dependency cycle or missing task registration")
		}
		t := remaining[best]
		t.start = bestReady
		t.end = t.start + t.Duration
		t.Res.nextFree = t.end
		t.Res.busy += t.Duration
		t.scheduled = true
		if t.end > makespan {
			makespan = t.end
		}
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return makespan
}

// Span is one scheduled interval, exported for timeline rendering.
type Span struct {
	Name     string
	Class    string
	Resource string
	Start    float64
	End      float64
}

// Spans returns the scheduled intervals sorted by start time (valid
// after Run).
func (s *Sim) Spans() []Span {
	out := make([]Span, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, Span{Name: t.Name, Class: t.Class, Resource: t.Res.Name, Start: t.start, End: t.end})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ClassTotals sums the busy time of spans per class (valid after Run).
func (s *Sim) ClassTotals() map[string]float64 {
	m := map[string]float64{}
	for _, t := range s.tasks {
		m[t.Class] += t.Duration
	}
	return m
}
