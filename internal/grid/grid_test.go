package grid

import (
	"testing"
	"testing/quick"
)

func TestSlabExtents(t *testing.T) {
	s := NewSlab(12, 4, 2)
	if s.MZ() != 3 || s.MY() != 3 {
		t.Errorf("extents %d %d", s.MZ(), s.MY())
	}
	if s.ZLo() != 6 || s.YLo() != 6 {
		t.Errorf("offsets %d %d", s.ZLo(), s.YLo())
	}
}

func TestSlabOwnership(t *testing.T) {
	s := NewSlab(12, 4, 0)
	for iz := 0; iz < 12; iz++ {
		owner := s.ZOwner(iz)
		so := NewSlab(12, 4, owner)
		if iz < so.ZLo() || iz >= so.ZLo()+so.MZ() {
			t.Errorf("z=%d owner %d does not own it", iz, owner)
		}
	}
}

func TestSlabCoverageIsPartition(t *testing.T) {
	// Property: every global plane is owned by exactly one rank.
	f := func(seed uint8) bool {
		n := 6 * (int(seed%5) + 1)
		p := []int{1, 2, 3, 6}[seed%4]
		count := make([]int, n)
		for r := 0; r < p; r++ {
			s := NewSlab(n, p, r)
			for iz := s.ZLo(); iz < s.ZLo()+s.MZ(); iz++ {
				count[iz]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlabPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSlab(10, 3, 0)
}

func TestPencil2DExtents(t *testing.T) {
	p := NewPencil2D(24, 2, 4, 1, 0)
	if p.MY() != 12 || p.MZ() != 6 || p.MX() != 12 || p.MY2() != 6 {
		t.Errorf("extents %d %d %d %d", p.MY(), p.MZ(), p.MX(), p.MY2())
	}
}

func TestPencilBatchGeometry(t *testing.T) {
	s := NewSlab(16, 4, 1)
	b := NewPencilBatch(s, 4)
	if b.NYP() != 4 {
		t.Errorf("nyp %d", b.NYP())
	}
	// Words for nxh = 9 (N/2+1): 9*4*4.
	if b.Words(9) != 144 {
		t.Errorf("words %d", b.Words(9))
	}
}

func TestGPUSliceCoversPencil(t *testing.T) {
	s := NewSlab(18, 3, 0)
	b := NewPencilBatch(s, 2) // nyp = 9
	for _, ngpu := range []int{1, 2, 3, 4} {
		for ip := 0; ip < b.NP; ip++ {
			covered := map[int]bool{}
			prevHi := ip * b.NYP()
			for g := 0; g < ngpu; g++ {
				lo, hi := b.GPUSlice(ip, g, ngpu)
				if lo != prevHi {
					t.Errorf("ngpu=%d ip=%d g=%d: gap lo=%d prevHi=%d", ngpu, ip, g, lo, prevHi)
				}
				for i := lo; i < hi; i++ {
					if covered[i] {
						t.Errorf("overlap at %d", i)
					}
					covered[i] = true
				}
				prevHi = hi
			}
			if prevHi != (ip+1)*b.NYP() {
				t.Errorf("ngpu=%d ip=%d: coverage ends at %d", ngpu, ip, prevHi)
			}
		}
	}
}

func TestWavenumberMapping(t *testing.T) {
	n := 8
	want := []int{0, 1, 2, 3, 4, -3, -2, -1}
	for i, w := range want {
		if k := Wavenumber(i, n); k != w {
			t.Errorf("Wavenumber(%d,%d)=%d want %d", i, n, k, w)
		}
	}
	if MaxRealizableK(8) != 4 {
		t.Error("max k")
	}
}

func TestWavenumberRoundTripProperty(t *testing.T) {
	// Property: the signed wavenumber recovers the storage index mod N.
	f := func(i uint8, nSel uint8) bool {
		n := []int{4, 8, 16, 12}[nSel%4]
		idx := int(i) % n
		k := Wavenumber(idx, n)
		return ((k%n)+n)%n == idx && k >= -n/2+1-1 && k <= n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDealiasCutoff(t *testing.T) {
	if DealiasCutoff(18432) != 6144 {
		t.Errorf("cutoff %g", DealiasCutoff(18432))
	}
}

func TestPaperGeometry18432(t *testing.T) {
	// The paper's production case: N=18432, 3072 nodes, 2 ranks/node ⇒
	// P=6144, mz=3; 4 pencils per slab ⇒ nyp=4608 (Fig 6's nxp analog).
	s := NewSlab(18432, 6144, 0)
	if s.MZ() != 3 {
		t.Errorf("mz=%d want 3", s.MZ())
	}
	b := NewPencilBatch(s, 4)
	if b.NYP() != 4608 {
		t.Errorf("nyp=%d want 4608", b.NYP())
	}
}
