// Package grid describes the domain decompositions of the paper: the
// 1D slab decomposition adopted by the new GPU code (Fig 1 left), the
// 2D pencil decomposition of the CPU baseline (Fig 1 right), the
// division of a slab into np pencils for out-of-core GPU batching
// (Fig 3), and the further vertical split across the GPUs of one MPI
// rank (Fig 5). It also provides the wavenumber bookkeeping of the
// spectral method.
package grid

import "fmt"

// Slab is the 1D decomposition: rank r of P holds N/P contiguous x-y
// planes in Fourier space (z-distributed) and N/P contiguous x-z
// planes in physical space (y-distributed).
type Slab struct {
	N    int // linear problem size
	P    int // number of MPI ranks
	Rank int
}

// NewSlab validates divisibility (load balancing requires P | N, as
// §3.5 of the paper notes) and returns the geometry for one rank.
func NewSlab(n, p, rank int) Slab {
	if p < 1 || n < 1 || n%p != 0 {
		panic(fmt.Sprintf("grid: slab requires P|N, got N=%d P=%d", n, p))
	}
	if rank < 0 || rank >= p {
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, p))
	}
	return Slab{N: n, P: p, Rank: rank}
}

// MZ is the local z extent (planes per slab) in Fourier space.
func (s Slab) MZ() int { return s.N / s.P }

// MY is the local y extent in physical space (after the transpose).
func (s Slab) MY() int { return s.N / s.P }

// ZLo returns the first global z index owned by the rank.
func (s Slab) ZLo() int { return s.Rank * s.MZ() }

// YLo returns the first global y index owned by the rank (physical).
func (s Slab) YLo() int { return s.Rank * s.MY() }

// ZOwner reports which rank owns global z index iz in Fourier space.
func (s Slab) ZOwner(iz int) int { return iz / s.MZ() }

// YOwner reports which rank owns global y index iy in physical space.
func (s Slab) YOwner(iy int) int { return iy / s.MY() }

// Pencil2D is the 2D decomposition of the CPU baseline: a Pr×Pc
// process grid with y distributed over the Pr y-groups and z over the
// Pc z-groups in the x-pencil layout.
type Pencil2D struct {
	N      int
	Pr, Pc int
	YRank  int // this rank's y-group index, in [0, Pr)
	ZRank  int // this rank's z-group index, in [0, Pc)
}

// NewPencil2D validates that both grid dimensions divide N and that
// the group indices are in range.
func NewPencil2D(n, pr, pc, yRank, zRank int) Pencil2D {
	if pr < 1 || pc < 1 || n%pr != 0 || n%pc != 0 {
		panic(fmt.Sprintf("grid: pencil requires Pr|N and Pc|N, got N=%d Pr=%d Pc=%d", n, pr, pc))
	}
	if yRank < 0 || yRank >= pr || zRank < 0 || zRank >= pc {
		panic(fmt.Sprintf("grid: pencil group (%d,%d) out of %dx%d", yRank, zRank, pr, pc))
	}
	return Pencil2D{N: n, Pr: pr, Pc: pc, YRank: yRank, ZRank: zRank}
}

// MY is the local y extent in the x-pencil layout, N/Pr.
func (p Pencil2D) MY() int { return p.N / p.Pr }

// MZ is the local z extent in the x-pencil layout, N/Pc.
func (p Pencil2D) MZ() int { return p.N / p.Pc }

// MX is the local x extent after the row transpose, N/Pr.
func (p Pencil2D) MX() int { return p.N / p.Pr }

// MY2 is the local y extent after the column transpose, N/Pc.
func (p Pencil2D) MY2() int { return p.N / p.Pc }

// PencilBatch describes how one rank's slab is divided into np pencils
// that are cycled through GPU memory (Fig 3): pencil ip covers y
// indices [ip·nyp, (ip+1)·nyp) of the local x-y slab.
type PencilBatch struct {
	Slab Slab
	NP   int // pencils per slab
}

// NewPencilBatch validates np | N.
func NewPencilBatch(s Slab, np int) PencilBatch {
	if np < 1 || s.N%np != 0 {
		panic(fmt.Sprintf("grid: pencil batch requires np|N, got N=%d np=%d", s.N, np))
	}
	return PencilBatch{Slab: s, NP: np}
}

// NYP is the y extent of one pencil, N/np.
func (b PencilBatch) NYP() int { return b.Slab.N / b.NP }

// Words is the number of complex words in one pencil of one variable:
// nxh × nyp × mz, where nxh is the x extent of the stored spectrum.
func (b PencilBatch) Words(nxh int) int { return nxh * b.NYP() * b.Slab.MZ() }

// GPUSlice further splits a pencil vertically across ngpu devices
// (Fig 5), returning the y sub-range [lo,hi) of the pencil handled by
// device g.
func (b PencilBatch) GPUSlice(ip, g, ngpu int) (lo, hi int) {
	if g < 0 || g >= ngpu {
		panic(fmt.Sprintf("grid: gpu %d out of %d", g, ngpu))
	}
	nyp := b.NYP()
	per := nyp / ngpu
	rem := nyp % ngpu
	lo = ip*nyp + g*per + min(g, rem)
	hi = lo + per
	if g < rem {
		hi++
	}
	return lo, hi
}

// Wavenumber maps a storage index i on an N-point grid to its signed
// wavenumber: 0,1,…,N/2,−N/2+1,…,−1.
func Wavenumber(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// MaxRealizableK is the highest wavenumber magnitude representable per
// direction, N/2.
func MaxRealizableK(n int) int { return n / 2 }

// DealiasCutoff is the 2/3-rule truncation radius: modes with any
// |k| > N/3 are zeroed when forming nonlinear products.
func DealiasCutoff(n int) float64 { return float64(n) / 3.0 }
