package spectral

import (
	"testing"

	"repro/internal/mpi"
)

// stepAllocs measures rank 0's steady-state heap allocations per Step
// for the given configuration; peer ranks execute the same collective
// sequence runs+1 times to match AllocsPerRun's call count.
func stepAllocs(t *testing.T, cfg Config, p, runs int) float64 {
	t.Helper()
	var avg float64
	mpi.Run(p, func(c *mpi.Comm) {
		s := NewSolver(c, cfg)
		s.SetTaylorGreen()
		avg = measureStepAllocs(c, s, runs)
	})
	return avg
}

// stepAllocsOpts is the options-constructor variant covering every
// registered system.
func stepAllocsOpts(t *testing.T, n, p, runs int, opts ...Option) float64 {
	t.Helper()
	var avg float64
	mpi.Run(p, func(c *mpi.Comm) {
		s := New(c, n, opts...)
		s.SetRandomIsotropic(2.5, 0.3, 17)
		for f := 3; f < s.Fields(); f++ {
			s.SetFieldBlob(f, 2.5, 0.5, int64(40+f))
		}
		avg = measureStepAllocs(c, s, runs)
	})
	return avg
}

func measureStepAllocs(c *mpi.Comm, s *Solver, runs int) float64 {
	const dt = 1e-3
	for i := 0; i < 3; i++ {
		s.Step(dt) // warm up metric handles, twiddles, freelists
	}
	if c.Rank() != 0 {
		for i := 0; i < runs+1; i++ {
			s.Step(dt)
		}
		return 0
	}
	return testing.AllocsPerRun(runs, func() { s.Step(dt) })
}

// The DNS step loop must not allocate at steady state: every stage
// buffer, transform scratch, pack buffer and metric sample ring is
// hoisted to construction. This pins the hot path against regressions
// (a single make() in a step stage shows up here immediately).
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step DNS loop in -short mode")
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"rk2", Config{N: 16, Nu: 0.01, Scheme: RK2, Dealias: Dealias23}},
		{"rk4", Config{N: 16, Nu: 0.01, Scheme: RK4, Dealias: Dealias23}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if avg := stepAllocs(t, tc.cfg, 2, 10); avg != 0 {
				t.Fatalf("steady-state %s step allocates %.2f per call", tc.name, avg)
			}
		})
	}
}

// TestStepSystemsZeroAllocs extends the zero-allocation invariant to
// every shipped equation set under both schemes: System interface
// dispatch, the forcing controller's persistent reduction, scalar
// advection scratch and the Coriolis term must all stay off the heap
// at steady state.
func TestStepSystemsZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step DNS loop in -short mode")
	}
	schemes := []struct {
		name string
		sch  Scheme
	}{{"rk2", RK2}, {"rk4", RK4}}
	systems := []struct {
		name string
		opts []Option
	}{
		{"ns", []Option{WithSystem("ns")}},
		{"forced-ns", []Option{WithForcing(2, 0.05), WithForcingNoise(0.5, 3)}},
		{"rotating-scalar", []Option{WithRotation(2.0), WithScalars(2, 1.0, 0.7), WithScalarGradient(1.0)}},
	}
	for _, sys := range systems {
		for _, sch := range schemes {
			sys, sch := sys, sch
			t.Run(sys.name+"/"+sch.name, func(t *testing.T) {
				opts := append([]Option{WithNu(0.01), WithScheme(sch.sch), WithDealias(Dealias23)}, sys.opts...)
				if avg := stepAllocsOpts(t, 16, 2, 10, opts...); avg != 0 {
					t.Fatalf("steady-state %s/%s step allocates %.2f per call", sys.name, sch.name, avg)
				}
			})
		}
	}
}
