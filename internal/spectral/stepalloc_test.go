package spectral

import (
	"testing"

	"repro/internal/mpi"
)

// stepAllocs measures rank 0's steady-state heap allocations per Step
// for the given configuration; peer ranks execute the same collective
// sequence runs+1 times to match AllocsPerRun's call count.
func stepAllocs(t *testing.T, cfg Config, p, runs int) float64 {
	t.Helper()
	var avg float64
	mpi.Run(p, func(c *mpi.Comm) {
		s := NewSolver(c, cfg)
		s.SetTaylorGreen()
		const dt = 1e-3
		for i := 0; i < 3; i++ {
			s.Step(dt) // warm up metric handles, twiddles, freelists
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(runs, func() { s.Step(dt) })
		} else {
			for i := 0; i < runs+1; i++ {
				s.Step(dt)
			}
		}
	})
	return avg
}

// The DNS step loop must not allocate at steady state: every stage
// buffer, transform scratch, pack buffer and metric sample ring is
// hoisted to construction. This pins the hot path against regressions
// (a single make() in a step stage shows up here immediately).
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step DNS loop in -short mode")
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"rk2", Config{N: 16, Nu: 0.01, Scheme: RK2, Dealias: Dealias23}},
		{"rk4", Config{N: 16, Nu: 0.01, Scheme: RK4, Dealias: Dealias23}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if avg := stepAllocs(t, tc.cfg, 2, 10); avg != 0 {
				t.Fatalf("steady-state %s step allocates %.2f per call", tc.name, avg)
			}
		})
	}
}
