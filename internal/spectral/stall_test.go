package spectral

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/mpi"
)

// TestStepAnnotatesStall: a bulk all-to-all fragment dropped during a
// time step must surface as a *StepStallError carrying the solver's
// step counter and clock, with the underlying *mpi.StallError still
// reachable through errors.As — not hang the step forever.
func TestStepAnnotatesStall(t *testing.T) {
	const n, p = 16, 2
	// Drop only bulk collective fragments (≥1KiB): the solver's small
	// control collectives and the engine construction stay healthy, so
	// the stall fires inside Step's transform waits.
	drop := mpi.FaultRule{
		Src: 1, Dst: 0, Tag: mpi.AnyTag,
		Scope: mpi.ScopeColl, MinBytes: 1024, DropProb: 1,
	}
	start := time.Now()
	err := mpi.TryRun(p, func(c *mpi.Comm) {
		// Pin the staged wire path: the default autotuner would run
		// staged trials at construction and stall there under the
		// 100%-drop rule, before Step gets to wrap the error.
		eng := core.NewAsyncSlabReal(c, n, core.Options{
			NP: 3, Granularity: core.PerPencil, WaitDeadline: 200 * time.Millisecond,
			Exchange: exchange.Staged,
		})
		defer eng.Close()
		s := NewSolverWithTransform(c, Config{N: n, Nu: 0.05, Scheme: RK2, Dealias: Dealias23}, eng)
		s.SetTaylorGreen()
		s.Step(0.005)
	},
		mpi.WithFaults(&mpi.Faults{Rules: []mpi.FaultRule{drop}}),
		mpi.WithWatchdog(mpi.Watchdog{Off: true}), // only the engine deadline may fire
	)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("stalled step took %v to fail", elapsed)
	}
	var se *StepStallError
	if !errors.As(err, &se) {
		t.Fatalf("error %T (%v) does not wrap *StepStallError", err, err)
	}
	if se.Step != 0 || se.Time != 0 {
		t.Fatalf("StepStallError = %+v, want the first step at t=0", se)
	}
	var st *mpi.StallError
	if !errors.As(err, &st) {
		t.Fatalf("underlying *mpi.StallError not reachable: %v", err)
	}
	if st.Rank != 0 || st.Op != "wait" {
		t.Fatalf("StallError = %+v, want rank 0 blocked in a collective wait", st)
	}
}
