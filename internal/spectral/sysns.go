package spectral

// NavierStokes is the default equation set: decaying incompressible
// Navier–Stokes, the configuration every pre-registry solver ran. Its
// Nonlinear is exactly the classic velocityProducts → projection
// sequence, so results are bitwise-identical to the hardcoded stepper
// it replaced.
type NavierStokes struct {
	nu float64
}

func init() {
	RegisterSystem("ns", newNavierStokes)
}

func newNavierStokes(spec SystemSpec) System {
	return &NavierStokes{nu: spec.Nu}
}

// Name implements System.
func (y *NavierStokes) Name() string { return "ns" }

// Fields implements System: three velocity components.
func (y *NavierStokes) Fields() int { return 3 }

// Setup implements System (no extra state).
func (y *NavierStokes) Setup(*Solver) {}

// Diffusivity implements System: the kinematic viscosity for every
// component.
func (y *NavierStokes) Diffusivity(int) float64 { return y.nu }

// Nonlinear implements System: the dealiased, projected
// divergence-form term −P(k)·(ik_j·FFT{u_iu_j}).
//
//psdns:hotpath
func (y *NavierStokes) Nonlinear(s *Solver, state, rhs [][]complex128) {
	s.velocityProducts(state, rhs)
	s.projectAndDealias(rhs)
}

// PostStep implements System (decaying turbulence: nothing to do).
//
//psdns:hotpath
func (y *NavierStokes) PostStep(*Solver, float64) {}

// Diagnostics implements System.
func (y *NavierStokes) Diagnostics(s *Solver) []Diagnostic {
	return []Diagnostic{
		{Name: "energy", Value: s.Energy()},
		{Name: "dissipation", Value: s.Dissipation()},
	}
}
