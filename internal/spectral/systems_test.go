package spectral

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mpi"
)

// TestDecayingNSBitwiseGolden locks the refactored generic stepper to
// energies recorded by the pre-registry hardcoded 3-field stepper
// (same build, immediately before the System refactor): the decaying
// NS system must be bitwise-identical, per scheme and rank count (the
// reduction order in Energy depends on P, hence per-P goldens).
func TestDecayingNSBitwiseGolden(t *testing.T) {
	golden := map[Scheme]map[int][2]float64{
		RK2: {
			1: {0.50000000000000056, 0.493655144870007},
			2: {0.50000000000000022, 0.49365514487000589},
			4: {0.49999999999999978, 0.49365514487000534},
		},
		RK4: {
			1: {0.50000000000000056, 0.49365504200428478},
			2: {0.50000000000000022, 0.49365504200428317},
			4: {0.49999999999999978, 0.49365504200428312},
		},
	}
	for _, scheme := range []Scheme{RK2, RK4} {
		for _, p := range []int{1, 2, 4} {
			want := golden[scheme][p]
			// Old deprecated constructor and the new options one must
			// both reproduce the pre-refactor sequence exactly.
			for _, mode := range []string{"config", "options"} {
				mode := mode
				mpi.Run(p, func(c *mpi.Comm) {
					var s *Solver
					if mode == "config" {
						s = NewSolver(c, Config{N: 32, Nu: 0.02, Scheme: scheme, Dealias: Dealias23})
					} else {
						s = New(c, 32, WithNu(0.02), WithScheme(scheme), WithDealias(Dealias23))
					}
					s.SetRandomIsotropic(3, 0.5, 424242)
					e0 := s.Energy()
					for i := 0; i < 5; i++ {
						s.Step(0.004)
					}
					e5 := s.Energy()
					if c.Rank() == 0 {
						if e0 != want[0] || e5 != want[1] {
							t.Errorf("%v scheme=%v p=%d: e0=%.17g e5=%.17g, want %.17g %.17g",
								mode, scheme, p, e0, e5, want[0], want[1])
						}
					}
				})
			}
		}
	}
}

// TestDecayingNSBitwiseGoldenShift locks the phase-shifted dealiasing
// path the same way.
func TestDecayingNSBitwiseGoldenShift(t *testing.T) {
	golden := map[int]float64{
		1: 0.39828433477605696,
		2: 0.39828433477605718,
	}
	for _, p := range []int{1, 2} {
		want := golden[p]
		mpi.Run(p, func(c *mpi.Comm) {
			s := New(c, 16, WithNu(0.01), WithScheme(RK2), WithDealias(Dealias23Shift))
			s.SetRandomIsotropic(2.5, 0.4, 7)
			for i := 0; i < 4; i++ {
				s.Step(0.005)
			}
			e4 := s.Energy()
			if c.Rank() == 0 && e4 != want {
				t.Errorf("p=%d: e4=%.17g, want %.17g", p, e4, want)
			}
		})
	}
}

// TestSystemRegistry checks the day-one registrations and the
// unknown-name error message a CLI relays to the user.
func TestSystemRegistry(t *testing.T) {
	names := Systems()
	for _, want := range []string{"ns", "forced-ns", "rotating-scalar"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("system %q not registered (have %v)", want, names)
		}
		if SystemCode(want) < 0 {
			t.Errorf("SystemCode(%q) < 0", want)
		}
	}
	if _, err := NewNamedSystem("mhd", SystemSpec{}); err == nil {
		t.Error("expected error for unregistered system")
	} else if !strings.Contains(err.Error(), "forced-ns") {
		t.Errorf("unknown-system error should list registrations, got: %v", err)
	}
}

// TestForcedNSStationaryBudget drives forced turbulence to statistical
// stationarity and checks the energy budget: the prescribed injection
// rate must balance viscous dissipation within tolerance over an
// averaging window, and energy must neither decay away nor blow up.
func TestForcedNSStationaryBudget(t *testing.T) {
	for _, p := range []int{1, 4} {
		mpi.Run(p, func(c *mpi.Comm) {
			const eps = 0.08
			s := New(c, 32,
				WithNu(0.05),
				WithScheme(RK2),
				WithDealias(Dealias23),
				WithForcing(2, eps),
				WithForcingNoise(1.0, 99),
			)
			s.SetRandomIsotropic(3, 0.3, 11)
			dt := 0.01
			// Transient: let the spectrum equilibrate.
			for i := 0; i < 150; i++ {
				s.Step(dt)
			}
			e1 := s.Energy()
			var dissSum float64
			const window = 100
			for i := 0; i < window; i++ {
				s.Step(dt)
				dissSum += s.Dissipation()
			}
			e2 := s.Energy()
			diss := dissSum / window
			// Exact discrete budget: injection − dissipation ≈ dE/dt.
			balance := eps - diss - (e2-e1)/(float64(window)*dt)
			if c.Rank() == 0 {
				if math.Abs(balance) > 0.25*eps {
					t.Errorf("p=%d: budget residual %.3g vs injection %.3g (diss=%.3g, dE=%.3g)",
						p, balance, eps, diss, e2-e1)
				}
				if e2 < 0.05 || e2 > 5 {
					t.Errorf("p=%d: energy not stationary: %.3g", p, e2)
				}
				if math.IsNaN(e2) {
					t.Errorf("p=%d: energy is NaN", p)
				}
			}
		})
	}
}

// TestForcedNSRankCountIndependence checks that the seeded phase walk
// is keyed by global mode index: the forced trajectory must not depend
// on the rank count.
func TestForcedNSRankCountIndependence(t *testing.T) {
	energies := map[int]float64{}
	for _, p := range []int{1, 2, 4} {
		mpi.Run(p, func(c *mpi.Comm) {
			s := New(c, 16,
				WithNu(0.02),
				WithDealias(Dealias23),
				WithForcing(2, 0.05),
				WithForcingNoise(0.5, 7),
			)
			s.SetRandomIsotropic(2.5, 0.3, 5)
			for i := 0; i < 10; i++ {
				s.Step(0.005)
			}
			e := s.Energy()
			if c.Rank() == 0 {
				energies[p] = e
			}
		})
	}
	for _, p := range []int{2, 4} {
		if math.Abs(energies[p]-energies[1]) > 1e-12 {
			t.Errorf("forced trajectory depends on rank count: E(p=%d)=%.17g E(p=1)=%.17g",
				p, energies[p], energies[1])
		}
	}
}

// TestScalarVarianceBudget advances a decaying passive scalar inside
// the rotating-scalar system and checks the variance budget
// d⟨θ²⟩/dt = −2χ over a step (trapezoid in time), plus that the
// in-system scalar matches the physics of the legacy coupled path.
func TestScalarVarianceBudget(t *testing.T) {
	for _, p := range []int{1, 4} {
		mpi.Run(p, func(c *mpi.Comm) {
			s := New(c, 32,
				WithNu(0.02),
				WithScheme(RK2),
				WithDealias(Dealias23),
				WithScalars(1, 0.7),
			)
			if got := s.Fields(); got != 4 {
				t.Errorf("fields=%d, want 4", got)
			}
			s.SetRandomIsotropic(3, 0.5, 21)
			s.SetFieldBlob(3, 3, 1.0, 33)
			dt := 0.004
			for i := 0; i < 3; i++ {
				s.Step(dt) // settle transients of the discrete scheme
			}
			v1 := s.FieldVariance(3)
			chi1 := s.FieldDissipation(3)
			s.Step(dt)
			v2 := s.FieldVariance(3)
			chi2 := s.FieldDissipation(3)
			lhs := (v2 - v1) / dt
			rhs := -(chi1 + chi2) // −2χ, trapezoid average
			if c.Rank() == 0 {
				if v2 <= 0 || v2 >= v1 {
					t.Errorf("p=%d: scalar variance not decaying: %g -> %g", p, v1, v2)
				}
				if math.Abs(lhs-rhs) > 0.05*math.Abs(rhs) {
					t.Errorf("p=%d: variance budget: d⟨θ²⟩/dt=%.6g, −2χ=%.6g", p, lhs, rhs)
				}
			}
		})
	}
}

// TestScalarMeanGradientProduction checks the stationary-mixing device:
// with an imposed mean gradient, scalar variance grows from zero by
// production −G⟨u_yθ⟩ rather than decaying.
func TestScalarMeanGradientProduction(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := New(c, 16,
			WithNu(0.02),
			WithDealias(Dealias23),
			WithScalars(1, 1.0),
			WithScalarGradient(2.0),
		)
		s.SetRandomIsotropic(2.5, 0.5, 3)
		for i := 0; i < 20; i++ {
			s.Step(0.005)
		}
		v := s.FieldVariance(3)
		if c.Rank() == 0 {
			if !(v > 1e-6) {
				t.Errorf("mean-gradient production failed to generate scalar variance: %g", v)
			}
		}
	})
}

// TestRotationInviscidEnergyConservation checks that the Coriolis term
// does no work: with ν=0 and the dealiased Galerkin-truncated
// nonlinear term, total kinetic energy is conserved to scheme accuracy
// even at strong rotation.
func TestRotationInviscidEnergyConservation(t *testing.T) {
	for _, p := range []int{1, 4} {
		mpi.Run(p, func(c *mpi.Comm) {
			s := New(c, 32,
				WithNu(0),
				WithScheme(RK4),
				WithDealias(Dealias23),
				WithRotation(4.0),
			)
			s.SetRandomIsotropic(3, 0.5, 77)
			e0 := s.Energy()
			for i := 0; i < 10; i++ {
				s.Step(0.002)
			}
			e1 := s.Energy()
			div := s.DivergenceMax()
			if c.Rank() == 0 {
				if rel := math.Abs(e1-e0) / e0; rel > 1e-9 {
					t.Errorf("p=%d: inviscid rotating energy drift %.3g (E %.15g -> %.15g)", p, rel, e0, e1)
				}
				if div > 1e-10 {
					t.Errorf("p=%d: divergence %.3g after rotating steps", p, div)
				}
			}
		})
	}
}

// TestRotationAnisotropyDiagnostic checks the system's Diagnostics
// wiring: the anisotropy measure is reported and stays a small number
// for short times (it starts at ≈0 for an isotropic field).
func TestRotationAnisotropyDiagnostic(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := New(c, 16, WithNu(0.01), WithDealias(Dealias23), WithRotation(2.0), WithScalars(1))
		s.SetRandomIsotropic(2.5, 0.4, 13)
		s.SetFieldBlob(3, 2.5, 0.5, 14)
		for i := 0; i < 5; i++ {
			s.Step(0.005)
		}
		diags := s.SystemDiagnostics()
		if c.Rank() != 0 {
			return
		}
		got := map[string]float64{}
		for _, d := range diags {
			got[d.Name] = d.Value
		}
		for _, name := range []string{"energy", "dissipation", "rotation.rate", "anisotropy.bzz", "scalar.variance"} {
			if _, ok := got[name]; !ok {
				t.Errorf("diagnostic %q missing (have %v)", name, diags)
			}
		}
		if got["rotation.rate"] != 2.0 {
			t.Errorf("rotation.rate=%g, want 2", got["rotation.rate"])
		}
		if math.Abs(got["anisotropy.bzz"]) > 0.5 {
			t.Errorf("anisotropy.bzz=%g out of range", got["anisotropy.bzz"])
		}
	})
}

// TestSystemGauge checks that construction publishes the solver.system
// gauge used to label step spans in metrics snapshots.
func TestSystemGauge(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		c.Metrics().SetOn(true)
		s := New(c, 16, WithNu(0.01), WithRotation(1.0))
		_ = s
		g := c.Metrics().GaugeRank("solver.system", c.Rank()).Value()
		if int(g) != SystemCode("rotating-scalar") {
			t.Errorf("solver.system gauge = %v, want %d", g, SystemCode("rotating-scalar"))
		}
	})
}

// TestStepWithScalarRejectsWideSystems pins the guard: the legacy
// coupled path is only valid for 3-field systems.
func TestStepWithScalarRejectsWideSystems(t *testing.T) {
	err := mpi.TryRun(1, func(c *mpi.Comm) {
		s := New(c, 16, WithNu(0.01), WithScalars(1))
		sc := s.NewScalar(0.01)
		s.StepWithScalar(sc, 0.01)
	})
	if err == nil {
		t.Fatal("expected panic for StepWithScalar on a 4-field system")
	}
}
