package spectral

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestSliceZMatchesAnalyticTG(t *testing.T) {
	n, p := 16, 4
	mpi.Run(p, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: n, Nu: 0})
		s.SetTaylorGreen()
		iz := 3
		plane := s.SliceZ(0, iz) // u component
		if c.Rank() != 0 {
			if plane != nil {
				t.Error("non-root got a plane")
			}
			return
		}
		h := 2 * math.Pi / float64(n)
		z := float64(iz) * h
		for gy := 0; gy < n; gy++ {
			for ix := 0; ix < n; ix++ {
				want := math.Sin(float64(ix)*h) * math.Cos(float64(gy)*h) * math.Cos(z)
				if math.Abs(plane[gy*n+ix]-want) > 1e-12 {
					t.Fatalf("slice(%d,%d): %g want %g", gy, ix, plane[gy*n+ix], want)
				}
			}
		}
	})
}

func TestSliceYMatchesAnalyticTG(t *testing.T) {
	n, p := 16, 4
	for _, iy := range []int{0, 5, 15} { // different owning ranks
		mpi.Run(p, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: n, Nu: 0})
			s.SetTaylorGreen()
			plane := s.SliceY(1, iy) // v component, layout [nz][nx]
			if c.Rank() != 0 {
				return
			}
			h := 2 * math.Pi / float64(n)
			y := float64(iy) * h
			for izz := 0; izz < n; izz++ {
				for ix := 0; ix < n; ix++ {
					want := -math.Cos(float64(ix)*h) * math.Sin(y) * math.Cos(float64(izz)*h)
					if math.Abs(plane[izz*n+ix]-want) > 1e-12 {
						t.Fatalf("iy=%d slice(%d,%d): %g want %g", iy, izz, ix, plane[izz*n+ix], want)
					}
				}
			}
		})
	}
}

func TestWriteSlicePNG(t *testing.T) {
	n := 8
	plane := make([]float64, n*n)
	for i := range plane {
		plane[i] = math.Sin(float64(i))
	}
	var buf bytes.Buffer
	if err := WriteSlicePNG(&buf, plane, n, n); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if img.Bounds().Dx() != n || img.Bounds().Dy() != n {
		t.Errorf("image %v", img.Bounds())
	}
}

func TestWriteSlicePNGBadDims(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSlicePNG(&buf, make([]float64, 10), 4, 4); err == nil {
		t.Error("expected dimension error")
	}
}

func TestWriteSlicePNGConstantField(t *testing.T) {
	// vmax = 0 must not divide by zero.
	var buf bytes.Buffer
	if err := WriteSlicePNG(&buf, make([]float64, 16), 4, 4); err != nil {
		t.Fatal(err)
	}
}
