package spectral

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/pfft"
	"repro/internal/tuning"
)

// Option configures New. The zero configuration is an inviscid,
// undealiased RK2 decaying-NS solver on the synchronous slab
// transform — the same defaults as the zero Config.
type Option func(*solverOptions)

type solverOptions struct {
	cfg     Config
	tr      Transform
	sys     System
	sysName string
	spec    SystemSpec

	// Asynchrony tolerance: atStale < 0 (the default) keeps every
	// exchange synchronous; atStale ≥ 0 runs the transposes through
	// bounded-staleness exchanges and enables the staleness-weighted
	// nonlinear correction in the stepper.
	atStale    int
	atDeadline time.Duration

	decomp tuning.Decomp
}

// DefaultATDeadline is the soft wait used by asynchrony-tolerant
// exchanges when WithAsyncDeadline is not given: a rank whose peers
// are within the staleness bound still grants them this long to
// publish the current epoch before gathering stale slabs. Generous
// against scheduling jitter, small against a genuinely hung peer.
const DefaultATDeadline = 50 * time.Millisecond

// WithNu sets the kinematic viscosity.
func WithNu(nu float64) Option {
	return func(o *solverOptions) { o.cfg.Nu = nu }
}

// WithScheme selects the time integrator (RK2 or RK4).
func WithScheme(sch Scheme) Option {
	return func(o *solverOptions) { o.cfg.Scheme = sch }
}

// WithDealias selects the aliasing control.
func WithDealias(d Dealias) Option {
	return func(o *solverOptions) { o.cfg.Dealias = d }
}

// WithTransform runs the solver on a caller-chosen transform engine
// (e.g. the batched asynchronous pipeline of internal/core) instead of
// the synchronous slab default.
func WithTransform(tr Transform) Option {
	return func(o *solverOptions) { o.tr = tr }
}

// WithSystem selects a registered equation set by name ("ns",
// "forced-ns", "rotating-scalar", or any third-party registration).
// Construction panics on an unknown name, listing what is registered.
func WithSystem(name string) Option {
	return func(o *solverOptions) { o.sysName = name }
}

// WithSystemInstance installs a caller-built System directly,
// bypassing the registry (for systems with configuration the generic
// SystemSpec cannot express).
func WithSystemInstance(sys System) Option {
	return func(o *solverOptions) { o.sys = sys }
}

// WithForcing enables stochastic large-scale forcing over shells
// k ≤ kf with energy injection rate eps. Unless a system is named
// explicitly, this selects "forced-ns".
func WithForcing(kf int, eps float64) Option {
	return func(o *solverOptions) {
		o.spec.Forcing.KF = kf
		o.spec.Forcing.Eps = eps
	}
}

// WithForcingNoise adds a seeded random phase walk with decorrelation
// time tcorr to the forcing (zero tcorr keeps phases frozen).
func WithForcingNoise(tcorr float64, seed int64) Option {
	return func(o *solverOptions) {
		o.spec.Forcing.TCorr = tcorr
		o.spec.Forcing.Seed = seed
	}
}

// WithScalars attaches n passive scalars with the given Schmidt
// numbers (κ_i = ν/Sc_i; missing entries default to Sc=1, extras are
// ignored). Unless a system is named explicitly, this selects
// "rotating-scalar".
func WithScalars(n int, sc ...float64) Option {
	return func(o *solverOptions) {
		for i := 0; i < n; i++ {
			s := 1.0
			if i < len(sc) {
				s = sc[i]
			}
			o.spec.Scalars = append(o.spec.Scalars, ScalarSpec{Schmidt: s})
		}
	}
}

// WithScalarGradient imposes a uniform mean gradient G·ŷ on every
// scalar declared so far (the stationary-mixing production device).
func WithScalarGradient(g float64) Option {
	return func(o *solverOptions) {
		for i := range o.spec.Scalars {
			o.spec.Scalars[i].MeanGrad = g
		}
	}
}

// WithRotation sets the frame rotation rate Ω about ẑ. Unless a
// system is named explicitly, this selects "rotating-scalar".
func WithRotation(omega float64) Option {
	return func(o *solverOptions) { o.spec.Omega = omega }
}

// WithBandForcing attaches the legacy deterministic band forcing
// (freeze shells 1…kf at their initial energies) as a post-step hook.
//
// Deprecated: use WithForcing, whose controller is allocation-free and
// injects at a prescribed rate.
func WithBandForcing(kf int) Option {
	return func(o *solverOptions) { o.cfg.Forcing = NewForcing(kf) }
}

// WithDecomposition declares the field decomposition the solver runs
// on. The solver's own state — fields, wavenumber grids, diagnostics —
// lives on the slab layout, so only tuning.DecompSlab (the zero value,
// also what DecompAuto collapses to here) is accepted; a pencil grid
// panics at construction, pointing at the transform API
// (pfft.NewRealTuned / repro.NewTunedTransform), where pencil
// decompositions and P > N runs are supported today. The option exists
// so callers can thread one Decomp value through solver and transform
// construction uniformly.
func WithDecomposition(d tuning.Decomp) Option {
	return func(o *solverOptions) { o.decomp = d }
}

// WithAsyncTolerance enables asynchrony-tolerant stepping with the
// given staleness bound (in exchange epochs, not time steps): the
// distributed transposes run through bounded exchanges
// (mpi.ExchangePlan.DoBounded) that let a rank proceed on peers'
// latest published slabs once they lag by at most maxStale epochs,
// and the stepper applies a staleness-weighted first-order correction
// to the nonlinear term (the Kumari–Donzis asynchrony-tolerant
// scheme). maxStale = 0 still waits for every peer — useful to keep
// the AT machinery on a bitwise-synchronous path; negative bounds
// panic at construction.
//
// Stale data is only ever accepted in whole-step quanta: the solver
// labels every exchange with its within-step call index, and a
// bounded exchange substitutes a peer's old slab only when it carries
// the same label — the same quantity from k whole steps earlier,
// never a different field or stage in the wrong layout. Each plan
// runs several exchanges per step (for plain NS under RK2, six on the
// forward plan and twelve on the inverse), so a bound smaller than a
// plan's per-step exchange count never admits stale data on that
// plan; to tolerate about one step of lag, set maxStale to the
// scheme's per-step exchange count (≈ 6·stages for NS).
//
// With no WithTransform the solver builds its slab transform with
// pfft.NewSlabRealAT. A caller-supplied transform must itself be
// asynchrony-tolerant (pfft.NewSlabRealAT or a core.AsyncSlabReal
// with Exchange: exchange.AT) — construction panics if it cannot
// report staleness.
func WithAsyncTolerance(maxStale int) Option {
	return func(o *solverOptions) {
		if maxStale < 0 {
			panic(fmt.Sprintf("spectral: negative staleness bound %d", maxStale))
		}
		o.atStale = maxStale
	}
}

// WithAsyncDeadline bounds the soft wait of asynchrony-tolerant
// exchanges: once peers are within the staleness bound, a rank still
// waits up to d for them to publish the current epoch before
// gathering stale slabs (d ≤ 0 never waits past the hard bound).
// Without WithAsyncTolerance this option has no effect. The default
// is DefaultATDeadline.
func WithAsyncDeadline(d time.Duration) Option {
	return func(o *solverOptions) { o.atDeadline = d }
}

// New allocates a solver for an n³ grid with functional options — the
// registry-aware constructor. The equation set is chosen by
// WithSystem/WithSystemInstance, or inferred from the physics options:
// scalars or rotation select "rotating-scalar", forcing selects
// "forced-ns", and the default is plain decaying "ns".
//
// All ranks must construct the solver collectively with identical
// options.
func New(comm *mpi.Comm, n int, opts ...Option) *Solver {
	o := &solverOptions{atStale: -1, atDeadline: DefaultATDeadline}
	o.cfg.N = n
	for _, opt := range opts {
		opt(o)
	}
	if o.decomp.IsPencil() {
		panic(fmt.Sprintf("spectral: the solver runs on the slab layout; pencil decomposition %s is a transform-level feature (pfft.NewRealTuned / repro.NewTunedTransform)", o.decomp))
	}
	o.spec.Nu = o.cfg.Nu
	sys := o.sys
	if sys == nil {
		name := o.sysName
		if name == "" {
			switch {
			case len(o.spec.Scalars) > 0 || o.spec.Omega != 0:
				name = "rotating-scalar"
			case o.spec.Forcing.KF > 0 || o.spec.Forcing.Eps > 0:
				name = "forced-ns"
			default:
				name = "ns"
			}
		}
		var err error
		sys, err = NewNamedSystem(name, o.spec)
		if err != nil {
			panic(err.Error())
		}
	}
	tr := o.tr
	ownTr := false
	if tr == nil {
		if n < 4 || n%2 != 0 {
			panic(fmt.Sprintf("spectral: N must be even and ≥4, got %d", n))
		}
		if o.atStale >= 0 {
			tr = pfft.NewSlabRealAT(comm, n, 1, o.atStale, o.atDeadline)
		} else {
			tr = pfft.NewSlabReal(comm, n)
		}
		ownTr = true
	}
	s := newSolverAT(comm, o.cfg, tr, sys, o.atStale >= 0)
	s.ownTr = ownTr
	return s
}
