package spectral

import (
	"math/cmplx"

	"repro/internal/mpi"
)

// prodPairs enumerates the six distinct components of the symmetric
// tensor u_iu_j formed in physical space each Runge–Kutta stage — the
// variable counting behind the paper's D ≈ 25 memory estimate.
var prodPairs = [6][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}}

// nonlinear evaluates the dealiased, projected divergence-form
// velocity nonlinear term into s.nl[0:3] — the legacy 3-field entry
// point kept for the coupled-scalar step and diagnostics. Systems
// compose velocityProducts/addCoriolis/projectAndDealias directly.
func (s *Solver) nonlinear(u *[3][]complex128) {
	s.wrap3[0], s.wrap3[1], s.wrap3[2] = u[0], u[1], u[2]
	s.velocityProducts(s.wrap3, s.nl)
	s.projectAndDealias(s.nl)
}

// velocityProducts evaluates the divergence-form nonlinear term
// N̂_i = −ik_j·FFT{u_iu_j} of the velocity (state[0:3], code units)
// into rhs[0:3], leaving projection and dealiasing to the caller so
// systems can add body forces (Coriolis, buoyancy) before projecting.
// It performs 3 inverse and 6 forward distributed 3D transforms,
// exactly the transform traffic the paper's timings account for. As a
// side effect s.physU holds the (shifted, under Dealias23Shift)
// physical-space velocity, which scalar advection reuses for free.
//
//psdns:hotpath
func (s *Solver) velocityProducts(state, rhs [][]complex128) {
	shift := s.cfg.Dealias == Dealias23Shift

	// To physical space, one component at a time.
	for c := 0; c < 3; c++ {
		copy(s.work, state[c])
		if shift {
			s.applyShift(s.work, +1)
		}
		s.tr.FourierToPhysical(s.physU[c], s.work)
	}

	for c := 0; c < 3; c++ {
		zero(rhs[c])
	}

	// Products back to Fourier space, accumulating the divergence.
	for _, pair := range prodPairs {
		i, j := pair[0], pair[1]
		ui, uj := s.physU[i], s.physU[j]
		for m := range s.prod {
			s.prod[m] = ui[m] * uj[m]
		}
		s.tr.PhysicalToFourier(s.work, s.prod)
		if shift {
			s.applyShift(s.work, -1)
		}
		// Code-unit bookkeeping: the product of two physical fields,
		// forward transformed, is N³·(û_i⋆û_j)_math — already in code
		// units; no extra scaling needed.
		s.accumulateDivergence(rhs, i, j)
	}
}

// accumulateDivergence adds −i·k_j·ŝ to rhs[i] (and −i·k_i·ŝ to rhs[j]
// when i≠j), where ŝ is the spectral product currently in s.work.
//
//psdns:hotpath
func (s *Solver) accumulateDivergence(rhs [][]complex128, i, j int) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				kvec := [3]float64{s.kxs[ix], ky, kz}
				v := s.work[idx]
				// −i·k·v = complex(k·imag, −k·real).
				rhs[i][idx] += complex(kvec[j]*imag(v), -kvec[j]*real(v))
				if i != j {
					rhs[j][idx] += complex(kvec[i]*imag(v), -kvec[i]*real(v))
				}
				idx++
			}
		}
	}
}

// addCoriolis adds the Coriolis acceleration −2Ω·ẑ×u =
// (2Ω·u_y, −2Ω·u_x, 0) to rhs[0:2]. It must run before the solenoidal
// projection (the projection removes the gradient part that feeds the
// geostrophic pressure); the term does no work, so inviscid energy is
// conserved to scheme accuracy — the validation invariant of the
// rotating system.
//
//psdns:hotpath
func (s *Solver) addCoriolis(state, rhs [][]complex128, omega float64) {
	two := complex(2*omega, 0)
	ux, uy := state[0], state[1]
	rx, ry := rhs[0], rhs[1]
	for i := range rx {
		rx[i] += two * uy[i]
		ry[i] -= two * ux[i]
	}
}

// projectAndDealias applies the solenoidal projection
// N̂_⊥ = N̂ − k(k·N̂)/k² and the dealias mask to rhs[0:3].
//
//psdns:hotpath
func (s *Solver) projectAndDealias(rhs [][]complex128) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	r0, r1, r2 := rhs[0], rhs[1], rhs[2]
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				kx := s.kxs[ix]
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 || !s.mask[idx] {
					r0[idx] = 0
					r1[idx] = 0
					r2[idx] = 0
					idx++
					continue
				}
				dot := (complex(kx, 0)*r0[idx] +
					complex(ky, 0)*r1[idx] +
					complex(kz, 0)*r2[idx]) / complex(k2, 0)
				r0[idx] -= complex(kx, 0) * dot
				r1[idx] -= complex(ky, 0) * dot
				r2[idx] -= complex(kz, 0) * dot
				idx++
			}
		}
	}
}

// applyShift multiplies every mode by exp(sign·i·k·Δ) for the current
// step's phase shift Δ (Rogallo phase shifting).
func (s *Solver) applyShift(f []complex128, sign float64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	dx, dy, dz := s.shift[0], s.shift[1], s.shift[2]
	idx := 0
	for iz := 0; iz < mz; iz++ {
		pz := s.kzs[iz] * dz
		for iy := 0; iy < n; iy++ {
			py := s.kys[iy] * dy
			for ix := 0; ix < nxh; ix++ {
				ph := sign * (s.kxs[ix]*dx + py + pz)
				f[idx] *= cmplx.Exp(complex(0, ph))
				idx++
			}
		}
	}
}

func zero(v []complex128) {
	for i := range v {
		v[i] = 0
	}
}

// DivergenceMax returns the global maximum of |k·û| over all modes, a
// direct measure of the mass-conservation invariant (collective).
func (s *Solver) DivergenceMax() float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	var m float64
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				div := complex(s.kxs[ix], 0)*s.Uh[0][idx] +
					complex(ky, 0)*s.Uh[1][idx] +
					complex(kz, 0)*s.Uh[2][idx]
				if a := cmplx.Abs(div); a > m {
					m = a
				}
				idx++
			}
		}
	}
	v := []float64{m / float64(n*n*n)} // code units → û_math
	mpi.AllreduceMax(s.comm, v)
	return v[0]
}
