package spectral

import (
	"math/cmplx"

	"repro/internal/mpi"
)

// prodPairs enumerates the six distinct components of the symmetric
// tensor u_iu_j formed in physical space each Runge–Kutta stage — the
// variable counting behind the paper's D ≈ 25 memory estimate.
var prodPairs = [6][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}}

// nonlinear evaluates the dealiased, projected divergence-form
// nonlinear term N̂ = −P(k)·(ik_j·FFT{u_iu_j}) of the velocity field u
// (in code units) into s.nl. It performs 3 inverse and 6 forward
// distributed 3D transforms, exactly the transform traffic the paper's
// timings account for.
func (s *Solver) nonlinear(u *[3][]complex128) {
	shift := s.cfg.Dealias == Dealias23Shift

	// To physical space, one component at a time.
	for c := 0; c < 3; c++ {
		copy(s.work, u[c])
		if shift {
			s.applyShift(s.work, +1)
		}
		s.tr.FourierToPhysical(s.physU[c], s.work)
	}

	for c := 0; c < 3; c++ {
		zero(s.nl[c])
	}

	// Products back to Fourier space, accumulating the divergence.
	for _, pair := range prodPairs {
		i, j := pair[0], pair[1]
		ui, uj := s.physU[i], s.physU[j]
		for m := range s.prod {
			s.prod[m] = ui[m] * uj[m]
		}
		s.tr.PhysicalToFourier(s.work, s.prod)
		if shift {
			s.applyShift(s.work, -1)
		}
		// Code-unit bookkeeping: the product of two physical fields,
		// forward transformed, is N³·(û_i⋆û_j)_math — already in code
		// units; no extra scaling needed.
		s.accumulateDivergence(i, j)
	}

	s.projectAndDealias()
}

// accumulateDivergence adds −i·k_j·ŝ to nl[i] (and −i·k_i·ŝ to nl[j]
// when i≠j), where ŝ is the spectral product currently in s.work.
func (s *Solver) accumulateDivergence(i, j int) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				kvec := [3]float64{s.kxs[ix], ky, kz}
				v := s.work[idx]
				// −i·k·v = complex(k·imag, −k·real).
				s.nl[i][idx] += complex(kvec[j]*imag(v), -kvec[j]*real(v))
				if i != j {
					s.nl[j][idx] += complex(kvec[i]*imag(v), -kvec[i]*real(v))
				}
				idx++
			}
		}
	}
}

// projectAndDealias applies the solenoidal projection
// N̂_⊥ = N̂ − k(k·N̂)/k² and the dealias mask to s.nl.
func (s *Solver) projectAndDealias() {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				kx := s.kxs[ix]
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 || !s.mask[idx] {
					s.nl[0][idx] = 0
					s.nl[1][idx] = 0
					s.nl[2][idx] = 0
					idx++
					continue
				}
				dot := (complex(kx, 0)*s.nl[0][idx] +
					complex(ky, 0)*s.nl[1][idx] +
					complex(kz, 0)*s.nl[2][idx]) / complex(k2, 0)
				s.nl[0][idx] -= complex(kx, 0) * dot
				s.nl[1][idx] -= complex(ky, 0) * dot
				s.nl[2][idx] -= complex(kz, 0) * dot
				idx++
			}
		}
	}
}

// applyShift multiplies every mode by exp(sign·i·k·Δ) for the current
// step's phase shift Δ (Rogallo phase shifting).
func (s *Solver) applyShift(f []complex128, sign float64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	dx, dy, dz := s.shift[0], s.shift[1], s.shift[2]
	idx := 0
	for iz := 0; iz < mz; iz++ {
		pz := s.kzs[iz] * dz
		for iy := 0; iy < n; iy++ {
			py := s.kys[iy] * dy
			for ix := 0; ix < nxh; ix++ {
				ph := sign * (s.kxs[ix]*dx + py + pz)
				f[idx] *= cmplx.Exp(complex(0, ph))
				idx++
			}
		}
	}
}

func zero(v []complex128) {
	for i := range v {
		v[i] = 0
	}
}

// DivergenceMax returns the global maximum of |k·û| over all modes, a
// direct measure of the mass-conservation invariant (collective).
func (s *Solver) DivergenceMax() float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	var m float64
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				div := complex(s.kxs[ix], 0)*s.Uh[0][idx] +
					complex(ky, 0)*s.Uh[1][idx] +
					complex(kz, 0)*s.Uh[2][idx]
				if a := cmplx.Abs(div); a > m {
					m = a
				}
				idx++
			}
		}
	}
	v := []float64{m / float64(n*n*n)} // code units → û_math
	mpi.AllreduceMax(s.comm, v)
	return v[0]
}
