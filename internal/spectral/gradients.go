package spectral

import (
	"math"

	"repro/internal/mpi"
)

// GradientStats holds the single-point statistics of a longitudinal
// velocity gradient ∂u/∂x — the quantities whose extreme events
// motivate the ever-larger grids of the paper's reference [23]
// (Yeung, Zhai & Sreenivasan, PNAS 2015).
type GradientStats struct {
	Mean     float64
	Variance float64
	Skewness float64 // ≈ −0.5 in developed turbulence (energy cascade)
	Flatness float64 // > 3: small-scale intermittency
	Min, Max float64
}

// LongitudinalGradientStats computes the moments of ∂u_c/∂x_c for
// component c (0..2) by spectral differentiation and one inverse
// transform (collective).
func (s *Solver) LongitudinalGradientStats(c int) GradientStats {
	s.gradientField(c, c)
	return s.physMoments()
}

// TransverseGradientStats computes the moments of ∂u_c/∂x_d, c ≠ d
// (collective).
func (s *Solver) TransverseGradientStats(c, d int) GradientStats {
	s.gradientField(c, d)
	return s.physMoments()
}

// gradientField places ∂u_c/∂x_d into s.physU[0]'s storage... more
// precisely into s.prod via s.work: ŵ = i·k_d·û_c, then F2P.
func (s *Solver) gradientField(c, d int) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := [3]float64{s.kxs[ix], ky, kz}[d]
				v := s.Uh[c][idx]
				// i·k·v = complex(−k·imag, k·real)
				s.work[idx] = complex(-k*imag(v), k*real(v))
				idx++
			}
		}
	}
	s.tr.FourierToPhysical(s.prod, s.work)
}

// physMoments reduces the first four moments of the field currently
// in s.prod over all ranks (collective).
func (s *Solver) physMoments() GradientStats {
	var m1, m2, m3, m4, mn, mx float64
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range s.prod {
		m1 += v
		m2 += v * v
		m3 += v * v * v
		m4 += v * v * v * v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	sums := []float64{m1, m2, m3, m4, float64(len(s.prod))}
	mpi.AllreduceSum(s.comm, sums)
	neg := []float64{-mn}
	mpi.AllreduceMax(s.comm, neg)
	pos := []float64{mx}
	mpi.AllreduceMax(s.comm, pos)

	nTot := sums[4]
	mean := sums[0] / nTot
	va := sums[1]/nTot - mean*mean
	mu3 := sums[2]/nTot - 3*mean*va - mean*mean*mean
	// Central fourth moment from raw moments.
	mu4 := sums[3]/nTot - 4*mean*sums[2]/nTot + 6*mean*mean*sums[1]/nTot - 3*mean*mean*mean*mean
	sd := math.Sqrt(va)
	return GradientStats{
		Mean:     mean,
		Variance: va,
		Skewness: mu3 / (sd * sd * sd),
		Flatness: mu4 / (va * va),
		Min:      -neg[0],
		Max:      pos[0],
	}
}

// VelocityMoments returns the moments of the velocity component c
// itself (useful as a near-Gaussian reference against the
// intermittent gradients; collective).
func (s *Solver) VelocityMoments(c int) GradientStats {
	copy(s.work, s.Uh[c])
	s.tr.FourierToPhysical(s.prod, s.work)
	return s.physMoments()
}

// TaylorScaleFromGradients returns λ computed from its definition
// λ² = ⟨u²⟩/⟨(∂u/∂x)²⟩, a cross-check on the spectral-space estimate
// in Statistics (collective).
func (s *Solver) TaylorScaleFromGradients() float64 {
	g := s.LongitudinalGradientStats(0)
	u := s.VelocityMoments(0)
	return math.Sqrt(u.Variance / g.Variance)
}
