package spectral

import (
	"math"

	"repro/internal/mpi"
)

// specWeight is the conjugate-symmetry weight of an x bin in the half
// spectrum: interior bins represent two modes (±kx), the kx=0 and
// kx=N/2 planes one each.
func specWeight(ix, n int) float64 {
	if ix == 0 || ix == n/2 {
		return 1
	}
	return 2
}

// modeSum accumulates w(k)·f(k²)·|û|²_math over the local slab for all
// three components and reduces over ranks.
func (s *Solver) modeSum(f func(k2 float64) float64) float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	var sum float64
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k2 := s.kxs[ix]*s.kxs[ix] + ky2 + kz2
				w := specWeight(ix, n)
				var e float64
				for c := 0; c < 3; c++ {
					v := s.Uh[c][idx]
					e += real(v)*real(v) + imag(v)*imag(v)
				}
				sum += w * f(k2) * e * inv
				idx++
			}
		}
	}
	out := []float64{sum}
	mpi.AllreduceSum(s.comm, out)
	return out[0]
}

// fieldModeSum accumulates w(k)·f(k²)·|v̂|²_math over one spectral
// field and reduces over ranks (collective).
func (s *Solver) fieldModeSum(v []complex128, f func(k2 float64) float64) float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	var sum float64
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k2 := s.kxs[ix]*s.kxs[ix] + ky2 + kz2
				e := real(v[idx])*real(v[idx]) + imag(v[idx])*imag(v[idx])
				sum += specWeight(ix, n) * f(k2) * e * inv
				idx++
			}
		}
	}
	out := []float64{sum}
	mpi.AllreduceSum(s.comm, out)
	return out[0]
}

// Energy returns the total kinetic energy ½⟨u·u⟩ (collective).
func (s *Solver) Energy() float64 {
	return 0.5 * s.modeSum(func(float64) float64 { return 1 })
}

// ComponentEnergy returns ½⟨u_c²⟩ of one velocity component, the
// ingredient of the rotation anisotropy diagnostic (collective).
func (s *Solver) ComponentEnergy(c int) float64 {
	return 0.5 * s.fieldModeSum(s.state[c], func(float64) float64 { return 1 })
}

// FieldVariance returns ⟨f²⟩ of spectral field c (collective). For
// scalar-carrying systems, fields 3… are the scalars.
func (s *Solver) FieldVariance(c int) float64 {
	return s.fieldModeSum(s.state[c], func(float64) float64 { return 1 })
}

// FieldDissipation returns the diffusive destruction rate of field c,
// χ = 2κ_c·Σ k²·E_f(k) (so for a scalar, d⟨θ²⟩/dt = −2χ in pure
// decay, matching ScalarDissipation's convention; collective).
func (s *Solver) FieldDissipation(c int) float64 {
	kappa := s.sys.Diffusivity(c)
	return kappa * s.fieldModeSum(s.state[c], func(k2 float64) float64 { return k2 })
}

// Dissipation returns ε = 2ν·Σ k²·E(k) = ν⟨|∇u|²⟩ for solenoidal
// fields (collective).
func (s *Solver) Dissipation() float64 {
	return s.cfg.Nu * s.modeSum(func(k2 float64) float64 { return k2 })
}

// Enstrophy returns Ω = ½⟨ω·ω⟩ = Σ k²·E(k) (collective).
func (s *Solver) Enstrophy() float64 {
	return 0.5 * s.modeSum(func(k2 float64) float64 { return k2 })
}

// Spectrum returns the shell-summed energy spectrum E(k) for integer
// shells k = 0…N/2, with shell k collecting modes with |k| in
// [k−½, k+½) (collective).
func (s *Solver) Spectrum() []float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	// Shells extend to the corner of the wavenumber cube (√3·N/2) so
	// that ΣE(k) equals the total exactly.
	spec := make([]float64, int(math.Sqrt(3)*float64(n)/2)+2)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell < len(spec) {
					var e float64
					for c := 0; c < 3; c++ {
						v := s.Uh[c][idx]
						e += real(v)*real(v) + imag(v)*imag(v)
					}
					spec[shell] += 0.5 * specWeight(ix, n) * e * inv
				}
				idx++
			}
		}
	}
	mpi.AllreduceSum(s.comm, spec)
	return spec
}

// Stats bundles the standard single-time turbulence statistics.
type Stats struct {
	Energy      float64
	Dissipation float64
	Enstrophy   float64
	URMS        float64 // rms of one velocity component
	TaylorScale float64 // λ = u'·√(15ν/ε)
	ReLambda    float64 // Taylor-microscale Reynolds number
	Kolmogorov  float64 // η = (ν³/ε)^{1/4}
	KMaxEta     float64 // small-scale resolution k_max·η
	IntegralT   float64 // large-eddy turnover time E/ε... L/u'
}

// Statistics computes the bundle (collective). With zero dissipation
// the Reynolds-number entries are NaN, as in post-processing practice.
func (s *Solver) Statistics() Stats {
	e := s.Energy()
	eps := s.Dissipation()
	omega := s.Enstrophy()
	nu := s.cfg.Nu
	urms := math.Sqrt(2.0 * e / 3.0)
	lambda := urms * math.Sqrt(15*nu/eps)
	var st Stats
	st.Energy = e
	st.Dissipation = eps
	st.Enstrophy = omega
	st.URMS = urms
	st.TaylorScale = lambda
	st.ReLambda = urms * lambda / nu
	st.Kolmogorov = math.Pow(nu*nu*nu/eps, 0.25)
	kmax := math.Sqrt(2.0) * float64(s.cfg.N) / 3.0
	st.KMaxEta = kmax * st.Kolmogorov
	st.IntegralT = e / eps
	return st
}

// CFL returns the advective Courant number u_max·dt/Δx for the current
// field (collective; requires three inverse transforms).
func (s *Solver) CFL(dt float64) float64 {
	var umax float64
	for c := 0; c < 3; c++ {
		copy(s.work, s.Uh[c])
		s.tr.FourierToPhysical(s.physU[c], s.work)
		for _, v := range s.physU[c] {
			if a := math.Abs(v); a > umax {
				umax = a
			}
		}
	}
	v := []float64{umax}
	mpi.AllreduceMax(s.comm, v)
	dx := 2 * math.Pi / float64(s.cfg.N)
	return v[0] * dt / dx
}

// NonlinearEnergyTransfer returns Σ Re(û*·N̂)_math, the rate of energy
// change due to the nonlinear term alone. For the projected, dealiased
// Galerkin-truncated system this is zero to round-off — the invariant
// tested by the energy-conservation tests (collective).
func (s *Solver) NonlinearEnergyTransfer() float64 {
	s.nonlinear(&s.Uh)
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	var sum float64
	idx := 0
	nxh := s.nxh
	for iz := 0; iz < s.slab.MZ(); iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < nxh; ix++ {
				w := specWeight(ix, n)
				for c := 0; c < 3; c++ {
					u := s.Uh[c][idx]
					f := s.nl[c][idx]
					sum += w * (real(u)*real(f) + imag(u)*imag(f)) * inv
				}
				idx++
			}
		}
	}
	out := []float64{sum}
	mpi.AllreduceSum(s.comm, out)
	return out[0]
}
