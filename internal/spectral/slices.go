package spectral

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/mpi"
)

// Slice extraction: production DNS campaigns dump 2D planes of the
// solution for visualization and for surface statistics; at 18432²
// points per plane this is the only routinely affordable full-
// resolution output.

// SliceZ gathers the physical-space plane z = iz of velocity component
// comp to rank 0, returned as a row-major [ny][nx] array (nil on other
// ranks). Collective: costs one inverse transform plus a gather.
func (s *Solver) SliceZ(comp, iz int) []float64 {
	n := s.cfg.N
	if comp < 0 || comp > 2 || iz < 0 || iz >= n {
		panic(fmt.Sprintf("spectral: invalid slice (comp=%d, iz=%d)", comp, iz))
	}
	copy(s.work, s.Uh[comp])
	s.tr.FourierToPhysical(s.physU[comp], s.work)
	// Physical layout is [my][nz][nx], y-distributed: every rank owns a
	// y-strip of the plane.
	my := s.slab.MY()
	strip := make([]float64, my*n)
	for iy := 0; iy < my; iy++ {
		copy(strip[iy*n:(iy+1)*n], s.physU[comp][(iy*n+iz)*n:(iy*n+iz)*n+n])
	}
	var plane []float64
	if s.slab.Rank == 0 {
		plane = make([]float64, n*n)
	}
	mpi.Gather(s.comm, 0, strip, plane)
	return plane
}

// SliceY gathers the plane y = iy (owned by a single rank) to rank 0.
func (s *Solver) SliceY(comp, iy int) []float64 {
	n := s.cfg.N
	if comp < 0 || comp > 2 || iy < 0 || iy >= n {
		panic(fmt.Sprintf("spectral: invalid slice (comp=%d, iy=%d)", comp, iy))
	}
	copy(s.work, s.Uh[comp])
	s.tr.FourierToPhysical(s.physU[comp], s.work)
	owner := s.slab.YOwner(iy)
	plane := make([]float64, n*n)
	if s.slab.Rank == owner {
		local := iy - s.slab.YLo()
		copy(plane, s.physU[comp][local*n*n:(local+1)*n*n])
		if owner != 0 {
			mpi.Send(s.comm, 0, slicesTag, plane)
		}
	}
	if s.slab.Rank == 0 && owner != 0 {
		mpi.Recv(s.comm, owner, slicesTag, plane)
	}
	s.comm.Barrier()
	if s.slab.Rank != 0 {
		return nil
	}
	return plane
}

const slicesTag = 7001

// WriteSlicePNG renders a row-major [ny][nx] plane as a PNG with a
// symmetric blue–white–red colormap centred on zero, the conventional
// rendering for velocity slices.
func WriteSlicePNG(w io.Writer, plane []float64, nx, ny int) error {
	if len(plane) != nx*ny {
		return fmt.Errorf("spectral: plane has %d values, want %d", len(plane), nx*ny)
	}
	var vmax float64
	for _, v := range plane {
		if a := math.Abs(v); a > vmax {
			vmax = a
		}
	}
	if vmax == 0 {
		vmax = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, nx, ny))
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			t := plane[j*nx+i] / vmax // −1…1
			img.Set(i, j, diverging(t))
		}
	}
	return png.Encode(w, img)
}

// diverging maps t ∈ [−1,1] to blue–white–red.
func diverging(t float64) color.RGBA {
	t = math.Max(-1, math.Min(1, t))
	if t < 0 {
		u := 1 + t // 0…1
		return color.RGBA{uint8(255 * u), uint8(255 * u), 255, 255}
	}
	u := 1 - t
	return color.RGBA{255, uint8(255 * u), uint8(255 * u), 255}
}
