package spectral

import (
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// solverMetrics are the per-rank step accounting handles. phase.step
// is the wall time of one Step call; phase.compute is the residual
// after subtracting the time spent inside the distributed transforms,
// i.e. the solver's own arithmetic (nonlinear products, integrating
// factors, projections). Together with the phase histograms the
// transform engines record (phase.fft/pack/a2a/unpack for the
// synchronous slab, phase.pipeline/a2a/unpack for the asynchronous
// pipeline), the leaf phases tile each step wall-to-wall, which is
// what makes the printed breakdown sum to the measured wall time.
type solverMetrics struct {
	step    *metrics.Histogram
	compute *metrics.Histogram
}

func newSolverMetrics(c *mpi.Comm) *solverMetrics {
	r := c.Metrics()
	return &solverMetrics{
		step:    r.HistogramRank("phase.step", c.Rank()),
		compute: r.HistogramRank("phase.compute", c.Rank()),
	}
}

// atSiteLabeler is implemented by asynchrony-tolerant transform
// engines that accept quantity labels for their bounded exchanges
// (pfft.SlabReal.SetATSite, core.AsyncSlabReal.SetATSite). The solver
// labels every transform call with its within-step index so a stale
// slab is only ever the same quantity from whole steps earlier.
type atSiteLabeler interface {
	SetATSite(site uint32)
}

// timedTransform wraps a Transform and accumulates the seconds spent
// inside its calls into a solver-owned accumulator, so Step can
// attribute its remaining wall time to compute. The accumulator is
// plain (not atomic): a Solver is driven by one rank goroutine.
//
// On asynchrony-tolerant engines the wrapper additionally stamps each
// transform call with the solver's running within-step site counter
// before delegating. The step loop is deterministic and identical on
// every rank, so call i of a step is always the same physical quantity
// on every rank — exactly the collective-consistency SetSite requires.
type timedTransform struct {
	inner Transform
	secs  *float64
	lab   atSiteLabeler // nil unless the solver runs asynchrony-tolerant
	site  *uint32       // solver-owned within-step call counter
}

func (t *timedTransform) stamp() {
	if t.lab != nil {
		t.lab.SetATSite(*t.site)
		*t.site++
	}
}

func (t *timedTransform) FourierToPhysical(phys []float64, four []complex128) {
	t.stamp()
	t0 := time.Now()
	t.inner.FourierToPhysical(phys, four)
	*t.secs += time.Since(t0).Seconds()
}

func (t *timedTransform) PhysicalToFourier(four []complex128, phys []float64) {
	t.stamp()
	t0 := time.Now()
	t.inner.PhysicalToFourier(four, phys)
	*t.secs += time.Since(t0).Seconds()
}

func (t *timedTransform) Slab() grid.Slab  { return t.inner.Slab() }
func (t *timedTransform) NXH() int         { return t.inner.NXH() }
func (t *timedTransform) FourierLen() int  { return t.inner.FourierLen() }
func (t *timedTransform) PhysicalLen() int { return t.inner.PhysicalLen() }
