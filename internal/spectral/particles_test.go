package spectral

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

// setUniformFlow gives the solver a constant velocity field (the k=0
// mode only), the one flow where particle advection is exact.
func setUniformFlow(s *Solver, u, v, w float64) {
	for c := 0; c < 3; c++ {
		zero(s.Uh[c])
	}
	if s.slab.ZOwner(0) == s.slab.Rank {
		n3 := float64(s.cfg.N)
		n3 = n3 * n3 * n3
		s.Uh[0][0] = complex(u*n3, 0)
		s.Uh[1][0] = complex(v*n3, 0)
		s.Uh[2][0] = complex(w*n3, 0)
	}
}

func TestParticlesUniformAdvectionExact(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0})
		setUniformFlow(s, 0.3, -0.2, 0.1)
		p := s.NewParticles(10, 5)
		x0 := append([][3]float64(nil), p.X...)
		dt := 0.05
		steps := 12
		for i := 0; i < steps; i++ {
			s.StepParticles(p, dt)
		}
		tEnd := dt * float64(steps)
		for i := range p.X {
			want := [3]float64{
				math.Mod(x0[i][0]+0.3*tEnd+4*math.Pi, 2*math.Pi),
				math.Mod(x0[i][1]-0.2*tEnd+4*math.Pi, 2*math.Pi),
				math.Mod(x0[i][2]+0.1*tEnd+4*math.Pi, 2*math.Pi),
			}
			for d := 0; d < 3; d++ {
				if math.Abs(periodicDelta(p.X[i][d]-want[d])) > 1e-12 {
					t.Fatalf("particle %d dim %d: %g want %g", i, d, p.X[i][d], want[d])
				}
			}
		}
		// Dispersion of uniform translation: |u|²·t².
		speed2 := 0.3*0.3 + 0.2*0.2 + 0.1*0.1
		want := speed2 * tEnd * tEnd
		if math.Abs(p.Dispersion()-want) > 1e-10 {
			t.Errorf("dispersion %g want %g", p.Dispersion(), want)
		}
	})
}

func TestParticleVelocityInterpolationAtNodes(t *testing.T) {
	// A particle exactly on a grid node must get the nodal velocity.
	mpi.Run(2, func(c *mpi.Comm) {
		n := 8
		s := NewSolver(c, Config{N: n, Nu: 0})
		s.SetTaylorGreen()
		s.syncPhysical()
		p := s.NewParticles(4, 1)
		h := 2 * math.Pi / float64(n)
		nodes := [][3]int{{1, 2, 3}, {0, 0, 0}, {7, 5, 2}, {4, 4, 4}}
		for i, nd := range nodes {
			p.X[i] = [3]float64{float64(nd[0]) * h, float64(nd[1]) * h, float64(nd[2]) * h}
		}
		v := make([][3]float64, len(p.X))
		s.interpVelocities(p, v)
		for i, nd := range nodes {
			x, y, z := float64(nd[0])*h, float64(nd[1])*h, float64(nd[2])*h
			wantU := math.Sin(x) * math.Cos(y) * math.Cos(z)
			wantV := -math.Cos(x) * math.Sin(y) * math.Cos(z)
			if math.Abs(v[i][0]-wantU) > 1e-12 || math.Abs(v[i][1]-wantV) > 1e-12 || math.Abs(v[i][2]) > 1e-12 {
				t.Fatalf("node %v: v=%v want (%g,%g,0)", nd, v[i], wantU, wantV)
			}
		}
	})
}

func TestParticlesAtTGStagnationPointStay(t *testing.T) {
	// (0,0,0) is a stagnation point of the Taylor–Green field: u=v=w=0
	// (sin(0)=0 for u; sin(0)=0 for v's y factor; w≡0).
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		s.SetTaylorGreen()
		p := s.NewParticles(1, 1)
		p.X[0] = [3]float64{0, 0, 0}
		p.x0[0] = p.X[0]
		for i := 0; i < 10; i++ {
			s.StepParticles(p, 0.02)
		}
		if d := p.Dispersion(); d > 1e-20 {
			t.Errorf("stagnation particle moved: dispersion %g", d)
		}
	})
}

func TestParticlesRankCountIndependent(t *testing.T) {
	positions := map[int][3]float64{}
	for _, ranks := range []int{1, 2, 4} {
		ranks := ranks
		mpi.Run(ranks, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
			s.SetRandomIsotropic(3, 0.5, 83)
			p := s.NewParticles(5, 7)
			for i := 0; i < 3; i++ {
				s.StepParticles(p, 0.01)
				s.Step(0.01)
			}
			if c.Rank() == 0 {
				positions[ranks] = p.X[2]
			}
		})
	}
	for _, ranks := range []int{2, 4} {
		for d := 0; d < 3; d++ {
			if math.Abs(positions[ranks][d]-positions[1][d]) > 1e-12 {
				t.Errorf("ranks=%d: particle position differs: %v vs %v",
					ranks, positions[ranks], positions[1])
			}
		}
	}
}

func TestParticleDispersionGrowsInTurbulence(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23,
			Forcing: NewForcing(2)})
		s.SetRandomIsotropic(2.5, 0.5, 89)
		p := s.NewParticles(32, 11)
		var prev float64
		for i := 0; i < 12; i++ {
			s.StepParticles(p, 0.01)
			s.Step(0.01)
			d := p.Dispersion()
			if d < prev {
				// Ballistic regime: dispersion must grow monotonically.
				t.Fatalf("dispersion shrank at step %d: %g < %g", i, d, prev)
			}
			prev = d
		}
		if prev == 0 {
			t.Error("particles did not move")
		}
	})
}

func TestPeriodicDelta(t *testing.T) {
	cases := map[float64]float64{
		0.1:             0.1,
		-0.1:            -0.1,
		2*math.Pi - 0.1: -0.1,
		math.Pi + 0.2:   -math.Pi + 0.2,
	}
	for in, want := range cases {
		if got := periodicDelta(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("periodicDelta(%g)=%g want %g", in, got, want)
		}
	}
}
