package spectral

// RotatingScalarNS is incompressible Navier–Stokes in a frame rotating
// about ẑ at rate Ω, carrying any number of passive scalars with
// per-scalar Schmidt numbers and optional imposed mean gradients:
//
//	∂u/∂t + u·∇u = −∇p − 2Ω·ẑ×u + ν∇²u
//	∂θ_i/∂t + u·∇θ_i = κ_i∇²θ_i − G_i·u_y,   κ_i = ν/Sc_i
//
// The Coriolis term does no work (it enters before the solenoidal
// projection and is perpendicular to u), so inviscid energy is
// conserved to scheme accuracy; its signature is the growth of
// component anisotropy, reported by the anisotropy.bzz diagnostic.
//
// Scalars ride the velocity transforms nearly free: the velocity's
// physical-space fields are computed once per stage by
// velocityProducts and reused for every scalar's advective flux, so
// each scalar adds only 1 inverse + 3 forward transforms — the
// companion-workload accounting of the paper's §3.3.
type RotatingScalarNS struct {
	nu      float64
	omega   float64
	scalars []scalarField

	physTh []float64 // one scalar in physical space (scratch)
}

// scalarField is the resolved per-scalar configuration.
type scalarField struct {
	kappa    float64
	meanGrad float64
}

func init() {
	RegisterSystem("rotating-scalar", newRotatingScalarNS)
}

func newRotatingScalarNS(spec SystemSpec) System {
	y := &RotatingScalarNS{nu: spec.Nu, omega: spec.Omega}
	for _, sp := range spec.Scalars {
		kappa := spec.Nu
		if sp.Schmidt > 0 {
			kappa = spec.Nu / sp.Schmidt
		}
		y.scalars = append(y.scalars, scalarField{kappa: kappa, meanGrad: sp.MeanGrad})
	}
	return y
}

// Name implements System.
func (y *RotatingScalarNS) Name() string { return "rotating-scalar" }

// Fields implements System: velocity plus one field per scalar.
func (y *RotatingScalarNS) Fields() int { return 3 + len(y.scalars) }

// Setup implements System: binds the scalar's physical-space scratch.
func (y *RotatingScalarNS) Setup(s *Solver) {
	if len(y.scalars) > 0 {
		y.physTh = make([]float64, s.tr.PhysicalLen())
	}
}

// Diffusivity implements System: ν for the velocity, κ_i = ν/Sc_i for
// scalar i.
func (y *RotatingScalarNS) Diffusivity(c int) float64 {
	if c < 3 {
		return y.nu
	}
	return y.scalars[c-3].kappa
}

// Nonlinear implements System: velocity products, Coriolis (before
// projection), projection, then each scalar's advection over the
// physical velocity left behind by velocityProducts.
//
//psdns:hotpath
func (y *RotatingScalarNS) Nonlinear(s *Solver, state, rhs [][]complex128) {
	s.velocityProducts(state, rhs)
	if y.omega != 0 {
		s.addCoriolis(state, rhs, y.omega)
	}
	s.projectAndDealias(rhs)
	for i := range y.scalars {
		y.scalarAdvection(s, state, rhs, 3+i)
	}
}

// scalarAdvection evaluates −ik·FFT{u·θ} − G·û_y (dealiased) for field
// c into rhs[c], reusing s.physU from the preceding velocityProducts
// call (including its phase shift, so scalar products are dealiased on
// the same shifted grid as the velocity's).
//
//psdns:hotpath
func (y *RotatingScalarNS) scalarAdvection(s *Solver, state, rhs [][]complex128, c int) {
	shift := s.cfg.Dealias == Dealias23Shift
	copy(s.work, state[c])
	if shift {
		s.applyShift(s.work, +1)
	}
	s.tr.FourierToPhysical(y.physTh, s.work)

	zero(rhs[c])
	for comp := 0; comp < 3; comp++ {
		u := s.physU[comp]
		for m := range s.prod {
			s.prod[m] = u[m] * y.physTh[m]
		}
		s.tr.PhysicalToFourier(s.work, s.prod)
		if shift {
			s.applyShift(s.work, -1)
		}
		s.accumulateGradientFlux(rhs[c], comp)
	}

	// Mean-gradient production −G·û_y and dealiasing.
	g := y.scalars[c-3].meanGrad
	gc := complex(g, 0)
	r, uy := rhs[c], state[1]
	for i := range r {
		if !s.mask[i] {
			r[i] = 0
			continue
		}
		if g != 0 {
			r[i] -= gc * uy[i]
		}
	}
}

// PostStep implements System.
//
//psdns:hotpath
func (y *RotatingScalarNS) PostStep(*Solver, float64) {}

// Diagnostics implements System: the energy budget, the rotation
// anisotropy measure b_zz = E_zz/E − 1/3 (zero for isotropy, negative
// as rotation drains the axial component), and each scalar's variance.
func (y *RotatingScalarNS) Diagnostics(s *Solver) []Diagnostic {
	e := s.Energy()
	d := []Diagnostic{
		{Name: "energy", Value: e},
		{Name: "dissipation", Value: s.Dissipation()},
		{Name: "rotation.rate", Value: y.omega},
	}
	if e > 0 {
		d = append(d, Diagnostic{Name: "anisotropy.bzz", Value: s.ComponentEnergy(2)/e - 1.0/3.0})
	}
	for i := range y.scalars {
		d = append(d, Diagnostic{Name: "scalar.variance", Value: s.FieldVariance(3 + i)})
	}
	return d
}

// accumulateGradientFlux adds −i·k_comp·ŝ to dst, where ŝ is the
// spectral flux component currently in s.work.
//
//psdns:hotpath
func (s *Solver) accumulateGradientFlux(dst []complex128, comp int) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := [3]float64{s.kxs[ix], ky, kz}[comp]
				v := s.work[idx]
				// −i·k·v = complex(k·imag, −k·real).
				dst[idx] += complex(k*imag(v), -k*real(v))
				idx++
			}
		}
	}
}
