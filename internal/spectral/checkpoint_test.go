package spectral

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/mpi"
)

func TestCheckpointRoundTripInMemory(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 1)
		for i := 0; i < 2; i++ {
			s.Step(0.004)
		}
		var buf bytes.Buffer
		if err := s.WriteCheckpointTo(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		s2 := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		if err := s2.ReadCheckpointFrom(&buf); err != nil {
			t.Fatalf("read: %v", err)
		}
		if s2.StepCount() != s.StepCount() || s2.Time() != s.Time() {
			t.Errorf("metadata: step %d/%d time %g/%g", s2.StepCount(), s.StepCount(), s2.Time(), s.Time())
		}
		for cmp := 0; cmp < 3; cmp++ {
			for i := range s.Uh[cmp] {
				if s.Uh[cmp][i] != s2.Uh[cmp][i] {
					t.Fatalf("component %d element %d differs", cmp, i)
				}
			}
		}
	})
}

func TestCheckpointRestartContinuesIdentically(t *testing.T) {
	// Run A: 6 steps straight. Run B: 3 steps, checkpoint to disk,
	// restore into a fresh solver, 3 more. Same fields (bitwise).
	dir := t.TempDir()
	n := 16
	cfg := Config{N: n, Nu: 0.02, Scheme: RK2, Dealias: Dealias23}
	var straight []complex128
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, cfg)
		s.SetRandomIsotropic(3, 0.5, 11)
		for i := 0; i < 6; i++ {
			s.Step(0.004)
		}
		if c.Rank() == 0 {
			straight = append([]complex128(nil), s.Uh[0]...)
		}
	})
	var restarted []complex128
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, cfg)
		s.SetRandomIsotropic(3, 0.5, 11)
		for i := 0; i < 3; i++ {
			s.Step(0.004)
		}
		if err := s.SaveCheckpoint(dir); err != nil {
			t.Errorf("save: %v", err)
		}
		s2 := NewSolver(c, cfg)
		if err := s2.LoadCheckpoint(dir); err != nil {
			t.Errorf("load: %v", err)
		}
		for i := 0; i < 3; i++ {
			s2.Step(0.004)
		}
		if s2.StepCount() != 6 {
			t.Errorf("step count %d", s2.StepCount())
		}
		if c.Rank() == 0 {
			restarted = append([]complex128(nil), s2.Uh[0]...)
		}
	})
	for i := range straight {
		if straight[i] != restarted[i] {
			t.Fatalf("restart diverged at element %d", i)
		}
	}
}

func TestCheckpointWithScalars(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(2, 0.4, 3)
		sc := s.NewScalar(0.07)
		sc.MeanGrad = 2.5
		s.SetScalarBlob(sc, 2, 0.3, 5)
		var buf bytes.Buffer
		if err := s.WriteCheckpointTo(&buf, sc); err != nil {
			t.Fatalf("write: %v", err)
		}
		s2 := NewSolver(c, Config{N: 8, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		sc2 := s2.NewScalar(0)
		if err := s2.ReadCheckpointFrom(&buf, sc2); err != nil {
			t.Fatalf("read: %v", err)
		}
		if sc2.kappa != 0.07 || sc2.MeanGrad != 2.5 {
			t.Errorf("scalar params: κ=%g G=%g", sc2.kappa, sc2.MeanGrad)
		}
		for i := range sc.Th {
			if sc.Th[i] != sc2.Th[i] {
				t.Fatalf("scalar element %d differs", i)
			}
		}
	})
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.02})
		s.SetRandomIsotropic(2, 0.4, 3)
		var buf bytes.Buffer
		if err := s.WriteCheckpointTo(&buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		data[len(data)/2] ^= 0xFF // flip a payload bit
		s2 := NewSolver(c, Config{N: 8, Nu: 0.02})
		err := s2.ReadCheckpointFrom(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), "crc") {
			t.Errorf("corruption not detected: %v", err)
		}
	})
}

func TestCheckpointRejectsGeometryMismatch(t *testing.T) {
	var blob []byte
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.02})
		var buf bytes.Buffer
		if err := s.WriteCheckpointTo(&buf); err != nil {
			t.Fatal(err)
		}
		blob = buf.Bytes()
	})
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		err := s.ReadCheckpointFrom(bytes.NewReader(blob))
		if err == nil || !strings.Contains(err.Error(), "N=8") {
			t.Errorf("geometry mismatch not detected: %v", err)
		}
	})
	// Wrong rank count.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.02})
		err := s.ReadCheckpointFrom(bytes.NewReader(blob))
		if err == nil {
			t.Error("rank-count mismatch not detected")
		}
	})
}

func TestCheckpointRejectsBadMagic(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.02})
		err := s.ReadCheckpointFrom(bytes.NewReader(make([]byte, 128)))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("bad magic not detected: %v", err)
		}
	})
}

func TestCheckpointEnergyPreserved(t *testing.T) {
	dir := t.TempDir()
	var e1, e2 float64
	mpi.Run(4, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 77)
		e := s.Energy()
		if err := s.SaveCheckpoint(dir); err != nil {
			t.Fatal(err)
		}
		s2 := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		if err := s2.LoadCheckpoint(dir); err != nil {
			t.Fatal(err)
		}
		ee := s2.Energy()
		if c.Rank() == 0 {
			e1, e2 = e, ee
		}
	})
	if math.Abs(e1-e2) > 1e-15 {
		t.Errorf("energy changed across checkpoint: %g vs %g", e1, e2)
	}
	// Files exist, one per rank.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 4 {
		t.Errorf("checkpoint dir: %v entries, err %v", len(entries), err)
	}
}

// A forced run must continue bitwise identically across a restart:
// version-2 checkpoints record the forcing controller (KF, Eps,
// TCorr, Seed), and the phase walk is stateless given seed and step,
// so restoring those four values restores the stochastic trajectory
// exactly — even into a solver constructed with different forcing
// parameters.
func TestCheckpointForcedSystemRestartContinuesIdentically(t *testing.T) {
	dir := t.TempDir()
	const n, steps = 16, 3
	opts := []Option{WithNu(0.02), WithScheme(RK2), WithDealias(Dealias23),
		WithForcing(2, 0.1), WithForcingNoise(0.5, 42)}
	var straight []complex128
	mpi.Run(2, func(c *mpi.Comm) {
		s := New(c, n, opts...)
		s.SetRandomIsotropic(3, 0.5, 11)
		for i := 0; i < 2*steps; i++ {
			s.Step(0.004)
		}
		if c.Rank() == 0 {
			straight = append([]complex128(nil), s.Uh[0]...)
		}
	})
	var restarted []complex128
	mpi.Run(2, func(c *mpi.Comm) {
		s := New(c, n, opts...)
		s.SetRandomIsotropic(3, 0.5, 11)
		for i := 0; i < steps; i++ {
			s.Step(0.004)
		}
		if err := s.SaveCheckpoint(dir); err != nil {
			t.Errorf("save: %v", err)
		}
		// Deliberately different forcing numbers: the restore must
		// overwrite them with the checkpointed controller state.
		s2 := New(c, n, WithNu(0.02), WithScheme(RK2), WithDealias(Dealias23),
			WithForcing(3, 0.7), WithForcingNoise(0.1, 7))
		if err := s2.LoadCheckpoint(dir); err != nil {
			t.Errorf("load: %v", err)
		}
		fn := s2.System().(interface{ Forcing() *StochasticForcing }).Forcing()
		if fn.KF != 2 || fn.Eps != 0.1 || fn.TCorr != 0.5 || fn.Seed != 42 {
			t.Errorf("forcing state not restored: KF=%d Eps=%g TCorr=%g Seed=%d",
				fn.KF, fn.Eps, fn.TCorr, fn.Seed)
		}
		for i := 0; i < steps; i++ {
			s2.Step(0.004)
		}
		if c.Rank() == 0 {
			restarted = append([]complex128(nil), s2.Uh[0]...)
		}
	})
	for i := range straight {
		if straight[i] != restarted[i] {
			t.Fatalf("forced restart diverged at element %d", i)
		}
	}
}

// Restoring into a different equation set must be rejected by name,
// in both directions, rather than misread positionally.
func TestCheckpointRejectsSystemMismatch(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		forced := New(c, 8, WithNu(0.02), WithForcing(2, 0.1))
		var buf bytes.Buffer
		if err := forced.WriteCheckpointTo(&buf); err != nil {
			t.Fatal(err)
		}
		plain := New(c, 8, WithNu(0.02))
		err := plain.ReadCheckpointFrom(bytes.NewReader(buf.Bytes()))
		if err == nil || !strings.Contains(err.Error(), "forced-ns") {
			t.Errorf("forced→ns not rejected: %v", err)
		}

		buf.Reset()
		if err := plain.WriteCheckpointTo(&buf); err != nil {
			t.Fatal(err)
		}
		forced2 := New(c, 8, WithNu(0.02), WithForcing(2, 0.1))
		err = forced2.ReadCheckpointFrom(bytes.NewReader(buf.Bytes()))
		if err == nil || !strings.Contains(err.Error(), `"ns"`) {
			t.Errorf("ns→forced not rejected: %v", err)
		}
	})
}

// writeCkptV1 reproduces the version-1 on-disk layout byte for byte
// (fixed header, three velocity fields, CRC trailer) so the
// compatibility path is pinned against real legacy files.
func writeCkptV1(s *Solver) []byte {
	var buf bytes.Buffer
	crc := crc32.NewIEEE()
	out := io.MultiWriter(&buf, crc)
	hdr := ckptHeader{
		Magic:   ckptMagic,
		Version: 1,
		N:       uint64(s.cfg.N),
		Ranks:   uint64(s.comm.Size()),
		Rank:    uint64(s.slab.Rank),
		Step:    uint64(s.step),
		Time:    s.time,
		Nu:      s.cfg.Nu,
		Fields:  3,
	}
	binary.Write(out, binary.LittleEndian, &hdr)
	for c := 0; c < 3; c++ {
		binary.Write(out, binary.LittleEndian, s.Uh[c])
	}
	binary.Write(&buf, binary.LittleEndian, crc.Sum32())
	return buf.Bytes()
}

// Version-1 files stay readable for the plain "ns" system they were
// written under, and are explicitly rejected by systems they cannot
// describe.
func TestCheckpointV1Compat(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		src := New(c, 8, WithNu(0.02))
		src.SetRandomIsotropic(2, 0.4, 5)
		blob := writeCkptV1(src)

		dst := New(c, 8, WithNu(0.02))
		if err := dst.ReadCheckpointFrom(bytes.NewReader(blob)); err != nil {
			t.Fatalf("v1 read into ns: %v", err)
		}
		for cmp := 0; cmp < 3; cmp++ {
			for i := range src.Uh[cmp] {
				if src.Uh[cmp][i] != dst.Uh[cmp][i] {
					t.Fatalf("v1 component %d element %d differs", cmp, i)
				}
			}
		}

		forced := New(c, 8, WithNu(0.02), WithForcing(2, 0.1))
		err := forced.ReadCheckpointFrom(bytes.NewReader(blob))
		if err == nil || !strings.Contains(err.Error(), "version-1") {
			t.Errorf("v1 into forced-ns not rejected: %v", err)
		}
	})
}
