package spectral

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestScalarPureDiffusionIsExact(t *testing.T) {
	// With zero velocity the scalar obeys ∂θ/∂t = κ∇²θ exactly:
	// a single mode decays as exp(−κk²t) via the integrating factor.
	n := 16
	kappa := 0.04
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: n, Nu: 0.1, Scheme: RK2, Dealias: Dealias23})
		sc := s.NewScalar(kappa)
		s.SetScalarSingleMode(sc, 2, 1, -1, complex(0.5, 0.25))
		v0 := s.ScalarVariance(sc)
		dt := 0.01
		steps := 15
		for i := 0; i < steps; i++ {
			s.StepWithScalar(sc, dt)
		}
		k2 := 4.0 + 1.0 + 1.0
		want := v0 * math.Exp(-2*kappa*k2*float64(steps)*dt)
		got := s.ScalarVariance(sc)
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Errorf("diffusion decay: got %g want %g (rel %g)", got, want, rel)
		}
	})
}

func TestScalarAdvectionConservesVariance(t *testing.T) {
	// With κ=0, advection by an incompressible field only rearranges
	// θ: the dealiased Galerkin system conserves ⟨θ²⟩ up to time
	// discretization error (O(dt²) per step for Heun).
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0, Scheme: RK2, Dealias: Dealias23})
		s.SetTaylorGreen()
		sc := s.NewScalar(0)
		s.SetScalarBlob(sc, 2.5, 1.0, 3)
		v0 := s.ScalarVariance(sc)
		dt := 1e-3
		for i := 0; i < 10; i++ {
			s.StepWithScalar(sc, dt)
		}
		v1 := s.ScalarVariance(sc)
		if rel := math.Abs(v1-v0) / v0; rel > 1e-5 {
			t.Errorf("variance drift %g over 10 inviscid steps", rel)
		}
	})
}

func TestScalarVarianceBalance(t *testing.T) {
	// Unforced: d⟨θ²⟩/dt = −2χ where χ = 2κΣk²E_θ... with our
	// convention d(⟨θ²⟩)/dt = −2·χ̃, χ̃ = κ⟨|∇θ|²⟩. Check numerically.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.03, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.4, 5)
		sc := s.NewScalar(0.05)
		s.SetScalarBlob(sc, 3, 0.8, 9)
		v0 := s.ScalarVariance(sc)
		chi := s.ScalarDissipation(sc)
		dt := 5e-4
		s.StepWithScalar(sc, dt)
		v1 := s.ScalarVariance(sc)
		dVdt := (v1 - v0) / dt
		// d⟨θ²⟩/dt = −2·κ⟨|∇θ|²⟩ = −2·χ (χ as returned).
		if rel := math.Abs(dVdt+2*chi) / (2 * chi); rel > 0.05 {
			t.Errorf("variance balance: d⟨θ²⟩/dt=%g want %g (rel %g)", dVdt, -2*chi, rel)
		}
	})
}

func TestScalarMeanGradientProducesVariance(t *testing.T) {
	// With an imposed mean gradient and zero initial fluctuations, the
	// production term −G·u_y must generate scalar variance.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 7)
		sc := s.NewScalar(0.02)
		sc.MeanGrad = 1.0
		for i := 0; i < 5; i++ {
			s.StepWithScalar(sc, 0.005)
		}
		if v := s.ScalarVariance(sc); v <= 0 {
			t.Errorf("no variance produced: %g", v)
		}
	})
}

func TestScalarSpectrumSumsToHalfVariance(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		sc := s.NewScalar(0.01)
		s.SetScalarBlob(sc, 3, 0.6, 13)
		spec := s.ScalarSpectrum(sc)
		var sum float64
		for _, e := range spec {
			sum += e
		}
		v := s.ScalarVariance(sc)
		if math.Abs(sum-v/2) > 1e-10*v {
			t.Errorf("ΣE_θ=%g vs ⟨θ²⟩/2=%g", sum, v/2)
		}
	})
}

func TestScalarRankCountIndependence(t *testing.T) {
	results := map[int]float64{}
	var mu sync.Mutex
	for _, p := range []int{1, 2, 4} {
		p := p
		mpi.Run(p, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
			s.SetRandomIsotropic(3, 0.5, 21)
			sc := s.NewScalar(0.03)
			s.SetScalarBlob(sc, 2.5, 0.7, 22)
			for i := 0; i < 3; i++ {
				s.StepWithScalar(sc, 0.004)
			}
			v := s.ScalarVariance(sc)
			if c.Rank() == 0 {
				mu.Lock()
				results[p] = v
				mu.Unlock()
			}
		})
	}
	for _, p := range []int{2, 4} {
		if math.Abs(results[p]-results[1]) > 1e-12*results[1] {
			t.Errorf("P=%d variance %.15g differs from P=1 %.15g", p, results[p], results[1])
		}
	}
}

func TestScalarBlobDeterministic(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.01})
		a := s.NewScalar(0.01)
		b := s.NewScalar(0.01)
		s.SetScalarBlob(a, 2, 0.5, 99)
		s.SetScalarBlob(b, 2, 0.5, 99)
		for i := range a.Th {
			if a.Th[i] != b.Th[i] {
				t.Fatalf("non-deterministic IC at %d", i)
			}
		}
	})
}

func TestScalarRequiresRK2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for RK4 coupled step")
		}
	}()
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.01, Scheme: RK4})
		sc := s.NewScalar(0.01)
		s.StepWithScalar(sc, 0.01)
	})
}

func TestScalarRejectsNegativeDiffusivity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.01})
		s.NewScalar(-1)
	})
}
