package spectral

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/grid"
)

// SetTaylorGreen initializes the classical Taylor–Green vortex
//
//	u =  sin x · cos y · cos z
//	v = −cos x · sin y · cos z
//	w = 0
//
// directly in Fourier space (it occupies only the |k_i| = 1 modes), a
// solenoidal analytic field used for physics validation. Stored
// coefficients are in code units (N³·û_math).
func (s *Solver) SetTaylorGreen() {
	for c := 0; c < 3; c++ {
		zero(s.Uh[c])
	}
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	set := func(c, ix, ky, kz int, v complex128) {
		gy := (ky + n) % n
		gz := (kz + n) % n
		if s.slab.ZOwner(gz) != s.slab.Rank {
			return
		}
		iz := gz - s.slab.ZLo()
		s.Uh[c][(iz*n+gy)*s.nxh+ix] = v * complex(n3, 0)
	}
	for _, ky := range []int{1, -1} {
		for _, kz := range []int{1, -1} {
			// û(1,±1,±1) = −i/8 (from sin x·cos y·cos z).
			set(0, 1, ky, kz, complex(0, -0.125))
			// v̂(1,ky,kz) = +i·sign(ky)/8 (from −cos x·sin y·cos z).
			set(1, 1, ky, kz, complex(0, 0.125*float64(ky)))
		}
	}
}

// conjPairIndex maps a (y,z) index pair to its conjugate partner
// ((n−iy) mod n, (n−iz) mod n) in the kx=0 / kx=N/2 planes.
func conjPairIndex(iy, iz, n int) (int, int) {
	return (n - iy) % n, (n - iz) % n
}

// SetRandomIsotropic initializes a solenoidal Gaussian random field
// whose energy spectrum follows E(k) ∝ k⁴·exp(−2(k/k0)²), normalized
// to total energy e0. The construction is deterministic in seed and
// identical for any rank count: every mode's random numbers are keyed
// by its global index, and conjugate symmetry on the kx=0 and kx=N/2
// planes is enforced by deriving the non-canonical partner of each
// pair from the canonical one.
func (s *Solver) SetRandomIsotropic(k0, e0 float64, seed int64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		gz := s.slab.ZLo() + iz
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < nxh; ix++ {
				v := s.modeIC(ix, iy, gz, k0, seed)
				s.Uh[0][idx], s.Uh[1][idx], s.Uh[2][idx] = v[0], v[1], v[2]
				idx++
			}
		}
	}
	// Rescale to the requested energy (collective).
	e := s.Energy()
	if e > 0 {
		scale := complex(math.Sqrt(e0/e), 0)
		for c := 0; c < 3; c++ {
			for i := range s.Uh[c] {
				s.Uh[c][i] *= scale
			}
		}
	}
}

// modeIC returns the solenoidal random initial value of global mode
// (ix, iy, gz), respecting conjugate symmetry.
func (s *Solver) modeIC(ix, iy, gz int, k0 float64, seed int64) [3]complex128 {
	n := s.cfg.N
	if ix == 0 || ix == n/2 {
		py, pz := conjPairIndex(iy, gz, n)
		if py == iy && pz == gz {
			// Self-conjugate mode: must be real.
			v := s.rawModeIC(ix, iy, gz, k0, seed)
			for c := range v {
				v[c] = complex(real(v[c]), 0)
			}
			return v
		}
		// Canonical representative: lexicographically smaller (gz, iy).
		if gz > pz || (gz == pz && iy > py) {
			v := s.rawModeIC(ix, py, pz, k0, seed)
			for c := range v {
				v[c] = cmplx.Conj(v[c])
			}
			return v
		}
	}
	return s.rawModeIC(ix, iy, gz, k0, seed)
}

// rawModeIC generates the unsymmetrized solenoidal random value of a
// global mode from its own deterministic RNG stream.
func (s *Solver) rawModeIC(ix, iy, gz int, k0 float64, seed int64) [3]complex128 {
	n := s.cfg.N
	kx := float64(ix)
	ky := float64(grid.Wavenumber(iy, n))
	kz := float64(grid.Wavenumber(gz, n))
	k2 := kx*kx + ky*ky + kz*kz
	var v [3]complex128
	if k2 == 0 {
		return v
	}
	k := math.Sqrt(k2)
	// Keep the spectrum inside the dealiased band.
	if kx > float64(n)/3 || math.Abs(ky) > float64(n)/3 || math.Abs(kz) > float64(n)/3 {
		return v
	}
	rng := rand.New(rand.NewSource(seed ^ int64(((gz*n)+iy)*(n/2+1)+ix)*2654435761))
	amp := k * k * math.Exp(-(k/k0)*(k/k0))
	for c := 0; c < 3; c++ {
		ph := 2 * math.Pi * rng.Float64()
		v[c] = cmplx.Rect(amp*(0.5+rng.Float64()), ph)
	}
	dot := (complex(kx, 0)*v[0] + complex(ky, 0)*v[1] + complex(kz, 0)*v[2]) / complex(k2, 0)
	v[0] -= complex(kx, 0) * dot
	v[1] -= complex(ky, 0) * dot
	v[2] -= complex(kz, 0) * dot
	return v
}

// SetFieldSingleMode initializes spectral field c (for scalar-carrying
// systems, fields 3… are the scalars) with one Fourier mode, enforcing
// conjugate symmetry on the kx ∈ {0, N/2} planes.
func (s *Solver) SetFieldSingleMode(c, kx, ky, kz int, amp complex128) {
	zero(s.state[c])
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	gy := (ky + n) % n
	gz := (kz + n) % n
	put := func(gy, gz int, v complex128) {
		if s.slab.ZOwner(gz) != s.slab.Rank {
			return
		}
		iz := gz - s.slab.ZLo()
		s.state[c][(iz*n+gy)*s.nxh+kx] = v * complex(n3, 0)
	}
	put(gy, gz, amp)
	if kx == 0 || kx == n/2 {
		py, pz := conjPairIndex(gy, gz, n)
		if py != gy || pz != gz {
			put(py, pz, complex(real(amp), -imag(amp)))
		}
	}
}

// SetFieldBlob initializes spectral field c with a smooth
// low-wavenumber random field (one component of the solenoidal
// velocity-IC construction, rank-count invariant), variance normalized
// to v0.
func (s *Solver) SetFieldBlob(c int, k0, v0 float64, seed int64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		gz := s.slab.ZLo() + iz
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < nxh; ix++ {
				v := s.modeIC(ix, iy, gz, k0, seed)
				s.state[c][idx] = v[0]
				idx++
			}
		}
	}
	va := s.FieldVariance(c)
	if va > 0 {
		sf := complex(math.Sqrt(v0/va), 0)
		for i := range s.state[c] {
			s.state[c][i] *= sf
		}
	}
}

// SetSingleMode places one solenoidal Fourier mode with the given
// signed wavenumbers and amplitude (useful for exact-decay tests).
// The amplitude vector must be perpendicular to k; kx must be ≥ 0.
// Conjugate symmetry on the kx=0 plane is enforced automatically.
func (s *Solver) SetSingleMode(kx, ky, kz int, amp [3]complex128) {
	for c := 0; c < 3; c++ {
		zero(s.Uh[c])
	}
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	put := func(ix, gy, gz int, v [3]complex128) {
		if s.slab.ZOwner(gz) != s.slab.Rank {
			return
		}
		iz := gz - s.slab.ZLo()
		idx := (iz*n+gy)*s.nxh + ix
		for c := 0; c < 3; c++ {
			s.Uh[c][idx] = v[c] * complex(n3, 0)
		}
	}
	gy := (ky + n) % n
	gz := (kz + n) % n
	put(kx, gy, gz, amp)
	if kx == 0 || kx == n/2 {
		py, pz := conjPairIndex(gy, gz, n)
		if py != gy || pz != gz {
			var conj [3]complex128
			for c := 0; c < 3; c++ {
				conj[c] = cmplx.Conj(amp[c])
			}
			put(kx, py, pz, conj)
		}
	}
}
