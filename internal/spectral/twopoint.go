package spectral

import (
	"math"

	"repro/internal/mpi"
)

// Two-point statistics: the correlation functions and structure
// functions whose scale-by-scale behaviour (inertial ranges, the
// approach to the 4/5 law) is the scientific payoff of large grids.

// LongitudinalCorrelation returns R(r) = ⟨u(x)·u(x+r·x̂)⟩ for the
// x-component at grid separations r = 0…N/2, computed in spectral
// space: R(r) = Σ_k |û|²·cos(k_x·r·Δx) (collective, no transforms).
func (s *Solver) LongitudinalCorrelation() []float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	nr := n/2 + 1
	out := make([]float64, nr)
	dx := 2 * math.Pi / float64(n)
	// Accumulate the x-wavenumber marginal of |û₀|² first (cheap), then
	// do the cosine sum once per separation.
	marg := make([]float64, nxh)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < nxh; ix++ {
				v := s.Uh[0][idx]
				marg[ix] += specWeight(ix, n) * (real(v)*real(v) + imag(v)*imag(v)) * inv
				idx++
			}
		}
	}
	mpi.AllreduceSum(s.comm, marg)
	for r := 0; r < nr; r++ {
		var acc float64
		for ix := 0; ix < nxh; ix++ {
			acc += marg[ix] * math.Cos(float64(ix)*float64(r)*dx)
		}
		out[r] = acc
	}
	return out
}

// IntegralScale returns the longitudinal integral length scale
// L11 = ∫f(r)dr with f = R/R(0), integrated by the trapezoidal rule up
// to the first zero crossing (the standard finite-box convention;
// collective).
func (s *Solver) IntegralScale() float64 {
	rr := s.LongitudinalCorrelation()
	if rr[0] <= 0 {
		return 0
	}
	dx := 2 * math.Pi / float64(s.cfg.N)
	var l float64
	prev := 1.0
	for r := 1; r < len(rr); r++ {
		f := rr[r] / rr[0]
		if f < 0 {
			// Interpolate to the zero crossing and stop.
			l += dx * prev * prev / (prev - f) / 2
			break
		}
		l += dx * (prev + f) / 2
		prev = f
	}
	return l
}

// StructureFunction2 returns S₂(r) = ⟨(u(x+r·x̂)−u(x))²⟩ for the
// longitudinal component at grid separations r = 0…N/2, from the
// correlation identity S₂ = 2(R(0) − R(r)) (collective).
func (s *Solver) StructureFunction2() []float64 {
	rr := s.LongitudinalCorrelation()
	out := make([]float64, len(rr))
	for r := range rr {
		out[r] = 2 * (rr[0] - rr[r])
	}
	return out
}

// StructureFunction3 returns S₃(r) = ⟨(δu)³⟩ for the longitudinal
// increment, computed in physical space (one inverse transform plus
// N/2 shifted products; collective). Kolmogorov's 4/5 law predicts
// S₃ → −(4/5)·ε·r in an inertial range.
func (s *Solver) StructureFunction3() []float64 {
	n := s.cfg.N
	copy(s.work, s.Uh[0])
	s.tr.FourierToPhysical(s.physU[0], s.work)
	u := s.physU[0]
	my := s.slab.MY()
	nr := n/2 + 1
	sums := make([]float64, nr)
	for iy := 0; iy < my; iy++ {
		for iz := 0; iz < n; iz++ {
			row := u[(iy*n+iz)*n : (iy*n+iz)*n+n]
			for r := 1; r < nr; r++ {
				var acc float64
				for ix := 0; ix < n; ix++ {
					d := row[(ix+r)%n] - row[ix]
					acc += d * d * d
				}
				sums[r] += acc
			}
		}
	}
	mpi.AllreduceSum(s.comm, sums)
	n3 := float64(n) * float64(n) * float64(n)
	for r := range sums {
		sums[r] /= n3
	}
	return sums
}

// TransferSpectrum returns T(k), the shell-summed rate of energy
// transfer into wavenumber shell k by the nonlinear term. The net
// transfer ΣT(k) vanishes for the dealiased Galerkin system
// (collective; evaluates the nonlinear term: 9 transforms).
func (s *Solver) TransferSpectrum() []float64 {
	s.nonlinear(&s.Uh)
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	spec := make([]float64, int(math.Sqrt(3)*float64(n)/2)+2)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell < len(spec) {
					w := specWeight(ix, n)
					var tr float64
					for c := 0; c < 3; c++ {
						u := s.Uh[c][idx]
						f := s.nl[c][idx]
						tr += real(u)*real(f) + imag(u)*imag(f)
					}
					spec[shell] += w * tr * inv
				}
				idx++
			}
		}
	}
	mpi.AllreduceSum(s.comm, spec)
	return spec
}
