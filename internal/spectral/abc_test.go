package spectral

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestABCFlowFieldValues(t *testing.T) {
	// Pointwise check against the analytic ABC formulas.
	n := 16
	a, b, c := 1.0, 0.7, 0.4
	mpi.Run(2, func(cm *mpi.Comm) {
		s := NewSolver(cm, Config{N: n, Nu: 0})
		s.SetABCFlow(a, b, c)
		s.syncPhysical()
		h := 2 * math.Pi / float64(n)
		my := s.slab.MY()
		for iy := 0; iy < my; iy++ {
			y := float64(s.slab.YLo()+iy) * h
			for iz := 0; iz < n; iz++ {
				z := float64(iz) * h
				for ix := 0; ix < n; ix++ {
					x := float64(ix) * h
					idx := (iy*n+iz)*n + ix
					wantU := a*math.Sin(z) + c*math.Cos(y)
					wantV := b*math.Sin(x) + a*math.Cos(z)
					wantW := c*math.Sin(y) + b*math.Cos(x)
					if math.Abs(s.physU[0][idx]-wantU) > 1e-12 ||
						math.Abs(s.physU[1][idx]-wantV) > 1e-12 ||
						math.Abs(s.physU[2][idx]-wantW) > 1e-12 {
						t.Fatalf("(%g,%g,%g): got (%g,%g,%g) want (%g,%g,%g)",
							x, y, z, s.physU[0][idx], s.physU[1][idx], s.physU[2][idx],
							wantU, wantV, wantW)
					}
				}
			}
		}
	})
}

func TestABCFlowIsBeltrami(t *testing.T) {
	// ω = u for the unit-wavenumber ABC field: H = 2E and Ω = E.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		s.SetABCFlow(1, 0.8, 0.6)
		e := s.Energy()
		hel := s.Helicity()
		om := s.Enstrophy()
		if math.Abs(hel-2*e) > 1e-12*e {
			t.Errorf("H=%g want 2E=%g", hel, 2*e)
		}
		if math.Abs(om-e) > 1e-12*e {
			t.Errorf("Ω=%g want E=%g", om, e)
		}
		// Divergence-free by construction.
		if d := s.DivergenceMax(); d > 1e-14 {
			t.Errorf("divergence %g", d)
		}
	})
}

func TestABCFlowExactNavierStokesDecay(t *testing.T) {
	// The Beltrami property makes u(t) = u(0)·e^{−νt} an exact solution
	// of the FULL nonlinear Navier–Stokes equations. The solver, with
	// its complete nonlinear term active, must reproduce the decay to
	// integrator accuracy — this exercises transforms, products,
	// projection and time stepping end to end at finite amplitude.
	nu := 0.05
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: nu, Scheme: RK2, Dealias: Dealias23})
		s.SetABCFlow(1, 0.9, 0.8)
		e0 := s.Energy()
		dt := 0.01
		steps := 30
		for i := 0; i < steps; i++ {
			s.Step(dt)
		}
		want := e0 * math.Exp(-2*nu*float64(steps)*dt)
		got := s.Energy()
		if rel := math.Abs(got-want) / want; rel > 1e-8 {
			t.Errorf("ABC decay: got %.12g want %.12g (rel %g)", got, want, rel)
		}
		// The flow shape is preserved: still Beltrami.
		if hel := s.Helicity(); math.Abs(hel-2*got) > 1e-9*got {
			t.Errorf("helicity drifted: H=%g vs 2E=%g", hel, 2*got)
		}
	})
}

func TestABCFlowDecayOnAsyncEngineMatches(t *testing.T) {
	// The same exactness must hold through the asynchronous pipeline —
	// run via the public Transform seam used by the DNS benchmarks.
	nu := 0.05
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: nu, Scheme: RK4, Dealias: Dealias23})
		s.SetABCFlow(0.5, 0.5, 0.5)
		e0 := s.Energy()
		for i := 0; i < 10; i++ {
			s.Step(0.01)
		}
		want := e0 * math.Exp(-2*nu*0.1)
		if rel := math.Abs(s.Energy()-want) / want; rel > 1e-10 {
			t.Errorf("RK4 ABC decay rel err %g", rel)
		}
	})
}

func TestHelicitySpectrumSumsToHelicity(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		s.SetRandomIsotropic(3, 0.5, 91)
		spec := s.HelicitySpectrum()
		var sum float64
		for _, v := range spec {
			sum += v
		}
		hel := s.Helicity()
		if math.Abs(sum-hel) > 1e-10*math.Abs(hel)+1e-14 {
			t.Errorf("ΣH(k)=%g vs H=%g", sum, hel)
		}
		// The ABC field concentrates all helicity in shell 1.
		s.SetABCFlow(1, 1, 1)
		spec = s.HelicitySpectrum()
		if math.Abs(spec[1]-s.Helicity()) > 1e-12 {
			t.Errorf("ABC helicity not in shell 1: %v", spec[:3])
		}
	})
}

func TestTaylorGreenHasZeroHelicity(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		s.SetTaylorGreen()
		if h := s.Helicity(); math.Abs(h) > 1e-13 {
			t.Errorf("TG helicity %g, want 0 (mirror-symmetric flow)", h)
		}
	})
}
