// Package spectral implements the Fourier pseudo-spectral direct
// numerical simulation of forced/decaying isotropic turbulence that the
// paper's GPU algorithm accelerates: the incompressible Navier–Stokes
// equations on a 2π-periodic cube, advanced in Fourier space with
// explicit RK2 or RK4 for the nonlinear term and an exact integrating
// factor for the viscous term (Eq 2 of the paper), with mass
// conservation enforced by projecting the nonlinear term perpendicular
// to the wavenumber vector.
//
// Nonlinear terms are evaluated pseudo-spectrally: the three velocity
// components are transformed to physical space (y, z, x order), the six
// distinct products u_iu_j are formed there on unit-stride real data,
// transformed back, and differentiated spectrally, giving the
// divergence form ∇·(uu). Aliasing errors are controlled by 2/3-rule
// truncation optionally combined with phase shifting (Rogallo 1981).
//
// Fourier coefficients are stored in "code units": û_code = N³·û_math,
// the natural convention when the forward transform is unnormalized and
// the inverse carries the 1/N³ factor. All diagnostics account for it.
package spectral
