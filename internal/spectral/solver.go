package spectral

import (
	"fmt"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pfft"
)

// Scheme selects the explicit time integrator for the nonlinear term.
type Scheme int

const (
	// RK2 is the second-order Runge–Kutta (Heun) scheme the paper
	// reports timings for.
	RK2 Scheme = iota
	// RK4 is the classical fourth-order scheme; roughly twice the cost
	// per step with a small amount of extra storage (§2 of the paper).
	RK4
)

// Dealias selects the aliasing control applied to nonlinear products.
type Dealias int

const (
	// DealiasNone applies no truncation (only for analytic tests whose
	// spectra vanish well below the grid cutoff).
	DealiasNone Dealias = iota
	// Dealias23 zeroes every mode with |k_i| > N/3 (2/3-rule).
	Dealias23
	// Dealias23Shift combines 2/3 truncation with grid phase shifting,
	// the Rogallo treatment referenced in §2.
	Dealias23Shift
)

// Config describes one simulation.
type Config struct {
	N       int     // grid points per direction (even)
	Nu      float64 // kinematic viscosity
	Scheme  Scheme
	Dealias Dealias
	// Forcing, when non-nil, is applied after each step to sustain
	// stationary turbulence.
	//
	// Deprecated: the legacy deterministic band forcing allocates per
	// step and freezes shell energies rather than controlling the
	// injection rate. New code should select the "forced-ns" system
	// (New with WithForcing), whose StochasticForcing controller is
	// allocation-free and injects at a prescribed rate.
	Forcing *Forcing
}

// Transform is the distributed 3D transform pair the solver advances
// fields through. pfft.SlabReal is the synchronous reference; the
// batched asynchronous GPU pipeline of internal/core implements the
// same contract, so the full DNS can run on either engine.
type Transform interface {
	// FourierToPhysical converts [mz][ny][nxh] complex (code units)
	// into [my][nz][nx] real, applying 1/N³; the input is scratch.
	FourierToPhysical(phys []float64, four []complex128)
	// PhysicalToFourier is the unnormalized adjoint direction.
	PhysicalToFourier(four []complex128, phys []float64)
	Slab() grid.Slab
	NXH() int
	FourierLen() int
	PhysicalLen() int
}

// difGroup is a run of consecutive fields sharing one diffusion
// coefficient, precomputed so the integrating factor evaluates one
// exponential per mode per distinct ν rather than per field.
type difGroup struct {
	nu     float64
	lo, hi int // fields [lo, hi)
}

// Solver advances one equation set (a System) on one MPI rank of a
// slab-decomposed domain. All ranks of the communicator must construct
// a Solver and call its collective methods (Step, Energy, …) in the
// same order.
//
// The Solver owns the numerics — field storage, RK stage buffers,
// wavenumber tables, the dealias mask, distributed transforms — and
// delegates the physics to its System. The default System is decaying
// incompressible Navier–Stokes.
type Solver struct {
	comm *mpi.Comm
	cfg  Config
	slab grid.Slab
	tr   Transform
	nxh  int

	sys System
	nf  int // sys.Fields()

	// state holds all nf spectral fields, each [mz][ny][nxh] in code
	// units (N³·û). The first three entries are the solenoidal
	// velocity; Uh aliases them so velocity-specific diagnostics and
	// pre-registry callers keep their familiar handle.
	state [][]complex128
	Uh    [3][]complex128

	// Scratch for the pseudo-spectral nonlinear term.
	physU [3][]float64   // velocity in physical space
	prod  []float64      // one product field at a time
	nl    [][]complex128 // per-field right-hand side
	work  []complex128
	save  [][]complex128 // RK substage storage
	acc   [][]complex128 // RK4 accumulator
	wrap3 [][]complex128 // header scratch for the legacy 3-field entry points
	// RK4 stage storage, hoisted out of the step loop (allocated once
	// at construction when the scheme needs it, never per step):
	// rk1..rk3 hold k1, k2 and E½·k3; rku holds the stage state the
	// next nonlinear term is evaluated at.
	rk1 [][]complex128
	rk2 [][]complex128
	rk3 [][]complex128
	rku [][]complex128

	// difGroups are the distinct-diffusivity field runs the integrating
	// factor iterates over (empty for the inviscid case).
	difGroups []difGroup

	// Wavenumber tables for the local Fourier slab.
	kxs []float64 // length nxh
	kys []float64 // length n
	kzs []float64 // length mz (global z = zLo+iz)

	mask []bool // dealias mask over the local slab (true = keep)

	step  int
	time  float64
	shift [3]float64 // current phase shift (Dealias23Shift)

	met    *solverMetrics
	trSecs float64 // seconds inside transform calls this step

	// Asynchrony-tolerant stepping (WithAsyncTolerance): atSrc drains
	// the transform's staleness window once per step; prevNl holds the
	// previous step's first-stage nonlinear term for the first-order
	// staleness correction. atSteps counts the steps a nonzero
	// correction was applied to (rank-local, diagnostic).
	atCorr   bool
	atSrc    stalenessReporter
	atPrevNl [][]complex128
	atHave   bool
	atSteps  int
	// atSite is the within-step transform call counter the
	// timedTransform wrapper stamps onto every bounded exchange (see
	// atSiteLabeler); reset at each step's entry so call i of every
	// step labels the same physical quantity, making an accepted stale
	// slab's age a whole number of time steps.
	atSite uint32

	// ownTr records that the solver built its transform itself (New /
	// NewSolver without WithTransform) and therefore closes it; a
	// caller-supplied engine stays the caller's to close. closed makes
	// Close idempotent.
	ownTr  bool
	closed bool
}

// Close releases the solver's collectively-registered resources: the
// system's persistent plans (through an optional Close method, e.g.
// the forced systems' band-energy ReducePlan) and, when the solver
// constructed its own transform engine, that engine's exchange and
// all-to-all plans. Collective — every rank must call it — and
// idempotent. Solvers running on a caller-supplied transform leave
// the engine open for the caller to close.
func (s *Solver) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if c, ok := s.sys.(interface{ Close() }); ok {
		c.Close()
	}
	if s.ownTr {
		if c, ok := s.Transform().(interface{ Close() }); ok {
			c.Close()
		}
	}
}

// OwnTransform transfers ownership of a caller-supplied transform to
// the solver: Close will close the engine along with the system. For
// call sites that build a transform solely for one solver and never
// touch it again (a builder returning just the *Solver); a transform
// shared across solvers must stay caller-owned.
func (s *Solver) OwnTransform() { s.ownTr = true }

// stalenessReporter is the staleness-accounting contract an
// asynchrony-tolerant transform engine exposes (pfft.SlabReal and
// core.AsyncSlabReal both implement it): drain the window of bounded
// exchanges since the previous call, reporting the maximum per-slab
// age, the summed age, the count of stale slabs gathered and the
// count of bounded exchange calls. Ages are in same-site cycles —
// with the solver's per-step site labeling, whole time steps.
type stalenessReporter interface {
	TakeStaleness() (max int, sum, slabs, calls int64)
}

// NewSolver allocates a solver using the synchronous slab transform
// and the default decaying Navier–Stokes system.
//
// Deprecated: use New with functional options (WithNu, WithScheme,
// WithSystem, …), which also selects among registered equation sets.
func NewSolver(comm *mpi.Comm, cfg Config) *Solver {
	if cfg.N < 4 || cfg.N%2 != 0 {
		panic(fmt.Sprintf("spectral: N must be even and ≥4, got %d", cfg.N))
	}
	s := NewSolverWithTransform(comm, cfg, pfft.NewSlabReal(comm, cfg.N))
	s.ownTr = true
	return s
}

// NewSolverWithTransform allocates a solver running on a caller-chosen
// transform engine (e.g. the batched asynchronous GPU pipeline) with
// the default decaying Navier–Stokes system.
//
// Deprecated: use New with WithTransform.
func NewSolverWithTransform(comm *mpi.Comm, cfg Config, tr Transform) *Solver {
	return newSolver(comm, cfg, tr, nil)
}

// newSolver is the common construction path. A nil sys selects the
// default decaying Navier–Stokes system built from cfg.Nu.
func newSolver(comm *mpi.Comm, cfg Config, tr Transform, sys System) *Solver {
	return newSolverAT(comm, cfg, tr, sys, false)
}

// newSolverAT additionally arms the asynchrony-tolerant correction:
// the transform must report staleness (see stalenessReporter) and the
// stepper gains the prevNl storage the first-order correction
// extrapolates from.
func newSolverAT(comm *mpi.Comm, cfg Config, tr Transform, sys System, at bool) *Solver {
	if cfg.N < 4 || cfg.N%2 != 0 {
		panic(fmt.Sprintf("spectral: N must be even and ≥4, got %d", cfg.N))
	}
	if cfg.Nu < 0 {
		panic(fmt.Sprintf("spectral: negative viscosity %g", cfg.Nu))
	}
	if sys == nil {
		sys = newNavierStokes(SystemSpec{Nu: cfg.Nu})
	}
	nf := sys.Fields()
	if nf < 3 {
		panic(fmt.Sprintf("spectral: system %q declares %d fields; need ≥3 (velocity)", sys.Name(), nf))
	}
	s := &Solver{
		comm: comm,
		cfg:  cfg,
		slab: tr.Slab(),
		nxh:  tr.NXH(),
		sys:  sys,
		nf:   nf,
		met:  newSolverMetrics(comm),
	}
	// Wrap the engine so transform time is attributable; Transform()
	// hands back the unwrapped engine.
	s.tr = &timedTransform{inner: tr, secs: &s.trSecs}
	fl, pl := tr.FourierLen(), tr.PhysicalLen()
	s.state = make([][]complex128, nf)
	s.nl = make([][]complex128, nf)
	s.save = make([][]complex128, nf)
	s.acc = make([][]complex128, nf)
	for c := 0; c < nf; c++ {
		s.state[c] = make([]complex128, fl)
		s.nl[c] = make([]complex128, fl)
		s.save[c] = make([]complex128, fl)
		s.acc[c] = make([]complex128, fl)
	}
	for c := 0; c < 3; c++ {
		s.Uh[c] = s.state[c]
		s.physU[c] = make([]float64, pl)
	}
	s.prod = make([]float64, pl)
	s.work = make([]complex128, fl)
	s.wrap3 = make([][]complex128, 3)
	if cfg.Scheme == RK4 {
		s.rk1 = make([][]complex128, nf)
		s.rk2 = make([][]complex128, nf)
		s.rk3 = make([][]complex128, nf)
		s.rku = make([][]complex128, nf)
		for c := 0; c < nf; c++ {
			s.rk1[c] = make([]complex128, fl)
			s.rk2[c] = make([]complex128, fl)
			s.rk3[c] = make([]complex128, fl)
			s.rku[c] = make([]complex128, fl)
		}
	}
	if at {
		src, ok := tr.(stalenessReporter)
		if !ok {
			panic(fmt.Sprintf("spectral: WithAsyncTolerance needs an asynchrony-tolerant transform (pfft.NewSlabRealAT or core.Options with exchange.AT); %T cannot report staleness", tr))
		}
		s.atCorr = true
		s.atSrc = src
		s.atPrevNl = make([][]complex128, nf)
		for c := 0; c < nf; c++ {
			s.atPrevNl[c] = make([]complex128, fl)
		}
		// Engines that accept quantity labels get every transform call
		// stamped with the within-step call index, so their bounded
		// exchanges only substitute stale slabs of the same quantity.
		if lab, ok := tr.(atSiteLabeler); ok {
			tt := s.tr.(*timedTransform)
			tt.lab, tt.site = lab, &s.atSite
		}
	}

	n, mz := cfg.N, s.slab.MZ()
	s.kxs = make([]float64, s.nxh)
	for i := range s.kxs {
		s.kxs[i] = float64(i)
	}
	s.kys = make([]float64, n)
	for i := range s.kys {
		s.kys[i] = float64(grid.Wavenumber(i, n))
	}
	s.kzs = make([]float64, mz)
	for i := range s.kzs {
		s.kzs[i] = float64(grid.Wavenumber(s.slab.ZLo()+i, n))
	}

	s.mask = make([]bool, fl)
	cut := grid.DealiasCutoff(n)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := math.Abs(s.kzs[iz])
		for iy := 0; iy < n; iy++ {
			ky := math.Abs(s.kys[iy])
			for ix := 0; ix < s.nxh; ix++ {
				keep := true
				if cfg.Dealias != DealiasNone {
					if s.kxs[ix] > cut || ky > cut || kz > cut {
						keep = false
					}
				}
				s.mask[idx] = keep
				idx++
			}
		}
	}

	// Fold per-field diffusivities into runs of equal ν so applyIF
	// computes one exponential per mode per run; ν=0 runs are dropped
	// (the integrating factor is the identity there).
	for c := 0; c < nf; {
		nu := sys.Diffusivity(c)
		if nu < 0 {
			panic(fmt.Sprintf("spectral: system %q: negative diffusivity %g for field %d", sys.Name(), nu, c))
		}
		hi := c + 1
		for hi < nf && sys.Diffusivity(hi) == nu {
			hi++
		}
		if nu != 0 {
			s.difGroups = append(s.difGroups, difGroup{nu: nu, lo: c, hi: hi})
		}
		c = hi
	}

	sys.Setup(s)
	comm.Metrics().GaugeRank("solver.system", comm.Rank()).Set(float64(SystemCode(sys.Name())))
	return s
}

// N reports the linear grid size.
func (s *Solver) N() int { return s.cfg.N }

// Slab reports the decomposition geometry of this rank.
func (s *Solver) Slab() grid.Slab { return s.slab }

// Time reports the current simulation time.
func (s *Solver) Time() float64 { return s.time }

// StepCount reports the number of completed time steps.
func (s *Solver) StepCount() int { return s.step }

// Comm exposes the communicator for collective diagnostics.
func (s *Solver) Comm() *mpi.Comm { return s.comm }

// System exposes the equation set the solver advances.
func (s *Solver) System() System { return s.sys }

// Fields reports the number of spectral fields the system advances
// (≥3; the first three are velocity).
func (s *Solver) Fields() int { return s.nf }

// Field returns the c-th spectral field ([mz][ny][nxh], code units).
// Fields 0–2 are the velocity components (also reachable as Uh);
// higher indices are system-defined (e.g. passive scalars).
func (s *Solver) Field(c int) []complex128 { return s.state[c] }

// SystemDiagnostics reports the active system's named diagnostics
// (collective).
func (s *Solver) SystemDiagnostics() []Diagnostic { return s.sys.Diagnostics(s) }

// Transform exposes the distributed transform pair, used by the
// asynchronous pipeline benchmarks to drive the same data layout.
func (s *Solver) Transform() Transform {
	if t, ok := s.tr.(*timedTransform); ok {
		return t.inner
	}
	return s.tr
}

// StepStallError is a communication stall annotated with where the
// simulation was when it fired: a deadline-bounded transform wait (see
// core.Options.WaitDeadline) blew its budget during this step. It
// reaches the caller through mpi.TryRun wrapped in a *mpi.RankError;
// errors.As extracts it, and Unwrap exposes the underlying
// *mpi.StallError naming the blocked rank and collective.
type StepStallError struct {
	Step int     // completed-step count when the stall fired
	Time float64 // simulation time at the start of the failed step
	Err  *mpi.StallError
}

func (e *StepStallError) Error() string {
	return fmt.Sprintf("spectral: step %d (t=%.6g): %v", e.Step, e.Time, e.Err)
}

func (e *StepStallError) Unwrap() error { return e.Err }

// annotateStall re-raises a *mpi.StallError escaping a step as a
// *StepStallError carrying the solver's step counter and clock; every
// other panic value passes through untouched.
func (s *Solver) annotateStall() {
	e := recover()
	if e == nil {
		return
	}
	if st, ok := e.(*mpi.StallError); ok {
		panic(&StepStallError{Step: s.step, Time: s.time, Err: st})
	}
	panic(e)
}

// Step advances the solution by dt using the configured scheme. With
// metrics enabled it records the step wall time (phase.step) and the
// wall time not spent inside transforms (phase.compute).
//
//psdns:hotpath
func (s *Solver) Step(dt float64) {
	defer s.annotateStall()
	if !s.met.step.Enabled() {
		s.stepInner(dt)
		return
	}
	s.trSecs = 0
	t0 := time.Now()
	s.stepInner(dt)
	wall := time.Since(t0).Seconds()
	s.met.step.Observe(wall)
	s.met.compute.Observe(max(0, wall-s.trSecs))
}

//psdns:hotpath
func (s *Solver) stepInner(dt float64) {
	// Restart the within-step site labels (see atSite): the step body
	// issues an identical transform sequence every step, so call i of
	// step k+1 republishes the same quantity call i of step k did.
	s.atSite = 0
	if s.cfg.Dealias == Dealias23Shift {
		// A new random-but-deterministic shift per step, identical on
		// every rank (depends only on the step counter).
		s.shift = stepShift(s.step, s.cfg.N)
	}
	switch s.cfg.Scheme {
	case RK2:
		s.stepRK2(dt)
	case RK4:
		s.stepRK4(dt)
	default:
		panic(fmt.Sprintf("spectral: unknown scheme %d", s.cfg.Scheme))
	}
	s.sys.PostStep(s, dt)
	if s.cfg.Forcing != nil {
		s.cfg.Forcing.apply(s)
	}
	s.step++
	s.time += dt
}

// stepRK2 is Heun's method with the exact diffusive integrating
// factor, over all nf system fields:
//
//	u*      = E(dt)·(uⁿ + dt·N(uⁿ))
//	uⁿ⁺¹    = E(dt)·uⁿ + dt/2·(E(dt)·N(uⁿ) + N(u*))
//
// where E(dt) = exp(−ν_c·k²·dt) per field.
//
//psdns:hotpath
func (s *Solver) stepRK2(dt float64) {
	s.sys.Nonlinear(s, s.state, s.nl)
	s.atCorrect()
	for c := 0; c < s.nf; c++ {
		copy(s.save[c], s.state[c])
	}
	s.applyIF(s.save, dt) // save = E·uⁿ
	for c := 0; c < s.nf; c++ {
		u, nl := s.state[c], s.nl[c]
		for i := range u {
			u[i] += complex(dt, 0) * nl[i]
		}
	}
	s.applyIF(s.state, dt) // state = E·(uⁿ + dt·N(uⁿ)) = u*
	s.applyIF(s.nl, dt)    // nl = E·N(uⁿ)
	// Second stage: evaluate N at u*.
	for c := 0; c < s.nf; c++ {
		s.acc[c], s.nl[c] = s.nl[c], s.acc[c] // keep E·N(uⁿ) in acc
	}
	s.sys.Nonlinear(s, s.state, s.nl)
	half := complex(dt/2, 0)
	for c := 0; c < s.nf; c++ {
		u, sv, ac, nl := s.state[c], s.save[c], s.acc[c], s.nl[c]
		for i := range u {
			u[i] = sv[i] + half*(ac[i]+nl[i])
		}
	}
}

// stepRK4 is the classical four-stage scheme with integrating factors
// split at the half step (E½ = exp(−ν_c·k²·dt/2)):
//
//	k1 = N(uⁿ)
//	k2 = N(E½·(uⁿ + dt/2·k1))
//	k3 = N(E½·uⁿ + dt/2·k2)
//	k4 = N(E·uⁿ + dt·E½·k3)
//	uⁿ⁺¹ = E·uⁿ + dt/6·(E·k1 + 2·E½·k2 + 2·E½·k3 + k4)
//
//psdns:hotpath
func (s *Solver) stepRK4(dt float64) {
	h := dt
	copyFields(s.save, s.state) // uⁿ
	// Stage 1: k1 = N(uⁿ).
	s.sys.Nonlinear(s, s.state, s.nl)
	s.atCorrect()
	copyFields(s.rk1, s.nl)
	copyFields(s.rku, s.save)
	addScaled(s.rku, s.rk1, h/2)
	s.applyIF(s.rku, h/2)
	// Stage 2: k2 = N(E½·(uⁿ + h/2·k1)).
	s.sys.Nonlinear(s, s.rku, s.nl)
	copyFields(s.rk2, s.nl)
	copyFields(s.rku, s.save)
	s.applyIF(s.rku, h/2)
	addScaled(s.rku, s.rk2, h/2)
	// Stage 3: k3 = N(E½·uⁿ + h/2·k2).
	s.sys.Nonlinear(s, s.rku, s.nl)
	copyFields(s.rk3, s.nl) // k3, folded to E½·k3 below
	copyFields(s.rku, s.save)
	s.applyIF(s.rku, h)
	s.applyIF(s.rk3, h/2) // E½·k3
	addScaled(s.rku, s.rk3, h)
	// Stage 4: k4 = N(E·uⁿ + h·E½·k3).
	s.sys.Nonlinear(s, s.rku, s.nl)
	// Assemble: uⁿ⁺¹ = E·uⁿ + h/6·(E·k1 + 2E½·k2 + 2E½·k3 + k4).
	s.applyIF(s.save, h) // E·uⁿ
	s.applyIF(s.rk1, h)  // E·k1
	s.applyIF(s.rk2, h/2)
	sixth := complex(h/6, 0)
	for c := 0; c < s.nf; c++ {
		u, sv, k1, k2, k3, k4 := s.state[c], s.save[c], s.rk1[c], s.rk2[c], s.rk3[c], s.nl[c]
		for i := range u {
			u[i] = sv[i] + sixth*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
		}
	}
}

// atCorrect applies the Kumari–Donzis first-order asynchrony
// correction to the first-stage nonlinear term. Bounded exchanges let
// slabs gathered from lagging peers be up to maxStale epochs old, so
// the nonlinear term just evaluated is effectively delayed in time;
// extrapolating it forward through its previous-step value,
//
//	N_corrected = N + w·(N − N_prev),   w = mean data age (steps)
//
// cancels the leading-order staleness error while leaving the scheme
// untouched when nothing was stale. The plans report each accepted
// stale slab's age in same-site cycles, which the solver's per-step
// site labeling makes whole time steps, so the weight is simply the
// mean age of the peer slabs gathered since the previous drain —
// sum/(calls·(P−1)) over the window's calls·(P−1) peer slabs — with
// no unit conversion. A per-slab mean is invariant to how many
// exchanges the drained window happened to cover (the first window of
// a run covers a single nonlinear evaluation, where a fixed
// per-scheme divisor would inflate the weight by the stage count).
// Clamped to [0, 1]: one step of delay, N − N_prev, is the most the
// first-order extrapolation can honestly correct. With zero observed
// staleness the term is only recorded, never modified, so a
// straggler-free AT run stays bitwise identical to the synchronous
// scheme. Rank-local by design: each rank corrects its own slab by
// the staleness it actually absorbed.
//
//psdns:hotpath
func (s *Solver) atCorrect() {
	if !s.atCorr {
		return
	}
	_, sum, _, calls := s.atSrc.TakeStaleness()
	w := 0.0
	if ranks := s.comm.Size() - 1; sum > 0 && calls > 0 && ranks > 0 {
		w = float64(sum) / (float64(calls) * float64(ranks))
		if w > 1 {
			w = 1
		}
	}
	if w == 0 || !s.atHave {
		copyFields(s.atPrevNl, s.nl)
		s.atHave = true
		return
	}
	s.atSteps++
	cw := complex(w, 0)
	for c := 0; c < s.nf; c++ {
		nl, prev := s.nl[c], s.atPrevNl[c]
		for i := range nl {
			old := nl[i]
			nl[i] = old + cw*(old-prev[i])
			prev[i] = old
		}
	}
}

// ATCorrections reports how many steps received a nonzero
// asynchrony-tolerant staleness correction on this rank (zero when
// WithAsyncTolerance is off or no exchange ever gathered stale
// slabs).
func (s *Solver) ATCorrections() int { return s.atSteps }

// copyFields copies every component of src into the preallocated dst
// (the zero-allocation replacement of the old per-stage clones).
func copyFields(dst, src [][]complex128) {
	for c := range dst {
		copy(dst[c], src[c])
	}
}

// addScaled computes dst += a·src elementwise on all components.
func addScaled(dst, src [][]complex128, a float64) {
	ca := complex(a, 0)
	for c := range dst {
		d, s := dst[c], src[c]
		for i := range d {
			d[i] += ca * s[i]
		}
	}
}

// applyIF multiplies each mode of every diffusive field by its
// integrating factor exp(−ν_c·k²·dt). Fields sharing a diffusivity
// share one exponential per mode (for plain NS: one exp, three
// fields — the pre-registry arithmetic exactly).
//
//psdns:hotpath
func (s *Solver) applyIF(f [][]complex128, dt float64) {
	if dt == 0 || len(s.difGroups) == 0 {
		return
	}
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	for _, g := range s.difGroups {
		nu := g.nu
		idx := 0
		for iz := 0; iz < mz; iz++ {
			kz2 := s.kzs[iz] * s.kzs[iz]
			for iy := 0; iy < n; iy++ {
				ky2 := s.kys[iy] * s.kys[iy]
				for ix := 0; ix < nxh; ix++ {
					k2 := s.kxs[ix]*s.kxs[ix] + ky2 + kz2
					e := complex(math.Exp(-nu*k2*dt), 0)
					for c := g.lo; c < g.hi; c++ {
						f[c][idx] *= e
					}
					idx++
				}
			}
		}
	}
}

// stepShift derives a deterministic pseudo-random phase shift for the
// given step, identical across ranks; shifts are in grid units of the
// physical mesh spacing 2π/N.
func stepShift(step, n int) [3]float64 {
	h := 2 * math.Pi / float64(n)
	// Small linear congruential scramble; any rank-independent choice
	// works since aliasing cancellation only needs decorrelated shifts.
	a := uint64(step)*6364136223846793005 + 1442695040888963407
	s0 := float64(a>>11&1023) / 1023.0
	s1 := float64(a>>31&1023) / 1023.0
	s2 := float64(a>>51&1023) / 1023.0
	return [3]float64{s0 * h, s1 * h, s2 * h}
}
