package spectral

import (
	"fmt"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pfft"
)

// Scheme selects the explicit time integrator for the nonlinear term.
type Scheme int

const (
	// RK2 is the second-order Runge–Kutta (Heun) scheme the paper
	// reports timings for.
	RK2 Scheme = iota
	// RK4 is the classical fourth-order scheme; roughly twice the cost
	// per step with a small amount of extra storage (§2 of the paper).
	RK4
)

// Dealias selects the aliasing control applied to nonlinear products.
type Dealias int

const (
	// DealiasNone applies no truncation (only for analytic tests whose
	// spectra vanish well below the grid cutoff).
	DealiasNone Dealias = iota
	// Dealias23 zeroes every mode with |k_i| > N/3 (2/3-rule).
	Dealias23
	// Dealias23Shift combines 2/3 truncation with grid phase shifting,
	// the Rogallo treatment referenced in §2.
	Dealias23Shift
)

// Config describes one simulation.
type Config struct {
	N       int     // grid points per direction (even)
	Nu      float64 // kinematic viscosity
	Scheme  Scheme
	Dealias Dealias
	// Forcing, when non-nil, is applied after each step to sustain
	// stationary turbulence.
	Forcing *Forcing
}

// Transform is the distributed 3D transform pair the solver advances
// fields through. pfft.SlabReal is the synchronous reference; the
// batched asynchronous GPU pipeline of internal/core implements the
// same contract, so the full DNS can run on either engine.
type Transform interface {
	// FourierToPhysical converts [mz][ny][nxh] complex (code units)
	// into [my][nz][nx] real, applying 1/N³; the input is scratch.
	FourierToPhysical(phys []float64, four []complex128)
	// PhysicalToFourier is the unnormalized adjoint direction.
	PhysicalToFourier(four []complex128, phys []float64)
	Slab() grid.Slab
	NXH() int
	FourierLen() int
	PhysicalLen() int
}

// Solver advances the Navier–Stokes equations on one MPI rank of a
// slab-decomposed domain. All ranks of the communicator must construct
// a Solver and call its collective methods (Step, Energy, …) in the
// same order.
type Solver struct {
	comm *mpi.Comm
	cfg  Config
	slab grid.Slab
	tr   Transform
	nxh  int

	// Uh holds the three velocity components in Fourier space,
	// each [mz][ny][nxh] in code units (N³·û).
	Uh [3][]complex128

	// Scratch for the pseudo-spectral nonlinear term.
	physU [3][]float64    // velocity in physical space
	prod  []float64       // one product field at a time
	nl    [3][]complex128 // projected nonlinear term
	work  []complex128
	save  [3][]complex128 // RK substage storage
	acc   [3][]complex128 // RK4 accumulator
	// RK4 stage storage, hoisted out of the step loop (allocated once
	// at construction when the scheme needs it, never per step):
	// rk1..rk3 hold k1, k2 and E½·k3; rku holds the stage state the
	// next nonlinear term is evaluated at.
	rk1 [3][]complex128
	rk2 [3][]complex128
	rk3 [3][]complex128
	rku [3][]complex128

	// Wavenumber tables for the local Fourier slab.
	kxs []float64 // length nxh
	kys []float64 // length n
	kzs []float64 // length mz (global z = zLo+iz)

	mask []bool // dealias mask over the local slab (true = keep)

	step  int
	time  float64
	shift [3]float64 // current phase shift (Dealias23Shift)

	met    *solverMetrics
	trSecs float64 // seconds inside transform calls this step
}

// NewSolver allocates a solver using the synchronous slab transform.
func NewSolver(comm *mpi.Comm, cfg Config) *Solver {
	if cfg.N < 4 || cfg.N%2 != 0 {
		panic(fmt.Sprintf("spectral: N must be even and ≥4, got %d", cfg.N))
	}
	return NewSolverWithTransform(comm, cfg, pfft.NewSlabReal(comm, cfg.N))
}

// NewSolverWithTransform allocates a solver running on a caller-chosen
// transform engine (e.g. the batched asynchronous GPU pipeline).
func NewSolverWithTransform(comm *mpi.Comm, cfg Config, tr Transform) *Solver {
	if cfg.N < 4 || cfg.N%2 != 0 {
		panic(fmt.Sprintf("spectral: N must be even and ≥4, got %d", cfg.N))
	}
	if cfg.Nu < 0 {
		panic(fmt.Sprintf("spectral: negative viscosity %g", cfg.Nu))
	}
	s := &Solver{
		comm: comm,
		cfg:  cfg,
		slab: tr.Slab(),
		nxh:  tr.NXH(),
		met:  newSolverMetrics(comm),
	}
	// Wrap the engine so transform time is attributable; Transform()
	// hands back the unwrapped engine.
	s.tr = &timedTransform{inner: tr, secs: &s.trSecs}
	fl, pl := tr.FourierLen(), tr.PhysicalLen()
	for i := 0; i < 3; i++ {
		s.Uh[i] = make([]complex128, fl)
		s.physU[i] = make([]float64, pl)
		s.nl[i] = make([]complex128, fl)
		s.save[i] = make([]complex128, fl)
		s.acc[i] = make([]complex128, fl)
	}
	s.prod = make([]float64, pl)
	s.work = make([]complex128, fl)
	if cfg.Scheme == RK4 {
		for i := 0; i < 3; i++ {
			s.rk1[i] = make([]complex128, fl)
			s.rk2[i] = make([]complex128, fl)
			s.rk3[i] = make([]complex128, fl)
			s.rku[i] = make([]complex128, fl)
		}
	}

	n, mz := cfg.N, s.slab.MZ()
	s.kxs = make([]float64, s.nxh)
	for i := range s.kxs {
		s.kxs[i] = float64(i)
	}
	s.kys = make([]float64, n)
	for i := range s.kys {
		s.kys[i] = float64(grid.Wavenumber(i, n))
	}
	s.kzs = make([]float64, mz)
	for i := range s.kzs {
		s.kzs[i] = float64(grid.Wavenumber(s.slab.ZLo()+i, n))
	}

	s.mask = make([]bool, fl)
	cut := grid.DealiasCutoff(n)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := math.Abs(s.kzs[iz])
		for iy := 0; iy < n; iy++ {
			ky := math.Abs(s.kys[iy])
			for ix := 0; ix < s.nxh; ix++ {
				keep := true
				if cfg.Dealias != DealiasNone {
					if s.kxs[ix] > cut || ky > cut || kz > cut {
						keep = false
					}
				}
				s.mask[idx] = keep
				idx++
			}
		}
	}
	return s
}

// N reports the linear grid size.
func (s *Solver) N() int { return s.cfg.N }

// Slab reports the decomposition geometry of this rank.
func (s *Solver) Slab() grid.Slab { return s.slab }

// Time reports the current simulation time.
func (s *Solver) Time() float64 { return s.time }

// StepCount reports the number of completed time steps.
func (s *Solver) StepCount() int { return s.step }

// Comm exposes the communicator for collective diagnostics.
func (s *Solver) Comm() *mpi.Comm { return s.comm }

// Transform exposes the distributed transform pair, used by the
// asynchronous pipeline benchmarks to drive the same data layout.
func (s *Solver) Transform() Transform {
	if t, ok := s.tr.(*timedTransform); ok {
		return t.inner
	}
	return s.tr
}

// StepStallError is a communication stall annotated with where the
// simulation was when it fired: a deadline-bounded transform wait (see
// core.Options.WaitDeadline) blew its budget during this step. It
// reaches the caller through mpi.TryRun wrapped in a *mpi.RankError;
// errors.As extracts it, and Unwrap exposes the underlying
// *mpi.StallError naming the blocked rank and collective.
type StepStallError struct {
	Step int     // completed-step count when the stall fired
	Time float64 // simulation time at the start of the failed step
	Err  *mpi.StallError
}

func (e *StepStallError) Error() string {
	return fmt.Sprintf("spectral: step %d (t=%.6g): %v", e.Step, e.Time, e.Err)
}

func (e *StepStallError) Unwrap() error { return e.Err }

// annotateStall re-raises a *mpi.StallError escaping a step as a
// *StepStallError carrying the solver's step counter and clock; every
// other panic value passes through untouched.
func (s *Solver) annotateStall() {
	e := recover()
	if e == nil {
		return
	}
	if st, ok := e.(*mpi.StallError); ok {
		panic(&StepStallError{Step: s.step, Time: s.time, Err: st})
	}
	panic(e)
}

// Step advances the solution by dt using the configured scheme. With
// metrics enabled it records the step wall time (phase.step) and the
// wall time not spent inside transforms (phase.compute).
//
//psdns:hotpath
func (s *Solver) Step(dt float64) {
	defer s.annotateStall()
	if !s.met.step.Enabled() {
		s.stepInner(dt)
		return
	}
	s.trSecs = 0
	t0 := time.Now()
	s.stepInner(dt)
	wall := time.Since(t0).Seconds()
	s.met.step.Observe(wall)
	s.met.compute.Observe(max(0, wall-s.trSecs))
}

func (s *Solver) stepInner(dt float64) {
	if s.cfg.Dealias == Dealias23Shift {
		// A new random-but-deterministic shift per step, identical on
		// every rank (depends only on the step counter).
		s.shift = stepShift(s.step, s.cfg.N)
	}
	switch s.cfg.Scheme {
	case RK2:
		s.stepRK2(dt)
	case RK4:
		s.stepRK4(dt)
	default:
		panic(fmt.Sprintf("spectral: unknown scheme %d", s.cfg.Scheme))
	}
	if s.cfg.Forcing != nil {
		s.cfg.Forcing.apply(s)
	}
	s.step++
	s.time += dt
}

// stepRK2 is Heun's method with the exact viscous integrating factor:
//
//	u*      = E(dt)·(uⁿ + dt·N(uⁿ))
//	uⁿ⁺¹    = E(dt)·uⁿ + dt/2·(E(dt)·N(uⁿ) + N(u*))
//
// where E(dt) = exp(−νk²dt).
//
//psdns:hotpath
func (s *Solver) stepRK2(dt float64) {
	s.nonlinear(&s.Uh)
	for c := 0; c < 3; c++ {
		copy(s.save[c], s.Uh[c])
	}
	s.applyIF(&s.save, dt) // save = E·uⁿ
	for c := 0; c < 3; c++ {
		for i := range s.Uh[c] {
			s.Uh[c][i] += complex(dt, 0) * s.nl[c][i]
		}
	}
	s.applyIF(&s.Uh, dt) // Uh = E·(uⁿ + dt·N(uⁿ)) = u*
	s.applyIFnl(dt)      // nl = E·N(uⁿ)
	// Second stage: evaluate N at u*.
	for c := 0; c < 3; c++ {
		s.acc[c], s.nl[c] = s.nl[c], s.acc[c] // keep E·N(uⁿ) in acc
	}
	s.nonlinear(&s.Uh)
	half := complex(dt/2, 0)
	for c := 0; c < 3; c++ {
		for i := range s.Uh[c] {
			s.Uh[c][i] = s.save[c][i] + half*(s.acc[c][i]+s.nl[c][i])
		}
	}
}

// stepRK4 is the classical four-stage scheme with integrating factors
// split at the half step (E½ = exp(−νk²dt/2)):
//
//	k1 = N(uⁿ)
//	k2 = N(E½·(uⁿ + dt/2·k1))
//	k3 = N(E½·uⁿ + dt/2·k2)
//	k4 = N(E·uⁿ + dt·E½·k3)
//	uⁿ⁺¹ = E·uⁿ + dt/6·(E·k1 + 2·E½·k2 + 2·E½·k3 + k4)
//
//psdns:hotpath
func (s *Solver) stepRK4(dt float64) {
	h := dt
	copyFields(&s.save, &s.Uh) // uⁿ
	// Stage 1: k1 = N(uⁿ).
	s.nonlinear(&s.Uh)
	copyFields(&s.rk1, &s.nl)
	copyFields(&s.rku, &s.save)
	addScaled(s.rku, s.rk1, h/2)
	s.applyIF(&s.rku, h/2)
	// Stage 2: k2 = N(E½·(uⁿ + h/2·k1)).
	s.nonlinear(&s.rku)
	copyFields(&s.rk2, &s.nl)
	copyFields(&s.rku, &s.save)
	s.applyIF(&s.rku, h/2)
	addScaled(s.rku, s.rk2, h/2)
	// Stage 3: k3 = N(E½·uⁿ + h/2·k2).
	s.nonlinear(&s.rku)
	copyFields(&s.rk3, &s.nl) // k3, folded to E½·k3 below
	copyFields(&s.rku, &s.save)
	s.applyIF(&s.rku, h)
	s.applyIF(&s.rk3, h/2) // E½·k3
	addScaled(s.rku, s.rk3, h)
	// Stage 4: k4 = N(E·uⁿ + h·E½·k3).
	s.nonlinear(&s.rku)
	// Assemble: uⁿ⁺¹ = E·uⁿ + h/6·(E·k1 + 2E½·k2 + 2E½·k3 + k4).
	s.applyIF(&s.save, h) // E·uⁿ
	s.applyIF(&s.rk1, h)  // E·k1
	s.applyIF(&s.rk2, h/2)
	sixth := complex(h/6, 0)
	for c := 0; c < 3; c++ {
		for i := range s.Uh[c] {
			s.Uh[c][i] = s.save[c][i] + sixth*(s.rk1[c][i]+
				2*s.rk2[c][i]+2*s.rk3[c][i]+s.nl[c][i])
		}
	}
}

// copyFields copies all three components of src into the preallocated
// dst (the zero-allocation replacement of the old per-stage clones).
func copyFields(dst, src *[3][]complex128) {
	for c := 0; c < 3; c++ {
		copy(dst[c], src[c])
	}
}

// addScaled computes dst += a·src elementwise on all three components.
func addScaled(dst, src [3][]complex128, a float64) {
	ca := complex(a, 0)
	for c := 0; c < 3; c++ {
		for i := range dst[c] {
			dst[c][i] += ca * src[c][i]
		}
	}
}

// applyIF multiplies each mode of the three fields by exp(−νk²dt).
func (s *Solver) applyIF(f *[3][]complex128, dt float64) {
	s.applyIFfields(f, dt)
}

func (s *Solver) applyIFfields(f *[3][]complex128, dt float64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	nu := s.cfg.Nu
	if nu == 0 || dt == 0 {
		return
	}
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k2 := s.kxs[ix]*s.kxs[ix] + ky2 + kz2
				e := complex(math.Exp(-nu*k2*dt), 0)
				f[0][idx] *= e
				f[1][idx] *= e
				f[2][idx] *= e
				idx++
			}
		}
	}
}

// applyIFnl applies the integrating factor to the stored nonlinear term.
func (s *Solver) applyIFnl(dt float64) {
	s.applyIFfields(&s.nl, dt)
}

// stepShift derives a deterministic pseudo-random phase shift for the
// given step, identical across ranks; shifts are in grid units of the
// physical mesh spacing 2π/N.
func stepShift(step, n int) [3]float64 {
	h := 2 * math.Pi / float64(n)
	// Small linear congruential scramble; any rank-independent choice
	// works since aliasing cancellation only needs decorrelated shifts.
	a := uint64(step)*6364136223846793005 + 1442695040888963407
	s0 := float64(a>>11&1023) / 1023.0
	s1 := float64(a>>31&1023) / 1023.0
	s2 := float64(a>>51&1023) / 1023.0
	return [3]float64{s0 * h, s1 * h, s2 * h}
}
