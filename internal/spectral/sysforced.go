package spectral

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mpi"
)

// ForcedNS is stochastically forced incompressible Navier–Stokes: the
// decaying dynamics plus a large-scale forcing controller that injects
// kinetic energy at a prescribed rate into the shells k ≤ KF after
// every step, sustaining statistically stationary turbulence — the
// configuration of the paper's production runs (Eswaran–Pope-style
// low-wavenumber forcing).
type ForcedNS struct {
	nu      float64
	forcing *StochasticForcing
}

func init() {
	RegisterSystem("forced-ns", newForcedNS)
}

func newForcedNS(spec SystemSpec) System {
	return &ForcedNS{
		nu:      spec.Nu,
		forcing: NewStochasticForcing(spec.Forcing),
	}
}

// Name implements System.
func (y *ForcedNS) Name() string { return "forced-ns" }

// Fields implements System.
func (y *ForcedNS) Fields() int { return 3 }

// Setup implements System: registers the forcing's persistent
// reduction (collective).
func (y *ForcedNS) Setup(s *Solver) { y.forcing.setup(s) }

// Diffusivity implements System.
func (y *ForcedNS) Diffusivity(int) float64 { return y.nu }

// Nonlinear implements System (identical to plain NS; the forcing acts
// discretely between steps, not in the RHS).
//
//psdns:hotpath
func (y *ForcedNS) Nonlinear(s *Solver, state, rhs [][]complex128) {
	s.velocityProducts(state, rhs)
	s.projectAndDealias(rhs)
}

// PostStep implements System: one forcing application.
//
//psdns:hotpath
func (y *ForcedNS) PostStep(s *Solver, dt float64) { y.forcing.apply(s, dt) }

// Diagnostics implements System: the stationarity budget terms. At
// statistical stationarity forcing.injection ≈ dissipation.
func (y *ForcedNS) Diagnostics(s *Solver) []Diagnostic {
	return []Diagnostic{
		{Name: "energy", Value: s.Energy()},
		{Name: "dissipation", Value: s.Dissipation()},
		{Name: "forcing.injection", Value: y.forcing.Eps},
		{Name: "forcing.band_energy", Value: y.forcing.BandEnergy(s)},
	}
}

// Forcing exposes the controller (e.g. to retune Eps between runs).
func (y *ForcedNS) Forcing() *StochasticForcing { return y.forcing }

// Close frees the forcing controller's persistent reduction plan
// (collective). Invoked by Solver.Close through the optional-Close
// system contract.
func (y *ForcedNS) Close() { y.forcing.Close() }

// StochasticForcing injects kinetic energy into the large scales
// (shells 1 ≤ k ≤ KF) at exactly the prescribed rate Eps: after each
// step of size dt the band modes are scaled by the uniform factor
//
//	g = √(1 + ε·dt/E_f)
//
// so the band gains ε·dt of energy regardless of its current state —
// the same energy budget as Eswaran–Pope forcing, with deterministic
// amplitude control replacing the Ornstein–Uhlenbeck amplitude walk.
// Uniform scaling preserves incompressibility and conjugate symmetry.
//
// When TCorr > 0 the phases of the forced modes additionally perform a
// seeded random walk with decorrelation time TCorr (each mode rotated
// by θ ~ N(0, 2·dt/TCorr), the same θ on all three components, so the
// rotation does no work and keeps k·û = 0). The walk is keyed by
// (seed, step, global mode index), making trajectories independent of
// the rank count — the same device the random initial condition uses.
// All per-step work is allocation-free: the band-energy reduction runs
// over a persistent mpi.ReducePlan registered at Setup.
type StochasticForcing struct {
	KF    int     // highest forced shell
	Eps   float64 // energy injection rate
	TCorr float64 // phase decorrelation time (0 = frozen phases)
	Seed  int64

	red *mpi.ReducePlan
	buf []float64
}

// NewStochasticForcing builds the controller from a spec. KF defaults
// to 2 (the standard production choice) when unset.
func NewStochasticForcing(spec ForcingSpec) *StochasticForcing {
	kf := spec.KF
	if kf == 0 {
		kf = 2
	}
	if kf < 1 {
		panic(fmt.Sprintf("spectral: forcing needs kf ≥ 1, got %d", kf))
	}
	if spec.Eps < 0 {
		panic(fmt.Sprintf("spectral: negative injection rate %g", spec.Eps))
	}
	if spec.TCorr < 0 {
		panic(fmt.Sprintf("spectral: negative phase decorrelation time %g", spec.TCorr))
	}
	return &StochasticForcing{KF: kf, Eps: spec.Eps, TCorr: spec.TCorr, Seed: spec.Seed}
}

// setup registers the persistent band-energy reduction (collective).
func (f *StochasticForcing) setup(s *Solver) {
	f.red = mpi.NewReducePlan(s.comm, 1)
	f.buf = make([]float64, 1)
}

// Close frees the persistent band-energy reduction plan (collective;
// idempotent). A controller that is never Setup has nothing to free.
func (f *StochasticForcing) Close() {
	if f.red != nil {
		f.red.Free()
		f.red = nil
	}
}

// BandEnergy returns the kinetic energy in the forced band
// (collective over the persistent plan).
func (f *StochasticForcing) BandEnergy(s *Solver) float64 {
	f.buf[0] = f.localBandEnergy(s)
	f.red.Sum(f.buf)
	return f.buf[0]
}

// localBandEnergy sums this rank's contribution to the band energy.
//
//psdns:hotpath
func (f *StochasticForcing) localBandEnergy(s *Solver) float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	var sum float64
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell >= 1 && shell <= f.KF {
					var e float64
					for c := 0; c < 3; c++ {
						v := s.Uh[c][idx]
						e += real(v)*real(v) + imag(v)*imag(v)
					}
					sum += 0.5 * specWeight(ix, n) * e * inv
				}
				idx++
			}
		}
	}
	return sum
}

// apply performs one forcing update: exact-rate amplitude scaling,
// then the optional phase walk (collective, allocation-free).
//
//psdns:hotpath
func (f *StochasticForcing) apply(s *Solver, dt float64) {
	f.buf[0] = f.localBandEnergy(s)
	f.red.Sum(f.buf)
	ef := f.buf[0]
	if ef <= 0 || f.Eps <= 0 || dt <= 0 {
		return
	}
	g := complex(math.Sqrt(1+f.Eps*dt/ef), 0)

	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell >= 1 && shell <= f.KF {
					s.Uh[0][idx] *= g
					s.Uh[1][idx] *= g
					s.Uh[2][idx] *= g
				}
				idx++
			}
		}
	}
	if f.TCorr > 0 {
		f.diffusePhases(s, dt)
	}
}

// diffusePhases rotates each forced mode by its step's random phase
// increment, respecting conjugate symmetry on the kx ∈ {0, N/2}
// planes (partners rotate by opposite angles; self-conjugate modes
// stay put so they remain real).
//
//psdns:hotpath
func (f *StochasticForcing) diffusePhases(s *Solver, dt float64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	sd := math.Sqrt(2 * dt / f.TCorr)
	step := s.step
	idx := 0
	for iz := 0; iz < mz; iz++ {
		gz := s.slab.ZLo() + iz
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell < 1 || shell > f.KF {
					idx++
					continue
				}
				var theta float64
				if ix == 0 || ix == n/2 {
					py, pz := conjPairIndex(iy, gz, n)
					switch {
					case py == iy && pz == gz:
						// Self-conjugate: must remain real.
						theta = 0
					case gz > pz || (gz == pz && iy > py):
						// Non-canonical partner: opposite rotation.
						theta = -sd * gaussPhase(f.Seed, step, modeGID(ix, py, pz, n, nxh))
					default:
						theta = sd * gaussPhase(f.Seed, step, modeGID(ix, iy, gz, n, nxh))
					}
				} else {
					theta = sd * gaussPhase(f.Seed, step, modeGID(ix, iy, gz, n, nxh))
				}
				if theta != 0 {
					rot := cmplx.Rect(1, theta)
					s.Uh[0][idx] *= rot
					s.Uh[1][idx] *= rot
					s.Uh[2][idx] *= rot
				}
				idx++
			}
		}
	}
}

// modeGID is the global linear index of a mode, rank-count invariant.
func modeGID(ix, iy, gz, n, nxh int) uint64 {
	return uint64((gz*n+iy)*nxh + ix)
}

// splitmix is the SplitMix64 finalizer, the allocation-free hash
// behind the forcing's per-mode random stream.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// gaussPhase draws a standard normal keyed by (seed, step, mode) via
// Box–Muller over two hashed uniforms.
//
//psdns:hotpath
func gaussPhase(seed int64, step int, gid uint64) float64 {
	base := uint64(seed)*0xA24BAED4963EE407 ^ uint64(step+1)*0x9FB21C651E98DF25 ^ gid
	h1 := splitmix(base)
	h2 := splitmix(base ^ 0xD6E8FEB86659FD93)
	u1 := float64(h1>>11) / (1 << 53) // [0, 1)
	u2 := float64(h2>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
}
