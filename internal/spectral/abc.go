package spectral

import (
	"math"

	"repro/internal/mpi"
)

// SetABCFlow initializes the Arnold–Beltrami–Childress flow
//
//	u = A·sin z + C·cos y
//	v = B·sin x + A·cos z
//	w = C·sin y + B·cos x
//
// a Beltrami field (ω = u, curl eigenvalue 1): its nonlinear term
// u×ω vanishes identically, so the advective contribution is a pure
// gradient absorbed by the pressure projection and the *full*
// Navier–Stokes solution decays exactly as u(t) = u(0)·e^{−νt} — the
// strongest available end-to-end exactness test for the nonlinear
// solver, and the canonical maximal-helicity field.
func (s *Solver) SetABCFlow(a, b, c float64) {
	for comp := 0; comp < 3; comp++ {
		zero(s.Uh[comp])
	}
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	// Coefficients of e^{ikx}: sin t = ∓i/2 at k=±1; cos t = 1/2 at k=±1.
	put := func(comp, kx, ky, kz int, v complex128) {
		gy := (ky + n) % n
		gz := (kz + n) % n
		if s.slab.ZOwner(gz) != s.slab.Rank {
			return
		}
		iz := gz - s.slab.ZLo()
		if kx < 0 {
			// Stored via conjugate symmetry: û(−kx,−ky,−kz) = conj.
			return
		}
		s.Uh[comp][(iz*n+gy)*s.nxh+kx] += v * complex(n3, 0)
	}
	// u = A sin z + C cos y: modes (0,0,±1) and (0,±1,0) — kx = 0
	// plane, so both signs must be stored explicitly.
	put(0, 0, 0, 1, complex(0, -a/2))
	put(0, 0, 0, -1, complex(0, a/2))
	put(0, 0, 1, 0, complex(c/2, 0))
	put(0, 0, -1, 0, complex(c/2, 0))
	// v = B sin x + A cos z: mode (±1,0,0) stored at kx=+1 only (half
	// spectrum), and (0,0,±1).
	put(1, 1, 0, 0, complex(0, -b/2))
	put(1, 0, 0, 1, complex(a/2, 0))
	put(1, 0, 0, -1, complex(a/2, 0))
	// w = C sin y + B cos x.
	put(2, 0, 1, 0, complex(0, -c/2))
	put(2, 0, -1, 0, complex(0, c/2))
	put(2, 1, 0, 0, complex(b/2, 0))
}

// Helicity returns H = ⟨u·ω⟩, the alignment invariant of ideal flow
// (collective). Beltrami fields with curl eigenvalue k have H = 2k·E.
func (s *Solver) Helicity() float64 {
	w := s.Vorticity()
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	var sum float64
	idx := 0
	for iz := 0; iz < s.slab.MZ(); iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < s.nxh; ix++ {
				wt := specWeight(ix, n)
				for c := 0; c < 3; c++ {
					u := s.Uh[c][idx]
					o := w[c][idx]
					sum += wt * (real(u)*real(o) + imag(u)*imag(o)) * inv
				}
				idx++
			}
		}
	}
	out := []float64{sum}
	mpi.AllreduceSum(s.comm, out)
	return out[0]
}

// HelicitySpectrum returns the shell-summed helicity spectrum H(k)
// with ΣH(k) = ⟨u·ω⟩ (collective).
func (s *Solver) HelicitySpectrum() []float64 {
	w := s.Vorticity()
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	spec := make([]float64, int(math.Sqrt(3)*float64(n)/2)+2)
	idx := 0
	for iz := 0; iz < s.slab.MZ(); iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < s.nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell < len(spec) {
					wt := specWeight(ix, n)
					for c := 0; c < 3; c++ {
						u := s.Uh[c][idx]
						o := w[c][idx]
						spec[shell] += wt * (real(u)*real(o) + imag(u)*imag(o)) * inv
					}
				}
				idx++
			}
		}
	}
	mpi.AllreduceSum(s.comm, spec)
	return spec
}
