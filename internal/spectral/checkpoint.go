package spectral

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checkpointing: production DNS campaigns integrate "many thousands of
// time steps" (§2) across many job allocations, so the solution must
// be able to leave and re-enter the machine exactly. Each rank writes
// its own Fourier-space slab (one file per rank, the pattern used on
// parallel file systems like Summit's SpectrumScale), with a
// self-describing header and a CRC so a corrupted restart is detected
// rather than silently integrated.

const (
	ckptMagic   = 0x50534e53 // "PSNS"
	ckptVersion = 1
)

type ckptHeader struct {
	Magic   uint32
	Version uint32
	N       uint64
	Ranks   uint64
	Rank    uint64
	Step    uint64
	Time    float64
	Nu      float64
	Fields  uint64 // velocity components + optional scalars
}

// WriteCheckpointTo serializes this rank's state to w. scalars may be
// empty.
func (s *Solver) WriteCheckpointTo(w io.Writer, scalars ...*Scalar) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	hdr := ckptHeader{
		Magic:   ckptMagic,
		Version: ckptVersion,
		N:       uint64(s.cfg.N),
		Ranks:   uint64(s.comm.Size()),
		Rank:    uint64(s.slab.Rank),
		Step:    uint64(s.step),
		Time:    s.time,
		Nu:      s.cfg.Nu,
		Fields:  uint64(3 + len(scalars)),
	}
	if err := binary.Write(out, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("checkpoint header: %w", err)
	}
	for c := 0; c < 3; c++ {
		if err := binary.Write(out, binary.LittleEndian, s.Uh[c]); err != nil {
			return fmt.Errorf("checkpoint velocity %d: %w", c, err)
		}
	}
	for i, sc := range scalars {
		if err := binary.Write(out, binary.LittleEndian, complex(sc.kappa, sc.MeanGrad)); err != nil {
			return fmt.Errorf("checkpoint scalar %d params: %w", i, err)
		}
		if err := binary.Write(out, binary.LittleEndian, sc.Th); err != nil {
			return fmt.Errorf("checkpoint scalar %d: %w", i, err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("checkpoint crc: %w", err)
	}
	return bw.Flush()
}

// ReadCheckpointFrom restores this rank's state from r, validating
// geometry, rank identity and the CRC. The solver must already be
// constructed with a matching configuration; scalars must match the
// count written.
func (s *Solver) ReadCheckpointFrom(r io.Reader, scalars ...*Scalar) error {
	crc := crc32.NewIEEE()
	in := io.TeeReader(bufio.NewReader(r), crc)
	var hdr ckptHeader
	if err := binary.Read(in, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("checkpoint header: %w", err)
	}
	switch {
	case hdr.Magic != ckptMagic:
		return fmt.Errorf("checkpoint: bad magic %#x", hdr.Magic)
	case hdr.Version != ckptVersion:
		return fmt.Errorf("checkpoint: unsupported version %d", hdr.Version)
	case hdr.N != uint64(s.cfg.N):
		return fmt.Errorf("checkpoint: N=%d, solver has %d", hdr.N, s.cfg.N)
	case hdr.Ranks != uint64(s.comm.Size()):
		return fmt.Errorf("checkpoint: written on %d ranks, running on %d", hdr.Ranks, s.comm.Size())
	case hdr.Rank != uint64(s.slab.Rank):
		return fmt.Errorf("checkpoint: file is rank %d, this is rank %d", hdr.Rank, s.slab.Rank)
	case hdr.Fields != uint64(3+len(scalars)):
		return fmt.Errorf("checkpoint: %d fields written, %d expected", hdr.Fields, 3+len(scalars))
	}
	for c := 0; c < 3; c++ {
		if err := binary.Read(in, binary.LittleEndian, s.Uh[c]); err != nil {
			return fmt.Errorf("checkpoint velocity %d: %w", c, err)
		}
	}
	for i, sc := range scalars {
		var params complex128
		if err := binary.Read(in, binary.LittleEndian, &params); err != nil {
			return fmt.Errorf("checkpoint scalar %d params: %w", i, err)
		}
		sc.kappa, sc.MeanGrad = real(params), imag(params)
		if err := binary.Read(in, binary.LittleEndian, sc.Th); err != nil {
			return fmt.Errorf("checkpoint scalar %d: %w", i, err)
		}
	}
	// Snapshot the digest of the payload, then read the trailer (the
	// trailer itself is not covered by the CRC).
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(in, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("checkpoint crc: %w", err)
	}
	if got != want {
		return fmt.Errorf("checkpoint: crc mismatch %#x != %#x (corrupted file)", got, want)
	}
	s.step = int(hdr.Step)
	s.time = hdr.Time
	return nil
}

// ckptPath names this rank's file inside dir.
func ckptPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt_rank%05d.bin", rank))
}

// SaveCheckpoint writes one file per rank under dir (collective: every
// rank must call it; dir is created if needed).
func (s *Solver) SaveCheckpoint(dir string, scalars ...*Scalar) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(ckptPath(dir, s.slab.Rank))
	if err != nil {
		return err
	}
	werr := s.WriteCheckpointTo(f, scalars...)
	cerr := f.Close()
	s.comm.Barrier() // checkpoint is complete only when every rank is done
	if werr != nil {
		return werr
	}
	return cerr
}

// LoadCheckpoint restores this rank's state from dir (collective).
func (s *Solver) LoadCheckpoint(dir string, scalars ...*Scalar) error {
	f, err := os.Open(ckptPath(dir, s.slab.Rank))
	if err != nil {
		return err
	}
	defer f.Close()
	rerr := s.ReadCheckpointFrom(f, scalars...)
	s.comm.Barrier()
	return rerr
}
