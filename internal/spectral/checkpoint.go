package spectral

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checkpointing: production DNS campaigns integrate "many thousands of
// time steps" (§2) across many job allocations, so the solution must
// be able to leave and re-enter the machine exactly. Each rank writes
// its own Fourier-space slab (one file per rank, the pattern used on
// parallel file systems like Summit's SpectrumScale), with a
// self-describing header and a CRC so a corrupted restart is detected
// rather than silently integrated.

const (
	ckptMagic = 0x50534e53 // "PSNS"
	// ckptVersion 2 makes the file self-describing about its physics:
	// after the fixed header it records the equation-set name (so a
	// restart into a different system is rejected explicitly rather
	// than misread positionally) and, for forced systems, the
	// stochastic-forcing controller state (KF, Eps, TCorr, Seed — the
	// phase walk is stateless given seed and step, so these four
	// values restore it exactly), and it serializes all registry
	// fields generically rather than assuming the 3-velocity layout.
	// Version-1 files remain readable for the plain "ns" system they
	// were all written under; writes always produce version 2.
	ckptVersion = 2
)

type ckptHeader struct {
	Magic   uint32
	Version uint32
	N       uint64
	Ranks   uint64
	Rank    uint64
	Step    uint64
	Time    float64
	Nu      float64
	Fields  uint64 // system fields + optional legacy scalars
}

// ckptForcing is the serialized StochasticForcing controller state.
type ckptForcing struct {
	KF    uint64
	Eps   float64
	TCorr float64
	Seed  int64
}

// forcingHolder is the accessor a forced system exposes (ForcedNS
// does); the checkpoint uses it to round-trip controller state.
type forcingHolder interface {
	Forcing() *StochasticForcing
}

// WriteCheckpointTo serializes this rank's state to w. scalars may be
// empty.
func (s *Solver) WriteCheckpointTo(w io.Writer, scalars ...*Scalar) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	hdr := ckptHeader{
		Magic:   ckptMagic,
		Version: ckptVersion,
		N:       uint64(s.cfg.N),
		Ranks:   uint64(s.comm.Size()),
		Rank:    uint64(s.slab.Rank),
		Step:    uint64(s.step),
		Time:    s.time,
		Nu:      s.cfg.Nu,
		Fields:  uint64(s.nf + len(scalars)),
	}
	if err := binary.Write(out, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("checkpoint header: %w", err)
	}
	name := []byte(s.sys.Name())
	if err := binary.Write(out, binary.LittleEndian, uint32(len(name))); err != nil {
		return fmt.Errorf("checkpoint system name: %w", err)
	}
	if _, err := out.Write(name); err != nil {
		return fmt.Errorf("checkpoint system name: %w", err)
	}
	var present uint32
	var fstate ckptForcing
	if fh, ok := s.sys.(forcingHolder); ok {
		f := fh.Forcing()
		present = 1
		fstate = ckptForcing{KF: uint64(f.KF), Eps: f.Eps, TCorr: f.TCorr, Seed: f.Seed}
	}
	if err := binary.Write(out, binary.LittleEndian, present); err != nil {
		return fmt.Errorf("checkpoint forcing flag: %w", err)
	}
	if present == 1 {
		if err := binary.Write(out, binary.LittleEndian, &fstate); err != nil {
			return fmt.Errorf("checkpoint forcing state: %w", err)
		}
	}
	for c := 0; c < s.nf; c++ {
		if err := binary.Write(out, binary.LittleEndian, s.state[c]); err != nil {
			return fmt.Errorf("checkpoint field %d: %w", c, err)
		}
	}
	for i, sc := range scalars {
		if err := binary.Write(out, binary.LittleEndian, complex(sc.kappa, sc.MeanGrad)); err != nil {
			return fmt.Errorf("checkpoint scalar %d params: %w", i, err)
		}
		if err := binary.Write(out, binary.LittleEndian, sc.Th); err != nil {
			return fmt.Errorf("checkpoint scalar %d: %w", i, err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("checkpoint crc: %w", err)
	}
	return bw.Flush()
}

// ReadCheckpointFrom restores this rank's state from r, validating
// geometry, rank identity and the CRC. The solver must already be
// constructed with a matching configuration; scalars must match the
// count written.
func (s *Solver) ReadCheckpointFrom(r io.Reader, scalars ...*Scalar) error {
	crc := crc32.NewIEEE()
	in := io.TeeReader(bufio.NewReader(r), crc)
	var hdr ckptHeader
	if err := binary.Read(in, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("checkpoint header: %w", err)
	}
	switch {
	case hdr.Magic != ckptMagic:
		return fmt.Errorf("checkpoint: bad magic %#x", hdr.Magic)
	case hdr.Version != 1 && hdr.Version != ckptVersion:
		return fmt.Errorf("checkpoint: unsupported version %d", hdr.Version)
	case hdr.N != uint64(s.cfg.N):
		return fmt.Errorf("checkpoint: N=%d, solver has %d", hdr.N, s.cfg.N)
	case hdr.Ranks != uint64(s.comm.Size()):
		return fmt.Errorf("checkpoint: written on %d ranks, running on %d", hdr.Ranks, s.comm.Size())
	case hdr.Rank != uint64(s.slab.Rank):
		return fmt.Errorf("checkpoint: file is rank %d, this is rank %d", hdr.Rank, s.slab.Rank)
	}
	nf := 3 // version-1 layout: exactly the three velocity components
	if hdr.Version == 1 {
		// v1 files carry no system identity and were all written under
		// the pre-registry 3-velocity layout; restoring them into any
		// richer system would misattribute state positionally.
		if s.sys.Name() != "ns" {
			return fmt.Errorf("checkpoint: version-1 file carries no system identity; solver runs %q (only plain \"ns\" restores v1 files)", s.sys.Name())
		}
	} else {
		var nlen uint32
		if err := binary.Read(in, binary.LittleEndian, &nlen); err != nil {
			return fmt.Errorf("checkpoint system name: %w", err)
		}
		if nlen > 256 {
			return fmt.Errorf("checkpoint: implausible system-name length %d (corrupted file)", nlen)
		}
		name := make([]byte, nlen)
		if _, err := io.ReadFull(in, name); err != nil {
			return fmt.Errorf("checkpoint system name: %w", err)
		}
		if string(name) != s.sys.Name() {
			return fmt.Errorf("checkpoint: written by system %q, solver runs %q (construct the solver with the matching system before restoring)", name, s.sys.Name())
		}
		var present uint32
		if err := binary.Read(in, binary.LittleEndian, &present); err != nil {
			return fmt.Errorf("checkpoint forcing flag: %w", err)
		}
		if present == 1 {
			var fstate ckptForcing
			if err := binary.Read(in, binary.LittleEndian, &fstate); err != nil {
				return fmt.Errorf("checkpoint forcing state: %w", err)
			}
			fh, ok := s.sys.(forcingHolder)
			if !ok {
				return fmt.Errorf("checkpoint: file records forcing state but system %q has no forcing controller", s.sys.Name())
			}
			f := fh.Forcing()
			f.KF, f.Eps, f.TCorr, f.Seed = int(fstate.KF), fstate.Eps, fstate.TCorr, fstate.Seed
		}
		nf = s.nf
	}
	if hdr.Fields != uint64(nf+len(scalars)) {
		return fmt.Errorf("checkpoint: %d fields written, %d expected", hdr.Fields, nf+len(scalars))
	}
	for c := 0; c < nf; c++ {
		if err := binary.Read(in, binary.LittleEndian, s.state[c]); err != nil {
			return fmt.Errorf("checkpoint field %d: %w", c, err)
		}
	}
	for i, sc := range scalars {
		var params complex128
		if err := binary.Read(in, binary.LittleEndian, &params); err != nil {
			return fmt.Errorf("checkpoint scalar %d params: %w", i, err)
		}
		sc.kappa, sc.MeanGrad = real(params), imag(params)
		if err := binary.Read(in, binary.LittleEndian, sc.Th); err != nil {
			return fmt.Errorf("checkpoint scalar %d: %w", i, err)
		}
	}
	// Snapshot the digest of the payload, then read the trailer (the
	// trailer itself is not covered by the CRC).
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(in, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("checkpoint crc: %w", err)
	}
	if got != want {
		return fmt.Errorf("checkpoint: crc mismatch %#x != %#x (corrupted file)", got, want)
	}
	s.step = int(hdr.Step)
	s.time = hdr.Time
	return nil
}

// ckptPath names this rank's file inside dir.
func ckptPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt_rank%05d.bin", rank))
}

// SaveCheckpoint writes one file per rank under dir (collective: every
// rank must call it; dir is created if needed).
func (s *Solver) SaveCheckpoint(dir string, scalars ...*Scalar) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(ckptPath(dir, s.slab.Rank))
	if err != nil {
		return err
	}
	werr := s.WriteCheckpointTo(f, scalars...)
	cerr := f.Close()
	s.comm.Barrier() // checkpoint is complete only when every rank is done
	if werr != nil {
		return werr
	}
	return cerr
}

// LoadCheckpoint restores this rank's state from dir (collective).
func (s *Solver) LoadCheckpoint(dir string, scalars ...*Scalar) error {
	f, err := os.Open(ckptPath(dir, s.slab.Rank))
	if err != nil {
		return err
	}
	defer f.Close()
	rerr := s.ReadCheckpointFrom(f, scalars...)
	s.comm.Barrier()
	return rerr
}
