package spectral

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestTaylorGreenFieldInPhysicalSpace(t *testing.T) {
	n, p := 16, 2
	mpi.Run(p, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: n, Nu: 0.1})
		s.SetTaylorGreen()
		// Transform to physical space and compare pointwise.
		h := 2 * math.Pi / float64(n)
		for comp := 0; comp < 3; comp++ {
			copy(s.work, s.Uh[comp])
			s.tr.FourierToPhysical(s.physU[comp], s.work)
		}
		my := s.slab.MY()
		for iy := 0; iy < my; iy++ {
			y := float64(s.slab.YLo()+iy) * h
			for iz := 0; iz < n; iz++ {
				z := float64(iz) * h
				for ix := 0; ix < n; ix++ {
					x := float64(ix) * h
					idx := (iy*n+iz)*n + ix
					wantU := math.Sin(x) * math.Cos(y) * math.Cos(z)
					wantV := -math.Cos(x) * math.Sin(y) * math.Cos(z)
					if math.Abs(s.physU[0][idx]-wantU) > 1e-12 {
						t.Fatalf("u(%g,%g,%g)=%g want %g", x, y, z, s.physU[0][idx], wantU)
					}
					if math.Abs(s.physU[1][idx]-wantV) > 1e-12 {
						t.Fatalf("v(%g,%g,%g)=%g want %g", x, y, z, s.physU[1][idx], wantV)
					}
					if math.Abs(s.physU[2][idx]) > 1e-12 {
						t.Fatalf("w nonzero: %g", s.physU[2][idx])
					}
				}
			}
		}
	})
}

func TestTaylorGreenEnergy(t *testing.T) {
	// ⟨u²⟩ = ⟨v²⟩ = 1/8 each ⇒ E = ½(1/8+1/8) = 1/8.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		s.SetTaylorGreen()
		if e := s.Energy(); math.Abs(e-0.125) > 1e-12 {
			t.Errorf("TG energy %g want 0.125", e)
		}
	})
}

func TestSingleModeViscousDecayIsExact(t *testing.T) {
	// With a vanishing-amplitude mode the nonlinear term is negligible
	// and the integrating factor must give exp(−νk²t) decay exactly.
	n := 8
	nu := 0.05
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: n, Nu: nu, Scheme: RK2, Dealias: DealiasNone})
		amp := 1e-6
		// k = (1,2,1); amplitude ⊥ k: a = (2,-1,0).
		s.SetSingleMode(1, 2, 1, [3]complex128{complex(2*amp, 0), complex(-amp, 0), 0})
		e0 := s.Energy()
		dt := 0.01
		steps := 20
		for i := 0; i < steps; i++ {
			s.Step(dt)
		}
		k2 := 1.0 + 4.0 + 1.0
		want := e0 * math.Exp(-2*nu*k2*float64(steps)*dt)
		got := s.Energy()
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Errorf("decay: got %g want %g rel err %g", got, want, rel)
		}
	})
}

func TestDivergenceFreeInvariant(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 42)
		if d := s.DivergenceMax(); d > 1e-12 {
			t.Fatalf("initial divergence %g", d)
		}
		for i := 0; i < 5; i++ {
			s.Step(0.005)
		}
		if d := s.DivergenceMax(); d > 1e-10 {
			t.Errorf("divergence after steps %g", d)
		}
	})
}

func TestNonlinearTermConservesEnergy(t *testing.T) {
	// The projected, dealiased convolution satisfies Σ Re(û*·N̂) = 0:
	// the nonlinear term only transfers energy between scales.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.01, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 1.0, 7)
		tr := s.NonlinearEnergyTransfer()
		e := s.Energy()
		if math.Abs(tr) > 1e-10*e {
			t.Errorf("nonlinear transfer %g not ≈ 0 (E=%g)", tr, e)
		}
	})
}

func TestEnergyBalance(t *testing.T) {
	// Unforced: dE/dt = −ε. Integrate a short step and compare.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.05, Scheme: RK4, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 11)
		e0 := s.Energy()
		eps0 := s.Dissipation()
		dt := 1e-3
		s.Step(dt)
		e1 := s.Energy()
		dEdt := (e1 - e0) / dt
		if rel := math.Abs(dEdt+eps0) / eps0; rel > 0.02 {
			t.Errorf("dE/dt=%g want −ε=%g (rel %g)", dEdt, -eps0, rel)
		}
	})
}

func TestRankCountIndependence(t *testing.T) {
	// The same IC run on 1, 2 and 4 ranks must produce identical
	// energies after identical steps.
	n := 16
	results := map[int]float64{}
	var mu sync.Mutex
	for _, p := range []int{1, 2, 4} {
		p := p
		mpi.Run(p, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: n, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
			s.SetRandomIsotropic(3, 0.5, 99)
			for i := 0; i < 3; i++ {
				s.Step(0.005)
			}
			e := s.Energy()
			if c.Rank() == 0 {
				mu.Lock()
				results[p] = e
				mu.Unlock()
			}
		})
	}
	for _, p := range []int{2, 4} {
		if math.Abs(results[p]-results[1]) > 1e-12*results[1] {
			t.Errorf("P=%d energy %.15g differs from P=1 %.15g", p, results[p], results[1])
		}
	}
}

func TestRK4MoreAccurateThanRK2(t *testing.T) {
	// Against a fine-dt RK4 reference, RK4 at coarse dt must beat RK2
	// at the same coarse dt.
	n := 8
	run := func(scheme Scheme, dt float64, steps int) float64 {
		var e float64
		mpi.Run(1, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: n, Nu: 0.05, Scheme: scheme, Dealias: Dealias23})
			s.SetTaylorGreen()
			for i := 0; i < steps; i++ {
				s.Step(dt)
			}
			e = s.Energy()
		})
		return e
	}
	tEnd := 0.4
	ref := run(RK4, tEnd/64, 64)
	e2 := run(RK2, tEnd/8, 8)
	e4 := run(RK4, tEnd/8, 8)
	err2 := math.Abs(e2 - ref)
	err4 := math.Abs(e4 - ref)
	if err4 >= err2 {
		t.Errorf("RK4 error %g not smaller than RK2 error %g", err4, err2)
	}
}

func TestRK2SecondOrderConvergence(t *testing.T) {
	n := 8
	run := func(dt float64, steps int) float64 {
		var e float64
		mpi.Run(1, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: n, Nu: 0.05, Scheme: RK2, Dealias: Dealias23})
			s.SetTaylorGreen()
			for i := 0; i < steps; i++ {
				s.Step(dt)
			}
			e = s.Energy()
		})
		return e
	}
	tEnd := 0.4
	ref := run(tEnd/256, 256)
	errA := math.Abs(run(tEnd/8, 8) - ref)
	errB := math.Abs(run(tEnd/16, 16) - ref)
	order := math.Log2(errA / errB)
	if order < 1.6 || order > 2.6 {
		t.Errorf("RK2 observed order %g, want ≈2 (errA=%g errB=%g)", order, errA, errB)
	}
}

func TestForcingSustainsEnergy(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		f := NewForcing(2)
		s := NewSolver(c, Config{N: 16, Nu: 0.08, Scheme: RK2, Dealias: Dealias23, Forcing: f})
		s.SetRandomIsotropic(2, 0.5, 5)
		s.Step(0.002) // captures targets
		e1 := s.Energy()
		for i := 0; i < 10; i++ {
			s.Step(0.002)
		}
		e2 := s.Energy()
		// Forced low-k shells hold the bulk of the energy; the total
		// must not decay the way the unforced case does.
		if e2 < 0.8*e1 {
			t.Errorf("forced run decayed: %g → %g", e1, e2)
		}
	})
}

func TestUnforcedDecays(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.08, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(2, 0.5, 5)
		e1 := s.Energy()
		for i := 0; i < 10; i++ {
			s.Step(0.002)
		}
		if e2 := s.Energy(); e2 >= e1 {
			t.Errorf("unforced run did not decay: %g → %g", e1, e2)
		}
	})
}

func TestSpectrumSingleShell(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		amp := 0.3
		s.SetSingleMode(3, 0, 0, [3]complex128{0, complex(amp, 0), 0})
		spec := s.Spectrum()
		e := s.Energy()
		// All energy in shell 3.
		if math.Abs(spec[3]-e) > 1e-12 {
			t.Errorf("E(3)=%g total %g", spec[3], e)
		}
		for k, v := range spec {
			if k != 3 && v != 0 {
				t.Errorf("E(%d)=%g want 0", k, v)
			}
		}
		// |û|=amp at ±k ⇒ ⟨v²⟩=2·amp² ⇒ E = amp².
		if want := amp * amp; math.Abs(e-want) > 1e-12 {
			t.Errorf("energy %g want %g", e, want)
		}
	})
}

func TestStatisticsConsistency(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.03})
		s.SetRandomIsotropic(3, 0.6, 21)
		st := s.Statistics()
		if math.Abs(st.Energy-0.6) > 1e-9 {
			t.Errorf("energy %g want 0.6", st.Energy)
		}
		if math.Abs(st.URMS-math.Sqrt(2*st.Energy/3)) > 1e-12 {
			t.Errorf("urms inconsistent")
		}
		if st.Dissipation <= 0 || st.Enstrophy <= 0 {
			t.Errorf("nonpositive dissipation/enstrophy")
		}
		// ε = 2νΩ for solenoidal fields.
		if rel := math.Abs(st.Dissipation-2*s.cfg.Nu*st.Enstrophy) / st.Dissipation; rel > 1e-12 {
			t.Errorf("ε ≠ 2νΩ (rel %g)", rel)
		}
		if st.ReLambda <= 0 || math.IsNaN(st.ReLambda) {
			t.Errorf("bad ReLambda %g", st.ReLambda)
		}
	})
}

func TestPhaseShiftDealiasCloseToTruncation(t *testing.T) {
	// Phase shifting changes only the aliasing error; for a modest
	// field the two dealiasing modes must agree closely over a short
	// integration.
	n := 16
	run := func(d Dealias) float64 {
		var e float64
		mpi.Run(2, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: n, Nu: 0.03, Scheme: RK2, Dealias: d})
			s.SetRandomIsotropic(2.5, 0.4, 13)
			for i := 0; i < 4; i++ {
				s.Step(0.004)
			}
			ee := s.Energy() // collective: every rank must call it
			if c.Rank() == 0 {
				e = ee
			}
		})
		return e
	}
	eT := run(Dealias23)
	eS := run(Dealias23Shift)
	if rel := math.Abs(eT-eS) / eT; rel > 1e-4 {
		t.Errorf("truncation vs shift energies differ: %g vs %g (rel %g)", eT, eS, rel)
	}
}

func TestCFLPositive(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 8, Nu: 0.01})
		s.SetTaylorGreen()
		cfl := s.CFL(0.01)
		// u_max = 1 for TG, Δx = 2π/8 ⇒ CFL = 0.01/(2π/8).
		want := 0.01 / (2 * math.Pi / 8)
		if math.Abs(cfl-want) > 1e-10 {
			t.Errorf("CFL %g want %g", cfl, want)
		}
	})
}

func TestSolverPanicsOnOddN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	mpi.Run(1, func(c *mpi.Comm) {
		NewSolver(c, Config{N: 7, Nu: 0.1})
	})
}
