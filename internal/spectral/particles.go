package spectral

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mpi"
)

// Lagrangian particle tracking: the PSDNS codes of the paper's group
// follow O(10⁷) fluid particles through the Eulerian field to gather
// Lagrangian statistics (dispersion, time correlations). Particles are
// advected with the local fluid velocity, dx/dt = u(x(t), t),
// interpolated from the grid and stepped with the same RK2 scheme as
// the field.
//
// Every rank holds a copy of the full particle set (the "replicated
// cloud" strategy, appropriate for particle counts ≪ grid points);
// velocities are evaluated from each rank's slab and summed, so the
// interpolation is exact without particle migration logic.

// Particles is a set of fluid tracers attached to a solver.
type Particles struct {
	// X holds positions in [0, 2π)³, layout [n][3].
	X [][3]float64
	// V holds the last interpolated velocities (diagnostic).
	V [][3]float64

	x0 [][3]float64 // initial positions, for dispersion statistics
	k1 [][3]float64 // RK2 stage scratch
	xs [][3]float64
}

// NewParticles places n particles uniformly at random (deterministic
// in seed, identical on all ranks).
func (s *Solver) NewParticles(n int, seed int64) *Particles {
	if n < 1 {
		panic(fmt.Sprintf("spectral: invalid particle count %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Particles{
		X:  make([][3]float64, n),
		V:  make([][3]float64, n),
		x0: make([][3]float64, n),
		k1: make([][3]float64, n),
		xs: make([][3]float64, n),
	}
	for i := range p.X {
		for d := 0; d < 3; d++ {
			p.X[i][d] = 2 * math.Pi * rng.Float64()
		}
		p.x0[i] = p.X[i]
	}
	return p
}

// interpVelocities evaluates u at every particle position by trilinear
// interpolation from the current physical-space velocity (which must
// already be in s.physU), summing partial contributions across ranks:
// each rank contributes the terms whose y-nodes it owns (collective).
func (s *Solver) interpVelocities(p *Particles, out [][3]float64) {
	n := s.cfg.N
	h := 2 * math.Pi / float64(n)
	my, yLo := s.slab.MY(), s.slab.YLo()
	flat := make([]float64, 3*len(p.X))
	for i, x := range p.X {
		// Cell indices and weights per direction.
		var i0, i1 [3]int
		var w0, w1 [3]float64
		for d := 0; d < 3; d++ {
			q := x[d] / h
			base := math.Floor(q)
			f := q - base
			i0[d] = ((int(base) % n) + n) % n
			i1[d] = (i0[d] + 1) % n
			w0[d] = 1 - f
			w1[d] = f
		}
		// Sum over the 8 corners, but only y-nodes owned locally.
		for _, yc := range []struct {
			gy int
			wy float64
		}{{i0[1], w0[1]}, {i1[1], w1[1]}} {
			if yc.gy < yLo || yc.gy >= yLo+my {
				continue
			}
			ly := yc.gy - yLo
			for _, zc := range []struct {
				gz int
				wz float64
			}{{i0[2], w0[2]}, {i1[2], w1[2]}} {
				for _, xc := range []struct {
					gx int
					wx float64
				}{{i0[0], w0[0]}, {i1[0], w1[0]}} {
					w := yc.wy * zc.wz * xc.wx
					idx := (ly*n+zc.gz)*n + xc.gx
					for c := 0; c < 3; c++ {
						flat[3*i+c] += w * s.physU[c][idx]
					}
				}
			}
		}
	}
	mpi.AllreduceSum(s.comm, flat)
	for i := range out {
		out[i] = [3]float64{flat[3*i], flat[3*i+1], flat[3*i+2]}
	}
}

// syncPhysical brings the current velocity field to physical space.
func (s *Solver) syncPhysical() {
	for c := 0; c < 3; c++ {
		copy(s.work, s.Uh[c])
		s.tr.FourierToPhysical(s.physU[c], s.work)
	}
}

// StepParticles advances the particle set by dt with Heun's RK2 using
// the *current* (frozen) velocity field — call it once per solver
// step, before or after Step, as production codes do (the field is
// piecewise-frozen over a particle substep; the O(dt²) error matches
// the field scheme). Collective.
func (s *Solver) StepParticles(p *Particles, dt float64) {
	s.syncPhysical()
	s.interpVelocities(p, p.k1)
	twoPi := 2 * math.Pi
	for i := range p.X {
		for d := 0; d < 3; d++ {
			p.xs[i][d] = math.Mod(p.X[i][d]+dt*p.k1[i][d]+twoPi, twoPi)
		}
	}
	// Second stage at the predicted position (same frozen field).
	save := p.X
	p.X = p.xs
	s.interpVelocities(p, p.V)
	p.X = save
	for i := range p.X {
		for d := 0; d < 3; d++ {
			p.X[i][d] = math.Mod(p.X[i][d]+dt/2*(p.k1[i][d]+p.V[i][d])+twoPi, twoPi)
		}
	}
}

// Dispersion returns the mean-square displacement ⟨|x−x₀|²⟩ with
// minimum-image periodic differences (local computation; identical on
// all ranks since the cloud is replicated).
func (p *Particles) Dispersion() float64 {
	var acc float64
	for i := range p.X {
		for d := 0; d < 3; d++ {
			diff := periodicDelta(p.X[i][d] - p.x0[i][d])
			acc += diff * diff
		}
	}
	return acc / float64(len(p.X))
}

// periodicDelta maps a displacement into (−π, π].
func periodicDelta(d float64) float64 {
	twoPi := 2 * math.Pi
	d = math.Mod(d, twoPi)
	if d > math.Pi {
		d -= twoPi
	}
	if d <= -math.Pi {
		d += twoPi
	}
	return d
}

// MeanKineticEnergy returns ½⟨|v|²⟩ over the particle set from the
// last interpolated velocities.
func (p *Particles) MeanKineticEnergy() float64 {
	var acc float64
	for i := range p.V {
		for d := 0; d < 3; d++ {
			acc += p.V[i][d] * p.V[i][d]
		}
	}
	return acc / (2 * float64(len(p.V)))
}
