package spectral

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestCorrelationAtZeroIsVariance(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		s.SetRandomIsotropic(3, 0.5, 61)
		rr := s.LongitudinalCorrelation()
		u := s.VelocityMoments(0)
		if math.Abs(rr[0]-u.Variance) > 1e-10 {
			t.Errorf("R(0)=%g vs ⟨u²⟩=%g", rr[0], u.Variance)
		}
	})
}

func TestCorrelationOfSingleModeIsCosine(t *testing.T) {
	// u ∝ cos-mode at kx=2: R(r) = ⟨u²⟩·cos(2·r·Δx).
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		s.SetSingleMode(2, 0, 0, [3]complex128{0, complex(0.3, 0), 0})
		// The mode is in component 1; rotate it into component 0 by
		// using a mode with u₀ amplitude: k=(0,2,0), amp in x.
		s.SetSingleMode(0, 2, 0, [3]complex128{complex(0.3, 0), 0, 0})
		rr := s.LongitudinalCorrelation()
		// u₀ varies along y, so along-x correlation is flat: R(r)=R(0).
		for r := range rr {
			if math.Abs(rr[r]-rr[0]) > 1e-12 {
				t.Fatalf("flat correlation violated at r=%d", r)
			}
		}
		// Now a mode varying along x.
		s.SetSingleMode(2, 1, 0, [3]complex128{0, 0, complex(0.4, 0)})
		// u₀ is zero here; use the general relation via u component...
		// place energy in u₀ with k=(2,1,0), amplitude ⊥ k: a=(1,-2,0).
		s.SetSingleMode(2, 1, 0, [3]complex128{complex(0.1, 0), complex(-0.2, 0), 0})
		rr = s.LongitudinalCorrelation()
		dx := 2 * math.Pi / 16.0
		for r := range rr {
			want := rr[0] * math.Cos(2*float64(r)*dx)
			if math.Abs(rr[r]-want) > 1e-12 {
				t.Fatalf("cosine correlation violated at r=%d: %g vs %g", r, rr[r], want)
			}
		}
	})
}

func TestStructureFunction2FromCorrelation(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		s.SetRandomIsotropic(3, 0.5, 67)
		s2 := s.StructureFunction2()
		if s2[0] != 0 {
			t.Errorf("S2(0)=%g", s2[0])
		}
		// Direct physical-space check at one separation.
		copy(s.work, s.Uh[0])
		s.tr.FourierToPhysical(s.physU[0], s.work)
		n := 16
		r := 3
		var acc float64
		my := s.slab.MY()
		for iy := 0; iy < my; iy++ {
			for iz := 0; iz < n; iz++ {
				row := s.physU[0][(iy*n+iz)*n : (iy*n+iz)*n+n]
				for ix := 0; ix < n; ix++ {
					d := row[(ix+r)%n] - row[ix]
					acc += d * d
				}
			}
		}
		sums := []float64{acc}
		mpi.AllreduceSum(c, sums)
		direct := sums[0] / float64(n*n*n)
		if math.Abs(s2[r]-direct) > 1e-10 {
			t.Errorf("S2(%d): spectral %g vs direct %g", r, s2[r], direct)
		}
	})
}

func TestStructureFunction3CascadeDirection(t *testing.T) {
	// The nonlinear cascade drives the increment skewness
	// S₃/S₂^{3/2} downward toward its negative developed-turbulence
	// value, regardless of the (finite-sample skewed) initial
	// realization — the scale-space face of the 4/5 law's sign.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 32, Nu: 0.01, Scheme: RK2, Dealias: Dealias23,
			Forcing: NewForcing(2)})
		s.SetRandomIsotropic(2.5, 0.6, 71)
		r := 2
		skew := func() float64 {
			s2 := s.StructureFunction2()
			s3 := s.StructureFunction3()
			return s3[r] / math.Pow(s2[r], 1.5)
		}
		skew0 := skew()
		var hist []float64
		for i := 0; i < 45; i++ {
			s.Step(0.004)
			if i%15 == 14 {
				v := skew() // collective on every rank
				if c.Rank() == 0 {
					hist = append(hist, v)
				}
			}
		}
		if c.Rank() == 0 {
			prev := skew0
			for i, v := range hist {
				if v >= prev {
					t.Errorf("skewness not decreasing at checkpoint %d: %v (start %g)", i, hist, skew0)
				}
				prev = v
			}
			if final := hist[len(hist)-1]; final > 0.05 {
				t.Errorf("developed skewness %g, expected ≲ 0", final)
			}
		}
	})
}

func TestTransferSpectrumSumsToZero(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 73)
		tr := s.TransferSpectrum()
		var sum, absSum float64
		for _, v := range tr {
			sum += v
			absSum += math.Abs(v)
		}
		if absSum == 0 {
			t.Fatal("transfer spectrum identically zero")
		}
		if math.Abs(sum) > 1e-10*absSum {
			t.Errorf("ΣT(k)=%g not ≈ 0 (Σ|T|=%g)", sum, absSum)
		}
	})
}

func TestIntegralScalePositiveAndBounded(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 32, Nu: 0.01})
		s.SetRandomIsotropic(3, 0.5, 79)
		l := s.IntegralScale()
		if l <= 0 || l >= math.Pi {
			t.Errorf("integral scale %g outside (0, π)", l)
		}
	})
}
