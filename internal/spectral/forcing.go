package spectral

import (
	"math"

	"repro/internal/mpi"
)

// Forcing sustains stationary turbulence by freezing the kinetic
// energy of the low-wavenumber shells k ≤ KF at their initial values —
// the deterministic band forcing widely used in isotropic-turbulence
// DNS (the paper's production runs use the related Eswaran–Pope
// scheme; both inject energy only at the largest scales, which is what
// matters to the algorithmic workload).
//
// Deprecated: use the "forced-ns" System (New with WithForcing), whose
// StochasticForcing controller is allocation-free and injects energy
// at a prescribed rate instead of freezing shell energies.
type Forcing struct {
	// KF is the highest forced shell (typically 2).
	KF int

	target []float64 // per-shell target energies, captured on first use
}

// NewForcing creates a band forcing over shells 1…kf.
//
// Deprecated: use New with WithForcing(kf, eps) instead.
func NewForcing(kf int) *Forcing {
	if kf < 1 {
		panic("spectral: forcing needs kf ≥ 1")
	}
	return &Forcing{KF: kf}
}

// apply rescales each forced shell back to its target energy. It is
// collective across the solver's communicator.
func (f *Forcing) apply(s *Solver) {
	shells := f.shellEnergies(s)
	if f.target == nil {
		//psdns:allow hotalloc deprecated band forcing allocates by design; forced-ns system is the zero-alloc path
		f.target = make([]float64, len(shells))
		copy(f.target, shells)
		return
	}
	//psdns:allow hotalloc deprecated band forcing allocates by design; forced-ns system is the zero-alloc path
	scales := make([]float64, len(shells))
	for k := 1; k <= f.KF; k++ {
		if shells[k] > 0 && f.target[k] > 0 {
			scales[k] = math.Sqrt(f.target[k] / shells[k])
		} else {
			scales[k] = 1
		}
	}
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell >= 1 && shell <= f.KF {
					sc := complex(scales[shell], 0)
					s.Uh[0][idx] *= sc
					s.Uh[1][idx] *= sc
					s.Uh[2][idx] *= sc
				}
				idx++
			}
		}
	}
}

// shellEnergies returns the energies of shells 0…KF (collective).
func (f *Forcing) shellEnergies(s *Solver) []float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	shells := make([]float64, f.KF+1)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell <= f.KF {
					var e float64
					for c := 0; c < 3; c++ {
						v := s.Uh[c][idx]
						e += real(v)*real(v) + imag(v)*imag(v)
					}
					shells[shell] += 0.5 * specWeight(ix, n) * e * inv
				}
				idx++
			}
		}
	}
	mpi.AllreduceSum(s.comm, shells)
	return shells
}
