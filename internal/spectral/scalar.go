package spectral

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Scalar is a passive scalar field θ advected by the velocity field,
//
//	∂θ/∂t + u·∇θ = κ∇²θ + S,
//
// advanced in Fourier space with the same integrating-factor RK scheme
// as the velocity. Turbulent mixing of passive scalars is the
// production companion workload of the paper's group (the high-Schmidt
// GPU work of Clay et al. cited in §3.3); each scalar adds one inverse
// and three forward transform volumes per evaluation (θ and the flux
// components u_iθ) to exactly the traffic pattern the pipeline
// optimizes.
type Scalar struct {
	// Th holds the scalar in Fourier space, [mz][ny][nxh], code units.
	Th []complex128

	kappa float64 // diffusivity
	// MeanGrad, when non-zero, imposes a uniform mean scalar gradient
	// G·ŷ, adding the production term −G·u_y — the standard device for
	// statistically stationary scalar fluctuations.
	MeanGrad float64

	phys  []float64
	flux  []float64
	nlth  []complex128
	work  []complex128
	save  []complex128
	stage []complex128
}

// NewScalar attaches a passive scalar with diffusivity kappa to the
// solver's grid. The returned Scalar must be advanced through
// Solver.StepWithScalar.
func (s *Solver) NewScalar(kappa float64) *Scalar {
	if kappa < 0 {
		panic(fmt.Sprintf("spectral: negative diffusivity %g", kappa))
	}
	fl, pl := s.tr.FourierLen(), s.tr.PhysicalLen()
	return &Scalar{
		Th:    make([]complex128, fl),
		kappa: kappa,
		phys:  make([]float64, pl),
		flux:  make([]float64, pl),
		nlth:  make([]complex128, fl),
		work:  make([]complex128, fl),
		save:  make([]complex128, fl),
		stage: make([]complex128, fl),
	}
}

// Kappa reports the scalar diffusivity.
func (sc *Scalar) Kappa() float64 { return sc.kappa }

// SetSingleMode initializes the scalar with one Fourier mode (plus the
// conjugate bookkeeping handled by the same rules as velocity modes).
func (s *Solver) SetScalarSingleMode(sc *Scalar, kx, ky, kz int, amp complex128) {
	zero(sc.Th)
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	gy := (ky + n) % n
	gz := (kz + n) % n
	put := func(gy, gz int, v complex128) {
		if s.slab.ZOwner(gz) != s.slab.Rank {
			return
		}
		iz := gz - s.slab.ZLo()
		sc.Th[(iz*n+gy)*s.nxh+kx] = v * complex(n3, 0)
	}
	put(gy, gz, amp)
	if kx == 0 || kx == n/2 {
		py, pz := conjPairIndex(gy, gz, n)
		if py != gy || pz != gz {
			put(py, pz, complex(real(amp), -imag(amp)))
		}
	}
}

// SetScalarBlob initializes θ with a smooth low-wavenumber random
// field (same construction as the velocity IC, unprojected), variance
// normalized to v0.
func (s *Solver) SetScalarBlob(sc *Scalar, k0, v0 float64, seed int64) {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		gz := s.slab.ZLo() + iz
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < nxh; ix++ {
				v := s.modeIC(ix, iy, gz, k0, seed)
				sc.Th[idx] = v[0] // one component of the solenoidal field is a fine smooth scalar
				idx++
			}
		}
	}
	va := s.ScalarVariance(sc)
	if va > 0 {
		sf := complex(math.Sqrt(v0/va), 0)
		for i := range sc.Th {
			sc.Th[i] *= sf
		}
	}
}

// scalarRHS evaluates the advective term −ik·(uθ) − G·û_y (dealiased)
// into sc.nlth, given velocity Fourier coefficients u.
func (s *Solver) scalarRHS(sc *Scalar, u *[3][]complex128) {
	// Velocity to physical space (the solver's scratch physU).
	for c := 0; c < 3; c++ {
		copy(s.work, u[c])
		s.tr.FourierToPhysical(s.physU[c], s.work)
	}
	copy(sc.work, sc.Th)
	s.tr.FourierToPhysical(sc.phys, sc.work)

	zero(sc.nlth)
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	for comp := 0; comp < 3; comp++ {
		for m := range sc.flux {
			sc.flux[m] = s.physU[comp][m] * sc.phys[m]
		}
		s.tr.PhysicalToFourier(sc.work, sc.flux)
		idx := 0
		for iz := 0; iz < mz; iz++ {
			kz := s.kzs[iz]
			for iy := 0; iy < n; iy++ {
				ky := s.kys[iy]
				for ix := 0; ix < nxh; ix++ {
					k := [3]float64{s.kxs[ix], ky, kz}[comp]
					v := sc.work[idx]
					// −i·k·v
					sc.nlth[idx] += complex(k*imag(v), -k*real(v))
					idx++
				}
			}
		}
	}
	// Mean-gradient production −G·û_y and dealiasing.
	g := complex(sc.MeanGrad, 0)
	for i := range sc.nlth {
		if !s.mask[i] {
			sc.nlth[i] = 0
			continue
		}
		if sc.MeanGrad != 0 {
			sc.nlth[i] -= g * u[1][i]
		}
	}
}

// applyScalarIF multiplies every mode by exp(−κk²dt).
func (s *Solver) applyScalarIF(f []complex128, kappa, dt float64) {
	if kappa == 0 || dt == 0 {
		return
	}
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k2 := s.kxs[ix]*s.kxs[ix] + ky2 + kz2
				f[idx] *= complex(math.Exp(-kappa*k2*dt), 0)
				idx++
			}
		}
	}
}

// StepWithScalar advances velocity and scalar together by dt with the
// RK2 (Heun) scheme; the scalar stages see the velocity at the same
// substage values the velocity scheme produces, as in coupled
// production codes. Only RK2 is supported for the coupled step (the
// configuration the paper times).
func (s *Solver) StepWithScalar(sc *Scalar, dt float64) {
	defer s.annotateStall()
	if s.cfg.Scheme != RK2 {
		panic("spectral: StepWithScalar requires the RK2 scheme")
	}
	if s.nf != 3 {
		panic("spectral: StepWithScalar requires a 3-field system; scalar-carrying systems advance their scalars inside Step")
	}
	if s.cfg.Dealias == Dealias23Shift {
		s.shift = stepShift(s.step, s.cfg.N)
	}
	// Stage 1 at (uⁿ, θⁿ).
	s.nonlinear(&s.Uh)
	s.scalarRHS(sc, &s.Uh)
	copy(sc.save, sc.Th)
	s.applyScalarIF(sc.save, sc.kappa, dt) // E_κ·θⁿ
	for c := 0; c < 3; c++ {
		copy(s.save[c], s.Uh[c])
	}
	s.applyIF(s.save, dt)

	// Predictors.
	for i := range sc.Th {
		sc.Th[i] += complex(dt, 0) * sc.nlth[i]
	}
	s.applyScalarIF(sc.Th, sc.kappa, dt) // θ* = E_κ(θⁿ + dt·Nθ)
	copy(sc.stage, sc.nlth)
	s.applyScalarIF(sc.stage, sc.kappa, dt) // E_κ·Nθ(θⁿ)

	for c := 0; c < 3; c++ {
		for i := range s.Uh[c] {
			s.Uh[c][i] += complex(dt, 0) * s.nl[c][i]
		}
	}
	s.applyIF(s.state, dt)
	s.applyIF(s.nl, dt)
	for c := 0; c < 3; c++ {
		s.acc[c], s.nl[c] = s.nl[c], s.acc[c]
	}

	// Stage 2 at (u*, θ*).
	s.nonlinear(&s.Uh)
	s.scalarRHS(sc, &s.Uh)
	half := complex(dt/2, 0)
	for i := range sc.Th {
		sc.Th[i] = sc.save[i] + half*(sc.stage[i]+sc.nlth[i])
	}
	for c := 0; c < 3; c++ {
		for i := range s.Uh[c] {
			s.Uh[c][i] = s.save[c][i] + half*(s.acc[c][i]+s.nl[c][i])
		}
	}
	s.sys.PostStep(s, dt)
	if s.cfg.Forcing != nil {
		s.cfg.Forcing.apply(s)
	}
	s.step++
	s.time += dt
}

// ScalarVariance returns ⟨θ²⟩/2·2 = ⟨θ²⟩ (collective).
func (s *Solver) ScalarVariance(sc *Scalar) float64 {
	return s.scalarModeSum(sc, func(float64) float64 { return 1 })
}

// ScalarDissipation returns χ = 2κ·Σk²·(½|θ̂|²·2) = κ⟨|∇θ|²⟩·…
// following the convention χ = 2κ·Σ k²·E_θ(k) (collective).
func (s *Solver) ScalarDissipation(sc *Scalar) float64 {
	return 2 * sc.kappa * 0.5 * s.scalarModeSum(sc, func(k2 float64) float64 { return k2 })
}

// ScalarSpectrum returns the shell-summed scalar spectrum E_θ(k) with
// ⟨θ²⟩/2 = Σ E_θ(k) (collective).
func (s *Solver) ScalarSpectrum(sc *Scalar) []float64 {
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	// Shells extend to the corner of the wavenumber cube (√3·N/2) so
	// that ΣE(k) equals the total exactly.
	spec := make([]float64, int(math.Sqrt(3)*float64(n)/2)+2)
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz2 := s.kzs[iz] * s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky2 := s.kys[iy] * s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				k := math.Sqrt(s.kxs[ix]*s.kxs[ix] + ky2 + kz2)
				shell := int(k + 0.5)
				if shell < len(spec) {
					v := sc.Th[idx]
					e := real(v)*real(v) + imag(v)*imag(v)
					spec[shell] += 0.5 * specWeight(ix, n) * e * inv
				}
				idx++
			}
		}
	}
	mpi.AllreduceSum(s.comm, spec)
	return spec
}

func (s *Solver) scalarModeSum(sc *Scalar, f func(k2 float64) float64) float64 {
	return s.fieldModeSum(sc.Th, f)
}
