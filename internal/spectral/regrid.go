package spectral

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/mpi"
)

// Regridding: production campaigns at record resolutions do not start
// from random noise — they spectrally interpolate a developed field
// from a smaller grid onto the larger one (exact for band-limited
// data) and continue. This is how runs like the paper's 18432³ are
// seeded from earlier 8192³-class simulations.

// regridPacket carries one Fourier mode to its destination rank.
type regridPacket struct {
	Idx int // destination local index
	V   complex128
}

// Regrid transfers the velocity field of src onto dst, which must
// share the same communicator but may have a different (larger or
// smaller) grid size. Modes representable on both grids are copied
// (with the code-unit rescaling (N2/N1)³); Nyquist planes of the
// smaller grid are dropped, the standard band-limited convention.
// Collective on the shared communicator.
func Regrid(dst, src *Solver) {
	if dst.comm != src.comm {
		panic("spectral: Regrid requires solvers on the same communicator")
	}
	n1, n2 := src.cfg.N, dst.cfg.N
	if n1 == n2 {
		for c := 0; c < 3; c++ {
			copy(dst.Uh[c], src.Uh[c])
		}
		return
	}
	p := src.comm.Size()
	scale := complex(float64(n2)/float64(n1), 0)
	scale = scale * scale * scale // code units carry N³

	for c := 0; c < 3; c++ {
		zero(dst.Uh[c])
	}

	// Walk local source modes, bin packets per destination rank.
	sendBufs := make([][]regridPacket, p)
	nxh1 := src.nxh
	mz1 := src.slab.MZ()
	kmax := min(n1, n2) / 2 // modes with any |k| ≥ kmax are dropped
	dstSlab := grid.NewSlab(n2, p, 0)
	for c := 0; c < 3; c++ {
		idx := 0
		for iz := 0; iz < mz1; iz++ {
			kz := grid.Wavenumber(src.slab.ZLo()+iz, n1)
			for iy := 0; iy < n1; iy++ {
				ky := grid.Wavenumber(iy, n1)
				for ix := 0; ix < nxh1; ix++ {
					v := src.Uh[c][idx]
					idx++
					if v == 0 {
						continue
					}
					if ix >= kmax || abs(ky) >= kmax || abs(kz) >= kmax {
						continue
					}
					gy2 := (ky + n2) % n2
					gz2 := (kz + n2) % n2
					owner := dstSlab.ZOwner(gz2)
					iz2 := gz2 - owner*dstSlab.MZ()
					localIdx := (iz2*n2+gy2)*dst.nxh + ix
					sendBufs[owner] = append(sendBufs[owner],
						regridPacket{Idx: c*dst.tr.FourierLen() + localIdx, V: v * scale})
				}
			}
		}
	}

	// Flatten and exchange with variable counts.
	sendcounts := make([]int, p)
	senddispls := make([]int, p)
	total := 0
	for d := 0; d < p; d++ {
		sendcounts[d] = len(sendBufs[d])
		senddispls[d] = total
		total += sendcounts[d]
	}
	send := make([]regridPacket, 0, total)
	for d := 0; d < p; d++ {
		send = append(send, sendBufs[d]...)
	}
	// Distribute receive counts.
	counts := make([]int, p)
	copy(counts, sendcounts)
	recvcounts := make([]int, p)
	mpi.Alltoall(src.comm, counts, recvcounts)
	recvdispls := make([]int, p)
	rtotal := 0
	for s := 0; s < p; s++ {
		recvdispls[s] = rtotal
		rtotal += recvcounts[s]
	}
	recv := make([]regridPacket, rtotal)
	mpi.Alltoallv(src.comm, send, sendcounts, senddispls, recv, recvcounts, recvdispls)

	fl := dst.tr.FourierLen()
	for _, pk := range recv {
		c := pk.Idx / fl
		dst.Uh[c][pk.Idx%fl] = pk.V
	}
	dst.time = src.time
	dst.step = src.step
}

func abs(i int) int {
	if i < 0 {
		return -i
	}
	return i
}

// Vorticity computes ω̂ = ik×û into three freshly allocated arrays in
// code units (local; no communication).
func (s *Solver) Vorticity() [3][]complex128 {
	var w [3][]complex128
	for c := 0; c < 3; c++ {
		w[c] = make([]complex128, s.tr.FourierLen())
	}
	n, mz, nxh := s.cfg.N, s.slab.MZ(), s.nxh
	idx := 0
	for iz := 0; iz < mz; iz++ {
		kz := s.kzs[iz]
		for iy := 0; iy < n; iy++ {
			ky := s.kys[iy]
			for ix := 0; ix < nxh; ix++ {
				kx := s.kxs[ix]
				u, v, ww := s.Uh[0][idx], s.Uh[1][idx], s.Uh[2][idx]
				// ω = i·k × u.
				w[0][idx] = mulIK(ky, ww) - mulIK(kz, v)
				w[1][idx] = mulIK(kz, u) - mulIK(kx, ww)
				w[2][idx] = mulIK(kx, v) - mulIK(ky, u)
				idx++
			}
		}
	}
	return w
}

// mulIK returns i·k·v.
func mulIK(k float64, v complex128) complex128 {
	return complex(-k*imag(v), k*real(v))
}

// VorticityEnstrophyCheck returns ½⟨ω·ω⟩ computed from the explicit
// vorticity field — it must equal Enstrophy() to round-off
// (collective).
func (s *Solver) VorticityEnstrophyCheck() float64 {
	w := s.Vorticity()
	n := s.cfg.N
	n3 := float64(n) * float64(n) * float64(n)
	inv := 1 / (n3 * n3)
	var sum float64
	idx := 0
	for iz := 0; iz < s.slab.MZ(); iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < s.nxh; ix++ {
				wt := specWeight(ix, n)
				for c := 0; c < 3; c++ {
					v := w[c][idx]
					sum += wt * (real(v)*real(v) + imag(v)*imag(v)) * inv
				}
				idx++
			}
		}
	}
	out := []float64{0.5 * sum}
	mpi.AllreduceSum(s.comm, out)
	return out[0]
}

// SuggestDt returns the time step that attains the target advective
// Courant number (collective; costs three inverse transforms). A CFL
// target around 0.5 is typical for RK2 pseudo-spectral DNS.
func (s *Solver) SuggestDt(cflTarget float64) float64 {
	if cflTarget <= 0 {
		panic(fmt.Sprintf("spectral: invalid CFL target %g", cflTarget))
	}
	cflPerUnit := s.CFL(1.0)
	if cflPerUnit == 0 {
		return math.Inf(1)
	}
	return cflTarget / cflPerUnit
}
