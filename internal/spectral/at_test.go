package spectral

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/mpi"
)

// With no stragglers an asynchrony-tolerant solver must be bitwise
// identical to the synchronous one: every bounded exchange completes
// inside its generous deadline, no stale slab is ever gathered, the
// correction weight stays zero, and the gather kernels are the exact
// fused kernels of the synchronous strategies.
func TestSolverATZeroDelayBitwiseIdentity(t *testing.T) {
	const n = 16
	const steps = 4
	for _, p := range []int{1, 2, 4} {
		for _, sch := range []Scheme{RK2, RK4} {
			p, sch := p, sch
			t.Run(fmt.Sprintf("slab/p%d/scheme%d", p, sch), func(t *testing.T) {
				mpi.Run(p, func(c *mpi.Comm) {
					opts := []Option{WithNu(0.02), WithScheme(sch), WithDealias(Dealias23)}
					ref := New(c, n, opts...)
					ref.SetRandomIsotropic(3, 0.5, 9)
					at := New(c, n, append(opts[:len(opts):len(opts)],
						WithAsyncTolerance(1), WithAsyncDeadline(2*time.Second))...)
					at.SetRandomIsotropic(3, 0.5, 9)
					for i := 0; i < steps; i++ {
						ref.Step(0.004)
						at.Step(0.004)
					}
					for cmp := 0; cmp < 3; cmp++ {
						for i := range ref.Uh[cmp] {
							if ref.Uh[cmp][i] != at.Uh[cmp][i] {
								t.Errorf("rank %d component %d element %d: AT %v vs sync %v",
									c.Rank(), cmp, i, at.Uh[cmp][i], ref.Uh[cmp][i])
								return
							}
						}
					}
					if at.ATCorrections() != 0 {
						t.Errorf("rank %d: zero-delay run applied %d corrections", c.Rank(), at.ATCorrections())
					}
				})
			})
		}
	}
}

// The same identity must hold on the batched asynchronous engine:
// exchange.AT reuses the Fused gather kernels, so with no staleness
// the two engines walk the same arithmetic.
func TestSolverATZeroDelayBitwiseIdentityCoreEngine(t *testing.T) {
	const n = 16
	for _, p := range []int{1, 2} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			mpi.Run(p, func(c *mpi.Comm) {
				base := []Option{WithNu(0.02), WithScheme(RK2), WithDealias(Dealias23)}
				ref := New(c, n, append(base[:len(base):len(base)], WithTransform(
					core.NewAsyncSlabReal(c, n, core.Options{
						NP: 2, Granularity: core.PerSlab, Exchange: exchange.Fused,
					})))...)
				ref.SetRandomIsotropic(3, 0.5, 13)
				at := New(c, n, append(base[:len(base):len(base)],
					WithTransform(core.NewAsyncSlabReal(c, n, core.Options{
						NP: 2, Granularity: core.PerSlab, Exchange: exchange.AT,
						ATMaxStale: 1, ATDeadline: 2 * time.Second,
					})),
					WithAsyncTolerance(1))...)
				at.SetRandomIsotropic(3, 0.5, 13)
				for i := 0; i < 3; i++ {
					ref.Step(0.004)
					at.Step(0.004)
				}
				for cmp := 0; cmp < 3; cmp++ {
					for i := range ref.Uh[cmp] {
						if ref.Uh[cmp][i] != at.Uh[cmp][i] {
							t.Errorf("rank %d component %d element %d: AT %v vs sync %v",
								c.Rank(), cmp, i, at.Uh[cmp][i], ref.Uh[cmp][i])
							return
						}
					}
				}
			})
		})
	}
}

// Under a genuine straggler the AT solver keeps stepping on stale
// slabs instead of blocking, and the staleness-weighted correction
// keeps the solution close to the synchronous golden run: accuracy
// degrades gracefully and boundedly, never catastrophically.
func TestSolverATGracefulDegradationUnderStraggler(t *testing.T) {
	const (
		n     = 16
		p     = 4
		steps = 8
		dt    = 0.004
	)
	opts := []Option{WithNu(0.02), WithScheme(RK2), WithDealias(Dealias23)}

	// Golden synchronous run.
	var refEnergy float64
	refU := make([]complex128, 0)
	mpi.Run(p, func(c *mpi.Comm) {
		s := New(c, n, opts...)
		s.SetRandomIsotropic(3, 0.5, 21)
		for i := 0; i < steps; i++ {
			s.Step(dt)
		}
		e := s.Energy() // collective: every rank participates
		if c.Rank() == 0 {
			refEnergy = e
			refU = append(refU[:0], s.Uh[0]...)
		}
	})

	// AT run with rank p−1 straggling before every step and a zero
	// soft deadline, so its peers proceed the moment the hard bound
	// allows — maximum staleness exposure.
	var atEnergy float64
	var corrections int
	atU := make([]complex128, 0)
	mpi.Run(p, func(c *mpi.Comm) {
		s := New(c, n, append(opts[:len(opts):len(opts)],
			WithAsyncTolerance(2), WithAsyncDeadline(0))...)
		s.SetRandomIsotropic(3, 0.5, 21)
		for i := 0; i < steps; i++ {
			if c.Rank() == p-1 {
				time.Sleep(3 * time.Millisecond)
			}
			s.Step(dt)
		}
		e := s.Energy() // collective: every rank participates
		if c.Rank() == 0 {
			atEnergy = e
			corrections = s.ATCorrections()
			atU = append(atU[:0], s.Uh[0]...)
		}
	})

	if corrections == 0 {
		t.Errorf("straggler run applied no staleness corrections on rank 0 — AT path not exercised")
	}
	if math.IsNaN(atEnergy) || math.IsInf(atEnergy, 0) {
		t.Fatalf("AT run blew up: energy %v", atEnergy)
	}
	for i, v := range atU {
		re, im := real(v), imag(v)
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			t.Fatalf("AT run blew up at element %d: %v", i, v)
		}
	}
	relErr := math.Abs(atEnergy-refEnergy) / refEnergy
	if relErr > 0.05 {
		t.Errorf("energy degraded beyond bound: AT %g vs sync %g (rel err %g)", atEnergy, refEnergy, relErr)
	}
	// Field-level: the solutions may differ (that is the trade), but
	// only boundedly — the rms deviation stays a small fraction of
	// the rms signal.
	var num, den float64
	for i := range refU {
		d := refU[i] - atU[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(refU[i])*real(refU[i]) + imag(refU[i])*imag(refU[i])
	}
	if den > 0 && math.Sqrt(num/den) > 0.25 {
		t.Errorf("field deviation %g exceeds graceful-degradation bound", math.Sqrt(num/den))
	}
}
