package spectral

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/mpi"
	"repro/internal/pfft"
)

// With no stragglers an asynchrony-tolerant solver must be bitwise
// identical to the synchronous one: every bounded exchange completes
// inside its generous deadline, no stale slab is ever gathered, the
// correction weight stays zero, and the gather kernels are the exact
// fused kernels of the synchronous strategies.
func TestSolverATZeroDelayBitwiseIdentity(t *testing.T) {
	const n = 16
	const steps = 4
	for _, p := range []int{1, 2, 4} {
		for _, sch := range []Scheme{RK2, RK4} {
			p, sch := p, sch
			t.Run(fmt.Sprintf("slab/p%d/scheme%d", p, sch), func(t *testing.T) {
				mpi.Run(p, func(c *mpi.Comm) {
					opts := []Option{WithNu(0.02), WithScheme(sch), WithDealias(Dealias23)}
					ref := New(c, n, opts...)
					ref.SetRandomIsotropic(3, 0.5, 9)
					at := New(c, n, append(opts[:len(opts):len(opts)],
						WithAsyncTolerance(1), WithAsyncDeadline(2*time.Second))...)
					at.SetRandomIsotropic(3, 0.5, 9)
					for i := 0; i < steps; i++ {
						ref.Step(0.004)
						at.Step(0.004)
					}
					for cmp := 0; cmp < 3; cmp++ {
						for i := range ref.Uh[cmp] {
							if ref.Uh[cmp][i] != at.Uh[cmp][i] {
								t.Errorf("rank %d component %d element %d: AT %v vs sync %v",
									c.Rank(), cmp, i, at.Uh[cmp][i], ref.Uh[cmp][i])
								return
							}
						}
					}
					if at.ATCorrections() != 0 {
						t.Errorf("rank %d: zero-delay run applied %d corrections", c.Rank(), at.ATCorrections())
					}
				})
			})
		}
	}
}

// The same identity must hold on the batched asynchronous engine:
// exchange.AT reuses the Fused gather kernels, so with no staleness
// the two engines walk the same arithmetic.
func TestSolverATZeroDelayBitwiseIdentityCoreEngine(t *testing.T) {
	const n = 16
	for _, p := range []int{1, 2} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			mpi.Run(p, func(c *mpi.Comm) {
				base := []Option{WithNu(0.02), WithScheme(RK2), WithDealias(Dealias23)}
				ref := New(c, n, append(base[:len(base):len(base)], WithTransform(
					core.NewAsyncSlabReal(c, n, core.Options{
						NP: 2, Granularity: core.PerSlab, Exchange: exchange.Fused,
					})))...)
				ref.SetRandomIsotropic(3, 0.5, 13)
				at := New(c, n, append(base[:len(base):len(base)],
					WithTransform(core.NewAsyncSlabReal(c, n, core.Options{
						NP: 2, Granularity: core.PerSlab, Exchange: exchange.AT,
						ATMaxStale: 1, ATDeadline: 2 * time.Second,
					})),
					WithAsyncTolerance(1))...)
				at.SetRandomIsotropic(3, 0.5, 13)
				for i := 0; i < 3; i++ {
					ref.Step(0.004)
					at.Step(0.004)
				}
				for cmp := 0; cmp < 3; cmp++ {
					for i := range ref.Uh[cmp] {
						if ref.Uh[cmp][i] != at.Uh[cmp][i] {
							t.Errorf("rank %d component %d element %d: AT %v vs sync %v",
								c.Rank(), cmp, i, at.Uh[cmp][i], ref.Uh[cmp][i])
							return
						}
					}
				}
			})
		})
	}
}

// Under a genuine straggler the AT solver keeps stepping on stale
// slabs instead of blocking, and the staleness-weighted correction
// keeps the solution close to the synchronous golden run: accuracy
// degrades gracefully and boundedly, never catastrophically.
func TestSolverATGracefulDegradationUnderStraggler(t *testing.T) {
	const (
		n     = 16
		p     = 4
		steps = 8
		dt    = 0.004
	)
	opts := []Option{WithNu(0.02), WithScheme(RK2), WithDealias(Dealias23)}

	// Golden synchronous run.
	var refEnergy float64
	refU := make([]complex128, 0)
	mpi.Run(p, func(c *mpi.Comm) {
		s := New(c, n, opts...)
		s.SetRandomIsotropic(3, 0.5, 21)
		for i := 0; i < steps; i++ {
			s.Step(dt)
		}
		e := s.Energy() // collective: every rank participates
		if c.Rank() == 0 {
			refEnergy = e
			refU = append(refU[:0], s.Uh[0]...)
		}
	})

	// AT run with rank p−1 straggling before every step and a zero
	// soft deadline, so its peers proceed the moment the hard bound
	// allows — maximum staleness exposure. Stale slabs are only
	// accepted in whole-step quanta (site labels), and the busiest
	// plan runs 12 exchanges per RK2 step, so the bound must cover a
	// full step's worth of epochs to admit any staleness at all.
	var atEnergy float64
	var corrections int
	atU := make([]complex128, 0)
	mpi.Run(p, func(c *mpi.Comm) {
		s := New(c, n, append(opts[:len(opts):len(opts)],
			WithAsyncTolerance(12), WithAsyncDeadline(0))...)
		s.SetRandomIsotropic(3, 0.5, 21)
		for i := 0; i < steps; i++ {
			if c.Rank() == p-1 {
				time.Sleep(3 * time.Millisecond)
			}
			s.Step(dt)
		}
		e := s.Energy() // collective: every rank participates
		if c.Rank() == 0 {
			atEnergy = e
			corrections = s.ATCorrections()
			atU = append(atU[:0], s.Uh[0]...)
		}
	})

	if corrections == 0 {
		t.Errorf("straggler run applied no staleness corrections on rank 0 — AT path not exercised")
	}
	if math.IsNaN(atEnergy) || math.IsInf(atEnergy, 0) {
		t.Fatalf("AT run blew up: energy %v", atEnergy)
	}
	for i, v := range atU {
		re, im := real(v), imag(v)
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			t.Fatalf("AT run blew up at element %d: %v", i, v)
		}
	}
	relErr := math.Abs(atEnergy-refEnergy) / refEnergy
	if relErr > 0.05 {
		t.Errorf("energy degraded beyond bound: AT %g vs sync %g (rel err %g)", atEnergy, refEnergy, relErr)
	}
	// Field-level: the solutions may differ (that is the trade), but
	// only boundedly — the rms deviation stays a small fraction of
	// the rms signal.
	var num, den float64
	for i := range refU {
		d := refU[i] - atU[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(refU[i])*real(refU[i]) + imag(refU[i])*imag(refU[i])
	}
	if den > 0 && math.Sqrt(num/den) > 0.25 {
		t.Errorf("field deviation %g exceeds graceful-degradation bound", math.Sqrt(num/den))
	}
}

// laggedSystem evaluates the wrapped system's nonlinear term with the
// second half of every field replaced by its value from lagEvals
// nonlinear evaluations earlier — the deterministic analogue of half
// a rank's gathered data arriving a whole number of steps stale
// through a bounded exchange (lagEvals = lag·stages keeps the stage
// aligned, exactly as the site-matched exchange guarantees). Until
// enough history accumulates the current state is used (no injected
// error), mirroring an AT run's synchronous first steps.
type laggedSystem struct {
	System
	lagEvals int
	hist     [][][]complex128
	scratch  [][]complex128
}

func (l *laggedSystem) Nonlinear(s *Solver, state, rhs [][]complex128) {
	nf := len(state)
	snap := make([][]complex128, nf)
	for c := range snap {
		snap[c] = append([]complex128(nil), state[c]...)
	}
	l.hist = append(l.hist, snap)
	if l.scratch == nil {
		l.scratch = make([][]complex128, nf)
		for c := range l.scratch {
			l.scratch[c] = make([]complex128, len(state[c]))
		}
	}
	k := len(l.hist) - 1 - l.lagEvals
	if k < 0 {
		k = len(l.hist) - 1
	}
	old := l.hist[k]
	for c := range state {
		copy(l.scratch[c], state[c])
		half := len(state[c]) / 2
		copy(l.scratch[c][half:], old[c][half:])
	}
	l.System.Nonlinear(s, l.scratch, rhs)
}

// scriptedStaleness wraps a synchronous transform and reports a fixed
// staleness window on every drain, putting the correction weight
// under test control while the transform arithmetic stays exact.
type scriptedStaleness struct {
	Transform
	sum, calls int64
}

func (f *scriptedStaleness) TakeStaleness() (int, int64, int64, int64) {
	return int(f.sum), f.sum, f.sum, f.calls
}

// The bounded-staleness model the feature is built on, checked
// quantitatively with a scripted staleness pattern: lagging half of
// every field by k whole steps produces an error that scales first
// order in k, and the Kumari–Donzis correction with the matching
// weight (w = mean data age = k/2 over the half-stale domain) shrinks
// that error rather than a broad no-blow-up ceiling merely tolerating
// it.
func TestSolverATFirstOrderStalenessErrorAndCorrection(t *testing.T) {
	const (
		n     = 16
		p     = 2
		steps = 6
		dt    = 0.004
	)
	cfg := Config{N: n, Nu: 0.02, Scheme: RK2, Dealias: Dealias23}

	run := func(lag int, correct bool) []complex128 {
		var out []complex128
		mpi.Run(p, func(c *mpi.Comm) {
			tr := Transform(pfft.NewSlabReal(c, n))
			var sys System = newNavierStokes(SystemSpec{Nu: cfg.Nu})
			if lag > 0 {
				sys = &laggedSystem{System: sys, lagEvals: 2 * lag} // RK2: 2 evaluations per step
			}
			if correct {
				// Half of every field is lag steps old, so the honest
				// mean peer-slab age is lag/2: script the window so
				// the drained weight w = sum/(calls·(P−1)) matches.
				tr = &scriptedStaleness{Transform: tr, sum: int64(lag), calls: 2}
			}
			s := newSolverAT(c, cfg, tr, sys, correct)
			s.SetRandomIsotropic(3, 0.5, 33)
			for i := 0; i < steps; i++ {
				s.Step(dt)
			}
			if c.Rank() == 0 {
				out = make([]complex128, 0, 3*len(s.Uh[0]))
				for cmp := 0; cmp < 3; cmp++ {
					out = append(out, s.Uh[cmp]...)
				}
			}
		})
		return out
	}

	rms := func(a, b []complex128) float64 {
		var num float64
		for i := range a {
			d := a[i] - b[i]
			num += real(d)*real(d) + imag(d)*imag(d)
		}
		return math.Sqrt(num / float64(len(a)))
	}

	ref := run(0, false)
	e1 := rms(run(1, false), ref)
	e2 := rms(run(2, false), ref)
	c1 := rms(run(1, true), ref)
	c2 := rms(run(2, true), ref)
	t.Logf("uncorrected err: lag1=%g lag2=%g (ratio %g); corrected: lag1=%g lag2=%g", e1, e2, e2/e1, c1, c2)

	if e1 == 0 {
		t.Fatalf("one step of injected staleness produced zero error — lag harness inert")
	}
	// First-order scaling: doubling the lag roughly doubles the error
	// (generous envelope for nonlinearity and the lag-k warmup ramp).
	if r := e2 / e1; r < 1.4 || r > 3.5 {
		t.Errorf("staleness error ratio err(2)/err(1) = %g, want ≈2 (first order in the lag)", r)
	}
	if c1 >= e1 {
		t.Errorf("correction did not reduce the lag-1 error: corrected %g vs uncorrected %g", c1, e1)
	}
	if c2 >= e2 {
		t.Errorf("correction did not reduce the lag-2 error: corrected %g vs uncorrected %g", c2, e2)
	}
}
