package spectral

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestGradientOfSingleModeIsExact(t *testing.T) {
	// u = a·sin(2x)·… for mode k=(2,0,0): ∂u/∂x has variance
	// kx²·⟨u²⟩ and zero skewness (sinusoid).
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		amp := 0.4
		s.SetSingleMode(2, 0, 0, [3]complex128{0, complex(amp, 0), 0})
		u := s.VelocityMoments(1)
		g := s.TransverseGradientStats(1, 0) // ∂v/∂x
		if math.Abs(g.Variance-4*u.Variance) > 1e-12 {
			t.Errorf("gradient variance %g want %g", g.Variance, 4*u.Variance)
		}
		if math.Abs(g.Skewness) > 1e-8 {
			t.Errorf("sinusoid skewness %g", g.Skewness)
		}
		// Flatness of a sinusoid is 1.5.
		if math.Abs(g.Flatness-1.5) > 1e-8 {
			t.Errorf("sinusoid flatness %g want 1.5", g.Flatness)
		}
	})
}

func TestGradientMeanIsZero(t *testing.T) {
	// Periodic fields have exactly zero mean gradient.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		s.SetRandomIsotropic(3, 0.5, 19)
		for comp := 0; comp < 3; comp++ {
			g := s.LongitudinalGradientStats(comp)
			if math.Abs(g.Mean) > 1e-12 {
				t.Errorf("component %d: mean gradient %g", comp, g.Mean)
			}
		}
	})
}

func TestDevelopedTurbulenceHasNegativeSkewness(t *testing.T) {
	// The hallmark of the energy cascade: after the field develops,
	// longitudinal gradients are negatively skewed (≈ −0.3…−0.6) and
	// the flatness exceeds the Gaussian value 3 (intermittency).
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 32, Nu: 0.01, Scheme: RK2, Dealias: Dealias23,
			Forcing: NewForcing(2)})
		s.SetRandomIsotropic(2.5, 0.6, 4)
		for i := 0; i < 40; i++ {
			s.Step(0.004)
		}
		var sk, fl float64
		for comp := 0; comp < 3; comp++ {
			g := s.LongitudinalGradientStats(comp)
			sk += g.Skewness / 3
			fl += g.Flatness / 3
		}
		if c.Rank() == 0 {
			if sk >= -0.1 || sk < -1.0 {
				t.Errorf("mean longitudinal skewness %.3f, expected ≈ −0.3…−0.6", sk)
			}
			if fl < 2.8 {
				t.Errorf("mean flatness %.2f, expected ≥ ≈3 in developed turbulence", fl)
			}
		}
	})
}

func TestTaylorScaleCrossCheck(t *testing.T) {
	// λ from gradients must agree with the spectral estimate for
	// isotropic fields within statistical isotropy error.
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 32, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		s.SetRandomIsotropic(3, 0.5, 8)
		for i := 0; i < 5; i++ {
			s.Step(0.004)
		}
		lamG := s.TaylorScaleFromGradients()
		lamS := s.Statistics().TaylorScale
		if rel := math.Abs(lamG-lamS) / lamS; rel > 0.25 {
			t.Errorf("Taylor scales disagree: gradients %.4f spectral %.4f (rel %.2f)", lamG, lamS, rel)
		}
	})
}

func TestGradientStatsRankIndependent(t *testing.T) {
	get := func(p int) GradientStats {
		var out GradientStats
		mpi.Run(p, func(c *mpi.Comm) {
			s := NewSolver(c, Config{N: 16, Nu: 0.02})
			s.SetRandomIsotropic(3, 0.5, 31)
			g := s.LongitudinalGradientStats(0)
			if c.Rank() == 0 {
				out = g
			}
		})
		return out
	}
	a, b := get(1), get(4)
	if math.Abs(a.Variance-b.Variance) > 1e-12*a.Variance ||
		math.Abs(a.Skewness-b.Skewness) > 1e-9 ||
		math.Abs(a.Min-b.Min) > 1e-12 || math.Abs(a.Max-b.Max) > 1e-12 {
		t.Errorf("gradient stats depend on rank count: %+v vs %+v", a, b)
	}
}
