package spectral

import (
	"fmt"
	"sort"
	"sync"
)

// System is a pluggable equation set advanced by the solver's generic
// integrating-factor Runge–Kutta stepper. The paper's GPU pipeline is
// equation-agnostic — all the asynchronism lives in the transform and
// exchange layers — so one engine serves many physics modules, the
// shape of production hybrid pseudo-spectral frameworks (Rosenberg et
// al.: HD, MHD, Boussinesq, rotation from one code base).
//
// A System owns the physics, the Solver owns the numerics: field
// storage, RK stage buffers, wavenumber tables, the dealias mask and
// the distributed transforms. The contract:
//
//   - Fields() reports the number of spectral fields advanced
//     together. The first three are always the solenoidal velocity
//     components (every diagnostic, initial condition and checkpoint
//     helper assumes this layout); additional fields are
//     system-defined (passive scalars, magnetic potential, …).
//   - Nonlinear evaluates the explicit right-hand side of every field
//     of state into rhs. It is called once per RK stage with stage
//     values, so it must not assume state aliases the solver's
//     current fields. It runs on the step hot path: no allocations at
//     steady state (all scratch is bound in Setup).
//   - Diffusivity(c) is field c's linear diffusion coefficient ν_c;
//     the stepper integrates the ν_c·k² term exactly through the
//     integrating factor exp(−ν_c·k²·dt).
//   - PostStep runs after each completed step of size dt (forcing
//     controllers, stationarity constraints). Also hot: no
//     allocations.
//   - Diagnostics returns named scalar diagnostics for reporting
//     (collective; may allocate — it is not on the step path).
//
// Setup is called exactly once, when the solver is constructed; a
// System instance therefore serves exactly one Solver.
type System interface {
	Name() string
	Fields() int
	Setup(s *Solver)
	Diffusivity(c int) float64
	Nonlinear(s *Solver, state, rhs [][]complex128)
	PostStep(s *Solver, dt float64)
	Diagnostics(s *Solver) []Diagnostic
}

// Diagnostic is one named scalar a System reports alongside the
// standard velocity statistics.
type Diagnostic struct {
	Name  string
	Value float64
}

// ScalarSpec configures one passive scalar of a system: its Schmidt
// number Sc = ν/κ and the imposed uniform mean gradient G·ŷ (the
// production device for statistically stationary mixing; zero means
// pure decay).
type ScalarSpec struct {
	Schmidt  float64
	MeanGrad float64
}

// ForcingSpec configures the stochastic large-scale forcing of the
// forced systems: the highest forced shell KF, the target energy
// injection rate Eps, the phase decorrelation time TCorr (zero keeps
// the forcing deterministic) and the RNG seed.
type ForcingSpec struct {
	KF    int
	Eps   float64
	TCorr float64
	Seed  int64
}

// SystemSpec carries the physics parameters a SystemFactory builds a
// System from. Factories read the fields they understand and ignore
// the rest, so one spec serves every registered system.
type SystemSpec struct {
	Nu      float64      // kinematic viscosity
	Forcing ForcingSpec  // large-scale forcing (forced systems)
	Scalars []ScalarSpec // passive scalars (scalar-carrying systems)
	Omega   float64      // rotation rate about ẑ (rotating systems)
}

// SystemFactory builds a fresh System instance from a spec. Each call
// must return a new instance: Setup binds solver-sized scratch to it.
type SystemFactory func(spec SystemSpec) System

var (
	systemsMu  sync.Mutex
	systemsReg = map[string]SystemFactory{}
)

// RegisterSystem adds an equation set to the registry under name.
// Third-party packages register their systems in init(); registering
// a duplicate name panics, matching database/sql driver conventions.
func RegisterSystem(name string, f SystemFactory) {
	if name == "" || f == nil {
		panic("spectral: RegisterSystem needs a name and a factory")
	}
	systemsMu.Lock()
	defer systemsMu.Unlock()
	if _, dup := systemsReg[name]; dup {
		panic(fmt.Sprintf("spectral: system %q registered twice", name))
	}
	systemsReg[name] = f
}

// Systems returns the registered system names, sorted.
func Systems() []string {
	systemsMu.Lock()
	defer systemsMu.Unlock()
	names := make([]string, 0, len(systemsReg))
	for n := range systemsReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SystemCode returns a stable small-integer code for a registered
// system name — its index in the sorted Systems() list — for use as a
// metrics gauge value (the solver.system gauge labels step spans with
// the equation set the same way exchange.strategy labels the chosen
// transpose path). Unknown names return −1.
func SystemCode(name string) int {
	for i, n := range Systems() {
		if n == name {
			return i
		}
	}
	return -1
}

// NewNamedSystem builds a registered system from a spec. The error of
// an unknown name lists what is registered, so a CLI can surface the
// valid vocabulary directly.
func NewNamedSystem(name string, spec SystemSpec) (System, error) {
	systemsMu.Lock()
	f := systemsReg[name]
	systemsMu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("spectral: unknown system %q (registered: %v)", name, Systems())
	}
	return f(spec), nil
}
