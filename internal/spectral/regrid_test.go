package spectral

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestRegridUpsamplePreservesField(t *testing.T) {
	// Spectral interpolation is exact for band-limited fields: the
	// upsampled field evaluated at the coarse grid points... more
	// strongly, energy, dissipation and the spectrum are preserved.
	mpi.Run(2, func(c *mpi.Comm) {
		small := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		small.SetRandomIsotropic(3, 0.5, 17)
		big := NewSolver(c, Config{N: 32, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		Regrid(big, small)
		if math.Abs(big.Energy()-small.Energy()) > 1e-10 {
			t.Errorf("energy changed: %g vs %g", big.Energy(), small.Energy())
		}
		if math.Abs(big.Dissipation()-small.Dissipation()) > 1e-9 {
			t.Errorf("dissipation changed: %g vs %g", big.Dissipation(), small.Dissipation())
		}
		sSmall := small.Spectrum()
		sBig := big.Spectrum()
		for k := 0; k < len(sSmall); k++ {
			if math.Abs(sSmall[k]-sBig[k]) > 1e-12 {
				t.Errorf("E(%d): %g vs %g", k, sSmall[k], sBig[k])
			}
		}
		if d := big.DivergenceMax(); d > 1e-12 {
			t.Errorf("regridded field not solenoidal: %g", d)
		}
	})
}

func TestRegridPhysicalValuesMatchOnCommonPoints(t *testing.T) {
	// Every coarse grid point is also a fine grid point when N2 = 2·N1;
	// the upsampled physical field must take the same values there.
	n1, n2, p := 8, 16, 2
	mpi.Run(p, func(c *mpi.Comm) {
		small := NewSolver(c, Config{N: n1, Nu: 0})
		small.SetTaylorGreen()
		big := NewSolver(c, Config{N: n2, Nu: 0})
		Regrid(big, small)
		// Evaluate both in physical space; gather z-slabs... simpler:
		// compare via the analytic TG formula on the fine grid.
		for comp := 0; comp < 3; comp++ {
			copy(big.work, big.Uh[comp])
			big.tr.FourierToPhysical(big.physU[comp], big.work)
		}
		h := 2 * math.Pi / float64(n2)
		my := big.slab.MY()
		for iy := 0; iy < my; iy++ {
			y := float64(big.slab.YLo()+iy) * h
			for iz := 0; iz < n2; iz++ {
				z := float64(iz) * h
				for ix := 0; ix < n2; ix++ {
					x := float64(ix) * h
					idx := (iy*n2+iz)*n2 + ix
					if math.Abs(big.physU[0][idx]-math.Sin(x)*math.Cos(y)*math.Cos(z)) > 1e-12 {
						t.Fatalf("u mismatch at (%g,%g,%g)", x, y, z)
					}
				}
			}
		}
	})
}

func TestRegridDownsampleTruncates(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		big := NewSolver(c, Config{N: 32, Nu: 0.01})
		big.SetRandomIsotropic(3, 0.5, 23)
		small := NewSolver(c, Config{N: 16, Nu: 0.01})
		Regrid(small, big)
		// Energy of the small grid equals the big grid's energy in the
		// retained band |k_i| < 8.
		sBig := big.Spectrum()
		var eBand float64
		// Sum over shells fully inside the retained cube is not exactly
		// the truncation; instead compare spectra shell-by-shell where
		// the small grid is complete (k < 8/√3 is safely inside).
		sSmall := small.Spectrum()
		for k := 0; k <= 4; k++ {
			if math.Abs(sSmall[k]-sBig[k]) > 1e-12 {
				t.Errorf("E(%d): %g vs %g", k, sSmall[k], sBig[k])
			}
			eBand += sBig[k]
		}
		if small.Energy() > big.Energy() {
			t.Error("downsampling increased energy")
		}
		if d := small.DivergenceMax(); d > 1e-12 {
			t.Errorf("truncated field not solenoidal: %g", d)
		}
	})
}

func TestRegridSameSizeIsCopy(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		a := NewSolver(c, Config{N: 16, Nu: 0.01})
		a.SetRandomIsotropic(3, 0.5, 29)
		b := NewSolver(c, Config{N: 16, Nu: 0.01})
		Regrid(b, a)
		for cc := 0; cc < 3; cc++ {
			for i := range a.Uh[cc] {
				if a.Uh[cc][i] != b.Uh[cc][i] {
					t.Fatalf("copy differs at %d", i)
				}
			}
		}
	})
}

func TestRegridThenContinueIsStable(t *testing.T) {
	// The production pattern: develop at N=16, regrid to 32, keep
	// integrating. Energy must evolve smoothly (no blow-up from bad
	// mode placement).
	mpi.Run(2, func(c *mpi.Comm) {
		small := NewSolver(c, Config{N: 16, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		small.SetRandomIsotropic(3, 0.5, 41)
		for i := 0; i < 5; i++ {
			small.Step(0.004)
		}
		big := NewSolver(c, Config{N: 32, Nu: 0.02, Scheme: RK2, Dealias: Dealias23})
		Regrid(big, small)
		e0 := big.Energy()
		for i := 0; i < 5; i++ {
			big.Step(0.004)
		}
		e1 := big.Energy()
		if math.IsNaN(e1) || e1 > e0 {
			t.Errorf("post-regrid integration unstable: %g → %g", e0, e1)
		}
		if big.StepCount() != 10 {
			t.Errorf("step counter %d, want 10 (5 inherited + 5)", big.StepCount())
		}
	})
}

func TestVorticityEnstrophyConsistency(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.02})
		s.SetRandomIsotropic(3, 0.5, 47)
		omega := s.Enstrophy()
		check := s.VorticityEnstrophyCheck()
		if rel := math.Abs(omega-check) / omega; rel > 1e-12 {
			t.Errorf("½⟨ω²⟩=%g vs Σk²E=%g (rel %g)", check, omega, rel)
		}
	})
}

func TestVorticityOfTaylorGreen(t *testing.T) {
	// TG vorticity: ω_z(x,y,z) = −2·cos x·cos y·cos z at t=0 ⇒
	// Ω = ½⟨ω²⟩ with ⟨ω_x²⟩=⟨ω_y²⟩=1/8·… compute: ω_x = −cos x sin y sin z·…
	// Known result: Ω = 3/8 for the TG field above… verify against
	// spectral enstrophy instead of hand algebra.
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0})
		s.SetTaylorGreen()
		// k²=3 for every TG mode ⇒ Ω = k²·E = 3·0.125 = 0.375.
		if math.Abs(s.Enstrophy()-0.375) > 1e-12 {
			t.Errorf("TG enstrophy %g want 0.375", s.Enstrophy())
		}
		if math.Abs(s.VorticityEnstrophyCheck()-0.375) > 1e-12 {
			t.Errorf("vorticity check %g want 0.375", s.VorticityEnstrophyCheck())
		}
	})
}

func TestSuggestDt(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSolver(c, Config{N: 16, Nu: 0.01})
		s.SetTaylorGreen() // u_max = 1
		dt := s.SuggestDt(0.5)
		// CFL = u_max·dt/Δx = dt/(2π/16) = 0.5 ⇒ dt = π/16.
		want := 0.5 * 2 * math.Pi / 16
		if math.Abs(dt-want) > 1e-10 {
			t.Errorf("SuggestDt %g want %g", dt, want)
		}
		if got := s.CFL(dt); math.Abs(got-0.5) > 1e-10 {
			t.Errorf("achieved CFL %g", got)
		}
	})
}
