package tuning

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/exchange"
	"repro/internal/mpi"
)

// SchemaVersion is the tuning-cache file schema. Schema 1 (one
// strategy for both transpose directions, no decomposition) is read
// with an explicit backward-compatible decode — StrategyZY = Strategy,
// slab decomposition — so PR-8 caches keep their warm restarts. A file
// carrying any other foreign version is ignored wholesale (treated as
// all-miss and rewritten on the next Store), so an unknown schema can
// never replay a decision recorded under different semantics.
const SchemaVersion = 2

// DefaultDir is where tuned constructors persist their winners unless
// pointed elsewhere.
const DefaultDir = "artifacts/cache"

// Key identifies one tuning decision: the engine that searched, the
// problem and world geometry, and the machine the trials ran on.
// Anything that can shift the trial timings must be in the key.
type Key struct {
	// Engine names the tuned constructor ("slab" or "async") — the two
	// engines search different sub-spaces, so their winners must never
	// substitute for each other.
	Engine string `json:"engine"`
	// N is the transform size, P the world size.
	N int `json:"n"`
	P int `json:"p"`
	// Maxprocs is runtime.GOMAXPROCS(0) at trial time: the in-process
	// ranks and worker teams share one scheduler, so the winning
	// overlap strategy shifts with the processor budget.
	Maxprocs int `json:"maxprocs"`
	// Machine is hw.Fingerprint() at trial time.
	Machine string `json:"machine"`
}

type cacheEntry struct {
	Key Key `json:"key"`
	// Point is the winning configuration.
	Point Point `json:"point"`
	// CostSeconds is the winner's max-over-ranks trial time, recorded
	// for EXPERIMENTS-style inspection; it plays no part in lookups.
	CostSeconds float64 `json:"cost_seconds"`
}

type cacheFile struct {
	Schema  int          `json:"schema"`
	Entries []cacheEntry `json:"entries"`
}

// Cache is a persistent tuning cache: one JSON file of (Key → Point)
// decisions under a cache directory. Every read error — missing file,
// truncated write, corrupted JSON, foreign schema — degrades to a
// cache miss, never an error: the worst a broken cache can do is cost
// one live trial run.
type Cache struct {
	path string
}

// Open returns the cache living in dir (created lazily on the first
// Store). An empty dir means DefaultDir.
func Open(dir string) *Cache {
	if dir == "" {
		dir = DefaultDir
	}
	return &Cache{path: filepath.Join(dir, "tuning.json")}
}

// load reads the cache file, returning an empty file on any error or
// foreign schema. Schema-1 files are upgraded in memory: their single
// strategy applied to both directions, decomposition slab.
func (c *Cache) load() cacheFile {
	var f cacheFile
	data, err := os.ReadFile(c.path)
	if err != nil {
		return cacheFile{Schema: SchemaVersion}
	}
	if json.Unmarshal(data, &f) != nil {
		return cacheFile{Schema: SchemaVersion}
	}
	switch f.Schema {
	case SchemaVersion:
		return f
	case 1:
		// Schema 1 predates strategy_zy/pr/pc: absent JSON fields
		// decode to zero, which is already the slab decomposition but
		// the wrong zy strategy (Staged regardless of the winner).
		// Mirror the recorded strategy into both directions.
		for i := range f.Entries {
			f.Entries[i].Point.StrategyZY = f.Entries[i].Point.Strategy
			f.Entries[i].Point.Pr = 0
			f.Entries[i].Point.Pc = 0
		}
		f.Schema = SchemaVersion
		return f
	default:
		return cacheFile{Schema: SchemaVersion}
	}
}

// Lookup returns the persisted winner for key, if any.
func (c *Cache) Lookup(key Key) (Point, bool) {
	if c == nil {
		return Point{}, false
	}
	for _, e := range c.load().Entries {
		if e.Key == key {
			return e.Point, true
		}
	}
	return Point{}, false
}

// Store persists pt as the winner for key, replacing any previous
// entry for the same key. The write is atomic (temp file + rename) so
// a crash mid-store leaves the previous cache intact, and failures are
// silently dropped — persisting is an optimization, not a contract.
func (c *Cache) Store(key Key, pt Point, cost float64) {
	if c == nil {
		return
	}
	f := c.load()
	kept := f.Entries[:0]
	for _, e := range f.Entries {
		if e.Key != key {
			kept = append(kept, e)
		}
	}
	f.Entries = append(kept, cacheEntry{Key: key, Point: pt, CostSeconds: cost})
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return
	}
	dir := filepath.Dir(c.path)
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "tuning-*.json")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if tmp.Close() != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), c.path) != nil {
		os.Remove(tmp.Name())
	}
}

// --- collective cache protocol ------------------------------------------

// Point broadcast encoding: [hit, strategyYZ, strategyZY, perSlab,
// np, workers, single, pr, pc] as float64 slots through the world's
// Allgather, rank 0's row being authoritative. The in-process ranks
// share one filesystem, but routing every decision through rank 0
// keeps the protocol correct for any transport: ranks never each read
// a file that a concurrent Store might be replacing.
const encLen = 9

func encodePoint(pt Point, hit bool) [encLen]float64 {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return [encLen]float64{
		b2f(hit), float64(pt.Strategy), float64(pt.StrategyZY),
		b2f(pt.PerSlab), float64(pt.NP), float64(pt.Workers),
		b2f(pt.Single), float64(pt.Pr), float64(pt.Pc),
	}
}

func decodePoint(enc []float64) (Point, bool) {
	if enc[0] == 0 {
		return Point{}, false
	}
	return Point{
		Strategy:   exchange.Strategy(int(enc[1])),
		StrategyZY: exchange.Strategy(int(enc[2])),
		PerSlab:    enc[3] != 0,
		NP:         int(enc[4]),
		Workers:    int(enc[5]),
		Single:     enc[6] != 0,
		Pr:         int(enc[7]),
		Pc:         int(enc[8]),
	}, true
}

// Lookup consults the cache for key and broadcasts rank 0's answer so
// every rank applies the same decision (or agrees to run live trials).
// Collective; a nil cache is a guaranteed miss on every rank.
func (cfg Config) Lookup(c *mpi.Comm, key Key) (Point, bool) {
	var mine [encLen]float64
	if c.Rank() == 0 {
		if pt, ok := cfg.Cache.Lookup(key); ok {
			mine = encodePoint(pt, true)
		}
	}
	all := make([]float64, encLen*c.Size())
	mpi.Allgather(c, mine[:], all)
	return decodePoint(all[:encLen])
}

// Store persists the winning point from rank 0. Not collective — every
// other rank returns immediately.
func (cfg Config) Store(c *mpi.Comm, key Key, pt Point, cost float64) {
	if c.Rank() != 0 {
		return
	}
	cfg.Cache.Store(key, pt, cost)
}
