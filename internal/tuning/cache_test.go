package tuning

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exchange"
	"repro/internal/mpi"
)

func testKey() Key {
	return Key{Engine: "slab", N: 64, P: 4, Maxprocs: 8, Machine: "linux-amd64-c8"}
}

func TestCacheRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := Open(dir)
	key := testKey()
	if _, ok := c.Lookup(key); ok {
		t.Fatal("lookup hit on an empty cache")
	}
	pt := Point{Strategy: exchange.ChunkedFused, PerSlab: true, NP: 3, Workers: 2, Single: true}
	c.Store(key, pt, 0.25)
	// A fresh handle must see the persisted decision through the file.
	got, ok := Open(dir).Lookup(key)
	if !ok {
		t.Fatal("lookup miss after store")
	}
	if got != pt {
		t.Fatalf("lookup = %+v, want %+v", got, pt)
	}
	// Any key component changing is a different decision.
	for _, k := range []Key{
		{Engine: "async", N: 64, P: 4, Maxprocs: 8, Machine: "linux-amd64-c8"},
		{Engine: "slab", N: 128, P: 4, Maxprocs: 8, Machine: "linux-amd64-c8"},
		{Engine: "slab", N: 64, P: 2, Maxprocs: 8, Machine: "linux-amd64-c8"},
		{Engine: "slab", N: 64, P: 4, Maxprocs: 4, Machine: "linux-amd64-c8"},
		{Engine: "slab", N: 64, P: 4, Maxprocs: 8, Machine: "other-c16"},
	} {
		if _, ok := Open(dir).Lookup(k); ok {
			t.Fatalf("lookup hit for foreign key %+v", k)
		}
	}
}

func TestCacheReplacesSameKey(t *testing.T) {
	dir := t.TempDir()
	c := Open(dir)
	key := testKey()
	c.Store(key, Point{Strategy: exchange.Staged, Workers: 1}, 1.0)
	c.Store(key, Point{Strategy: exchange.Fused, Workers: 2}, 0.5)
	got, ok := c.Lookup(key)
	if !ok || got.Strategy != exchange.Fused || got.Workers != 2 {
		t.Fatalf("lookup = %+v ok=%v, want the replacing entry", got, ok)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tuning.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 1 {
		t.Fatalf("file holds %d entries for one key, want 1", len(f.Entries))
	}
}

// Every way a cache file can be unreadable must degrade to a miss,
// and the next Store must recover the file.
func TestCacheCorruptionDegradesToMiss(t *testing.T) {
	key := testKey()
	pt := Point{Strategy: exchange.Fused, Workers: 2}
	cases := map[string]func(path string){
		"garbage": func(path string) {
			os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644)
		},
		"truncated": func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"stale_schema": func(path string) {
			data, _ := os.ReadFile(path)
			var f cacheFile
			json.Unmarshal(data, &f)
			f.Schema = SchemaVersion + 1
			out, _ := json.Marshal(f)
			os.WriteFile(path, out, 0o644)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c := Open(dir)
			c.Store(key, pt, 0.5)
			if _, ok := c.Lookup(key); !ok {
				t.Fatal("lookup miss before corruption")
			}
			corrupt(filepath.Join(dir, "tuning.json"))
			if got, ok := c.Lookup(key); ok {
				t.Fatalf("corrupted cache replayed %+v; want a miss", got)
			}
			// Store on top of the broken file rewrites it cleanly.
			c.Store(key, pt, 0.5)
			if got, ok := c.Lookup(key); !ok || got != pt {
				t.Fatalf("lookup after recovering store = %+v ok=%v", got, ok)
			}
		})
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if _, ok := c.Lookup(testKey()); ok {
		t.Fatal("nil cache hit")
	}
	c.Store(testKey(), Point{}, 0) // must not panic
}

// The zero space searches exactly the concrete strategies per
// direction at the engine defaults, yz strategies varying fastest,
// Staged/Staged first — the ordering the Resolve tie-break depends on.
func TestSpacePointsDefaultsAndOrder(t *testing.T) {
	var s Space
	pts := s.Points(3, 2)
	nc := len(exchange.Concrete)
	if len(pts) != nc*nc {
		t.Fatalf("default space has %d points, want %d", len(pts), nc*nc)
	}
	for i, pt := range pts {
		want := Point{
			Strategy:   exchange.Concrete[i%nc],
			StrategyZY: exchange.Concrete[i/nc],
			NP:         3, Workers: 2,
		}
		if pt != want {
			t.Fatalf("point %d = %+v, want %+v", i, pt, want)
		}
	}

	s = Space{
		Strategies:   []exchange.Strategy{exchange.Staged, exchange.Fused},
		StrategiesZY: []exchange.Strategy{exchange.Staged},
		PerSlab:      []bool{true, false},
		Workers:      []int{1, 4},
	}
	pts = s.Points(3, 2)
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	// YZ strategy varies fastest, then PerSlab, then Workers.
	want := []Point{
		{Strategy: exchange.Staged, PerSlab: true, NP: 3, Workers: 1},
		{Strategy: exchange.Fused, PerSlab: true, NP: 3, Workers: 1},
		{Strategy: exchange.Staged, PerSlab: false, NP: 3, Workers: 1},
		{Strategy: exchange.Fused, PerSlab: false, NP: 3, Workers: 1},
		{Strategy: exchange.Staged, PerSlab: true, NP: 3, Workers: 4},
		{Strategy: exchange.Fused, PerSlab: true, NP: 3, Workers: 4},
		{Strategy: exchange.Staged, PerSlab: false, NP: 3, Workers: 4},
		{Strategy: exchange.Fused, PerSlab: false, NP: 3, Workers: 4},
	}
	for i := range want {
		w := want[i]
		w.StrategyZY = exchange.Staged
		if pts[i] != w {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], w)
		}
	}

	// A decomposition axis multiplies the space, slab points first.
	s = Space{
		Strategies: []exchange.Strategy{exchange.Staged},
		Decomps:    []Decomp{DecompSlab, Pencil(2, 4)},
	}
	pts = s.Points(3, 2)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if !pts[0].Decomp().IsSlab() || pts[1].Decomp() != Pencil(2, 4) {
		t.Fatalf("decomp order = %v, %v; want slab, 2x4", pts[0].Decomp(), pts[1].Decomp())
	}
}

// The collective lookup must return rank 0's decision on every rank,
// and count zero trials for a warm hit.
func TestCollectiveLookupBroadcastsRank0(t *testing.T) {
	const p = 4
	dir := t.TempDir()
	key := testKey()
	key.P = p
	pt := Point{Strategy: exchange.ChunkedFused, NP: 2, Workers: 3}
	Open(dir).Store(key, pt, 0.1)
	cfg := Config{Cache: Open(dir)}
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		got, ok := cfg.Lookup(c, key)
		if !ok {
			panic(fmt.Sprintf("rank %d: warm lookup missed", c.Rank()))
		}
		if got != pt {
			panic(fmt.Sprintf("rank %d: lookup = %+v, want %+v", c.Rank(), got, pt))
		}
		miss := key
		miss.N = 999
		if _, ok := cfg.Lookup(c, miss); ok {
			panic(fmt.Sprintf("rank %d: cold lookup hit", c.Rank()))
		}
	}); err != nil {
		t.Fatal(err)
	}
}
