package tuning

import (
	"math"
	"time"

	"repro/internal/exchange"
	"repro/internal/mpi"
)

// Trials is the best-of-k depth of the trial protocol: each candidate
// is timed k times and only its best wall time competes, so a single
// scheduler hiccup cannot disqualify a fast configuration.
const Trials = 3

// TrialBest runs the collective barrier-fenced best-of-k trial for one
// candidate and returns this rank's best wall time in seconds. run
// must be a collective exchange body (every rank calls TrialBest for
// the same candidate at the same point in its collective order); the
// barrier in front of every repetition keeps ranks aligned so no rank
// times a peer's leftover skew. Every run is counted in the per-rank
// tune.trials counter — the metric warm-cache tests assert stays flat
// when a cache hit skips the trials.
func TrialBest(c *mpi.Comm, k int, run func()) float64 {
	trials := c.Metrics().CounterRank("tune.trials", c.Rank())
	best := math.Inf(1)
	for i := 0; i < k; i++ {
		c.Barrier()
		t0 := time.Now()
		run()
		if dt := time.Since(t0).Seconds(); dt < best {
			best = dt
		}
		trials.Inc()
	}
	return best
}

// ResolveTimes gathers each rank's per-candidate best times and
// resolves the collectively-agreed winner: candidate costs are max
// over ranks (a collective exchange completes when its slowest rank
// does) and the smallest cost wins, ties toward the earlier candidate.
// Every rank computes the same (index, cost) from the same gathered
// table, so no extra agreement round is needed. Collective.
func ResolveTimes(c *mpi.Comm, mine []float64) (int, float64) {
	all := make([]float64, len(mine)*c.Size())
	mpi.Allgather(c, mine, all)
	perRank := make([][]float64, c.Size())
	for r := range perRank {
		perRank[r] = all[r*len(mine) : (r+1)*len(mine)]
	}
	return exchange.ResolveIndex(len(mine), perRank)
}
