package tuning

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exchange"
)

func TestDecompParseString(t *testing.T) {
	cases := []struct {
		in   string
		want Decomp
	}{
		{"slab", DecompSlab},
		{"SLAB", DecompSlab},
		{"auto", DecompAuto},
		{"2x4", Pencil(2, 4)},
		{"16X2", Pencil(16, 2)},
		{" 4x8 ", Pencil(4, 8)},
	}
	for _, c := range cases {
		got, err := ParseDecomp(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseDecomp(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		back, err := ParseDecomp(got.String())
		if err != nil || back != got {
			t.Fatalf("String/Parse roundtrip for %v failed: %v, %v", got, back, err)
		}
	}
	for _, bad := range []string{"", "pencil", "0x4", "2x-1", "2x", "x4", "2x4x8"} {
		if d, err := ParseDecomp(bad); err == nil {
			t.Fatalf("ParseDecomp(%q) = %v, want error", bad, d)
		}
	}
}

func TestDecompValid(t *testing.T) {
	cases := []struct {
		d    Decomp
		n, p int
		want bool
	}{
		{DecompSlab, 16, 4, true},
		{DecompSlab, 16, 32, false},  // slab wall: P > N
		{DecompSlab, 12, 5, false},   // p must divide n
		{Pencil(4, 8), 16, 32, true}, // past the slab wall
		{Pencil(8, 4), 16, 32, true},
		{Pencil(16, 2), 16, 32, true},
		{Pencil(2, 16), 16, 32, false}, // pc > n/2+1: empty x spans
		{Pencil(2, 4), 16, 8, true},
		{Pencil(2, 4), 16, 16, false}, // pr*pc != p
		{Pencil(3, 2), 16, 6, false},  // pr must divide n
		{Pencil(2, 3), 12, 6, true},
		{DecompAuto, 16, 4, false}, // auto is a request, not a layout
	}
	for _, c := range cases {
		if got := c.d.Valid(c.n, c.p); got != c.want {
			t.Fatalf("%v.Valid(%d, %d) = %v, want %v", c.d, c.n, c.p, got, c.want)
		}
	}
}

func TestDecompositionsEnumeration(t *testing.T) {
	// P ≤ N with p | n: slab first, then pencils ascending in Pr.
	got := Decompositions(16, 8)
	want := []Decomp{DecompSlab, Pencil(1, 8), Pencil(2, 4), Pencil(4, 2), Pencil(8, 1)}
	if len(got) != len(want) {
		t.Fatalf("Decompositions(16, 8) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decompositions(16, 8)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// P > N: no slab; (2,16) is excluded (x-span would be empty) and
	// (32,1) is excluded (32 does not divide 16).
	got = Decompositions(16, 32)
	want = []Decomp{Pencil(4, 8), Pencil(8, 4), Pencil(16, 2)}
	if len(got) != len(want) {
		t.Fatalf("Decompositions(16, 32) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decompositions(16, 32)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, d := range got {
		if !d.Valid(16, 32) {
			t.Fatalf("enumerated decomposition %v is not valid", d)
		}
	}
}

// A schema-1 cache file (PR 8) must keep its warm restarts: the single
// recorded strategy decodes into both directions with a slab layout.
func TestCacheSchema1Fallback(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	v1 := map[string]any{
		"schema": 1,
		"entries": []map[string]any{{
			"key": key,
			"point": map[string]any{
				"strategy": int(exchange.Fused),
				"per_slab": true,
				"np":       3,
				"workers":  2,
				"single":   false,
			},
			"cost_seconds": 0.5,
		}},
	}
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tuning.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := Open(dir).Lookup(key)
	if !ok {
		t.Fatal("schema-1 cache missed; want backward-compatible hit")
	}
	want := Point{
		Strategy: exchange.Fused, StrategyZY: exchange.Fused,
		PerSlab: true, NP: 3, Workers: 2,
	}
	if got != want {
		t.Fatalf("schema-1 decode = %+v, want %+v", got, want)
	}
	// A store on top upgrades the file to the current schema without
	// dropping the migrated entry.
	key2 := key
	key2.N = 128
	pt2 := Point{Strategy: exchange.Staged, StrategyZY: exchange.ChunkedFused, Pr: 2, Pc: 4}
	Open(dir).Store(key2, pt2, 0.1)
	data, err = os.ReadFile(filepath.Join(dir, "tuning.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != SchemaVersion {
		t.Fatalf("rewritten schema = %d, want %d", f.Schema, SchemaVersion)
	}
	if got, ok := Open(dir).Lookup(key); !ok || got != want {
		t.Fatalf("migrated entry after store = %+v ok=%v, want %+v", got, ok, want)
	}
	if got, ok := Open(dir).Lookup(key2); !ok || got != pt2 {
		t.Fatalf("new entry = %+v ok=%v, want %+v", got, ok, pt2)
	}
}

// A pencil point survives the cache and the collective encoding.
func TestCachePencilPointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	pt := Point{
		Strategy: exchange.Fused, StrategyZY: exchange.Staged,
		Workers: 2, Pr: 4, Pc: 8,
	}
	Open(dir).Store(key, pt, 0.2)
	got, ok := Open(dir).Lookup(key)
	if !ok || got != pt {
		t.Fatalf("lookup = %+v ok=%v, want %+v", got, ok, pt)
	}
	enc := encodePoint(pt, true)
	dec, ok := decodePoint(enc[:])
	if !ok || dec != pt {
		t.Fatalf("encode/decode = %+v ok=%v, want %+v", dec, ok, pt)
	}
}
