// Package tuning generalizes the plan-time exchange autotuner into a
// whole-step autotuner: instead of timing only the transpose-exchange
// strategy, a tuned constructor searches a TuneSpace over every knob
// the paper's production runs tune together — exchange strategy,
// transfer granularity (per-pencil vs per-slab), pencil count, worker
// team size and wire precision — using the same barrier-fenced
// best-of-k, max-over-ranks Resolve protocol the strategy autotuner
// already uses (exchange.ResolveIndex), and persists the winner in a
// JSON tuning cache keyed by (N, P, GOMAXPROCS, machine fingerprint)
// so production restarts skip the trials entirely.
//
// The package holds the engine-agnostic pieces: the search space and
// its enumeration (Space, Point), the collective trial protocol
// (TrialBest, ResolveTimes) with its trial-count metric, and the
// persistent cache with its collective lookup (Config.Lookup/Store).
// The engines (pfft.NewSlabRealTuned, core.NewAsyncSlabRealTuned) own
// the trial bodies, because only they know how to run one exchange of
// a given configuration.
package tuning

import "repro/internal/exchange"

// Point is one configuration in the whole-step tune space. Engines
// search the sub-space meaningful to them (the slab transform has no
// pencils, so it ignores NP and PerSlab); the unused dimensions keep
// their defaults and ride along unchanged.
type Point struct {
	// Strategy is the transpose-exchange strategy for the yz
	// (Fourier→physical) direction (always concrete: Auto is a
	// request to search, AT changes the answer and is never a tuning
	// point).
	Strategy exchange.Strategy `json:"strategy"`
	// StrategyZY is the strategy for the zy (physical→Fourier)
	// direction. The two transposes move the same bytes through
	// different access patterns, so their winners can differ; schema-1
	// caches recorded one strategy for both and decode with
	// StrategyZY = Strategy.
	StrategyZY exchange.Strategy `json:"strategy_zy"`
	// PerSlab selects one whole-slab exchange over per-pencil
	// exchanges (the async engine's Granularity).
	PerSlab bool `json:"per_slab"`
	// NP is the pencil count per slab (async engine only).
	NP int `json:"np"`
	// Workers is the per-rank worker-team size.
	Workers int `json:"workers"`
	// Single stages exchange payloads through complex64 buffers,
	// halving the bytes on the wire for ~1e-7 relative rounding.
	Single bool `json:"single"`
	// Pr and Pc record the winning decomposition: zero means slab,
	// otherwise the field is pencil-decomposed over a Pr×Pc process
	// grid (Pr row groups over y/z, Pc column groups over z/x).
	Pr int `json:"pr,omitempty"`
	Pc int `json:"pc,omitempty"`
}

// Decomp returns the point's decomposition dimension.
func (pt Point) Decomp() Decomp { return Decomp{Pr: pt.Pr, Pc: pt.Pc} }

// Space is the cartesian tune space: every combination of the listed
// dimension values is a candidate Point. Empty dimensions default to
// the singleton zero point of that dimension (Strategies to the
// concrete strategy list), so the zero Space searches exchange
// strategies only — exactly the PR-5 autotuner.
type Space struct {
	// Strategies is the candidate list for the yz direction. When
	// StrategiesZY is empty it serves both directions and the two are
	// tuned as a cross product of the same list.
	Strategies []exchange.Strategy
	// StrategiesZY is the candidate list for the zy direction.
	StrategiesZY []exchange.Strategy
	PerSlab      []bool
	NP           []int
	Workers      []int
	Single       []bool
	// Decomps lists candidate decompositions (DecompSlab and/or
	// pencil grids). Empty means slab only — engines that cannot run
	// pencil-decomposed never see a pencil point. Use
	// Decompositions(n, p) for every valid layout.
	Decomps []Decomp
}

// withDefaults fills empty dimensions: concrete strategies, and the
// provided engine defaults for the scalar dimensions.
func (s Space) withDefaults(np, workers int) Space {
	if len(s.Strategies) == 0 {
		s.Strategies = exchange.Concrete
	}
	if len(s.StrategiesZY) == 0 {
		s.StrategiesZY = s.Strategies
	}
	if len(s.PerSlab) == 0 {
		s.PerSlab = []bool{false}
	}
	if len(s.NP) == 0 {
		s.NP = []int{np}
	}
	if len(s.Workers) == 0 {
		s.Workers = []int{workers}
	}
	if len(s.Single) == 0 {
		s.Single = []bool{false}
	}
	if len(s.Decomps) == 0 {
		s.Decomps = []Decomp{DecompSlab}
	}
	return s
}

// Points enumerates the space in deterministic order, yz strategies
// varying fastest, then zy strategies, with decompositions slowest.
// Resolve ties break toward the earlier point, so listing the safe
// defaults first (slab, Staged, double precision) keeps the tuner
// conservative under a statistical wash, exactly as the strategy
// autotuner is. np and workers are the engine defaults substituted
// into empty dimensions.
func (s Space) Points(np, workers int) []Point {
	s = s.withDefaults(np, workers)
	var pts []Point
	for _, d := range s.Decomps {
		for _, sg := range s.Single {
			for _, w := range s.Workers {
				for _, n := range s.NP {
					for _, ps := range s.PerSlab {
						for _, stz := range s.StrategiesZY {
							for _, st := range s.Strategies {
								pts = append(pts, Point{
									Strategy: st, StrategyZY: stz,
									PerSlab: ps, NP: n,
									Workers: w, Single: sg,
									Pr: d.Pr, Pc: d.Pc,
								})
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Config carries a tuned constructor's inputs: the space to search and
// the persistent cache consulted before (and updated after) the
// trials. A nil Cache tunes live on every construction; a zero Space
// searches exchange strategies only.
type Config struct {
	Space Space
	Cache *Cache
}
