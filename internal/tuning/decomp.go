package tuning

import (
	"fmt"
	"strconv"
	"strings"
)

// Decomp selects how the 3D field is distributed over the P ranks.
//
// The zero value is the slab decomposition: P slabs of N/P planes,
// valid only while P divides N (the paper's layout, capped at P ≤ N).
// A pencil decomposition splits the field over a Pr×Pc process grid —
// Pr row groups and Pc column groups — so P = Pr·Pc ranks each own an
// N/Pr × N/Pc × N pencil, lifting the slab's P ≤ N scaling wall.
// DecompAuto asks a tuned constructor to measure every valid layout
// and keep the winner.
type Decomp struct {
	Pr int `json:"pr"`
	Pc int `json:"pc"`
}

var (
	// DecompSlab is the slab decomposition (the zero value).
	DecompSlab = Decomp{}
	// DecompAuto asks tuned constructors to search slab and every
	// valid pencil grid. It never appears in a Point: the cache
	// records the concrete winner.
	DecompAuto = Decomp{Pr: -1, Pc: -1}
)

// Pencil returns the pencil decomposition over a pr×pc process grid.
func Pencil(pr, pc int) Decomp { return Decomp{Pr: pr, Pc: pc} }

// IsSlab reports whether d is the slab decomposition.
func (d Decomp) IsSlab() bool { return d == DecompSlab }

// IsAuto reports whether d requests an autotuned layout choice.
func (d Decomp) IsAuto() bool { return d == DecompAuto }

// IsPencil reports whether d is a concrete pencil grid.
func (d Decomp) IsPencil() bool { return d.Pr > 0 && d.Pc > 0 }

func (d Decomp) String() string {
	switch {
	case d.IsSlab():
		return "slab"
	case d.IsAuto():
		return "auto"
	default:
		return fmt.Sprintf("%dx%d", d.Pr, d.Pc)
	}
}

// ParseDecomp parses "slab", "auto", or an explicit "PRxPC" grid
// (e.g. "2x4").
func ParseDecomp(s string) (Decomp, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "slab":
		return DecompSlab, nil
	case "auto":
		return DecompAuto, nil
	}
	lo, hi, ok := strings.Cut(strings.ToLower(s), "x")
	if ok {
		pr, err1 := strconv.Atoi(strings.TrimSpace(lo))
		pc, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 == nil && err2 == nil && pr > 0 && pc > 0 {
			return Pencil(pr, pc), nil
		}
	}
	return Decomp{}, fmt.Errorf("tuning: bad decomposition %q (want slab, auto, or PRxPC)", s)
}

// Valid reports whether d can lay out an n³ field over p ranks. Slab
// needs p | n; a pencil grid needs pr·pc = p, pr | n, pc | n, and
// pc ≤ n/2+1 so every column group owns a non-empty span of the
// Hermitian-reduced x axis.
func (d Decomp) Valid(n, p int) bool {
	switch {
	case d.IsSlab():
		return p >= 1 && n%p == 0
	case d.IsPencil():
		return d.Pr*d.Pc == p && n%d.Pr == 0 && n%d.Pc == 0 && d.Pc <= n/2+1
	default:
		return false
	}
}

// Decompositions enumerates every decomposition valid for an n³ field
// over p ranks, slab first (when valid) and pencil grids in ascending
// Pr. The ordering is deterministic and identical on every rank, and
// Resolve ties break toward earlier entries, so slab — the simpler,
// single-exchange layout — wins a statistical wash.
func Decompositions(n, p int) []Decomp {
	var ds []Decomp
	if (DecompSlab).Valid(n, p) {
		ds = append(ds, DecompSlab)
	}
	for pr := 1; pr <= p; pr++ {
		if p%pr != 0 {
			continue
		}
		if d := Pencil(pr, p/pr); d.Valid(n, p) {
			ds = append(ds, d)
		}
	}
	return ds
}
