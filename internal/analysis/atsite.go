package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ATSite guards the asynchrony-tolerant exchange contract:
//
//  1. DoBounded is only called on plans constructed with a staleness
//     bound (NewExchangePlanBounded). A bounded receive on a plan
//     whose peers publish without epoch tags returns slabs of
//     unknowable staleness — the cross-site corruption class PR 7
//     fixed at runtime;
//  2. a plan with multiple DoBounded call sites must be SetSite
//     labeled, so the per-direction staleness accounting can tell the
//     YZ and ZY transposes apart;
//  3. exchange.AT never flows into a concrete strategy candidate set
//     ([]exchange.Strategy literals or appends): AT is an execution
//     mode, not a tunable strategy, and an autotuner that trials it
//     changes the answer it is timing.
var ATSite = &Analyzer{
	Name: "atsite",
	Doc:  "DoBounded requires bounded-constructed, site-labeled plans; exchange.AT stays out of candidate sets",
	Run:  runATSite,
}

func runATSite(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "mpi" {
		return // the runtime's own internals define the bounded protocol
	}

	// Constructor mode per plan key (a local/param object or a struct
	// field). Keys that see both modes, or whose construction is not
	// syntactically visible (closure-built, passed in), stay unknown
	// and are skipped — lenient by design.
	const (
		modeSync  = "sync"
		modeAT    = "at"
		modeMixed = "mixed"
	)
	modes := map[types.Object]string{}
	setMode := func(key types.Object, m string) {
		if key == nil {
			return
		}
		if prev, ok := modes[key]; ok && prev != m {
			modes[key] = modeMixed
			return
		}
		modes[key] = m
	}
	ctorMode := func(e ast.Expr) string {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return ""
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Name() != "mpi" {
			return ""
		}
		switch f.Name() {
		case "NewExchangePlan":
			return modeSync
		case "NewExchangePlanBounded":
			return modeAT
		}
		return ""
	}
	keyOf := func(e ast.Expr) types.Object {
		e = ast.Unparen(e)
		if field := fieldOf(pass.Info, e); field != nil {
			return field
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				return obj
			}
			return pass.Info.Defs[id]
		}
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Rhs {
					if m := ctorMode(n.Rhs[i]); m != "" {
						setMode(keyOf(n.Lhs[i]), m)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i := range n.Values {
					if m := ctorMode(n.Values[i]); m != "" {
						setMode(pass.Info.Defs[n.Names[i]], m)
					}
				}
			}
			return true
		})
	}

	// Walk DoBounded/SetSite call sites and candidate-set literals.
	boundedSites := map[types.Object][]token.Pos{}
	sited := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				checkATFlow(pass, n)
				return true
			}
			checkATFlow(pass, n)
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "mpi" {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil || !isNamed(sig.Recv().Type(), "mpi", "ExchangePlan") {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := keyOf(sel.X)
			switch fn.Name() {
			case "DoBounded":
				if key == nil {
					return true
				}
				if modes[key] == modeSync {
					pass.Reportf(call.Pos(),
						"DoBounded on a plan constructed without a staleness bound (NewExchangePlan); use NewExchangePlanBounded")
				}
				boundedSites[key] = append(boundedSites[key], call.Pos())
			case "SetSite":
				if key != nil {
					sited[key] = true
				}
			}
			return true
		})
	}

	// Deterministic order over keys for stable output.
	var flagged []token.Pos
	for key, sites := range boundedSites {
		if len(sites) < 2 || sited[key] {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		flagged = append(flagged, sites[1])
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i] < flagged[j] })
	for _, pos := range flagged {
		pass.Reportf(pos,
			"multiple DoBounded sites on one plan without SetSite labeling; label each site so staleness accounting stays per-direction")
	}
}

// checkATFlow flags exchange.AT inside []exchange.Strategy composite
// literals and appends.
func checkATFlow(pass *Pass, n ast.Node) {
	switch n := n.(type) {
	case *ast.CompositeLit:
		if !isStrategySlice(pass.Info.TypeOf(n)) {
			return
		}
		for _, elt := range n.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if isATRef(pass.Info, elt) {
				pass.Reportf(elt.Pos(),
					"exchange.AT in a concrete strategy candidate set; AT is an execution mode, not a tunable strategy")
			}
		}
	case *ast.CallExpr:
		if !isBuiltin(pass.Info, n, "append") || len(n.Args) == 0 {
			return
		}
		if !isStrategySlice(pass.Info.TypeOf(n.Args[0])) {
			return
		}
		for _, a := range n.Args[1:] {
			if isATRef(pass.Info, a) {
				pass.Reportf(a.Pos(),
					"exchange.AT appended to a concrete strategy candidate set; AT is an execution mode, not a tunable strategy")
			}
		}
	}
}

// isStrategySlice reports whether t is a slice or array of
// exchange.Strategy.
func isStrategySlice(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isNamed(u.Elem(), "exchange", "Strategy")
	case *types.Array:
		return isNamed(u.Elem(), "exchange", "Strategy")
	}
	return false
}

// isATRef reports whether the expression denotes exchange.AT.
func isATRef(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := info.Uses[id]
	return obj != nil && obj.Name() == "AT" && obj.Pkg() != nil && obj.Pkg().Name() == "exchange"
}
