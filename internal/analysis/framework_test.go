package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheck parses and checks a dependency-free source file.
func typecheck(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("a", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

func TestAllowDirectiveParsing(t *testing.T) {
	src := `package a

//psdns:allow hotalloc one-time table build
var x = 1

//psdns:allow mpireq
var y = 2

//psdns:allowance not a directive
var z = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows := collectAllows(fset, []*ast.File{f})
	if len(allows) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(allows), allows)
	}
	if allows[0].analyzer != "hotalloc" || allows[0].reason != "one-time table build" {
		t.Errorf("directive 0 = %+v", allows[0])
	}
	if allows[1].analyzer != "mpireq" || allows[1].reason != "" {
		t.Errorf("directive 1 = %+v", allows[1])
	}
}

func TestEmptyReasonReported(t *testing.T) {
	src := `package a

func f(n int) []int {
	//psdns:allow hotalloc
	return g(n)
}

func g(n int) []int { return nil }
`
	fset, files, pkg, info := typecheck(t, src)
	probe := &Analyzer{Name: "hotalloc", Doc: "probe", Run: func(*Pass) {}}
	diags := Run(fset, files, pkg, info, []*Analyzer{probe})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "requires a non-empty reason") {
		t.Fatalf("diags = %+v, want one empty-reason report", diags)
	}
}

func TestHotpathAnnotationDetection(t *testing.T) {
	src := `package a

// step does work.
//
//psdns:hotpath
func step() {}

// cold is not annotated.
func cold() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got[fd.Name.Name] = isHotpath(fd)
		}
	}
	if !got["step"] || got["cold"] {
		t.Fatalf("hotpath detection = %v", got)
	}
}

func TestTestFileDiagnosticsDropped(t *testing.T) {
	src := `package a

func f() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("a", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	noisy := &Analyzer{Name: "noisy", Doc: "probe", Run: func(p *Pass) {
		p.Reportf(f.Pos(), "finding in a test file")
	}}
	if diags := Run(fset, []*ast.File{f}, pkg, info, []*Analyzer{noisy}); len(diags) != 0 {
		t.Fatalf("diags = %+v, want none in _test.go", diags)
	}
}
