package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.HotAlloc, "hotalloc")
}

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.PoolPair, "poolpair")
}

func TestMPIReq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MPIReq, "mpireq")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockOrder, "lockorder/mpi")
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MetricName, "metricname")
}
