package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.HotAlloc, "hotalloc")
}

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.PoolPair, "poolpair")
}

func TestMPIReq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MPIReq, "mpireq")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockOrder, "lockorder/mpi")
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MetricName, "metricname")
}

func TestCollSym(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.CollSym, "collsym")
}

func TestPlanFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.PlanFree, "planfree")
}

func TestATSite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ATSite, "atsite")
}

// TestSuppressEdgeCases drives the directive edge cases through a
// real analyzer: multi-line statement coverage, unknown analyzer
// names, and reason-less directives.
func TestSuppressEdgeCases(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MPIReq, "suppress")
}
