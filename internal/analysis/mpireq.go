package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MPIReq enforces the runtime's nonblocking-communication contract:
//
//  1. every *mpi.Request produced by a nonblocking call (Ialltoall,
//     IAlltoallv, ...) must reach Wait, WaitWithin or Test on every
//     path, or be handed off (stored, returned, passed to WaitAll);
//     a dropped request leaks its drain goroutine and leaves the
//     watchdog counting a phantom pending operation;
//  2. tag arguments of mpi point-to-point and collective calls must
//     be named constants. A raw literal tag is how two call sites
//     silently collide in the per-(src,dst) mailbox key space.
var MPIReq = &Analyzer{
	Name: "mpireq",
	Doc:  "nonblocking mpi requests must reach Wait on all paths; tags must be named constants",
	Run:  runMPIReq,
}

// returnsRequest reports whether the call's single result is (a
// pointer to) mpi.Request.
func returnsRequest(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	return t != nil && isNamed(t, "mpi", "Request")
}

// isRequestCompletion reports whether the call is obj.Wait(),
// obj.WaitWithin(...) or obj.Test().
func isRequestCompletion(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Wait", "WaitWithin", "Test":
	default:
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func runMPIReq(pass *Pass) {
	tr := &tracker{
		pass: pass,
		isAcquire: func(call *ast.CallExpr) string {
			if !returnsRequest(pass.Info, call) {
				return ""
			}
			if f := calleeFunc(pass.Info, call); f != nil {
				return "mpi." + f.Name()
			}
			return "a nonblocking call"
		},
		isRelease: func(call *ast.CallExpr, obj types.Object) bool {
			return isRequestCompletion(pass.Info, call, obj)
		},
		leak: func(desc, where string) string {
			return "request from " + desc + " may not reach Wait/WaitWithin on " + where +
				"; complete it, or hand it to WaitAll"
		},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tr.run(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					tr.run(lit.Body)
				}
				return true
			})
		}
	}

	checkRawTags(pass)
}

// checkRawTags flags integer literals passed to tag parameters of
// mpi functions. The parameter names (tag, dtag, stag) come from the
// mpi package's signatures, so the check tracks the real API.
func checkRawTags(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "mpi" {
		return // the runtime's own internals define the tag spaces
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "mpi" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			params := sig.Params()
			for i := 0; i < params.Len() && i < len(call.Args); i++ {
				switch params.At(i).Name() {
				case "tag", "dtag", "stag":
					if lit := intLiteral(call.Args[i]); lit != nil {
						pass.Reportf(lit.Pos(), "raw tag literal %s in call to mpi.%s; use a named constant",
							lit.Value, fn.Name())
					}
				}
			}
			return true
		})
	}
}

// intLiteral returns the integer literal an argument is, unwrapping
// a unary minus, or nil.
func intLiteral(e ast.Expr) *ast.BasicLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.INT {
		return lit
	}
	return nil
}
