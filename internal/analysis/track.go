package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tracker is a lenient path-sensitive resource tracker shared by
// poolpair and mpireq. A resource is born when an acquire call is
// bound to a local variable, and dies when it is released, when
// ownership escapes (the variable is passed to a call, returned,
// stored, or aliased), or when the path ends in panic. A resource
// still live at a return or at function end is a leak.
//
// Element access (buf[i], buf[i:j] kept local, len/cap, range) does
// not transfer ownership, so ordinary use of a checked-out buffer
// keeps it tracked until an explicit release or escape.
type tracker struct {
	pass *Pass
	// isAcquire returns a short description ("pool.GetComplex") if the
	// call checks out a resource, else "".
	isAcquire func(call *ast.CallExpr) string
	// isRelease reports whether the call releases obj.
	isRelease func(call *ast.CallExpr, obj types.Object) bool
	// leak formats the diagnostic for a resource that may not be
	// released on some path.
	leak func(desc, where string) string
}

type liveRes struct {
	pos  token.Pos
	desc string
}

type liveSet map[types.Object]*liveRes

func (s liveSet) clone() liveSet {
	c := make(liveSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// run analyzes one function body.
func (t *tracker) run(body *ast.BlockStmt) {
	reported := map[types.Object]bool{}
	live := liveSet{}
	t.block(body.List, live, reported)
	t.flush(live, "function exit", reported)
}

func (t *tracker) flush(live liveSet, where string, reported map[types.Object]bool) {
	for obj, r := range live {
		if reported[obj] {
			continue
		}
		reported[obj] = true
		t.pass.Reportf(r.pos, "%s", t.leak(r.desc, where))
	}
	clear(live)
}

func (t *tracker) block(stmts []ast.Stmt, live liveSet, reported map[types.Object]bool) {
	for _, s := range stmts {
		t.stmt(s, live, reported)
	}
}

// merge keeps a resource live if it is live on either incoming path;
// terminated paths (return, panic) arrive with empty sets and so
// contribute nothing.
func merge(dst, a, b liveSet) {
	clear(dst)
	for k, v := range a {
		dst[k] = v
	}
	for k, v := range b {
		dst[k] = v
	}
}

func (t *tracker) stmt(s ast.Stmt, live liveSet, reported map[types.Object]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		t.block(s.List, live, reported)
	case *ast.IfStmt:
		t.stmt(s.Init, live, reported)
		t.scan(s.Cond, live, nil, nil)
		then := live.clone()
		t.stmt(s.Body, then, reported)
		els := live.clone()
		t.stmt(s.Else, els, reported)
		merge(live, then, els)
	case *ast.ForStmt:
		t.stmt(s.Init, live, reported)
		t.scan(s.Cond, live, nil, nil)
		body := live.clone()
		t.stmt(s.Post, body, reported)
		t.stmt(s.Body, body, reported)
		merge(live, live.clone(), body)
	case *ast.RangeStmt:
		t.scan(s.X, live, nil, nil)
		body := live.clone()
		t.stmt(s.Body, body, reported)
		merge(live, live.clone(), body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		t.branches(s, live, reported)
	case *ast.LabeledStmt:
		t.stmt(s.Stmt, live, reported)
	case *ast.ReturnStmt:
		t.leafStmt(s, live, nil)
		t.flush(live, "this return path", reported)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isBuiltin(t.pass.Info, call, "panic") {
			clear(live) // abort path: not a leak
			return
		}
		t.leafStmt(s, live, nil)
	case *ast.DeferStmt:
		// A deferred release holds the resource to function end,
		// which is exactly the pairing the analyzers want.
		t.leafStmt(s, live, nil)
	default:
		t.leafStmt(s, live, nil)
	}
}

// branches walks each case/comm clause of a switch or select from a
// copy of the incoming state and merges the outcomes.
func (t *tracker) branches(s ast.Stmt, live liveSet, reported map[types.Object]bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		t.stmt(s.Init, live, reported)
		t.scan(s.Tag, live, nil, nil)
		body = s.Body
	case *ast.TypeSwitchStmt:
		t.stmt(s.Init, live, reported)
		t.leafStmt(s.Assign, live, nil)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := liveSet{}
	for _, cs := range body.List {
		br := live.clone()
		switch cs := cs.(type) {
		case *ast.CaseClause:
			t.block(cs.Body, br, reported)
		case *ast.CommClause:
			t.stmt(cs.Comm, br, reported)
			t.block(cs.Body, br, reported)
		}
		merge(out, out.clone(), br)
	}
	// A switch with no default may fall through untouched.
	merge(live, live.clone(), out)
}

// leafStmt applies the generic acquire/release/escape semantics to a
// straight-line statement.
func (t *tracker) leafStmt(s ast.Stmt, live liveSet, _ map[types.Object]bool) {
	// 1. Releases anywhere in the statement.
	released := map[ast.Node]bool{}
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for obj := range live {
			if t.isRelease(call, obj) {
				delete(live, obj)
				released[call] = true
			}
		}
		return true
	})

	// 2. Acquires bound to plain local variables.
	bound := map[*ast.Ident]bool{}
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Rhs {
				call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				desc := t.isAcquire(call)
				if desc == "" {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue // stored straight into a field/slot: ownership transferred
				}
				obj := t.pass.Info.Defs[id]
				if obj == nil {
					obj = t.pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				live[obj] = &liveRes{pos: call.Pos(), desc: desc}
				bound[id] = true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, v := range vs.Values {
					call, ok := ast.Unparen(v).(*ast.CallExpr)
					if !ok {
						continue
					}
					desc := t.isAcquire(call)
					if desc == "" {
						continue
					}
					id := vs.Names[i]
					if obj := t.pass.Info.Defs[id]; obj != nil && id.Name != "_" {
						live[obj] = &liveRes{pos: call.Pos(), desc: desc}
						bound[id] = true
					}
				}
			}
		}
	}

	// 3. Escaping uses transfer ownership and end tracking.
	t.scan(s, live, bound, released)
}

// scan removes from live every resource whose variable escapes within
// n: passed to a call, returned, stored, aliased, sent, or captured.
func (t *tracker) scan(n ast.Node, live liveSet, bound map[*ast.Ident]bool, released map[ast.Node]bool) {
	if n == nil || len(live) == 0 {
		return
	}
	var stack []ast.Node
	ast.Inspect(n, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if released != nil && released[nd] {
			return false // inside a recognized release call; not pushed
		}
		if id, ok := nd.(*ast.Ident); ok && !bound[id] {
			if obj := t.pass.Info.Uses[id]; obj != nil {
				if _, tracked := live[obj]; tracked && escapes(stack, id) {
					delete(live, obj)
				}
			}
		}
		stack = append(stack, nd)
		return true
	})
}

// escapes decides whether an occurrence of a tracked variable hands
// its ownership away. Benign contexts — indexing, slicing kept in
// expression position, len/cap, comparisons, range — keep tracking.
func escapes(stack []ast.Node, id *ast.Ident) bool {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.UnaryExpr, *ast.KeyValueExpr:
			child = p
		case *ast.SelectorExpr:
			child = p
		case *ast.IndexExpr:
			return false // element access, not the resource itself
		case *ast.SliceExpr:
			if p.X != child {
				return false // index position
			}
			child = p // a slice aliases the buffer: keep climbing
		case *ast.BinaryExpr:
			return false // comparison/arithmetic on the value
		case *ast.CallExpr:
			if e, ok := child.(ast.Expr); ok {
				if p.Fun == e && !isSelectorOf(p.Fun, id) {
					child = p
					continue // calling a function value: result climbs
				}
			}
			if isLenCap(p) {
				return false
			}
			return true // argument or method receiver: ownership may escape
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == child {
					return !allBlank(p.Lhs)
				}
			}
			return false // lhs occurrence: element store via index was already handled
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.BlockStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CaseClause,
			*ast.CommClause, *ast.IncDecStmt, *ast.LabeledStmt:
			return false
		default:
			return true // unknown context: assume it escapes (lenient)
		}
	}
	return false
}

// isSelectorOf reports whether fun is a selector whose base is id,
// i.e. a method call on the tracked variable itself.
func isSelectorOf(fun ast.Expr, id *ast.Ident) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && base == id
}

func isLenCap(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && (id.Name == "len" || id.Name == "cap")
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
