package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolPair checks that every buffer checked out of internal/pool via
// a Get* call is either released with a Put* call on every path,
// handed off (stored in a plan struct, returned, passed on), or
// checked out in a function that only runs at plan/constructor time.
// The arena reuses buffers by size class; a leaked checkout is a
// permanent miss that silently re-grows the very allocations the
// pool exists to amortize.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pair every pool.Get* with a Put* on all paths, except at plan/constructor time",
	Run:  runPoolPair,
}

// constructorName reports whether a function is, by naming
// convention, plan/constructor-time code whose checkouts live for the
// lifetime of the object they populate.
func constructorName(name string) bool {
	for _, p := range []string{"New", "new", "Build", "build", "Plan", "plan", "Make", "make", "Init", "init"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// exemptFuncs returns the plan-time function set: constructor-named
// declarations, plus (to a fixpoint) unexported functions reachable
// only from already-exempt functions.
func exemptFuncs(pass *Pass) map[*ast.FuncDecl]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	var all []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
				all = append(all, fd)
			}
		}
	}

	callers := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for _, fd := range all {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(pass.Info, call); f != nil {
				if cd := decls[f]; cd != nil {
					callers[cd] = append(callers[cd], fd)
				}
			}
			return true
		})
	}

	exempt := map[*ast.FuncDecl]bool{}
	for _, fd := range all {
		if constructorName(fd.Name.Name) {
			exempt[fd] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range all {
			if exempt[fd] || ast.IsExported(fd.Name.Name) || len(callers[fd]) == 0 {
				continue
			}
			allExempt := true
			for _, c := range callers[fd] {
				if !exempt[c] && c != fd {
					allExempt = false
					break
				}
			}
			if allExempt {
				exempt[fd] = true
				changed = true
			}
		}
	}
	return exempt
}

// isPoolCall reports the pool function a call resolves to when its
// name carries the given prefix ("Get" or "Put").
func isPoolCall(info *types.Info, call *ast.CallExpr, prefix string) *types.Func {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Name() != "pool" {
		return nil
	}
	if !strings.HasPrefix(f.Name(), prefix) {
		return nil
	}
	return f
}

func runPoolPair(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "pool" {
		return // the arena's own plumbing hands buffers through by design
	}
	exempt := exemptFuncs(pass)
	tr := &tracker{
		pass: pass,
		isAcquire: func(call *ast.CallExpr) string {
			if f := isPoolCall(pass.Info, call, "Get"); f != nil {
				return "pool." + f.Name()
			}
			return ""
		},
		isRelease: func(call *ast.CallExpr, obj types.Object) bool {
			if isPoolCall(pass.Info, call, "Put") == nil {
				return false
			}
			for _, a := range call.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					return true
				}
			}
			return false
		},
		leak: func(desc, where string) string {
			return "buffer from " + desc + " may not be released (pool.Put*) on " + where +
				"; release it, hand off ownership, or check it out at plan time"
		},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || exempt[fd] {
				continue
			}
			tr.run(fd.Body)
			// Closures get their own walk: a worker body that checks
			// out scratch per call must release it per call.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					tr.run(lit.Body)
				}
				return true
			})
		}
	}
}
