// Package analysistest runs psdnslint analyzers against fixture
// packages under a testdata/src tree and checks the diagnostics they
// produce against // want comments, mirroring the x/tools harness of
// the same name on the bare standard library.
//
// Fixture packages are loaded hermetically: every import, including
// ones shadowing standard library paths like "sync", is resolved
// from testdata/src/<importpath>, so fixtures control the exact type
// identities the analyzers match on and never depend on compiled
// stdlib export data.
//
// Expectations are written as
//
//	expr // want `regexp` `another regexp`
//
// and each must be matched, at its file and line, by exactly one
// diagnostic; unmatched expectations and unexpected diagnostics both
// fail the test. A // want marker inside a //psdns:allow directive
// comment is honored too, which is how fixtures assert the
// empty-reason failure mode of the directive itself.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the canonical testdata directory of the calling
// test's package.
func TestData() string { return "testdata" }

// Run loads each fixture package, applies the analyzer through the
// full framework (including //psdns:allow filtering), and diffs the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, p := range pkgpaths {
		runOne(t, filepath.Join(testdata, "src"), a, p)
	}
}

func runOne(t *testing.T, root string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	im := &srcImporter{fset: fset, root: root, pkgs: map[string]*types.Package{}, infos: map[string]*pkgSyntax{}}
	pkg, err := im.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture package %q: %v", pkgpath, err)
	}
	syn := im.infos[pkgpath]
	diags := analysis.Run(fset, syn.files, pkg, syn.info, []*analysis.Analyzer{a})

	wants := collectWants(t, fset, syn.files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// pkgSyntax carries the parsed files and type info of one fixture
// package so the target package's syntax is available after loading.
type pkgSyntax struct {
	files []*ast.File
	info  *types.Info
}

// srcImporter type-checks fixture packages from source, resolving
// every import path against the testdata/src root.
type srcImporter struct {
	fset  *token.FileSet
	root  string
	pkgs  map[string]*types.Package
	infos map[string]*pkgSyntax
}

func (im *srcImporter) Import(path string) (*types.Package, error) { return im.load(path) }

func (im *srcImporter) load(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture import %q: no Go files in %s", path, dir)
	}
	info := analysis.NewInfo()
	cfg := types.Config{Importer: im}
	pkg, err := cfg.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %q: %w", path, err)
	}
	im.pkgs[path] = pkg
	im.infos[path] = &pkgSyntax{files: files, info: info}
	return pkg, nil
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants parses // want markers out of every comment,
// including markers embedded in //psdns:allow directive comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", posn, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", posn, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
