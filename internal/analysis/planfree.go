package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PlanFree enforces the plan lifecycle: every
// NewExchangePlan*/NewA2APlan/NewReducePlan value must reach a
// Free/Close on all paths. A freed plan deregisters its barrier on
// every rank; a leaked one leaves phantom participants that deadlock
// the next collective — the PR-7 leak class.
//
// Locals are tracked path-sensitively (escape to a call, return or
// store transfers ownership). Plans that escape into struct fields are
// checked package-wide at their owner's Close site: a field that
// receives a plan anywhere must be freed somewhere in the package —
// directly (x.f.Free()), through an index (x.f[i].Free()), or by
// ranging over the field and freeing each element.
var PlanFree = &Analyzer{
	Name: "planfree",
	Doc:  "every constructed mpi plan must reach Free/Close on all paths, including field-owned plans",
	Run:  runPlanFree,
}

func runPlanFree(pass *Pass) {
	tr := &tracker{
		pass: pass,
		isAcquire: func(call *ast.CallExpr) string {
			return planFactoryDesc(pass.Info, call)
		},
		isRelease: func(call *ast.CallExpr, obj types.Object) bool {
			return isPlanRelease(pass.Info, call, obj)
		},
		leak: func(desc, where string) string {
			return "plan from " + desc + " may not reach Free on " + where +
				"; free it or hand ownership to a struct the engine closes"
		},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tr.run(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					tr.run(lit.Body)
				}
				return true
			})
		}
	}

	checkFieldPlans(pass)
}

// planFactoryDesc describes a call that constructs a plan: its result
// is (a pointer to) an mpi plan type and its callee is spelled like a
// factory (mpi's New*, a same-package new*/build* helper, or a local
// closure such as core's newExch). Accessor calls that merely return
// an existing plan do not match.
func planFactoryDesc(info *types.Info, call *ast.CallExpr) string {
	if planTypeName(info.TypeOf(call)) == "" {
		return ""
	}
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	for _, p := range [...]string{"New", "new", "Mk", "mk", "Make", "make", "Build", "build"} {
		if strings.HasPrefix(name, p) {
			return name
		}
	}
	return ""
}

// isPlanRelease reports whether the call is obj.Free() or obj.Close().
func isPlanRelease(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Free" && sel.Sel.Name != "Close") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// checkFieldPlans matches plan stores into struct fields against free
// sites anywhere in the package.
func checkFieldPlans(pass *Pass) {
	type store struct {
		pos   token.Pos
		owner string
	}
	stores := map[*types.Var]store{} // field -> first store
	freed := map[*types.Var]bool{}

	record := func(field *types.Var, pos token.Pos) {
		if field == nil || field.Pkg() != pass.Pkg {
			return // cross-package owner: its Free lives out of this unit
		}
		if prev, ok := stores[field]; !ok || pos < prev.pos {
			stores[field] = store{pos: pos, owner: fieldOwnerName(field)}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != len(n.Lhs) {
					return true // tuple assignment never yields a bare plan
				}
				for i, lhs := range n.Lhs {
					field := fieldOf(pass.Info, lhs)
					if field != nil && storesPlan(pass.Info, n.Rhs[i]) {
						record(field, lhs.Pos())
					}
				}
			case *ast.CompositeLit:
				st, fields := structLitFields(pass.Info, n)
				if st == nil {
					return true
				}
				for i, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if planTypeName(pass.Info.TypeOf(kv.Value)) == "" {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							if fv, ok := pass.Info.Uses[id].(*types.Var); ok {
								record(fv, kv.Pos())
							}
						}
					} else if i < len(fields) && planTypeName(pass.Info.TypeOf(elt)) != "" {
						record(fields[i], elt.Pos())
					}
				}
			case *ast.CallExpr:
				// x.f.Free(), x.f[i].Free(), x.f.Close()
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Free" && sel.Sel.Name != "Close") {
					return true
				}
				if field := fieldOf(pass.Info, sel.X); field != nil {
					freed[field] = true
				}
			case *ast.RangeStmt:
				// for _, pl := range x.f { pl.Free() }
				field := fieldOf(pass.Info, n.X)
				if field == nil {
					return true
				}
				val, _ := n.Value.(*ast.Ident)
				if val == nil {
					return true
				}
				obj := pass.Info.Defs[val]
				if obj == nil {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && isPlanRelease(pass.Info, call, obj) {
						freed[field] = true
					}
					return true
				})
			}
			return true
		})
	}

	type finding struct {
		pos   token.Pos
		field *types.Var
		owner string
	}
	var out []finding
	for field, s := range stores {
		if !freed[field] {
			out = append(out, finding{pos: s.pos, field: field, owner: s.owner})
		}
	}
	for _, f := range out {
		pass.Reportf(f.pos, "plan stored in field %s.%s is never freed in this package; "+
			"free it in the owner's Close (leaked plans keep their barrier registered on every rank)",
			f.owner, f.field.Name())
	}
}

// fieldOf resolves an expression to the struct field it denotes,
// unwrapping parens and index/slice access (x.f, x.f[i], (x.f)).
func fieldOf(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if fv, ok := sel.Obj().(*types.Var); ok {
					return fv
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// storesPlan reports whether the assigned value puts a plan into the
// target: a plan-typed expression, or an append whose added elements
// include one.
func storesPlan(info *types.Info, rhs ast.Expr) bool {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
		for _, a := range call.Args[1:] {
			if planTypeName(info.TypeOf(a)) != "" {
				return true
			}
		}
		return false
	}
	return planTypeName(info.TypeOf(rhs)) != ""
}

// structLitFields returns the struct type of a composite literal and
// its fields in declaration order, for positional literals.
func structLitFields(info *types.Info, lit *ast.CompositeLit) (*types.Struct, []*types.Var) {
	t := info.TypeOf(lit)
	if t == nil {
		return nil, nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return st, fields
}

// fieldOwnerName names the struct type a field belongs to, best
// effort, for diagnostics.
func fieldOwnerName(field *types.Var) string {
	if field.Pkg() == nil {
		return "?"
	}
	// The field's parent type name is not directly reachable from the
	// Var; scan the package scope for the named type that declares it.
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name()
			}
		}
	}
	return "?"
}
