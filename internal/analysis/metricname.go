package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the internal/metrics naming contract: every
// name passed to Registry.Counter/Gauge/Histogram (and their
// per-rank variants) is a compile-time string constant matching the
// subsystem.noun[.verb] convention, and one package never registers
// the same name as two different metric kinds. The snapshot merger
// keys on names, so a dynamic or colliding name corrupts aggregated
// output silently.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names must be constants matching subsystem.noun[.verb], one kind per name",
	Run:  runMetricName,
}

// metricNameRE is the subsystem.noun[.verb] convention: two to four
// lowercase alphanumeric dot-separated segments.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*){1,3}$`)

// metricKind maps a Registry method to the kind it registers.
func metricKind(name string) string {
	switch name {
	case "Counter", "CounterRank":
		return "counter"
	case "Gauge", "GaugeRank":
		return "gauge"
	case "Histogram", "HistogramRank":
		return "histogram"
	}
	return ""
}

func runMetricName(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "metrics" {
		return // the registry's own methods forward name parameters
	}
	type reg struct {
		kind string
		pos  token.Pos
	}
	seen := map[string]reg{}
	for _, f := range pass.Files {
		// Exclude test files from the one-kind-per-name ledger too:
		// tests register throwaway names that must not collide with
		// (or excuse) the package's real registrations.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
				return true
			}
			kind := metricKind(fn.Name())
			if kind == "" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isNamed(sig.Recv().Type(), "metrics", "Registry") {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "metric name must be a constant string, not a runtime value")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(), "metric name %q does not match the subsystem.noun[.verb] convention (lowercase dot-separated segments)", name)
				return true
			}
			if prev, ok := seen[name]; ok && prev.kind != kind {
				pass.Reportf(arg.Pos(), "metric %q registered as both %s and %s in this package", name, prev.kind, kind)
			} else if !ok {
				seen[name] = reg{kind: kind, pos: arg.Pos()}
			}
			return true
		})
	}
}
