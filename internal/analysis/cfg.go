package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the shared control-flow-graph infrastructure the
// interprocedural analyzers (collsym, planfree via the tracker,
// atsite) build on. Like the rest of the package it is stdlib-only:
// a deliberately small structured-CFG builder over go/ast, not a
// general-purpose one — it models exactly the control flow the
// analyzers reason about (branches, loops, switches, early returns,
// breaks/continues, panic/fatal terminators) and treats everything
// else as straight-line code.
//
// Blocks hold the statements and header expressions evaluated in
// them, in source order. A block that ends in a multi-way branch
// records the controlling expressions in Cond (the if condition, the
// for condition, the switch tag or — for a tagless switch — every
// case expression), so clients can ask whether the branch is
// rank-dependent. Function literals are NOT descended into: creating
// a closure is not executing it, and clients analyze closure bodies
// as functions of their own.

// A Block is one straight-line run of statements with its outgoing
// edges. For a two-way branch Succs[0] is the true edge and Succs[1]
// the false edge; switches have one successor per case plus the
// implicit-default join when no default clause exists.
type Block struct {
	Nodes []ast.Node // leaf statements / header exprs, in source order
	Succs []*Block
	Cond  []ast.Node // controlling exprs when len(Succs) > 1 (nil for select)
	Abort bool       // ends in panic/os.Exit/log.Fatal: an abort, not a schedule
}

// A CFG is the control-flow graph of one function body. Exit is the
// single virtual exit block every return, panic and fall-off-the-end
// path reaches.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

type cfgBuilder struct {
	info *types.Info
	cfg  *CFG
	cur  *Block

	// break/continue target stacks, innermost last; labels map a
	// label name to the loop/switch targets it governs.
	brk    []*Block
	cont   []*Block
	labels map[string]*labelTarget
}

type labelTarget struct {
	brk  *Block
	cont *Block // nil for labeled switches
}

// BuildCFG constructs the CFG of one function body. The body may be a
// FuncDecl's or a FuncLit's.
func BuildCFG(info *types.Info, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{info: info, cfg: &CFG{}, labels: map[string]*labelTarget{}}
	b.cfg.Exit = b.newBlock()
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// terminate ends the current block with an edge to target and starts
// an unreachable successor for any dead code that follows.
func (b *cfgBuilder) terminate(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.labeled(s)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.terminate(b.cfg.Exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, nil)
	case *ast.RangeStmt:
		b.rangeStmt(s, nil)
	case *ast.SwitchStmt:
		b.switchStmt(s, nil)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, nil)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatorCall(b.info, call) {
			b.cur.Abort = true
			b.terminate(b.cfg.Exit)
		}
	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec: straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) labeled(s *ast.LabeledStmt) {
	name := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, func(brk, cont *Block) {
			b.labels[name] = &labelTarget{brk: brk, cont: cont}
		})
	case *ast.RangeStmt:
		b.rangeStmt(inner, func(brk, cont *Block) {
			b.labels[name] = &labelTarget{brk: brk, cont: cont}
		})
	case *ast.SwitchStmt:
		b.switchStmt(inner, func(brk *Block) {
			b.labels[name] = &labelTarget{brk: brk}
		})
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, func(brk *Block) {
			b.labels[name] = &labelTarget{brk: brk}
		})
	default:
		b.stmt(s.Stmt)
	}
	delete(b.labels, name)
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				target = lt.brk
			}
		} else if len(b.brk) > 0 {
			target = b.brk[len(b.brk)-1]
		}
	case "continue":
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				target = lt.cont
			}
		} else if len(b.cont) > 0 {
			target = b.cont[len(b.cont)-1]
		}
	case "goto":
		// Rare in this tree; modeled leniently as function exit so
		// both arms of any enclosing branch see the same treatment.
		target = b.cfg.Exit
	case "fallthrough":
		// Wired by switchStmt via the next-case entry recorded there;
		// reaching here means a malformed tree — treat as exit.
		target = b.cfg.Exit
	}
	if target == nil {
		target = b.cfg.Exit
	}
	b.terminate(target)
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.stmt(s.Init)
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	head := b.cur
	head.Cond = []ast.Node{s.Cond}

	join := b.newBlock()
	then := b.newBlock()
	head.Succs = append(head.Succs, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, join)

	if s.Else != nil {
		els := b.newBlock()
		head.Succs = append(head.Succs, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label func(brk, cont *Block)) {
	b.stmt(s.Init)
	head := b.newBlock()
	b.edge(b.cur, head)
	body := b.newBlock()
	after := b.newBlock()
	post := b.newBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = []ast.Node{s.Cond}
		head.Succs = append(head.Succs, body, after)
	} else {
		head.Succs = append(head.Succs, body)
	}
	if label != nil {
		label(after, post)
	}
	b.brk = append(b.brk, after)
	b.cont = append(b.cont, post)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, post)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.cur = post
	b.stmt(s.Post)
	b.edge(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label func(brk, cont *Block)) {
	b.cur.Nodes = append(b.cur.Nodes, s.X)
	head := b.newBlock()
	b.edge(b.cur, head)
	body := b.newBlock()
	after := b.newBlock()
	head.Cond = []ast.Node{s.X}
	head.Succs = append(head.Succs, body, after)
	if label != nil {
		label(after, head)
	}
	b.brk = append(b.brk, after)
	b.cont = append(b.cont, head)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label func(brk *Block)) {
	b.stmt(s.Init)
	if s.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Tag)
	}
	head := b.cur
	join := b.newBlock()
	if label != nil {
		label(join)
	}
	if s.Tag != nil {
		head.Cond = []ast.Node{s.Tag}
	}

	// Collect clause entries first so fallthrough can target the next
	// case's body.
	var clauses []*ast.CaseClause
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		entries[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		if s.Tag == nil {
			for _, e := range cc.List {
				head.Cond = append(head.Cond, e)
			}
		}
	}
	for i, cc := range clauses {
		head.Succs = append(head.Succs, entries[i])
		// Case guard expressions are evaluated at the head.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		b.brk = append(b.brk, join)
		b.cur = entries[i]
		// A fallthrough as the clause's last statement chains to the
		// next clause's entry.
		list := cc.Body
		ft := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				list, ft = list[:n-1], true
			}
		}
		b.stmts(list)
		if ft && i+1 < len(entries) {
			b.edge(b.cur, entries[i+1])
			b.cur = b.newBlock()
		}
		b.edge(b.cur, join)
		b.brk = b.brk[:len(b.brk)-1]
	}
	if !hasDefault {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label func(brk *Block)) {
	b.stmt(s.Init)
	b.cur.Nodes = append(b.cur.Nodes, s.Assign)
	head := b.cur
	if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
			head.Cond = []ast.Node{ta.X}
		}
	} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
		if ta, ok := ast.Unparen(es.X).(*ast.TypeAssertExpr); ok {
			head.Cond = []ast.Node{ta.X}
		}
	}
	join := b.newBlock()
	if label != nil {
		label(join)
	}
	hasDefault := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		entry := b.newBlock()
		head.Succs = append(head.Succs, entry)
		b.brk = append(b.brk, join)
		b.cur = entry
		b.stmts(cc.Body)
		b.edge(b.cur, join)
		b.brk = b.brk[:len(b.brk)-1]
	}
	if !hasDefault {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	join := b.newBlock()
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		entry := b.newBlock()
		head.Succs = append(head.Succs, entry)
		b.brk = append(b.brk, join)
		b.cur = entry
		if cc.Comm != nil {
			b.cur.Nodes = append(b.cur.Nodes, cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, join)
		b.brk = b.brk[:len(b.brk)-1]
	}
	if !any {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

// isTerminatorCall reports whether a call never returns: panic,
// os.Exit, log.Fatal*, runtime.Goexit, and the testing Fatal family
// are the spellings this tree uses.
func isTerminatorCall(info *types.Info, call *ast.CallExpr) bool {
	if isBuiltin(info, call, "panic") {
		return true
	}
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Name() {
	case "os":
		return f.Name() == "Exit"
	case "log":
		switch f.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "runtime":
		return f.Name() == "Goexit"
	}
	return false
}
