package analysis

import (
	"go/ast"
	"strings"
)

// LockOrder is the static counterpart of the PR-2 stall watchdog. It
// applies only to the mpi package, whose locking discipline is: a
// goroutine holds at most one runtime mutex at a time when it can
// block or wake someone else. Concretely, while a mutex is held it is
// a violation to
//
//   - call a mailbox entry point (put, get, abort) — they take the
//     mailbox's own lock internally, nesting two mutexes;
//   - send on a channel — the receiver may need the held lock;
//   - call cond.Wait with a second mutex held — Wait releases only
//     its own mutex, so the other one is held across the sleep.
//
// Function literals are separate goroutine bodies (time.AfterFunc,
// drain goroutines) and start with no locks held.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no mailbox entry points, channel sends, or nested cond.Wait while holding a mutex in internal/mpi",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	if pass.Pkg == nil {
		return
	}
	if pass.Pkg.Name() != "mpi" && !strings.HasSuffix(pass.Pkg.Path(), "/mpi") {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &lockWalker{pass: pass}
				w.block(fd.Body.List, 0)
			}
		}
	}
}

type lockWalker struct {
	pass *Pass
}

// block walks a statement list tracking how many mutexes are held
// after each statement, and returns the resulting depth.
func (w *lockWalker) block(stmts []ast.Stmt, depth int) int {
	for _, s := range stmts {
		depth = w.stmt(s, depth)
	}
	return depth
}

func (w *lockWalker) stmt(s ast.Stmt, depth int) int {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		depth = w.block(s.List, depth)
	case *ast.ExprStmt:
		return w.exprDepth(s.X, depth)
	case *ast.DeferStmt:
		// Deferred unlocks run at exit: the lock stays held for the
		// rest of the body, so the depth is unchanged.
		if w.lockDelta(s.Call) >= 0 {
			w.exprViolations(s.Call, depth)
		}
	case *ast.SendStmt:
		if depth >= 1 {
			w.pass.Reportf(s.Arrow, "channel send while holding a mutex")
		}
		w.exprViolations(s.Chan, depth)
		w.exprViolations(s.Value, depth)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprViolations(e, depth)
		}
		for _, e := range s.Lhs {
			w.exprViolations(e, depth)
		}
	case *ast.IfStmt:
		depth = w.stmt(s.Init, depth)
		w.exprViolations(s.Cond, depth)
		w.stmt(s.Body, depth)
		w.stmt(s.Else, depth)
	case *ast.ForStmt:
		depth = w.stmt(s.Init, depth)
		w.exprViolations(s.Cond, depth)
		w.stmt(s.Body, depth)
		w.stmt(s.Post, depth)
	case *ast.RangeStmt:
		w.exprViolations(s.X, depth)
		w.stmt(s.Body, depth)
	case *ast.SwitchStmt:
		depth = w.stmt(s.Init, depth)
		w.exprViolations(s.Tag, depth)
		w.stmt(s.Body, depth)
	case *ast.TypeSwitchStmt:
		depth = w.stmt(s.Init, depth)
		w.stmt(s.Assign, depth)
		w.stmt(s.Body, depth)
	case *ast.SelectStmt:
		w.stmt(s.Body, depth)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.exprViolations(e, depth)
		}
		w.block(s.Body, depth)
	case *ast.CommClause:
		w.stmt(s.Comm, depth)
		w.block(s.Body, depth)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.exprViolations(e, depth)
		}
	case *ast.GoStmt:
		w.exprViolations(s.Call, depth)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, depth)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	}
	return depth
}

// exprDepth handles a statement-level expression, applying any
// Lock/Unlock depth change after reporting violations inside it.
func (w *lockWalker) exprDepth(e ast.Expr, depth int) int {
	w.exprViolations(e, depth)
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		depth += w.lockDelta(call)
		if depth < 0 {
			depth = 0
		}
	}
	return depth
}

// lockDelta returns +1 for Lock/RLock on a sync mutex, -1 for
// Unlock/RUnlock, 0 otherwise.
func (w *lockWalker) lockDelta(call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	t := w.pass.Info.TypeOf(sel.X)
	if !isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex") {
		return 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return +1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// exprViolations reports blocking operations reached inside an
// expression at the given lock depth. Function literals reset the
// depth: they run on their own goroutine or after the locks unwind.
func (w *lockWalker) exprViolations(e ast.Expr, depth int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body.List, 0)
			return false
		case *ast.CallExpr:
			w.checkCall(n, depth)
		}
		return true
	})
}

func (w *lockWalker) checkCall(call *ast.CallExpr, depth int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	t := w.pass.Info.TypeOf(sel.X)
	switch sel.Sel.Name {
	case "put", "get", "abort":
		if depth >= 1 && isNamed(t, "mpi", "mailbox") {
			w.pass.Reportf(call.Pos(), "mailbox %s while holding a mutex can deadlock: it locks the mailbox internally", sel.Sel.Name)
		}
	case "Wait":
		if depth >= 2 && isNamed(t, "sync", "Cond") {
			w.pass.Reportf(call.Pos(), "cond.Wait while holding a second mutex: Wait only releases its own mutex")
		}
	}
}
