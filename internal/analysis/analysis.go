// Package analysis implements the psdnslint analyzer suite: eight
// static analyzers that enforce the invariants the runtime design
// depends on and that so far were only guarded by AllocsPerRun tests
// and the runtime watchdog:
//
//   - hotalloc:   no heap allocations in //psdns:hotpath functions,
//     with propagation one level into same-package callees;
//   - poolpair:   pool checkouts are released on every path or happen
//     at plan/constructor time;
//   - mpireq:     nonblocking requests reach Wait/WaitWithin on every
//     path, and collective tags are named constants;
//   - lockorder:  no mailbox entry points, channel sends, or nested
//     cond.Wait while holding a mutex inside internal/mpi;
//   - metricname: metric names are constants following the
//     subsystem.noun[.verb] convention, each registered as one kind;
//   - collsym:    rank-dependent branches issue the same mpi
//     collective sequence on every arm (CFG + within-package
//     summaries; see cfg.go and summary.go);
//   - planfree:   constructed mpi plans reach Free/Close on all
//     paths, with field-escaped plans checked at their owner's Close;
//   - atsite:     DoBounded only on bounded-constructed, SetSite
//     labeled plans, and exchange.AT never enters candidate sets.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained: the repository
// builds against a bare standard library, so the vet-protocol driver
// in cmd/psdnslint and the analysistest harness are implemented
// directly on go/ast, go/types and go/importer.
//
// Any finding can be suppressed at the site with
//
//	//psdns:allow <analyzer> <reason>
//
// on the offending line, the line above it, or — for findings inside
// a multi-line statement — the statement's first line or the line
// above that. The reason is mandatory; a bare directive suppresses
// nothing and is itself reported, as is a directive naming an unknown
// analyzer. Findings in _test.go files are never reported: tests
// exercise raw tags, throwaway metric names and deliberate leaks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a single type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one analyzer's view of one package: its syntax, its type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, attributed to the analyzer that made
// it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full psdnslint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{HotAlloc, PoolPair, MPIReq, LockOrder, MetricName, CollSym, PlanFree, ATSite}
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated, suitable for passing to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
}

const (
	allowPrefix = "//psdns:allow"
	hotpathMark = "//psdns:hotpath"
)

// An allowDirective is one parsed //psdns:allow comment.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

// collectAllows parses every //psdns:allow directive in the package.
// The reason is everything after the analyzer name, truncated at an
// embedded "//" so fixture files can carry a trailing // want
// expectation on the directive line.
func collectAllows(fset *token.FileSet, files []*ast.File) []allowDirective {
	var out []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //psdns:allowance
				}
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				d := allowDirective{pos: c.Slash}
				posn := fset.Position(c.Slash)
				d.file, d.line = posn.Filename, posn.Line
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// isHotpath reports whether fd's doc comment carries the
// //psdns:hotpath annotation.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMark {
			return true
		}
	}
	return false
}

// Run applies the analyzers to one type-checked package and returns
// the surviving diagnostics in file/position order. Findings in
// _test.go files are dropped, findings covered by a //psdns:allow
// directive with a matching analyzer name and a non-empty reason are
// suppressed, and reason-less directives for a known analyzer are
// themselves reported.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		a.Run(pass)
		all = append(all, pass.diags...)
	}

	allows := collectAllows(fset, files)
	// Unknown-name reporting is against the full suite, not just the
	// analyzers this run enabled: a single-analyzer test run must not
	// misreport a directive aimed at a sibling analyzer.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	spans := stmtSpans(fset, files)

	var out []Diagnostic
	for _, d := range all {
		posn := fset.Position(d.Pos)
		if strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		if dir := matchAllow(allows, spans, posn, d.Analyzer); dir != nil && dir.reason != "" {
			continue
		}
		out = append(out, d)
	}
	for _, dir := range allows {
		if strings.HasSuffix(dir.file, "_test.go") {
			continue
		}
		switch {
		case dir.analyzer != "" && !known[dir.analyzer]:
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "psdnslint",
				Message:  fmt.Sprintf("psdns:allow names unknown analyzer %q; the directive suppresses nothing", dir.analyzer),
			})
		case dir.reason == "" && known[dir.analyzer]:
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: dir.analyzer,
				Message:  fmt.Sprintf("psdns:allow %s requires a non-empty reason", dir.analyzer),
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out
}

// stmtSpan is the line extent of one statement, used to let a
// directive above a multi-line statement cover findings on its
// continuation lines.
type stmtSpan struct {
	start, end int
}

// stmtSpans records the line span of every statement per file.
func stmtSpans(fset *token.FileSet, files []*ast.File) map[string][]stmtSpan {
	out := map[string][]stmtSpan{}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			if s, ok := n.(ast.Stmt); ok {
				out[name] = append(out[name], stmtSpan{
					start: fset.Position(s.Pos()).Line,
					end:   fset.Position(s.End()).Line,
				})
			}
			return true
		})
	}
	return out
}

// stmtStartLine returns the first line of the innermost multi-line
// statement containing the given line, or 0 when the line is not on a
// continuation line of any statement.
func stmtStartLine(spans []stmtSpan, line int) int {
	best := 0
	bestSize := 1 << 30
	for _, sp := range spans {
		if sp.start < line && line <= sp.end && sp.end-sp.start < bestSize {
			best, bestSize = sp.start, sp.end-sp.start
		}
	}
	return best
}

// matchAllow finds a directive covering a diagnostic: same file, same
// analyzer, on the diagnostic's line, the line above it, or — when
// the finding sits on a continuation line of a multi-line statement —
// the statement's first line or the line above that.
func matchAllow(allows []allowDirective, spans map[string][]stmtSpan, posn token.Position, analyzer string) *allowDirective {
	stmtLine := stmtStartLine(spans[posn.Filename], posn.Line)
	for i := range allows {
		d := &allows[i]
		if d.analyzer != analyzer || d.file != posn.Filename {
			continue
		}
		if d.line == posn.Line || d.line == posn.Line-1 {
			return d
		}
		if stmtLine > 0 && (d.line == stmtLine || d.line == stmtLine-1) {
			return d
		}
	}
	return nil
}

// calleeFunc resolves a call to the declared function or method it
// invokes, or nil for builtins, conversions, and dynamic calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// namedType unwraps pointers and reports the named type and its
// package, or nil if t is not (a pointer to) a named type.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t is (a pointer to) the named type
// pkgName.typeName.
func isNamed(t types.Type, pkgName, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}
