package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CollSym enforces cross-rank collective symmetry: every control-flow
// path through a function that issues mpi collectives (Barrier,
// Allgather, plan construction, plan Do/Free, ...) must perform the
// same collective sequence regardless of rank-dependent branches. A
// collective issued under `if rank == 0` runs on one rank while the
// others never enter it — the classic schedule-divergence deadlock
// the runtime watchdog only catches after the ranks have hung.
//
// The check is summary-driven within the package: a same-package
// callee contributes its own collective sequence inline when all its
// paths agree, and an opaque "call:name" marker when they diverge on
// non-rank state (so symmetric use of the same helper stays
// symmetric). Cross-package calls other than to mpi itself are
// invisible; rank-conditional logging or I/O is therefore fine.
var CollSym = &Analyzer{
	Name: "collsym",
	Doc:  "every rank-dependent branch must issue the same mpi collective sequence on all arms",
	Run:  runCollSym,
}

func runCollSym(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "mpi" {
		// The runtime implements collectives from rank-asymmetric
		// point-to-point by design.
		return
	}
	cs := newCollSummaries(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Taint is computed over the whole declaration so flags
			// captured by closures (root := c.Rank() == 0) stay tainted
			// inside their bodies.
			tainted := rankTaint(pass.Info, fd.Body)
			checkCollSym(pass, cs, tainted, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkCollSym(pass, cs, tainted, fl.Body)
				}
				return true
			})
		}
	}
}

// checkCollSym builds the body's CFG and compares, at every
// rank-dependent branch, the collective sequence sets of all arms.
func checkCollSym(pass *Pass, cs *collSummaries, tainted map[types.Object]bool, body *ast.BlockStmt) {
	cfg := BuildCFG(pass.Info, body)
	for _, b := range cfg.Blocks {
		if len(b.Succs) < 2 || len(b.Cond) == 0 {
			continue
		}
		if !nodeTainted(pass.Info, tainted, b.Cond) {
			continue
		}
		// Arms of one branch must be compared through one solver with
		// the branch block as the cut (see seqSolver). Sequences are
		// normalized before comparing: a rank-dependent trip count
		// over purely local work (splitRange-style data parallelism)
		// is not schedule divergence — only differing collectives are.
		// An arm with no complete paths (all abort or loop back) is
		// vacuous and compares against nothing.
		ss := newSeqSolver(cs, b)
		first := normalizeSeqs(ss.seqs(b.Succs[0]))
		if len(first) == 0 {
			continue
		}
		for _, succ := range b.Succs[1:] {
			got := normalizeSeqs(ss.seqs(succ))
			if len(got) == 0 {
				continue
			}
			if !equalSeqSets(first, got) {
				pass.Reportf(b.Cond[0].Pos(),
					"rank-dependent branch diverges in collective sequence: [%s] vs [%s] (deadlock risk)",
					seqSetString(first), seqSetString(got))
				break
			}
		}
	}
}

func equalSeqSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seqSetString renders a sorted sequence set for the diagnostic, with
// the empty sequence spelled out.
func seqSetString(seqs []string) string {
	parts := make([]string, len(seqs))
	for i, s := range seqs {
		if s == "" {
			s = "<none>"
		}
		parts[i] = s
	}
	return strings.Join(parts, " | ")
}
