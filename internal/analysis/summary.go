package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the summary-driven interprocedural layer shared by the
// cross-rank analyzers: which calls are MPI collectives, which
// expressions are rank-dependent, and what collective sequence a
// same-package callee contributes at its call site. Scope is one
// package (the vet unit): cross-package calls other than to the mpi
// runtime itself are opaque.

// collectiveFuncs are the package-level mpi entry points that are
// collective over the communicator: every rank must call them in the
// same order or ranks deadlock in mismatched barriers/mailbox waits.
var collectiveFuncs = map[string]bool{
	"Bcast": true, "Allgather": true, "Alltoall": true, "Ialltoall": true,
	"Alltoallv": true, "IAlltoallv": true, "AllreduceSum": true,
	"AllreduceMax": true, "ReduceSum": true, "Gather": true, "Scatter": true,
	"ExScan": true, "NewExchangePlan": true, "NewExchangePlanBounded": true,
	"NewA2APlan": true, "NewReducePlan": true,
}

// collectiveMethods maps mpi receiver types to their collective
// methods. Free is collective in effect: a rank that skips it leaves
// the plan's barrier registered forever on every rank.
var collectiveMethods = map[string]map[string]bool{
	"Comm":         {"Barrier": true, "Split": true, "CartGrid": true},
	"ExchangePlan": {"Do": true, "DoBounded": true, "Free": true},
	"A2APlan":      {"Do": true, "Free": true},
	"ReducePlan":   {"Sum": true, "Max": true, "Free": true},
}

// collectiveLabel returns the label of a direct mpi collective call
// ("mpi.Allgather", "ExchangePlan.Do"), or "".
func collectiveLabel(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Name() != "mpi" {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		n := namedType(recv.Type())
		if n == nil || n.Obj() == nil {
			return ""
		}
		if ms := collectiveMethods[n.Obj().Name()]; ms != nil && ms[f.Name()] {
			return n.Obj().Name() + "." + f.Name()
		}
		return ""
	}
	if collectiveFuncs[f.Name()] {
		return "mpi." + f.Name()
	}
	return ""
}

// planTypeName reports the mpi plan type a value is ((pointer to)
// ExchangePlan/A2APlan/ReducePlan), or "".
func planTypeName(t types.Type) string {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "mpi" {
		return ""
	}
	switch n.Obj().Name() {
	case "ExchangePlan", "A2APlan", "ReducePlan":
		return n.Obj().Name()
	}
	return ""
}

// rankTaint computes the set of objects in one function declaration
// (including its nested closures, so captured flags work) whose value
// derives from the local rank: x := c.Rank(), root := c.Rank() == 0,
// and everything assigned from them, to a fixpoint.
func rankTaint(info *types.Info, body ast.Node) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	exprTainted := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			case *ast.CallExpr:
				if isRankCall(info, n) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	taintLHS := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		before := len(tainted)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						if exprTainted(n.Rhs[i]) {
							taintLHS(n.Lhs[i])
						}
					}
				} else if len(n.Rhs) == 1 && exprTainted(n.Rhs[0]) {
					for _, l := range n.Lhs {
						taintLHS(l)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Values {
						if exprTainted(n.Values[i]) {
							if obj := info.Defs[n.Names[i]]; obj != nil && n.Names[i].Name != "_" {
								tainted[obj] = true
							}
						}
					}
				} else if len(n.Values) == 1 && exprTainted(n.Values[0]) {
					for _, id := range n.Names {
						if obj := info.Defs[id]; obj != nil && id.Name != "_" {
							tainted[obj] = true
						}
					}
				}
			}
			return true
		})
		if len(tainted) != before {
			changed = true
		}
	}
	return tainted
}

// isRankCall reports whether the call is <mpi.Comm>.Rank().
func isRankCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Name() == "Rank" && f.Pkg() != nil && f.Pkg().Name() == "mpi"
}

// nodeTainted reports whether any controlling expression mentions a
// tainted object or calls Rank() directly.
func nodeTainted(info *types.Info, tainted map[types.Object]bool, nodes []ast.Node) bool {
	for _, nd := range nodes {
		found := false
		ast.Inspect(nd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			case *ast.CallExpr:
				if isRankCall(info, n) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// collSummaries computes, per package function, the collective
// sequence one call to it contributes. A function whose paths all
// agree summarizes to that exact sequence (possibly empty); one whose
// paths disagree on data-dependent (non-rank) state is opaque — it
// summarizes to a single "call:name" marker so that symmetric use of
// the same helper stays symmetric while different helpers never
// compare equal by accident.
type collSummaries struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]string
	state map[*types.Func]int // 0 unvisited, 1 in progress, 2 done
}

func newCollSummaries(pass *Pass) *collSummaries {
	cs := &collSummaries{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*types.Func][]string{},
		state: map[*types.Func]int{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					cs.decls[obj] = fd
				}
			}
		}
	}
	return cs
}

// callLabels returns the collective labels one call contributes: a
// direct mpi collective's own label, or an inlined same-package
// summary.
func (cs *collSummaries) callLabels(call *ast.CallExpr) []string {
	if lab := collectiveLabel(cs.pass.Info, call); lab != "" {
		return []string{lab}
	}
	f := calleeFunc(cs.pass.Info, call)
	if f == nil || f.Pkg() != cs.pass.Pkg {
		return nil
	}
	return cs.summary(f)
}

func (cs *collSummaries) summary(f *types.Func) []string {
	switch cs.state[f] {
	case 1:
		// Recursive: opaque if the body mentions collectives at all.
		fd := cs.decls[f]
		if fd != nil && cs.mentionsCollective(fd.Body) {
			return []string{"call:" + f.Name()}
		}
		return nil
	case 2:
		return cs.memo[f]
	}
	fd := cs.decls[f]
	if fd == nil {
		return nil
	}
	cs.state[f] = 1
	cfg := BuildCFG(cs.pass.Info, fd.Body)
	// Loop markers are a fairness device for comparing branch arms,
	// not part of a function's collective schedule: normalization
	// keeps every purely-local loopy helper summarizing to the empty
	// sequence instead of going opaque.
	seqs := normalizeSeqs(newSeqSolver(cs, nil).seqs(cfg.Entry))
	var out []string
	switch {
	case len(seqs) == 1:
		if seqs[0] != "" {
			out = strings.Split(seqs[0], " ")
		}
	case len(seqs) > 1:
		out = []string{"call:" + f.Name()}
	}
	cs.state[f] = 2
	cs.memo[f] = out
	return out
}

// mentionsCollective is the cheap syntactic pre-check used to decide
// whether a recursive function is collective-relevant.
func (cs *collSummaries) mentionsCollective(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && collectiveLabel(cs.pass.Info, call) != "" {
			found = true
		}
		return !found
	})
	return found
}

// nodeLabels extracts, in source order, the collective labels of every
// call inside one CFG node, skipping closure bodies (creating a
// closure is not calling it).
func (cs *collSummaries) nodeLabels(nd ast.Node) []string {
	var out []string
	ast.Inspect(nd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isBuiltin(cs.pass.Info, n, "panic") {
				return false // cold abort path
			}
			out = append(out, cs.callLabels(n)...)
		}
		return true
	})
	return out
}

// seqSolver enumerates the distinct collective sequences from a block
// to the function exit, with deterministic caps so pathological fans
// stay cheap: at most maxSeqs sequences of at most maxSeqLen labels
// are kept, and a loop back-edge contributes a single "<loop>" marker
// (both arms of any branch see the same treatment, so truncation can
// hide a divergence but never invent one).
//
// A non-nil cut block is treated as already in progress: comparing the
// arms of a branch uses the branch block itself as the cut, so a path
// that loops back through the branch contributes the same marker to
// either arm and symmetric loop bodies compare equal. Arms of one
// branch must be compared through one solver — the shared suffix past
// the join is then memoized once and appended identically to both.
type seqSolver struct {
	cs    *collSummaries
	memo  map[*Block][]string
	state map[*Block]int
}

const (
	maxSeqs   = 16
	maxSeqLen = 48
)

func newSeqSolver(cs *collSummaries, cut *Block) *seqSolver {
	ss := &seqSolver{cs: cs, memo: map[*Block][]string{}, state: map[*Block]int{}}
	if cut != nil {
		ss.state[cut] = 1
	}
	return ss
}

// seqs returns the sorted, deduplicated sequence set from b to exit.
// Each sequence is a space-joined label string ("" for no
// collectives).
func (ss *seqSolver) seqs(b *Block) []string {
	switch ss.state[b] {
	case 1:
		return []string{"<loop>"}
	case 2:
		return ss.memo[b]
	}
	if b.Abort {
		// Abort paths (panic, os.Exit, log.Fatal) are not schedules:
		// they contribute no sequences, exactly as the tracker treats
		// panic paths as non-leaks.
		ss.state[b] = 2
		ss.memo[b] = nil
		return nil
	}
	ss.state[b] = 1
	var prefix []string
	for _, nd := range b.Nodes {
		prefix = append(prefix, ss.cs.nodeLabels(nd)...)
	}
	var out []string
	if len(b.Succs) == 0 {
		out = []string{strings.Join(capLabels(prefix), " ")}
	} else {
		set := map[string]bool{}
		for _, succ := range b.Succs {
			for _, tail := range ss.seqs(succ) {
				seq := strings.Join(capLabels(prefix), " ")
				if tail != "" {
					if seq != "" {
						seq += " " + tail
					} else {
						seq = tail
					}
				}
				set[strings.Join(capLabels(strings.Fields(seq)), " ")] = true
			}
		}
		for s := range set {
			out = append(out, s)
		}
		sort.Strings(out)
		if len(out) > maxSeqs {
			out = out[:maxSeqs]
		}
	}
	ss.state[b] = 2
	ss.memo[b] = out
	return out
}

func capLabels(labels []string) []string {
	if len(labels) <= maxSeqLen {
		return labels
	}
	return append(labels[:maxSeqLen:maxSeqLen], "...")
}

// normalizeSeqs canonicalizes an enumerated sequence set for
// comparison. A "<loop>" marker means the enumeration was truncated
// at a back-edge: such a path is not a complete path to the exit, so
// when it carries no collective labels it is a pure enumeration
// artifact (a rank-dependent trip count over local work) and is
// dropped; when it does carry collectives, the labels are kept — a
// rank-dependent number of barriers is genuine schedule divergence.
func normalizeSeqs(seqs []string) []string {
	set := map[string]bool{}
	for _, s := range seqs {
		fields := strings.Fields(s)
		looped := false
		var kept []string
		for _, lab := range fields {
			if lab == "<loop>" {
				looped = true
				continue
			}
			kept = append(kept, lab)
		}
		if looped && len(kept) == 0 {
			continue
		}
		set[strings.Join(kept, " ")] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
