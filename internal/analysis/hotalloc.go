package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc reports heap allocations in functions annotated
// //psdns:hotpath. These are the per-step and per-transform bodies
// whose allocs/op the bench gate pins at zero: one stray make per
// pencil is invisible at N=32 and catastrophic at scale.
//
// Flagged: make, new, append (may grow its backing array), map and
// slice literals, &composite literals (escape to the heap under
// aliasing), and implicit interface conversions of non-pointer-shaped
// values (boxing). The check propagates one level into same-package
// callees, including through interface dispatch: a call to an
// interface method (the System plug-in pattern — a hot stepper
// invoking sys.Nonlinear) propagates into every same-package concrete
// method implementing it, since any of them can be the one on the hot
// path at runtime. Panic subtrees and guard clauses that end in panic
// are skipped: those are cold abort paths, not steady-state work.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid heap allocations in //psdns:hotpath functions and their direct same-package callees",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	methodDecls := map[string][]*ast.FuncDecl{} // concrete methods by name
	hotSet := map[*ast.FuncDecl]bool{}
	var hot []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
				if fd.Recv != nil {
					methodDecls[fd.Name.Name] = append(methodDecls[fd.Name.Name], fd)
				}
			}
			if isHotpath(fd) {
				hot = append(hot, fd)
				hotSet[fd] = true
			}
		}
	}

	checked := map[*ast.FuncDecl]bool{}
	check := func(root string, cd *ast.FuncDecl) {
		if cd == nil || hotSet[cd] || checked[cd] {
			return
		}
		checked[cd] = true
		h := &hotChecker{pass: pass, root: root, callee: cd.Name.Name}
		h.checkDecl(cd)
	}
	for _, fd := range hot {
		h := &hotChecker{pass: pass, root: fd.Name.Name, collect: true}
		h.checkDecl(fd)
		for _, callee := range h.callees {
			check(fd.Name.Name, decls[callee])
		}
		// Interface dispatch: check every same-package implementation of
		// each interface method the hot function calls.
		for _, m := range h.ifaceCallees {
			iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
			if iface == nil {
				continue
			}
			for _, cd := range methodDecls[m.Name()] {
				obj, ok := pass.Info.Defs[cd.Name].(*types.Func)
				if !ok {
					continue
				}
				recv := obj.Type().(*types.Signature).Recv()
				if recv != nil && types.Implements(recv.Type(), iface) {
					check(fd.Name.Name, cd)
				}
			}
		}
	}
}

type hotChecker struct {
	pass         *Pass
	root         string // the //psdns:hotpath function this check is rooted at
	callee       string // non-empty when checking a propagated callee
	collect      bool   // gather same-package callees for propagation
	callees      []*types.Func
	ifaceCallees []*types.Func // interface methods called (dispatch targets unknown statically)
}

func (h *hotChecker) report(pos token.Pos, what string) {
	if h.callee != "" {
		h.pass.Reportf(pos, "%s in %s, called from //psdns:hotpath function %s", what, h.callee, h.root)
	} else {
		h.pass.Reportf(pos, "%s in //psdns:hotpath function %s", what, h.root)
	}
}

func (h *hotChecker) checkDecl(fd *ast.FuncDecl) {
	var sig *types.Signature
	if t := h.pass.Info.TypeOf(fd.Name); t != nil {
		sig, _ = t.(*types.Signature)
	}
	h.stmt(fd.Body, sig)
}

// guardPanics reports whether an if statement is a cold guard clause:
// no else branch, body's last statement a call to panic.
func (h *hotChecker) guardPanics(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) == 0 {
		return false
	}
	last, ok := s.Body.List[len(s.Body.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := last.X.(*ast.CallExpr)
	return ok && isBuiltin(h.pass.Info, call, "panic")
}

func (h *hotChecker) stmt(s ast.Stmt, sig *types.Signature) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			h.stmt(st, sig)
		}
	case *ast.IfStmt:
		if h.guardPanics(s) {
			return // cold abort path
		}
		h.stmt(s.Init, sig)
		h.expr(s.Cond)
		h.stmt(s.Body, sig)
		h.stmt(s.Else, sig)
	case *ast.ForStmt:
		h.stmt(s.Init, sig)
		h.expr(s.Cond)
		h.stmt(s.Post, sig)
		h.stmt(s.Body, sig)
	case *ast.RangeStmt:
		h.expr(s.X)
		h.stmt(s.Body, sig)
	case *ast.SwitchStmt:
		h.stmt(s.Init, sig)
		h.expr(s.Tag)
		h.stmt(s.Body, sig)
	case *ast.TypeSwitchStmt:
		h.stmt(s.Init, sig)
		h.stmt(s.Assign, sig)
		h.stmt(s.Body, sig)
	case *ast.CaseClause:
		for _, e := range s.List {
			h.expr(e)
		}
		for _, st := range s.Body {
			h.stmt(st, sig)
		}
	case *ast.SelectStmt:
		h.stmt(s.Body, sig)
	case *ast.CommClause:
		h.stmt(s.Comm, sig)
		for _, st := range s.Body {
			h.stmt(st, sig)
		}
	case *ast.ExprStmt:
		h.expr(s.X)
	case *ast.SendStmt:
		h.expr(s.Chan)
		h.expr(s.Value)
		if t := h.pass.Info.TypeOf(s.Chan); t != nil {
			if ch, ok := t.Underlying().(*types.Chan); ok {
				h.checkBox(s.Value, ch.Elem())
			}
		}
	case *ast.IncDecStmt:
		h.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			h.expr(e)
		}
		for _, e := range s.Lhs {
			h.expr(e)
		}
		if s.Tok == token.ASSIGN && len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				h.checkBox(s.Rhs[i], h.pass.Info.TypeOf(s.Lhs[i]))
			}
		}
	case *ast.GoStmt:
		h.report(s.Pos(), "go statement allocates a goroutine")
		h.expr(s.Call)
	case *ast.DeferStmt:
		h.expr(s.Call)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			h.expr(e)
		}
		if sig != nil && sig.Results() != nil && len(s.Results) == sig.Results().Len() {
			for i, e := range s.Results {
				h.checkBox(e, sig.Results().At(i).Type())
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					h.expr(v)
					if vs.Type != nil {
						h.checkBox(v, h.pass.Info.TypeOf(vs.Type))
					}
				}
			}
		}
	case *ast.LabeledStmt:
		h.stmt(s.Stmt, sig)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (h *hotChecker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		h.expr(e.X)
	case *ast.CallExpr:
		h.call(e)
	case *ast.CompositeLit:
		h.composite(e, false)
	case *ast.UnaryExpr:
		if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
			h.composite(cl, true)
			return
		}
		h.expr(e.X)
	case *ast.BinaryExpr:
		h.expr(e.X)
		h.expr(e.Y)
	case *ast.StarExpr:
		h.expr(e.X)
	case *ast.SelectorExpr:
		h.expr(e.X)
	case *ast.IndexExpr:
		h.expr(e.X)
		h.expr(e.Index)
	case *ast.IndexListExpr:
		h.expr(e.X)
	case *ast.SliceExpr:
		h.expr(e.X)
		h.expr(e.Low)
		h.expr(e.High)
		h.expr(e.Max)
	case *ast.TypeAssertExpr:
		h.expr(e.X)
	case *ast.KeyValueExpr:
		h.expr(e.Value)
	case *ast.FuncLit:
		// The closure's body runs on the hot path, so check it; the
		// closure value itself is created once per enclosing call and
		// is how the engines stage per-plan kernels, so its creation
		// is not flagged.
		var sig *types.Signature
		if t := h.pass.Info.TypeOf(e); t != nil {
			sig, _ = t.(*types.Signature)
		}
		h.stmt(e.Body, sig)
	}
}

// call handles builtins, conversions, and ordinary calls, including
// boxing checks of arguments against interface-typed parameters.
func (h *hotChecker) call(call *ast.CallExpr) {
	switch {
	case isBuiltin(h.pass.Info, call, "panic"):
		return // cold abort path: ignore everything inside
	case isBuiltin(h.pass.Info, call, "make"):
		h.report(call.Pos(), "call to make allocates")
	case isBuiltin(h.pass.Info, call, "new"):
		h.report(call.Pos(), "call to new allocates")
	case isBuiltin(h.pass.Info, call, "append"):
		h.report(call.Pos(), "append may grow its backing array and allocate")
	}

	// Conversion to an interface type boxes the operand.
	if tv, ok := h.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		h.checkBox(call.Args[0], tv.Type)
		h.expr(call.Args[0])
		return
	}

	if f := calleeFunc(h.pass.Info, call); f != nil && h.collect {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				h.ifaceCallees = append(h.ifaceCallees, f)
			}
		}
		if f.Pkg() == h.pass.Pkg {
			h.callees = append(h.callees, f)
		}
	}
	if t := h.pass.Info.TypeOf(call.Fun); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			h.checkArgs(call, sig)
		}
	}

	h.expr(call.Fun)
	for _, a := range call.Args {
		h.expr(a)
	}
}

// checkArgs flags arguments boxed into interface-typed parameters,
// including the variadic tail (the []any of a printf-style call).
func (h *hotChecker) checkArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		h.checkBox(arg, pt)
	}
}

// checkBox reports e if assigning it to target boxes a value on the
// heap: target is an interface and e's type is concrete and not
// pointer-shaped. Constants are skipped (their descriptors are
// static), as are nils and values that are already interfaces.
func (h *hotChecker) checkBox(e ast.Expr, target types.Type) {
	if e == nil || target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := h.pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	src := tv.Type
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored directly in the interface word
	}
	h.report(e.Pos(), "interface conversion of "+types.TypeString(src, types.RelativeTo(h.pass.Pkg))+" allocates (boxing)")
}

// composite flags map and slice literals (always heap-backed) and
// address-taken composite literals (escape under aliasing). Plain
// struct and array value literals are stack objects and pass.
func (h *hotChecker) composite(cl *ast.CompositeLit, addressed bool) {
	t := h.pass.Info.TypeOf(cl)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			h.report(cl.Pos(), "map literal allocates")
		case *types.Slice:
			h.report(cl.Pos(), "slice literal allocates")
		default:
			if addressed {
				h.report(cl.Pos(), "&composite literal escapes to the heap")
			}
		}
	}
	for _, el := range cl.Elts {
		h.expr(el)
	}
}
