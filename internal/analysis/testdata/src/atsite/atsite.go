// Package atsite exercises the asynchrony-tolerant exchange contract:
// DoBounded only on bounded-constructed plans, SetSite labeling for
// multi-site plans, and exchange.AT out of candidate sets.
package atsite

import (
	"exchange"
	"mpi"
)

// DoBounded on a plan built without a staleness bound.
func badUnboundedDoBounded(c *mpi.Comm, src []complex128) {
	p := mpi.NewExchangePlan(c, 8)
	defer p.Free()
	p.DoBounded(src, nil, 2) // want `DoBounded on a plan constructed without a staleness bound`
}

// Clean twin: bounded construction, one labeled site.
func goodBounded(c *mpi.Comm, src []complex128) {
	p := mpi.NewExchangePlanBounded(c, 8, 2, 0)
	defer p.Free()
	p.SetSite("yz")
	p.DoBounded(src, nil, 2)
}

// Two DoBounded sites on one plan without SetSite: the staleness
// accounting cannot tell the directions apart.
func badUnlabeledSites(c *mpi.Comm, src []complex128) {
	p := mpi.NewExchangePlanBounded(c, 8, 2, 0)
	defer p.Free()
	p.DoBounded(src, nil, 2)
	p.DoBounded(src, nil, 2) // want `multiple DoBounded sites on one plan without SetSite labeling`
}

// Clean twin: both sites labeled.
func goodLabeledSites(c *mpi.Comm, src []complex128) {
	p := mpi.NewExchangePlanBounded(c, 8, 2, 0)
	defer p.Free()
	p.SetSite("yz")
	p.DoBounded(src, nil, 2)
	p.SetSite("zy")
	p.DoBounded(src, nil, 2)
}

// exchange.AT must not enter concrete candidate sets.
func badCandidateLiteral() []exchange.Strategy {
	return []exchange.Strategy{exchange.Staged, exchange.AT} // want `exchange\.AT in a concrete strategy candidate set`
}

func badCandidateAppend(cands []exchange.Strategy) []exchange.Strategy {
	return append(cands, exchange.AT) // want `exchange\.AT appended to a concrete strategy candidate set`
}

// Clean twin: candidates come from the Concrete list, which excludes
// AT by construction.
func goodCandidates() []exchange.Strategy {
	return append([]exchange.Strategy{}, exchange.Concrete...)
}
