// Package mpi (fixture) exercises the lockorder analyzer, which only
// activates inside an mpi package: mailbox entry points, channel
// sends, and nested cond.Wait under held mutexes.
package mpi

import "sync"

type mailbox struct {
	mu sync.Mutex
	q  []int
}

// put and get are self-locking entry points, like the runtime's.
func (m *mailbox) put(v int) {
	m.mu.Lock()
	m.q = append(m.q, v)
	m.mu.Unlock()
}

func (m *mailbox) get() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.q[0]
	m.q = m.q[1:]
	return v
}

type world struct {
	mu    sync.Mutex
	inner sync.Mutex
	box   *mailbox
	ch    chan int
	cv    *sync.Cond
}

// nested calls mailbox entry points and sends with the world lock
// held: both nest a second lock or block the holder.
func (w *world) nested(v int) {
	w.mu.Lock()
	w.box.put(v)    // want `mailbox put while holding a mutex`
	_ = w.box.get() // want `mailbox get while holding a mutex`
	w.ch <- v       // want `channel send while holding a mutex`
	w.mu.Unlock()
}

// nestedWait sleeps on a cond with a second mutex still held: Wait
// only releases its own mutex.
func (w *world) nestedWait() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.inner.Lock()
	w.cv.Wait() // want `cond.Wait while holding a second mutex`
	w.inner.Unlock()
}

// unlocked copies what it needs under the lock and operates outside
// it, the pattern the runtime's abort paths use.
func (w *world) unlocked(v int) {
	w.mu.Lock()
	box := w.box
	w.mu.Unlock()
	box.put(v)
	w.ch <- v
}

// ownWait holds exactly one mutex across Wait, which is the normal
// condition-variable protocol.
func (w *world) ownWait() {
	w.mu.Lock()
	w.cv.Wait()
	w.mu.Unlock()
}

// deferredDelivery hands work to a goroutine body, which starts with
// no locks held.
func (w *world) deferredDelivery(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	go func() {
		w.box.put(v)
		w.ch <- v
	}()
}

// allowedSend documents a deliberate send under the lock.
func (w *world) allowedSend(v int) {
	w.mu.Lock()
	w.ch <- v //psdns:allow lockorder buffered signal channel sized to the rank count
	w.mu.Unlock()
}
