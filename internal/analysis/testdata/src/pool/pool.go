// Package pool is a fixture stub with the arena API shape the
// poolpair analyzer matches on: package name "pool", Get*/Put* pairs.
package pool

type Arena struct{}

func GetComplex(n int) []complex128 { return make([]complex128, n) }
func GetFloat(n int) []float64      { return make([]float64, n) }
func PutComplex(b []complex128)     {}
func PutFloat(b []float64)          {}

func (a *Arena) GetComplex(n int) []complex128 { return make([]complex128, n) }
func (a *Arena) PutComplex(b []complex128)     {}
