// Package collsym exercises the cross-rank collective-symmetry
// analyzer: rank-dependent branches whose arms issue different
// collective sequences are deadlocks; symmetric twins are clean.
package collsym

import "mpi"

// Rank-conditional barrier: rank 0 enters the barrier, everyone else
// never arrives.
func badConditionalBarrier(c *mpi.Comm) {
	if c.Rank() == 0 { // want `rank-dependent branch diverges in collective sequence`
		c.Barrier()
	}
}

// Symmetric twin: the rank-dependent branch only changes local work;
// the barrier is issued unconditionally on every path.
func goodSymmetricBarrier(c *mpi.Comm, log func(string)) {
	if c.Rank() == 0 {
		log("step")
	}
	c.Barrier()
}

// Early return before a collective splits the schedule.
func badEarlyReturn(c *mpi.Comm, buf []float64) {
	if c.Rank() != 0 { // want `rank-dependent branch diverges in collective sequence`
		return
	}
	mpi.Allgather(c, buf, buf)
}

// Early return on non-rank state is fine: every rank sees the same
// predicate value, so the schedule stays uniform.
func goodEarlyReturn(c *mpi.Comm, buf []float64, skip bool) {
	if skip {
		return
	}
	mpi.Allgather(c, buf, buf)
}

// Rank-dependent branches inside loops stay symmetric when both arms
// agree on the collective suffix.
func goodLoop(c *mpi.Comm, log func(string)) {
	for i := 0; i < 4; i++ {
		if c.Rank() == 0 {
			log("iter")
		}
		c.Barrier()
	}
}

// barrierAlways issues the same collective sequence on all of its own
// paths, so its summary inlines at call sites.
func barrierAlways(c *mpi.Comm, n int) {
	if n > 3 {
		c.Barrier()
		return
	}
	c.Barrier()
}

func localOnly(log func(string)) { log("x") }

// Interprocedural symmetric twin: one arm reaches the barrier through
// a same-package helper, the other directly — same sequence.
func goodViaHelper(c *mpi.Comm, n int) {
	if c.Rank() == 0 {
		barrierAlways(c, n)
	} else {
		c.Barrier()
	}
}

// Interprocedural violation: only one arm's helper performs the
// collective.
func badViaHelper(c *mpi.Comm, n int, log func(string)) {
	if c.Rank() == 0 { // want `rank-dependent branch diverges in collective sequence`
		barrierAlways(c, n)
	} else {
		localOnly(log)
	}
}

// A rank flag captured by a closure taints branches inside the
// closure body too.
func badClosureCapture(c *mpi.Comm) func() {
	root := c.Rank() == 0
	return func() {
		if root { // want `rank-dependent branch diverges in collective sequence`
			c.Barrier()
		}
	}
}

// Plan lifecycle calls are collectives: constructing and freeing on
// one rank only diverges the schedule.
func badConditionalFree(c *mpi.Comm, p *mpi.ExchangePlan) {
	if c.Rank() == 0 { // want `rank-dependent branch diverges in collective sequence`
		p.Free()
	}
}

// Suppressed finding: a deliberately rank-gated collective with a
// reasoned allow directive stays quiet.
func allowedConditional(c *mpi.Comm) {
	//psdns:allow collsym fixture demonstrates a reasoned suppression
	if c.Rank() == 0 {
		c.Barrier()
	}
}

// Pencil grids: a plan exchange on a sub-communicator is as much a
// collective as one on the world; gating the row-group exchange on the
// grid coordinate stalls the whole column of the process grid.
func badRowGatedPencilExchange(c *mpi.Comm, buf []complex128, gather func([][]complex128)) {
	row, col := c.CartGrid(2, 2)
	rowEx := mpi.NewExchangePlan(row, 8)
	colEx := mpi.NewExchangePlan(col, 8)
	colEx.Do(buf, gather)
	if c.Rank()/2 == 0 { // want `rank-dependent branch diverges in collective sequence`
		rowEx.Do(buf, gather)
	}
	rowEx.Free()
	colEx.Free()
}

// Symmetric twin: the row and column exchanges of a pencil transpose
// run unconditionally on every rank; only local packing is gated on
// the grid coordinate.
func goodPencilExchangePair(c *mpi.Comm, buf []complex128, gather func([][]complex128), pack func()) {
	row, col := c.CartGrid(2, 2)
	rowEx := mpi.NewExchangePlan(row, 8)
	colEx := mpi.NewExchangePlan(col, 8)
	if c.Rank()/2 == 0 {
		pack()
	}
	colEx.Do(buf, gather)
	rowEx.Do(buf, gather)
	rowEx.Free()
	colEx.Free()
}
