// Package mpi is a fixture stub with the runtime API shape the
// mpireq analyzer matches on: package name "mpi", a Request type with
// Wait/WaitWithin/Test, nonblocking constructors, and point-to-point
// calls whose tag parameters are named tag/dtag/stag.
package mpi

type Comm struct{ rank int }

func (c *Comm) Rank() int { return c.rank }
func (c *Comm) Size() int { return 1 }
func (c *Comm) Barrier()  {}

// Split and CartGrid mirror the sub-communicator constructors; both
// are collectives over the parent, and the communicators they return
// carry collectives of their own (the pencil row/column exchanges).
func (c *Comm) Split(color, key int) *Comm           { return &Comm{} }
func (c *Comm) CartGrid(pr, pc int) (row, col *Comm) { return &Comm{}, &Comm{} }

func Allgather(c *Comm, send, recv []float64) {}

type Request struct{ done chan struct{} }

func (r *Request) Wait()                                  {}
func (r *Request) WaitWithin(ns int64) error              { return nil }
func (r *Request) Test() bool                             { return true }
func WaitAll(rs ...*Request)                              {}
func Ialltoall(c *Comm, send, recv []complex128) *Request { return &Request{} }

func Send(c *Comm, dst, tag int, buf []float64)                                      {}
func Recv(c *Comm, src, tag int, buf []float64)                                      {}
func Sendrecv(c *Comm, dst, dtag int, send []float64, src, stag int, recv []float64) {}

// ExchangePlan mirrors the persistent fused-exchange plan: its Do and
// DoBounded entry points are collectives that complete before
// returning (no request to leak) and take no tag — DoBounded's
// trailing int is a staleness bound, which the analyzer must not
// mistake for a tag.
type ExchangePlan struct{}

func NewExchangePlan(c *Comm, slabLen int) *ExchangePlan { return &ExchangePlan{} }
func NewExchangePlanBounded(c *Comm, slabLen, maxStale int, deadlineNs int64) *ExchangePlan {
	return &ExchangePlan{}
}
func (p *ExchangePlan) Do(src []complex128, gather func([][]complex128))                   {}
func (p *ExchangePlan) DoBounded(src []complex128, gather func([][]complex128), stale int) {}
func (p *ExchangePlan) SetSite(site string)                                                {}
func (p *ExchangePlan) Free()                                                              {}

// A2APlan and ReducePlan mirror the persistent all-to-all and
// reduction plans for the planfree/collsym/atsite fixtures.
type A2APlan struct{}

func NewA2APlan(c *Comm, n int) *A2APlan      { return &A2APlan{} }
func (p *A2APlan) Do(send, recv []complex128) {}
func (p *A2APlan) Free()                      {}

type ReducePlan struct{ pl *ExchangePlan }

func NewReducePlan(c *Comm, n int) *ReducePlan { return &ReducePlan{} }
func (r *ReducePlan) Sum(vals []float64)       {}
func (r *ReducePlan) Max(vals []float64)       {}
func (r *ReducePlan) Free()                    {}
