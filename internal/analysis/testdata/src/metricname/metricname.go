// Package metricname exercises the metricname analyzer: the
// subsystem.noun[.verb] convention, constant-only names, and the
// one-kind-per-name rule.
package metricname

import "metrics"

const planBuilds = "fft.plan.builds"

func register(r *metrics.Registry, dynamic string) {
	r.Counter("pool.hit")
	r.Counter(planBuilds)
	r.GaugeRank("par.workers.busy", 0)
	r.Histogram("mpi.a2a.bytes")

	r.Gauge("Pool.Hit")    // want `does not match the subsystem.noun`
	r.Counter("pool")      // want `does not match the subsystem.noun`
	r.Counter("a.b.c.d.e") // want `does not match the subsystem.noun`
	r.Counter("pool.hit.") // want `does not match the subsystem.noun`
	r.Histogram(dynamic)   // want `metric name must be a constant string`
	r.Gauge("pool.hit")    // want `metric "pool.hit" registered as both counter and gauge`
	r.CounterRank(planBuilds, 1)
}

// allowedLegacy keeps a pre-convention name with a reason.
func allowedLegacy(r *metrics.Registry) {
	r.Counter("LegacySteps") //psdns:allow metricname grandfathered name consumed by external dashboards
}
