// Package suppress exercises the //psdns:allow directive's edge
// cases: a directive above a multi-line statement covers findings on
// its continuation lines, and a directive naming an unknown analyzer
// is itself reported.
package suppress

import "mpi"

// The raw-tag finding lands on the continuation line holding the
// literal; the directive above the statement's first line must cover
// it.
func multilineStatement(c *mpi.Comm, buf []float64) {
	//psdns:allow mpireq fixture exercises statement-start suppression
	mpi.Send(c, 1,
		42,
		buf)
}

// A typo'd analyzer name suppresses nothing and is reported.
func wrongAnalyzerName(c *mpi.Comm, buf []float64) {
	//psdns:allow mpireqq typo should be caught // want `psdns:allow names unknown analyzer "mpireqq"`
	mpi.Send(c, 1, 43, buf) // want `raw tag literal 43`
}

// A known-analyzer directive with no reason is reported and
// suppresses nothing.
func missingReason(c *mpi.Comm, buf []float64) {
	//psdns:allow mpireq // want `psdns:allow mpireq requires a non-empty reason`
	mpi.Send(c, 1, 44, buf) // want `raw tag literal 44`
}
