// Package mpireq exercises the mpireq analyzer: dropped nonblocking
// requests, early-return paths that skip Wait, completion via
// Wait/WaitWithin/Test/WaitAll, and raw tag literals.
package mpireq

import "mpi"

const (
	evTag   = 11
	ackTag  = 12
	dataTag = 13
)

// forget drops the request entirely.
func forget(c *mpi.Comm, send, recv []complex128) {
	req := mpi.Ialltoall(c, send, recv) // want `request from mpi.Ialltoall may not reach Wait/WaitWithin`
	_ = req
}

// early skips Wait on the guard path.
func early(c *mpi.Comm, send, recv []complex128, cond bool) {
	req := mpi.Ialltoall(c, send, recv) // want `request from mpi.Ialltoall may not reach Wait/WaitWithin on this return path`
	if cond {
		return
	}
	req.Wait()
}

// waited completes on every path.
func waited(c *mpi.Comm, send, recv []complex128) {
	req := mpi.Ialltoall(c, send, recv)
	defer req.Wait()
}

// within uses the watchdog-friendly bounded wait.
func within(c *mpi.Comm, send, recv []complex128) error {
	req := mpi.Ialltoall(c, send, recv)
	return req.WaitWithin(1 << 30)
}

// fanout hands both requests to WaitAll: passing a request on is a
// completion hand-off.
func fanout(c *mpi.Comm, a, b []complex128) {
	r1 := mpi.Ialltoall(c, a, a)
	r2 := mpi.Ialltoall(c, b, b)
	mpi.WaitAll(r1, r2)
}

// rawTags passes literal tags where named constants are required.
func rawTags(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 0, 7, buf)                    // want `raw tag literal 7 in call to mpi.Send`
	mpi.Recv(c, 1, -3, buf)                   // want `raw tag literal 3 in call to mpi.Recv`
	mpi.Sendrecv(c, 0, 5, buf, 1, evTag, buf) // want `raw tag literal 5 in call to mpi.Sendrecv`
	mpi.Recv(c, 1, evTag, buf)                // named constants pass
	mpi.Sendrecv(c, 0, ackTag, buf, 1, dataTag, buf)
}

// allowedTag documents a deliberate literal with a reason.
func allowedTag(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 0, 9, buf) //psdns:allow mpireq handshake tag fixed by the wire protocol
}

// planExchange pins the plan-scoped collectives clean: Do and the
// asynchrony-tolerant DoBounded return only after completion (no
// request to track), carry no tag parameter, and DoBounded's literal
// staleness bound must not be reported as a raw tag.
func planExchange(c *mpi.Comm, src []complex128) {
	pl := mpi.NewExchangePlanBounded(c, len(src), 2, 1<<30)
	defer pl.Free()
	pl.Do(src, func([][]complex128) {})
	pl.DoBounded(src, func([][]complex128) {}, 2)
	sync := mpi.NewExchangePlan(c, len(src))
	defer sync.Free()
	sync.Do(src, func([][]complex128) {})
}
