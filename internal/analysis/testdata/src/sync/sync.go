// Package sync is a fixture stub standing in for the standard
// library's sync package: the lockorder analyzer matches on the
// package path "sync" and the type names Mutex, RWMutex and Cond,
// and fixtures are loaded hermetically from testdata/src.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type Locker interface {
	Lock()
	Unlock()
}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
