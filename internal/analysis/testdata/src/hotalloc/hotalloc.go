// Package hotalloc exercises the hotalloc analyzer: allocations in
// //psdns:hotpath functions, one-level propagation into callees,
// panic-guard skipping, and the //psdns:allow suppression path.
package hotalloc

type state struct {
	buf   []float64
	sink  any
	stage func()
}

// clean is annotated and allocation-free: pure index arithmetic,
// guard clauses ending in panic, and stack struct values must all
// pass.
//
//psdns:hotpath
func clean(dst, src []float64) {
	if len(dst) < len(src) {
		panic("hotalloc: short destination")
	}
	type pair struct{ a, b float64 }
	p := pair{a: 1, b: 2}
	for i := range src {
		dst[i] = src[i]*p.a + p.b
	}
}

// alloc trips every allocation class the analyzer knows.
//
//psdns:hotpath
func alloc(s *state, n int) {
	tmp := make([]float64, n) // want `call to make allocates`
	s.buf = append(s.buf, 1)  // want `append may grow its backing array`
	q := new(state)           // want `call to new allocates`
	m := map[int]int{}        // want `map literal allocates`
	sl := []int{1, 2}         // want `slice literal allocates`
	r := &state{}             // want `&composite literal escapes`
	s.sink = n                // want `interface conversion of int allocates`
	use(tmp, q, m, sl, r)
}

func use(a []float64, b *state, c map[int]int, d []int, e *state) {}

// helper is not annotated itself but is called from a hotpath
// function, so its body is checked one level deep.
func helper(n int) []float64 {
	return make([]float64, n) // want `call to make allocates in helper, called from //psdns:hotpath function propagates`
}

// second is two levels from any annotation and so is not checked.
func second(n int) []float64 {
	return make([]float64, n)
}

func indirect(n int) []float64 { return second(n) }

//psdns:hotpath
func propagates(s *state, n int) {
	s.buf = helper(n)
	s.buf = indirect(n)
}

// allowed demonstrates the suppression path: a real allocation with
// a reasoned //psdns:allow directive is not reported.
//
//psdns:hotpath
func allowed(s *state, n int) {
	//psdns:allow hotalloc one-time lazy initialization, amortized across all steps
	s.buf = make([]float64, n)
}

// emptyReason shows that a bare directive suppresses nothing and is
// itself diagnosed.
//
//psdns:hotpath
func emptyReason(s *state, n int) {
	//psdns:allow hotalloc // want `psdns:allow hotalloc requires a non-empty reason`
	s.buf = make([]float64, n) // want `call to make allocates`
}

// closures staged on the hot path are checked inside but their
// creation is not flagged: engines build kernel closures at plan
// time and the analyzer only sees annotated bodies.
//
//psdns:hotpath
func staged(s *state, n int) {
	s.stage = func() {
		_ = make([]int, n) // want `call to make allocates`
	}
}

// equation is the pluggable-System dispatch pattern: a hot stepper
// calls through an interface, so the analyzer cannot resolve the
// callee statically and must check every same-package implementation
// one level deep.
type equation interface {
	rhs(dst []float64)
}

type cleanEq struct{}

// rhs implements equation without allocating: passes.
func (cleanEq) rhs(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

type dirtyEq struct{ scratch []float64 }

// rhs implements equation but allocates: reported through the
// interface dispatch in the hot stepper.
func (e *dirtyEq) rhs(dst []float64) {
	e.scratch = make([]float64, len(dst)) // want `call to make allocates in rhs, called from //psdns:hotpath function dispatch`
	copy(e.scratch, dst)
}

// unrelated shares the method name but not the signature, so it does
// not implement equation and is not checked.
type unrelated struct{}

func (unrelated) rhs() []float64 { return make([]float64, 1) }

//psdns:hotpath
func dispatch(eq equation, dst []float64) {
	eq.rhs(dst)
}
