// Package hotalloc exercises the hotalloc analyzer: allocations in
// //psdns:hotpath functions, one-level propagation into callees,
// panic-guard skipping, and the //psdns:allow suppression path.
package hotalloc

type state struct {
	buf   []float64
	sink  any
	stage func()
}

// clean is annotated and allocation-free: pure index arithmetic,
// guard clauses ending in panic, and stack struct values must all
// pass.
//
//psdns:hotpath
func clean(dst, src []float64) {
	if len(dst) < len(src) {
		panic("hotalloc: short destination")
	}
	type pair struct{ a, b float64 }
	p := pair{a: 1, b: 2}
	for i := range src {
		dst[i] = src[i]*p.a + p.b
	}
}

// alloc trips every allocation class the analyzer knows.
//
//psdns:hotpath
func alloc(s *state, n int) {
	tmp := make([]float64, n) // want `call to make allocates`
	s.buf = append(s.buf, 1)  // want `append may grow its backing array`
	q := new(state)           // want `call to new allocates`
	m := map[int]int{}        // want `map literal allocates`
	sl := []int{1, 2}         // want `slice literal allocates`
	r := &state{}             // want `&composite literal escapes`
	s.sink = n                // want `interface conversion of int allocates`
	use(tmp, q, m, sl, r)
}

func use(a []float64, b *state, c map[int]int, d []int, e *state) {}

// helper is not annotated itself but is called from a hotpath
// function, so its body is checked one level deep.
func helper(n int) []float64 {
	return make([]float64, n) // want `call to make allocates in helper, called from //psdns:hotpath function propagates`
}

// second is two levels from any annotation and so is not checked.
func second(n int) []float64 {
	return make([]float64, n)
}

func indirect(n int) []float64 { return second(n) }

//psdns:hotpath
func propagates(s *state, n int) {
	s.buf = helper(n)
	s.buf = indirect(n)
}

// allowed demonstrates the suppression path: a real allocation with
// a reasoned //psdns:allow directive is not reported.
//
//psdns:hotpath
func allowed(s *state, n int) {
	//psdns:allow hotalloc one-time lazy initialization, amortized across all steps
	s.buf = make([]float64, n)
}

// emptyReason shows that a bare directive suppresses nothing and is
// itself diagnosed.
//
//psdns:hotpath
func emptyReason(s *state, n int) {
	//psdns:allow hotalloc // want `psdns:allow hotalloc requires a non-empty reason`
	s.buf = make([]float64, n) // want `call to make allocates`
}

// closures staged on the hot path are checked inside but their
// creation is not flagged: engines build kernel closures at plan
// time and the analyzer only sees annotated bodies.
//
//psdns:hotpath
func staged(s *state, n int) {
	s.stage = func() {
		_ = make([]int, n) // want `call to make allocates`
	}
}
