// Package planfree exercises the plan-lifecycle analyzer: local plans
// must reach Free on all paths, and plans escaping into struct fields
// must be freed at their owner's Close.
package planfree

import "mpi"

// Local plan never freed.
func badLocalLeak(c *mpi.Comm) {
	p := mpi.NewExchangePlan(c, 8) // want `plan from NewExchangePlan may not reach Free on function exit`
	_ = p
}

// Freed on the happy path only: the error return leaks it.
func badLeakOnReturn(c *mpi.Comm, fail bool) error {
	p := mpi.NewExchangePlan(c, 8) // want `plan from NewExchangePlan may not reach Free on this return path`
	if fail {
		return errFixture
	}
	p.Free()
	return nil
}

// Clean twin: deferred Free covers every path.
func goodDeferredFree(c *mpi.Comm, fail bool) error {
	p := mpi.NewExchangePlan(c, 8)
	defer p.Free()
	if fail {
		return errFixture
	}
	return nil
}

// Clean: returning the plan hands ownership to the caller.
func goodReturned(c *mpi.Comm) *mpi.A2APlan {
	p := mpi.NewA2APlan(c, 4)
	return p
}

type fixtureErr struct{}

func (fixtureErr) Error() string { return "fixture" }

var errFixture error = fixtureErr{}

// engine owns its plans; planfree checks field-escaped plans at the
// package level: every field a plan is stored into must be freed
// somewhere (directly, through an index, or element-wise in a range).
type engine struct {
	ex   *mpi.ExchangePlan
	red  *mpi.ReducePlan
	a2as []*mpi.A2APlan
}

func (e *engine) setup(c *mpi.Comm) {
	e.ex = mpi.NewExchangePlan(c, 8)
	e.red = mpi.NewReducePlan(c, 1) // want `plan stored in field engine\.red is never freed in this package`
	for i := 0; i < 2; i++ {
		e.a2as = append(e.a2as, mpi.NewA2APlan(c, 4))
	}
}

func (e *engine) Close() {
	e.ex.Free()
	for _, pl := range e.a2as {
		pl.Free()
	}
}

// pencilEngine owns one plan per grid direction, the pencil
// transpose's row/column pair; Close frees only the row plan, so the
// column plan's barrier stays registered on every rank of its group.
type pencilEngine struct {
	rowEx *mpi.ExchangePlan
	colEx *mpi.ExchangePlan
}

func (e *pencilEngine) setup(c *mpi.Comm) {
	row, col := c.CartGrid(2, 2)
	e.rowEx = mpi.NewExchangePlan(row, 8)
	e.colEx = mpi.NewExchangePlan(col, 8) // want `plan stored in field pencilEngine\.colEx is never freed in this package`
}

func (e *pencilEngine) Close() {
	e.rowEx.Free()
}

// Clean twin: both directions freed at Close.
type pencilEngineOK struct {
	rowEx *mpi.ExchangePlan
	colEx *mpi.ExchangePlan
}

func (e *pencilEngineOK) setup(c *mpi.Comm) {
	row, col := c.CartGrid(2, 2)
	e.rowEx = mpi.NewExchangePlan(row, 8)
	e.colEx = mpi.NewExchangePlan(col, 8)
}

func (e *pencilEngineOK) Close() {
	e.rowEx.Free()
	e.colEx.Free()
}
