// Package metrics is a fixture stub with the registry API shape the
// metricname analyzer matches on.
package metrics

type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string) *Counter                   { return &Counter{} }
func (r *Registry) CounterRank(name string, rank int) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                       { return &Gauge{} }
func (r *Registry) GaugeRank(name string, rank int) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram               { return &Histogram{} }
func (r *Registry) HistogramRank(name string, rank int) *Histogram { return &Histogram{} }
