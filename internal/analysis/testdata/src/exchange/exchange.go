// Package exchange is a fixture stub with the strategy enum the
// atsite analyzer matches on: package name "exchange", a Strategy
// type, the AT mode constant, and the Concrete candidate list.
package exchange

type Strategy int

const (
	Auto Strategy = iota
	Staged
	Fused
	ChunkedFused
	AT
)

// Concrete lists the strategies an autotuner chooses between; AT is
// excluded by design.
var Concrete = []Strategy{Staged, Fused, ChunkedFused}
