// Package poolpair exercises the poolpair analyzer: leaked
// checkouts, early-return leaks, release pairing via defer and
// branches, ownership hand-off, and the plan-time exemption.
package poolpair

import "pool"

type plan struct {
	buf   []complex128
	work  []float64
	arena *pool.Arena
}

// leak never releases its checkout: element access does not count as
// a hand-off.
func leak(n int) float64 {
	buf := pool.GetFloat(n) // want `buffer from pool.GetFloat may not be released`
	buf[0] = 1
	return buf[0]
}

// earlyReturn releases on the main path but not on the guard path.
func earlyReturn(n int, cond bool) {
	buf := pool.GetFloat(n) // want `buffer from pool.GetFloat may not be released .* on this return path`
	if cond {
		return
	}
	pool.PutFloat(buf)
}

// deferred pairs the checkout with a deferred release.
func deferred(n int) float64 {
	buf := pool.GetFloat(n)
	defer pool.PutFloat(buf)
	for i := range buf {
		buf[i] = float64(i)
	}
	return buf[0]
}

// branches releases on every path, including an arena method
// checkout released through the arena.
func branches(a *pool.Arena, n int, cond bool) {
	buf := a.GetComplex(n)
	if cond {
		buf[0] = 1
		a.PutComplex(buf)
		return
	}
	a.PutComplex(buf)
}

// handoff transfers ownership: storing into a struct, returning, or
// passing to another function all end local responsibility.
func handoff(p *plan, n int) []complex128 {
	p.buf = pool.GetComplex(n)
	local := pool.GetComplex(n)
	return local
}

// newPlan is constructor-named: plan-time checkouts live as long as
// the plan and are released by its Close, so they are exempt.
func newPlan(n int) *plan {
	p := &plan{}
	p.fill(n)
	return p
}

// fill is unexported and reachable only from newPlan, so the
// plan-time exemption propagates to it.
func (p *plan) fill(n int) {
	w := pool.GetFloat(n)
	p.work = w
}

// newTuned is the plan-time trial-checkout pattern: a constructor
// checks a trial buffer out of the arena, runs strategy trials against
// it, and releases it before returning — the autotuner's shape. The
// balanced checkout needs no exemption, and the plan-lifetime checkout
// beside it still rides the constructor exemption.
func newTuned(n int) *plan {
	p := &plan{buf: pool.GetComplex(n)}
	trial := pool.GetFloat(n)
	best := 0
	for st := 0; st < 3; st++ {
		if trialRun(trial, st) {
			best = st
		}
	}
	pool.PutFloat(trial)
	p.work = pool.GetFloat(best + 1)
	return p
}

// trialRun is unexported and reachable only from newTuned, so even a
// checkout it retained would ride the plan-time exemption.
func trialRun(trial []float64, st int) bool {
	trial[0] = float64(st)
	return trial[0] > 1
}

// allowed keeps a checkout alive past every return on purpose and
// says why.
func allowed(n int) {
	//psdns:allow poolpair checked out for the process lifetime, reclaimed at exit
	buf := pool.GetFloat(n)
	buf[0] = 1
}

// panicPath leaks only on the abort path, which is not a report.
func panicPath(n int, bad bool) {
	buf := pool.GetFloat(n)
	if bad {
		panic("poolpair: invalid geometry")
	}
	pool.PutFloat(buf)
}
