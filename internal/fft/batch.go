package fft

import (
	"fmt"

	"repro/internal/pool"
)

// Batch executes many transforms of the same length over strided data,
// mirroring the cufftPlanMany advanced-layout semantics the paper's GPU
// code depends on: transform t reads element j from
// src[t·idist + j·istride] and writes element k to
// dst[t·odist + k·ostride].
type Batch struct {
	p              *Plan
	howmany        int
	istride, idist int
	ostride, odist int
	in, out        []complex128
}

// NewBatch creates a batched plan of howmany length-n transforms with
// the given input/output strides and distances.
func NewBatch(n, howmany, istride, idist, ostride, odist int) *Batch {
	if howmany < 0 || istride < 1 || ostride < 1 {
		panic(fmt.Sprintf("fft: invalid batch layout howmany=%d istride=%d ostride=%d", howmany, istride, ostride))
	}
	return &Batch{
		p:       NewPlan(n),
		howmany: howmany,
		istride: istride, idist: idist,
		ostride: ostride, odist: odist,
		in:  pool.GetComplex(n),
		out: pool.GetComplex(n),
	}
}

// Release returns the batch's scratch (and its plan's) to the process
// buffer arena. The batch must not be used afterwards.
func (b *Batch) Release() {
	b.p.Release()
	pool.PutComplex(b.in)
	pool.PutComplex(b.out)
	b.in, b.out = nil, nil
}

// NewContiguousBatch is shorthand for howmany back-to-back unit-stride
// transforms.
func NewContiguousBatch(n, howmany int) *Batch {
	return NewBatch(n, howmany, 1, n, 1, n)
}

// Len reports the transform length.
func (b *Batch) Len() int { return b.p.Len() }

// HowMany reports the number of transforms per execution.
func (b *Batch) HowMany() int { return b.howmany }

// Forward runs all forward transforms. dst and src may alias.
func (b *Batch) Forward(dst, src []complex128) { b.exec(dst, src, Forward) }

// Inverse runs all inverse transforms (each scaled by 1/n).
func (b *Batch) Inverse(dst, src []complex128) { b.exec(dst, src, Inverse) }

func (b *Batch) exec(dst, src []complex128, dir Direction) {
	n := b.p.Len()
	for t := 0; t < b.howmany; t++ {
		ibase := t * b.idist
		for j := 0; j < n; j++ {
			b.in[j] = src[ibase+j*b.istride]
		}
		b.p.run(b.out, b.in, dir)
		obase := t * b.odist
		for k := 0; k < n; k++ {
			dst[obase+k*b.ostride] = b.out[k]
		}
	}
}

// RealBatch is the real-to-complex analogue of Batch: howmany length-n
// real transforms with strided layouts. Strides attach to the data
// domain, not the call direction: (rstride, rdist) address the real
// sequences and (cstride, cdist) the half-spectra, in both Forward and
// Inverse, so one plan serves the DNS's r2c and c2r x-transforms.
type RealBatch struct {
	p              *RealPlan
	howmany        int
	rstride, rdist int
	cstride, cdist int
	rbuf           []float64
	cbuf           []complex128
}

// NewRealBatch creates a batched real-transform plan.
func NewRealBatch(n, howmany, rstride, rdist, cstride, cdist int) *RealBatch {
	if howmany < 0 || rstride < 1 || cstride < 1 {
		panic(fmt.Sprintf("fft: invalid real batch layout howmany=%d rstride=%d cstride=%d", howmany, rstride, cstride))
	}
	return &RealBatch{
		p:       NewRealPlan(n),
		howmany: howmany,
		rstride: rstride, rdist: rdist,
		cstride: cstride, cdist: cdist,
		rbuf: pool.GetFloat(n),
		cbuf: pool.GetComplex(n/2 + 1),
	}
}

// Release returns the batch's scratch (and its plan's) to the process
// buffer arena. The batch must not be used afterwards.
func (b *RealBatch) Release() {
	b.p.Release()
	pool.PutFloat(b.rbuf)
	pool.PutComplex(b.cbuf)
	b.rbuf, b.cbuf = nil, nil
}

// Forward transforms howmany real sequences from src into half-spectra
// in dst.
func (b *RealBatch) Forward(dst []complex128, src []float64) {
	n, h := b.p.Len(), b.p.HalfLen()
	for t := 0; t < b.howmany; t++ {
		rbase := t * b.rdist
		for j := 0; j < n; j++ {
			b.rbuf[j] = src[rbase+j*b.rstride]
		}
		b.p.Forward(b.cbuf, b.rbuf)
		cbase := t * b.cdist
		for k := 0; k < h; k++ {
			dst[cbase+k*b.cstride] = b.cbuf[k]
		}
	}
}

// Inverse transforms howmany half-spectra from src into real sequences
// in dst (each scaled by 1/n).
func (b *RealBatch) Inverse(dst []float64, src []complex128) {
	n, h := b.p.Len(), b.p.HalfLen()
	for t := 0; t < b.howmany; t++ {
		cbase := t * b.cdist
		for k := 0; k < h; k++ {
			b.cbuf[k] = src[cbase+k*b.cstride]
		}
		b.p.Inverse(b.rbuf, b.cbuf)
		rbase := t * b.rdist
		for j := 0; j < n; j++ {
			dst[rbase+j*b.rstride] = b.rbuf[j]
		}
	}
}
