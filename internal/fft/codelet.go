package fft

// Small-radix base-case codelets. The recursion's leaves dominate the
// short line transforms of the DNS (a 64³ grid runs thousands of
// length-64 y/z lines per slab, each decomposing into sixteen length-4
// leaves): without codelets every leaf costs r recursive calls into
// the n==1 base case plus a combine pass with twiddle-table lookups
// whose exponents are all trivial (W⁰=1, W_4=−i, W_8=√2/2·(1−i)).
// The codelets compute the length-2/4/8 DFTs of the strided input
// directly — no recursion, no table lookups, exact ±1/±i/√2⁄2
// arithmetic — and recurse dispatches them before looking at the
// factor list. Batched callers reach them through BatchCache → Batch →
// Plan.run → recurse, so every short y/z line in the hot loops lands
// here. Bluestein lengths never reach recurse, and any composite with
// 2 | n has factors drawn from {4, 2} ∪ odd, so n ∈ {2, 4, 8} is
// always a pure power of two here — the codelets are complete DFTs,
// not one factor's butterfly.

// dft2 is the length-2 DFT of x[0], x[s] into out[0:2]. The single
// twiddle is W⁰ = 1 in both directions.
func dft2(out, x []complex128, s int) {
	a, b := x[0], x[s]
	out[0] = a + b
	out[1] = a - b
}

// dft4 is the length-4 DFT of x[0], x[s], x[2s], x[3s] into out[0:4]:
// two length-2 even/odd halves combined with W_4 = ∓i applied as an
// exact component swap instead of a complex multiply.
func dft4(out, x []complex128, s int, dir Direction) {
	e0, e1 := x[0]+x[2*s], x[0]-x[2*s] // DFT2 of even samples
	o0, o1 := x[s]+x[3*s], x[s]-x[3*s] // DFT2 of odd samples
	var jo complex128                  // W_4¹·o1 = ∓i·o1
	if dir == Forward {
		jo = complex(imag(o1), -real(o1))
	} else {
		jo = complex(-imag(o1), real(o1))
	}
	out[0] = e0 + o0
	out[1] = e1 + jo
	out[2] = e0 - o0
	out[3] = e1 - jo
}

// sqrt1_2 is √2/2, the real (and negated imaginary) part of W_8.
const sqrt1_2 = 0.70710678118654752440

// dft8 is the length-8 DFT of x[0], x[s], … x[7s] into out[0:8]: two
// length-4 even/odd codelets combined radix-2 with the exact eighth
// roots W_8^k ∈ {1, √2/2·(1∓i), ∓i, −√2/2·(1±i)}.
func dft8(out, x []complex128, s int, dir Direction) {
	var e, o [4]complex128
	dft4(e[:], x, 2*s, dir)
	dft4(o[:], x[s:], 2*s, dir)
	sgn := 1.0
	if dir == Inverse {
		sgn = -1.0
	}
	// t_k = W_8^k · o[k]; W_8^k = exp(∓2πik/8).
	t0 := o[0]
	t1 := complex(sqrt1_2, 0) * complex(real(o[1])+sgn*imag(o[1]), imag(o[1])-sgn*real(o[1]))
	t2 := complex(sgn*imag(o[2]), -sgn*real(o[2]))
	t3 := complex(sqrt1_2, 0) * complex(sgn*imag(o[3])-real(o[3]), -sgn*real(o[3])-imag(o[3]))
	out[0] = e[0] + t0
	out[1] = e[1] + t1
	out[2] = e[2] + t2
	out[3] = e[3] + t3
	out[4] = e[0] - t0
	out[5] = e[1] - t1
	out[6] = e[2] - t2
	out[7] = e[3] - t3
}
