package fft

import (
	"math"
	"testing"
)

// Two plans of the same length must share one twiddle backing array.
func TestTwiddleTableShared(t *testing.T) {
	p1 := NewPlan(96)
	p2 := NewPlan(96)
	if &p1.w[0] != &p2.w[0] {
		t.Fatal("plans of equal length do not share the twiddle table")
	}
	p1.Release()
	p2.Release()
}

// A RealPlan's wr table is a prefix of the shared full-length table.
func TestRealPlanSharesTwiddlePrefix(t *testing.T) {
	rp := NewRealPlan(128)
	w := twiddles(128)
	if &rp.wr[0] != &w[0] {
		t.Fatal("real plan wr is not the shared table prefix")
	}
	rp.Release()
}

// Bluestein chirp tables are shared across plans of the same length.
func TestBluesteinTablesShared(t *testing.T) {
	p1 := NewPlan(67) // prime > maxDirectPrime
	p2 := NewPlan(67)
	if p1.blue == nil || p2.blue == nil {
		t.Fatal("expected Bluestein path for n=67")
	}
	if &p1.blue.w[0] != &p2.blue.w[0] || &p1.blue.fb[0] != &p2.blue.fb[0] {
		t.Fatal("Bluestein plans do not share chirp tables")
	}
	p1.Release()
	p2.Release()
}

func TestTwiddleCacheHitCounting(t *testing.T) {
	h0, _ := TwiddleCacheStats()
	p1 := NewPlan(40)
	p2 := NewPlan(40)
	h1, _ := TwiddleCacheStats()
	if h1 <= h0 {
		t.Fatalf("expected twiddle hits to grow, got %d → %d", h0, h1)
	}
	p1.Release()
	p2.Release()
}

// Transforms must stay correct after Release/re-plan cycling through
// the arena (recycled scratch is not zeroed).
func TestPlanCorrectAfterPoolCycling(t *testing.T) {
	const n = 48
	want := make([]complex128, n)
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(math.Sin(float64(3*i)), math.Cos(float64(i)))
	}
	p := NewPlan(n)
	p.Forward(want, src)
	p.Release()
	for iter := 0; iter < 4; iter++ {
		q := NewPlan(n)
		got := make([]complex128, n)
		q.Forward(got, src)
		for i := range got {
			if d := got[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("iter %d: mismatch at %d: %v vs %v", iter, i, got[i], want[i])
			}
		}
		q.Release()
	}
}
