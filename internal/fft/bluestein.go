package fft

import (
	"math"
	"math/cmplx"
)

// bluestein implements the chirp-z method for transform lengths whose
// prime factors are too large for direct butterflies. The length-n DFT
// is re-expressed as a circular convolution of length m (a power of two
// ≥ 2n−1), which is evaluated with the radix-2/4 machinery.
type bluestein struct {
	n    int
	m    int
	pm   *Plan        // power-of-two plan of length m
	w    []complex128 // w[j] = exp(−iπ·j²/n), forward chirp
	fb   []complex128 // FFT of the padded conjugate chirp
	ax   []complex128 // scratch, length m
	conv []complex128 // scratch, length m
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m}
	b.pm = NewPlan(m)
	b.w = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j² mod 2n keeps the argument small for large n.
		jj := (j * j) % (2 * n)
		b.w[j] = cmplx.Exp(complex(0, -math.Pi*float64(jj)/float64(n)))
	}
	// Padded kernel: c[j] = conj(w[j]) for |j| < n, wrapped at m.
	c := make([]complex128, m)
	for j := 0; j < n; j++ {
		c[j] = cmplx.Conj(b.w[j])
		if j > 0 {
			c[m-j] = cmplx.Conj(b.w[j])
		}
	}
	b.fb = make([]complex128, m)
	b.pm.Forward(b.fb, c)
	b.ax = make([]complex128, m)
	b.conv = make([]complex128, m)
	return b
}

// transform computes the unnormalized DFT of src into dst; the caller
// applies the 1/n factor for inverse transforms. dst and src may alias.
func (b *bluestein) transform(dst, src []complex128, dir Direction) {
	n, m := b.n, b.m
	for j := 0; j < n; j++ {
		x := src[j]
		if dir == Inverse {
			x = cmplx.Conj(x)
		}
		b.ax[j] = x * b.w[j]
	}
	for j := n; j < m; j++ {
		b.ax[j] = 0
	}
	b.pm.Forward(b.conv, b.ax)
	for j := 0; j < m; j++ {
		b.conv[j] *= b.fb[j]
	}
	b.pm.Inverse(b.ax, b.conv)
	for k := 0; k < n; k++ {
		y := b.ax[k] * b.w[k]
		if dir == Inverse {
			y = cmplx.Conj(y)
		}
		dst[k] = y
	}
}
