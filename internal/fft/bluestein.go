package fft

import (
	"math/cmplx"

	"repro/internal/pool"
)

// bluestein implements the chirp-z method for transform lengths whose
// prime factors are too large for direct butterflies. The length-n DFT
// is re-expressed as a circular convolution of length m (a power of two
// ≥ 2n−1), which is evaluated with the radix-2/4 machinery. The chirp
// and its precomputed FFT are read-only and shared across all plans of
// the same length via the package table cache; only the two scratch
// lines are per-plan.
type bluestein struct {
	n    int
	m    int
	pm   *Plan        // power-of-two plan of length m
	w    []complex128 // shared: w[j] = exp(−iπ·j²/n), forward chirp
	fb   []complex128 // shared: FFT of the padded conjugate chirp
	ax   []complex128 // scratch, length m
	conv []complex128 // scratch, length m
}

func newBluestein(n int) *bluestein {
	t := blueTablesFor(n)
	b := &bluestein{n: n, m: t.m, w: t.w, fb: t.fb}
	b.pm = NewPlan(b.m)
	b.ax = pool.GetComplex(b.m)
	b.conv = pool.GetComplex(b.m)
	return b
}

// release returns the per-plan scratch to the buffer arena; the shared
// chirp tables stay cached.
func (b *bluestein) release() {
	b.pm.Release()
	pool.PutComplex(b.ax)
	pool.PutComplex(b.conv)
	b.ax, b.conv = nil, nil
}

// transform computes the unnormalized DFT of src into dst; the caller
// applies the 1/n factor for inverse transforms. dst and src may alias.
func (b *bluestein) transform(dst, src []complex128, dir Direction) {
	n, m := b.n, b.m
	for j := 0; j < n; j++ {
		x := src[j]
		if dir == Inverse {
			x = cmplx.Conj(x)
		}
		b.ax[j] = x * b.w[j]
	}
	for j := n; j < m; j++ {
		b.ax[j] = 0
	}
	b.pm.Forward(b.conv, b.ax)
	for j := 0; j < m; j++ {
		b.conv[j] *= b.fb[j]
	}
	b.pm.Inverse(b.ax, b.conv)
	for k := 0; k < n; k++ {
		y := b.ax[k] * b.w[k]
		if dir == Inverse {
			y = cmplx.Conj(y)
		}
		dst[k] = y
	}
}
