package fft

import (
	"fmt"
	"math/cmplx"

	"repro/internal/pool"
)

// RealPlan transforms real sequences of length n to their n/2+1
// non-redundant complex Fourier coefficients and back, exploiting the
// conjugate symmetry X[n−k] = conj(X[k]) of real data — the same
// symmetry the DNS uses for its complex-to-real x-direction transforms.
type RealPlan struct {
	n    int
	half *Plan        // length n/2 complex plan (even n)
	full *Plan        // length n complex plan (odd n fallback)
	wr   []complex128 // wr[k] = exp(−2πi·k/n), k < n/2
	zs   []complex128
	zs2  []complex128
}

// NewRealPlan creates a real-transform plan for length n ≥ 1.
func NewRealPlan(n int) *RealPlan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid real length %d", n))
	}
	p := &RealPlan{n: n}
	if n == 1 || n%2 == 1 {
		p.full = NewPlan(n)
		p.zs = pool.GetComplex(n)
		p.zs2 = pool.GetComplex(n)
		return p
	}
	p.half = NewPlan(n / 2)
	// wr[k] = exp(−2πi·k/n) for k < n/2 is a prefix of the shared
	// length-n twiddle table.
	p.wr = twiddles(n)[:n/2]
	p.zs = pool.GetComplex(n / 2)
	p.zs2 = pool.GetComplex(n / 2)
	return p
}

// Release returns the plan's scratch buffers to the process buffer
// arena. The plan must not be used afterwards.
func (p *RealPlan) Release() {
	if p.full != nil {
		p.full.Release()
	}
	if p.half != nil {
		p.half.Release()
	}
	pool.PutComplex(p.zs)
	pool.PutComplex(p.zs2)
	p.zs, p.zs2 = nil, nil
}

// Len reports the real length n of the plan.
func (p *RealPlan) Len() int { return p.n }

// HalfLen reports the number of non-redundant complex outputs, n/2+1.
func (p *RealPlan) HalfLen() int { return p.n/2 + 1 }

// Forward computes the forward transform of the real sequence src
// (length n) into dst (length n/2+1), unnormalized.
func (p *RealPlan) Forward(dst []complex128, src []float64) {
	n := p.n
	if len(src) != n || len(dst) != p.HalfLen() {
		panic(fmt.Sprintf("fft: real plan n=%d, got src %d dst %d", n, len(src), len(dst)))
	}
	realTransforms.Add(1)
	if p.full != nil {
		for j, v := range src {
			p.zs[j] = complex(v, 0)
		}
		p.full.Forward(p.zs2, p.zs)
		copy(dst, p.zs2[:p.HalfLen()])
		return
	}
	h := n / 2
	for j := 0; j < h; j++ {
		p.zs[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(p.zs2, p.zs)
	z := p.zs2
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zc := cmplx.Conj(z[(h-k)%h])
		xe := (zk + zc) * 0.5
		xo := (zk - zc) * complex(0, -0.5)
		dst[k] = xe + p.wrAt(k)*xo
	}
}

// Inverse computes the inverse transform (including the 1/n factor) of
// the half-spectrum src (length n/2+1) into the real sequence dst
// (length n). The k=0 and k=n/2 inputs should have zero imaginary part;
// any residual imaginary part is ignored, matching conjugate symmetry.
func (p *RealPlan) Inverse(dst []float64, src []complex128) {
	n := p.n
	if len(dst) != n || len(src) != p.HalfLen() {
		panic(fmt.Sprintf("fft: real plan n=%d, got dst %d src %d", n, len(dst), len(src)))
	}
	realTransforms.Add(1)
	if p.full != nil {
		p.zs[0] = complex(real(src[0]), 0)
		for k := 1; k < p.HalfLen(); k++ {
			p.zs[k] = src[k]
			p.zs[n-k] = cmplx.Conj(src[k])
		}
		p.full.Inverse(p.zs2, p.zs)
		for j := range dst {
			dst[j] = real(p.zs2[j])
		}
		return
	}
	h := n / 2
	for k := 0; k < h; k++ {
		xk := src[k]
		xc := cmplx.Conj(src[h-k])
		xe := (xk + xc) * 0.5
		xo := (xk - xc) * 0.5 * cmplx.Conj(p.wrAt(k))
		p.zs[k] = xe + complex(0, 1)*xo
	}
	p.half.Inverse(p.zs2, p.zs)
	for j := 0; j < h; j++ {
		dst[2*j] = real(p.zs2[j])
		dst[2*j+1] = imag(p.zs2[j])
	}
}

func (p *RealPlan) wrAt(k int) complex128 {
	h := p.n / 2
	if k < h {
		return p.wr[k]
	}
	// k == h: exp(−iπ) = −1.
	return complex(-1, 0)
}
