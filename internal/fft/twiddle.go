package fft

import (
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"
)

// Twiddle-factor tables are pure functions of the transform length and
// read-only after construction, so every plan of a given n — across
// workers, ranks and engines — can share one table instead of
// recomputing n complex exponentials per plan. With per-worker plan
// sets (a Plan carries scratch and cannot be shared, but its twiddles
// can) this turns plan construction from O(n log n + n·exp) into a map
// lookup for every worker after the first. All strided variants index
// into the same length-n table (stride ws = N/n is applied at lookup
// time), so one entry per n covers every (n, stride) pair.
var (
	twMu     sync.RWMutex
	twTables = map[int][]complex128{}

	twiddleHits   atomic.Int64 // tables served from the shared cache
	twiddleMisses atomic.Int64 // tables computed fresh
)

// twiddles returns the shared read-only table w[j] = exp(−2πi·j/n).
// Callers must not modify the returned slice.
func twiddles(n int) []complex128 {
	twMu.RLock()
	w, ok := twTables[n]
	twMu.RUnlock()
	if ok {
		twiddleHits.Add(1)
		return w
	}
	w = make([]complex128, n)
	for j := 0; j < n; j++ {
		w[j] = cmplx.Exp(complex(0, -2*math.Pi*float64(j)/float64(n)))
	}
	twMu.Lock()
	if prev, ok := twTables[n]; ok {
		// Lost the race: keep the first table so all plans alias one
		// backing array.
		twMu.Unlock()
		twiddleHits.Add(1)
		return prev
	}
	twTables[n] = w
	twMu.Unlock()
	twiddleMisses.Add(1)
	return w
}

// blueShared is the read-only part of a Bluestein setup for one length:
// the chirp w[j] = exp(−iπ·j²/n) and the forward FFT of the padded
// conjugate chirp. Computing fb costs a full length-m transform, so
// sharing it across per-worker plans matters even more than the plain
// twiddle tables.
type blueShared struct {
	m  int
	w  []complex128
	fb []complex128
}

var (
	blueMu     sync.Mutex
	blueTables = map[int]*blueShared{}
)

// blueTablesFor returns the shared chirp tables for length n, computing
// them on first use. The returned tables are read-only.
func blueTablesFor(n int) *blueShared {
	blueMu.Lock()
	defer blueMu.Unlock()
	if t, ok := blueTables[n]; ok {
		twiddleHits.Add(1)
		return t
	}
	twiddleMisses.Add(1)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	t := &blueShared{m: m}
	t.w = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j² mod 2n keeps the argument small for large n.
		jj := (j * j) % (2 * n)
		t.w[j] = cmplx.Exp(complex(0, -math.Pi*float64(jj)/float64(n)))
	}
	// Padded kernel: c[j] = conj(w[j]) for |j| < n, wrapped at m.
	c := make([]complex128, m)
	for j := 0; j < n; j++ {
		c[j] = cmplx.Conj(t.w[j])
		if j > 0 {
			c[m-j] = cmplx.Conj(t.w[j])
		}
	}
	t.fb = make([]complex128, m)
	pm := NewPlan(m)
	pm.Forward(t.fb, c)
	pm.Release()
	blueTables[n] = t
	return t
}

// TwiddleCacheStats reports the cumulative shared-table hit/miss totals
// (plain twiddle tables plus Bluestein chirp tables).
func TwiddleCacheStats() (hit, miss int64) {
	return twiddleHits.Load(), twiddleMisses.Load()
}
