package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// The codelets must compute the exact strided DFT the recursion would:
// check them directly against the naive reference on strided input
// (with non-zero garbage between the strided samples, so any stride
// bug reads a visible wrong value), both directions. Note the raw
// codelets are unnormalized — the 1/n of Inverse is applied by run —
// so the inverse reference is the unnormalized conjugate transform.
func TestCodeletsMatchNaiveStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 8} {
		for _, s := range []int{1, 2, 3, 5} {
			x := randComplex(rng, (n-1)*s+1)
			strided := make([]complex128, n)
			for i := range strided {
				strided[i] = x[i*s]
			}
			for _, dir := range []Direction{Forward, Inverse} {
				want := naiveDFT(strided, dir)
				if dir == Inverse { // undo naiveDFT's 1/n normalization
					for i := range want {
						want[i] *= complex(float64(n), 0)
					}
				}
				out := make([]complex128, n)
				switch n {
				case 2:
					dft2(out, x, s)
				case 4:
					dft4(out, x, s, dir)
				case 8:
					dft8(out, x, s, dir)
				}
				for i := range out {
					if d := cmplx.Abs(out[i] - want[i]); d > 1e-12 {
						t.Errorf("n=%d s=%d dir=%d: out[%d] differs by %g", n, s, dir, i, d)
					}
				}
			}
		}
	}
}

// dft2 and dft4 use the same association order and exact ±1/∓i
// constants as the radix combine they replaced, so forward followed by
// unnormalized inverse must be exactly n·x for inputs whose sums stay
// exact in floating point — a bitwise regression guard on the codelet
// arithmetic.
func TestCodeletExactRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(1+i), float64(-i)) // small integers: all sums exact
		}
		fwd := make([]complex128, n)
		back := make([]complex128, n)
		switch n {
		case 2:
			dft2(fwd, x, 1)
			dft2(back, fwd, 1)
		case 4:
			dft4(fwd, x, 1, Forward)
			dft4(back, fwd, 1, Inverse)
		case 8:
			dft8(fwd, x, 1, Forward)
			dft8(back, fwd, 1, Inverse)
		}
		for i := range x {
			want := complex(float64(n), 0) * x[i]
			if n == 8 {
				// dft8's √2/2 twiddles round; exact only up to 1 ulp-ish.
				if cmplx.Abs(back[i]-want) > 1e-14*float64(n) {
					t.Errorf("n=%d: round trip differs at %d: %v vs %v", n, i, back[i], want)
				}
				continue
			}
			if back[i] != want {
				t.Errorf("n=%d: round trip not exact at %d: %v vs %v", n, i, back[i], want)
			}
		}
	}
}

func BenchmarkPlanPow2(b *testing.B) {
	for _, n := range []int{8, 64, 128} {
		p := NewPlan(n)
		x := make([]complex128, n)
		out := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%7), float64(i%5))
		}
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Forward(out, x)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
