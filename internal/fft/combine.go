package fft

// The combine* functions implement the decimation-in-time butterfly for
// one recursion level. On entry out holds the r sub-transforms F_q in
// blocks of length m (F_q[k1] at out[q·m+k1]); on exit out holds the
// combined length-(r·m) transform, with X[k1+m·k2] stored in place of
// the gathered positions {k1+m·q}. For a fixed k1 the read set and the
// write set are the same r positions, so a small gather buffer suffices.

func (p *Plan) combine2(out []complex128, m, ws int, dir Direction) {
	for k1 := 0; k1 < m; k1++ {
		a := out[k1]
		b := out[m+k1] * p.tw(k1*ws, dir)
		out[k1] = a + b
		out[m+k1] = a - b
	}
}

func (p *Plan) combine3(out []complex128, m, ws int, dir Direction) {
	// W_3 = exp(−2πi/3) = −1/2 − i·√3/2 (conjugated for inverse).
	const s3 = 0.86602540378443864676
	im := s3
	if dir == Inverse {
		im = -s3
	}
	for k1 := 0; k1 < m; k1++ {
		a := out[k1]
		b := out[m+k1] * p.tw(k1*ws, dir)
		c := out[2*m+k1] * p.tw(2*k1*ws, dir)
		sum := b + c
		diff := b - c
		out[k1] = a + sum
		// a + W3·b + W3²·c and a + W3²·b + W3·c
		re := a - complex(0.5, 0)*sum
		rot := complex(0, -im) * diff
		out[m+k1] = re + rot
		out[2*m+k1] = re - rot
	}
}

func (p *Plan) combine4(out []complex128, m, ws int, dir Direction) {
	for k1 := 0; k1 < m; k1++ {
		a := out[k1]
		b := out[m+k1] * p.tw(k1*ws, dir)
		c := out[2*m+k1] * p.tw(2*k1*ws, dir)
		d := out[3*m+k1] * p.tw(3*k1*ws, dir)
		apc := a + c
		amc := a - c
		bpd := b + d
		bmd := b - d
		// W_4 = −i forward, +i inverse.
		var jb complex128
		if dir == Forward {
			jb = complex(imag(bmd), -real(bmd)) // −i·(b−d)
		} else {
			jb = complex(-imag(bmd), real(bmd)) // +i·(b−d)
		}
		out[k1] = apc + bpd
		out[m+k1] = amc + jb
		out[2*m+k1] = apc - bpd
		out[3*m+k1] = amc - jb
	}
}

func (p *Plan) combine5(out []complex128, m, ws int, dir Direction) {
	// Direct 5-point butterfly using W_5 powers from the global table:
	// W_5 = W_n^{m·ws·…}; equivalently use precomputed constants.
	const (
		c1 = 0.30901699437494742410 // cos(2π/5)
		s1 = 0.95105651629515357212 // sin(2π/5)
		c2 = -0.80901699437494742410
		s2 = 0.58778525229247312917
	)
	sgn := 1.0
	if dir == Inverse {
		sgn = -1.0
	}
	for k1 := 0; k1 < m; k1++ {
		a := out[k1]
		t1 := out[m+k1] * p.tw(k1*ws, dir)
		t2 := out[2*m+k1] * p.tw(2*k1*ws, dir)
		t3 := out[3*m+k1] * p.tw(3*k1*ws, dir)
		t4 := out[4*m+k1] * p.tw(4*k1*ws, dir)
		s14 := t1 + t4
		d14 := t1 - t4
		s23 := t2 + t3
		d23 := t2 - t3
		out[k1] = a + s14 + s23
		for idx, cs := range [...][4]float64{
			{c1, s1, c2, s2}, // k2 = 1
			{c2, s2, c1, -s1},
			{c2, -s2, c1, s1},
			{c1, -s1, c2, -s2},
		} {
			re := a + complex(cs[0], 0)*s14 + complex(cs[2], 0)*s23
			im := complex(0, -sgn*cs[1])*d14 + complex(0, -sgn*cs[3])*d23
			out[(idx+1)*m+k1] = re + im
		}
	}
}

// combineGeneric handles any small prime radix with an O(r²) butterfly
// using the plan's preallocated gather buffer (safe: recursion within
// one transform is strictly sequential).
func (p *Plan) combineGeneric(out []complex128, r, m, ws int, dir Direction) {
	t := p.gen[:r]
	for k1 := 0; k1 < m; k1++ {
		for q := 0; q < r; q++ {
			t[q] = out[q*m+k1] * p.tw(q*k1*ws, dir)
		}
		for k2 := 0; k2 < r; k2++ {
			acc := t[0]
			for q := 1; q < r; q++ {
				// W_r^{q·k2} = W_n^{m·q·k2} = W_N^{ws·m·q·k2}.
				acc += t[q] * p.tw(ws*m*q*k2, dir)
			}
			out[k2*m+k1] = acc
		}
	}
}
