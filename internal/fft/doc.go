// Package fft provides from-scratch fast Fourier transforms used by the
// pseudo-spectral DNS code: complex-to-complex transforms of any length
// (mixed radix 2/3/5/7, generic prime butterflies, and Bluestein's
// algorithm for lengths with large prime factors), real-to-complex and
// complex-to-real transforms exploiting conjugate symmetry, and batched
// strided plans mirroring the plan semantics of cuFFT that the paper's
// GPU kernels rely on.
//
// Conventions: the forward transform computes
//
//	X[k] = Σ_j x[j]·exp(−2πi·jk/n)
//
// and is unnormalized; the inverse transform includes the 1/n factor so
// that Inverse(Forward(x)) == x.
package fft
