package fft

import (
	"fmt"
	"math/cmplx"

	"repro/internal/pool"
)

// Direction selects the sign of the transform exponent.
type Direction int

const (
	// Forward computes X[k] = Σ x[j]·exp(−2πi·jk/n), unnormalized.
	Forward Direction = -1
	// Inverse computes x[j] = (1/n)·Σ X[k]·exp(+2πi·jk/n).
	Inverse Direction = +1
)

// maxDirectPrime is the largest prime factor handled by the direct
// O(r²) butterfly; larger primes fall back to Bluestein's algorithm.
const maxDirectPrime = 61

// Plan holds precomputed twiddle factors and the factorization of a
// fixed transform length. A Plan carries internal scratch, so a single
// Plan must not be used concurrently; allocate one Plan per goroutine
// (as the per-worker plan maps in pfft and core do).
type Plan struct {
	n         int
	factors   []int
	w         []complex128 // w[j] = exp(−2πi·j/n)
	blue      *bluestein   // non-nil when a prime factor exceeds maxDirectPrime
	scratch   []complex128
	scratch2  []complex128
	gen       []complex128 // generic-radix butterfly gather buffer
	needsBlue bool
}

// NewPlan creates a plan for complex transforms of length n (n ≥ 1).
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	plansCreated.Add(1)
	p := &Plan{n: n}
	p.factors = factorize(n)
	for _, f := range p.factors {
		if f > maxDirectPrime {
			p.needsBlue = true
		}
	}
	if p.needsBlue {
		p.blue = newBluestein(n)
		return p
	}
	p.w = twiddles(n)
	p.scratch = pool.GetComplex(n)
	p.scratch2 = pool.GetComplex(n)
	maxF := 0
	for _, f := range p.factors {
		if f > maxF {
			maxF = f
		}
	}
	p.gen = pool.GetComplex(maxF)
	return p
}

// Release returns the plan's scratch buffers to the process buffer
// arena. The plan must not be used afterwards. Twiddle tables are
// shared and stay cached.
func (p *Plan) Release() {
	if p.blue != nil {
		p.blue.release()
		p.blue = nil
	}
	pool.PutComplex(p.scratch)
	pool.PutComplex(p.scratch2)
	pool.PutComplex(p.gen)
	p.scratch, p.scratch2, p.gen = nil, nil, nil
}

// Len reports the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward computes the forward DFT of src into dst. dst and src must
// each have length n and may alias.
func (p *Plan) Forward(dst, src []complex128) { p.run(dst, src, Forward) }

// Inverse computes the inverse DFT (including the 1/n factor) of src
// into dst. dst and src must each have length n and may alias.
func (p *Plan) Inverse(dst, src []complex128) { p.run(dst, src, Inverse) }

func (p *Plan) run(dst, src []complex128, dir Direction) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
	transforms.Add(1)
	if p.n == 1 {
		dst[0] = src[0]
		return
	}
	if p.needsBlue {
		p.blue.transform(dst, src, dir)
		if dir == Inverse {
			scale(dst, 1/float64(p.n))
		}
		return
	}
	// Work out-of-place into scratch to permit aliasing, then copy.
	work := p.scratch
	copy(p.scratch2, src)
	p.recurse(work, p.scratch2, p.n, 1, dir, p.factors)
	copy(dst, work)
	if dir == Inverse {
		scale(dst, 1/float64(p.n))
	}
}

// recurse computes the length-n DFT of x[0], x[s], … x[(n−1)·s] into
// out[0:n] by decimation in time over the remaining factors. Short
// power-of-two lengths dispatch to the direct codelets (codelet.go)
// before factor decomposition: at those lengths the remaining factors
// are exactly {4}, {4,2} or {2}, so the codelet computes the same DFT
// without the per-leaf recursion and twiddle-table traffic.
func (p *Plan) recurse(out, x []complex128, n, s int, dir Direction, factors []int) {
	switch n {
	case 1:
		out[0] = x[0]
		return
	case 2:
		dft2(out, x, s)
		return
	case 4:
		dft4(out, x, s, dir)
		return
	case 8:
		dft8(out, x, s, dir)
		return
	}
	r := factors[0]
	m := n / r
	// Sub-transforms: F_q = DFT of x[q·s], x[q·s+r·s], … (length m).
	for q := 0; q < r; q++ {
		p.recurse(out[q*m:(q+1)*m], x[q*s:], m, s*r, dir, factors[1:])
	}
	// Combine: X[k1 + m·k2] = Σ_q W_n^{q·k1}·W_r^{q·k2}·F_q[k1].
	// Twiddle stride into the global table: ws = N/n.
	ws := p.n / n
	switch r {
	case 2:
		p.combine2(out, m, ws, dir)
	case 3:
		p.combine3(out, m, ws, dir)
	case 4:
		p.combine4(out, m, ws, dir)
	case 5:
		p.combine5(out, m, ws, dir)
	default:
		p.combineGeneric(out, r, m, ws, dir)
	}
}

// tw returns W_n^j for the plan-global table with the requested
// direction (conjugated for inverse transforms).
func (p *Plan) tw(idx int, dir Direction) complex128 {
	w := p.w[idx%p.n]
	if dir == Inverse {
		return cmplx.Conj(w)
	}
	return w
}

func scale(v []complex128, a float64) {
	c := complex(a, 0)
	for i := range v {
		v[i] *= c
	}
}

// factorize returns the prime factorization of n in ascending order,
// with factors of 4 preferred over pairs of 2 for the radix-4 butterfly.
func factorize(n int) []int {
	var fs []int
	for n%4 == 0 {
		fs = append(fs, 4)
		n /= 4
	}
	for n%2 == 0 {
		fs = append(fs, 2)
		n /= 2
	}
	for f := 3; f*f <= n; f += 2 {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
