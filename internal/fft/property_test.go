package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Forward and Inverse are mutual inverses for arbitrary
// lengths (including Bluestein territory) and arbitrary data.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		p := NewPlan(n)
		x := randComplex(rng, n)
		y := make([]complex128, n)
		p.Forward(y, x)
		p.Inverse(y, y)
		return maxAbsDiff(y, x) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the shift theorem — a circular shift by s multiplies bin k
// by exp(−2πi·ks/n).
func TestShiftTheoremProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		s := rng.Intn(n)
		p := NewPlan(n)
		x := randComplex(rng, n)
		shifted := make([]complex128, n)
		for j := range shifted {
			shifted[j] = x[(j+s)%n]
		}
		fx := make([]complex128, n)
		fs := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fs, shifted)
		for k := 0; k < n; k++ {
			ph := cmplx.Exp(complex(0, 2*math.Pi*float64(k*s)/float64(n)))
			if cmplx.Abs(fs[k]-fx[k]*ph) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: convolution theorem — pointwise product of spectra equals
// the spectrum of the circular convolution.
func TestConvolutionTheoremProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		p := NewPlan(n)
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		conv := make([]complex128, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				conv[k] += x[j] * y[(k-j+n)%n]
			}
		}
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		fc := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fc, conv)
		for k := 0; k < n; k++ {
			if cmplx.Abs(fc[k]-fx[k]*fy[k]) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: real-plan output satisfies conjugate symmetry implicitly —
// reconstructing the full spectrum and inverse-transforming through
// the complex plan reproduces the real signal.
func TestRealPlanConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (1 + rng.Intn(40))
		rp := NewRealPlan(n)
		cp := NewPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		half := make([]complex128, rp.HalfLen())
		rp.Forward(half, x)
		full := make([]complex128, n)
		full[0] = half[0]
		for k := 1; k < rp.HalfLen(); k++ {
			full[k] = half[k]
			if k != n/2 {
				full[n-k] = cmplx.Conj(half[k])
			}
		}
		back := make([]complex128, n)
		cp.Inverse(back, full)
		for i := range x {
			if math.Abs(real(back[i])-x[i]) > 1e-9 || math.Abs(imag(back[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: batch execution with arbitrary valid strides equals
// transform-by-transform execution.
func TestBatchEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		hm := 1 + rng.Intn(5)
		// Interleaved layout: stride hm, dist 1.
		src := randComplex(rng, n*hm)
		b := NewBatch(n, hm, hm, 1, hm, 1)
		dst := make([]complex128, n*hm)
		b.Forward(dst, src)
		p := NewPlan(n)
		one := make([]complex128, n)
		out := make([]complex128, n)
		for tIdx := 0; tIdx < hm; tIdx++ {
			for j := 0; j < n; j++ {
				one[j] = src[tIdx+j*hm]
			}
			p.Forward(out, one)
			for k := 0; k < n; k++ {
				if cmplx.Abs(dst[tIdx+k*hm]-out[k]) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
