package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, dir Direction) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := 2 * math.Pi * float64(j) * float64(k) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, float64(dir)*ang))
		}
		out[k] = acc
	}
	if dir == Inverse {
		for k := range out {
			out[k] /= complex(float64(n), 0)
		}
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

var testLengths = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 17, 20, 24, 25, 27, 30, 32, 36, 45, 48, 49, 59, 60, 64, 67, 81, 96, 100, 101, 121, 125, 127, 128, 144, 169, 180, 210, 240, 243, 256, 360, 384}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testLengths {
		p := NewPlan(n)
		x := randComplex(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x, Forward)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("n=%d: forward max diff %g > %g", n, d, tol)
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testLengths {
		p := NewPlan(n)
		x := randComplex(rng, n)
		got := make([]complex128, n)
		p.Inverse(got, x)
		want := naiveDFT(x, Inverse)
		tol := 1e-9 * float64(n)
		if d := maxAbsDiff(got, want); d > tol {
			t.Errorf("n=%d: inverse max diff %g > %g", n, d, tol)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testLengths {
		p := NewPlan(n)
		x := randComplex(rng, n)
		y := make([]complex128, n)
		p.Forward(y, x)
		p.Inverse(y, y) // also exercises aliasing
		if d := maxAbsDiff(y, x); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip max diff %g", n, d)
		}
	}
}

func TestForwardAliasedInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 12, 30, 67} {
		p := NewPlan(n)
		x := randComplex(rng, n)
		want := naiveDFT(x, Forward)
		p.Forward(x, x)
		if d := maxAbsDiff(x, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: in-place forward max diff %g", n, d)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	p := NewPlan(24)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, 24)
		y := randComplex(r, 24)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, 24)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx := make([]complex128, 24)
		fy := make([]complex128, 24)
		fs := make([]complex128, 24)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fs, sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(a*fx[i]+fy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	for _, n := range []int{16, 30, 67, 128} {
		p := NewPlan(n)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			x := randComplex(r, n)
			y := make([]complex128, n)
			p.Forward(y, x)
			var ex, ey float64
			for i := range x {
				ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
				ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
			}
			return math.Abs(ey/float64(n)-ex) < 1e-8*ex
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestDeltaImpulseIsFlat(t *testing.T) {
	for _, n := range []int{4, 9, 25, 31, 67} {
		p := NewPlan(n)
		x := make([]complex128, n)
		x[0] = 1
		y := make([]complex128, n)
		p.Forward(y, x)
		for k := range y {
			if cmplx.Abs(y[k]-1) > 1e-10 {
				t.Errorf("n=%d k=%d: delta transform %v != 1", n, k, y[k])
			}
		}
	}
}

func TestSingleModeSpectrum(t *testing.T) {
	n := 32
	p := NewPlan(n)
	for mode := 0; mode < n; mode += 5 {
		x := make([]complex128, n)
		for j := range x {
			x[j] = cmplx.Exp(complex(0, 2*math.Pi*float64(mode*j)/float64(n)))
		}
		y := make([]complex128, n)
		p.Forward(y, x)
		for k := range y {
			want := complex128(0)
			if k == mode {
				want = complex(float64(n), 0)
			}
			if cmplx.Abs(y[k]-want) > 1e-9 {
				t.Errorf("mode %d k %d: got %v want %v", mode, k, y[k], want)
			}
		}
	}
}

func TestRealPlanMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 9, 15, 16, 17, 32, 48, 60, 64, 81, 100, 128} {
		rp := NewRealPlan(n)
		x := make([]float64, n)
		xc := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			xc[i] = complex(x[i], 0)
		}
		want := naiveDFT(xc, Forward)
		got := make([]complex128, rp.HalfLen())
		rp.Forward(got, x)
		for k := 0; k < rp.HalfLen(); k++ {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Errorf("n=%d k=%d: got %v want %v", n, k, got[k], want[k])
			}
		}
		back := make([]float64, n)
		rp.Inverse(back, got)
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-10*float64(n) {
				t.Errorf("n=%d i=%d: inverse %g want %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestRealPlanConjugateSymmetryHandling(t *testing.T) {
	// Nyquist and DC bins carry only real information for even n; the
	// inverse must reproduce reality of the signal regardless.
	n := 16
	rp := NewRealPlan(n)
	spec := make([]complex128, rp.HalfLen())
	spec[0] = 3
	spec[n/2] = -2
	spec[3] = complex(1, -0.5)
	x := make([]float64, n)
	rp.Inverse(x, spec)
	back := make([]complex128, rp.HalfLen())
	rp.Forward(back, x)
	for k := range spec {
		if cmplx.Abs(back[k]-spec[k]) > 1e-10 {
			t.Errorf("k=%d: got %v want %v", k, back[k], spec[k])
		}
	}
}

func TestBatchStridedLayouts(t *testing.T) {
	// Transform along the "y" axis of an nx×ny row-major array
	// (x fastest), the exact layout of the DNS y-direction FFTs.
	nx, ny := 6, 8
	rng := rand.New(rand.NewSource(7))
	src := randComplex(rng, nx*ny)
	b := NewBatch(ny, nx, nx, 1, nx, 1)
	dst := make([]complex128, nx*ny)
	b.Forward(dst, src)
	for i := 0; i < nx; i++ {
		col := make([]complex128, ny)
		for j := 0; j < ny; j++ {
			col[j] = src[j*nx+i]
		}
		want := naiveDFT(col, Forward)
		for j := 0; j < ny; j++ {
			if cmplx.Abs(dst[j*nx+i]-want[j]) > 1e-9 {
				t.Fatalf("col %d row %d mismatch", i, j)
			}
		}
	}
	// Round trip through the batch inverse.
	back := make([]complex128, nx*ny)
	b.Inverse(back, dst)
	if d := maxAbsDiff(back, src); d > 1e-10 {
		t.Errorf("batch round trip diff %g", d)
	}
}

func TestBatchContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, hm := 12, 5
	b := NewContiguousBatch(n, hm)
	if b.Len() != n || b.HowMany() != hm {
		t.Fatalf("batch metadata wrong: %d %d", b.Len(), b.HowMany())
	}
	src := randComplex(rng, n*hm)
	dst := make([]complex128, n*hm)
	b.Forward(dst, src)
	for tI := 0; tI < hm; tI++ {
		want := naiveDFT(src[tI*n:(tI+1)*n], Forward)
		if d := maxAbsDiff(dst[tI*n:(tI+1)*n], want); d > 1e-9 {
			t.Errorf("batch %d diff %g", tI, d)
		}
	}
}

func TestRealBatchStrided(t *testing.T) {
	nx, ny := 4, 10 // transform length ny along strided axis
	rng := rand.New(rand.NewSource(9))
	src := make([]float64, nx*ny)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	rb := NewRealBatch(ny, nx, nx, 1, nx, 1)
	h := ny/2 + 1
	dst := make([]complex128, nx*h)
	rb.Forward(dst, src)
	rp := NewRealPlan(ny)
	for i := 0; i < nx; i++ {
		col := make([]float64, ny)
		for j := 0; j < ny; j++ {
			col[j] = src[j*nx+i]
		}
		want := make([]complex128, h)
		rp.Forward(want, col)
		for k := 0; k < h; k++ {
			if cmplx.Abs(dst[k*nx+i]-want[k]) > 1e-9 {
				t.Fatalf("real batch col %d bin %d mismatch", i, k)
			}
		}
	}
	back := make([]float64, nx*ny)
	rb.Inverse(back, dst)
	for i := range back {
		if math.Abs(back[i]-src[i]) > 1e-10 {
			t.Fatalf("real batch round trip i=%d", i)
		}
	}
}

func TestPlan2DMatchesNaive(t *testing.T) {
	n0, n1 := 4, 6
	rng := rand.New(rand.NewSource(10))
	src := randComplex(rng, n0*n1)
	p := NewPlan2D(n0, n1)
	got := make([]complex128, n0*n1)
	p.Forward(got, src)
	// Naive 2D DFT.
	want := make([]complex128, n0*n1)
	for k1 := 0; k1 < n1; k1++ {
		for k0 := 0; k0 < n0; k0++ {
			var acc complex128
			for j1 := 0; j1 < n1; j1++ {
				for j0 := 0; j0 < n0; j0++ {
					ang := 2 * math.Pi * (float64(j0*k0)/float64(n0) + float64(j1*k1)/float64(n1))
					acc += src[j1*n0+j0] * cmplx.Exp(complex(0, -ang))
				}
			}
			want[k1*n0+k0] = acc
		}
	}
	if d := maxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("2D forward diff %g", d)
	}
	back := make([]complex128, n0*n1)
	p.Inverse(back, got)
	if d := maxAbsDiff(back, src); d > 1e-10 {
		t.Errorf("2D round trip diff %g", d)
	}
}

func TestPlan3DRoundTripAndMode(t *testing.T) {
	n0, n1, n2 := 4, 3, 5
	p := NewPlan3D(n0, n1, n2)
	rng := rand.New(rand.NewSource(11))
	src := randComplex(rng, n0*n1*n2)
	fw := make([]complex128, len(src))
	p.Forward(fw, src)
	back := make([]complex128, len(src))
	p.Inverse(back, fw)
	if d := maxAbsDiff(back, src); d > 1e-10 {
		t.Errorf("3D round trip diff %g", d)
	}
	// A single plane wave lands in a single bin.
	m0, m1, m2 := 1, 2, 3
	for j2 := 0; j2 < n2; j2++ {
		for j1 := 0; j1 < n1; j1++ {
			for j0 := 0; j0 < n0; j0++ {
				ang := 2 * math.Pi * (float64(m0*j0)/float64(n0) + float64(m1*j1)/float64(n1) + float64(m2*j2)/float64(n2))
				src[(j2*n1+j1)*n0+j0] = cmplx.Exp(complex(0, ang))
			}
		}
	}
	p.Forward(fw, src)
	total := float64(n0 * n1 * n2)
	for idx, v := range fw {
		want := complex128(0)
		if idx == (m2*n1+m1)*n0+m0 {
			want = complex(total, 0)
		}
		if cmplx.Abs(v-want) > 1e-9*total {
			t.Errorf("3D bin %d: got %v want %v", idx, v, want)
		}
	}
}

func TestFactorize(t *testing.T) {
	cases := map[int][]int{
		1:   nil,
		2:   {2},
		8:   {4, 2},
		12:  {4, 3},
		30:  {2, 3, 5},
		49:  {7, 7},
		360: {4, 2, 3, 3, 5},
		67:  {67},
	}
	for n, want := range cases {
		got := factorize(n)
		if len(got) != len(want) {
			t.Errorf("factorize(%d) = %v want %v", n, got, want)
			continue
		}
		prod := 1
		for i, f := range got {
			prod *= f
			if f != want[i] {
				t.Errorf("factorize(%d) = %v want %v", n, got, want)
			}
		}
		if n > 1 && prod != n {
			t.Errorf("factorize(%d) product %d", n, prod)
		}
	}
}

func TestBluesteinSelectedForLargePrimes(t *testing.T) {
	if NewPlan(67).blue == nil {
		t.Error("n=67 should use Bluestein")
	}
	if NewPlan(64).blue != nil {
		t.Error("n=64 should not use Bluestein")
	}
	if NewPlan(59).blue != nil {
		t.Error("n=59 is within direct butterfly range")
	}
}

func TestPlanPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewPlan(0)
}

func TestPlanPanicsOnWrongSliceLength(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short slice")
		}
	}()
	p.Forward(make([]complex128, 4), make([]complex128, 8))
}
