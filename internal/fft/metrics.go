package fft

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Package-level instrumentation. The fft package sits under every
// layer of the stack and its plans are owned by individual worker
// goroutines, so rather than threading a registry into each plan, hot
// counts accumulate into package atomics (an atomic add is noise next
// to even the smallest transform) and PublishMetrics copies the totals
// into a registry at reporting time.
var (
	plansCreated   atomic.Int64 // NewPlan calls (complex twiddle/factorization setup)
	transforms     atomic.Int64 // complex plan executions (Forward+Inverse)
	realTransforms atomic.Int64 // real-to-complex / complex-to-real executions
	cacheHits      atomic.Int64 // BatchCache lookups served from the cache
	cacheMisses    atomic.Int64 // BatchCache lookups that built a new plan
)

// PublishMetrics copies the package-level totals into reg as plain
// counters. Call it once per reporting interval (e.g. before taking a
// snapshot); repeated calls overwrite, so totals stay cumulative.
func PublishMetrics(reg *metrics.Registry) {
	reg.Counter("fft.plans.created").Store(plansCreated.Load())
	reg.Counter("fft.transforms").Store(transforms.Load())
	reg.Counter("fft.real.transforms").Store(realTransforms.Load())
	reg.Counter("fft.plancache.hits").Store(cacheHits.Load())
	reg.Counter("fft.plancache.misses").Store(cacheMisses.Load())
	reg.Counter("fft.twiddle.hits").Store(twiddleHits.Load())
	reg.Counter("fft.twiddle.misses").Store(twiddleMisses.Load())
}

// batchKey identifies one advanced-layout batch configuration; for
// real batches the stride fields carry (rstride, rdist, cstride,
// cdist).
type batchKey struct {
	n, howmany     int
	istride, idist int
	ostride, odist int
}

// BatchCache memoizes batched plans by their full layout, replacing
// the ad-hoc per-width plan maps that pipeline code otherwise keeps by
// hand. Like a Plan, a cache is owned by one goroutine at a time (the
// cached plans carry scratch), so it is deliberately not
// concurrency-safe: allocate one per worker. Hits and misses feed
// fft.plancache.* so plan-reuse efficiency is observable.
type BatchCache struct {
	batches map[batchKey]*Batch
	reals   map[batchKey]*RealBatch
}

// NewBatchCache creates an empty plan cache.
func NewBatchCache() *BatchCache {
	return &BatchCache{
		batches: map[batchKey]*Batch{},
		reals:   map[batchKey]*RealBatch{},
	}
}

// Batch returns the cached batch plan for the given layout, creating
// it on first use.
func (bc *BatchCache) Batch(n, howmany, istride, idist, ostride, odist int) *Batch {
	k := batchKey{n, howmany, istride, idist, ostride, odist}
	if b := bc.batches[k]; b != nil {
		cacheHits.Add(1)
		return b
	}
	cacheMisses.Add(1)
	b := NewBatch(n, howmany, istride, idist, ostride, odist)
	bc.batches[k] = b
	return b
}

// ContiguousBatch returns the cached batch of howmany back-to-back
// unit-stride length-n transforms.
func (bc *BatchCache) ContiguousBatch(n, howmany int) *Batch {
	return bc.Batch(n, howmany, 1, n, 1, n)
}

// RealBatch returns the cached real batch plan for the given layout,
// creating it on first use.
func (bc *BatchCache) RealBatch(n, howmany, rstride, rdist, cstride, cdist int) *RealBatch {
	k := batchKey{n, howmany, rstride, rdist, cstride, cdist}
	if b := bc.reals[k]; b != nil {
		cacheHits.Add(1)
		return b
	}
	cacheMisses.Add(1)
	b := NewRealBatch(n, howmany, rstride, rdist, cstride, cdist)
	bc.reals[k] = b
	return b
}

// Release returns every cached plan's scratch to the buffer arena and
// empties the cache. The cache itself remains usable (plans rebuild on
// next lookup).
func (bc *BatchCache) Release() {
	for k, b := range bc.batches {
		b.Release()
		delete(bc.batches, k)
	}
	for k, b := range bc.reals {
		b.Release()
		delete(bc.reals, k)
	}
}
