package fft

import "fmt"

// Plan2D transforms contiguous row-major n1×n0 complex arrays (n0 is
// the fastest-varying dimension) along both axes. It exists for
// single-process validation of the distributed transforms.
type Plan2D struct {
	n0, n1 int
	rows   *Batch
	cols   *Batch
}

// NewPlan2D creates a 2D plan for arrays indexed a[i1*n0+i0].
func NewPlan2D(n0, n1 int) *Plan2D {
	return &Plan2D{
		n0:   n0,
		n1:   n1,
		rows: NewBatch(n0, n1, 1, n0, 1, n0),
		cols: NewBatch(n1, n0, n0, 1, n0, 1),
	}
}

// Forward computes the 2D forward DFT of src into dst (may alias).
func (p *Plan2D) Forward(dst, src []complex128) {
	p.check(dst, src)
	p.rows.Forward(dst, src)
	p.cols.Forward(dst, dst)
}

// Inverse computes the 2D inverse DFT (scaled by 1/(n0·n1)).
func (p *Plan2D) Inverse(dst, src []complex128) {
	p.check(dst, src)
	p.rows.Inverse(dst, src)
	p.cols.Inverse(dst, dst)
}

func (p *Plan2D) check(dst, src []complex128) {
	if len(dst) != p.n0*p.n1 || len(src) != p.n0*p.n1 {
		panic(fmt.Sprintf("fft: 2D plan %dx%d, got dst %d src %d", p.n0, p.n1, len(dst), len(src)))
	}
}

// Plan3D transforms contiguous row-major n2×n1×n0 complex arrays along
// all three axes; the reference implementation the distributed slab and
// pencil FFTs are tested against.
type Plan3D struct {
	n0, n1, n2    int
	ax0, ax1, ax2 *Batch
}

// NewPlan3D creates a 3D plan for arrays indexed a[(i2*n1+i1)*n0+i0].
func NewPlan3D(n0, n1, n2 int) *Plan3D {
	return &Plan3D{
		n0: n0, n1: n1, n2: n2,
		ax0: NewBatch(n0, n1*n2, 1, n0, 1, n0),
		ax1: NewBatch(n1, n0, n0, 1, n0, 1),
		ax2: NewBatch(n2, n0*n1, n0*n1, 1, n0*n1, 1),
	}
}

// Forward computes the 3D forward DFT of src into dst (may alias).
func (p *Plan3D) Forward(dst, src []complex128) {
	p.check(dst, src)
	p.ax0.Forward(dst, src)
	for i2 := 0; i2 < p.n2; i2++ {
		plane := dst[i2*p.n0*p.n1 : (i2+1)*p.n0*p.n1]
		p.ax1.Forward(plane, plane)
	}
	p.ax2.Forward(dst, dst)
}

// Inverse computes the 3D inverse DFT (scaled by 1/(n0·n1·n2)).
func (p *Plan3D) Inverse(dst, src []complex128) {
	p.check(dst, src)
	p.ax0.Inverse(dst, src)
	for i2 := 0; i2 < p.n2; i2++ {
		plane := dst[i2*p.n0*p.n1 : (i2+1)*p.n0*p.n1]
		p.ax1.Inverse(plane, plane)
	}
	p.ax2.Inverse(dst, dst)
}

func (p *Plan3D) check(dst, src []complex128) {
	n := p.n0 * p.n1 * p.n2
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("fft: 3D plan %dx%dx%d, got dst %d src %d", p.n0, p.n1, p.n2, len(dst), len(src)))
	}
}
