package pfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fft"
	"repro/internal/mpi"
)

// pencilComms builds the y/z-group communicators for a pr×pc grid.
func pencilComms(c *mpi.Comm, pc int) (commY, commZ *mpi.Comm, yG, zG int) {
	yG = c.Rank() / pc
	zG = c.Rank() % pc
	commY = c.Split(zG, yG)
	commZ = c.Split(pc+yG, zG)
	return commY, commZ, yG, zG
}

func TestPencilRealRefRoundTrip(t *testing.T) {
	n := 12
	for _, grids := range [][2]int{{2, 2}, {3, 2}, {2, 3}} {
		pr, pc := grids[0], grids[1]
		mpi.Run(pr*pc, func(c *mpi.Comm) {
			commY, commZ, _, _ := pencilComms(c, pc)
			f := NewPencilRealRef(commY, commZ, n)
			rng := rand.New(rand.NewSource(int64(c.Rank()) + 3))
			phys := make([]float64, f.PhysicalLen())
			for i := range phys {
				phys[i] = rng.NormFloat64()
			}
			orig := append([]float64(nil), phys...)
			four := make([]complex128, f.FourierLen())
			f.PhysicalToFourier(four, phys)
			back := make([]float64, f.PhysicalLen())
			f.FourierToPhysical(back, four)
			for i := range back {
				if math.Abs(back[i]-orig[i]) > 1e-9 {
					t.Fatalf("pr=%d pc=%d rank %d: element %d: %g vs %g",
						pr, pc, c.Rank(), i, back[i], orig[i])
				}
			}
		})
	}
}

func TestPencilRealRefMatchesLocalReference(t *testing.T) {
	// Transform a known global real field and compare every spectral
	// coefficient against the local full 3D reference.
	n := 8
	pr, pc := 2, 2
	rng := rand.New(rand.NewSource(17))
	global := make([]float64, n*n*n) // [z][y][x]
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	// Reference spectrum via the complex Plan3D.
	gc := make([]complex128, n*n*n)
	for i, v := range global {
		gc[i] = complex(v, 0)
	}
	ref := make([]complex128, n*n*n)
	fft.NewPlan3D(n, n, n).Forward(ref, gc)

	nxh := n/2 + 1
	xsp := splitSpan(nxh, pr)
	var mu sync.Mutex
	results := map[int][]complex128{}
	mpi.Run(pr*pc, func(c *mpi.Comm) {
		commY, commZ, yG, zG := pencilComms(c, pc)
		f := NewPencilRealRef(commY, commZ, n)
		my, mz := n/pr, n/pc
		phys := make([]float64, f.PhysicalLen())
		// Layout A: [mz][my][nx]; global y = yG·my+iy, z = zG·mz+iz.
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				gz, gy := zG*mz+iz, yG*my+iy
				copy(phys[(iz*my+iy)*n:(iz*my+iy)*n+n], global[(gz*n+gy)*n:(gz*n+gy)*n+n])
			}
		}
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		mu.Lock()
		results[c.Rank()] = append([]complex128(nil), four...)
		mu.Unlock()
	})
	my2 := n / pc
	for r := 0; r < pr*pc; r++ {
		yG, zG := r/pc, r%pc
		xs := xsp[yG] // x span owned by this rank's row group index
		wx := xs.width()
		out := results[r]
		// Layout C: [my2][wx][nz]; global x = xs.lo+ixl (half-spectrum
		// bin), y = zG·my2+iyl.
		for iyl := 0; iyl < my2; iyl++ {
			for ixl := 0; ixl < wx; ixl++ {
				for iz := 0; iz < n; iz++ {
					gx, gy := xs.lo+ixl, zG*my2+iyl
					want := ref[(iz*n+gy)*n+gx]
					got := out[(iyl*wx+ixl)*n+iz]
					if cmplx.Abs(got-want) > 1e-9 {
						t.Fatalf("rank %d x=%d y=%d z=%d: got %v want %v", r, gx, gy, iz, got, want)
					}
				}
			}
		}
	}
}

func TestPencilRealRefUnevenXSplit(t *testing.T) {
	// nxh = 7 for n=12 split over pr=3: spans of 3,2,2 — every rank
	// must still round-trip exactly.
	n := 12
	pr, pc := 3, 2
	xsp := splitSpan(n/2+1, pr)
	if xsp[0].width() == xsp[pr-1].width() {
		t.Fatal("test premise: split should be uneven")
	}
	mpi.Run(pr*pc, func(c *mpi.Comm) {
		commY, commZ, _, _ := pencilComms(c, pc)
		f := NewPencilRealRef(commY, commZ, n)
		phys := make([]float64, f.PhysicalLen())
		for i := range phys {
			phys[i] = float64(i%13) - 6
		}
		orig := append([]float64(nil), phys...)
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		back := make([]float64, f.PhysicalLen())
		f.FourierToPhysical(back, four)
		for i := range back {
			if math.Abs(back[i]-orig[i]) > 1e-10 {
				t.Fatalf("rank %d element %d", c.Rank(), i)
			}
		}
	})
}

func TestPencilRealRefParseval(t *testing.T) {
	n := 8
	pr, pc := 2, 2
	mpi.Run(pr*pc, func(c *mpi.Comm) {
		commY, commZ, _, _ := pencilComms(c, pc)
		f := NewPencilRealRef(commY, commZ, n)
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 9))
		phys := make([]float64, f.PhysicalLen())
		var e float64
		for i := range phys {
			phys[i] = rng.NormFloat64()
			e += phys[i] * phys[i]
		}
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		// Spectral energy with conjugate-symmetry weights: bins with
		// 0 < kx < n/2 count twice.
		var es float64
		wx := f.wx()
		xlo := f.xsp[commY.Rank()].lo
		for iy := 0; iy < f.my2; iy++ {
			for ixl := 0; ixl < wx; ixl++ {
				w := 2.0
				if gx := xlo + ixl; gx == 0 || gx == n/2 {
					w = 1
				}
				for iz := 0; iz < n; iz++ {
					v := four[(iy*wx+ixl)*n+iz]
					es += w * (real(v)*real(v) + imag(v)*imag(v))
				}
			}
		}
		sums := []float64{e, es}
		mpi.AllreduceSum(c, sums)
		n3 := float64(n * n * n)
		if math.Abs(sums[1]/n3-sums[0]) > 1e-8*sums[0] {
			t.Errorf("Parseval: phys %g spec/N³ %g", sums[0], sums[1]/n3)
		}
	})
}
