package pfft

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exchange"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/tuning"
)

// The single-precision wire pipeline keeps every FFT in float64 and
// narrows only the transpose-exchange payloads, so a forward transform
// must track the float64 engine to single-precision rounding — well
// under 1e-5 relative rms — and a forward+inverse round trip must
// reproduce the input to the same tolerance.
func TestSlabRealSingleAccuracy(t *testing.T) {
	const n, p = 32, 4
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		ref := NewSlabRealWorkers(c, n, 2)
		defer ref.Close()
		f32 := NewSlabRealSingle(c, n, 2)
		defer f32.Close()
		if !f32.Single() {
			panic("NewSlabRealSingle engine does not report Single()")
		}
		fl, pl := ref.FourierLen(), ref.PhysicalLen()

		rng := rand.New(rand.NewSource(int64(7 + c.Rank())))
		physIn := make([]float64, pl)
		for i := range physIn {
			physIn[i] = rng.NormFloat64()
		}
		refFour := make([]complex128, fl)
		scratch := make([]float64, pl)
		copy(scratch, physIn)
		ref.PhysicalToFourier(refFour, scratch)

		four := make([]complex128, fl)
		copy(scratch, physIn)
		f32.PhysicalToFourier(four, scratch)

		var num, den float64
		for i := range four {
			d := four[i] - refFour[i]
			num += real(d)*real(d) + imag(d)*imag(d)
			den += real(refFour[i])*real(refFour[i]) + imag(refFour[i])*imag(refFour[i])
		}
		if rms := math.Sqrt(num / den); rms > 1e-5 {
			panic(fmt.Sprintf("rank %d: f32 forward relative rms %.3g vs float64, want ≤ 1e-5", c.Rank(), rms))
		}

		out := make([]float64, pl)
		f32.FourierToPhysical(out, four)
		num, den = 0, 0
		for i := range out {
			d := out[i] - physIn[i]
			num += d * d
			den += physIn[i] * physIn[i]
		}
		if rms := math.Sqrt(num / den); rms > 1e-5 {
			panic(fmt.Sprintf("rank %d: f32 round-trip relative rms %.3g, want ≤ 1e-5", c.Rank(), rms))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// The f32 pipeline's steady state must stay allocation-free like every
// other strategy: the narrow/widen bodies and complex64 plans are all
// prebuilt at construction.
func TestSlabRealSingleSteadyStateZeroAllocs(t *testing.T) {
	const n, p, runs = 32, 4, 10
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		f := NewSlabRealSingle(c, n, 2)
		defer f.Close()
		four := make([]complex128, f.FourierLen())
		phys := make([]float64, f.PhysicalLen())
		for i := range phys {
			phys[i] = float64(i%13) * 0.25
		}
		cycle := func() {
			f.PhysicalToFourier(four, phys)
			f.FourierToPhysical(phys, four)
		}
		for i := 0; i < 3; i++ {
			cycle()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, cycle); avg != 0 {
				panic(fmt.Sprintf("f32 steady state allocates %.2f per cycle", avg))
			}
		} else {
			for i := 0; i < runs+1; i++ {
				cycle()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Every float64 point of the default tune space is bitwise-identical
// to the plain engine (the tuner may only change the data path), so a
// tuned construction must reproduce the untuned transform exactly,
// whatever winner its trials pick.
func TestSlabRealTunedBitwiseIdentity(t *testing.T) {
	const n, p = 24, 4
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		ref := NewSlabRealStrategy(c, n, 2, exchange.Staged)
		defer ref.Close()
		tuned := NewSlabRealTuned(c, n, 2, tuning.Config{})
		defer tuned.Close()
		if tuned.Single() {
			panic("default tune space searched precision")
		}
		fl, pl := ref.FourierLen(), ref.PhysicalLen()

		rng := rand.New(rand.NewSource(int64(11 + c.Rank())))
		physIn := make([]float64, pl)
		for i := range physIn {
			physIn[i] = rng.NormFloat64()
		}
		refFour := make([]complex128, fl)
		scratch := make([]float64, pl)
		copy(scratch, physIn)
		ref.PhysicalToFourier(refFour, scratch)

		four := make([]complex128, fl)
		copy(scratch, physIn)
		tuned.PhysicalToFourier(four, scratch)
		for i := range four {
			if four[i] != refFour[i] {
				panic(fmt.Sprintf("rank %d: tuned (winner %s) forward differs at %d",
					c.Rank(), tuned.Strategy(), i))
			}
		}

		refPhys := make([]float64, pl)
		ref.FourierToPhysical(refPhys, refFour)
		out := make([]float64, pl)
		tuned.FourierToPhysical(out, four)
		for i := range out {
			if out[i] != refPhys[i] {
				panic(fmt.Sprintf("rank %d: tuned inverse differs at %d", c.Rank(), i))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// A warm tuning cache must skip the trials entirely — the tune.trials
// counter stays flat across the second construction — and the engine
// it builds must be bitwise-equivalent to the trial-selected one.
func TestSlabRealTunedWarmCacheSkipsTrials(t *testing.T) {
	const n, p = 24, 4
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	reg.SetOn(true)
	if err := mpi.RunWith(p, reg, func(c *mpi.Comm) {
		cfg := tuning.Config{Cache: tuning.Open(dir)}
		trials := c.Metrics().CounterRank("tune.trials", c.Rank())

		cold := NewSlabRealTuned(c, n, 2, cfg)
		defer cold.Close()
		after := trials.Value()
		if after == 0 {
			panic(fmt.Sprintf("rank %d: cold construction ran no trials", c.Rank()))
		}
		if c.Rank() == 0 {
			if _, err := os.Stat(filepath.Join(dir, "tuning.json")); err != nil {
				panic(fmt.Sprintf("tuning cache not persisted: %v", err))
			}
		}

		warm := NewSlabRealTuned(c, n, 2, cfg)
		defer warm.Close()
		if got := trials.Value(); got != after {
			panic(fmt.Sprintf("rank %d: warm construction ran %d trial exchanges, want 0", c.Rank(), got-after))
		}
		if warm.Strategy() != cold.Strategy() || warm.Single() != cold.Single() {
			panic(fmt.Sprintf("rank %d: warm engine (%s, single=%v) differs from trial-selected (%s, single=%v)",
				c.Rank(), warm.Strategy(), warm.Single(), cold.Strategy(), cold.Single()))
		}

		// Bitwise equivalence of the cache-hit engine with the
		// trial-selected one.
		fl, pl := cold.FourierLen(), cold.PhysicalLen()
		rng := rand.New(rand.NewSource(int64(13 + c.Rank())))
		physIn := make([]float64, pl)
		for i := range physIn {
			physIn[i] = rng.NormFloat64()
		}
		a, b := make([]complex128, fl), make([]complex128, fl)
		scratch := make([]float64, pl)
		copy(scratch, physIn)
		cold.PhysicalToFourier(a, scratch)
		copy(scratch, physIn)
		warm.PhysicalToFourier(b, scratch)
		for i := range a {
			if a[i] != b[i] {
				panic(fmt.Sprintf("rank %d: cache-hit engine differs from trial-selected at %d", c.Rank(), i))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// A corrupted cache file must fall back to live trials, not crash or
// replay garbage.
func TestSlabRealTunedCorruptCacheFallsBack(t *testing.T) {
	const n, p = 24, 2
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tuning.json"), []byte("\x00 not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.SetOn(true)
	if err := mpi.RunWith(p, reg, func(c *mpi.Comm) {
		cfg := tuning.Config{Cache: tuning.Open(dir)}
		trials := c.Metrics().CounterRank("tune.trials", c.Rank())
		f := NewSlabRealTuned(c, n, 1, cfg)
		defer f.Close()
		if trials.Value() == 0 {
			panic(fmt.Sprintf("rank %d: corrupt cache did not fall back to live trials", c.Rank()))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Searching the precision dimension explicitly may pick the f32 wire;
// whatever wins must still satisfy the f32 accuracy bound.
func TestSlabRealTunedPrecisionSearch(t *testing.T) {
	const n, p = 24, 2
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		cfg := tuning.Config{Space: tuning.Space{Single: []bool{false, true}}}
		f := NewSlabRealTuned(c, n, 1, cfg)
		defer f.Close()
		pl, fl := f.PhysicalLen(), f.FourierLen()
		physIn := make([]float64, pl)
		rng := rand.New(rand.NewSource(int64(17 + c.Rank())))
		for i := range physIn {
			physIn[i] = rng.NormFloat64()
		}
		four := make([]complex128, fl)
		scratch := make([]float64, pl)
		copy(scratch, physIn)
		f.PhysicalToFourier(four, scratch)
		out := make([]float64, pl)
		f.FourierToPhysical(out, four)
		var num, den float64
		for i := range out {
			d := out[i] - physIn[i]
			num += d * d
			den += physIn[i] * physIn[i]
		}
		if rms := math.Sqrt(num / den); rms > 1e-5 {
			panic(fmt.Sprintf("rank %d: precision-searched round-trip rms %.3g (single=%v)", c.Rank(), rms, f.Single()))
		}
	}); err != nil {
		t.Fatal(err)
	}
}
