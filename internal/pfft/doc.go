// Package pfft implements the distributed three-dimensional Fourier
// transforms of the paper on top of the in-process MPI runtime:
//
//   - SlabC2C: complex transforms on the 1D slab decomposition the new
//     GPU code adopts (one all-to-all per 3D transform).
//   - SlabReal: the DNS variant — real fields in physical space,
//     conjugate-symmetric half-spectra in Fourier space, with the
//     paper's y,z,x transform ordering so that nonlinear products are
//     formed on unit-stride real data.
//   - PencilC2C: complex transforms on the 2D pencil decomposition
//     used by the synchronous CPU baseline of Yeung et al. (two
//     all-to-alls, on row and column communicators).
//
// Layout conventions (x always fastest):
//
//	slab Fourier side:    [mz][ny][nx or nxh], z-distributed
//	slab physical side:   [my][nz][nx],        y-distributed
//	pencil layout A:      [mz][my][nx]  x complete (physical)
//	pencil layout B:      [mz][mx][ny]  y complete, y fastest
//	pencil layout C:      [my2][mx][nz] z complete, z fastest (Fourier)
package pfft
