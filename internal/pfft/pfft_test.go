package pfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fft"
	"repro/internal/mpi"
)

// globalField builds a deterministic global complex field indexed
// [(iz*n+iy)*n+ix].
func globalField(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	f := make([]complex128, n*n*n)
	for i := range f {
		f[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return f
}

func TestSlabC2CMatchesLocalPlan3D(t *testing.T) {
	n, p := 8, 4
	global := globalField(n, 1)
	// Reference: full inverse 3D transform (Fourier→physical).
	ref := make([]complex128, len(global))
	fft.NewPlan3D(n, n, n).Inverse(ref, global)

	mz, my := n/p, n/p
	var mu sync.Mutex
	results := make(map[int][]complex128)
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabC2C(c, n)
		four := make([]complex128, f.LocalLen())
		// Load the rank's z-slab from the global field.
		for iz := 0; iz < mz; iz++ {
			gz := c.Rank()*mz + iz
			copy(four[iz*n*n:(iz+1)*n*n], global[gz*n*n:(gz+1)*n*n])
		}
		phys := make([]complex128, f.LocalLen())
		f.FourierToPhysical(phys, four)
		mu.Lock()
		cp := make([]complex128, len(phys))
		copy(cp, phys)
		results[c.Rank()] = cp
		mu.Unlock()
	})
	for r := 0; r < p; r++ {
		phys := results[r]
		for iy := 0; iy < my; iy++ {
			gy := r*my + iy
			for iz := 0; iz < n; iz++ {
				for ix := 0; ix < n; ix++ {
					want := ref[(iz*n+gy)*n+ix]
					got := phys[(iy*n+iz)*n+ix]
					if cmplx.Abs(got-want) > 1e-10 {
						t.Fatalf("rank %d (x=%d y=%d z=%d): got %v want %v", r, ix, gy, iz, got, want)
					}
				}
			}
		}
	}
}

func TestSlabC2CRoundTrip(t *testing.T) {
	n, p := 12, 3
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabC2C(c, n)
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 5))
		orig := make([]complex128, f.LocalLen())
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		four := make([]complex128, f.LocalLen())
		copy(four, orig)
		phys := make([]complex128, f.LocalLen())
		f.FourierToPhysical(phys, four)
		back := make([]complex128, f.LocalLen())
		f.PhysicalToFourier(back, phys)
		for i := range back {
			if cmplx.Abs(back[i]-orig[i]) > 1e-9 {
				t.Fatalf("rank %d element %d: %v vs %v", c.Rank(), i, back[i], orig[i])
			}
		}
	})
}

func TestSlabRealRoundTrip(t *testing.T) {
	n, p := 8, 2
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabReal(c, n)
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 9))
		phys := make([]float64, f.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		orig := make([]float64, len(phys))
		copy(orig, phys)
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		back := make([]float64, f.PhysicalLen())
		f.FourierToPhysical(back, four)
		for i := range back {
			if math.Abs(back[i]-orig[i]) > 1e-9 {
				t.Fatalf("rank %d element %d: %g vs %g", c.Rank(), i, back[i], orig[i])
			}
		}
	})
}

func TestSlabRealMatchesComplexTransform(t *testing.T) {
	// The half-spectrum of SlabReal must equal the first nxh x-bins of
	// the full complex spectrum of the same real field.
	n, p := 8, 2
	nxh := n/2 + 1
	mz := n / p
	var mu sync.Mutex
	fourHalf := make(map[int][]complex128)
	fourFull := make(map[int][]complex128)
	mpi.Run(p, func(c *mpi.Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 3))
		fr := NewSlabReal(c, n)
		phys := make([]float64, fr.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		fourR := make([]complex128, fr.FourierLen())
		fr.PhysicalToFourier(fourR, phys)

		fc := NewSlabC2C(c, n)
		physC := make([]complex128, fc.LocalLen())
		for i, v := range phys {
			physC[i] = complex(v, 0)
		}
		fourC := make([]complex128, fc.LocalLen())
		fc.PhysicalToFourier(fourC, physC)

		mu.Lock()
		h := make([]complex128, len(fourR))
		copy(h, fourR)
		fourHalf[c.Rank()] = h
		fl := make([]complex128, len(fourC))
		copy(fl, fourC)
		fourFull[c.Rank()] = fl
		mu.Unlock()
	})
	for r := 0; r < p; r++ {
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < nxh; ix++ {
					want := fourFull[r][(iz*n+iy)*n+ix]
					got := fourHalf[r][(iz*n+iy)*nxh+ix]
					if cmplx.Abs(got-want) > 1e-9 {
						t.Fatalf("rank %d z=%d y=%d x=%d: %v vs %v", r, iz, iy, ix, got, want)
					}
				}
			}
		}
	}
}

func TestSlabParsevalAcrossRanks(t *testing.T) {
	// Physical-space energy equals (1/N³)·Σ|û|² with û from the
	// unnormalized forward transform — checked with a distributed sum.
	n, p := 8, 4
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabC2C(c, n)
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 17))
		phys := make([]complex128, f.LocalLen())
		for i := range phys {
			phys[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		var ePhys float64
		for _, v := range phys {
			ePhys += real(v)*real(v) + imag(v)*imag(v)
		}
		four := make([]complex128, f.LocalLen())
		f.PhysicalToFourier(four, phys)
		var eFour float64
		for _, v := range four {
			eFour += real(v)*real(v) + imag(v)*imag(v)
		}
		sums := []float64{ePhys, eFour}
		mpi.AllreduceSum(c, sums)
		n3 := float64(n * n * n)
		if math.Abs(sums[1]/n3-sums[0]) > 1e-8*sums[0] {
			t.Errorf("rank %d: Parseval violated: phys %g four/N³ %g", c.Rank(), sums[0], sums[1]/n3)
		}
	})
}

func TestPencilC2CMatchesLocalPlan3D(t *testing.T) {
	n := 8
	pr, pc := 2, 2
	p := pr * pc
	global := globalField(n, 2)
	ref := make([]complex128, len(global))
	fft.NewPlan3D(n, n, n).Forward(ref, global)

	my, mz := n/pr, n/pc
	mx, my2 := n/pr, n/pc
	var mu sync.Mutex
	results := make(map[int][]complex128)
	mpi.Run(p, func(c *mpi.Comm) {
		// rank = yGroup*pc + zGroup; commY groups equal zGroup.
		yG := c.Rank() / pc
		zG := c.Rank() % pc
		commY := c.Split(zG, yG)
		commZ := c.Split(pc+yG, zG)
		f := NewPencilC2C(commY, commZ, n)
		in := make([]complex128, f.LocalLen())
		// Layout A: [mz][my][nx]; global y = yG*my+iy, z = zG*mz+iz.
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				gz, gy := zG*mz+iz, yG*my+iy
				copy(in[(iz*my+iy)*n:(iz*my+iy)*n+n], global[(gz*n+gy)*n:(gz*n+gy)*n+n])
			}
		}
		out := make([]complex128, f.LocalLen())
		f.PhysicalToFourier(out, in)
		mu.Lock()
		cp := make([]complex128, len(out))
		copy(cp, out)
		results[c.Rank()] = cp
		mu.Unlock()
	})
	for r := 0; r < p; r++ {
		yG, zG := r/pc, r%pc
		out := results[r]
		// Layout C: [my2][mx][nz]; global x = yG... x is distributed
		// over the row communicator: gx = commY.Rank()*mx + ixl = yG*mx+ixl;
		// global y = zG*my2 + iyl (distributed over commZ after BC).
		for iyl := 0; iyl < my2; iyl++ {
			for ixl := 0; ixl < mx; ixl++ {
				for iz := 0; iz < n; iz++ {
					gx, gy := yG*mx+ixl, zG*my2+iyl
					want := ref[(iz*n+gy)*n+gx]
					got := out[(iyl*mx+ixl)*n+iz]
					if cmplx.Abs(got-want) > 1e-9 {
						t.Fatalf("rank %d x=%d y=%d z=%d: got %v want %v", r, gx, gy, iz, got, want)
					}
				}
			}
		}
	}
}

func TestPencilC2CRoundTrip(t *testing.T) {
	n := 12
	pr, pc := 3, 2
	mpi.Run(pr*pc, func(c *mpi.Comm) {
		yG := c.Rank() / pc
		zG := c.Rank() % pc
		commY := c.Split(zG, yG)
		commZ := c.Split(pc+yG, zG)
		f := NewPencilC2C(commY, commZ, n)
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 31))
		orig := make([]complex128, f.LocalLen())
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		in := make([]complex128, f.LocalLen())
		copy(in, orig)
		four := make([]complex128, f.LocalLen())
		f.PhysicalToFourier(four, in)
		back := make([]complex128, f.LocalLen())
		f.FourierToPhysical(back, four)
		for i := range back {
			if cmplx.Abs(back[i]-orig[i]) > 1e-9 {
				t.Fatalf("rank %d element %d not restored", c.Rank(), i)
			}
		}
	})
}

func TestSlabAndPencilAgree(t *testing.T) {
	// The same global field transformed by the slab code on 2 ranks and
	// the pencil code on 4 ranks must give identical spectra.
	n := 8
	global := globalField(n, 7)
	ref := make([]complex128, len(global))
	fft.NewPlan3D(n, n, n).Forward(ref, global)

	// Slab physical layout: [my][nz][nx] with y-distributed physical
	// space; PhysicalToFourier → [mz][ny][nx].
	p := 2
	mz, my := n/p, n/p
	var mu sync.Mutex
	slabOut := make(map[int][]complex128)
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabC2C(c, n)
		phys := make([]complex128, f.LocalLen())
		for iy := 0; iy < my; iy++ {
			gy := c.Rank()*my + iy
			for iz := 0; iz < n; iz++ {
				copy(phys[(iy*n+iz)*n:(iy*n+iz)*n+n], global[(iz*n+gy)*n:(iz*n+gy)*n+n])
			}
		}
		four := make([]complex128, f.LocalLen())
		f.PhysicalToFourier(four, phys)
		mu.Lock()
		cp := make([]complex128, len(four))
		copy(cp, four)
		slabOut[c.Rank()] = cp
		mu.Unlock()
	})
	for r := 0; r < p; r++ {
		for iz := 0; iz < mz; iz++ {
			gz := r*mz + iz
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					want := ref[(gz*n+iy)*n+ix]
					got := slabOut[r][(iz*n+iy)*n+ix]
					if cmplx.Abs(got-want) > 1e-9 {
						t.Fatalf("slab rank %d: mismatch at x=%d y=%d z=%d", r, ix, iy, gz)
					}
				}
			}
		}
	}
}
