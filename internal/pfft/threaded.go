package pfft

import "repro/internal/mpi"

// SlabRealThreaded is the historical name of the hybrid MPI+OpenMP
// transform (§1: "a hybrid MPI+OpenMP approach to further reduce the
// number of MPI ranks for the same problem size"). The worker-team
// machinery now lives directly in SlabReal — a single implementation
// whose team size is 1 for the plain constructor — so the threaded
// type is an alias kept for the existing call sites.
type SlabRealThreaded = SlabReal

// NewSlabRealThreaded builds the hybrid transform with a team of
// threads workers per rank. Equivalent to NewSlabRealWorkers.
func NewSlabRealThreaded(comm *mpi.Comm, n, threads int) *SlabRealThreaded {
	return NewSlabRealWorkers(comm, n, threads)
}
