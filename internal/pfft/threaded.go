package pfft

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/transpose"
)

// SlabRealThreaded is SlabReal with an OpenMP-style worker team inside
// each rank — the paper's hybrid MPI+OpenMP design (§1: "a hybrid
// MPI+OpenMP approach to further reduce the number of MPI ranks for
// the same problem size"). Plane loops are distributed over the team;
// each worker owns its own FFT plans (plans carry scratch and are not
// concurrency-safe). Results are identical to SlabReal for any team
// size.
type SlabRealThreaded struct {
	comm *mpi.Comm
	s    grid.Slab
	n    int
	nxh  int
	pool *par.Pool

	by   []*fft.Batch     // per worker
	bz   []*fft.Batch     // per worker
	bx   []*fft.RealBatch // per worker
	pack []complex128
	recv []complex128
	mid  []complex128
}

// NewSlabRealThreaded builds the hybrid transform with a team of
// threads workers per rank.
func NewSlabRealThreaded(comm *mpi.Comm, n, threads int) *SlabRealThreaded {
	if n%2 != 0 {
		panic(fmt.Sprintf("pfft: SlabRealThreaded requires even N, got %d", n))
	}
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	nxh := n/2 + 1
	pool := par.NewPool(threads)
	f := &SlabRealThreaded{
		comm: comm, s: s, n: n, nxh: nxh, pool: pool,
		pack: make([]complex128, s.MZ()*n*nxh),
		recv: make([]complex128, s.MZ()*n*nxh),
		mid:  make([]complex128, s.MY()*n*nxh),
	}
	for w := 0; w < threads; w++ {
		f.by = append(f.by, fft.NewBatch(n, nxh, nxh, 1, nxh, 1))
		f.bz = append(f.bz, fft.NewBatch(n, nxh, nxh, 1, nxh, 1))
		f.bx = append(f.bx, fft.NewRealBatch(n, n, 1, n, 1, nxh))
	}
	return f
}

// Slab reports the decomposition geometry.
func (f *SlabRealThreaded) Slab() grid.Slab { return f.s }

// NXH is the stored x extent of the half-spectrum.
func (f *SlabRealThreaded) NXH() int { return f.nxh }

// FourierLen is the complex element count of one local Fourier slab.
func (f *SlabRealThreaded) FourierLen() int { return f.s.MZ() * f.n * f.nxh }

// PhysicalLen is the real element count of one local physical slab.
func (f *SlabRealThreaded) PhysicalLen() int { return f.s.MY() * f.n * f.n }

// Threads reports the team size.
func (f *SlabRealThreaded) Threads() int { return f.pool.Size() }

// FourierToPhysical transforms four=[mz][ny][nxh] into phys=[my][nz][nx]
// with plane loops parallelized over the worker team.
func (f *SlabRealThreaded) FourierToPhysical(phys []float64, four []complex128) {
	n, nxh, mz, my := f.n, f.nxh, f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: threaded slab wants %d/%d, got %d/%d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.pool.ForWorkers(mz, func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := four[iz*n*nxh : (iz+1)*n*nxh]
			f.by[w].Inverse(plane, plane)
		}
	})
	transpose.PackYZ(f.pack, four, nxh, n, mz, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackYZ(f.mid, f.recv, nxh, n, my, f.comm.Size())
	f.pool.ForWorkers(my, func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
			f.bz[w].Inverse(plane, plane)
			f.bx[w].Inverse(phys[iy*n*n:(iy+1)*n*n], plane)
		}
	})
}

// PhysicalToFourier is the reverse direction.
func (f *SlabRealThreaded) PhysicalToFourier(four []complex128, phys []float64) {
	n, nxh, mz, my := f.n, f.nxh, f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: threaded slab wants %d/%d, got %d/%d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.pool.ForWorkers(my, func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
			f.bx[w].Forward(plane, phys[iy*n*n:(iy+1)*n*n])
			f.bz[w].Forward(plane, plane)
		}
	})
	transpose.PackZY(f.pack, f.mid, nxh, n, my, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackZY(four, f.recv, nxh, n, mz, f.comm.Size())
	f.pool.ForWorkers(mz, func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := four[iz*n*nxh : (iz+1)*n*nxh]
			f.by[w].Forward(plane, plane)
		}
	})
}
